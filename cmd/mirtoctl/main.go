// Command mirtoctl is the CLI client for the MIRTO agent REST API.
//
// Usage:
//
//	mirtoctl -addr http://host:port -token TOKEN COMMAND [args]
//
// Commands:
//
//	deploy FILE     deploy a TOSCA YAML template or .csar package
//	list            list deployments
//	get APP         show one deployment
//	delete APP      undeploy an application
//	kpis APP        show an application's KPIs
//	registry        dump the Resource Registry snapshot
//	drain DEVICE    live-migrate every stateful stage off the device
//	                (pre-copy, catch-up, flip) and leave it cordoned
//	undrain DEVICE  lift a drain's cordon, making the device
//	                schedulable again
//	trace [ID]      list recorded request traces (with the fencing
//	                counters when a fence ledger is attached), or print
//	                one trace's span tree and critical path
//	health          per-device gray-failure health: peer-relative score,
//	                state (healthy/suspect-slow/quarantined/probation),
//	                and the monitor's rollup counters
//	healthz         agent liveness
//
// Pair it with `continuum-sim -serve :8080`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"

	"myrtus/internal/trace"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "MIRTO agent base URL")
	token := flag.String("token", "admin-token", "bearer token")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cli := &client{base: strings.TrimRight(*addr, "/"), token: *token}
	var err error
	switch args[0] {
	case "deploy":
		if len(args) != 2 {
			log.Fatal("usage: mirtoctl deploy FILE")
		}
		err = cli.deploy(args[1])
	case "list":
		err = cli.get("/v1/deployments")
	case "get":
		if len(args) != 2 {
			log.Fatal("usage: mirtoctl get APP")
		}
		err = cli.get("/v1/deployments/" + args[1])
	case "delete":
		if len(args) != 2 {
			log.Fatal("usage: mirtoctl delete APP")
		}
		err = cli.do("DELETE", "/v1/deployments/"+args[1], "", nil)
	case "kpis":
		if len(args) != 2 {
			log.Fatal("usage: mirtoctl kpis APP")
		}
		err = cli.get("/v1/kpis/" + args[1])
	case "registry":
		err = cli.get("/v1/registry")
	case "drain":
		if len(args) != 2 {
			log.Fatal("usage: mirtoctl drain DEVICE")
		}
		err = cli.drain(args[1])
	case "undrain":
		if len(args) != 2 {
			log.Fatal("usage: mirtoctl undrain DEVICE")
		}
		err = cli.do("DELETE", "/v1/drain/"+args[1], "", nil)
	case "trace":
		if len(args) == 1 {
			err = cli.traces()
			break
		}
		err = cli.trace(args[1])
	case "health":
		err = cli.health()
	case "healthz":
		err = cli.get("/v1/healthz")
	default:
		log.Fatalf("unknown command %q", args[0])
	}
	if err != nil {
		log.Fatal(err)
	}
}

type client struct {
	base, token string
}

func (c *client) deploy(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	ct := "application/x-yaml"
	if strings.HasSuffix(path, ".csar") || strings.HasSuffix(path, ".zip") {
		ct = "application/zip"
	}
	return c.do("POST", "/v1/deployments", ct, data)
}

func (c *client) get(path string) error { return c.do("GET", path, "", nil) }

// traces renders the trace listing as a table, followed by the agent's
// fencing counters when a fence ledger is attached (split-brain runs).
func (c *client) traces() error {
	raw, err := c.fetch("/v1/traces")
	if err != nil {
		return err
	}
	var doc struct {
		Traces  []trace.Info      `json:"traces"`
		Fencing map[string]uint64 `json:"fencing"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("decoding trace listing: %w", err)
	}
	if len(doc.Traces) == 0 {
		fmt.Println("no traces recorded")
	} else {
		fmt.Printf("%-12s %-28s %10s %6s  %s\n", "ID", "NAME", "LATENCY", "SPANS", "ERROR")
		for _, in := range doc.Traces {
			fmt.Printf("%-12s %-28s %8.1fms %6d  %s\n", in.ID, in.Name, in.LatencyMs, in.Spans, in.Error)
		}
	}
	if f := doc.Fencing; f != nil {
		fmt.Printf("fencing: fenced_writes=%d fenced_checkpoints=%d fenced_migrates=%d plan_epoch_rejects=%d self_demotions=%d reconciliations=%d journal_discards=%d resync_bytes=%d\n",
			f["fenced_writes"], f["fenced_checkpoints"], f["fenced_migrates"],
			f["plan_epoch_rejects"], f["self_demotions"],
			f["reconciliations"], f["journal_discards"], f["resync_bytes"])
	}
	return nil
}

// trace fetches one trace and renders its span tree plus critical path
// locally (the agent serves raw spans; the analysis is client-side).
func (c *client) trace(id string) error {
	raw, err := c.fetch("/v1/traces/" + id)
	if err != nil {
		return err
	}
	var doc struct {
		ID    string        `json:"id"`
		Spans []*trace.Span `json:"spans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("decoding trace: %w", err)
	}
	tr, err := trace.FromSpans(doc.Spans)
	if err != nil {
		return err
	}
	fmt.Print(trace.RenderTree(tr))
	segs, total := tr.CriticalPath()
	fmt.Print(trace.RenderCriticalPath(segs, total))
	return nil
}

// drain POSTs a planned drain and renders the returned migration trace:
// per-stage pre-copy/catch-up rounds, bytes shipped, residual delta
// sizes, and the per-app intake pauses the flips cost.
func (c *client) drain(device string) error {
	raw, err := c.send("POST", "/v1/drain/"+device)
	if err != nil {
		return err
	}
	var v struct {
		Device  string `json:"device"`
		Aborted bool   `json:"aborted"`
		Reason  string `json:"reason"`
		Took    string `json:"took"`
		Moved   int    `json:"moved"`
		Stages  []struct {
			App, Stage, From, To string
			Flipped              bool
			Rounds               int
			Residuals            []int
			PrecopyBytes         int64
			DeltaBytes           int64
			FinalDelta           int
		} `json:"stages"`
		Pauses map[string]string `json:"pauses"`
		Parked map[string]int    `json:"parked"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return fmt.Errorf("decoding drain report: %w", err)
	}
	status := "completed (device cordoned; `mirtoctl undrain` to reuse it)"
	if v.Aborted {
		status = "ABORTED: " + v.Reason
	}
	fmt.Printf("drain %s: %s\n", v.Device, status)
	fmt.Printf("  took %s, %d assignment(s) moved\n", v.Took, v.Moved)
	for _, s := range v.Stages {
		fmt.Printf("  %s/%s: %s -> %s flipped=%v\n", s.App, s.Stage, s.From, s.To, s.Flipped)
		fmt.Printf("    pre-copy %d bytes, catch-up %d rounds (%d delta bytes), residuals=%v, final delta %d entries\n",
			s.PrecopyBytes, s.Rounds, s.DeltaBytes, s.Residuals, s.FinalDelta)
	}
	apps := make([]string, 0, len(v.Pauses))
	for app := range v.Pauses {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	for _, app := range apps {
		fmt.Printf("  pause %s: %s (%d request(s) parked and replayed)\n", app, v.Pauses[app], v.Parked[app])
	}
	return nil
}

// health fetches the gray-failure monitor's fleet view and renders a
// per-device table: peer-relative score (EWMA / peer-median, 1.0 ≈
// nominal), escalation state, and the rollup counters.
func (c *client) health() error {
	raw, err := c.fetch("/v1/health/devices")
	if err != nil {
		return err
	}
	var v struct {
		Attached bool `json:"attached"`
		Stats    struct {
			Suspects     int    `json:"suspects"`
			Quarantines  int    `json:"quarantines"`
			Restores     int    `json:"restores"`
			Dispatches   uint64 `json:"dispatches"`
			HedgesFired  uint64 `json:"hedges_fired"`
			HedgesWon    uint64 `json:"hedges_won"`
			HedgesDenied uint64 `json:"hedges_denied"`
			Steered      uint64 `json:"steered"`
		} `json:"stats"`
		Devices []struct {
			Device     string  `json:"device"`
			Class      string  `json:"class"`
			State      string  `json:"state"`
			Score      float64 `json:"score"`
			EWMA       float64 `json:"ewma"`
			PeerMedian float64 `json:"peer_median"`
			Samples    int     `json:"samples"`
		} `json:"devices"`
	}
	if err := json.Unmarshal(raw, &v); err != nil {
		return fmt.Errorf("decoding device health: %w", err)
	}
	if !v.Attached {
		fmt.Println("no health monitor attached")
		return nil
	}
	fmt.Printf("%-16s %-10s %-14s %7s %7s %7s %8s\n",
		"DEVICE", "CLASS", "STATE", "SCORE", "EWMA", "PEER", "SAMPLES")
	for _, d := range v.Devices {
		fmt.Printf("%-16s %-10s %-14s %7.2f %7.2f %7.2f %8d\n",
			d.Device, d.Class, d.State, d.Score, d.EWMA, d.PeerMedian, d.Samples)
	}
	s := v.Stats
	fmt.Printf("suspects=%d quarantines=%d restores=%d dispatches=%d hedges: fired=%d won=%d denied=%d steered=%d\n",
		s.Suspects, s.Quarantines, s.Restores, s.Dispatches,
		s.HedgesFired, s.HedgesWon, s.HedgesDenied, s.Steered)
	return nil
}

// send issues a bodyless request and returns the raw response body.
func (c *client) send(method, path string) ([]byte, error) {
	req, err := http.NewRequest(method, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("request failed with %s: %s", resp.Status, raw)
	}
	return raw, nil
}

// fetch GETs a path and returns the raw body (unlike do, which prints).
func (c *client) fetch(path string) ([]byte, error) {
	req, err := http.NewRequest("GET", c.base+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("request failed with %s: %s", resp.Status, raw)
	}
	return raw, nil
}

func (c *client) do(method, path, contentType string, body []byte) error {
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") == nil {
		raw = pretty.Bytes()
	}
	fmt.Printf("%s\n%s\n", resp.Status, raw)
	if resp.StatusCode >= 400 {
		return fmt.Errorf("request failed with %s", resp.Status)
	}
	return nil
}
