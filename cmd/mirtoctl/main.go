// Command mirtoctl is the CLI client for the MIRTO agent REST API.
//
// Usage:
//
//	mirtoctl -addr http://host:port -token TOKEN COMMAND [args]
//
// Commands:
//
//	deploy FILE     deploy a TOSCA YAML template or .csar package
//	list            list deployments
//	get APP         show one deployment
//	delete APP      undeploy an application
//	kpis APP        show an application's KPIs
//	registry        dump the Resource Registry snapshot
//	trace [ID]      list recorded request traces, or print one trace's
//	                span tree and critical path
//	health          agent health
//
// Pair it with `continuum-sim -serve :8080`.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"myrtus/internal/trace"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "MIRTO agent base URL")
	token := flag.String("token", "admin-token", "bearer token")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cli := &client{base: strings.TrimRight(*addr, "/"), token: *token}
	var err error
	switch args[0] {
	case "deploy":
		if len(args) != 2 {
			log.Fatal("usage: mirtoctl deploy FILE")
		}
		err = cli.deploy(args[1])
	case "list":
		err = cli.get("/v1/deployments")
	case "get":
		if len(args) != 2 {
			log.Fatal("usage: mirtoctl get APP")
		}
		err = cli.get("/v1/deployments/" + args[1])
	case "delete":
		if len(args) != 2 {
			log.Fatal("usage: mirtoctl delete APP")
		}
		err = cli.do("DELETE", "/v1/deployments/"+args[1], "", nil)
	case "kpis":
		if len(args) != 2 {
			log.Fatal("usage: mirtoctl kpis APP")
		}
		err = cli.get("/v1/kpis/" + args[1])
	case "registry":
		err = cli.get("/v1/registry")
	case "trace":
		if len(args) == 1 {
			err = cli.get("/v1/traces")
			break
		}
		err = cli.trace(args[1])
	case "health":
		err = cli.get("/v1/healthz")
	default:
		log.Fatalf("unknown command %q", args[0])
	}
	if err != nil {
		log.Fatal(err)
	}
}

type client struct {
	base, token string
}

func (c *client) deploy(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	ct := "application/x-yaml"
	if strings.HasSuffix(path, ".csar") || strings.HasSuffix(path, ".zip") {
		ct = "application/zip"
	}
	return c.do("POST", "/v1/deployments", ct, data)
}

func (c *client) get(path string) error { return c.do("GET", path, "", nil) }

// trace fetches one trace and renders its span tree plus critical path
// locally (the agent serves raw spans; the analysis is client-side).
func (c *client) trace(id string) error {
	raw, err := c.fetch("/v1/traces/" + id)
	if err != nil {
		return err
	}
	var doc struct {
		ID    string        `json:"id"`
		Spans []*trace.Span `json:"spans"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("decoding trace: %w", err)
	}
	tr, err := trace.FromSpans(doc.Spans)
	if err != nil {
		return err
	}
	fmt.Print(trace.RenderTree(tr))
	segs, total := tr.CriticalPath()
	fmt.Print(trace.RenderCriticalPath(segs, total))
	return nil
}

// fetch GETs a path and returns the raw body (unlike do, which prints).
func (c *client) fetch(path string) ([]byte, error) {
	req, err := http.NewRequest("GET", c.base+path, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode >= 400 {
		return nil, fmt.Errorf("request failed with %s: %s", resp.Status, raw)
	}
	return raw, nil
}

func (c *client) do(method, path, contentType string, body []byte) error {
	req, err := http.NewRequest(method, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Authorization", "Bearer "+c.token)
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, raw, "", "  ") == nil {
		raw = pretty.Bytes()
	}
	fmt.Printf("%s\n%s\n", resp.Status, raw)
	if resp.StatusCode >= 400 {
		return fmt.Errorf("request failed with %s", resp.Status)
	}
	return nil
}
