// Command continuum-sim boots a full simulated MYRTUS continuum, deploys
// the built-in smart-mobility pipeline through the MIRTO Cognitive
// Engine, drives a request load against it, and prints the resulting
// topology, placement, and KPIs.
//
// Usage:
//
//	continuum-sim [-seed N] [-requests N] [-goal latency|energy|balanced]
//	              [-fail device] [-serve addr]
//	              [-cpuprofile file] [-memprofile file]
//	continuum-sim chaos <scenario> [-seed N] [-mapek=false] [-list]
//	continuum-sim overload [-seed N] [-admission=false] [-duration S]
//	continuum-sim tenants [-seed N] [-quotas=false] [-duration S]
//
// With -serve, the MIRTO agent REST API is exposed on addr (tokens:
// admin-token / viewer-token) instead of running the batch scenario.
// The chaos subcommand runs a bundled fault-injection scenario against
// the self-healing stack and prints its resilience report; with -mapek
// (the default) it exits non-zero if availability drops below 99%.
// The "noisy-neighbor" chaos scenario instead flash-crowds an
// aggressor tenant against a victim and gates on tenant isolation.
// The "planned-drain" scenario runs the three-arm live-migration
// experiment — planned drain vs same-seed crash vs crash mid-migration
// — and gates on zero-loss, sub-tick-pause drains.
// The "gray-fail" scenario runs the four-arm fail-slow experiment —
// fault-free baseline, full defense (peer-relative health scoring +
// hedged requests + quarantine), hedge-only ablation, and no-defense
// control — and gates on availability, tail latency, detection, and
// exactly-once state under hedging.
// The overload subcommand sweeps offered load from 0.5x to 4x measured
// capacity and prints the goodput-vs-load curve; with -admission (the
// default) it exits non-zero if 4x goodput retention falls below 90%.
// The tenants subcommand runs the mixed-tenant sweep — an aggressor
// tenant at 1x/2x/4x its admission budget against an in-budget victim
// — and, with -quotas (the default), exits non-zero if the victim's
// goodput or p95 bound is violated at the heaviest point.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"myrtus"
	"myrtus/internal/chaos"
	"myrtus/internal/mirto"
	"myrtus/internal/overload"
	"myrtus/internal/sim"
	"myrtus/internal/trace"
)

const mobilityApp = `
tosca_definitions_version: tosca_2_0
metadata:
  template_name: smart-mobility
topology_template:
  node_templates:
    camera:
      type: myrtus.nodes.Container
      properties: {cpu: 0.5, memoryMB: 128, gops: 0.4, outMB: 2.0, inMB: 4.0}
    detector:
      type: myrtus.nodes.AcceleratedKernel
      properties: {cpu: 1, memoryMB: 512, kernel: conv2d, gops: 12, outMB: 0.2}
      requirements:
        - source: camera
    aggregator:
      type: myrtus.nodes.Container
      properties: {cpu: 2, memoryMB: 2048, gops: 4, outMB: 0.05}
      requirements:
        - source: detector
  policies:
    - cam-edge:
        type: myrtus.policies.Placement
        targets: [camera]
        properties: {layer: edge}
    - det-medium:
        type: myrtus.policies.Security
        targets: [detector]
        properties: {level: medium}
`

func chaosMain(argv []string) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "scenario + simulation seed")
	mapek := fs.Bool("mapek", true, "run the MAPE-K self-healing loop (false = control run)")
	stateful := fs.Bool("stateful", false, "run the stateful-app variant: checkpoint/restore stage state and verify it against a fault-free same-seed reference")
	checkpoint := fs.Bool("checkpoint", true, "persist stateful stage state to the raft-backed KB (false = control arm measuring unrecovered loss)")
	fencing := fs.Bool("fencing", true, "split-brain only: run the full fenced experiment (false = unfenced control arm alone)")
	list := fs.Bool("list", false, "list bundled scenarios and exit")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: continuum-sim chaos <scenario> [-seed N] [-mapek=false] [-stateful] [-checkpoint=false]\nscenarios (from the registry; -list prints bare names):\n")
		for _, n := range chaos.Names() {
			reg, _ := chaos.Lookup(n)
			fmt.Fprintf(fs.Output(), "  %-16s %s\n", reg.Name, reg.Summary)
		}
		fs.PrintDefaults()
	}
	// Accept flags before or after the positional scenario name.
	fs.Parse(argv) //nolint:errcheck // ExitOnError
	name := ""
	if fs.NArg() > 0 {
		name = fs.Arg(0)
		fs.Parse(fs.Args()[1:]) //nolint:errcheck
	}
	if *list {
		fmt.Println(strings.Join(chaos.Names(), "\n"))
		return
	}
	if name == "" {
		fs.Usage()
		os.Exit(2)
	}
	if reg, ok := chaos.Lookup(name); ok && reg.Harness != nil {
		// Multi-arm experiment harness (noisy-neighbor, planned-drain,
		// gray-fail, split-brain): runs its own arms end to end; -mapek
		// carries the defense/control switch for the harnesses that have
		// one, and gates the exit code on the harness verdict.
		var rep chaos.HarnessReport
		var err error
		if name == "split-brain" {
			// split-brain's control switch is -fencing, not -mapek:
			// false runs the unfenced control arm alone.
			rep, err = chaos.RunSplitBrain(*seed, *fencing)
		} else {
			rep, err = reg.Harness(*seed, *mapek)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep.Render())
		if *mapek {
			if v := rep.Violated(); v != "" {
				fmt.Fprintf(os.Stderr, "chaos: %s\n", v)
				os.Exit(1)
			}
		}
		return
	}
	sc, err := chaos.BuiltIn(name, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *stateful {
		sc = chaos.Statefulize(sc)
	}
	rep, err := chaos.Run(sc, chaos.Config{
		Seed: *seed, MAPEK: *mapek,
		Stateful: *stateful, NoCheckpoint: !*checkpoint,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
	if *mapek && rep.Availability() < 0.99 {
		fmt.Fprintf(os.Stderr, "chaos: availability %.2f%% below the 99%% self-healing bar\n",
			100*rep.Availability())
		os.Exit(1)
	}
	if *stateful && *checkpoint {
		if len(rep.DivergentCells) > 0 {
			fmt.Fprintf(os.Stderr, "chaos: %d state cell(s) diverged from the fault-free reference\n",
				len(rep.DivergentCells))
			os.Exit(1)
		}
		if rep.RPOItems > 0 {
			fmt.Fprintf(os.Stderr, "chaos: RPO violated: %d committed state item(s) lost\n", rep.RPOItems)
			os.Exit(1)
		}
	}
}

func overloadMain(argv []string) {
	fs := flag.NewFlagSet("overload", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	admission := fs.Bool("admission", true, "enable the protection stack (false = unprotected control run)")
	duration := fs.Float64("duration", 10, "virtual seconds per sweep point")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: continuum-sim overload [-seed N] [-admission=false] [-duration S]\n")
		fs.PrintDefaults()
	}
	fs.Parse(argv) //nolint:errcheck // ExitOnError
	rep, err := overload.Run(overload.Config{
		Seed:      *seed,
		Admission: *admission,
		Duration:  sim.Time(*duration * float64(sim.Second)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
	if *admission {
		last := rep.Points[len(rep.Points)-1]
		if peak := rep.PeakGoodput(); peak > 0 && last.GoodputRPS/peak < 0.9 {
			fmt.Fprintf(os.Stderr, "overload: %.1fx goodput retention %.1f%% below the 90%% bar\n",
				last.Multiplier, 100*last.GoodputRPS/peak)
			os.Exit(1)
		}
	}
}

func tenantsMain(argv []string) {
	fs := flag.NewFlagSet("tenants", flag.ExitOnError)
	seed := fs.Uint64("seed", 1, "simulation seed")
	quotas := fs.Bool("quotas", true, "per-tenant admission budgets + DRR dispatch (false = shared-admission control arm)")
	duration := fs.Float64("duration", 8, "virtual seconds per sweep point")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: continuum-sim tenants [-seed N] [-quotas=false] [-duration S]\n")
		fs.PrintDefaults()
	}
	fs.Parse(argv) //nolint:errcheck // ExitOnError
	rep, err := overload.RunTenants(overload.TenantsConfig{
		Seed:     *seed,
		Quotas:   *quotas,
		Duration: sim.Time(*duration * float64(sim.Second)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render())
	if *quotas {
		if v := rep.Violated(); v != "" {
			fmt.Fprintf(os.Stderr, "tenants: %s\n", v)
			os.Exit(1)
		}
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		chaosMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "overload" {
		overloadMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "tenants" {
		tenantsMain(os.Args[2:])
		return
	}
	// Exit through a deferred os.Exit so the pprof defers below run
	// even on a failed run.
	exitCode := 0
	defer func() { os.Exit(exitCode) }()
	seed := flag.Uint64("seed", 1, "simulation seed")
	requests := flag.Int("requests", 50, "requests to drive through the pipeline")
	goal := flag.String("goal", "latency", "orchestration goal: latency, energy, balanced")
	failDev := flag.String("fail", "", "fail this device mid-run to exercise the MAPE-K loop")
	serve := flag.String("serve", "", "serve the MIRTO agent REST API on this address instead")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file (planner profiling)")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	defer func() {
		if *memprofile == "" {
			return
		}
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		runtime.GC() // settle the heap so the profile shows live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
	}()

	opts := myrtus.DefaultOptions()
	opts.Infrastructure.Seed = *seed
	switch *goal {
	case "latency":
		opts.Goal = myrtus.LatencyGoal()
	case "energy":
		opts.Goal = myrtus.EnergyGoal()
	case "balanced":
		opts.Goal = myrtus.BalancedGoal()
	default:
		log.Fatalf("unknown goal %q", *goal)
	}
	sys, err := myrtus.New(opts)
	if err != nil {
		log.Fatal(err)
	}

	if *serve != "" {
		handler := sys.Handler(map[string]mirto.Role{
			"admin-token":  mirto.RoleAdmin,
			"viewer-token": mirto.RoleViewer,
		})
		fmt.Printf("MIRTO agent listening on %s (tokens: admin-token, viewer-token)\n", *serve)
		log.Fatal(http.ListenAndServe(*serve, handler))
	}

	fmt.Println(sys.Continuum.RenderTopology())

	plan, err := sys.DeployYAML(mobilityApp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %q (score %.4f, %d negotiations):\n", plan.App, plan.Score, plan.Negotiations)
	for _, a := range plan.Assignments {
		fmt.Printf("  %-12s -> %-14s (%s layer, security=%q)\n", a.TemplateNode, a.Device, a.Layer, a.SecurityLvl)
	}
	if err := sys.AttachSLO(plan.App, mirto.SLO{MaxFailureRate: 0.1}); err != nil {
		log.Fatal(err)
	}

	half := *requests / 2
	for i := 0; i < *requests; i++ {
		if *failDev != "" && i == half {
			fmt.Printf("\n!! failing device %s at request %d\n", *failDev, i)
			if err := sys.Continuum.FailDevice(*failDev); err != nil {
				log.Fatal(err)
			}
		}
		_, _, err := sys.ServeRequest(plan.App, "edge-hmp-0", 4)
		if err != nil {
			fmt.Printf("request %d failed: %v\n", i, err)
		}
		sys.IterateLoops()
		sys.Continuum.Engine.RunFor(100 * sim.Millisecond)
	}

	k, _ := sys.KPIs(plan.App)
	fmt.Printf("\nKPIs for %s after %d requests:\n", plan.App, *requests)
	fmt.Printf("  ok=%d failed=%d\n", k.Requests, k.Failed)
	fmt.Printf("  latency p50=%.2fms p95=%.2fms max=%.2fms\n", k.LatencyMs.P50, k.LatencyMs.P95, k.LatencyMs.Max)
	fmt.Printf("  pipeline energy=%.2f J, total continuum energy=%.1f J\n", k.EnergyJoules, sys.Continuum.TotalEnergy())
	np, _ := sys.Orchestrator.PlanFor(plan.App)
	fmt.Println("\nfinal placement:")
	for _, a := range np.Assignments {
		fmt.Printf("  %-12s -> %s\n", a.TemplateNode, a.Device)
	}

	// Per-layer latency attribution over all recorded request traces.
	// Deterministic for a fixed seed: spans are stamped in virtual time.
	sum := sys.PublishTraces()
	fmt.Println()
	fmt.Print(trace.RenderSummary(sum))

	if k.Failed > int64(*requests)/2 {
		exitCode = 1
	}
}
