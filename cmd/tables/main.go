// Command tables regenerates every table and figure of the paper from
// the live implementation:
//
//	tables -table1   EU-CEI building blocks vs MYRTUS implementation (live probes)
//	tables -table2   Security levels with measured primitive performance
//	tables -fig1     Technical pillars mapped to repository modules
//	tables -fig2     Layered continuum infrastructure (live instance)
//	tables -fig3     MIRTO agent pipeline, exercised end-to-end
//	tables -fig4     DPE flow, executed end-to-end
//	tables -all      Everything.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"myrtus"
	"myrtus/internal/adt"
	"myrtus/internal/continuum"
	"myrtus/internal/dpe"
	"myrtus/internal/dse"
	"myrtus/internal/mirto"
	"myrtus/internal/mlir"
	"myrtus/internal/security"
	"myrtus/internal/tosca"
)

func main() {
	t1 := flag.Bool("table1", false, "regenerate Table I")
	t2 := flag.Bool("table2", false, "regenerate Table II")
	f1 := flag.Bool("fig1", false, "regenerate Fig. 1")
	f2 := flag.Bool("fig2", false, "regenerate Fig. 2")
	f3 := flag.Bool("fig3", false, "regenerate Fig. 3")
	f4 := flag.Bool("fig4", false, "regenerate Fig. 4")
	all := flag.Bool("all", false, "regenerate everything")
	flag.Parse()
	if *all {
		*t1, *t2, *f1, *f2, *f3, *f4 = true, true, true, true, true, true
	}
	if !*t1 && !*t2 && !*f1 && !*f2 && !*f3 && !*f4 {
		flag.Usage()
		return
	}
	if *f1 {
		fmt.Println(continuum.RenderPillars())
		fmt.Println()
	}
	var c *continuum.Continuum
	if *t1 || *f2 {
		opts := continuum.DefaultOptions()
		var err error
		c, err = continuum.Build(opts)
		if err != nil {
			log.Fatal(err)
		}
		c.Heartbeat()
	}
	if *f2 {
		fmt.Println(c.RenderTopology())
	}
	if *t1 {
		fmt.Println(c.RenderTableI())
	}
	if *t2 {
		fmt.Println(renderTableII())
	}
	if *f3 {
		fmt.Println(renderFig3())
	}
	if *f4 {
		fmt.Println(renderFig4())
	}
}

// renderTableII prints the three security levels with live measurements.
func renderTableII() string {
	var b strings.Builder
	fmt.Fprintln(&b, "TABLE II: MYRTUS security levels (live, measured on this machine)")
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	for _, info := range security.TableII() {
		s, err := security.SuiteFor(info.Level)
		if err != nil {
			log.Fatal(err)
		}
		key := bytes.Repeat([]byte{1}, s.KeySize())
		nonce := bytes.Repeat([]byte{2}, s.NonceSize())
		encNs := measure(func() {
			if _, err := s.Seal(key, nonce, nil, payload); err != nil {
				log.Fatal(err)
			}
		})
		hashNs := measure(func() { s.Hash(payload) })
		signer, err := s.NewSigner(nil)
		if err != nil {
			log.Fatal(err)
		}
		signStart := time.Now()
		sig, err := signer.Sign(payload)
		if err != nil {
			log.Fatal(err)
		}
		signNs := time.Since(signStart).Nanoseconds()
		fmt.Fprintf(&b, "\n%s level\n", strings.ToUpper(string(info.Level)))
		fmt.Fprintf(&b, "  encryption:     %-44s %8.1f µs / 4KiB\n", info.Encryption, float64(encNs)/1e3)
		fmt.Fprintf(&b, "  authentication: %-44s sign %.2f ms, |sig| %d B, |pub| %d B\n",
			info.Authentication, float64(signNs)/1e6, len(sig), len(signer.PublicKey()))
		fmt.Fprintf(&b, "  key exchange:   %s\n", info.KeyExchange)
		fmt.Fprintf(&b, "  hashing:        %-44s %8.1f µs / 4KiB\n", info.Hashing, float64(hashNs)/1e3)
	}
	return b.String()
}

func measure(fn func()) int64 {
	const n = 64
	start := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return time.Since(start).Nanoseconds() / n
}

// renderFig3 exercises the MIRTO agent pipeline end-to-end through the
// REST API and narrates each Fig. 3 component as it acts.
func renderFig3() string {
	var b strings.Builder
	fmt.Fprintln(&b, "FIG. 3: MIRTO Cognitive Engine agent — exercised end-to-end")
	opts := myrtus.DefaultOptions()
	opts.Infrastructure.KBReplicas = 1
	sys, err := myrtus.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(sys.Handler(map[string]mirto.Role{"tok": mirto.RoleAdmin}))
	defer srv.Close()
	doc := `
tosca_definitions_version: tosca_2_0
metadata:
  template_name: fig3-app
topology_template:
  node_templates:
    stage:
      type: myrtus.nodes.Container
      properties: {cpu: 1, memoryMB: 256, gops: 2}
`
	req, _ := http.NewRequest("POST", srv.URL+"/v1/deployments", strings.NewReader(doc))
	req.Header.Set("Authorization", "Bearer tok")
	req.Header.Set("Content-Type", "application/x-yaml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Fprintf(&b, "  [API daemon]          REST request accepted: %s\n", resp.Status)
	fmt.Fprintln(&b, "  [Auth module]         bearer token resolved to role admin")
	fmt.Fprintln(&b, "  [TOSCA validator]     template fig3-app passed the validation processor")
	plan, _ := sys.Orchestrator.PlanFor("fig3-app")
	a := plan.Assignments[0]
	fmt.Fprintf(&b, "  [MIRTO manager]       WL/Node/Network/P&S drivers placed %q on %s (%s layer, %d negotiations)\n",
		a.TemplateNode, a.Device, a.Layer, plan.Negotiations)
	fmt.Fprintf(&b, "  [Deployment proxy]    pod %s bound via the %s cluster (Kubernetes role)\n", a.PodName, a.Cluster.Name())
	sys.Continuum.Heartbeat()
	fmt.Fprintf(&b, "  [KB proxy]            registry snapshot: %d live components at revision %d\n",
		len(sys.Continuum.Registry.Snapshot()), sys.Continuum.KB.Revision())
	lat, energy, err := sys.ServeRequest("fig3-app", "", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(&b, "  [Runtime]             request served: latency %v, energy %.3f J\n", lat, energy)
	return b.String()
}

// renderFig4 runs the full DPE flow and prints its pipeline report.
func renderFig4() string {
	var b strings.Builder
	fmt.Fprintln(&b, "FIG. 4: MYRTUS Design and Programming Environment — executed end-to-end")
	st, err := tosca.Parse(`
tosca_definitions_version: tosca_2_0
metadata:
  template_name: fig4-app
topology_template:
  node_templates:
    src:
      type: myrtus.nodes.Container
      properties: {cpu: 0.5, memoryMB: 128, gops: 0.2, outMB: 1.0}
    cnn:
      type: myrtus.nodes.AcceleratedKernel
      properties: {cpu: 1, memoryMB: 512, kernel: conv2d, gops: 8}
      requirements:
        - source: src
`)
	if err != nil {
		log.Fatal(err)
	}
	model := &mlir.Model{Name: "fig4-cnn"}
	model.Conv("c1", "", 64, 64, 3, 8, 3)
	model.Relu("r1", "c1", 64*64*8)
	model.MaxPool("p1", "r1", 64*64*8)
	model.Gemm("fc", "p1", 8192, 10)
	res, err := dpe.Build(&dpe.Project{
		Name:     "fig4-app",
		Template: st,
		Threats: &adt.Tree{Name: "fig4-threats", Root: &adt.Node{
			Name: "compromise", Gate: adt.Or,
			Children: []*adt.Node{
				{Name: "mitm", Gate: adt.Leaf, Prob: 0.4, Cost: 2, Tags: []string{"network"}},
				{Name: "flash", Gate: adt.Leaf, Prob: 0.2, Cost: 6, Tags: []string{"firmware"}},
			},
		}},
		DefenceBudget: 5,
		Models:        map[string]*mlir.Model{"cnn": model},
		Platform: &dse.Platform{
			Name: "fig4-soc",
			PEs: []dse.PE{
				{Name: "cpu", GOPS: 8, PowerW: 4},
				{Name: "fpga", GOPS: 4, PowerW: 2, Accel: map[string]float64{"conv2d": 10}},
			},
			BandwidthMBps: 500, CommEnergyPerMB: 0.02,
		},
		CGRAPEs: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	b.WriteString(res.Report)
	fmt.Fprintf(&b, "deployment specification: %d files in CSAR (%v)\n", len(res.CSAR.Files), res.CSAR.Paths())
	return b.String()
}
