// Command dpec is the MYRTUS DPE compiler driver: it takes a TOSCA
// service template, runs the three-step DPE flow (validation + threat
// analysis, model import, node-level optimization), and writes the
// deployment specification CSAR that MIRTO consumes.
//
// Usage:
//
//	dpec -template app.yaml [-out app.csar] [-threats] [-cgra N]
//
// Accelerated-kernel nodes in the template get a demo CNN model imported
// and synthesized (standing in for the designer's ONNX export).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"myrtus/internal/adt"
	"myrtus/internal/dpe"
	"myrtus/internal/dse"
	"myrtus/internal/mlir"
	"myrtus/internal/tosca"
)

func main() {
	templatePath := flag.String("template", "", "TOSCA service template (YAML)")
	out := flag.String("out", "app.csar", "output CSAR path")
	withThreats := flag.Bool("threats", false, "include a demo threat model and synthesize countermeasures")
	cgra := flag.Int("cgra", 4, "CGRA PEs for lowering (0 disables)")
	flag.Parse()
	if *templatePath == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*templatePath)
	if err != nil {
		log.Fatal(err)
	}
	st, err := tosca.Parse(string(src))
	if err != nil {
		log.Fatal(err)
	}
	proj := &dpe.Project{
		Name:     st.Name,
		Template: st,
		Models:   map[string]*mlir.Model{},
		CGRAPEs:  *cgra,
		Platform: &dse.Platform{
			Name: "generic-edge",
			PEs: []dse.PE{
				{Name: "cpu0", GOPS: 8, PowerW: 4},
				{Name: "cpu1", GOPS: 8, PowerW: 4},
				{Name: "fpga", GOPS: 4, PowerW: 2, Accel: map[string]float64{"conv2d": 10, "fft": 8, "pose-estimation": 10}},
			},
			BandwidthMBps: 500, CommEnergyPerMB: 0.02,
		},
	}
	for name, nt := range st.Nodes {
		if nt.Type != tosca.TypeAcceleratedKernel {
			continue
		}
		m := &mlir.Model{Name: name + "-model"}
		m.Conv("c1", "", 64, 64, 3, 8, 3)
		m.Relu("r1", "c1", 64*64*8)
		m.Conv("c2", "r1", 32, 32, 8, 16, 3)
		m.Relu("r2", "c2", 32*32*16)
		m.Gemm("fc", "r2", 4096, 16)
		proj.Models[name] = m
	}
	if *withThreats {
		proj.Threats = &adt.Tree{Name: st.Name + "-threats", Root: &adt.Node{
			Name: "compromise", Gate: adt.Or,
			Children: []*adt.Node{
				{Name: "intercept-stream", Gate: adt.Leaf, Prob: 0.4, Cost: 3, Tags: []string{"network"}},
				{Name: "tamper-firmware", Gate: adt.Leaf, Prob: 0.2, Cost: 8, Tags: []string{"firmware"}},
				{Name: "inject-input", Gate: adt.Leaf, Prob: 0.3, Cost: 2, Tags: []string{"injection"}},
			},
		}}
		proj.DefenceBudget = 8
	}
	res, err := dpe.Build(proj)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Report)
	data, err := res.CSAR.Bytes()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes, %d files)\n", *out, len(data), len(res.CSAR.Files))
}
