package myrtus

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"myrtus/internal/dpe"
	"myrtus/internal/mirto"
	"myrtus/internal/mlir"
	"myrtus/internal/sim"
	"myrtus/internal/tosca"
	"myrtus/internal/trace"
)

const demoApp = `
tosca_definitions_version: tosca_2_0
metadata:
  template_name: demo
topology_template:
  node_templates:
    ingest:
      type: myrtus.nodes.Container
      properties: {cpu: 0.5, memoryMB: 128, gops: 0.5, outMB: 1.0}
    analyze:
      type: myrtus.nodes.AcceleratedKernel
      properties: {cpu: 1, memoryMB: 512, kernel: fft, gops: 6, outMB: 0.1}
      requirements:
        - source: ingest
`

func newSystem(t *testing.T) *System {
	t.Helper()
	opts := DefaultOptions()
	opts.Infrastructure.KBReplicas = 1
	sys, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestFacadeDeployAndServe(t *testing.T) {
	sys := newSystem(t)
	plan, err := sys.DeployYAML(demoApp)
	if err != nil {
		t.Fatal(err)
	}
	if plan.App != "demo" || len(plan.Assignments) != 2 {
		t.Fatalf("plan = %+v", plan)
	}
	lat, energy, err := sys.ServeRequest("demo", "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 || energy <= 0 {
		t.Fatalf("lat=%v energy=%v", lat, energy)
	}
	k, ok := sys.KPIs("demo")
	if !ok || k.Requests != 1 {
		t.Fatalf("kpis = %+v %v", k, ok)
	}
	if err := sys.Undeploy("demo"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDeployYAMLErrors(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.DeployYAML("garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestFacadeDPEToRuntime(t *testing.T) {
	// Full Pillar 3 → Pillar 2 hand-off: DPE builds a CSAR with a custom
	// bitstream; the facade deploys it and the kernel runs accelerated.
	st, err := tosca.Parse(`
tosca_definitions_version: tosca_2_0
metadata:
  template_name: csar-app
topology_template:
  node_templates:
    feed:
      type: myrtus.nodes.Container
      properties: {cpu: 0.5, memoryMB: 128, gops: 0.3, outMB: 0.5}
    kern:
      type: myrtus.nodes.AcceleratedKernel
      properties: {cpu: 1, memoryMB: 256, kernel: custom-dsp, gops: 10}
      requirements:
        - source: feed
`)
	if err != nil {
		t.Fatal(err)
	}
	model := &mlir.Model{Name: "dsp"}
	model.Conv("c1", "", 32, 32, 1, 4, 3)
	model.Relu("r1", "c1", 32*32*4)
	res, err := BuildProject(&dpe.Project{
		Name: "csar-app", Template: st,
		Models: map[string]*mlir.Model{"kern": model},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.CSAR.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t)
	plan, err := sys.DeployCSAR(data)
	if err != nil {
		t.Fatal(err)
	}
	// The custom-dsp kernel bitstream must now be registered.
	if got := sys.Continuum.Bitstreams.ForKernel("custom-dsp"); len(got) != 1 {
		t.Fatalf("bitstreams = %v", got)
	}
	// If the kernel landed on an FPGA device, it must be loaded.
	a, _ := plan.Assignment("kern")
	if fab := sys.Continuum.Devices[a.Device].Fabric(); fab != nil && fab.FindLoaded("custom-dsp") < 0 {
		t.Fatal("bitstream not loaded on placement")
	}
	if _, _, err := sys.ServeRequest("csar-app", "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSLOAndLoops(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.DeployYAML(demoApp); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachSLO("demo", mirto.SLO{MaxFailureRate: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AttachSLO("ghost", mirto.SLO{}); err == nil {
		t.Fatal("ghost SLO accepted")
	}
	sys.IterateLoops() // healthy: must be a no-op, not a panic
	loop, ok := sys.Orchestrator.Loop("demo")
	if !ok {
		t.Fatal("loop missing")
	}
	if iters, _, _ := loop.Stats(); iters != 1 {
		t.Fatalf("iters = %d", iters)
	}
}

func TestFacadeHandler(t *testing.T) {
	sys := newSystem(t)
	srv := httptest.NewServer(sys.Handler(map[string]mirto.Role{"t": mirto.RoleAdmin}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health = %d", resp.StatusCode)
	}
}

func TestBuildFromCSARErrors(t *testing.T) {
	if _, err := BuildFromCSAR([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestTraceCriticalPathMatchesLatency(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.DeployYAML(demoApp); err != nil {
		t.Fatal(err)
	}
	// Ingress elsewhere forces a real network transfer into the pipeline.
	lat, _, err := sys.ServeRequest("demo", "edge-hmp-0", 2)
	if err != nil {
		t.Fatal(err)
	}
	var reqTrace *trace.Trace
	for _, tr := range sys.Traces() {
		if tr.Root.Name == "request/demo" {
			reqTrace = tr
		}
	}
	if reqTrace == nil {
		t.Fatal("no request trace recorded")
	}
	segs, total := reqTrace.CriticalPath()
	if total != lat {
		t.Fatalf("trace total %v != served latency %v", total, lat)
	}
	var explained sim.Time
	for _, seg := range segs {
		explained += seg.Wait + seg.Span.Duration()
	}
	if explained != total {
		t.Fatalf("critical path explains %v of total %v", explained, total)
	}
	// The path must traverse at least one device span and, with a remote
	// ingress, at least one network span.
	layers := map[trace.Layer]bool{}
	for _, seg := range segs {
		layers[seg.Span.Layer] = true
	}
	if !layers[trace.LayerDevice] || !layers[trace.LayerNetwork] {
		t.Fatalf("critical path layers = %v", layers)
	}
}

func TestPublishTraces(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.DeployYAML(demoApp); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := sys.ServeRequest("demo", "edge-hmp-0", 1); err != nil {
			t.Fatal(err)
		}
	}
	sum := sys.PublishTraces()
	if sum.Traces < 3 || len(sum.Layers) == 0 {
		t.Fatalf("summary = %+v", sum)
	}
	// Telemetry export: per-span histograms and critical-path counters.
	if s, ok := sys.Continuum.TraceMetrics.Find("span_ms:request/demo"); !ok || s.Hist.Count != 3 {
		t.Fatalf("span histogram = %+v ok=%v", s, ok)
	}
	// KB export: the summary round-trips.
	back, _, ok := trace.LoadKB(sys.Continuum.KB)
	if !ok || back.Traces != sum.Traces {
		t.Fatalf("KB summary = %+v ok=%v", back, ok)
	}
}

func TestTraceSamplingOffNoTraces(t *testing.T) {
	sys := newSystem(t)
	sys.Continuum.Tracer.SetSampleEvery(0)
	if _, err := sys.DeployYAML(demoApp); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.ServeRequest("demo", "edge-hmp-0", 1); err != nil {
		t.Fatal(err)
	}
	if n := len(sys.Traces()); n != 0 {
		t.Fatalf("sampling off recorded %d traces", n)
	}
}
