#!/usr/bin/env bash
# overload_smoke.sh — CI gate for the overload-protection stack: run the
# goodput-vs-offered-load sweep twice with the same seed under the race
# detector, require the goodput-retention bar (the binary exits non-zero
# when 4x retention drops below 90%), and diff the two reports
# byte-for-byte to catch any nondeterminism regression. A control sweep
# with the protection stack off is printed for the comparison record.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${OVERLOAD_SEED:-7}"
DURATION="${OVERLOAD_DURATION:-6}"
BIN="$(mktemp -d)/continuum-sim"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -race -o "$BIN" ./cmd/continuum-sim

echo "== overload -seed $SEED (protected) =="
"$BIN" overload -seed "$SEED" -duration "$DURATION" | tee "$BIN.1"
"$BIN" overload -seed "$SEED" -duration "$DURATION" > "$BIN.2"
if ! diff -u "$BIN.1" "$BIN.2"; then
  echo "overload: sweep is nondeterministic for seed $SEED" >&2
  exit 1
fi
echo "determinism: ok"

echo "== overload -seed $SEED (unprotected control) =="
"$BIN" overload -seed "$SEED" -duration "$DURATION" -admission=false
