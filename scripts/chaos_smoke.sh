#!/usr/bin/env bash
# chaos_smoke.sh — CI gate for the chaos engine: run every bundled
# scenario twice with the same seed under the race detector, require
# the self-healing availability bar (the binary exits non-zero below
# 99%), and diff the two reports byte-for-byte to catch any
# nondeterminism regression.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${CHAOS_SEED:-7}"
BIN="$(mktemp -d)/continuum-sim"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -race -o "$BIN" ./cmd/continuum-sim

for sc in $("$BIN" chaos -list); do
  echo "== chaos $sc -seed $SEED =="
  "$BIN" chaos "$sc" -seed "$SEED" | tee "$BIN.$sc.1"
  "$BIN" chaos "$sc" -seed "$SEED" > "$BIN.$sc.2"
  if ! diff -u "$BIN.$sc.1" "$BIN.$sc.2"; then
    echo "chaos: $sc is nondeterministic for seed $SEED" >&2
    exit 1
  fi
  echo "determinism: ok"
done
