#!/usr/bin/env bash
# chaos_smoke.sh — CI gate for the chaos engine: run every bundled
# scenario twice with the same seed under the race detector, require
# the self-healing availability bar (the binary exits non-zero below
# 99%), and diff the two reports byte-for-byte to catch any
# nondeterminism regression.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${CHAOS_SEED:-7}"
BIN="$(mktemp -d)/continuum-sim"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -race -o "$BIN" ./cmd/continuum-sim

for sc in $("$BIN" chaos -list); do
  echo "== chaos $sc -seed $SEED =="
  "$BIN" chaos "$sc" -seed "$SEED" | tee "$BIN.$sc.1"
  "$BIN" chaos "$sc" -seed "$SEED" > "$BIN.$sc.2"
  if ! diff -u "$BIN.$sc.1" "$BIN.$sc.2"; then
    echo "chaos: $sc is nondeterministic for seed $SEED" >&2
    exit 1
  fi
  echo "determinism: ok"
done

# Stateful arm: checkpoint/restore must deliver RPO=0 (the binary exits
# non-zero on any lost item or state divergence from the fault-free
# reference), RTO p95 must stay under the 5s bar, and the stateful
# reports must be byte-deterministic too.
RTO_BAR_S=5
for sc in $("$BIN" chaos -list); do
  case "$sc" in
    # Harness scenarios (multi-arm experiments with their own gates and
    # render shapes) run in the plain loop above; the per-line RPO/RTO
    # greps below only fit the single-run stateful report.
    noisy-neighbor|planned-drain) continue ;;
  esac
  echo "== chaos $sc -stateful -seed $SEED =="
  "$BIN" chaos "$sc" -stateful -seed "$SEED" | tee "$BIN.$sc.s1"
  "$BIN" chaos "$sc" -stateful -seed "$SEED" > "$BIN.$sc.s2"
  if ! diff -u "$BIN.$sc.s1" "$BIN.$sc.s2"; then
    echo "chaos: $sc -stateful is nondeterministic for seed $SEED" >&2
    exit 1
  fi
  grep -q 'rpo_items=0 ' "$BIN.$sc.s1" || {
    echo "chaos: $sc -stateful reports nonzero RPO" >&2; exit 1; }
  grep -q 'divergent=0$' "$BIN.$sc.s1" || {
    echo "chaos: $sc -stateful diverged from the fault-free reference" >&2; exit 1; }
  rto_p95=$(sed -n 's/.*rto_p95=\([0-9.]*\)\(m\{0,1\}s\).*/\1 \2/p' "$BIN.$sc.s1")
  read -r rto_val rto_unit <<<"$rto_p95"
  [ "$rto_unit" = "ms" ] && rto_val=$(awk "BEGIN{print $rto_val/1000}")
  awk "BEGIN{exit !($rto_val > 0 && $rto_val < $RTO_BAR_S)}" || {
    echo "chaos: $sc -stateful rto_p95=$rto_p95 outside (0, ${RTO_BAR_S}s)" >&2; exit 1; }
  echo "stateful: rpo=0 rto_p95=${rto_val}s divergence=0 determinism: ok"
done
