#!/usr/bin/env bash
# splitbrain_smoke.sh — CI gate for the split-brain fencing defense:
# build with the race detector, run the three-arm split-brain
# experiment twice with the same seed, diff the reports byte-for-byte,
# and re-assert the headline bars from the rendered summary: the
# fenced defense arm lands zero zombie writes, zero double-applies,
# and zero fingerprint divergence while fencing at least one write,
# and the unfenced control arm measurably diverges. (The binary
# already exits non-zero on any violated bar; the greps keep a silent
# render regression from masking one.)
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${CHAOS_SEED:-7}"
BIN="$(mktemp -d)/continuum-sim"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -race -o "$BIN" ./cmd/continuum-sim

echo "== chaos split-brain -seed $SEED =="
"$BIN" chaos split-brain -seed "$SEED" | tee "$BIN.sb.1"
"$BIN" chaos split-brain -seed "$SEED" > "$BIN.sb.2"
if ! diff -u "$BIN.sb.1" "$BIN.sb.2"; then
  echo "splitbrain: split-brain is nondeterministic for seed $SEED" >&2
  exit 1
fi

summary=$(grep '^summary: defense ' "$BIN.sb.1")
echo "$summary" | grep -q ' | ok$' || {
  echo "splitbrain: experiment verdict not ok: $summary" >&2; exit 1; }
echo "$summary" | grep -Eq 'defense [^|]*fenced_writes=[1-9][0-9]*' || {
  echo "splitbrain: defense arm never fenced a write: $summary" >&2; exit 1; }
echo "$summary" | grep -Eq 'defense [^|]*zombie_landed=0 double_applies=0' || {
  echo "splitbrain: zombie writes or double-applies landed under fencing: $summary" >&2; exit 1; }
echo "$summary" | grep -Eq 'defense [^|]*divergent=0' || {
  echo "splitbrain: defense arm diverged from the fault-free reference: $summary" >&2; exit 1; }

# The control arm must demonstrate the failure the defense prevents:
# zombie writes land and the state fingerprint diverges (or a
# double-apply slips through the aged-out dedup window).
echo "$summary" | grep -Eq 'control [^|]*zombie_landed=[1-9][0-9]*' || {
  echo "splitbrain: control arm landed no zombie writes (fault too weak?): $summary" >&2; exit 1; }
echo "$summary" | grep -Eq 'control [^|]*(divergent=[1-9][0-9]*|double_applies=[1-9][0-9]*)' || {
  echo "splitbrain: control arm did not diverge: $summary" >&2; exit 1; }

# The control-only arm (-fencing=false) carries its own verdict.
"$BIN" chaos split-brain -seed "$SEED" -fencing=false > "$BIN.sb.ctl"
grep -q '^summary: control .* | ok$' "$BIN.sb.ctl" || {
  echo "splitbrain: control-only verdict not ok" >&2
  tail -3 "$BIN.sb.ctl" >&2
  exit 1
}

echo "splitbrain: defense fenced every stale write with zero divergence, control diverged, determinism: ok"
