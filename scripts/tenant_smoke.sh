#!/usr/bin/env bash
# tenant_smoke.sh — CI gate for the multi-tenant isolation stack: run the
# mixed-tenant sweep twice with the same seed under the race detector,
# require the noisy-neighbor isolation bar (the binary exits non-zero
# when the victim's goodput drops below 90% or its p95 exceeds 1.5x the
# solo baseline at the heaviest aggressor point), and diff the two
# reports byte-for-byte to catch any nondeterminism regression. A
# control sweep with shared admission (no per-tenant quotas) is printed
# for the comparison record — it is expected to violate.
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${TENANT_SEED:-7}"
DURATION="${TENANT_DURATION:-6}"
BIN="$(mktemp -d)/continuum-sim"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -race -o "$BIN" ./cmd/continuum-sim

echo "== tenants -seed $SEED (per-tenant quotas + DRR) =="
"$BIN" tenants -seed "$SEED" -duration "$DURATION" | tee "$BIN.1"
"$BIN" tenants -seed "$SEED" -duration "$DURATION" > "$BIN.2"
if ! diff -u "$BIN.1" "$BIN.2"; then
  echo "tenants: sweep is nondeterministic for seed $SEED" >&2
  exit 1
fi
echo "determinism: ok"

echo "== tenants -seed $SEED (shared-admission control, expected to violate) =="
"$BIN" tenants -seed "$SEED" -duration "$DURATION" -quotas=false
