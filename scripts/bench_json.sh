#!/bin/sh
# Runs every benchmark once and emits BENCH_results.json mapping each
# benchmark to its ns/op, bytes/op, and allocs/op — the artifact the CI
# bench-smoke job uploads so perf regressions are visible per commit.
#
# Usage: scripts/bench_json.sh [output-file]
set -eu

out="${1:-BENCH_results.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# -benchtime=1x keeps this a smoke pass: one iteration per benchmark,
# enough to catch breakage and produce a coarse perf fingerprint.
go test -run '^$' -bench . -benchtime 1x -benchmem ./... >"$tmp"

awk '
BEGIN { print "{"; first = 1 }
/^pkg: / { pkg = $2 }
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")    ns = $(i - 1)
        if ($(i) == "B/op")     bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    key = pkg "." name
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s", key, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n}" }
' "$tmp" >"$out"

echo "wrote $out ($(grep -c 'ns_per_op' "$out") benchmarks)"
