#!/bin/sh
# Runs every benchmark once and emits BENCH_results.json mapping each
# benchmark to its ns/op, bytes/op, and allocs/op — the artifact the CI
# bench-smoke job uploads so perf regressions are visible per commit.
#
# When BENCH_baseline.json exists, the gated A5 planning arms
# (edge-300, edge-1000) are additionally re-run at a stable iteration
# count and diffed against it: >25% regression in ns/op or allocs/op
# fails the script. Baseline keys are bare sub-benchmark names
# (no pkg prefix, no -GOMAXPROCS suffix) so the gate is machine-shape
# independent.
#
# Usage: scripts/bench_json.sh [output-file]
set -eu

out="${1:-BENCH_results.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# -benchtime=1x keeps this a smoke pass: one iteration per benchmark,
# enough to catch breakage and produce a coarse perf fingerprint.
go test -run '^$' -bench . -benchtime 1x -benchmem ./... >"$tmp"

awk '
BEGIN { print "{"; first = 1 }
/^pkg: / { pkg = $2 }
/^Benchmark/ {
    name = $1
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")    ns = $(i - 1)
        if ($(i) == "B/op")     bytes = $(i - 1)
        if ($(i) == "allocs/op") allocs = $(i - 1)
    }
    if (ns == "") next
    key = pkg "." name
    if (!first) printf ",\n"
    first = 0
    printf "  \"%s\": {\"ns_per_op\": %s", key, ns
    if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
    if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
    printf "}"
}
END { print "\n}" }
' "$tmp" >"$out"

echo "wrote $out ($(grep -c 'ns_per_op' "$out") benchmarks)"

# --- A5 regression gate --------------------------------------------------
# The 1x smoke numbers above are too noisy to gate on; re-run just the
# gated arms at a stable iteration count and compare against the
# committed baseline.
baseline="BENCH_baseline.json"
if [ -f "$baseline" ]; then
    echo "A5 regression gate: diffing edge-300/edge-1000 against $baseline"
    go test -run '^$' -bench 'A5Scale/^(edge-300|edge-1000)$' -benchtime 200x -benchmem . >"$tmp"
    awk -v basefile="$baseline" '
    BEGIN {
        while ((getline line < basefile) > 0) {
            if (line !~ /"ns_per_op"/) continue
            key = line; sub(/^[ \t]*"/, "", key); sub(/".*$/, "", key)
            ns = line; sub(/.*"ns_per_op": */, "", ns); sub(/[,}].*/, "", ns)
            bns[key] = ns + 0
            if (line ~ /"allocs_per_op"/) {
                al = line; sub(/.*"allocs_per_op": */, "", al); sub(/[,}].*/, "", al)
                ballocs[key] = al + 0
            }
        }
    }
    /^BenchmarkA5Scale\// {
        # Exact name first; fall back to stripping a -GOMAXPROCS suffix
        # (go only appends it when GOMAXPROCS != 1, and the sub-bench
        # names themselves end in digits).
        name = $1
        if (!(name in bns)) {
            alt = name; sub(/-[0-9]+$/, "", alt)
            if (alt in bns) name = alt
        }
        if (!(name in bns)) next
        ns = ""; al = ""
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op")     ns = $(i - 1)
            if ($(i) == "allocs/op") al = $(i - 1)
        }
        if (ns == "") next
        checked++
        if (ns + 0 > bns[name] * 1.25) {
            printf "FAIL %s: %.0f ns/op exceeds 1.25x baseline %.0f\n", name, ns, bns[name]
            bad = 1
        } else {
            printf "ok   %s: %.0f ns/op (baseline %.0f)\n", name, ns, bns[name]
        }
        if (al != "" && (name in ballocs) && al + 0 > ballocs[name] * 1.25) {
            printf "FAIL %s: %d allocs/op exceeds 1.25x baseline %d\n", name, al, ballocs[name]
            bad = 1
        }
    }
    END {
        if (checked < 2) { print "FAIL: A5 regression gate matched fewer than 2 arms"; exit 1 }
        if (bad) exit 1
        print "A5 regression gate passed (edge-300, edge-1000 within 25% of baseline)"
    }' "$tmp"
fi
