#!/usr/bin/env bash
# grayfail_smoke.sh — CI gate for the gray-failure defense: build with
# the race detector, run the four-arm gray-fail experiment twice with
# the same seed, diff the reports byte-for-byte, and re-assert the
# headline bars from the rendered summary: the defended arm holds
# availability at or above 99% with at least one quarantine and one
# hedge, while the undefended control drops below 99%. (The binary
# already exits non-zero on any violated bar; the greps keep a silent
# render regression from masking one.)
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${CHAOS_SEED:-7}"
BIN="$(mktemp -d)/continuum-sim"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -race -o "$BIN" ./cmd/continuum-sim

echo "== chaos gray-fail -seed $SEED =="
"$BIN" chaos gray-fail -seed "$SEED" | tee "$BIN.gray.1"
"$BIN" chaos gray-fail -seed "$SEED" > "$BIN.gray.2"
if ! diff -u "$BIN.gray.1" "$BIN.gray.2"; then
  echo "grayfail: gray-fail is nondeterministic for seed $SEED" >&2
  exit 1
fi

summary=$(grep '^summary: baseline ' "$BIN.gray.1")
echo "$summary" | grep -q ' | ok$' || {
  echo "grayfail: experiment verdict not ok: $summary" >&2; exit 1; }
echo "$summary" | grep -Eq 'quarantines=[1-9][0-9]* hedges=[1-9][0-9]*' || {
  echo "grayfail: defense arm never quarantined or hedged: $summary" >&2; exit 1; }

defense=$(sed -n 's/.*defense avail=\([0-9.]*\)%.*/\1/p' "$BIN.gray.1")
control=$(sed -n 's/.*control avail=\([0-9.]*\)%.*/\1/p' "$BIN.gray.1")
awk "BEGIN{exit !($defense >= 99)}" || {
  echo "grayfail: defense availability $defense% below the 99% bar" >&2; exit 1; }
awk "BEGIN{exit !($control < 99)}" || {
  echo "grayfail: control availability $control% not degraded (fault too weak?)" >&2; exit 1; }

echo "grayfail: defense avail=${defense}% (>=99) control avail=${control}% (<99) determinism: ok"
