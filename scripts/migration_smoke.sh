#!/usr/bin/env bash
# migration_smoke.sh — CI gate for live stateful migration: build with
# the race detector, run the three-arm planned-drain experiment twice
# with the same seed, diff the reports byte-for-byte, and re-assert the
# headline bars from the rendered text: the drain arm loses zero
# requests and its intake pause p95 stays at or under 2 sim-ticks, and
# the mid-migration crash arm recovers with RPO=0 and no divergence.
# (The binary already exits non-zero on any violated bar; the greps
# keep a silent render regression from masking one.)
set -euo pipefail
cd "$(dirname "$0")/.."

SEED="${CHAOS_SEED:-7}"
BIN="$(mktemp -d)/continuum-sim"
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -race -o "$BIN" ./cmd/continuum-sim

echo "== chaos planned-drain -seed $SEED =="
"$BIN" chaos planned-drain -seed "$SEED" | tee "$BIN.drain.1"
"$BIN" chaos planned-drain -seed "$SEED" > "$BIN.drain.2"
if ! diff -u "$BIN.drain.1" "$BIN.drain.2"; then
  echo "migration: planned-drain is nondeterministic for seed $SEED" >&2
  exit 1
fi

summary=$(grep '^summary: drain ' "$BIN.drain.1")
echo "$summary" | grep -q ' | ok$' || {
  echo "migration: experiment verdict not ok: $summary" >&2; exit 1; }
echo "$summary" | grep -Eq 'drain pause_max=[^ ]+ \([0-9.]+ ticks\) lost=0 vs ' || {
  echo "migration: drain arm lost requests: $summary" >&2; exit 1; }
echo "$summary" | grep -q 'mid-crash rpo_items=0 divergent=0' || {
  echo "migration: mid-crash arm lost state or diverged: $summary" >&2; exit 1; }

ticks=$(sed -n 's/^summary: drain pause_max=[^ ]* (\([0-9.]*\) ticks).*/\1/p' "$BIN.drain.1")
awk "BEGIN{exit !($ticks <= 2)}" || {
  echo "migration: drain pause_max=$ticks ticks above the 2-tick bar" >&2; exit 1; }

echo "migration: requests_lost=0 pause=${ticks} ticks (<=2) rpo=0 determinism: ok"
