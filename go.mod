module myrtus

go 1.24
