package myrtus

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesVet keeps every package — including the examples — clean
// under go vet, so example drift fails tier-1 instead of rotting
// silently.
func TestExamplesVet(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not on PATH")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	out, err := exec.CommandContext(ctx, goBin, "vet", "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("go vet ./...: %v\n%s", err, out)
	}
}

// TestExampleQuickstartRuns executes examples/quickstart end to end with
// a deadline: the smallest full-stack scenario must build, run, and
// serve a request.
func TestExampleQuickstartRuns(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not on PATH")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	out, err := exec.CommandContext(ctx, goBin, "run", "./examples/quickstart").CombinedOutput()
	if err != nil {
		t.Fatalf("examples/quickstart: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "request served") {
		t.Fatalf("quickstart output missing served request:\n%s", out)
	}
}
