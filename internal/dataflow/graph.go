// Package dataflow implements synchronous dataflow (SDF) process networks
// — the model behind the multithread FPGA accelerators of [3] — and
// MDC-style multi-dataflow composition: merging several application graphs
// into one runtime-reconfigurable datapath with shared actors (the
// Multi-Dataflow Composer role in the DPE's node-level step).
//
// The package provides consistency analysis (repetition vectors via
// balance equations), deadlock-free static scheduling, and
// latency/throughput estimation that the HLS estimator (internal/mlir)
// turns into operating points.
package dataflow

import (
	"fmt"
	"sort"

	"myrtus/internal/sim"
)

// Actor is one dataflow node: it consumes tokens on its input edges and
// produces tokens on its output edges each time it fires.
type Actor struct {
	Name string
	// Latency is the firing duration on the target fabric.
	Latency sim.Time
	// AreaUnits is the hardware cost when synthesized.
	AreaUnits int
	// Kind tags functional class ("src", "sink", "kernel", "sbox", …).
	Kind string
}

// Edge is a FIFO channel between two actors. Each firing of Src produces
// Produce tokens; each firing of Dst consumes Consume tokens. Initial
// tokens break cyclic dependencies.
type Edge struct {
	Src, Dst         string
	Produce, Consume int
	InitialTokens    int
}

func (e *Edge) key() string { return e.Src + "->" + e.Dst }

// Graph is an SDF graph.
type Graph struct {
	Name   string
	actors map[string]*Actor
	order  []string // insertion order for deterministic iteration
	edges  []*Edge
}

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, actors: make(map[string]*Actor)}
}

// AddActor inserts an actor; re-adding a name is an error.
func (g *Graph) AddActor(a Actor) error {
	if a.Name == "" {
		return fmt.Errorf("dataflow: actor needs a name")
	}
	if _, ok := g.actors[a.Name]; ok {
		return fmt.Errorf("dataflow: duplicate actor %q", a.Name)
	}
	if a.Latency < 0 {
		return fmt.Errorf("dataflow: actor %q has negative latency", a.Name)
	}
	cp := a
	g.actors[a.Name] = &cp
	g.order = append(g.order, a.Name)
	return nil
}

// AddEdge inserts a channel. Rates must be positive.
func (g *Graph) AddEdge(e Edge) error {
	if _, ok := g.actors[e.Src]; !ok {
		return fmt.Errorf("dataflow: edge source %q unknown", e.Src)
	}
	if _, ok := g.actors[e.Dst]; !ok {
		return fmt.Errorf("dataflow: edge destination %q unknown", e.Dst)
	}
	if e.Produce <= 0 || e.Consume <= 0 {
		return fmt.Errorf("dataflow: edge %s->%s rates must be positive", e.Src, e.Dst)
	}
	if e.InitialTokens < 0 {
		return fmt.Errorf("dataflow: edge %s->%s negative initial tokens", e.Src, e.Dst)
	}
	cp := e
	g.edges = append(g.edges, &cp)
	return nil
}

// Actor returns the named actor.
func (g *Graph) Actor(name string) (*Actor, bool) {
	a, ok := g.actors[name]
	return a, ok
}

// Actors returns actor names in insertion order.
func (g *Graph) Actors() []string { return append([]string(nil), g.order...) }

// Edges returns copies of all edges.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	for i, e := range g.edges {
		out[i] = *e
	}
	return out
}

// TotalArea sums actor area units.
func (g *Graph) TotalArea() int {
	area := 0
	for _, a := range g.actors {
		area += a.AreaUnits
	}
	return area
}

// RepetitionVector solves the SDF balance equations: for every edge,
// reps[src]·produce = reps[dst]·consume. It returns the minimal positive
// integer solution, or an error for inconsistent (unschedulable) graphs.
func (g *Graph) RepetitionVector() (map[string]int, error) {
	if len(g.order) == 0 {
		return nil, fmt.Errorf("dataflow: graph %q is empty", g.Name)
	}
	// Represent reps as rationals num/den, propagate via BFS over edges.
	num := map[string]int64{}
	den := map[string]int64{}
	adj := map[string][]*Edge{}
	for _, e := range g.edges {
		adj[e.Src] = append(adj[e.Src], e)
		adj[e.Dst] = append(adj[e.Dst], e)
	}
	for _, start := range g.order {
		if _, ok := num[start]; ok {
			continue
		}
		num[start], den[start] = 1, 1
		queue := []string{start}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, e := range adj[cur] {
				var other string
				var on, od int64
				if e.Src == cur {
					// reps[dst] = reps[src]·produce/consume
					other = e.Dst
					on = num[cur] * int64(e.Produce)
					od = den[cur] * int64(e.Consume)
				} else {
					other = e.Src
					on = num[cur] * int64(e.Consume)
					od = den[cur] * int64(e.Produce)
				}
				gcd := gcd64(on, od)
				on, od = on/gcd, od/gcd
				if n, ok := num[other]; ok {
					if n*od != on*den[other] {
						return nil, fmt.Errorf("dataflow: graph %q inconsistent at edge %s", g.Name, e.key())
					}
					continue
				}
				num[other], den[other] = on, od
				queue = append(queue, other)
			}
		}
	}
	// Scale to integers: multiply by lcm of denominators, divide by gcd.
	lcm := int64(1)
	for _, d := range den {
		lcm = lcm / gcd64(lcm, d) * d
	}
	reps := make(map[string]int, len(num))
	g2 := int64(0)
	vals := map[string]int64{}
	for a, n := range num {
		v := n * (lcm / den[a])
		vals[a] = v
		g2 = gcd64(g2, v)
	}
	for a, v := range vals {
		reps[a] = int(v / g2)
	}
	return reps, nil
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// Schedule computes a periodic admissible sequential schedule: a firing
// sequence executing each actor exactly reps[a] times that never
// underflows a FIFO. It returns an error on deadlock.
func (g *Graph) Schedule() ([]string, error) {
	reps, err := g.RepetitionVector()
	if err != nil {
		return nil, err
	}
	tokens := map[string]int{}
	for _, e := range g.edges {
		tokens[e.key()] += e.InitialTokens
	}
	remaining := map[string]int{}
	total := 0
	for a, r := range reps {
		remaining[a] = r
		total += r
	}
	in := map[string][]*Edge{}
	out := map[string][]*Edge{}
	for _, e := range g.edges {
		in[e.Dst] = append(in[e.Dst], e)
		out[e.Src] = append(out[e.Src], e)
	}
	canFire := func(a string) bool {
		if remaining[a] == 0 {
			return false
		}
		for _, e := range in[a] {
			if tokens[e.key()] < e.Consume {
				return false
			}
		}
		return true
	}
	var sched []string
	for len(sched) < total {
		fired := false
		for _, a := range g.order {
			for canFire(a) {
				for _, e := range in[a] {
					tokens[e.key()] -= e.Consume
				}
				for _, e := range out[a] {
					tokens[e.key()] += e.Produce
				}
				remaining[a]--
				sched = append(sched, a)
				fired = true
			}
		}
		if !fired {
			return nil, fmt.Errorf("dataflow: graph %q deadlocks (insufficient initial tokens)", g.Name)
		}
	}
	return sched, nil
}

// BufferBounds returns, per edge ("src->dst"), the maximum token count
// the FIFO reaches while executing the canonical schedule — the buffer
// depth the HLS step must provision for a deadlock-free single-iteration
// execution.
func (g *Graph) BufferBounds() (map[string]int, error) {
	sched, err := g.Schedule()
	if err != nil {
		return nil, err
	}
	tokens := map[string]int{}
	bounds := map[string]int{}
	for _, e := range g.edges {
		tokens[e.key()] += e.InitialTokens
		if tokens[e.key()] > bounds[e.key()] {
			bounds[e.key()] = tokens[e.key()]
		}
	}
	in := map[string][]*Edge{}
	out := map[string][]*Edge{}
	for _, e := range g.edges {
		in[e.Dst] = append(in[e.Dst], e)
		out[e.Src] = append(out[e.Src], e)
	}
	for _, a := range sched {
		for _, e := range in[a] {
			tokens[e.key()] -= e.Consume
		}
		for _, e := range out[a] {
			tokens[e.key()] += e.Produce
			if tokens[e.key()] > bounds[e.key()] {
				bounds[e.key()] = tokens[e.key()]
			}
		}
	}
	return bounds, nil
}

// Analysis summarizes one iteration of the graph.
type Analysis struct {
	Repetitions map[string]int
	// SequentialLatency is one iteration executed on a single processing
	// element (sum of all firings).
	SequentialLatency sim.Time
	// IterationPeriod is the steady-state initiation interval with one
	// dedicated PE per actor (pipelined): max over actors of
	// reps·latency.
	IterationPeriod sim.Time
	// Bottleneck is the actor bounding the period.
	Bottleneck string
	// ThroughputHz is iterations per second in steady state.
	ThroughputHz float64
}

// Analyze computes latency/throughput estimates for the graph.
func (g *Graph) Analyze() (Analysis, error) {
	reps, err := g.RepetitionVector()
	if err != nil {
		return Analysis{}, err
	}
	if _, err := g.Schedule(); err != nil {
		return Analysis{}, err
	}
	a := Analysis{Repetitions: reps}
	names := make([]string, 0, len(reps))
	for n := range reps {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		r := reps[n]
		lat := g.actors[n].Latency
		a.SequentialLatency += sim.Time(r) * lat
		if load := sim.Time(r) * lat; load > a.IterationPeriod {
			a.IterationPeriod = load
			a.Bottleneck = n
		}
	}
	if a.IterationPeriod > 0 {
		a.ThroughputHz = 1 / a.IterationPeriod.Seconds()
	}
	return a, nil
}
