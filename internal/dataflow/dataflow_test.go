package dataflow

import (
	"testing"
	"testing/quick"

	"myrtus/internal/sim"
)

// pipeline builds src -1/1-> work -1/1-> sink.
func pipeline(t *testing.T, name string) *Graph {
	t.Helper()
	g := NewGraph(name)
	for _, a := range []Actor{
		{Name: "src", Kind: "src", Latency: 1 * sim.Millisecond, AreaUnits: 1},
		{Name: "work", Kind: "kernel", Latency: 4 * sim.Millisecond, AreaUnits: 4},
		{Name: "sink", Kind: "sink", Latency: 1 * sim.Millisecond, AreaUnits: 1},
	} {
		if err := g.AddActor(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AddEdge(Edge{Src: "src", Dst: "work", Produce: 1, Consume: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(Edge{Src: "work", Dst: "sink", Produce: 1, Consume: 1}); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphValidation(t *testing.T) {
	g := NewGraph("g")
	if err := g.AddActor(Actor{}); err == nil {
		t.Fatal("nameless actor accepted")
	}
	if err := g.AddActor(Actor{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddActor(Actor{Name: "a"}); err == nil {
		t.Fatal("duplicate actor accepted")
	}
	if err := g.AddActor(Actor{Name: "neg", Latency: -1}); err == nil {
		t.Fatal("negative latency accepted")
	}
	if err := g.AddEdge(Edge{Src: "ghost", Dst: "a", Produce: 1, Consume: 1}); err == nil {
		t.Fatal("unknown src accepted")
	}
	if err := g.AddEdge(Edge{Src: "a", Dst: "ghost", Produce: 1, Consume: 1}); err == nil {
		t.Fatal("unknown dst accepted")
	}
	if err := g.AddActor(Actor{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(Edge{Src: "a", Dst: "b", Produce: 0, Consume: 1}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if err := g.AddEdge(Edge{Src: "a", Dst: "b", Produce: 1, Consume: 1, InitialTokens: -1}); err == nil {
		t.Fatal("negative tokens accepted")
	}
}

func TestRepetitionVectorHomogeneous(t *testing.T) {
	g := pipeline(t, "p")
	reps, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	for a, r := range reps {
		if r != 1 {
			t.Fatalf("reps[%s] = %d, want 1", a, r)
		}
	}
}

func TestRepetitionVectorMultirate(t *testing.T) {
	// src -2/3-> work: reps src=3, work=2 (3·2 = 2·3).
	g := NewGraph("mr")
	g.AddActor(Actor{Name: "src"})                                    //nolint:errcheck
	g.AddActor(Actor{Name: "work"})                                   //nolint:errcheck
	g.AddActor(Actor{Name: "sink"})                                   //nolint:errcheck
	g.AddEdge(Edge{Src: "src", Dst: "work", Produce: 2, Consume: 3})  //nolint:errcheck
	g.AddEdge(Edge{Src: "work", Dst: "sink", Produce: 1, Consume: 2}) //nolint:errcheck
	reps, err := g.RepetitionVector()
	if err != nil {
		t.Fatal(err)
	}
	if reps["src"] != 3 || reps["work"] != 2 || reps["sink"] != 1 {
		t.Fatalf("reps = %v", reps)
	}
}

func TestRepetitionVectorInconsistent(t *testing.T) {
	// Triangle with contradictory rates.
	g := NewGraph("bad")
	for _, n := range []string{"a", "b", "c"} {
		g.AddActor(Actor{Name: n}) //nolint:errcheck
	}
	g.AddEdge(Edge{Src: "a", Dst: "b", Produce: 1, Consume: 1}) //nolint:errcheck
	g.AddEdge(Edge{Src: "b", Dst: "c", Produce: 1, Consume: 1}) //nolint:errcheck
	g.AddEdge(Edge{Src: "c", Dst: "a", Produce: 2, Consume: 1}) //nolint:errcheck
	if _, err := g.RepetitionVector(); err == nil {
		t.Fatal("inconsistent graph accepted")
	}
}

func TestRepetitionVectorEmpty(t *testing.T) {
	if _, err := NewGraph("e").RepetitionVector(); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestScheduleValidOrder(t *testing.T) {
	g := pipeline(t, "p")
	sched, err := g.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 3 {
		t.Fatalf("schedule = %v", sched)
	}
	pos := map[string]int{}
	for i, a := range sched {
		pos[a] = i
	}
	if !(pos["src"] < pos["work"] && pos["work"] < pos["sink"]) {
		t.Fatalf("bad order: %v", sched)
	}
}

func TestScheduleDeadlock(t *testing.T) {
	// a↔b cycle without initial tokens deadlocks.
	g := NewGraph("dl")
	g.AddActor(Actor{Name: "a"})                                //nolint:errcheck
	g.AddActor(Actor{Name: "b"})                                //nolint:errcheck
	g.AddEdge(Edge{Src: "a", Dst: "b", Produce: 1, Consume: 1}) //nolint:errcheck
	g.AddEdge(Edge{Src: "b", Dst: "a", Produce: 1, Consume: 1}) //nolint:errcheck
	if _, err := g.Schedule(); err == nil {
		t.Fatal("deadlocked graph scheduled")
	}
	// One initial token unblocks it.
	g2 := NewGraph("ok")
	g2.AddActor(Actor{Name: "a"})                                                  //nolint:errcheck
	g2.AddActor(Actor{Name: "b"})                                                  //nolint:errcheck
	g2.AddEdge(Edge{Src: "a", Dst: "b", Produce: 1, Consume: 1})                   //nolint:errcheck
	g2.AddEdge(Edge{Src: "b", Dst: "a", Produce: 1, Consume: 1, InitialTokens: 1}) //nolint:errcheck
	if _, err := g2.Schedule(); err != nil {
		t.Fatalf("token-primed cycle failed: %v", err)
	}
}

func TestAnalyze(t *testing.T) {
	g := pipeline(t, "p")
	a, err := g.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if a.SequentialLatency != 6*sim.Millisecond {
		t.Fatalf("seq latency = %v", a.SequentialLatency)
	}
	if a.IterationPeriod != 4*sim.Millisecond || a.Bottleneck != "work" {
		t.Fatalf("period = %v bottleneck = %s", a.IterationPeriod, a.Bottleneck)
	}
	if a.ThroughputHz < 249 || a.ThroughputHz > 251 {
		t.Fatalf("throughput = %v", a.ThroughputHz)
	}
}

func TestScheduleFeasibilityProperty(t *testing.T) {
	// Replaying any schedule from Schedule() must never underflow a FIFO
	// and must return all FIFOs to their initial state (admissibility).
	check := func(p2, c2 uint8) bool {
		prod := int(p2%4) + 1
		cons := int(c2%4) + 1
		g := NewGraph("prop")
		g.AddActor(Actor{Name: "a"})                                      //nolint:errcheck
		g.AddActor(Actor{Name: "b"})                                      //nolint:errcheck
		g.AddEdge(Edge{Src: "a", Dst: "b", Produce: prod, Consume: cons}) //nolint:errcheck
		sched, err := g.Schedule()
		if err != nil {
			return false
		}
		tokens := 0
		for _, f := range sched {
			if f == "a" {
				tokens += prod
			} else {
				tokens -= cons
				if tokens < 0 {
					return false
				}
			}
		}
		return tokens == 0
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComposeSharesActors(t *testing.T) {
	// Two graphs sharing src and sink but with different kernels.
	g1 := NewGraph("app1")
	g2 := NewGraph("app2")
	for _, g := range []*Graph{g1, g2} {
		g.AddActor(Actor{Name: "src", AreaUnits: 1, Latency: sim.Millisecond})  //nolint:errcheck
		g.AddActor(Actor{Name: "sink", AreaUnits: 1, Latency: sim.Millisecond}) //nolint:errcheck
	}
	g1.AddActor(Actor{Name: "fir", AreaUnits: 5, Latency: 2 * sim.Millisecond}) //nolint:errcheck
	g2.AddActor(Actor{Name: "fft", AreaUnits: 7, Latency: 3 * sim.Millisecond}) //nolint:errcheck
	g1.AddEdge(Edge{Src: "src", Dst: "fir", Produce: 1, Consume: 1})            //nolint:errcheck
	g1.AddEdge(Edge{Src: "fir", Dst: "sink", Produce: 1, Consume: 1})           //nolint:errcheck
	g2.AddEdge(Edge{Src: "src", Dst: "fft", Produce: 1, Consume: 1})            //nolint:errcheck
	g2.AddEdge(Edge{Src: "fft", Dst: "sink", Produce: 1, Consume: 1})           //nolint:errcheck

	comp, err := Compose(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp.SharedActors) != 2 {
		t.Fatalf("shared = %v", comp.SharedActors)
	}
	// sink has two producers (fir, fft) → exactly one sbox.
	sboxes := 0
	for _, name := range comp.Merged.Actors() {
		a, _ := comp.Merged.Actor(name)
		if a.Kind == "sbox" {
			sboxes++
		}
	}
	if sboxes != 1 {
		t.Fatalf("sboxes = %d, want 1", sboxes)
	}
	sep, merged, saving := comp.AreaSaving(g1, g2)
	if sep != 16 {
		t.Fatalf("separate area = %d", sep)
	}
	if merged >= sep {
		t.Fatalf("no area saving: %d ≥ %d", merged, sep)
	}
	if saving <= 0 {
		t.Fatalf("saving = %v", saving)
	}

	// Each configuration resolves to a runnable SDF graph with the right
	// kernel on the path.
	for name, kernel := range map[string]string{"app1": "fir", "app2": "fft"} {
		cg, err := comp.ConfigGraph(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := cg.Actor(kernel); !ok {
			t.Fatalf("config %s missing %s", name, kernel)
		}
		an, err := cg.Analyze()
		if err != nil {
			t.Fatalf("config %s unschedulable: %v", name, err)
		}
		if an.Bottleneck != kernel {
			t.Fatalf("config %s bottleneck = %s", name, an.Bottleneck)
		}
	}
	if _, err := comp.ConfigGraph("ghost"); err == nil {
		t.Fatal("ghost config accepted")
	}
}

func TestComposeErrors(t *testing.T) {
	if _, err := Compose(); err == nil {
		t.Fatal("empty composition accepted")
	}
	if _, err := Compose(NewGraph("empty")); err == nil {
		t.Fatal("empty graph accepted")
	}
	g1 := NewGraph("a")
	g1.AddActor(Actor{Name: "x", AreaUnits: 1, Latency: sim.Millisecond}) //nolint:errcheck
	g2 := NewGraph("a")
	g2.AddActor(Actor{Name: "x", AreaUnits: 1, Latency: sim.Millisecond}) //nolint:errcheck
	if _, err := Compose(g1, g2); err == nil {
		t.Fatal("duplicate graph names accepted")
	}
	g3 := NewGraph("b")
	g3.AddActor(Actor{Name: "x", AreaUnits: 9, Latency: sim.Millisecond}) //nolint:errcheck
	if _, err := Compose(g1, g3); err == nil {
		t.Fatal("conflicting shared actor accepted")
	}
}

func TestComposeIdenticalGraphsFullSharing(t *testing.T) {
	mk := func(name string) *Graph {
		g := NewGraph(name)
		g.AddActor(Actor{Name: "a", AreaUnits: 3, Latency: sim.Millisecond}) //nolint:errcheck
		g.AddActor(Actor{Name: "b", AreaUnits: 3, Latency: sim.Millisecond}) //nolint:errcheck
		g.AddEdge(Edge{Src: "a", Dst: "b", Produce: 1, Consume: 1})          //nolint:errcheck
		return g
	}
	comp, err := Compose(mk("g1"), mk("g2"))
	if err != nil {
		t.Fatal(err)
	}
	if comp.Merged.TotalArea() != 6 {
		t.Fatalf("identical graphs should fully share: area = %d", comp.Merged.TotalArea())
	}
	if len(comp.Merged.Actors()) != 2 {
		t.Fatalf("actors = %v", comp.Merged.Actors())
	}
}

func TestTotalAreaAndAccessors(t *testing.T) {
	g := pipeline(t, "p")
	if g.TotalArea() != 6 {
		t.Fatalf("area = %d", g.TotalArea())
	}
	if len(g.Edges()) != 2 {
		t.Fatal("edges")
	}
	if _, ok := g.Actor("work"); !ok {
		t.Fatal("actor lookup")
	}
	if _, ok := g.Actor("ghost"); ok {
		t.Fatal("ghost actor")
	}
}

func TestBufferBounds(t *testing.T) {
	// src -2/3-> work -1/2-> sink: reps src=3, work=2, sink=1.
	g := NewGraph("bb")
	g.AddActor(Actor{Name: "src"})                                    //nolint:errcheck
	g.AddActor(Actor{Name: "work"})                                   //nolint:errcheck
	g.AddActor(Actor{Name: "sink"})                                   //nolint:errcheck
	g.AddEdge(Edge{Src: "src", Dst: "work", Produce: 2, Consume: 3})  //nolint:errcheck
	g.AddEdge(Edge{Src: "work", Dst: "sink", Produce: 1, Consume: 2}) //nolint:errcheck
	bounds, err := g.BufferBounds()
	if err != nil {
		t.Fatal(err)
	}
	if bounds["src->work"] < 3 {
		t.Fatalf("src->work bound = %d, need ≥3 to fire work", bounds["src->work"])
	}
	if bounds["work->sink"] < 2 {
		t.Fatalf("work->sink bound = %d", bounds["work->sink"])
	}
	// Replaying the schedule with exactly these capacities never
	// overflows (by construction) — verify the claim.
	sched, _ := g.Schedule()
	tokens := map[string]int{}
	in := map[string][]Edge{}
	out := map[string][]Edge{}
	for _, e := range g.Edges() {
		in[e.Dst] = append(in[e.Dst], e)
		out[e.Src] = append(out[e.Src], e)
	}
	for _, a := range sched {
		for _, e := range in[a] {
			tokens[e.Src+"->"+e.Dst] -= e.Consume
		}
		for _, e := range out[a] {
			k := e.Src + "->" + e.Dst
			tokens[k] += e.Produce
			if tokens[k] > bounds[k] {
				t.Fatalf("bound %d exceeded on %s", bounds[k], k)
			}
		}
	}
	// Deadlocked graphs report the error.
	dl := NewGraph("dl")
	dl.AddActor(Actor{Name: "a"})                                //nolint:errcheck
	dl.AddActor(Actor{Name: "b"})                                //nolint:errcheck
	dl.AddEdge(Edge{Src: "a", Dst: "b", Produce: 1, Consume: 1}) //nolint:errcheck
	dl.AddEdge(Edge{Src: "b", Dst: "a", Produce: 1, Consume: 1}) //nolint:errcheck
	if _, err := dl.BufferBounds(); err == nil {
		t.Fatal("deadlocked bounds computed")
	}
}

func TestBufferBoundsIncludeInitialTokens(t *testing.T) {
	g := NewGraph("it")
	g.AddActor(Actor{Name: "a"})                                                  //nolint:errcheck
	g.AddActor(Actor{Name: "b"})                                                  //nolint:errcheck
	g.AddEdge(Edge{Src: "a", Dst: "b", Produce: 1, Consume: 1, InitialTokens: 5}) //nolint:errcheck
	bounds, err := g.BufferBounds()
	if err != nil {
		t.Fatal(err)
	}
	if bounds["a->b"] < 5 {
		t.Fatalf("initial tokens not counted: %d", bounds["a->b"])
	}
}
