package dataflow

import (
	"fmt"
	"sort"
)

// Multi-dataflow composition (the MDC tool's core idea): given N
// application graphs, build one merged datapath in which actors with the
// same name are instantiated once and shared. Where different graphs feed
// the same consumer from different producers, a switching box (SBox) is
// inserted; a per-graph configuration selects the SBox inputs at runtime,
// so switching applications is a lightweight reconfiguration rather than a
// full bitstream reload.

// Config activates one original graph inside the composite.
type Config struct {
	Graph string
	// ActiveActors are the merged-datapath actors this configuration uses.
	ActiveActors []string
	// SBoxSelect maps sbox actor name → selected producer actor.
	SBoxSelect map[string]string
}

// Composite is the merged reconfigurable datapath.
type Composite struct {
	Merged  *Graph
	Configs map[string]Config
	// SharedActors are actors used by ≥2 configurations.
	SharedActors []string
}

// Compose merges the given graphs. Actors sharing a name must agree on
// latency and area (they are the same hardware block).
func Compose(graphs ...*Graph) (*Composite, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("dataflow: nothing to compose")
	}
	merged := NewGraph("mdc-composite")
	useCount := map[string]int{}
	configs := make(map[string]Config, len(graphs))

	// First pass: union of actors.
	for _, g := range graphs {
		if g == nil || len(g.order) == 0 {
			return nil, fmt.Errorf("dataflow: empty graph in composition")
		}
		if _, dup := configs[g.Name]; dup {
			return nil, fmt.Errorf("dataflow: duplicate graph name %q", g.Name)
		}
		configs[g.Name] = Config{Graph: g.Name, SBoxSelect: map[string]string{}}
		for _, name := range g.order {
			a := g.actors[name]
			useCount[name]++
			if existing, ok := merged.actors[name]; ok {
				if existing.Latency != a.Latency || existing.AreaUnits != a.AreaUnits {
					return nil, fmt.Errorf("dataflow: actor %q differs between graphs (cannot share)", name)
				}
				continue
			}
			if err := merged.AddActor(*a); err != nil {
				return nil, err
			}
		}
	}

	// Second pass: union of edges; conflicting producers for one consumer
	// get an SBox.
	type feed struct {
		src     string
		graph   string
		produce int
		consume int
		tokens  int
	}
	feeds := map[string][]feed{} // dst -> producers across graphs
	for _, g := range graphs {
		for _, e := range g.edges {
			feeds[e.Dst] = append(feeds[e.Dst], feed{
				src: e.Src, graph: g.Name,
				produce: e.Produce, consume: e.Consume, tokens: e.InitialTokens,
			})
		}
	}
	dsts := make([]string, 0, len(feeds))
	for d := range feeds {
		dsts = append(dsts, d)
	}
	sort.Strings(dsts)
	sboxN := 0
	edgeSeen := map[string]bool{}
	for _, dst := range dsts {
		fs := feeds[dst]
		srcs := map[string]bool{}
		for _, f := range fs {
			srcs[f.src] = true
		}
		if len(srcs) == 1 {
			// Single producer: plain shared edge (dedup identical edges).
			f := fs[0]
			k := f.src + "->" + dst
			if !edgeSeen[k] {
				edgeSeen[k] = true
				if err := merged.AddEdge(Edge{Src: f.src, Dst: dst, Produce: f.produce, Consume: f.consume, InitialTokens: f.tokens}); err != nil {
					return nil, err
				}
			}
			continue
		}
		// Multiple producers: insert an SBox in front of dst.
		sboxN++
		sbox := fmt.Sprintf("sbox%d_%s", sboxN, dst)
		if err := merged.AddActor(Actor{Name: sbox, Kind: "sbox", AreaUnits: 1}); err != nil {
			return nil, err
		}
		addedFromSrc := map[string]bool{}
		for _, f := range fs {
			if !addedFromSrc[f.src] {
				addedFromSrc[f.src] = true
				if err := merged.AddEdge(Edge{Src: f.src, Dst: sbox, Produce: f.produce, Consume: f.produce}); err != nil {
					return nil, err
				}
			}
			cfg := configs[f.graph]
			cfg.SBoxSelect[sbox] = f.src
			configs[f.graph] = cfg
			k := sbox + "->" + dst
			if !edgeSeen[k] {
				edgeSeen[k] = true
				if err := merged.AddEdge(Edge{Src: sbox, Dst: dst, Produce: f.produce, Consume: f.consume, InitialTokens: f.tokens}); err != nil {
					return nil, err
				}
			}
		}
	}

	// Active actor sets per configuration.
	for _, g := range graphs {
		cfg := configs[g.Name]
		cfg.ActiveActors = append([]string(nil), g.order...)
		for sbox := range cfg.SBoxSelect {
			cfg.ActiveActors = append(cfg.ActiveActors, sbox)
		}
		sort.Strings(cfg.ActiveActors)
		configs[g.Name] = cfg
	}
	var shared []string
	for name, n := range useCount {
		if n >= 2 {
			shared = append(shared, name)
		}
	}
	sort.Strings(shared)
	return &Composite{Merged: merged, Configs: configs, SharedActors: shared}, nil
}

// AreaSaving reports the composite's area versus instantiating every
// graph separately: (separate, merged, saving fraction).
func (c *Composite) AreaSaving(graphs ...*Graph) (separate, merged int, saving float64) {
	for _, g := range graphs {
		separate += g.TotalArea()
	}
	merged = c.Merged.TotalArea()
	if separate > 0 {
		saving = 1 - float64(merged)/float64(separate)
	}
	return separate, merged, saving
}

// ConfigGraph extracts the runnable subgraph for one configuration: the
// active actors with SBoxes resolved to their selected producer, so the
// result is analyzable as a plain SDF graph.
func (c *Composite) ConfigGraph(name string) (*Graph, error) {
	cfg, ok := c.Configs[name]
	if !ok {
		return nil, fmt.Errorf("dataflow: unknown configuration %q", name)
	}
	active := map[string]bool{}
	for _, a := range cfg.ActiveActors {
		active[a] = true
	}
	g := NewGraph(c.Merged.Name + "/" + name)
	for _, a := range cfg.ActiveActors {
		act := c.Merged.actors[a]
		if act.Kind == "sbox" {
			continue // sboxes are transparent in the resolved view
		}
		if err := g.AddActor(*act); err != nil {
			return nil, err
		}
	}
	for _, e := range c.Merged.edges {
		src, dst := e.Src, e.Dst
		if !active[src] || !active[dst] {
			continue
		}
		sAct := c.Merged.actors[src]
		dAct := c.Merged.actors[dst]
		if dAct.Kind == "sbox" {
			continue // handled from the sbox→consumer side
		}
		if sAct.Kind == "sbox" {
			sel, ok := cfg.SBoxSelect[src]
			if !ok {
				return nil, fmt.Errorf("dataflow: config %q does not program sbox %q", name, src)
			}
			src = sel
		}
		if err := g.AddEdge(Edge{Src: src, Dst: dst, Produce: e.Produce, Consume: e.Consume, InitialTokens: e.InitialTokens}); err != nil {
			return nil, err
		}
	}
	return g, nil
}
