package network

import (
	"container/heap"
	"sort"

	"myrtus/internal/sim"
)

// routeTable is an immutable all-pairs shortest-path snapshot of the
// topology: per-pair latency plus the first hop of each minimum-latency
// path. It is built once per topology epoch by single-source Dijkstra
// from every node and shared lock-free through an atomic.Pointer, so the
// routing read path (Route, RouteLatency, every Fabric send) never takes
// the topology mutex and never re-runs Dijkstra.
//
// The relaxation order (neighbors sorted by name, strict-less distance
// updates) is identical to the historical per-pair Dijkstra, so the
// paths the table yields are byte-identical to the ones Route computed
// before the table existed.
type routeTable struct {
	epoch uint64
	names []string       // sorted node names; index = node id
	idx   map[string]int // name → id
	n     int
	// dist[i*n+j] is the latency i→j; negative means unreachable.
	dist []sim.Time
	// next[i*n+j] is the first hop on the minimum-latency path i→j;
	// -1 when unreachable or i == j.
	next []int32
}

// graphSnapshot is the adjacency copied out under the topology lock so
// the table build runs without holding it.
type graphSnapshot struct {
	epoch uint64
	names []string
	idx   map[string]int
	// adj[i] lists i's out-links sorted by neighbor name.
	adj [][]nbr
}

type nbr struct {
	to  int
	lat sim.Time
}

// snapshot copies the node set and adjacency under t.mu.
func (t *Topology) snapshot() *graphSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &graphSnapshot{epoch: t.epoch.Load()}
	s.names = make([]string, 0, len(t.nodes))
	for n := range t.nodes {
		s.names = append(s.names, n)
	}
	sort.Strings(s.names)
	s.idx = make(map[string]int, len(s.names))
	for i, n := range s.names {
		s.idx[n] = i
	}
	s.adj = make([][]nbr, len(s.names))
	for from, links := range t.links {
		i := s.idx[from]
		tos := make([]string, 0, len(links))
		for to := range links {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		out := make([]nbr, 0, len(tos))
		for _, to := range tos {
			out = append(out, nbr{to: s.idx[to], lat: links[to].Latency})
		}
		s.adj[i] = out
	}
	return s
}

// routes returns the table for the current epoch, building it if the
// topology changed since the last build. The fast path is two atomic
// loads; builds are serialized on buildMu so concurrent readers never
// duplicate the all-pairs work.
func (t *Topology) routes() *routeTable {
	for {
		tab := t.table.Load()
		if tab != nil && tab.epoch == t.epoch.Load() {
			return tab
		}
		t.buildMu.Lock()
		tab = t.table.Load()
		if tab != nil && tab.epoch == t.epoch.Load() {
			t.buildMu.Unlock()
			return tab
		}
		tab = buildRouteTable(t.snapshot())
		t.table.Store(tab)
		t.buildMu.Unlock()
		// Loop: a concurrent edit during the build invalidates it.
	}
}

// buildRouteTable runs Dijkstra from every source over the snapshot.
func buildRouteTable(s *graphSnapshot) *routeTable {
	n := len(s.names)
	tab := &routeTable{
		epoch: s.epoch, names: s.names, idx: s.idx, n: n,
		dist: make([]sim.Time, n*n),
		next: make([]int32, n*n),
	}
	for i := range tab.dist {
		tab.dist[i] = -1
		tab.next[i] = -1
	}
	// Reusable per-source scratch.
	dist := make([]sim.Time, n)
	prev := make([]int32, n)
	visited := make([]bool, n)
	var pq intRouteQueue
	var chain []int32
	for src := 0; src < n; src++ {
		for i := 0; i < n; i++ {
			dist[i] = -1
			prev[i] = -1
			visited[i] = false
		}
		dist[src] = 0
		pq = pq[:0]
		pq = append(pq, intRouteItem{node: int32(src)})
		for len(pq) > 0 {
			cur := heap.Pop(&pq).(intRouteItem)
			if visited[cur.node] {
				continue
			}
			visited[cur.node] = true
			for _, e := range s.adj[cur.node] {
				nd := cur.dist + e.lat
				if dist[e.to] < 0 || nd < dist[e.to] {
					dist[e.to] = nd
					prev[e.to] = cur.node
					heap.Push(&pq, intRouteItem{node: int32(e.to), dist: nd})
				}
			}
		}
		row := src * n
		for dst := 0; dst < n; dst++ {
			if dst == src || dist[dst] < 0 {
				if dst == src {
					tab.dist[row+dst] = 0
				}
				continue
			}
			tab.dist[row+dst] = dist[dst]
		}
		// First hops: every node on the shortest path src→v shares v's
		// first hop, so one memoized upward walk resolves a whole chain.
		for dst := 0; dst < n; dst++ {
			if dst == src || dist[dst] < 0 || tab.next[row+dst] >= 0 {
				continue
			}
			chain = chain[:0]
			hop := int32(-1)
			for u := int32(dst); ; {
				if nxt := tab.next[row+int(u)]; nxt >= 0 {
					hop = nxt // u's first hop is already known
					break
				}
				chain = append(chain, u)
				if prev[u] == int32(src) {
					hop = u // u is src's direct neighbor on the path
					break
				}
				u = prev[u]
			}
			for _, v := range chain {
				tab.next[row+int(v)] = hop
			}
		}
	}
	return tab
}

type intRouteItem struct {
	node int32
	dist sim.Time
}

type intRouteQueue []intRouteItem

func (q intRouteQueue) Len() int           { return len(q) }
func (q intRouteQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q intRouteQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *intRouteQueue) Push(x any)        { *q = append(*q, x.(intRouteItem)) }
func (q *intRouteQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
