package network

import (
	"sort"
	"sync"
	"sync/atomic"

	"myrtus/internal/sim"
)

// routeTable is the per-epoch routing snapshot of the topology: node
// naming, adjacency, and a set of single-source shortest-path rows built
// lazily, one per queried source. The historical implementation ran
// Dijkstra from every node eagerly, materializing an O(N²) all-pairs
// matrix on every topology epoch — ~110ms and 2.4M allocations at 1400
// nodes, and ~2.4GB of matrix at a 10k-edge continuum. Planning and
// serving only ever query a handful of sources (the devices hosting
// stages, the gateway, the KB anchor), so the table now shards the work
// by source: the first read from a source pays one Dijkstra over the
// snapshot (O(E log N), typed heap, reused scratch) and every later read
// is an atomic load plus an array index. A topology edit bumps the epoch
// and invalidates the whole snapshot; only the sources actually queried
// afterwards are recomputed.
//
// The relaxation order (neighbors sorted by name, strict-less distance
// updates, container/heap pop semantics) is identical to the historical
// eager build, so the paths the rows yield are byte-identical to the
// ones the all-pairs matrix produced.
type routeTable struct {
	epoch uint64
	names []string       // sorted node names; index = node id
	idx   map[string]int // name → id
	n     int
	// adj[i] lists i's out-links sorted by neighbor name; radj[i] its
	// in-links, used by reverse (to-anchor) rows.
	adj  [][]nbr
	radj [][]nbr

	// rows[i] is the lazily-built forward row from source i; toRows[i]
	// the reverse row into anchor i (distances only). buildMu serializes
	// row builds and guards the shared Dijkstra scratch.
	rows    []atomic.Pointer[routeRow]
	toRows  []atomic.Pointer[routeRow]
	buildMu sync.Mutex
	scratch dijkstraScratch
}

// routeRow is one single-source shortest-path solution. dist[j] is the
// latency source→j (negative when unreachable); next[j] the first hop on
// the minimum-latency path (-1 when unreachable or j == source). Reverse
// rows carry distances only (next is nil).
type routeRow struct {
	dist []sim.Time
	next []int32
}

// graphSnapshot is the adjacency copied out under the topology lock so
// row builds run without holding it.
type graphSnapshot struct {
	epoch uint64
	names []string
	idx   map[string]int
	adj   [][]nbr
	radj  [][]nbr
}

type nbr struct {
	to  int
	lat sim.Time
}

// snapshot copies the node set and adjacency under t.mu.
func (t *Topology) snapshot() *graphSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &graphSnapshot{epoch: t.epoch.Load()}
	s.names = make([]string, 0, len(t.nodes))
	for n := range t.nodes {
		s.names = append(s.names, n)
	}
	sort.Strings(s.names)
	s.idx = make(map[string]int, len(s.names))
	for i, n := range s.names {
		s.idx[n] = i
	}
	s.adj = make([][]nbr, len(s.names))
	s.radj = make([][]nbr, len(s.names))
	for from, links := range t.links {
		i := s.idx[from]
		tos := make([]string, 0, len(links))
		for to := range links {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		out := make([]nbr, 0, len(tos))
		for _, to := range tos {
			out = append(out, nbr{to: s.idx[to], lat: links[to].Latency})
		}
		s.adj[i] = out
	}
	// Reverse adjacency, kept in the same name order as the forward one.
	for i, out := range s.adj {
		for _, e := range out {
			s.radj[e.to] = append(s.radj[e.to], nbr{to: i, lat: e.lat})
		}
	}
	return s
}

// routes returns the table for the current epoch, snapshotting the graph
// if the topology changed since the last build. The fast path is two
// atomic loads; snapshots are serialized on buildMu so concurrent
// readers never duplicate the copy. Unlike the historical eager build,
// constructing the table costs O(N+E) — no shortest paths are computed
// until a source is actually queried.
func (t *Topology) routes() *routeTable {
	for {
		tab := t.table.Load()
		if tab != nil && tab.epoch == t.epoch.Load() {
			return tab
		}
		t.buildMu.Lock()
		tab = t.table.Load()
		if tab != nil && tab.epoch == t.epoch.Load() {
			t.buildMu.Unlock()
			return tab
		}
		s := t.snapshot()
		tab = &routeTable{
			epoch: s.epoch, names: s.names, idx: s.idx, n: len(s.names),
			adj: s.adj, radj: s.radj,
			rows:   make([]atomic.Pointer[routeRow], len(s.names)),
			toRows: make([]atomic.Pointer[routeRow], len(s.names)),
		}
		t.table.Store(tab)
		t.buildMu.Unlock()
		// Loop: a concurrent edit during the snapshot invalidates it.
	}
}

// row returns the forward shortest-path row from src, building it on
// first use.
func (tab *routeTable) row(src int) *routeRow {
	if r := tab.rows[src].Load(); r != nil {
		return r
	}
	tab.buildMu.Lock()
	defer tab.buildMu.Unlock()
	if r := tab.rows[src].Load(); r != nil {
		return r
	}
	r := tab.scratch.run(src, tab.n, tab.adj, true)
	tab.rows[src].Store(r)
	return r
}

// toRow returns the reverse row into anchor: dist[j] is the latency
// j→anchor. Built by Dijkstra over the reversed adjacency.
func (tab *routeTable) toRow(anchor int) *routeRow {
	if r := tab.toRows[anchor].Load(); r != nil {
		return r
	}
	tab.buildMu.Lock()
	defer tab.buildMu.Unlock()
	if r := tab.toRows[anchor].Load(); r != nil {
		return r
	}
	r := tab.scratch.run(anchor, tab.n, tab.radj, false)
	tab.toRows[anchor].Store(r)
	return r
}

// dijkstraScratch holds the per-build working set, reused across row
// builds under buildMu so a build allocates only its result row.
type dijkstraScratch struct {
	dist    []sim.Time
	prev    []int32
	visited []bool
	pq      routeHeap
	chain   []int32
}

// run executes one single-source Dijkstra over adj. withHops also
// derives the first-hop array via a memoized upward walk (every node on
// the shortest path src→v shares v's first hop).
func (sc *dijkstraScratch) run(src, n int, adj [][]nbr, withHops bool) *routeRow {
	if cap(sc.dist) < n {
		sc.dist = make([]sim.Time, n)
		sc.prev = make([]int32, n)
		sc.visited = make([]bool, n)
	}
	dist, prev, visited := sc.dist[:n], sc.prev[:n], sc.visited[:n]
	for i := 0; i < n; i++ {
		dist[i] = -1
		prev[i] = -1
		visited[i] = false
	}
	dist[src] = 0
	sc.pq = sc.pq[:0]
	sc.pq.push(routeItem{node: int32(src)})
	for len(sc.pq) > 0 {
		cur := sc.pq.pop()
		if visited[cur.node] {
			continue
		}
		visited[cur.node] = true
		for _, e := range adj[cur.node] {
			nd := cur.dist + e.lat
			if dist[e.to] < 0 || nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = cur.node
				sc.pq.push(routeItem{node: int32(e.to), dist: nd})
			}
		}
	}
	row := &routeRow{dist: make([]sim.Time, n)}
	copy(row.dist, dist)
	if !withHops {
		return row
	}
	row.next = make([]int32, n)
	for i := range row.next {
		row.next[i] = -1
	}
	for dst := 0; dst < n; dst++ {
		if dst == src || dist[dst] < 0 || row.next[dst] >= 0 {
			continue
		}
		sc.chain = sc.chain[:0]
		hop := int32(-1)
		for u := int32(dst); ; {
			if nxt := row.next[u]; nxt >= 0 {
				hop = nxt // u's first hop is already known
				break
			}
			sc.chain = append(sc.chain, u)
			if prev[u] == int32(src) {
				hop = u // u is src's direct neighbor on the path
				break
			}
			u = prev[u]
		}
		for _, v := range sc.chain {
			row.next[v] = hop
		}
	}
	return row
}

// routeItem / routeHeap is a typed binary min-heap on dist. It
// reproduces container/heap's push/pop mechanics exactly (append+up;
// swap-root-with-last, shrink, down) so the visit order — and therefore
// the tie-broken shortest paths — match the historical implementation
// byte for byte, without the per-push interface boxing that used to
// account for millions of allocations per all-pairs build.
type routeItem struct {
	node int32
	dist sim.Time
}

type routeHeap []routeItem

func (q *routeHeap) push(it routeItem) {
	*q = append(*q, it)
	q.up(len(*q) - 1)
}

func (q *routeHeap) pop() routeItem {
	h := *q
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	it := h[n]
	*q = h[:n]
	q.down(0, n)
	return it
}

func (q routeHeap) up(j int) {
	for {
		i := (j - 1) / 2 // parent
		if i == j || q[j].dist >= q[i].dist {
			break
		}
		q[i], q[j] = q[j], q[i]
		j = i
	}
}

func (q routeHeap) down(i0, n int) {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && q[j2].dist < q[j1].dist {
			j = j2
		}
		if q[j].dist >= q[i].dist {
			break
		}
		q[i], q[j] = q[j], q[i]
		i = j
	}
}
