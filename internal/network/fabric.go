package network

import (
	"errors"
	"fmt"
	"strconv"

	"myrtus/internal/sim"
	"myrtus/internal/trace"
)

// ErrQueueFull is the deterministic fast-reject a transfer receives when
// a link's queue delay exceeds the fabric's configured bound — the
// bounded-queue alternative to letting a saturated link (or a flooded
// broker endpoint) absorb unbounded backlog. It is an overload signal,
// not a fault: mirto.Retryable reports false for it.
var ErrQueueFull = errors.New("network: link queue full")

// Fabric simulates message transfers over a Topology on a sim.Engine.
// It is the delivery layer under the protocol endpoints (pub/sub broker,
// MIRTO agent RPC). Fabric is not safe for concurrent use: it belongs to
// the simulation goroutine, like the engine itself.
type Fabric struct {
	engine *sim.Engine
	topo   *Topology
	tracer *trace.Tracer

	// retryBase is the first retransmit's backoff; successive retries of
	// one transfer double it (capped at 64×), each stretched by up to
	// +50% jitter from rng — a stream forked off the topology seed so
	// backoff draws never perturb the loss-draw sequence.
	retryBase sim.Time
	rng       *sim.RNG

	// maxQueue bounds each link's per-slice queue delay: a transfer whose
	// hop would wait longer is dropped with ErrQueueFull (0 = unbounded).
	maxQueue sim.Time

	delivered  int64
	lost       int64
	retries    int64
	queueDrops int64
	backoff    sim.Time
	latency    latencyAgg
}

type latencyAgg struct {
	n   int64
	sum sim.Time
	max sim.Time
}

func (a *latencyAgg) add(d sim.Time) {
	a.n++
	a.sum += d
	if d > a.max {
		a.max = d
	}
}

// NewFabric binds a topology to an engine.
func NewFabric(engine *sim.Engine, topo *Topology) *Fabric {
	return &Fabric{
		engine:    engine,
		topo:      topo,
		retryBase: sim.Millisecond,
		rng:       topo.rng.Fork("fabric-retry"),
	}
}

// SetRetryBackoff tunes the base retransmit backoff. Zero restores the
// legacy immediate-retry behaviour (retransmits consume no virtual time
// beyond the link traversal itself).
func (f *Fabric) SetRetryBackoff(base sim.Time) { f.retryBase = base }

// SetMaxQueueDelay bounds every link's per-slice queue: a hop that would
// wait longer than limit behind queued transfers is dropped with
// ErrQueueFull instead of stretching the queue further. This is what
// caps the pub/sub broker's effective queue depth too — a burst of
// publishes queues on the broker endpoint's links, and everything past
// the bound is shed rather than delaying all traffic behind it. Zero
// restores unbounded queuing.
func (f *Fabric) SetMaxQueueDelay(limit sim.Time) { f.maxQueue = limit }

// backoffDelay is the attempt'th retransmit's deterministic exponential
// backoff with seeded jitter; attempt counts retransmits already spent
// on the transfer.
func (f *Fabric) backoffDelay(attempt int) sim.Time {
	if f.retryBase <= 0 {
		return 0
	}
	shift := attempt
	if shift > 6 {
		shift = 6
	}
	d := f.retryBase << shift
	return d + sim.Time(f.rng.Float64()*float64(d)/2)
}

// Engine returns the underlying simulation engine.
func (f *Fabric) Engine() *sim.Engine { return f.engine }

// SetTracer attaches a tracer; SendCtx transfers then record network
// spans for sampled traces. A nil tracer disables tracing.
func (f *Fabric) SetTracer(t *trace.Tracer) { f.tracer = t }

// Topology returns the underlying topology.
func (f *Fabric) Topology() *Topology { return f.topo }

// Options tune one transfer.
type Options struct {
	// Slice assigns the transfer to a network slice ("" = best effort).
	Slice string
	// Retries is how many times a lost packet is retransmitted before the
	// transfer fails (each retry re-traverses the lossy link).
	Retries int
}

// Send schedules the transfer of size bytes from src to dst and invokes
// done(err) in virtual time when the last byte arrives (or delivery
// definitively fails). The returned error covers immediate routing
// failures only.
func (f *Fabric) Send(src, dst string, size int64, opts Options, done func(err error)) error {
	path, _, err := f.topo.Route(src, dst)
	if err != nil {
		return err
	}
	if len(path) == 1 { // local delivery
		f.engine.After(0, func() {
			f.delivered++
			f.latency.add(0)
			if done != nil {
				done(nil)
			}
		})
		return nil
	}
	start := f.engine.Now()
	f.hop(path, 0, size, opts, start, 0, done)
	return nil
}

// hop simulates traversal of path[idx] → path[idx+1], then recurses.
// attempt counts retransmits already spent on this transfer and drives
// the retry backoff.
func (f *Fabric) hop(path []string, idx int, size int64, opts Options, start sim.Time, attempt int, done func(error)) {
	if idx == len(path)-1 {
		f.delivered++
		f.latency.add(f.engine.Now() - start)
		if done != nil {
			done(nil)
		}
		return
	}
	from, to := path[idx], path[idx+1]
	f.topo.mu.Lock()
	link, ok := f.topo.links[from][to]
	if !ok {
		f.topo.mu.Unlock()
		f.fail(done, fmt.Errorf("network: link %s->%s vanished mid-route", from, to))
		return
	}
	key := from + "->" + to
	share := f.topo.sliceShare(key, opts.Slice)
	bw := link.Bandwidth * share
	now := f.engine.Now()
	free := link.nextFree[opts.Slice]
	if free < now {
		free = now
	}
	wait := free - now
	if f.maxQueue > 0 && wait > f.maxQueue {
		f.topo.mu.Unlock()
		f.queueDrops++
		f.fail(done, fmt.Errorf("network: %s->%s queue delay %v exceeds %v: %w",
			from, to, wait, f.maxQueue, ErrQueueFull))
		return
	}
	ser := serialization(size, bw)
	link.nextFree[opts.Slice] = free + ser
	link.queueTotal += wait
	link.transfers++
	lost := link.LossP > 0 && f.topo.rng.Bool(link.LossP)
	arrival := free + ser + link.Latency
	f.topo.mu.Unlock()

	f.engine.At(arrival, func() {
		if lost {
			f.lost++
			if opts.Retries > 0 {
				f.retries++
				o := opts
				o.Retries--
				// Retransmits back off on the sim clock instead of
				// re-traversing the lossy link instantly.
				delay := f.backoffDelay(attempt)
				f.backoff += delay
				if delay == 0 {
					f.hop(path, idx, size, o, start, attempt+1, done)
					return
				}
				f.engine.After(delay, func() {
					f.hop(path, idx, size, o, start, attempt+1, done)
				})
				return
			}
			f.fail(done, fmt.Errorf("network: packet lost on %s->%s", from, to))
			return
		}
		f.hop(path, idx+1, size, opts, start, attempt, done)
	})
}

func (f *Fabric) fail(done func(error), err error) {
	f.engine.After(0, func() {
		if done != nil {
			done(err)
		}
	})
}

// FabricStats summarizes fabric activity.
type FabricStats struct {
	Delivered int64
	Lost      int64
	Retries   int64
	// QueueDrops counts transfers shed by the bounded link queue
	// (SetMaxQueueDelay) instead of queuing past the bound.
	QueueDrops  int64
	BackoffTime sim.Time // virtual time spent waiting out retransmit backoffs
	MeanLatency sim.Time
	MaxLatency  sim.Time
}

// Stats returns cumulative transfer statistics.
func (f *Fabric) Stats() FabricStats {
	s := FabricStats{Delivered: f.delivered, Lost: f.lost, Retries: f.retries, QueueDrops: f.queueDrops, BackoffTime: f.backoff, MaxLatency: f.latency.max}
	if f.latency.n > 0 {
		s.MeanLatency = f.latency.sum / sim.Time(f.latency.n)
	}
	return s
}

// SendCtx is Send with trace propagation: when the parent context
// belongs to a sampled trace, the transfer is wrapped in a "net.send"
// span ending at the virtual time the last byte arrives (or the failure
// is final). The returned context references the transfer span so the
// receiver's work can be parented on it, preserving the causal chain
// that critical-path extraction walks.
func (f *Fabric) SendCtx(parent trace.SpanContext, src, dst string, size int64, opts Options, done func(err error)) (trace.SpanContext, error) {
	sp := f.tracer.StartSpan(parent, "net.send", trace.LayerNetwork)
	if sp == nil {
		return trace.SpanContext{}, f.Send(src, dst, size, opts, done)
	}
	sp.SetAttr("src", src)
	sp.SetAttr("dst", dst)
	sp.SetAttr("bytes", strconv.FormatInt(size, 10))
	err := f.Send(src, dst, size, opts, func(serr error) {
		sp.SetError(serr)
		sp.EndNow()
		if done != nil {
			done(serr)
		}
	})
	if err != nil {
		sp.SetError(err)
		sp.EndNow()
		return trace.SpanContext{}, err
	}
	return sp.Context(), nil
}

// RequestReply models an HTTP-like exchange: send a request of reqSize
// from src to dst, then a reply of respSize back, invoking done with the
// total round-trip error status.
func (f *Fabric) RequestReply(src, dst string, reqSize, respSize int64, opts Options, done func(err error)) error {
	return f.Send(src, dst, reqSize, opts, func(err error) {
		if err != nil {
			if done != nil {
				done(err)
			}
			return
		}
		if err := f.Send(dst, src, respSize, opts, done); err != nil && done != nil {
			done(err)
		}
	})
}
