package network

import (
	"strings"
	"testing"
	"testing/quick"

	"myrtus/internal/sim"
	"myrtus/internal/trace"
)

func star(t *testing.T) *Topology {
	t.Helper()
	topo := NewTopology(1)
	// edge-0, edge-1 — gateway — fmdc — cloud
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(topo.AddDuplex("edge-0", "gateway", 2*sim.Millisecond, 10e6, 0))
	must(topo.AddDuplex("edge-1", "gateway", 2*sim.Millisecond, 10e6, 0))
	must(topo.AddDuplex("gateway", "fmdc", 5*sim.Millisecond, 100e6, 0))
	must(topo.AddDuplex("fmdc", "cloud", 20*sim.Millisecond, 1000e6, 0))
	return topo
}

func TestTopologyValidation(t *testing.T) {
	topo := NewTopology(1)
	if err := topo.AddLink("a", "a", 1, 1, 0); err == nil {
		t.Fatal("self-link accepted")
	}
	if err := topo.AddLink("a", "b", 1, 0, 0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
	if err := topo.AddLink("a", "b", 1, 1, 1.0); err == nil {
		t.Fatal("loss=1 accepted")
	}
	if err := topo.AddLink("a", "b", 1, 1, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, ok := topo.Link("a", "b"); !ok {
		t.Fatal("link missing")
	}
	topo.RemoveLink("a", "b")
	if _, ok := topo.Link("a", "b"); ok {
		t.Fatal("link survived removal")
	}
}

func TestRouteShortestLatency(t *testing.T) {
	topo := star(t)
	path, lat, err := topo.Route("edge-0", "cloud")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"edge-0", "gateway", "fmdc", "cloud"}
	if len(path) != 4 {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if lat != 27*sim.Millisecond {
		t.Fatalf("latency = %v, want 27ms", lat)
	}
}

func TestRoutePrefersLowLatency(t *testing.T) {
	topo := NewTopology(1)
	topo.AddLink("a", "b", 10*sim.Millisecond, 1e6, 0) //nolint:errcheck
	topo.AddLink("a", "c", 1*sim.Millisecond, 1e6, 0)  //nolint:errcheck
	topo.AddLink("c", "b", 2*sim.Millisecond, 1e6, 0)  //nolint:errcheck
	path, lat, err := topo.Route("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || lat != 3*sim.Millisecond {
		t.Fatalf("path=%v lat=%v", path, lat)
	}
}

func TestRouteErrors(t *testing.T) {
	topo := star(t)
	if _, _, err := topo.Route("ghost", "cloud"); err == nil {
		t.Fatal("unknown src accepted")
	}
	if _, _, err := topo.Route("cloud", "ghost"); err == nil {
		t.Fatal("unknown dst accepted")
	}
	topo.AddNode("island")
	if _, _, err := topo.Route("island", "cloud"); err == nil {
		t.Fatal("unreachable route accepted")
	}
	path, lat, err := topo.Route("cloud", "cloud")
	if err != nil || len(path) != 1 || lat != 0 {
		t.Fatalf("self route = %v %v %v", path, lat, err)
	}
}

func TestRouteSymmetryProperty(t *testing.T) {
	// On a duplex topology, latency a→b equals b→a.
	topo := star(t)
	nodes := topo.Nodes()
	if err := quick.Check(func(i, j uint8) bool {
		a := nodes[int(i)%len(nodes)]
		b := nodes[int(j)%len(nodes)]
		_, l1, e1 := topo.Route(a, b)
		_, l2, e2 := topo.Route(b, a)
		if (e1 == nil) != (e2 == nil) {
			return false
		}
		return e1 != nil || l1 == l2
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFabricDeliveryTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	topo := star(t)
	f := NewFabric(eng, topo)
	var arrived sim.Time
	err := f.Send("edge-0", "gateway", 10_000_000, Options{}, func(err error) {
		if err != nil {
			t.Errorf("send: %v", err)
		}
		arrived = eng.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// 10 MB at 10 MB/s = 1s serialization + 2ms propagation.
	want := sim.Second + 2*sim.Millisecond
	if arrived != want {
		t.Fatalf("arrived at %v, want %v", arrived, want)
	}
}

func TestFabricQueuingCongestion(t *testing.T) {
	eng := sim.NewEngine(1)
	topo := star(t)
	f := NewFabric(eng, topo)
	var t1, t2 sim.Time
	f.Send("edge-0", "gateway", 10_000_000, Options{}, func(error) { t1 = eng.Now() }) //nolint:errcheck
	f.Send("edge-0", "gateway", 10_000_000, Options{}, func(error) { t2 = eng.Now() }) //nolint:errcheck
	eng.Run()
	if t2 <= t1 {
		t.Fatalf("second transfer not queued: t1=%v t2=%v", t1, t2)
	}
	if t2 < 2*sim.Second {
		t.Fatalf("t2 = %v, want ≥ 2s (FIFO serialization)", t2)
	}
	stats := topo.Stats()
	foundWait := false
	for _, s := range stats {
		if s.From == "edge-0" && s.MeanQueueWait > 0 {
			foundWait = true
		}
	}
	if !foundWait {
		t.Fatal("no queue wait recorded")
	}
}

func TestFabricLocalDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewFabric(eng, star(t))
	ok := false
	if err := f.Send("cloud", "cloud", 100, Options{}, func(err error) { ok = err == nil }); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !ok {
		t.Fatal("local delivery failed")
	}
}

func TestFabricLossAndRetry(t *testing.T) {
	eng := sim.NewEngine(1)
	topo := NewTopology(7)
	topo.AddLink("a", "b", sim.Millisecond, 1e9, 0.5) //nolint:errcheck
	f := NewFabric(eng, topo)
	okCount, failCount := 0, 0
	for i := 0; i < 200; i++ {
		f.Send("a", "b", 100, Options{Retries: 5}, func(err error) { //nolint:errcheck
			if err == nil {
				okCount++
			} else {
				failCount++
			}
		})
	}
	eng.Run()
	// P(fail) = 0.5^6 ≈ 1.6%; nearly all should succeed.
	if okCount < 180 {
		t.Fatalf("ok=%d fail=%d, retries not working", okCount, failCount)
	}
	st := f.Stats()
	if st.Lost == 0 || st.Retries == 0 {
		t.Fatalf("loss stats empty: %+v", st)
	}

	// Without retries, ~half fail.
	eng2 := sim.NewEngine(2)
	topo2 := NewTopology(8)
	topo2.AddLink("a", "b", sim.Millisecond, 1e9, 0.5) //nolint:errcheck
	f2 := NewFabric(eng2, topo2)
	fail2 := 0
	for i := 0; i < 200; i++ {
		f2.Send("a", "b", 100, Options{}, func(err error) { //nolint:errcheck
			if err != nil {
				fail2++
			}
		})
	}
	eng2.Run()
	if fail2 < 50 || fail2 > 150 {
		t.Fatalf("fail2 = %d, want ≈100", fail2)
	}
}

func TestSliceReservationBoundsLatency(t *testing.T) {
	// A sliced flow must not be delayed by best-effort congestion.
	mk := func(withSlice bool) sim.Time {
		eng := sim.NewEngine(1)
		topo := NewTopology(1)
		topo.AddLink("a", "b", sim.Millisecond, 10e6, 0) //nolint:errcheck
		if withSlice {
			if err := topo.DefineSlice("critical", 0.5, "a->b"); err != nil {
				t.Fatal(err)
			}
		}
		f := NewFabric(eng, topo)
		// Congest with 20 best-effort transfers.
		for i := 0; i < 20; i++ {
			f.Send("a", "b", 1_000_000, Options{}, nil) //nolint:errcheck
		}
		var done sim.Time
		slice := ""
		if withSlice {
			slice = "critical"
		}
		f.Send("a", "b", 1_000_000, Options{Slice: slice}, func(error) { done = eng.Now() }) //nolint:errcheck
		eng.Run()
		return done
	}
	without := mk(false)
	with := mk(true)
	if with >= without {
		t.Fatalf("slice did not isolate: with=%v without=%v", with, without)
	}
	// Sliced flow sees only its own serialization: 1MB at 5MB/s = 200ms.
	if with > 250*sim.Millisecond {
		t.Fatalf("sliced latency %v too high", with)
	}
}

func TestSliceValidation(t *testing.T) {
	topo := star(t)
	if err := topo.DefineSlice("bad", 0); err == nil {
		t.Fatal("share 0 accepted")
	}
	if err := topo.DefineSlice("bad", 1); err == nil {
		t.Fatal("share 1 accepted")
	}
	if err := topo.DefineSlice("s1", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := topo.DefineSlice("s2", 0.6); err == nil {
		t.Fatal("over-reservation accepted")
	}
	if err := topo.DefineSlice("s3", 0.3); err != nil {
		t.Fatal(err)
	}
}

func TestRequestReply(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewFabric(eng, star(t))
	var rtt sim.Time
	err := f.RequestReply("edge-0", "fmdc", 1000, 5000, Options{}, func(err error) {
		if err != nil {
			t.Errorf("rr: %v", err)
		}
		rtt = eng.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if rtt < 14*sim.Millisecond { // 2×(2ms+5ms) propagation minimum
		t.Fatalf("rtt = %v, too fast", rtt)
	}
}

func TestBrokerPubSub(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewFabric(eng, star(t))
	b := NewBroker(f, "gateway")
	if b.Node() != "gateway" {
		t.Fatal("broker node")
	}
	var got []string
	b.Subscribe("fmdc", "sensors/#", "", func(topic string, payload []byte) {
		got = append(got, topic+":"+string(payload))
	})
	b.Subscribe("cloud", "sensors/cam0/frame", "", func(topic string, payload []byte) {
		got = append(got, "cloud:"+topic)
	})
	b.Subscribe("edge-1", "other", "", func(string, []byte) {
		t.Error("wrong topic delivered")
	})
	if err := b.Publish("edge-0", "sensors/cam0/frame", []byte("img"), ""); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != 2 {
		t.Fatalf("deliveries = %v", got)
	}
	joined := strings.Join(got, "|")
	if !strings.Contains(joined, "sensors/cam0/frame:img") || !strings.Contains(joined, "cloud:sensors/cam0/frame") {
		t.Fatalf("got %v", got)
	}
	if b.Published() != 1 || b.Fanout() != 2 {
		t.Fatalf("counters: pub=%d fan=%d", b.Published(), b.Fanout())
	}
}

func TestTopicMatch(t *testing.T) {
	cases := []struct {
		pattern, topic string
		want           bool
	}{
		{"a/b", "a/b", true},
		{"a/b", "a/c", false},
		{"#", "anything/at/all", true},
		{"a/#", "a", true},
		{"a/#", "a/b/c", true},
		{"a/#", "ab", false},
		{"a/#", "b/a", false},
	}
	for _, c := range cases {
		if got := topicMatch(c.pattern, c.topic); got != c.want {
			t.Errorf("topicMatch(%q, %q) = %v, want %v", c.pattern, c.topic, got, c.want)
		}
	}
}

func TestNodesSorted(t *testing.T) {
	topo := star(t)
	nodes := topo.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatalf("not sorted: %v", nodes)
		}
	}
	if len(nodes) != 5 {
		t.Fatalf("nodes = %v", nodes)
	}
}

func TestBrokerDroppedOnFailedLink(t *testing.T) {
	eng := sim.NewEngine(1)
	topo := star(t)
	f := NewFabric(eng, topo)
	b := NewBroker(f, "gateway")
	delivered := 0
	b.Subscribe("cloud", "sensors/#", "", func(string, []byte) { delivered++ })
	if err := b.Publish("edge-0", "sensors/cam0", []byte("img"), ""); err != nil {
		t.Fatal(err)
	}
	// Cut the broker's only path to the subscriber before the fan-out
	// fires: the delivery must fail and be counted, not swallowed.
	topo.RemoveLink("gateway", "fmdc")
	topo.RemoveLink("fmdc", "gateway")
	eng.Run()
	if delivered != 0 {
		t.Fatal("delivery succeeded over a removed link")
	}
	if b.Published() != 1 || b.Fanout() != 1 {
		t.Fatalf("counters: pub=%d fan=%d", b.Published(), b.Fanout())
	}
	if b.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", b.Dropped())
	}
}

func TestBrokerDroppedOnPublisherLeg(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewFabric(eng, star(t))
	b := NewBroker(f, "gateway")
	// "nowhere" has no route to the broker: the publisher leg fails
	// immediately and is counted.
	if err := b.Publish("nowhere", "sensors/cam0", []byte("x"), ""); err == nil {
		t.Fatal("publish from unrouted node succeeded")
	}
	if b.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", b.Dropped())
	}
}

func TestBrokerUnsubscribe(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewFabric(eng, star(t))
	b := NewBroker(f, "gateway")
	var got []string
	b.Subscribe("fmdc", "sensors/#", "", func(topic string, _ []byte) { got = append(got, "fmdc") })
	b.Subscribe("cloud", "sensors/#", "", func(topic string, _ []byte) { got = append(got, "cloud") })
	if n := b.Unsubscribe("fmdc", "sensors/#"); n != 1 {
		t.Fatalf("Unsubscribe removed %d, want 1", n)
	}
	if n := b.Unsubscribe("fmdc", "sensors/#"); n != 0 {
		t.Fatalf("second Unsubscribe removed %d, want 0", n)
	}
	if n := b.Unsubscribe("cloud", "no/such/pattern"); n != 0 {
		t.Fatalf("unknown pattern removed %d, want 0", n)
	}
	if err := b.Publish("edge-0", "sensors/cam0", []byte("x"), ""); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(got) != 1 || got[0] != "cloud" {
		t.Fatalf("deliveries = %v, want only cloud", got)
	}
	// Removing the last subscriber of a pattern clears the entry.
	if n := b.Unsubscribe("cloud", "sensors/#"); n != 1 {
		t.Fatalf("Unsubscribe removed %d, want 1", n)
	}
	if len(b.subs) != 0 {
		t.Fatalf("subs map not cleaned: %v", b.subs)
	}
}

func TestSendCtxRecordsNetworkSpan(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewFabric(eng, star(t))
	tr := trace.NewTracer(eng)
	f.SetTracer(tr)
	root := tr.StartRoot("request/test", trace.LayerAgent)
	ctx, err := f.SendCtx(root.Context(), "edge-0", "fmdc", 1000, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !ctx.Valid() {
		t.Fatal("SendCtx returned invalid context for sampled trace")
	}
	eng.Run()
	root.EndNow()
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	var net *trace.Span
	for _, s := range traces[0].Spans {
		if s.Name == "net.send" {
			net = s
		}
	}
	if net == nil {
		t.Fatal("no net.send span recorded")
	}
	if net.Layer != trace.LayerNetwork || net.Parent != root.ID {
		t.Fatalf("span = %+v", net)
	}
	if net.Duration() < 7*sim.Millisecond { // 2ms + 5ms propagation minimum
		t.Fatalf("span duration %v too short", net.Duration())
	}
	if net.Attrs["src"] != "edge-0" || net.Attrs["dst"] != "fmdc" || net.Attrs["bytes"] != "1000" {
		t.Fatalf("attrs = %v", net.Attrs)
	}
	// Without a sampled parent, SendCtx degrades to plain Send.
	zctx, err := f.SendCtx(trace.SpanContext{}, "edge-0", "fmdc", 10, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if zctx.Valid() {
		t.Fatal("unsampled SendCtx returned a valid context")
	}
}

func TestPublishCtxRecordsBrokerSpan(t *testing.T) {
	eng := sim.NewEngine(1)
	f := NewFabric(eng, star(t))
	tr := trace.NewTracer(eng)
	f.SetTracer(tr)
	b := NewBroker(f, "gateway")
	b.SetTracer(tr)
	done := 0
	b.Subscribe("fmdc", "sensors/#", "", func(string, []byte) { done++ })
	b.Subscribe("cloud", "sensors/#", "", func(string, []byte) { done++ })
	root := tr.StartRoot("request/test", trace.LayerAgent)
	if err := b.PublishCtx(root.Context(), "edge-0", "sensors/cam0", []byte("img"), ""); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	root.EndNow()
	if done != 2 {
		t.Fatalf("deliveries = %d", done)
	}
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	var pub *trace.Span
	for _, s := range traces[0].Spans {
		if s.Name == "broker.publish/sensors/cam0" {
			pub = s
		}
	}
	if pub == nil {
		t.Fatal("no broker.publish span recorded")
	}
	if pub.Layer != trace.LayerBroker || pub.Attrs["subscribers"] != "2" {
		t.Fatalf("span = %+v attrs = %v", pub, pub.Attrs)
	}
	// The span covers the full fan-out: it must end no earlier than the
	// slowest subscriber delivery completes.
	if pub.Duration() < 9*sim.Millisecond { // edge→gw (2ms) + gw→fmdc→cloud (5+20ms) legs
		t.Fatalf("span duration %v too short for full fan-out", pub.Duration())
	}
}

func TestFabricRetryBackoff(t *testing.T) {
	// Retransmits must consume virtual time: a lossy transfer with
	// retries arrives strictly later than the loss-free serialization
	// plus propagation, and BackoffTime accounts for the waiting.
	run := func(seed uint64) (sim.Time, FabricStats) {
		eng := sim.NewEngine(seed)
		topo := NewTopology(seed)
		topo.AddLink("a", "b", sim.Millisecond, 1e9, 0.5) //nolint:errcheck
		f := NewFabric(eng, topo)
		var last sim.Time
		for i := 0; i < 200; i++ {
			f.Send("a", "b", 100, Options{Retries: 5}, func(err error) { //nolint:errcheck
				if err == nil {
					last = eng.Now()
				}
			})
		}
		eng.Run()
		return last, f.Stats()
	}
	last, st := run(7)
	if st.Retries == 0 || st.BackoffTime == 0 {
		t.Fatalf("no backoff accounted: %+v", st)
	}
	// Every retransmit waited at least the 1ms base.
	if st.BackoffTime < sim.Time(st.Retries)*sim.Millisecond {
		t.Fatalf("BackoffTime %v below %d retries × base", st.BackoffTime, st.Retries)
	}
	if last <= sim.Millisecond {
		t.Fatalf("lossy deliveries finished at %v, before any backoff could elapse", last)
	}

	// Same seed → byte-identical timing and stats.
	last2, st2 := run(7)
	if last != last2 || st != st2 {
		t.Fatalf("retry backoff not deterministic: %v/%+v vs %v/%+v", last, st, last2, st2)
	}

	// Zero base restores the legacy immediate-retry behaviour.
	eng := sim.NewEngine(7)
	topo := NewTopology(7)
	topo.AddLink("a", "b", sim.Millisecond, 1e9, 0.5) //nolint:errcheck
	f := NewFabric(eng, topo)
	f.SetRetryBackoff(0)
	for i := 0; i < 50; i++ {
		f.Send("a", "b", 100, Options{Retries: 5}, nil) //nolint:errcheck
	}
	eng.Run()
	if got := f.Stats(); got.BackoffTime != 0 {
		t.Fatalf("zero base still accrued backoff: %+v", got)
	}
}
