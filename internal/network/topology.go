// Package network models the MYRTUS connectivity substrate (EU-CEI
// "Network" building block): a continuum-wide topology of links with
// latency, bandwidth, and loss; shortest-path routing; FIFO link queuing
// (congestion); network slices reserving bandwidth shares; and a
// lightweight pub/sub message fabric in the role of the MQTT/CoAP/HTTP
// protocols the paper lists for edge–gateway–FMDC communication.
//
// All timing runs on the discrete-event kernel in internal/sim, so
// end-to-end latency and congestion are measurable and reproducible.
package network

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"myrtus/internal/sim"
)

// Link is a unidirectional connection between two named endpoints.
type Link struct {
	From, To  string
	Latency   sim.Time // propagation delay
	Bandwidth float64  // bytes per virtual second
	LossP     float64  // i.i.d. packet loss probability

	// nextFree[sliceID] is when the slice's share of the link is next
	// available; sliceID "" is best-effort.
	nextFree map[string]sim.Time
	// queueTotal accumulates queuing delay for congestion metrics.
	queueTotal sim.Time
	transfers  int64
}

// Utilization metrics for one link.
type LinkStats struct {
	From, To      string
	Transfers     int64
	MeanQueueWait sim.Time
}

// Topology is the graph of endpoints and links plus slice definitions.
// It is safe for concurrent use.
//
// Routing is served from an all-pairs latency/next-hop table built once
// per topology epoch (see routetable.go): every graph edit bumps epoch,
// and the next routing call rebuilds the table outside the lock. Reads
// are two atomic loads — Route and RouteLatency never hold t.mu while
// computing shortest paths, so concurrent senders never serialize on
// Dijkstra.
type Topology struct {
	mu     sync.Mutex
	nodes  map[string]bool
	links  map[string]map[string]*Link
	slices map[string]*Slice
	rng    *sim.RNG

	// epoch counts graph edits; table caches the all-pairs routes for
	// the epoch it was built at. buildMu serializes rebuilds.
	epoch   atomic.Uint64
	table   atomic.Pointer[routeTable]
	buildMu sync.Mutex
}

// Slice reserves a bandwidth share on a set of links for a traffic class
// (EU-CEI network slicing). Share is the fraction of each member link's
// bandwidth reserved exclusively for the slice.
type Slice struct {
	Name  string
	Share float64
	// Links: "from->to" members; empty means every link.
	Links map[string]bool
}

// NewTopology returns an empty topology.
func NewTopology(seed uint64) *Topology {
	return &Topology{
		nodes:  make(map[string]bool),
		links:  make(map[string]map[string]*Link),
		slices: make(map[string]*Slice),
		rng:    sim.NewRNG(seed).Fork("network"),
	}
}

// AddNode registers an endpoint.
func (t *Topology) AddNode(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.nodes[name] {
		t.nodes[name] = true
		t.epoch.Add(1)
	}
}

// Nodes returns all endpoint names, sorted.
func (t *Topology) Nodes() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.nodes))
	for n := range t.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddLink creates a unidirectional link. Both endpoints are registered
// implicitly.
func (t *Topology) AddLink(from, to string, latency sim.Time, bandwidth float64, lossP float64) error {
	if from == to {
		return fmt.Errorf("network: self-link on %q", from)
	}
	if bandwidth <= 0 {
		return fmt.Errorf("network: non-positive bandwidth on %s->%s", from, to)
	}
	if lossP < 0 || lossP >= 1 {
		return fmt.Errorf("network: loss probability %v out of [0,1)", lossP)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[from] = true
	t.nodes[to] = true
	if t.links[from] == nil {
		t.links[from] = make(map[string]*Link)
	}
	t.links[from][to] = &Link{
		From: from, To: to,
		Latency: latency, Bandwidth: bandwidth, LossP: lossP,
		nextFree: make(map[string]sim.Time),
	}
	t.epoch.Add(1)
	return nil
}

// AddDuplex creates links in both directions with identical parameters.
func (t *Topology) AddDuplex(a, b string, latency sim.Time, bandwidth float64, lossP float64) error {
	if err := t.AddLink(a, b, latency, bandwidth, lossP); err != nil {
		return err
	}
	return t.AddLink(b, a, latency, bandwidth, lossP)
}

// RemoveLink severs from→to (e.g. connectivity failure injection).
func (t *Topology) RemoveLink(from, to string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if m := t.links[from]; m != nil {
		if _, ok := m[to]; ok {
			delete(m, to)
			t.epoch.Add(1)
		}
	}
}

// SetLinkQuality rewrites the latency, bandwidth, and loss of an
// existing link (degradation injection / repair). Validation mirrors
// AddLink; the epoch bump invalidates cached routes so the next routing
// read sees the new weights.
func (t *Topology) SetLinkQuality(from, to string, latency sim.Time, bandwidth, lossP float64) error {
	if from == to {
		return fmt.Errorf("network: self-link on %q", from)
	}
	if bandwidth <= 0 {
		return fmt.Errorf("network: non-positive bandwidth on %s->%s", from, to)
	}
	if lossP < 0 || lossP >= 1 {
		return fmt.Errorf("network: loss probability %v out of [0,1)", lossP)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.links[from][to]
	if !ok {
		return fmt.Errorf("network: no link %s->%s", from, to)
	}
	l.Latency, l.Bandwidth, l.LossP = latency, bandwidth, lossP
	t.epoch.Add(1)
	return nil
}

// AdjacentLinks returns parameter copies of every link touching node in
// either direction, sorted by (From, To) — the set a partition event
// must cut and a heal event later restore.
func (t *Topology) AdjacentLinks(node string) []Link {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []Link
	for _, m := range t.links {
		for _, l := range m {
			if l.From == node || l.To == node {
				out = append(out, Link{
					From: l.From, To: l.To,
					Latency: l.Latency, Bandwidth: l.Bandwidth, LossP: l.LossP,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// Link returns the link from→to.
func (t *Topology) Link(from, to string) (*Link, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.links[from][to]
	return l, ok
}

// DefineSlice reserves share of bandwidth on the listed links (empty list
// means all links) for the named traffic class. Total reservations on any
// link must stay below 1.
func (t *Topology) DefineSlice(name string, share float64, links ...string) error {
	if share <= 0 || share >= 1 {
		return fmt.Errorf("network: slice share %v out of (0,1)", share)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	member := make(map[string]bool, len(links))
	for _, l := range links {
		member[l] = true
	}
	// Validate cumulative reservation per link.
	check := func(linkKey string) error {
		total := share
		for _, s := range t.slices {
			if len(s.Links) == 0 || s.Links[linkKey] {
				total += s.Share
			}
		}
		if total >= 1 {
			return fmt.Errorf("network: cumulative slice reservation %.2f ≥ 1 on %s", total, linkKey)
		}
		return nil
	}
	if len(member) == 0 {
		for from, m := range t.links {
			for to := range m {
				if err := check(from + "->" + to); err != nil {
					return err
				}
			}
		}
	} else {
		for l := range member {
			if err := check(l); err != nil {
				return err
			}
		}
	}
	t.slices[name] = &Slice{Name: name, Share: share, Links: member}
	return nil
}

// sliceShare returns the bandwidth fraction available to sliceID on link
// key: its reservation if sliced, otherwise whatever is unreserved.
func (t *Topology) sliceShare(linkKey, sliceID string) float64 {
	if sliceID != "" {
		if s, ok := t.slices[sliceID]; ok && (len(s.Links) == 0 || s.Links[linkKey]) {
			return s.Share
		}
	}
	reserved := 0.0
	for _, s := range t.slices {
		if len(s.Links) == 0 || s.Links[linkKey] {
			reserved += s.Share
		}
	}
	free := 1 - reserved
	if free < 0.01 {
		free = 0.01
	}
	return free
}

// Route returns the minimum-latency path from src to dst (inclusive of
// both). The path comes from the epoch-cached sharded route table: the
// first query from a source runs one single-source Dijkstra; later
// queries are lock-free and O(path length).
func (t *Topology) Route(src, dst string) ([]string, sim.Time, error) {
	tab := t.routes()
	i, ok := tab.idx[src]
	if !ok {
		return nil, 0, fmt.Errorf("network: unknown source %q", src)
	}
	j, ok := tab.idx[dst]
	if !ok {
		return nil, 0, fmt.Errorf("network: unknown destination %q", dst)
	}
	if i == j {
		return []string{src}, 0, nil
	}
	lat := tab.row(i).dist[j]
	if lat < 0 {
		return nil, 0, fmt.Errorf("network: no route %s -> %s", src, dst)
	}
	path := make([]string, 0, 4)
	path = append(path, src)
	for at := i; at != j; {
		at = int(tab.row(at).next[j])
		path = append(path, tab.names[at])
	}
	return path, lat, nil
}

// RouteLatency returns the minimum route latency src→dst from the
// epoch-cached table without materializing the path. ok is false when
// either endpoint is unknown or no route exists. This is the planner's
// hot read: in the steady state two atomic loads, two map lookups, and
// one array index into the source's row.
func (t *Topology) RouteLatency(src, dst string) (sim.Time, bool) {
	tab := t.routes()
	i, ok := tab.idx[src]
	if !ok {
		return 0, false
	}
	j, ok := tab.idx[dst]
	if !ok {
		return 0, false
	}
	lat := tab.row(i).dist[j]
	if lat < 0 {
		return 0, false
	}
	return lat, true
}

// RouteReader is a consistent snapshot of the sharded latency table for
// bulk queries by node index: resolve names once with NodeIndex, then
// read many latencies without repeating the map lookups. The snapshot
// stays valid (though possibly one epoch stale) regardless of concurrent
// topology edits. Latencies are served from per-source rows built on
// first use, so a reader that queries k sources costs k Dijkstras total,
// not one per pair and not one per node in the topology.
type RouteReader struct {
	tab *routeTable
}

// RouteReader returns a reader pinned to the current route table.
func (t *Topology) RouteReader() RouteReader {
	return RouteReader{tab: t.routes()}
}

// NodeIndex resolves a node name to its index in this snapshot.
func (r RouteReader) NodeIndex(name string) (int, bool) {
	i, ok := r.tab.idx[name]
	return i, ok
}

// LatencyAt returns the latency between two node indices.
func (r RouteReader) LatencyAt(from, to int) (sim.Time, bool) {
	lat := r.tab.row(from).dist[to]
	if lat < 0 {
		return 0, false
	}
	return lat, true
}

// ToLatencyAt returns the latency from a node index to an anchor index,
// served from the anchor's reverse row — one reverse Dijkstra per anchor
// per epoch, shared by every node querying that anchor. This is the
// route-summary read shard digests aggregate over: a shard of devices
// summarizes "best latency to our layer's anchor" without any per-pair
// state.
func (r RouteReader) ToLatencyAt(node, anchor int) (sim.Time, bool) {
	lat := r.tab.toRow(anchor).dist[node]
	if lat < 0 {
		return 0, false
	}
	return lat, true
}

// AnchorSummary condenses a member set's connectivity to an anchor into
// a compact digest: the best and worst member→anchor latency plus the
// reachable count. This is the "capacity digest" shape hierarchical
// planning negotiates instead of node lists — O(members) reads against
// one shared reverse row, no all-pairs state.
type AnchorSummary struct {
	Best, Worst sim.Time
	Reachable   int
}

// AnchorSummary computes the member→anchor route summary for a shard's
// member set. Unknown members count as unreachable.
func (t *Topology) AnchorSummary(anchor string, members []string) (AnchorSummary, bool) {
	tab := t.routes()
	ai, ok := tab.idx[anchor]
	if !ok {
		return AnchorSummary{}, false
	}
	row := tab.toRow(ai)
	var s AnchorSummary
	for _, m := range members {
		mi, ok := tab.idx[m]
		if !ok {
			continue
		}
		lat := row.dist[mi]
		if lat < 0 {
			continue
		}
		if s.Reachable == 0 || lat < s.Best {
			s.Best = lat
		}
		if lat > s.Worst {
			s.Worst = lat
		}
		s.Reachable++
	}
	return s, true
}

// Epoch returns the topology edit counter; the route table rebuilds
// lazily whenever it trails this value.
func (t *Topology) Epoch() uint64 { return t.epoch.Load() }

// Stats returns per-link congestion statistics, sorted by from/to.
func (t *Topology) Stats() []LinkStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []LinkStats
	for _, m := range t.links {
		for _, l := range m {
			s := LinkStats{From: l.From, To: l.To, Transfers: l.transfers}
			if l.transfers > 0 {
				s.MeanQueueWait = l.queueTotal / sim.Time(l.transfers)
			}
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// serialization computes the time to push size bytes at bw bytes/sec.
func serialization(size int64, bw float64) sim.Time {
	if size <= 0 {
		return 0
	}
	sec := float64(size) / bw
	ns := sec * float64(sim.Second)
	if ns > float64(math.MaxInt64)/2 {
		return sim.MaxTime / 2
	}
	return sim.Time(ns)
}
