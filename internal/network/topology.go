// Package network models the MYRTUS connectivity substrate (EU-CEI
// "Network" building block): a continuum-wide topology of links with
// latency, bandwidth, and loss; shortest-path routing; FIFO link queuing
// (congestion); network slices reserving bandwidth shares; and a
// lightweight pub/sub message fabric in the role of the MQTT/CoAP/HTTP
// protocols the paper lists for edge–gateway–FMDC communication.
//
// All timing runs on the discrete-event kernel in internal/sim, so
// end-to-end latency and congestion are measurable and reproducible.
package network

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"sync"

	"myrtus/internal/sim"
)

// Link is a unidirectional connection between two named endpoints.
type Link struct {
	From, To  string
	Latency   sim.Time // propagation delay
	Bandwidth float64  // bytes per virtual second
	LossP     float64  // i.i.d. packet loss probability

	// nextFree[sliceID] is when the slice's share of the link is next
	// available; sliceID "" is best-effort.
	nextFree map[string]sim.Time
	// queueTotal accumulates queuing delay for congestion metrics.
	queueTotal sim.Time
	transfers  int64
}

// Utilization metrics for one link.
type LinkStats struct {
	From, To      string
	Transfers     int64
	MeanQueueWait sim.Time
}

// Topology is the graph of endpoints and links plus slice definitions.
// It is safe for concurrent use.
type Topology struct {
	mu     sync.Mutex
	nodes  map[string]bool
	links  map[string]map[string]*Link
	slices map[string]*Slice
	rng    *sim.RNG
}

// Slice reserves a bandwidth share on a set of links for a traffic class
// (EU-CEI network slicing). Share is the fraction of each member link's
// bandwidth reserved exclusively for the slice.
type Slice struct {
	Name  string
	Share float64
	// Links: "from->to" members; empty means every link.
	Links map[string]bool
}

// NewTopology returns an empty topology.
func NewTopology(seed uint64) *Topology {
	return &Topology{
		nodes:  make(map[string]bool),
		links:  make(map[string]map[string]*Link),
		slices: make(map[string]*Slice),
		rng:    sim.NewRNG(seed).Fork("network"),
	}
}

// AddNode registers an endpoint.
func (t *Topology) AddNode(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[name] = true
}

// Nodes returns all endpoint names, sorted.
func (t *Topology) Nodes() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.nodes))
	for n := range t.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddLink creates a unidirectional link. Both endpoints are registered
// implicitly.
func (t *Topology) AddLink(from, to string, latency sim.Time, bandwidth float64, lossP float64) error {
	if from == to {
		return fmt.Errorf("network: self-link on %q", from)
	}
	if bandwidth <= 0 {
		return fmt.Errorf("network: non-positive bandwidth on %s->%s", from, to)
	}
	if lossP < 0 || lossP >= 1 {
		return fmt.Errorf("network: loss probability %v out of [0,1)", lossP)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[from] = true
	t.nodes[to] = true
	if t.links[from] == nil {
		t.links[from] = make(map[string]*Link)
	}
	t.links[from][to] = &Link{
		From: from, To: to,
		Latency: latency, Bandwidth: bandwidth, LossP: lossP,
		nextFree: make(map[string]sim.Time),
	}
	return nil
}

// AddDuplex creates links in both directions with identical parameters.
func (t *Topology) AddDuplex(a, b string, latency sim.Time, bandwidth float64, lossP float64) error {
	if err := t.AddLink(a, b, latency, bandwidth, lossP); err != nil {
		return err
	}
	return t.AddLink(b, a, latency, bandwidth, lossP)
}

// RemoveLink severs from→to (e.g. connectivity failure injection).
func (t *Topology) RemoveLink(from, to string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if m := t.links[from]; m != nil {
		delete(m, to)
	}
}

// Link returns the link from→to.
func (t *Topology) Link(from, to string) (*Link, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	l, ok := t.links[from][to]
	return l, ok
}

// DefineSlice reserves share of bandwidth on the listed links (empty list
// means all links) for the named traffic class. Total reservations on any
// link must stay below 1.
func (t *Topology) DefineSlice(name string, share float64, links ...string) error {
	if share <= 0 || share >= 1 {
		return fmt.Errorf("network: slice share %v out of (0,1)", share)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	member := make(map[string]bool, len(links))
	for _, l := range links {
		member[l] = true
	}
	// Validate cumulative reservation per link.
	check := func(linkKey string) error {
		total := share
		for _, s := range t.slices {
			if len(s.Links) == 0 || s.Links[linkKey] {
				total += s.Share
			}
		}
		if total >= 1 {
			return fmt.Errorf("network: cumulative slice reservation %.2f ≥ 1 on %s", total, linkKey)
		}
		return nil
	}
	if len(member) == 0 {
		for from, m := range t.links {
			for to := range m {
				if err := check(from + "->" + to); err != nil {
					return err
				}
			}
		}
	} else {
		for l := range member {
			if err := check(l); err != nil {
				return err
			}
		}
	}
	t.slices[name] = &Slice{Name: name, Share: share, Links: member}
	return nil
}

// sliceShare returns the bandwidth fraction available to sliceID on link
// key: its reservation if sliced, otherwise whatever is unreserved.
func (t *Topology) sliceShare(linkKey, sliceID string) float64 {
	if sliceID != "" {
		if s, ok := t.slices[sliceID]; ok && (len(s.Links) == 0 || s.Links[linkKey]) {
			return s.Share
		}
	}
	reserved := 0.0
	for _, s := range t.slices {
		if len(s.Links) == 0 || s.Links[linkKey] {
			reserved += s.Share
		}
	}
	free := 1 - reserved
	if free < 0.01 {
		free = 0.01
	}
	return free
}

// Route returns the minimum-latency path from src to dst (inclusive of
// both) using Dijkstra over link latencies.
func (t *Topology) Route(src, dst string) ([]string, sim.Time, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.nodes[src] {
		return nil, 0, fmt.Errorf("network: unknown source %q", src)
	}
	if !t.nodes[dst] {
		return nil, 0, fmt.Errorf("network: unknown destination %q", dst)
	}
	if src == dst {
		return []string{src}, 0, nil
	}
	dist := map[string]sim.Time{src: 0}
	prev := map[string]string{}
	pq := &routeQueue{{node: src, dist: 0}}
	visited := map[string]bool{}
	for pq.Len() > 0 {
		cur := heap.Pop(pq).(routeItem)
		if visited[cur.node] {
			continue
		}
		visited[cur.node] = true
		if cur.node == dst {
			break
		}
		// Deterministic neighbor order.
		var nbrs []string
		for to := range t.links[cur.node] {
			nbrs = append(nbrs, to)
		}
		sort.Strings(nbrs)
		for _, to := range nbrs {
			l := t.links[cur.node][to]
			nd := cur.dist + l.Latency
			if old, ok := dist[to]; !ok || nd < old {
				dist[to] = nd
				prev[to] = cur.node
				heap.Push(pq, routeItem{node: to, dist: nd})
			}
		}
	}
	if _, ok := dist[dst]; !ok {
		return nil, 0, fmt.Errorf("network: no route %s -> %s", src, dst)
	}
	var path []string
	for at := dst; ; at = prev[at] {
		path = append(path, at)
		if at == src {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst], nil
}

type routeItem struct {
	node string
	dist sim.Time
}

type routeQueue []routeItem

func (q routeQueue) Len() int           { return len(q) }
func (q routeQueue) Less(i, j int) bool { return q[i].dist < q[j].dist }
func (q routeQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *routeQueue) Push(x any)        { *q = append(*q, x.(routeItem)) }
func (q *routeQueue) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

// Stats returns per-link congestion statistics, sorted by from/to.
func (t *Topology) Stats() []LinkStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []LinkStats
	for _, m := range t.links {
		for _, l := range m {
			s := LinkStats{From: l.From, To: l.To, Transfers: l.transfers}
			if l.transfers > 0 {
				s.MeanQueueWait = l.queueTotal / sim.Time(l.transfers)
			}
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// serialization computes the time to push size bytes at bw bytes/sec.
func serialization(size int64, bw float64) sim.Time {
	if size <= 0 {
		return 0
	}
	sec := float64(size) / bw
	ns := sec * float64(sim.Second)
	if ns > float64(math.MaxInt64)/2 {
		return sim.MaxTime / 2
	}
	return sim.Time(ns)
}
