package network

import (
	"sync"
	"testing"

	"myrtus/internal/sim"
)

func TestRouteTableEpochInvalidation(t *testing.T) {
	topo := star(t)
	e0 := topo.Epoch()
	lat, ok := topo.RouteLatency("edge-0", "cloud")
	if !ok || lat != 27*sim.Millisecond {
		t.Fatalf("initial latency = %v %v", lat, ok)
	}
	if topo.Epoch() != e0 {
		t.Fatal("reads must not bump the epoch")
	}

	// A faster parallel path must be visible on the very next read.
	if err := topo.AddDuplex("edge-0", "fmdc", 1*sim.Millisecond, 10e6, 0); err != nil {
		t.Fatal(err)
	}
	if topo.Epoch() == e0 {
		t.Fatal("AddDuplex must bump the epoch")
	}
	lat, ok = topo.RouteLatency("edge-0", "cloud")
	if !ok || lat != 21*sim.Millisecond {
		t.Fatalf("latency after shortcut = %v, want 21ms", lat)
	}
	path, _, err := topo.Route("edge-0", "cloud")
	if err != nil || len(path) != 3 || path[1] != "fmdc" {
		t.Fatalf("path after shortcut = %v (%v)", path, err)
	}

	// Severing the shortcut restores the old route.
	topo.RemoveLink("edge-0", "fmdc")
	topo.RemoveLink("fmdc", "edge-0")
	lat, ok = topo.RouteLatency("edge-0", "cloud")
	if !ok || lat != 27*sim.Millisecond {
		t.Fatalf("latency after cut = %v, want 27ms", lat)
	}

	// Removing a nonexistent link must not bump the epoch (no rebuild).
	e1 := topo.Epoch()
	topo.RemoveLink("ghost", "cloud")
	if topo.Epoch() != e1 {
		t.Fatal("no-op RemoveLink bumped the epoch")
	}
}

func TestRouteTableInvalidatesOnQualityChange(t *testing.T) {
	// Degrading an existing link (no add/remove) must invalidate cached
	// routes: traffic shifts to a parallel path the moment the quality
	// changes, and shifts back on restore.
	topo := star(t)
	if err := topo.AddDuplex("edge-0", "fmdc", 10*sim.Millisecond, 10e6, 0); err != nil {
		t.Fatal(err)
	}
	path, lat, err := topo.Route("edge-0", "cloud")
	if err != nil || path[1] != "gateway" || lat != 27*sim.Millisecond {
		t.Fatalf("initial route = %v (%v, %v), want via gateway at 27ms", path, lat, err)
	}

	e0 := topo.Epoch()
	if err := topo.SetLinkQuality("gateway", "fmdc", 50*sim.Millisecond, 100e6, 0.2); err != nil {
		t.Fatal(err)
	}
	if topo.Epoch() == e0 {
		t.Fatal("SetLinkQuality must bump the epoch")
	}
	path, lat, err = topo.Route("edge-0", "cloud")
	if err != nil || path[1] != "fmdc" || lat != 30*sim.Millisecond {
		t.Fatalf("degraded route = %v (%v, %v), want via fmdc at 30ms", path, lat, err)
	}
	if l, ok := topo.Link("gateway", "fmdc"); !ok || l.LossP != 0.2 || l.Latency != 50*sim.Millisecond {
		t.Fatalf("link params not applied: %+v %v", l, ok)
	}

	// Restoring the original quality restores the original route.
	if err := topo.SetLinkQuality("gateway", "fmdc", 5*sim.Millisecond, 100e6, 0); err != nil {
		t.Fatal(err)
	}
	path, lat, err = topo.Route("edge-0", "cloud")
	if err != nil || path[1] != "gateway" || lat != 27*sim.Millisecond {
		t.Fatalf("restored route = %v (%v, %v), want via gateway at 27ms", path, lat, err)
	}
}

func TestSetLinkQualityValidation(t *testing.T) {
	topo := star(t)
	e0 := topo.Epoch()
	for name, err := range map[string]error{
		"self-link":    topo.SetLinkQuality("gateway", "gateway", sim.Millisecond, 1e6, 0),
		"bandwidth":    topo.SetLinkQuality("gateway", "fmdc", sim.Millisecond, 0, 0),
		"loss":         topo.SetLinkQuality("gateway", "fmdc", sim.Millisecond, 1e6, 1.0),
		"missing link": topo.SetLinkQuality("gateway", "ghost", sim.Millisecond, 1e6, 0),
	} {
		if err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if topo.Epoch() != e0 {
		t.Fatal("rejected edits must not bump the epoch")
	}
}

func TestRouteTableFirstHopPaths(t *testing.T) {
	// Route must reconstruct full multi-hop paths from the first-hop
	// matrix, for every pair.
	topo := star(t)
	for _, tc := range []struct {
		src, dst string
		hops     int
		lat      sim.Time
	}{
		{"edge-0", "edge-1", 3, 4 * sim.Millisecond},
		{"edge-1", "cloud", 4, 27 * sim.Millisecond},
		{"cloud", "edge-0", 4, 27 * sim.Millisecond},
		{"gateway", "fmdc", 2, 5 * sim.Millisecond},
	} {
		path, lat, err := topo.Route(tc.src, tc.dst)
		if err != nil {
			t.Fatalf("%s->%s: %v", tc.src, tc.dst, err)
		}
		if len(path) != tc.hops || lat != tc.lat {
			t.Fatalf("%s->%s: path=%v lat=%v, want %d hops %v",
				tc.src, tc.dst, path, lat, tc.hops, tc.lat)
		}
		if path[0] != tc.src || path[len(path)-1] != tc.dst {
			t.Fatalf("%s->%s: endpoints %v", tc.src, tc.dst, path)
		}
	}
}

func TestRouteReaderSnapshot(t *testing.T) {
	topo := star(t)
	rr := topo.RouteReader()
	i, ok := rr.NodeIndex("edge-0")
	if !ok {
		t.Fatal("edge-0 missing")
	}
	j, ok := rr.NodeIndex("cloud")
	if !ok {
		t.Fatal("cloud missing")
	}
	lat, ok := rr.LatencyAt(i, j)
	if !ok || lat != 27*sim.Millisecond {
		t.Fatalf("reader latency = %v %v", lat, ok)
	}
	// The pinned snapshot keeps answering consistently even after an
	// edit; a fresh reader sees the new graph.
	if err := topo.AddDuplex("edge-0", "cloud", 1*sim.Millisecond, 10e6, 0); err != nil {
		t.Fatal(err)
	}
	if lat, ok := rr.LatencyAt(i, j); !ok || lat != 27*sim.Millisecond {
		t.Fatalf("pinned reader drifted: %v %v", lat, ok)
	}
	rr2 := topo.RouteReader()
	i2, _ := rr2.NodeIndex("edge-0")
	j2, _ := rr2.NodeIndex("cloud")
	if lat, ok := rr2.LatencyAt(i2, j2); !ok || lat != 1*sim.Millisecond {
		t.Fatalf("fresh reader latency = %v %v, want 1ms", lat, ok)
	}
}

func TestRouteTableConcurrentReadersAndEdits(t *testing.T) {
	// Hammer Route/RouteLatency from many goroutines while another
	// goroutine keeps editing the topology. Under -race this proves the
	// lock-free read path never observes a torn table; functionally it
	// proves readers always get either the old or the new latency, never
	// garbage.
	topo := star(t)
	const readers = 4
	const rounds = 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				lat, ok := topo.RouteLatency("edge-0", "cloud")
				if ok && lat != 27*sim.Millisecond && lat != 21*sim.Millisecond {
					t.Errorf("torn latency %v", lat)
					return
				}
				if path, _, err := topo.Route("edge-1", "cloud"); err == nil && len(path) < 2 {
					t.Errorf("torn path %v", path)
					return
				}
			}
		}()
	}
	for i := 0; i < rounds; i++ {
		if err := topo.AddDuplex("edge-0", "fmdc", 1*sim.Millisecond, 10e6, 0); err != nil {
			t.Error(err)
			break
		}
		topo.RemoveLink("edge-0", "fmdc")
		topo.RemoveLink("fmdc", "edge-0")
	}
	close(stop)
	wg.Wait()
}
