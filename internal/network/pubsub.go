package network

import (
	"sort"
	"strconv"
	"strings"

	"myrtus/internal/trace"
)

// Broker is an MQTT-style topic broker hosted at a fabric endpoint — the
// role the smart gateway plays in the paper ("a hub for data exchange
// among a diversity of actors at the edge and the cloud"). Publishers
// send to the broker node; the broker fans out to subscriber nodes, each
// delivery incurring the simulated network cost.
type Broker struct {
	fabric *Fabric
	node   string // endpoint hosting the broker
	subs   map[string][]subscription
	tracer *trace.Tracer

	published int64
	fanout    int64
	dropped   int64
}

type subscription struct {
	node    string
	pattern string
	fn      func(topic string, payload []byte)
	slice   string
}

// NewBroker hosts a broker at the named endpoint.
func NewBroker(fabric *Fabric, node string) *Broker {
	return &Broker{fabric: fabric, node: node, subs: make(map[string][]subscription)}
}

// Node returns the hosting endpoint name.
func (b *Broker) Node() string { return b.node }

// SetTracer attaches a tracer; PublishCtx calls then record broker
// fan-out spans for sampled traces.
func (b *Broker) SetTracer(t *trace.Tracer) { b.tracer = t }

// Subscribe registers fn for topics matching pattern at the given
// endpoint. Patterns support a trailing "#" wildcard segment
// ("sensors/#" matches "sensors/cam0/frame").
func (b *Broker) Subscribe(node, pattern, slice string, fn func(topic string, payload []byte)) {
	b.subs[pattern] = append(b.subs[pattern], subscription{node: node, pattern: pattern, fn: fn, slice: slice})
}

// Unsubscribe removes every subscription the endpoint holds on the exact
// pattern, so long-running scenarios can detach components without
// leaking fan-out work. It returns how many subscriptions were removed.
func (b *Broker) Unsubscribe(node, pattern string) int {
	subs, ok := b.subs[pattern]
	if !ok {
		return 0
	}
	kept := subs[:0]
	removed := 0
	for _, sub := range subs {
		if sub.node == node {
			removed++
			continue
		}
		kept = append(kept, sub)
	}
	if len(kept) == 0 {
		delete(b.subs, pattern)
	} else {
		b.subs[pattern] = kept
	}
	return removed
}

// Publish sends payload from the publisher endpoint to the broker, which
// then forwards to every matching subscriber. Delivery callbacks run in
// virtual time.
func (b *Broker) Publish(publisher, topic string, payload []byte, slice string) error {
	return b.publish(trace.SpanContext{}, publisher, topic, payload, slice)
}

// PublishCtx is Publish with trace propagation: for a sampled trace the
// whole exchange — publisher→broker leg plus every subscriber delivery —
// is one "broker.publish/<topic>" span, ending at the virtual time the
// last fan-out delivery settles.
func (b *Broker) PublishCtx(parent trace.SpanContext, publisher, topic string, payload []byte, slice string) error {
	return b.publish(parent, publisher, topic, payload, slice)
}

func (b *Broker) publish(parent trace.SpanContext, publisher, topic string, payload []byte, slice string) error {
	b.published++
	sp := b.tracer.StartSpan(parent, "broker.publish/"+topic, trace.LayerBroker)
	sp.SetAttr("publisher", publisher)
	err := b.fabric.Send(publisher, b.node, int64(len(payload))+64, Options{Slice: slice, Retries: 3}, func(err error) {
		if err != nil {
			b.dropped++
			sp.SetError(err)
			sp.EndNow()
			return
		}
		matched := b.matches(topic)
		sp.SetAttr("subscribers", strconv.Itoa(len(matched)))
		if len(matched) == 0 {
			sp.EndNow()
			return
		}
		pending := len(matched)
		for _, sub := range matched {
			sub := sub
			b.fanout++
			p := append([]byte(nil), payload...)
			ferr := b.fabric.Send(b.node, sub.node, int64(len(payload))+64, Options{Slice: sub.slice, Retries: 3}, func(err error) {
				if err == nil {
					sub.fn(topic, p)
				} else {
					b.dropped++
				}
				pending--
				if pending == 0 {
					sp.EndNow()
				}
			})
			if ferr != nil { // routing failed before any event was scheduled
				b.dropped++
				pending--
				if pending == 0 {
					sp.EndNow()
				}
			}
		}
	})
	if err != nil {
		b.dropped++
		sp.SetError(err)
		sp.EndNow()
	}
	return err
}

func (b *Broker) matches(topic string) []subscription {
	var out []subscription
	var patterns []string
	for p := range b.subs {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	for _, p := range patterns {
		if topicMatch(p, topic) {
			out = append(out, b.subs[p]...)
		}
	}
	return out
}

// Published and Fanout report broker counters.
func (b *Broker) Published() int64 { return b.published }

// Fanout reports the number of subscriber deliveries attempted.
func (b *Broker) Fanout() int64 { return b.fanout }

// Dropped reports deliveries (publisher→broker or broker→subscriber)
// that definitively failed.
func (b *Broker) Dropped() int64 { return b.dropped }

func topicMatch(pattern, topic string) bool {
	if pattern == topic || pattern == "#" {
		return true
	}
	if strings.HasSuffix(pattern, "/#") {
		prefix := strings.TrimSuffix(pattern, "/#")
		return topic == prefix || strings.HasPrefix(topic, prefix+"/")
	}
	return false
}
