package network

import (
	"sort"
	"strings"
)

// Broker is an MQTT-style topic broker hosted at a fabric endpoint — the
// role the smart gateway plays in the paper ("a hub for data exchange
// among a diversity of actors at the edge and the cloud"). Publishers
// send to the broker node; the broker fans out to subscriber nodes, each
// delivery incurring the simulated network cost.
type Broker struct {
	fabric *Fabric
	node   string // endpoint hosting the broker
	subs   map[string][]subscription

	published int64
	fanout    int64
}

type subscription struct {
	node    string
	pattern string
	fn      func(topic string, payload []byte)
	slice   string
}

// NewBroker hosts a broker at the named endpoint.
func NewBroker(fabric *Fabric, node string) *Broker {
	return &Broker{fabric: fabric, node: node, subs: make(map[string][]subscription)}
}

// Node returns the hosting endpoint name.
func (b *Broker) Node() string { return b.node }

// Subscribe registers fn for topics matching pattern at the given
// endpoint. Patterns support a trailing "#" wildcard segment
// ("sensors/#" matches "sensors/cam0/frame").
func (b *Broker) Subscribe(node, pattern, slice string, fn func(topic string, payload []byte)) {
	b.subs[pattern] = append(b.subs[pattern], subscription{node: node, pattern: pattern, fn: fn, slice: slice})
}

// Publish sends payload from the publisher endpoint to the broker, which
// then forwards to every matching subscriber. Delivery callbacks run in
// virtual time.
func (b *Broker) Publish(publisher, topic string, payload []byte, slice string) error {
	b.published++
	return b.fabric.Send(publisher, b.node, int64(len(payload))+64, Options{Slice: slice, Retries: 3}, func(err error) {
		if err != nil {
			return
		}
		for _, sub := range b.matches(topic) {
			sub := sub
			b.fanout++
			p := append([]byte(nil), payload...)
			//nolint:errcheck // fan-out best effort; loss shows in stats
			b.fabric.Send(b.node, sub.node, int64(len(payload))+64, Options{Slice: sub.slice, Retries: 3}, func(err error) {
				if err == nil {
					sub.fn(topic, p)
				}
			})
		}
	})
}

func (b *Broker) matches(topic string) []subscription {
	var out []subscription
	var patterns []string
	for p := range b.subs {
		patterns = append(patterns, p)
	}
	sort.Strings(patterns)
	for _, p := range patterns {
		if topicMatch(p, topic) {
			out = append(out, b.subs[p]...)
		}
	}
	return out
}

// Published and Fanout report broker counters.
func (b *Broker) Published() int64 { return b.published }

// Fanout reports the number of subscriber deliveries attempted.
func (b *Broker) Fanout() int64 { return b.fanout }

func topicMatch(pattern, topic string) bool {
	if pattern == topic || pattern == "#" {
		return true
	}
	if strings.HasSuffix(pattern, "/#") {
		prefix := strings.TrimSuffix(pattern, "/#")
		return topic == prefix || strings.HasPrefix(topic, prefix+"/")
	}
	return false
}
