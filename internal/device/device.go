// Package device models the heterogeneous computing components of the
// MYRTUS continuum (Fig. 2): commercial multicores, HMPSoC FPGA-based
// accelerators, adaptive RISC-V processors with custom computing units,
// smart gateways, Fog Micro Data Center (FMDC) servers, and cloud servers.
//
// Each device exposes the signals the MIRTO agents consume — latency,
// energy, utilization, availability — computed on the virtual clock, plus
// the actuation knobs they drive: DVFS level, FPGA reconfiguration, and
// operating-point switches.
package device

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"myrtus/internal/fpga"
	"myrtus/internal/sim"
	"myrtus/internal/telemetry"
	"myrtus/internal/trace"
)

// ErrOverloaded is the deterministic fast-reject a device returns when
// new work would wait longer than its configured queue limit. Callers
// must treat it as a load signal, not a fault: retrying it amplifies the
// very overload that caused it (mirto.Retryable reports false for it).
var ErrOverloaded = errors.New("device: work queue full")

// Layer names a continuum layer.
type Layer string

// The three MYRTUS layers.
const (
	Edge  Layer = "edge"
	Fog   Layer = "fog"
	Cloud Layer = "cloud"
)

// Kind names a device family from Fig. 2.
type Kind string

// Device kinds of the reference infrastructure.
const (
	Multicore   Kind = "multicore"
	HMPSoC      Kind = "hmpsoc"
	RISCV       Kind = "riscv"
	Gateway     Kind = "gateway"
	FMDC        Kind = "fmdc"
	CloudServer Kind = "cloud-server"
)

// Spec is the static description of a device.
type Spec struct {
	Name  string
	Layer Layer
	Kind  Kind

	Cores       int
	GOPSPerCore float64 // giga-ops per second per core at full clock
	MemMB       float64

	IdlePowerW float64
	MaxPowerW  float64

	// DVFSLevels are the selectable frequency scales, ascending; the last
	// entry should be 1.0. Empty means a single fixed level of 1.0.
	DVFSLevels []float64

	// Fabric is the attached FPGA (HMPSoC devices), nil otherwise.
	Fabric *fpga.Fabric

	// CustomUnits maps kernel names to the speedup of the RISC-V custom
	// computing units ([4]) for that kernel.
	CustomUnits map[string]float64

	// SecurityLevels are the Table II suites the device can run.
	SecurityLevels []string
	// Protocols the device natively speaks (§III Network).
	Protocols []string
}

// Validate checks the spec.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("device: spec needs a name")
	}
	if s.Cores <= 0 || s.GOPSPerCore <= 0 || s.MemMB <= 0 {
		return fmt.Errorf("device %s: cores, GOPS and memory must be positive", s.Name)
	}
	if s.MaxPowerW < s.IdlePowerW || s.IdlePowerW < 0 {
		return fmt.Errorf("device %s: power range invalid", s.Name)
	}
	for i, l := range s.DVFSLevels {
		if l <= 0 || l > 1 {
			return fmt.Errorf("device %s: DVFS level %v out of (0,1]", s.Name, l)
		}
		if i > 0 && l <= s.DVFSLevels[i-1] {
			return fmt.Errorf("device %s: DVFS levels not ascending", s.Name)
		}
	}
	return nil
}

// Work is one unit of computation submitted to a device.
type Work struct {
	Name  string
	GOps  float64 // total giga-operations on a general-purpose core
	MemMB float64 // resident memory while running
	// Kernel optionally names an accelerable kernel; devices with a
	// matching loaded bitstream or custom unit run it faster.
	Kernel string
	// Items is the accelerator batch size (defaults to 1).
	Items int64
	// Ctx is the trace context of the operation that made this work
	// runnable (e.g. the network transfer that delivered its input).
	Ctx trace.SpanContext
}

// Result reports one completed execution.
type Result struct {
	// Start is when the work actually began executing (after any core
	// queueing), so callers can separate service time from queue wait.
	Start        sim.Time
	Finish       sim.Time
	EnergyJoules float64
	// Engine names what ran the work: "core", "custom-unit", "fpga".
	Engine string
	// Ctx references the execution span (zero when unsampled), so
	// downstream transfers can be parented on this execution.
	Ctx trace.SpanContext
}

// Device is a running component instance.
type Device struct {
	mu   sync.Mutex
	spec Spec

	dvfs      int // index into DVFSLevels
	coreBusy  []sim.Time
	memUsed   float64
	energy    float64 // dynamic energy accumulated (J)
	busyTotal sim.Time
	// queueLimit bounds how long new work may wait for a core before Run
	// rejects it with ErrOverloaded (0 = unbounded, the legacy behavior).
	queueLimit sim.Time
	rejected   int64
	// failed is atomic so orchestration hot paths can poll liveness
	// across thousands of candidates without taking the device lock.
	failed atomic.Bool

	// slow stretches service time by a multiplicative factor without
	// touching liveness: the device keeps heartbeating, so binary
	// failure detection cannot see it (a gray failure). 0 or 1 = nominal.
	slow float64

	thermal *thermalState

	metrics *telemetry.Registry
	tracer  *trace.Tracer
}

// New validates spec and returns a ready device at full clock.
func New(spec Spec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(spec.DVFSLevels) == 0 {
		spec.DVFSLevels = []float64{1.0}
	}
	d := &Device{
		spec:     spec,
		dvfs:     len(spec.DVFSLevels) - 1,
		coreBusy: make([]sim.Time, spec.Cores),
		metrics:  telemetry.NewRegistry(spec.Name),
	}
	return d, nil
}

// Spec returns the device's static description.
func (d *Device) Spec() Spec { return d.spec }

// Name returns the device name.
func (d *Device) Name() string { return d.spec.Name }

// Metrics returns the device's telemetry registry.
func (d *Device) Metrics() *telemetry.Registry { return d.metrics }

// SetTracer attaches a tracer; Run then records an execution span for
// work carrying a sampled trace context.
func (d *Device) SetTracer(t *trace.Tracer) {
	d.mu.Lock()
	d.tracer = t
	d.mu.Unlock()
}

// Fabric returns the attached FPGA, nil if none.
func (d *Device) Fabric() *fpga.Fabric { return d.spec.Fabric }

// Failed reports whether the device is down (lock-free).
func (d *Device) Failed() bool {
	return d.failed.Load()
}

// Fail takes the device down: running work is lost and new work errors.
func (d *Device) Fail() {
	d.failed.Store(true)
}

// Repair brings the device back with idle cores.
func (d *Device) Repair(now sim.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed.Store(false)
	for i := range d.coreBusy {
		d.coreBusy[i] = now
	}
	d.memUsed = 0
}

// SetSlowFactor injects (or clears) a fail-slow degradation: every
// execution takes factor× its nominal service time while the device
// stays up and keeps heartbeating. Factors <= 1 restore nominal speed.
func (d *Device) SetSlowFactor(factor float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if factor <= 1 {
		factor = 0
	}
	d.slow = factor
}

// SlowFactor returns the active fail-slow multiplier (1 = nominal).
func (d *Device) SlowFactor() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.slow <= 1 {
		return 1
	}
	return d.slow
}

// SetQueueLimit bounds the per-device work queue: work that would wait
// longer than limit for a core is rejected with ErrOverloaded instead of
// queuing without bound. Zero restores unbounded queuing.
func (d *Device) SetQueueLimit(limit sim.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.queueLimit = limit
}

// QueueLimit returns the configured work-queue bound (0 = unbounded).
func (d *Device) QueueLimit() sim.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.queueLimit
}

// Rejected reports how many work submissions the queue bound rejected.
func (d *Device) Rejected() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rejected
}

// SetDVFS selects DVFS level i (index into Spec.DVFSLevels).
func (d *Device) SetDVFS(i int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if i < 0 || i >= len(d.spec.DVFSLevels) {
		return fmt.Errorf("device %s: DVFS level %d out of range [0,%d)", d.spec.Name, i, len(d.spec.DVFSLevels))
	}
	d.dvfs = i
	return nil
}

// DVFS returns the active level index and frequency scale.
func (d *Device) DVFS() (int, float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dvfs, d.spec.DVFSLevels[d.dvfs]
}

// activePowerLocked returns the dynamic power draw at the current DVFS
// level (P_dyn ∝ f·V² ≈ f³ under voltage-frequency scaling).
func (d *Device) activePowerLocked() float64 {
	f := d.spec.DVFSLevels[d.dvfs]
	return (d.spec.MaxPowerW - d.spec.IdlePowerW) * f * f * f
}

// AllocMem reserves MB of memory; used by the cluster layer at placement.
func (d *Device) AllocMem(mb float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.memUsed+mb > d.spec.MemMB {
		return fmt.Errorf("device %s: memory exhausted (%.0f + %.0f > %.0f MB)",
			d.spec.Name, d.memUsed, mb, d.spec.MemMB)
	}
	d.memUsed += mb
	return nil
}

// FreeMem releases MB of memory.
func (d *Device) FreeMem(mb float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.memUsed -= mb
	if d.memUsed < 0 {
		d.memUsed = 0
	}
}

// MemFree returns the unreserved memory in MB.
func (d *Device) MemFree() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.spec.MemMB - d.memUsed
}

// Run executes w starting no earlier than now and returns the completion
// record. Dispatch preference: loaded FPGA bitstream for w.Kernel, then a
// RISC-V custom unit, then a general-purpose core.
func (d *Device) Run(w Work, now sim.Time) (Result, error) {
	d.mu.Lock()
	if d.failed.Load() {
		d.mu.Unlock()
		return Result{}, fmt.Errorf("device %s: failed", d.spec.Name)
	}
	if w.GOps <= 0 {
		d.mu.Unlock()
		return Result{}, fmt.Errorf("device %s: work %q has non-positive GOps", d.spec.Name, w.Name)
	}
	items := w.Items
	if items <= 0 {
		items = 1
	}

	// FPGA path.
	if w.Kernel != "" && d.spec.Fabric != nil {
		if idx := d.spec.Fabric.FindLoaded(w.Kernel); idx >= 0 {
			slow := d.slow
			d.mu.Unlock()
			finish, energy, err := d.spec.Fabric.Execute(idx, w.Kernel, items, now)
			if err == nil {
				if slow > 1 && finish > now {
					finish = now + sim.Time(float64(finish-now)*slow)
				}
				d.record("fpga", finish-now, energy)
				ctx := d.traceExec(w, "fpga", now, finish)
				return Result{Start: now, Finish: finish, EnergyJoules: energy, Engine: "fpga", Ctx: ctx}, nil
			}
			d.mu.Lock() // fall through to CPU on accelerator error
		}
	}

	speedup := 1.0
	engine := "core"
	if s, ok := d.spec.CustomUnits[w.Kernel]; ok && s > 1 {
		speedup = s
		engine = "custom-unit"
	}

	// Pick the earliest-free core.
	core := 0
	for i, b := range d.coreBusy {
		if b < d.coreBusy[core] {
			core = i
		}
	}
	start := now
	if d.coreBusy[core] > start {
		start = d.coreBusy[core]
	}
	if d.queueLimit > 0 && start-now > d.queueLimit {
		d.rejected++
		d.mu.Unlock()
		return Result{}, fmt.Errorf("device %s: work %q would wait %v (limit %v): %w",
			d.spec.Name, w.Name, start-now, d.queueLimit, ErrOverloaded)
	}
	f := d.spec.DVFSLevels[d.dvfs]
	seconds := w.GOps / (d.spec.GOPSPerCore * f * speedup)
	if d.slow > 1 {
		seconds *= d.slow
	}
	dur := sim.Time(seconds * float64(sim.Second))
	if dur <= 0 {
		dur = 1
	}
	finish := start + dur
	d.coreBusy[core] = finish
	energy := d.activePowerLocked() / float64(d.spec.Cores) * dur.Seconds()
	d.mu.Unlock()
	d.record(engine, dur, energy)
	ctx := d.traceExec(w, engine, now, finish)
	return Result{Start: start, Finish: finish, EnergyJoules: energy, Engine: engine, Ctx: ctx}, nil
}

// traceExec records the execution span for sampled work. The span opens
// at the work's ready time (so core queueing shows inside it) and closes
// at the virtual finish — called only after d.mu is released, since the
// tracer takes its own lock.
func (d *Device) traceExec(w Work, engine string, ready, finish sim.Time) trace.SpanContext {
	d.mu.Lock()
	tr := d.tracer
	d.mu.Unlock()
	sp := tr.StartSpanAt(w.Ctx, "exec/"+w.Name, trace.LayerDevice, ready)
	if sp == nil {
		return trace.SpanContext{}
	}
	sp.SetAttr("device", d.spec.Name)
	sp.SetAttr("engine", engine)
	ctx := sp.Context()
	sp.EndAt(finish)
	return ctx
}

func (d *Device) record(engine string, dur sim.Time, energy float64) {
	d.mu.Lock()
	d.energy += energy
	d.busyTotal += dur
	d.mu.Unlock()
	d.metrics.Counter(telemetry.Infrastructure, "work_completed").Inc()
	d.metrics.Histogram(telemetry.Application, "work_latency_ms").Observe(dur.Seconds() * 1e3)
	d.metrics.Counter(telemetry.Infrastructure, "energy_joules").Add(energy)
	d.metrics.Counter(telemetry.Infrastructure, "engine_"+engine).Inc()
}

// Utilization reports the mean busy fraction over [0, now] across cores.
func (d *Device) Utilization(now sim.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if now <= 0 {
		return 0
	}
	u := float64(d.busyTotal) / (float64(now) * float64(d.spec.Cores))
	return math.Min(u, 1)
}

// Energy reports total energy drawn over [0, now]: accumulated dynamic
// energy plus idle power integrated over the interval.
func (d *Device) Energy(now sim.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.energy + d.spec.IdlePowerW*now.Seconds()
}

// DynamicEnergy reports only the accumulated dynamic energy.
func (d *Device) DynamicEnergy() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.energy
}

// QueueDelay reports how long new single-core work would wait before
// starting at time now (load signal for orchestration).
func (d *Device) QueueDelay(now sim.Time) sim.Time {
	d.mu.Lock()
	defer d.mu.Unlock()
	best := sim.MaxTime
	for _, b := range d.coreBusy {
		wait := b - now
		if wait < 0 {
			wait = 0
		}
		if wait < best {
			best = wait
		}
	}
	return best
}

// SupportsSecurity reports whether the device can run the named suite.
func (d *Device) SupportsSecurity(level string) bool {
	for _, l := range d.spec.SecurityLevels {
		if l == level {
			return true
		}
	}
	return false
}

// SortByName orders devices by name (stable helper for deterministic
// iteration in orchestrators).
func SortByName(ds []*Device) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].Name() < ds[j].Name() })
}
