package device

import (
	"testing"
	"testing/quick"

	"myrtus/internal/sim"
)

func TestSpecValidate(t *testing.T) {
	good := Spec{Name: "d", Cores: 1, GOPSPerCore: 1, MemMB: 1, MaxPowerW: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Cores: 1, GOPSPerCore: 1, MemMB: 1},
		{Name: "d", Cores: 0, GOPSPerCore: 1, MemMB: 1},
		{Name: "d", Cores: 1, GOPSPerCore: 0, MemMB: 1},
		{Name: "d", Cores: 1, GOPSPerCore: 1, MemMB: 0},
		{Name: "d", Cores: 1, GOPSPerCore: 1, MemMB: 1, IdlePowerW: 5, MaxPowerW: 2},
		{Name: "d", Cores: 1, GOPSPerCore: 1, MemMB: 1, DVFSLevels: []float64{0.5, 0.5}},
		{Name: "d", Cores: 1, GOPSPerCore: 1, MemMB: 1, DVFSLevels: []float64{1.5}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Fatalf("bad spec %d validated", i)
		}
	}
	if _, err := New(bad[0]); err == nil {
		t.Fatal("New accepted bad spec")
	}
}

func TestRunOnCore(t *testing.T) {
	d := NewMulticore("edge-0")
	// 8 GOps at 8 GOPS/core → 1 virtual second.
	res, err := d.Run(Work{Name: "w", GOps: 8}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish != sim.Second {
		t.Fatalf("finish = %v, want 1s", res.Finish)
	}
	if res.Engine != "core" {
		t.Fatalf("engine = %s", res.Engine)
	}
	// Energy = (10-2)/4 cores × 1s = 2 J at full DVFS.
	if res.EnergyJoules < 1.9 || res.EnergyJoules > 2.1 {
		t.Fatalf("energy = %v", res.EnergyJoules)
	}
}

func TestRunSpreadsAcrossCores(t *testing.T) {
	d := NewMulticore("edge-0") // 4 cores
	var finishes []sim.Time
	for i := 0; i < 4; i++ {
		res, err := d.Run(Work{Name: "w", GOps: 8}, 0)
		if err != nil {
			t.Fatal(err)
		}
		finishes = append(finishes, res.Finish)
	}
	for _, f := range finishes {
		if f != sim.Second {
			t.Fatalf("parallel work serialized: %v", finishes)
		}
	}
	// Fifth work queues.
	res, _ := d.Run(Work{Name: "w", GOps: 8}, 0)
	if res.Finish != 2*sim.Second {
		t.Fatalf("queued finish = %v", res.Finish)
	}
	if qd := d.QueueDelay(0); qd != sim.Second {
		t.Fatalf("QueueDelay = %v", qd)
	}
}

func TestDVFSSlowsAndSaves(t *testing.T) {
	d := NewMulticore("edge-0")
	full, _ := d.Run(Work{GOps: 8}, 0)
	if err := d.SetDVFS(0); err != nil { // 0.4 scale
		t.Fatal(err)
	}
	idx, scale := d.DVFS()
	if idx != 0 || scale != 0.4 {
		t.Fatalf("DVFS = %d %v", idx, scale)
	}
	slow, _ := d.Run(Work{GOps: 8}, 10*sim.Second)
	slowDur := slow.Finish - 10*sim.Second
	if slowDur <= full.Finish {
		t.Fatal("DVFS did not slow execution")
	}
	// Energy at 0.4³ power × 2.5 duration < full energy.
	if slow.EnergyJoules >= full.EnergyJoules {
		t.Fatalf("DVFS did not save energy: %v ≥ %v", slow.EnergyJoules, full.EnergyJoules)
	}
	if err := d.SetDVFS(99); err == nil {
		t.Fatal("bad DVFS accepted")
	}
}

func TestCustomUnitSpeedup(t *testing.T) {
	d := NewRISCV("rv-0", "fft")
	plain, _ := d.Run(Work{GOps: 2, Kernel: "other"}, 0)
	// New device to avoid queueing effects.
	d2 := NewRISCV("rv-1", "fft")
	accel, _ := d2.Run(Work{GOps: 2, Kernel: "fft"}, 0)
	if accel.Engine != "custom-unit" || plain.Engine != "core" {
		t.Fatalf("engines = %s %s", accel.Engine, plain.Engine)
	}
	if accel.Finish*5 > plain.Finish {
		t.Fatalf("speedup too small: %v vs %v", accel.Finish, plain.Finish)
	}
}

func TestFPGAPath(t *testing.T) {
	d := NewHMPSoC("hmp-0")
	bs := StandardBitstreams()[0] // conv2d
	ready, err := d.Fabric().Load(0, bs, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(Work{GOps: 50, Kernel: "conv2d", Items: 8}, ready)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "fpga" {
		t.Fatalf("engine = %s", res.Engine)
	}
	// CPU would need 50/6 ≈ 8.3s; FPGA: 1 batch × 400µs.
	if res.Finish-ready > 10*sim.Millisecond {
		t.Fatalf("fpga path too slow: %v", res.Finish-ready)
	}
	// Kernel not loaded → falls back to core.
	res2, err := d.Run(Work{GOps: 1, Kernel: "fft"}, ready)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Engine != "core" {
		t.Fatalf("fallback engine = %s", res2.Engine)
	}
}

func TestFailRepair(t *testing.T) {
	d := NewMulticore("edge-0")
	d.Fail()
	if !d.Failed() {
		t.Fatal("not failed")
	}
	if _, err := d.Run(Work{GOps: 1}, 0); err == nil {
		t.Fatal("failed device ran work")
	}
	d.Repair(5 * sim.Second)
	if d.Failed() {
		t.Fatal("still failed")
	}
	res, err := d.Run(Work{GOps: 8}, 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Finish != 6*sim.Second {
		t.Fatalf("post-repair finish = %v", res.Finish)
	}
}

func TestMemoryAccounting(t *testing.T) {
	d := NewRISCV("rv-0") // 512 MB
	if err := d.AllocMem(400); err != nil {
		t.Fatal(err)
	}
	if err := d.AllocMem(200); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if got := d.MemFree(); got != 112 {
		t.Fatalf("MemFree = %v", got)
	}
	d.FreeMem(400)
	if got := d.MemFree(); got != 512 {
		t.Fatalf("MemFree = %v", got)
	}
	d.FreeMem(9999) // clamps at zero used
	if got := d.MemFree(); got != 512 {
		t.Fatalf("MemFree = %v", got)
	}
}

func TestEnergyAndUtilization(t *testing.T) {
	d := NewMulticore("edge-0")
	d.Run(Work{GOps: 8}, 0) //nolint:errcheck // 1s on one of 4 cores
	u := d.Utilization(2 * sim.Second)
	if u < 0.12 || u > 0.13 {
		t.Fatalf("utilization = %v, want 0.125", u)
	}
	if d.Utilization(0) != 0 {
		t.Fatal("zero-time utilization")
	}
	e := d.Energy(2 * sim.Second)
	// idle 2W×2s + dynamic 2J = 6 J.
	if e < 5.9 || e > 6.1 {
		t.Fatalf("energy = %v", e)
	}
	if d.DynamicEnergy() < 1.9 {
		t.Fatalf("dynamic = %v", d.DynamicEnergy())
	}
	if s, ok := d.Metrics().Find("work_completed"); !ok || s.Value != 1 {
		t.Fatalf("metrics: %v %v", s, ok)
	}
}

func TestRunValidation(t *testing.T) {
	d := NewMulticore("edge-0")
	if _, err := d.Run(Work{GOps: 0}, 0); err == nil {
		t.Fatal("zero GOps accepted")
	}
}

func TestSecuritySupport(t *testing.T) {
	fmdc := NewFMDCServer("fog-0")
	rv := NewRISCV("rv-0")
	if !fmdc.SupportsSecurity("high") || fmdc.SupportsSecurity("ghost") {
		t.Fatal("fmdc security")
	}
	if rv.SupportsSecurity("high") || !rv.SupportsSecurity("low") {
		t.Fatal("riscv security")
	}
}

func TestCatalogOrdering(t *testing.T) {
	// The layer hierarchy must hold: cloud > fmdc > multicore compute;
	// riscv is the smallest and cheapest.
	rv := NewRISCV("rv")
	mc := NewMulticore("mc")
	fmdc := NewFMDCServer("fmdc")
	cloud := NewCloudServer("cloud")
	gw := NewGateway("gw")
	tot := func(d *Device) float64 { return float64(d.Spec().Cores) * d.Spec().GOPSPerCore }
	if !(tot(cloud) > tot(fmdc) && tot(fmdc) > tot(mc) && tot(mc) > tot(rv)) {
		t.Fatal("compute ordering broken")
	}
	if !(cloud.Spec().IdlePowerW > fmdc.Spec().IdlePowerW && fmdc.Spec().IdlePowerW > rv.Spec().IdlePowerW) {
		t.Fatal("idle power ordering broken")
	}
	if gw.Spec().Layer != Fog || len(gw.Spec().Protocols) < 3 {
		t.Fatal("gateway should be a flexible fog hub")
	}
	if NewHMPSoC("h").Fabric() == nil {
		t.Fatal("hmpsoc needs a fabric")
	}
}

func TestSortByName(t *testing.T) {
	ds := []*Device{NewMulticore("c"), NewMulticore("a"), NewMulticore("b")}
	SortByName(ds)
	if ds[0].Name() != "a" || ds[2].Name() != "c" {
		t.Fatal("sort broken")
	}
}

func TestFIFOInvariantProperty(t *testing.T) {
	// On a single-core device, completion times are strictly increasing.
	if err := quick.Check(func(gops []uint8) bool {
		d := NewRISCV("rv")
		last := sim.Time(-1)
		for _, g := range gops {
			w := Work{GOps: float64(g%10) + 0.1}
			res, err := d.Run(w, 0)
			if err != nil || res.Finish <= last {
				return false
			}
			last = res.Finish
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationBoundedProperty(t *testing.T) {
	if err := quick.Check(func(gops []uint8, horizon uint16) bool {
		d := NewMulticore("m")
		for _, g := range gops {
			d.Run(Work{GOps: float64(g) + 1}, 0) //nolint:errcheck
		}
		u := d.Utilization(sim.Time(horizon) * sim.Millisecond)
		return u >= 0 && u <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestThermalThrottleAndRecover(t *testing.T) {
	d := NewMulticore("edge-0")
	spec := DefaultThermalSpec()
	// A tight enclosure: full load (≈10 W × 5 C/W + 25 = 75 C) crosses
	// the throttle point; idle (2 W) settles at 35 C, below resume.
	spec.ThrottleC = 70
	spec.ResumeC = 45
	d.EnableThermal(spec)
	if d.Temperature() != spec.AmbientC {
		t.Fatalf("initial temp = %v", d.Temperature())
	}
	// Saturate all cores continuously and step the model.
	now := sim.Time(0)
	for i := 0; i < 60; i++ {
		for c := 0; c < 4; c++ {
			d.Run(Work{GOps: 80}, now) //nolint:errcheck // 10s per core-chunk
		}
		now += 10 * sim.Second
		d.ThermalStep(now)
	}
	if !d.Throttled() {
		t.Fatalf("sustained full load did not throttle (T=%.1fC)", d.Temperature())
	}
	if idx, _ := d.DVFS(); idx != 0 {
		t.Fatalf("throttle did not clamp DVFS: %d", idx)
	}
	// Long idle cools the device and restores DVFS. Jump far ahead so the
	// cumulative-utilization approximation decays.
	for i := 0; i < 200; i++ {
		now += 30 * sim.Second
		d.ThermalStep(now)
	}
	if d.Throttled() {
		t.Fatalf("device never recovered (T=%.1fC)", d.Temperature())
	}
	if idx, _ := d.DVFS(); idx != len(d.Spec().DVFSLevels)-1 {
		t.Fatalf("DVFS not restored: %d", idx)
	}
}

func TestThermalDisabledByDefault(t *testing.T) {
	d := NewMulticore("edge-0")
	if d.Temperature() != 25 || d.Throttled() {
		t.Fatal("thermal model active without enable")
	}
	if d.ThermalStep(sim.Second) != 25 {
		t.Fatal("step without model")
	}
}

func TestThermalMonotoneUnderLoad(t *testing.T) {
	d := NewRISCV("rv")
	d.EnableThermal(DefaultThermalSpec())
	last := d.Temperature()
	now := sim.Time(0)
	for i := 0; i < 10; i++ {
		d.Run(Work{GOps: 20}, now) //nolint:errcheck // 10 s of work on the 2-GOPS core
		now += 10 * sim.Second
		temp := d.ThermalStep(now)
		if temp < last-1e-9 {
			t.Fatalf("temperature fell under sustained load: %v -> %v", last, temp)
		}
		last = temp
	}
	if last <= DefaultThermalSpec().AmbientC {
		t.Fatal("no heating under load")
	}
}
