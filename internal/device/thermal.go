package device

import "myrtus/internal/sim"

// Thermal model: junction temperature follows a first-order response to
// dissipated power; above ThrottleC the device self-throttles to its
// lowest DVFS level until it cools below ResumeC (hysteresis). This is
// the physical constraint behind the paper's "optimal node
// configuration" driver — an edge enclosure cannot run at the fast
// operating point indefinitely.

// ThermalSpec parameterizes the model.
type ThermalSpec struct {
	AmbientC float64
	// CPerWatt is the steady-state temperature rise per dissipated watt.
	CPerWatt float64
	// TimeConstant is the first-order thermal time constant.
	TimeConstant sim.Time
	// ThrottleC triggers self-throttling; ResumeC clears it.
	ThrottleC float64
	ResumeC   float64
}

// DefaultThermalSpec suits a fanless edge enclosure.
func DefaultThermalSpec() ThermalSpec {
	return ThermalSpec{
		AmbientC: 25, CPerWatt: 5,
		TimeConstant: 20 * sim.Second,
		ThrottleC:    85, ResumeC: 70,
	}
}

type thermalState struct {
	spec      ThermalSpec
	tempC     float64
	lastAt    sim.Time
	throttled bool
	savedDVFS int
}

// EnableThermal activates the thermal model (idempotent; temperature
// starts at ambient).
func (d *Device) EnableThermal(spec ThermalSpec) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.thermal == nil {
		d.thermal = &thermalState{spec: spec, tempC: spec.AmbientC}
	} else {
		d.thermal.spec = spec
	}
}

// Temperature returns the modeled junction temperature (ambient when the
// model is disabled).
func (d *Device) Temperature() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.thermal == nil {
		return 25
	}
	return d.thermal.tempC
}

// Throttled reports whether thermal throttling is active.
func (d *Device) Throttled() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.thermal != nil && d.thermal.throttled
}

// ThermalStep advances the thermal model to virtual time now, using the
// device's recent utilization as the heat source, and applies or clears
// throttling. The continuum heartbeat drives this. It returns the new
// temperature.
func (d *Device) ThermalStep(now sim.Time) float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.thermal
	if t == nil {
		return 25
	}
	dt := now - t.lastAt
	if dt <= 0 {
		return t.tempC
	}
	t.lastAt = now
	// Heat source: idle power + dynamic power scaled by utilization over
	// the whole interval (approximation: current cumulative utilization).
	util := 0.0
	if now > 0 {
		util = float64(d.busyTotal) / (float64(now) * float64(d.spec.Cores))
		if util > 1 {
			util = 1
		}
	}
	power := d.spec.IdlePowerW + d.activePowerLocked()*util
	target := t.spec.AmbientC + t.spec.CPerWatt*power
	// First-order step: T += (target - T) * (1 - e^{-dt/tau}) ≈ linear
	// blend for dt ≤ tau.
	alpha := float64(dt) / float64(t.spec.TimeConstant)
	if alpha > 1 {
		alpha = 1
	}
	t.tempC += (target - t.tempC) * alpha
	// Hysteretic throttling.
	if !t.throttled && t.tempC >= t.spec.ThrottleC {
		t.throttled = true
		t.savedDVFS = d.dvfs
		d.dvfs = 0
	} else if t.throttled && t.tempC <= t.spec.ResumeC {
		t.throttled = false
		if t.savedDVFS < len(d.spec.DVFSLevels) {
			d.dvfs = t.savedDVFS
		}
	}
	return t.tempC
}
