package device

import (
	"fmt"

	"myrtus/internal/fpga"
	"myrtus/internal/sim"
)

// This file provides calibrated constructors for the device families of
// Fig. 2. Numbers are order-of-magnitude realistic (embedded multicore ≈
// a few GOPS/core and watts; FMDC server ≈ tens of GOPS/core and ~200 W;
// cloud server larger still); the experiments depend on the relative
// ordering, not the absolute values.

// NewMulticore builds a commercial edge multicore (e.g. quad-core ARM).
func NewMulticore(name string) *Device {
	d, err := New(Spec{
		Name: name, Layer: Edge, Kind: Multicore,
		Cores: 4, GOPSPerCore: 8, MemMB: 4096,
		IdlePowerW: 2, MaxPowerW: 10,
		DVFSLevels:     []float64{0.4, 0.6, 0.8, 1.0},
		SecurityLevels: []string{"low", "medium"},
		Protocols:      []string{"http", "mqtt"},
	})
	if err != nil {
		panic(fmt.Sprintf("device: multicore catalog spec invalid: %v", err))
	}
	return d
}

// NewHMPSoC builds a heterogeneous MPSoC with an FPGA fabric of two
// reconfigurable regions ([3]).
func NewHMPSoC(name string) *Device {
	fab := fpga.NewFabric(name+"/fpga", 1.5, 8, 4)
	d, err := New(Spec{
		Name: name, Layer: Edge, Kind: HMPSoC,
		Cores: 2, GOPSPerCore: 6, MemMB: 2048,
		IdlePowerW: 3, MaxPowerW: 12,
		DVFSLevels:     []float64{0.5, 1.0},
		Fabric:         fab,
		SecurityLevels: []string{"low", "medium"},
		Protocols:      []string{"http"},
	})
	if err != nil {
		panic(fmt.Sprintf("device: hmpsoc catalog spec invalid: %v", err))
	}
	return d
}

// NewRISCV builds an adaptive RISC-V processor with multi-grain
// reconfigurable overlay units for the given kernels ([4]).
func NewRISCV(name string, acceleratedKernels ...string) *Device {
	units := make(map[string]float64, len(acceleratedKernels))
	for _, k := range acceleratedKernels {
		units[k] = 6 // overlay speedup vs the scalar pipeline
	}
	d, err := New(Spec{
		Name: name, Layer: Edge, Kind: RISCV,
		Cores: 1, GOPSPerCore: 2, MemMB: 512,
		IdlePowerW: 0.5, MaxPowerW: 3,
		DVFSLevels:     []float64{0.5, 1.0},
		CustomUnits:    units,
		SecurityLevels: []string{"low"},
		Protocols:      []string{"mqtt"},
	})
	if err != nil {
		panic(fmt.Sprintf("device: riscv catalog spec invalid: %v", err))
	}
	return d
}

// NewGateway builds a multi-sensor smart gateway ([5]): modest compute,
// flexible connectivity, light local processing.
func NewGateway(name string) *Device {
	d, err := New(Spec{
		Name: name, Layer: Fog, Kind: Gateway,
		Cores: 2, GOPSPerCore: 4, MemMB: 2048,
		IdlePowerW: 3, MaxPowerW: 8,
		DVFSLevels:     []float64{0.5, 1.0},
		SecurityLevels: []string{"low", "medium"},
		Protocols:      []string{"http", "mqtt", "coap", "custom"},
	})
	if err != nil {
		panic(fmt.Sprintf("device: gateway catalog spec invalid: %v", err))
	}
	return d
}

// NewFMDCServer builds one disaggregated, hyper-converged FMDC server:
// high-performing and energy-efficient fog compute.
func NewFMDCServer(name string) *Device {
	d, err := New(Spec{
		Name: name, Layer: Fog, Kind: FMDC,
		Cores: 16, GOPSPerCore: 25, MemMB: 65536,
		IdlePowerW: 40, MaxPowerW: 220,
		DVFSLevels:     []float64{0.5, 0.7, 0.85, 1.0},
		SecurityLevels: []string{"low", "medium", "high"},
		Protocols:      []string{"http", "mqtt", "coap"},
	})
	if err != nil {
		panic(fmt.Sprintf("device: fmdc catalog spec invalid: %v", err))
	}
	return d
}

// NewCloudServer builds a cloud-layer server: abundant compute and
// storage, highest idle cost, farthest from the data.
func NewCloudServer(name string) *Device {
	d, err := New(Spec{
		Name: name, Layer: Cloud, Kind: CloudServer,
		Cores: 64, GOPSPerCore: 40, MemMB: 262144,
		IdlePowerW: 120, MaxPowerW: 600,
		DVFSLevels:     []float64{0.6, 0.8, 1.0},
		SecurityLevels: []string{"low", "medium", "high"},
		Protocols:      []string{"http", "mqtt", "coap"},
	})
	if err != nil {
		panic(fmt.Sprintf("device: cloud catalog spec invalid: %v", err))
	}
	return d
}

// StandardBitstreams returns DPE-produced bitstreams for the kernels the
// use cases accelerate, ready to register and load on HMPSoC fabrics.
func StandardBitstreams() []*fpga.Bitstream {
	return []*fpga.Bitstream{
		{
			ID: "bs-conv2d", Kernel: "conv2d", AreaUnits: 6,
			ReconfigTime: 8 * sim.Millisecond,
			Points: []OperatingPointAlias{
				{Name: "fast", ClockMHz: 300, Parallelism: 8, LatencyPerItem: 400 * sim.Microsecond, PowerWatts: 7},
				{Name: "balanced", ClockMHz: 200, Parallelism: 4, LatencyPerItem: 900 * sim.Microsecond, PowerWatts: 3.5},
				{Name: "eco", ClockMHz: 100, Parallelism: 2, LatencyPerItem: 2 * sim.Millisecond, PowerWatts: 1.2},
			},
		},
		{
			ID: "bs-fft", Kernel: "fft", AreaUnits: 4,
			ReconfigTime: 6 * sim.Millisecond,
			Points: []OperatingPointAlias{
				{Name: "fast", ClockMHz: 250, Parallelism: 4, LatencyPerItem: 300 * sim.Microsecond, PowerWatts: 5},
				{Name: "eco", ClockMHz: 125, Parallelism: 2, LatencyPerItem: 800 * sim.Microsecond, PowerWatts: 1.8},
			},
		},
		{
			ID: "bs-pose", Kernel: "pose-estimation", AreaUnits: 8,
			ReconfigTime: 12 * sim.Millisecond,
			Points: []OperatingPointAlias{
				{Name: "fast", ClockMHz: 300, Parallelism: 4, LatencyPerItem: 1500 * sim.Microsecond, PowerWatts: 8},
				{Name: "eco", ClockMHz: 150, Parallelism: 2, LatencyPerItem: 4 * sim.Millisecond, PowerWatts: 2.5},
			},
		},
	}
}

// OperatingPointAlias re-exports fpga.OperatingPoint so catalog literals
// read naturally.
type OperatingPointAlias = fpga.OperatingPoint
