// Package workload provides open-loop arrival generators for driving
// applications on the continuum: the request patterns the use cases
// exhibit (steady sensor sampling, Poisson user traffic, bursty camera
// triggers). Generators schedule arrivals on the virtual clock, so load
// tests are deterministic per seed.
package workload

import (
	"fmt"

	"myrtus/internal/sim"
)

// Pattern produces successive inter-arrival gaps.
type Pattern interface {
	// Next returns the gap before the next arrival.
	Next(rng *sim.RNG) sim.Time
}

// Uniform emits arrivals at a fixed period.
type Uniform struct{ Period sim.Time }

// Next implements Pattern.
func (u Uniform) Next(*sim.RNG) sim.Time { return u.Period }

// Poisson emits arrivals with exponential gaps at RatePerSec.
type Poisson struct{ RatePerSec float64 }

// Next implements Pattern.
func (p Poisson) Next(rng *sim.RNG) sim.Time {
	return sim.Time(rng.Exp(1/p.RatePerSec) * float64(sim.Second))
}

// Bursty emits BurstLen arrivals spaced by InBurst, then pauses for
// BetweenBursts — the camera-trigger shape of the mobility use case.
type Bursty struct {
	BurstLen      int
	InBurst       sim.Time
	BetweenBursts sim.Time

	pos int
}

// Next implements Pattern.
func (b *Bursty) Next(*sim.RNG) sim.Time {
	b.pos++
	if b.BurstLen > 0 && b.pos%b.BurstLen == 0 {
		return b.BetweenBursts
	}
	return b.InBurst
}

// Schedule plans n arrivals on the engine starting after the first gap;
// fire(i) runs at each arrival's virtual time. It returns the scheduled
// arrival times. The caller drives the engine.
func Schedule(eng *sim.Engine, rng *sim.RNG, p Pattern, n int, fire func(i int)) ([]sim.Time, error) {
	if eng == nil || p == nil {
		return nil, fmt.Errorf("workload: engine and pattern required")
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: need a positive arrival count")
	}
	if rng == nil {
		rng = sim.NewRNG(1)
	}
	at := eng.Now()
	times := make([]sim.Time, 0, n)
	for i := 0; i < n; i++ {
		gap := p.Next(rng)
		if gap < 0 {
			gap = 0
		}
		at += gap
		times = append(times, at)
		i := i
		eng.At(at, func() {
			if fire != nil {
				fire(i)
			}
		})
	}
	return times, nil
}

// OfferedLoad reports the mean arrival rate (per second) of a schedule.
func OfferedLoad(times []sim.Time) float64 {
	if len(times) < 2 {
		return 0
	}
	span := (times[len(times)-1] - times[0]).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(len(times)-1) / span
}
