package workload

import (
	"math"
	"testing"

	"myrtus/internal/sim"
)

func TestUniformPattern(t *testing.T) {
	eng := sim.NewEngine(1)
	var fired []int
	times, err := Schedule(eng, nil, Uniform{Period: 10 * sim.Millisecond}, 5, func(i int) {
		fired = append(fired, i)
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(fired) != 5 {
		t.Fatalf("fired = %v", fired)
	}
	for i, at := range times {
		want := sim.Time(i+1) * 10 * sim.Millisecond
		if at != want {
			t.Fatalf("arrival %d at %v, want %v", i, at, want)
		}
	}
	// In-order delivery.
	for i, v := range fired {
		if v != i {
			t.Fatalf("out of order: %v", fired)
		}
	}
}

func TestPoissonRate(t *testing.T) {
	eng := sim.NewEngine(2)
	rng := sim.NewRNG(2)
	times, err := Schedule(eng, rng, Poisson{RatePerSec: 100}, 2000, nil)
	if err != nil {
		t.Fatal(err)
	}
	rate := OfferedLoad(times)
	if math.Abs(rate-100) > 10 {
		t.Fatalf("offered load = %v, want ≈100", rate)
	}
	eng.Run()
}

func TestBurstyPattern(t *testing.T) {
	eng := sim.NewEngine(3)
	b := &Bursty{BurstLen: 3, InBurst: sim.Millisecond, BetweenBursts: 100 * sim.Millisecond}
	times, err := Schedule(eng, nil, b, 6, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Gaps: 1,1,100,1,1,100 ms.
	gaps := []sim.Time{}
	prev := sim.Time(0)
	for _, at := range times {
		gaps = append(gaps, at-prev)
		prev = at
	}
	want := []sim.Time{sim.Millisecond, sim.Millisecond, 100 * sim.Millisecond,
		sim.Millisecond, sim.Millisecond, 100 * sim.Millisecond}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v", gaps)
		}
	}
	eng.Run()
}

func TestScheduleValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	if _, err := Schedule(nil, nil, Uniform{Period: 1}, 1, nil); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := Schedule(eng, nil, nil, 1, nil); err == nil {
		t.Fatal("nil pattern accepted")
	}
	if _, err := Schedule(eng, nil, Uniform{Period: 1}, 0, nil); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestOfferedLoadDegenerate(t *testing.T) {
	if OfferedLoad(nil) != 0 || OfferedLoad([]sim.Time{5}) != 0 {
		t.Fatal("degenerate load")
	}
	if OfferedLoad([]sim.Time{5, 5}) != 0 {
		t.Fatal("zero-span load")
	}
}

func TestScheduleDeterministic(t *testing.T) {
	mk := func() []sim.Time {
		eng := sim.NewEngine(7)
		times, _ := Schedule(eng, sim.NewRNG(7), Poisson{RatePerSec: 50}, 100, nil)
		return times
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic schedule")
		}
	}
}
