package continuum

import (
	"strings"
	"testing"

	"myrtus/internal/cluster"
	"myrtus/internal/device"
	"myrtus/internal/sim"
)

func deviceWork(gops float64) device.Work { return device.Work{GOps: gops} }

func small(t *testing.T) *Continuum {
	t.Helper()
	opts := DefaultOptions()
	opts.KBReplicas = 1 // single-replica KB keeps unit tests fast
	c, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestBuildValidation(t *testing.T) {
	bad := DefaultOptions()
	bad.Multicores, bad.HMPSoCs, bad.RISCVs = 0, 0, 0
	if _, err := Build(bad); err == nil {
		t.Fatal("edge-less continuum accepted")
	}
	bad2 := DefaultOptions()
	bad2.Gateways = 0
	if _, err := Build(bad2); err == nil {
		t.Fatal("gateway-less continuum accepted")
	}
	bad3 := DefaultOptions()
	bad3.KBReplicas = 0
	if _, err := Build(bad3); err == nil {
		t.Fatal("KB-less continuum accepted")
	}
}

func TestBuildShape(t *testing.T) {
	c := small(t)
	// 6 edge + 3 fog + 2 cloud devices.
	if len(c.Devices) != 11 {
		t.Fatalf("devices = %d", len(c.Devices))
	}
	// Edge cluster: 6 local nodes + 1 virtual.
	if got := len(c.Edge.Nodes()); got != 7 {
		t.Fatalf("edge nodes = %d", got)
	}
	if got := len(c.Fog.Nodes()); got != 4 { // 3 + virtual cloud
		t.Fatalf("fog nodes = %d", got)
	}
	if got := len(c.Cloud.Nodes()); got != 2 {
		t.Fatalf("cloud nodes = %d", got)
	}
	// Registry sees every device.
	if got := len(c.Registry.List("")); got != 11 {
		t.Fatalf("registry = %d", got)
	}
	if got := len(c.Registry.List("edge")); got != 6 {
		t.Fatalf("edge registry = %d", got)
	}
	// Cross-layer route exists: edge device to cloud server.
	if _, lat, err := c.Topo.Route("edge-mc-0", "cloud-srv-0"); err != nil || lat <= 0 {
		t.Fatalf("route: %v %v", lat, err)
	}
	if len(c.Bitstreams.Kernels()) != 3 {
		t.Fatalf("bitstreams = %v", c.Bitstreams.Kernels())
	}
}

func TestHeartbeatAndLeaseLapse(t *testing.T) {
	c := small(t)
	c.Heartbeat()
	snap := c.Registry.Snapshot()
	for _, e := range snap {
		if !e.Live {
			t.Fatalf("%s not live", e.Record.Name)
		}
	}
	// Fail a device; advance past TTL; heartbeat ticks leases.
	if err := c.FailDevice("edge-mc-0"); err != nil {
		t.Fatal(err)
	}
	c.Engine.RunFor(sim.Time(c.opts.HeartbeatTTL) * 2)
	c.Heartbeat()
	if _, ok := c.Registry.Status("edge-mc-0"); ok {
		t.Fatal("failed device still has live status")
	}
	if st, ok := c.Registry.Status("edge-mc-1"); !ok || !st.Ready {
		t.Fatal("healthy device lost status")
	}
	// Repair restores it.
	if err := c.RepairDevice("edge-mc-0"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Registry.Status("edge-mc-0"); !ok {
		t.Fatal("repaired device missing status")
	}
	if err := c.FailDevice("ghost"); err == nil {
		t.Fatal("ghost fail accepted")
	}
	if err := c.RepairDevice("ghost"); err == nil {
		t.Fatal("ghost repair accepted")
	}
}

func TestVerticalOffloadCascade(t *testing.T) {
	c := small(t)
	// A workload too large for any edge device must cascade via the
	// virtual node into the fog.
	if err := c.Edge.ApplyDeployment(cluster.Deployment{
		Name: "analytics", Replicas: 1,
		Template: cluster.PodSpec{App: "analytics", Requests: cluster.Resources{CPU: 12, MemMB: 32768}},
	}); err != nil {
		t.Fatal(err)
	}
	c.Reconcile()
	pods := c.Edge.Pods()
	if len(pods) != 1 || pods[0].Phase != cluster.PodRunning || pods[0].Node != "liqo-fog" {
		t.Fatalf("pods = %+v", pods)
	}
	// Mirror landed on an FMDC server.
	found := false
	for _, p := range c.Fog.Pods() {
		if p.Phase == cluster.PodRunning && strings.HasPrefix(p.Node, "fog-fmdc") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no mirror in fog: %+v", c.Fog.Pods())
	}
}

func TestHorizontalAndVerticalCoexist(t *testing.T) {
	c := small(t)
	// Small pods fill edge nodes horizontally; the oversized one goes
	// vertical.
	for i := 0; i < 4; i++ {
		c.Edge.CreatePod(cluster.PodSpec{App: "sensor", Requests: cluster.Resources{CPU: 0.5, MemMB: 128}}) //nolint:errcheck
	}
	c.Edge.CreatePod(cluster.PodSpec{App: "big", Requests: cluster.Resources{CPU: 10, MemMB: 16384}}) //nolint:errcheck
	c.Reconcile()
	onEdge, onVirtual := 0, 0
	for _, p := range c.Edge.Pods() {
		if p.Phase != cluster.PodRunning {
			t.Fatalf("pod %s not running", p.Name)
		}
		if p.Node == "liqo-fog" {
			onVirtual++
		} else {
			onEdge++
		}
	}
	if onEdge != 4 || onVirtual != 1 {
		t.Fatalf("edge=%d virtual=%d", onEdge, onVirtual)
	}
}

func TestFailureSelfHealsAcrossLayers(t *testing.T) {
	c := small(t)
	c.Edge.ApplyDeployment(cluster.Deployment{ //nolint:errcheck
		Name: "svc", Replicas: 2,
		Template: cluster.PodSpec{App: "svc", Requests: cluster.Resources{CPU: 1, MemMB: 256}},
	})
	c.Reconcile()
	// Fail every multicore so replicas must move.
	c.FailDevice("edge-mc-0") //nolint:errcheck
	c.FailDevice("edge-mc-1") //nolint:errcheck
	for i := 0; i < 3; i++ {
		c.Reconcile()
	}
	running := 0
	for _, p := range c.Edge.Pods() {
		if p.Phase == cluster.PodRunning {
			if p.Node == "edge-mc-0" || p.Node == "edge-mc-1" {
				t.Fatalf("pod on failed device %s", p.Node)
			}
			running++
		}
	}
	if running != 2 {
		t.Fatalf("running = %d after self-heal", running)
	}
}

func TestBuildingBlocksAllProbesPass(t *testing.T) {
	c := small(t)
	blocks := BuildingBlocks()
	if len(blocks) != 9 {
		t.Fatalf("blocks = %d, want 8 EU-CEI + 1 DPE", len(blocks))
	}
	for _, bb := range blocks {
		if err := bb.Probe(c); err != nil {
			t.Fatalf("probe %q failed: %v", bb.Name, err)
		}
	}
}

func TestRenderTableI(t *testing.T) {
	c := small(t)
	out := c.RenderTableI()
	if strings.Count(out, "PASS") != 9 {
		t.Fatalf("not all probes pass:\n%s", out)
	}
	for _, want := range []string{"Orchestration", "Artificial Intelligence", "Design & Programming Environment"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q", want)
		}
	}
}

func TestRenderTopology(t *testing.T) {
	c := small(t)
	out := c.RenderTopology()
	for _, want := range []string{"CLOUD LAYER", "FOG LAYER", "EDGE LAYER", "Liqo peering", "hmpsoc", "Shared ontological KB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("topology missing %q:\n%s", want, out)
		}
	}
	c.FailDevice("edge-mc-0") //nolint:errcheck
	if !strings.Contains(c.RenderTopology(), "DOWN") {
		t.Fatal("failed device not marked")
	}
}

func TestRenderPillars(t *testing.T) {
	out := RenderPillars()
	for _, want := range []string{"PILLAR 1", "PILLAR 2", "PILLAR 3", "MIRTO Cognitive Engine", "internal/mlir"} {
		if !strings.Contains(out, want) {
			t.Fatalf("pillars missing %q", want)
		}
	}
	if len(Pillars()) != 3 {
		t.Fatal("pillar count")
	}
}

func TestTotalEnergyGrowsWithTime(t *testing.T) {
	c := small(t)
	e0 := c.TotalEnergy()
	c.Engine.RunFor(10 * sim.Second)
	e1 := c.TotalEnergy()
	if e1 <= e0 {
		t.Fatalf("idle energy not integrating: %v → %v", e0, e1)
	}
}

func TestClusterForAndDeviceNames(t *testing.T) {
	c := small(t)
	cl, ok := c.ClusterFor("fog-fmdc-0")
	if !ok || cl.Name() != "fog" {
		t.Fatalf("ClusterFor = %v %v", cl, ok)
	}
	if _, ok := c.ClusterFor("ghost"); ok {
		t.Fatal("ghost cluster")
	}
	names := c.DeviceNames()
	if len(names) != 11 || names[0] >= names[len(names)-1] {
		t.Fatalf("names = %v", names)
	}
}

func TestReplicatedKBContinuum(t *testing.T) {
	// Smoke test with the real 3-replica Raft KB.
	opts := DefaultOptions()
	opts.Multicores, opts.HMPSoCs, opts.RISCVs = 1, 1, 0
	opts.FMDCServers, opts.CloudServers = 1, 1
	c, err := Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.Heartbeat()
	if got := len(c.Registry.List("")); got != 5 {
		t.Fatalf("registry on raft KB = %d", got)
	}
}

func TestHeartbeatReportsTemperature(t *testing.T) {
	c := small(t)
	// Load an edge device, advance time, heartbeat: the registry status
	// must carry a temperature above ambient.
	d := c.Devices["edge-rv-0"]
	now := c.Engine.Now()
	for i := 0; i < 5; i++ {
		d.Run(deviceWork(20), now) //nolint:errcheck
		now += 10 * sim.Second
		c.Engine.RunUntil(now)
		c.Heartbeat()
	}
	st, ok := c.Registry.Status("edge-rv-0")
	if !ok {
		t.Fatal("status missing")
	}
	if st.Temperature <= 25 {
		t.Fatalf("temperature = %v, want above ambient", st.Temperature)
	}
	// Cloud servers have no thermal model: ambient reading.
	stc, _ := c.Registry.Status("cloud-srv-0")
	if stc.Temperature != 25 {
		t.Fatalf("cloud temperature = %v", stc.Temperature)
	}
}
