package continuum

import (
	"bytes"
	"fmt"

	"myrtus/internal/cluster"
	"myrtus/internal/security"
	"myrtus/internal/sim"
)

// The EU-CEI reference architecture defines eight building blocks
// (Table I); MYRTUS adds the DPE as a ninth (§II). Each BuildingBlock
// here pairs the paper's mapping text with a live probe against this
// continuum instance, so the regenerated Table I is backed by running
// code rather than prose.

// BuildingBlock is one EU-CEI building block with its MYRTUS realization.
type BuildingBlock struct {
	Name           string
	EUCEIRole      string
	Implementation string
	// Probe exercises the block on a live continuum; nil error = the row
	// is backed by working code.
	Probe func(c *Continuum) error
}

// BuildingBlocks returns the Table I registry (eight EU-CEI blocks plus
// the MYRTUS DPE addition).
func BuildingBlocks() []BuildingBlock {
	return []BuildingBlock{
		{
			Name:      "Security and Privacy",
			EUCEIRole: "Mechanisms for secure data and transactions between components",
			Implementation: "Three runnable security levels (Table II): ASCON-128/ECDSA/ECDH (low), " +
				"AES-128-GCM/RSA (medium), AES-256-GCM + PQ-style Lamport/LWE (high); " +
				"levels are placement constraints enforced by the schedulers",
			Probe: probeSecurity,
		},
		{
			Name:           "Trust and Reputation",
			EUCEIRole:      "Models for users of a continuum platform to generate trust in providers",
			Implementation: "Beta-reputation trust engine fed by interaction outcomes; reputation KPIs consumed by the Privacy & Security Manager",
			Probe:          probeTrust,
		},
		{
			Name:           "Data management",
			EUCEIRole:      "Collection, storage, computation, and actions performed over data",
			Implementation: "Layer-dependent storage/processing on the device models; MQTT-style broker at the smart gateway; historical batches under the KB history prefix",
			Probe:          probeData,
		},
		{
			Name:           "Resource management",
			EUCEIRole:      "Management of physical infrastructures and individual devices",
			Implementation: "Kubernetes-role per-layer clusters (nodes/pods/deployments/reconcilers) with Liqo-style virtual-node peering across layers",
			Probe:          probeResources,
		},
		{
			Name:           "Orchestration",
			EUCEIRole:      "Distribution of workloads, data or resources for executing a given action",
			Implementation: "Two-level: declarative cluster scheduling below, MIRTO cognitive placement and MAPE-K reallocation above (internal/mirto)",
			Probe:          probeOrchestration,
		},
		{
			Name:           "Network",
			EUCEIRole:      "Connectivity considerations, including private networks and network slicing",
			Implementation: "Simulated continuum topology with latency/bandwidth/loss, shortest-path routing, FIFO congestion, and bandwidth-reserving slices",
			Probe:          probeNetwork,
		},
		{
			Name:           "Monitoring and Observability",
			EUCEIRole:      "Infrastructure-, telemetry-, and application-level monitoring",
			Implementation: "Three monitor classes per component (internal/telemetry); observability via the shared KB Resource Registry/Status with heartbeat leases",
			Probe:          probeMonitoring,
		},
		{
			Name:           "Artificial Intelligence",
			EUCEIRole:      "Expected to be embedded in most activities performed",
			Implementation: "MIRTO strategies: federated operating-point predictors (internal/fl), evolved swarm rules (internal/swarm), MAPE-K loops (internal/mapek)",
			Probe:          probeAI,
		},
		{
			Name:           "Design & Programming Environment (MYRTUS addition)",
			EUCEIRole:      "Not addressed by EU-CEI: turning applications into executable implementations",
			Implementation: "TOSCA modeling + ADT threat analysis + MLIR-style node-level flow (dfg/base2/cgra dialects, HLS estimator) emitting CSAR + bitstreams (internal/dpe)",
			Probe:          probeDPE,
		},
	}
}

func probeSecurity(c *Continuum) error {
	for _, lvl := range security.Levels() {
		s, err := security.SuiteFor(lvl)
		if err != nil {
			return err
		}
		key := bytes.Repeat([]byte{7}, s.KeySize())
		nonce := bytes.Repeat([]byte{9}, s.NonceSize())
		ct, err := s.Seal(key, nonce, nil, []byte("probe"))
		if err != nil {
			return err
		}
		pt, err := s.Open(key, nonce, nil, ct)
		if err != nil || string(pt) != "probe" {
			return fmt.Errorf("suite %s round-trip failed: %v", lvl, err)
		}
	}
	return nil
}

func probeTrust(c *Continuum) error {
	c.Trust.Observe("probe", "probe-subject", true)
	if r := c.Trust.Reputation("probe-subject"); r <= 0.5 {
		return fmt.Errorf("reputation did not respond to evidence: %v", r)
	}
	return nil
}

func probeData(c *Continuum) error {
	if err := c.Registry.RecordHistory("probe/topic", 1, map[string]int{"x": 1}); err != nil {
		return err
	}
	if got := c.Registry.History("probe/topic"); len(got) != 1 {
		return fmt.Errorf("history round-trip failed")
	}
	delivered := false
	c.Broker.Subscribe(c.Broker.Node(), "probe/#", "", func(string, []byte) { delivered = true })
	if err := c.Broker.Publish(c.Broker.Node(), "probe/data", []byte("x"), ""); err != nil {
		return err
	}
	c.Engine.RunFor(sim.Second)
	if !delivered {
		return fmt.Errorf("broker did not deliver")
	}
	return nil
}

func probeResources(c *Continuum) error {
	if len(c.Edge.Nodes()) == 0 || len(c.Fog.Nodes()) == 0 || len(c.Cloud.Nodes()) == 0 {
		return fmt.Errorf("missing layer nodes")
	}
	for _, p := range c.Peerings {
		if !p.Active() {
			return fmt.Errorf("inactive peering")
		}
	}
	return nil
}

func probeOrchestration(c *Continuum) error {
	name, err := c.Edge.CreatePod(cluster.PodSpec{App: "bb-probe", Requests: cluster.Resources{CPU: 0.1, MemMB: 64}})
	if err != nil {
		return err
	}
	defer c.Edge.DeletePod(name)
	if c.Edge.Schedule() < 1 {
		return fmt.Errorf("probe pod not scheduled")
	}
	return nil
}

func probeNetwork(c *Continuum) error {
	names := c.DeviceNames()
	_, _, err := c.Topo.Route(names[0], names[len(names)-1])
	return err
}

func probeMonitoring(c *Continuum) error {
	c.Heartbeat()
	snap := c.Registry.Snapshot()
	if len(snap) != len(c.Devices) {
		return fmt.Errorf("registry sees %d of %d devices", len(snap), len(c.Devices))
	}
	for _, e := range snap {
		if !e.Live {
			return fmt.Errorf("device %s not live after heartbeat", e.Record.Name)
		}
	}
	return nil
}

func probeAI(c *Continuum) error {
	// The AI block is probed by its packages' own tests; here we check
	// that the KB can carry a model (the FL exchange medium).
	if err := c.Registry.RecordHistory("models/probe", 1, map[string]float64{"w0": 1}); err != nil {
		return err
	}
	return nil
}

func probeDPE(c *Continuum) error {
	if len(c.Bitstreams.Kernels()) == 0 {
		return fmt.Errorf("no bitstreams registered")
	}
	return nil
}

// RenderTableI regenerates Table I, running every probe and appending a
// live PASS/FAIL status column.
func (c *Continuum) RenderTableI() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "TABLE I: EU-CEI building blocks vs MYRTUS implementation (live probes)\n")
	fmt.Fprintf(&b, "%-52s | %-6s | %s\n", "EU-CEI BUILDING BLOCK", "PROBE", "MYRTUS IMPLEMENTATION")
	for _, bb := range BuildingBlocks() {
		status := "PASS"
		if err := bb.Probe(c); err != nil {
			status = "FAIL: " + err.Error()
		}
		fmt.Fprintf(&b, "%-52s | %-6s | %s\n", bb.Name, status, bb.Implementation)
	}
	return b.String()
}
