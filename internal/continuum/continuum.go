// Package continuum assembles the MYRTUS reference infrastructure of
// Fig. 2: a composable layered cloud–fog–edge continuum integrating the
// heterogeneous device models, the network fabric, per-layer
// Kubernetes-role clusters joined by Liqo-style peerings, the shared
// Raft-replicated Knowledge Base, and the trust engine. It also hosts the
// EU-CEI building-block registry that regenerates Table I from the live
// system (internal/continuum/blocks.go).
package continuum

import (
	"fmt"
	"sort"

	"myrtus/internal/cluster"
	"myrtus/internal/device"
	"myrtus/internal/fpga"
	"myrtus/internal/images"
	"myrtus/internal/kb"
	"myrtus/internal/liqo"
	"myrtus/internal/network"
	"myrtus/internal/security"
	"myrtus/internal/sim"
	"myrtus/internal/telemetry"
	"myrtus/internal/trace"
)

// Options size the built infrastructure.
type Options struct {
	Seed uint64
	// Edge layer.
	Multicores int
	HMPSoCs    int
	RISCVs     int
	// Fog layer.
	Gateways    int
	FMDCServers int
	// Cloud layer.
	CloudServers int
	// KBReplicas is the Raft replica count of the shared KB.
	KBReplicas int
	// HeartbeatTTL is the registry lease TTL in virtual nanoseconds.
	HeartbeatTTL int64
}

// DefaultOptions returns a small but complete continuum: 6 edge devices,
// a gateway plus two FMDC servers in the fog, two cloud servers, and a
// 3-replica KB.
func DefaultOptions() Options {
	return Options{
		Seed:       1,
		Multicores: 2, HMPSoCs: 2, RISCVs: 2,
		Gateways: 1, FMDCServers: 2,
		CloudServers: 2,
		KBReplicas:   3,
		HeartbeatTTL: int64(10 * sim.Second),
	}
}

// Continuum is one built infrastructure instance.
type Continuum struct {
	Engine *sim.Engine
	Topo   *network.Topology
	Fabric *network.Fabric
	Broker *network.Broker

	Devices map[string]*device.Device

	// Clusters per layer; Liqo peerings chain edge→fog→cloud.
	Edge, Fog, Cloud *cluster.Cluster
	Peerings         []*liqo.Peering

	KB       kb.Backend
	Registry *kb.Registry
	Trust    *security.TrustEngine

	// Tracer records virtual-time spans across every layer; TraceMetrics
	// receives exported trace attribution (span histograms, critical-path
	// counters) for the agents.
	Tracer       *trace.Tracer
	TraceMetrics *telemetry.Registry

	Bitstreams *fpga.Registry
	// Images is the container image registry/repository (§VI), shared by
	// all layers; MIRTO's Workload Manager performs admission against it.
	Images *images.Registry

	opts   Options
	leases map[string]*kb.Lease
	// names caches the sorted device names; Devices is only populated
	// during Build, so the cache never goes stale.
	names []string
}

// Build constructs the continuum.
func Build(opts Options) (*Continuum, error) {
	if opts.Multicores+opts.HMPSoCs+opts.RISCVs < 1 {
		return nil, fmt.Errorf("continuum: need at least one edge device")
	}
	if opts.Gateways < 1 || opts.FMDCServers < 1 || opts.CloudServers < 1 {
		return nil, fmt.Errorf("continuum: need at least one gateway, FMDC server, and cloud server")
	}
	if opts.KBReplicas < 1 {
		return nil, fmt.Errorf("continuum: need at least one KB replica")
	}
	if opts.HeartbeatTTL <= 0 {
		opts.HeartbeatTTL = int64(10 * sim.Second)
	}
	c := &Continuum{
		Engine:     sim.NewEngine(opts.Seed),
		Topo:       network.NewTopology(opts.Seed),
		Devices:    map[string]*device.Device{},
		Edge:       cluster.New("edge"),
		Fog:        cluster.New("fog"),
		Cloud:      cluster.New("cloud"),
		Bitstreams: fpga.NewRegistry(),
		Images:     images.New(nil, nil),
		opts:       opts,
		leases:     map[string]*kb.Lease{},
	}
	c.Fabric = network.NewFabric(c.Engine, c.Topo)
	c.Tracer = trace.NewTracer(c.Engine)
	c.TraceMetrics = telemetry.NewRegistry("trace")
	c.Fabric.SetTracer(c.Tracer)
	for _, cl := range []*cluster.Cluster{c.Edge, c.Fog, c.Cloud} {
		cl.SetTracer(c.Tracer)
	}

	var err error
	if c.Trust, err = security.NewTrustEngine(0.98); err != nil {
		return nil, err
	}
	// The one ontological KB: logically single, physically replicated.
	if opts.KBReplicas == 1 {
		c.KB = kb.NewStore()
	} else {
		c.KB = kb.NewCluster(opts.KBReplicas, opts.Seed)
	}
	c.Registry = kb.NewRegistry(c.KB)

	// Devices.
	var edgeDevices []*device.Device
	for i := 0; i < opts.Multicores; i++ {
		edgeDevices = append(edgeDevices, device.NewMulticore(fmt.Sprintf("edge-mc-%d", i)))
	}
	for i := 0; i < opts.HMPSoCs; i++ {
		edgeDevices = append(edgeDevices, device.NewHMPSoC(fmt.Sprintf("edge-hmp-%d", i)))
	}
	for i := 0; i < opts.RISCVs; i++ {
		edgeDevices = append(edgeDevices, device.NewRISCV(fmt.Sprintf("edge-rv-%d", i), "fft", "conv2d"))
	}
	// Edge devices sit in fanless enclosures: enable the thermal model so
	// the infrastructure monitors report temperature (§III Monitoring).
	for _, d := range edgeDevices {
		d.EnableThermal(device.DefaultThermalSpec())
	}
	var fogDevices []*device.Device
	var gateways []*device.Device
	for i := 0; i < opts.Gateways; i++ {
		g := device.NewGateway(fmt.Sprintf("fog-gw-%d", i))
		gateways = append(gateways, g)
		fogDevices = append(fogDevices, g)
	}
	for i := 0; i < opts.FMDCServers; i++ {
		fogDevices = append(fogDevices, device.NewFMDCServer(fmt.Sprintf("fog-fmdc-%d", i)))
	}
	var cloudDevices []*device.Device
	for i := 0; i < opts.CloudServers; i++ {
		cloudDevices = append(cloudDevices, device.NewCloudServer(fmt.Sprintf("cloud-srv-%d", i)))
	}

	// Network: stars per layer, uplinks between layers (Fig. 2 shape).
	gw := gateways[0].Name()
	for _, d := range edgeDevices {
		if err := c.Topo.AddDuplex(d.Name(), gw, 2*sim.Millisecond, 12.5e6, 0.001); err != nil {
			return nil, err
		}
	}
	for _, d := range fogDevices {
		if d.Name() == gw {
			continue
		}
		if err := c.Topo.AddDuplex(gw, d.Name(), 1*sim.Millisecond, 125e6, 0.0005); err != nil {
			return nil, err
		}
	}
	for _, d := range cloudDevices {
		// Cloud reached through the first FMDC (fog is the edge–cloud bridge).
		bridge := fogDevices[len(gateways)].Name()
		if err := c.Topo.AddDuplex(bridge, d.Name(), 20*sim.Millisecond, 1.25e9, 0.0001); err != nil {
			return nil, err
		}
	}
	c.Broker = network.NewBroker(c.Fabric, gw)
	c.Broker.SetTracer(c.Tracer)

	// Register devices: KB registry + per-layer cluster nodes.
	register := func(devs []*device.Device, cl *cluster.Cluster, layer string) error {
		for _, d := range devs {
			c.Devices[d.Name()] = d
			d.SetTracer(c.Tracer)
			spec := d.Spec()
			var accels []string
			if spec.Fabric != nil {
				accels = append(accels, spec.Fabric.Name())
			}
			for k := range spec.CustomUnits {
				accels = append(accels, "cu:"+k)
			}
			sort.Strings(accels)
			lease, err := c.Registry.Register(kb.ComponentRecord{
				Name: d.Name(), Layer: layer, Kind: string(spec.Kind), Cluster: cl.Name(),
				CPUCapacity: float64(spec.Cores), MemCapacityMB: spec.MemMB,
				Accelerators: accels, SecurityLevels: spec.SecurityLevels,
				Protocols: spec.Protocols,
			}, int64(c.Engine.Now()), opts.HeartbeatTTL)
			if err != nil {
				return err
			}
			c.leases[d.Name()] = lease
			if err := cl.AddNode(cluster.Node{
				Name:        d.Name(),
				Allocatable: cluster.Resources{CPU: float64(spec.Cores), MemMB: spec.MemMB},
				Labels: map[string]string{
					"layer": layer, "kind": string(spec.Kind), "name": d.Name(),
				},
				SecurityLevels: spec.SecurityLevels,
				Ready:          true,
			}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := register(edgeDevices, c.Edge, "edge"); err != nil {
		return nil, err
	}
	if err := register(fogDevices, c.Fog, "fog"); err != nil {
		return nil, err
	}
	if err := register(cloudDevices, c.Cloud, "cloud"); err != nil {
		return nil, err
	}

	// Peerings: vertical composition edge→fog→cloud.
	p1, err := liqo.Peer(c.Edge, c.Fog, "liqo-fog", map[string]string{"layer": "fog"})
	if err != nil {
		return nil, err
	}
	p2, err := liqo.Peer(c.Fog, c.Cloud, "liqo-cloud", map[string]string{"layer": "cloud"})
	if err != nil {
		return nil, err
	}
	c.Peerings = []*liqo.Peering{p1, p2}

	// Standard DPE bitstreams available on the continuum.
	for _, bs := range device.StandardBitstreams() {
		if err := c.Bitstreams.Add(bs); err != nil {
			return nil, err
		}
	}

	c.names = make([]string, 0, len(c.Devices))
	for n := range c.Devices {
		c.names = append(c.names, n)
	}
	sort.Strings(c.names)
	return c, nil
}

// ClusterFor returns the layer cluster hosting the named device.
func (c *Continuum) ClusterFor(deviceName string) (*cluster.Cluster, bool) {
	for _, cl := range []*cluster.Cluster{c.Edge, c.Fog, c.Cloud} {
		if _, ok := cl.Node(deviceName); ok {
			return cl, true
		}
	}
	return nil, false
}

// Layers returns the three clusters in edge, fog, cloud order.
func (c *Continuum) Layers() []*cluster.Cluster {
	return []*cluster.Cluster{c.Edge, c.Fog, c.Cloud}
}

// DevicesInLayer returns the names of physical devices registered in the
// named layer ("edge", "fog", "cloud"), sorted — the blast set of a
// correlated layer-wide outage.
func (c *Continuum) DevicesInLayer(layer string) []string {
	for _, cl := range c.Layers() {
		if cl.Name() != layer {
			continue
		}
		var out []string
		for _, n := range cl.Nodes() { // sorted by name
			if n.Virtual || c.Devices[n.Name] == nil {
				continue
			}
			out = append(out, n.Name)
		}
		return out
	}
	return nil
}

// Heartbeat refreshes every live device's registry status and lease at
// the current virtual time, then expires lapsed leases. MIRTO agents call
// this on their sensing cadence.
func (c *Continuum) Heartbeat() {
	now := int64(c.Engine.Now())
	for _, n := range c.names {
		d := c.Devices[n]
		if d.Failed() {
			continue // a dead device stops heartbeating; its lease lapses
		}
		if lease := c.leases[n]; lease != nil {
			c.Registry.Leases().KeepAlive(lease.ID, now) //nolint:errcheck
		}
		_, scale := d.DVFS()
		temp := d.ThermalStep(c.Engine.Now())
		c.Registry.UpdateStatus(kb.ComponentStatus{ //nolint:errcheck
			Name:        n,
			Ready:       true,
			CPUUsed:     d.Utilization(c.Engine.Now()) * float64(d.Spec().Cores),
			MemUsedMB:   d.Spec().MemMB - d.MemFree(),
			PowerWatts:  d.Spec().IdlePowerW + (d.Spec().MaxPowerW-d.Spec().IdlePowerW)*scale*d.Utilization(c.Engine.Now()),
			Temperature: temp,
			UpdatedAt:   now,
		})
	}
	c.Registry.Leases().Tick(now)
}

// FailDevice takes a device down across all views: the device model, its
// cluster node, and (by stopping heartbeats) the registry.
func (c *Continuum) FailDevice(name string) error {
	d, ok := c.Devices[name]
	if !ok {
		return fmt.Errorf("continuum: unknown device %s", name)
	}
	d.Fail()
	if cl, ok := c.ClusterFor(name); ok {
		cl.SetNodeReady(name, false) //nolint:errcheck
	}
	return nil
}

// RepairDevice brings a failed device back.
func (c *Continuum) RepairDevice(name string) error {
	d, ok := c.Devices[name]
	if !ok {
		return fmt.Errorf("continuum: unknown device %s", name)
	}
	d.Repair(c.Engine.Now())
	if cl, ok := c.ClusterFor(name); ok {
		cl.SetNodeReady(name, true) //nolint:errcheck
	}
	c.Heartbeat()
	return nil
}

// SyncPeerings reconciles all Liqo peerings (edge→fog before fog→cloud so
// offloads cascade downward in one call).
func (c *Continuum) SyncPeerings() error {
	for _, p := range c.Peerings {
		if !p.Active() {
			continue
		}
		if _, _, _, err := p.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Reconcile runs one full control-plane round: cluster controllers,
// peering sync, then controllers again so reflected failures reschedule.
func (c *Continuum) Reconcile() {
	for _, cl := range c.Layers() {
		cl.Reconcile()
	}
	c.SyncPeerings() //nolint:errcheck
	for _, cl := range c.Layers() {
		cl.Reconcile()
	}
}

// TotalEnergy integrates energy over all devices up to virtual now.
func (c *Continuum) TotalEnergy() float64 {
	total := 0.0
	for _, d := range c.Devices {
		total += d.Energy(c.Engine.Now())
	}
	return total
}

// DeviceNames returns all device names sorted.
func (c *Continuum) DeviceNames() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}
