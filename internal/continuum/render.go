package continuum

import (
	"fmt"
	"strings"
)

// RenderTopology draws the Fig. 2 layered infrastructure from the live
// instance: cloud on top, fog (FMDC + smart gateway) in the middle, the
// heterogeneous edge at the bottom, with the per-layer clusters and the
// shared KB annotated.
func (c *Continuum) RenderTopology() string {
	var b strings.Builder
	line := strings.Repeat("=", 76)
	fmt.Fprintln(&b, line)
	fmt.Fprintln(&b, "FIG. 2: MYRTUS layered computing continuum infrastructure (live instance)")
	fmt.Fprintln(&b, line)
	layer := func(title string, cl clusterView, kinds map[string]string) {
		fmt.Fprintf(&b, "%s  [cluster %q, %d nodes]\n", title, cl.name, len(cl.nodes))
		for _, n := range cl.nodes {
			d := c.Devices[n]
			if d == nil {
				fmt.Fprintf(&b, "    %-16s (virtual node -> %s)\n", n, kinds[n])
				continue
			}
			spec := d.Spec()
			extra := ""
			if spec.Fabric != nil {
				extra = fmt.Sprintf(" fpga[%d regions]", spec.Fabric.Regions())
			}
			if len(spec.CustomUnits) > 0 {
				extra += " custom-units"
			}
			status := ""
			if d.Failed() {
				status = " DOWN"
			}
			fmt.Fprintf(&b, "    %-16s %-12s %2d cores %6.0f MB  sec=%v%s%s\n",
				n, spec.Kind, spec.Cores, spec.MemMB, spec.SecurityLevels, extra, status)
		}
	}
	views := c.clusterViews()
	layer("CLOUD LAYER", views[2], c.virtualTargets())
	fmt.Fprintln(&b, "      |  (Liqo peering: fog sees cloud as virtual node)")
	layer("FOG LAYER  ", views[1], c.virtualTargets())
	fmt.Fprintln(&b, "      |  (Liqo peering: edge sees fog as virtual node; smart gateway is the data hub)")
	layer("EDGE LAYER ", views[0], c.virtualTargets())
	fmt.Fprintln(&b, line)
	fmt.Fprintf(&b, "Shared ontological KB: %d-replica, revision %d, %d registered components\n",
		c.opts.KBReplicas, c.KB.Revision(), len(c.Registry.List("")))
	fmt.Fprintf(&b, "Network: %d endpoints; broker at %s; virtual clock %v\n",
		len(c.Topo.Nodes()), c.Broker.Node(), c.Engine.Now())
	return b.String()
}

type clusterView struct {
	name  string
	nodes []string
}

func (c *Continuum) clusterViews() []clusterView {
	var out []clusterView
	for _, cl := range c.Layers() {
		v := clusterView{name: cl.Name()}
		for _, n := range cl.Nodes() {
			v.nodes = append(v.nodes, n.Name)
		}
		out = append(out, v)
	}
	return out
}

func (c *Continuum) virtualTargets() map[string]string {
	out := map[string]string{}
	for _, p := range c.Peerings {
		if p.Active() {
			out[p.VirtualNode()] = "remote cluster"
		}
	}
	return out
}

// Pillar is one of the three MYRTUS technical pillars (Fig. 1).
type Pillar struct {
	Number      int
	Name        string
	Description string
	Modules     []string
}

// Pillars regenerates the Fig. 1 pillar structure, mapped to the modules
// of this repository instead of consortium partners.
func Pillars() []Pillar {
	return []Pillar{
		{
			Number: 1, Name: "MYRTUS Computing Continuum Infrastructure",
			Description: "Key enabling technologies for horizontal and vertical composition and seamless execution of complex workloads",
			Modules: []string{
				"internal/device", "internal/fpga", "internal/network",
				"internal/cluster", "internal/liqo", "internal/kb",
				"internal/security", "internal/telemetry", "internal/continuum",
			},
		},
		{
			Number: 2, Name: "MIRTO Cognitive Engine",
			Description: "High-level orchestration for continuous optimization of performance, energy, security and trust across the continuum",
			Modules: []string{
				"internal/mirto", "internal/mapek", "internal/swarm", "internal/fl",
			},
		},
		{
			Number: 3, Name: "MYRTUS Design and Programming Environment",
			Description: "Interoperable model-based design: cross-layer modelling, threat analysis, DSE, component synthesis and code generation",
			Modules: []string{
				"internal/tosca", "internal/adt", "internal/mlir",
				"internal/dataflow", "internal/dse", "internal/dpe",
			},
		},
	}
}

// RenderPillars draws the Fig. 1 report.
func RenderPillars() string {
	var b strings.Builder
	fmt.Fprintln(&b, "FIG. 1: MYRTUS technical pillars (mapped to repository modules)")
	for _, p := range Pillars() {
		fmt.Fprintf(&b, "\nPILLAR %d: %s\n  %s\n  modules: %s\n",
			p.Number, p.Name, p.Description, strings.Join(p.Modules, ", "))
	}
	return b.String()
}
