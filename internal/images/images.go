// Package images implements the Container Image Registry and Repository
// the paper lists as an ongoing Pillar 1 activity (§VI): digest-addressed
// image storage "easily accessible by all layers" with the security
// guarantees it requires — access controls, signature verification, and
// image scanning. MIRTO's Workload Manager consults it before admitting
// a deployment whose components reference images.
package images

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Role is an access-control role.
type Role string

// Registry roles.
const (
	RolePush Role = "push" // may push and pull
	RolePull Role = "pull" // may only pull
)

// Finding is one scanner result.
type Finding struct {
	Severity string // "critical", "warning"
	Detail   string
}

// Scanner inspects image content before it becomes pullable.
type Scanner func(name string, blob []byte) []Finding

// DefaultScanner flags embedded test malware signatures and implausibly
// large images. (A stand-in for CVE scanning — the contract, not the
// database, is what the architecture needs.)
func DefaultScanner(name string, blob []byte) []Finding {
	var out []Finding
	if strings.Contains(string(blob), "MALWARE-TEST-SIGNATURE") {
		out = append(out, Finding{Severity: "critical", Detail: "known malware signature"})
	}
	if len(blob) > 64<<20 {
		out = append(out, Finding{Severity: "warning", Detail: "image exceeds 64 MiB edge budget"})
	}
	return out
}

// Verifier checks an image signature against a public key. It decouples
// the registry from the signing suite (any Table II level works).
type Verifier func(pub, payload, sig []byte) bool

// Manifest describes one stored image version.
type Manifest struct {
	Name      string
	Tag       string
	Digest    string // sha256 of the blob
	SizeBytes int
	SignedBy  []byte // signer public key ("" = unsigned)
	Findings  []Finding
}

// Quarantined reports whether the image is blocked from pulling.
func (m Manifest) Quarantined() bool {
	for _, f := range m.Findings {
		if f.Severity == "critical" {
			return true
		}
	}
	return false
}

// Registry is the image store.
type Registry struct {
	mu        sync.Mutex
	blobs     map[string][]byte   // digest → content
	manifests map[string]Manifest // "name:tag" → manifest
	tokens    map[string]Role
	scanner   Scanner
	verify    Verifier
}

// New returns a registry with the default scanner. verify may be nil to
// accept unsigned images.
func New(scanner Scanner, verify Verifier) *Registry {
	if scanner == nil {
		scanner = DefaultScanner
	}
	return &Registry{
		blobs:     map[string][]byte{},
		manifests: map[string]Manifest{},
		tokens:    map[string]Role{},
		scanner:   scanner,
		verify:    verify,
	}
}

// GrantToken registers an access token.
func (r *Registry) GrantToken(token string, role Role) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tokens[token] = role
}

func (r *Registry) roleOf(token string) (Role, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	role, ok := r.tokens[token]
	return role, ok
}

func ref(name, tag string) string { return name + ":" + tag }

// Push stores an image version. If the registry has a Verifier, a valid
// signature over the blob is mandatory. The blob is scanned; critical
// findings quarantine it (stored but not pullable).
func (r *Registry) Push(token, name, tag string, blob, signerPub, sig []byte) (Manifest, error) {
	role, ok := r.roleOf(token)
	if !ok || role != RolePush {
		return Manifest{}, fmt.Errorf("images: token lacks push access")
	}
	if name == "" || tag == "" || len(blob) == 0 {
		return Manifest{}, fmt.Errorf("images: push needs name, tag and content")
	}
	if r.verify != nil {
		if len(signerPub) == 0 || len(sig) == 0 {
			return Manifest{}, fmt.Errorf("images: registry requires signed images")
		}
		if !r.verify(signerPub, blob, sig) {
			return Manifest{}, fmt.Errorf("images: signature of %s does not verify", ref(name, tag))
		}
	}
	sum := sha256.Sum256(blob)
	digest := hex.EncodeToString(sum[:])
	m := Manifest{
		Name: name, Tag: tag, Digest: digest, SizeBytes: len(blob),
		SignedBy: append([]byte(nil), signerPub...),
		Findings: r.scanner(name, blob),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.blobs[digest] = append([]byte(nil), blob...)
	r.manifests[ref(name, tag)] = m
	return m, nil
}

// Pull retrieves an image. Quarantined images are refused; blob
// integrity is re-checked against the manifest digest.
func (r *Registry) Pull(token, name, tag string) ([]byte, Manifest, error) {
	if _, ok := r.roleOf(token); !ok {
		return nil, Manifest{}, fmt.Errorf("images: unknown token")
	}
	r.mu.Lock()
	m, ok := r.manifests[ref(name, tag)]
	var blob []byte
	if ok {
		blob = r.blobs[m.Digest]
	}
	r.mu.Unlock()
	if !ok {
		return nil, Manifest{}, fmt.Errorf("images: %s not found", ref(name, tag))
	}
	if m.Quarantined() {
		return nil, m, fmt.Errorf("images: %s is quarantined: %v", ref(name, tag), m.Findings)
	}
	sum := sha256.Sum256(blob)
	if hex.EncodeToString(sum[:]) != m.Digest {
		return nil, m, fmt.Errorf("images: %s blob corrupted (digest mismatch)", ref(name, tag))
	}
	return append([]byte(nil), blob...), m, nil
}

// Resolve returns the manifest without transferring the blob — what the
// Workload Manager uses for admission ("is this image pullable?").
func (r *Registry) Resolve(name, tag string) (Manifest, error) {
	r.mu.Lock()
	m, ok := r.manifests[ref(name, tag)]
	r.mu.Unlock()
	if !ok {
		return Manifest{}, fmt.Errorf("images: %s not found", ref(name, tag))
	}
	if m.Quarantined() {
		return m, fmt.Errorf("images: %s is quarantined", ref(name, tag))
	}
	return m, nil
}

// Tags lists stored tags of an image name, sorted.
func (r *Registry) Tags(name string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for k, m := range r.manifests {
		if m.Name == name {
			out = append(out, strings.TrimPrefix(k, name+":"))
		}
	}
	sort.Strings(out)
	return out
}

// Delete removes an image version; its blob is garbage-collected when no
// other tag references it.
func (r *Registry) Delete(token, name, tag string) error {
	role, ok := r.roleOf(token)
	if !ok || role != RolePush {
		return fmt.Errorf("images: token lacks push access")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.manifests[ref(name, tag)]
	if !ok {
		return fmt.Errorf("images: %s not found", ref(name, tag))
	}
	delete(r.manifests, ref(name, tag))
	inUse := false
	for _, other := range r.manifests {
		if other.Digest == m.Digest {
			inUse = true
			break
		}
	}
	if !inUse {
		delete(r.blobs, m.Digest)
	}
	return nil
}

// Len reports the number of stored manifests.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.manifests)
}
