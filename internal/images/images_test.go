package images

import (
	"strings"
	"testing"

	"myrtus/internal/security"
)

func openRegistry(t *testing.T) *Registry {
	t.Helper()
	r := New(nil, nil)
	r.GrantToken("dev", RolePush)
	r.GrantToken("node", RolePull)
	return r
}

func TestPushPullRoundTrip(t *testing.T) {
	r := openRegistry(t)
	blob := []byte("layer-data-v1")
	m, err := r.Push("dev", "detector", "v1", blob, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Digest == "" || m.SizeBytes != len(blob) || m.Quarantined() {
		t.Fatalf("manifest = %+v", m)
	}
	got, m2, err := r.Pull("node", "detector", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(blob) || m2.Digest != m.Digest {
		t.Fatal("pull mismatch")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
}

func TestAccessControl(t *testing.T) {
	r := openRegistry(t)
	if _, err := r.Push("node", "x", "v1", []byte("b"), nil, nil); err == nil {
		t.Fatal("pull token pushed")
	}
	if _, err := r.Push("ghost", "x", "v1", []byte("b"), nil, nil); err == nil {
		t.Fatal("unknown token pushed")
	}
	r.Push("dev", "x", "v1", []byte("b"), nil, nil) //nolint:errcheck
	if _, _, err := r.Pull("ghost", "x", "v1"); err == nil {
		t.Fatal("unknown token pulled")
	}
	if err := r.Delete("node", "x", "v1"); err == nil {
		t.Fatal("pull token deleted")
	}
}

func TestPushValidation(t *testing.T) {
	r := openRegistry(t)
	for _, c := range []struct{ name, tag, blob string }{
		{"", "v1", "b"}, {"x", "", "b"}, {"x", "v1", ""},
	} {
		if _, err := r.Push("dev", c.name, c.tag, []byte(c.blob), nil, nil); err == nil {
			t.Fatalf("bad push accepted: %+v", c)
		}
	}
}

func TestScanQuarantinesMalware(t *testing.T) {
	r := openRegistry(t)
	m, err := r.Push("dev", "evil", "latest", []byte("xx MALWARE-TEST-SIGNATURE xx"), nil, nil)
	if err != nil {
		t.Fatal(err) // push succeeds, image is quarantined
	}
	if !m.Quarantined() {
		t.Fatalf("not quarantined: %+v", m)
	}
	if _, _, err := r.Pull("node", "evil", "latest"); err == nil {
		t.Fatal("quarantined image pulled")
	}
	if _, err := r.Resolve("evil", "latest"); err == nil {
		t.Fatal("quarantined image resolved")
	}
}

func TestSignatureEnforcement(t *testing.T) {
	suite, err := security.SuiteFor(security.LevelLow)
	if err != nil {
		t.Fatal(err)
	}
	r := New(nil, suite.Verify)
	r.GrantToken("dev", RolePush)
	r.GrantToken("node", RolePull)
	blob := []byte("signed-layer")
	signer, err := suite.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	sig, err := signer.Sign(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Unsigned push refused.
	if _, err := r.Push("dev", "app", "v1", blob, nil, nil); err == nil {
		t.Fatal("unsigned image accepted by signing registry")
	}
	// Bad signature refused.
	bad := append([]byte(nil), sig...)
	bad[4] ^= 1
	if _, err := r.Push("dev", "app", "v1", blob, signer.PublicKey(), bad); err == nil {
		t.Fatal("bad signature accepted")
	}
	// Good signature accepted and recorded.
	m, err := r.Push("dev", "app", "v1", blob, signer.PublicKey(), sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SignedBy) == 0 {
		t.Fatal("signer not recorded")
	}
	if _, _, err := r.Pull("node", "app", "v1"); err != nil {
		t.Fatal(err)
	}
}

func TestTagsAndDelete(t *testing.T) {
	r := openRegistry(t)
	r.Push("dev", "app", "v1", []byte("one"), nil, nil)  //nolint:errcheck
	r.Push("dev", "app", "v2", []byte("two"), nil, nil)  //nolint:errcheck
	r.Push("dev", "app", "dup", []byte("one"), nil, nil) //nolint:errcheck // same blob as v1
	if tags := r.Tags("app"); len(tags) != 3 || tags[0] != "dup" {
		t.Fatalf("tags = %v", tags)
	}
	// Deleting v1 keeps the shared blob alive for dup.
	if err := r.Delete("dev", "app", "v1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Pull("node", "app", "dup"); err != nil {
		t.Fatalf("shared blob GC'd too early: %v", err)
	}
	if err := r.Delete("dev", "app", "dup"); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("dev", "app", "ghost"); err == nil {
		t.Fatal("ghost delete accepted")
	}
	if _, _, err := r.Pull("node", "app", "v1"); err == nil {
		t.Fatal("deleted image pulled")
	}
}

func TestCustomScanner(t *testing.T) {
	called := false
	scanner := func(name string, blob []byte) []Finding {
		called = true
		if strings.HasPrefix(name, "blocked/") {
			return []Finding{{Severity: "critical", Detail: "namespace policy"}}
		}
		return nil
	}
	r := New(scanner, nil)
	r.GrantToken("dev", RolePush)
	m, _ := r.Push("dev", "blocked/app", "v1", []byte("b"), nil, nil)
	if !called || !m.Quarantined() {
		t.Fatal("custom scanner not applied")
	}
}

func TestDefaultScannerSizeWarning(t *testing.T) {
	big := make([]byte, 65<<20)
	fs := DefaultScanner("huge", big)
	if len(fs) != 1 || fs[0].Severity != "warning" {
		t.Fatalf("findings = %v", fs)
	}
	// Warnings do not quarantine.
	if (Manifest{Findings: fs}).Quarantined() {
		t.Fatal("warning quarantined")
	}
}

func TestPullNotFound(t *testing.T) {
	r := openRegistry(t)
	if _, _, err := r.Pull("node", "nope", "v1"); err == nil {
		t.Fatal("missing image pulled")
	}
	if _, err := r.Resolve("nope", "v1"); err == nil {
		t.Fatal("missing image resolved")
	}
}
