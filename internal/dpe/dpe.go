// Package dpe implements the MYRTUS Design and Programming Environment —
// technical pillar 3 (Fig. 4). It drives the three steps the paper
// describes end-to-end:
//
//  1. continuum modeling, simulation and analysis: TOSCA service
//     template validation (Modelio role) plus Attack-Defence-Tree threat
//     analysis with countermeasure synthesis;
//  2. model to implementation: partitioning the application, importing
//     ML models (ONNX role) into the dfg dialect of the mini-MLIR;
//  3. node-level optimization and deployment: the compilation pipeline
//     (canonicalize, fusion, DCE, CGRA lowering), HLS estimation to
//     bitstreams with operating points, and mapping DSE.
//
// The output is the deployment specification — a CSAR carrying the TOSCA
// template and the design-time metadata (operating points, bitstream
// manifests, countermeasures) the MIRTO Cognitive Engine consumes at
// runtime, closing the Pillar 3 → Pillar 2 interface.
package dpe

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"myrtus/internal/adt"
	"myrtus/internal/dse"
	"myrtus/internal/fpga"
	"myrtus/internal/mlir"
	"myrtus/internal/sim"
	"myrtus/internal/tosca"
)

// Project is the designer's input to the DPE.
type Project struct {
	Name     string
	Template *tosca.ServiceTemplate
	// Threats optionally models the system's attack surface (step 1).
	Threats *adt.Tree
	// DefenceBudget bounds countermeasure synthesis cost.
	DefenceBudget float64
	// Models maps accelerated template nodes to their ML models (step 2).
	Models map[string]*mlir.Model
	// Platform optionally drives mapping DSE (step 3); nil skips it.
	Platform *dse.Platform
	// CGRAPEs sizes the CGRA lowering grid (0 skips CGRA lowering).
	CGRAPEs int
}

// BitstreamManifest describes one synthesized accelerator artifact with
// enough detail to reconstruct the loadable bitstream on the runtime
// side of the Pillar 3 → Pillar 2 interface.
type BitstreamManifest struct {
	ID         string          `json:"id"`
	Kernel     string          `json:"kernel"`
	AreaUnits  int             `json:"areaUnits"`
	ReconfigNs int64           `json:"reconfigNs"`
	Points     []PointManifest `json:"operatingPoints"`
	ForNode    string          `json:"templateNode"`
}

// PointManifest is one serialized operating point.
type PointManifest struct {
	Name        string  `json:"name"`
	ClockMHz    float64 `json:"clockMHz"`
	Parallelism int     `json:"parallelism"`
	LatencyNs   int64   `json:"latencyPerItemNs"`
	PowerWatts  float64 `json:"powerWatts"`
}

// Bitstream reconstructs the loadable artifact from the manifest.
func (m BitstreamManifest) Bitstream() *fpga.Bitstream {
	bs := &fpga.Bitstream{
		ID: m.ID, Kernel: m.Kernel, AreaUnits: m.AreaUnits,
		ReconfigTime: sim.Time(m.ReconfigNs),
	}
	for _, p := range m.Points {
		bs.Points = append(bs.Points, fpga.OperatingPoint{
			Name: p.Name, ClockMHz: p.ClockMHz, Parallelism: p.Parallelism,
			LatencyPerItem: sim.Time(p.LatencyNs), PowerWatts: p.PowerWatts,
		})
	}
	return bs
}

func manifestOf(bs *fpga.Bitstream, forNode string) BitstreamManifest {
	m := BitstreamManifest{
		ID: bs.ID, Kernel: bs.Kernel, AreaUnits: bs.AreaUnits,
		ReconfigNs: int64(bs.ReconfigTime), ForNode: forNode,
	}
	for _, p := range bs.Points {
		m.Points = append(m.Points, PointManifest{
			Name: p.Name, ClockMHz: p.ClockMHz, Parallelism: p.Parallelism,
			LatencyNs: int64(p.LatencyPerItem), PowerWatts: p.PowerWatts,
		})
	}
	return m
}

// Result is the DPE build output.
type Result struct {
	CSAR       *tosca.CSAR
	Bitstreams []*fpga.Bitstream
	Manifests  []BitstreamManifest
	// Synthesis records the threat countermeasures applied (step 1).
	Synthesis adt.Synthesis
	// MappingPoints are the DSE operating points ([29][30] metadata).
	MappingPoints []dse.OperatingPoint
	// KPIWarnings lists latency policies the reference platform cannot
	// meet even at the fastest Pareto point (design-time KPI estimation).
	KPIWarnings []string
	// Report is the human-readable pipeline trace.
	Report string
}

// Build runs the full DPE flow.
func Build(p *Project) (*Result, error) {
	if p == nil || p.Template == nil {
		return nil, fmt.Errorf("dpe: project needs a template")
	}
	if p.Name == "" {
		p.Name = p.Template.Name
	}
	var report strings.Builder
	fmt.Fprintf(&report, "MYRTUS DPE build: %s\n", p.Name)
	res := &Result{}

	// ---- Step 1: modeling, simulation and analysis -------------------
	if err := tosca.Validate(p.Template); err != nil {
		return nil, fmt.Errorf("dpe: step 1 (validation): %w", err)
	}
	fmt.Fprintf(&report, "step 1: template %q valid (%d components, %d policies)\n",
		p.Template.Name, len(p.Template.Nodes), len(p.Template.Policies))
	if p.Threats != nil {
		if err := p.Threats.Validate(); err != nil {
			return nil, fmt.Errorf("dpe: step 1 (threat model): %w", err)
		}
		res.Synthesis = p.Threats.Synthesize(adt.StandardLibrary(), p.DefenceBudget)
		fmt.Fprintf(&report, "step 1: threat analysis P(attack) %.3f -> %.3f with %d countermeasures (budget %.1f/%.1f)\n",
			res.Synthesis.Before, res.Synthesis.After, len(res.Synthesis.Applied),
			res.Synthesis.SpentBudget, p.DefenceBudget)
	}

	// ---- Step 2 + 3: model to implementation, node-level flow --------
	var nodeNames []string
	for n := range p.Models {
		nodeNames = append(nodeNames, n)
	}
	sort.Strings(nodeNames)
	for _, nodeName := range nodeNames {
		model := p.Models[nodeName]
		nt, ok := p.Template.Nodes[nodeName]
		if !ok {
			return nil, fmt.Errorf("dpe: model for unknown template node %q", nodeName)
		}
		if nt.Type != tosca.TypeAcceleratedKernel {
			return nil, fmt.Errorf("dpe: node %q carries a model but is not an AcceleratedKernel", nodeName)
		}
		mod := mlir.NewModule(p.Name + "-" + nodeName)
		if _, err := mlir.Import(model, mod); err != nil {
			return nil, fmt.Errorf("dpe: step 2 (import %s): %w", nodeName, err)
		}
		pm := &mlir.PassManager{}
		pm.AddPass(mlir.NewCanonicalizePass())
		fuse := mlir.NewFuseDFGPass()
		pm.AddPass(fuse)
		pm.AddPass(mlir.NewDCEPass())
		var lower *mlir.LowerToCGRAPass
		if p.CGRAPEs > 0 {
			lower = mlir.NewLowerToCGRAPass(p.CGRAPEs)
			pm.AddPass(lower)
		}
		if err := pm.Run(mod); err != nil {
			return nil, fmt.Errorf("dpe: step 3 (pipeline %s): %w", nodeName, err)
		}
		hls, err := mlir.EstimateHLS(mod, mlir.DefaultHLSOptions())
		if err != nil {
			return nil, fmt.Errorf("dpe: step 3 (HLS %s): %w", nodeName, err)
		}
		// The bitstream accelerates the template node's kernel.
		hls.Bitstream.Kernel = nt.PropString("kernel", hls.Bitstream.Kernel)
		res.Bitstreams = append(res.Bitstreams, hls.Bitstream)
		res.Manifests = append(res.Manifests, manifestOf(hls.Bitstream, nodeName))
		fmt.Fprintf(&report, "step 2: %s model %q imported (%d layers, %d fused)\n",
			nodeName, model.Name, len(model.Layers), fuse.Fused)
		fmt.Fprintf(&report, "step 3: %s\n", indent(hls.Report, "  "))
		if lower != nil {
			fmt.Fprintf(&report, "step 3: %s CGRA makespan %.3f GOps over %d PEs\n",
				nodeName, lower.Makespan(mod), p.CGRAPEs)
		}
	}

	// Mapping DSE over the whole application (step 3, Mocasin role).
	if p.Platform != nil {
		tg := templateTaskGraph(p.Template)
		front, err := dse.ExploreGA(tg, p.Platform, dse.DefaultGAOptions())
		if err != nil {
			return nil, fmt.Errorf("dpe: step 3 (DSE): %w", err)
		}
		res.MappingPoints = dse.ExportOperatingPoints(tg, front)
		fmt.Fprintf(&report, "step 3: mapping DSE found %d Pareto points\n", len(res.MappingPoints))

		// Design-time KPI estimation (step 1's "model-based KPIs
		// estimation", checked here where the mapping data exists): the
		// best achievable latency on the reference platform is compared
		// against every Latency policy; unreachable targets surface to the
		// designer before anything is deployed.
		res.KPIWarnings = checkLatencyPolicies(p.Template, res.MappingPoints)
		for _, w := range res.KPIWarnings {
			fmt.Fprintf(&report, "step 1 KPI check: %s\n", w)
		}
		if len(res.KPIWarnings) == 0 && len(p.Template.Policies) > 0 {
			fmt.Fprintf(&report, "step 1 KPI check: all latency policies achievable on %s\n", p.Platform.Name)
		}
	}

	// ---- Deployment specification (Pillar 3 → Pillar 2) --------------
	csar := tosca.NewCSAR(p.Template)
	if len(res.Manifests) > 0 {
		data, err := json.MarshalIndent(res.Manifests, "", "  ")
		if err != nil {
			return nil, err
		}
		csar.AddArtifact("artifacts/bitstreams.json", data)
	}
	if len(res.MappingPoints) > 0 {
		data, err := json.MarshalIndent(res.MappingPoints, "", "  ")
		if err != nil {
			return nil, err
		}
		csar.AddArtifact("artifacts/oppoints.json", data)
	}
	if p.Threats != nil {
		csar.AddArtifact("artifacts/countermeasures.txt", []byte(renderSynthesis(res.Synthesis)))
		csar.AddArtifact("artifacts/threat-model.txt", []byte(p.Threats.Render()))
	}
	res.Report = report.String()
	csar.AddArtifact("reports/pipeline.txt", []byte(res.Report))
	res.CSAR = csar
	return res, nil
}

// checkLatencyPolicies compares each Latency policy's maxMs against the
// best (fastest) mapping point's end-to-end latency.
func checkLatencyPolicies(st *tosca.ServiceTemplate, points []dse.OperatingPoint) []string {
	if len(points) == 0 {
		return nil
	}
	best := points[0].LatencyMs
	for _, pt := range points[1:] {
		if pt.LatencyMs < best {
			best = pt.LatencyMs
		}
	}
	var out []string
	for _, pol := range st.Policies {
		if pol.Type != tosca.PolicyLatency {
			continue
		}
		maxMs := propFloatAttr(pol.Properties, "maxMs")
		if maxMs > 0 && best > maxMs {
			out = append(out, fmt.Sprintf(
				"latency policy %q demands %.0f ms but the fastest mapping achieves %.1f ms",
				pol.Name, maxMs, best))
		}
	}
	return out
}

func propFloatAttr(m map[string]any, key string) float64 {
	switch v := m[key].(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	default:
		return 0
	}
}

// templateTaskGraph derives a DSE task graph from the service template.
func templateTaskGraph(st *tosca.ServiceTemplate) *dse.TaskGraph {
	g := &dse.TaskGraph{Name: st.Name}
	for _, name := range st.NodeNames() {
		nt := st.Nodes[name]
		g.Tasks = append(g.Tasks, dse.Task{
			Name: name, GOps: nt.PropFloat("gops", 1), Kernel: nt.PropString("kernel", ""),
		})
		for _, r := range nt.Requirements {
			g.Edges = append(g.Edges, dse.Edge{
				Src: r.Target, Dst: name, DataMB: st.Nodes[r.Target].PropFloat("outMB", 0.1),
			})
		}
	}
	return g
}

func renderSynthesis(s adt.Synthesis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "threat countermeasures (P %.3f -> %.3f, budget spent %.1f)\n", s.Before, s.After, s.SpentBudget)
	for _, a := range s.Applied {
		fmt.Fprintf(&b, "  %s on %s (risk -%.4f)\n", a.Countermeasure, a.Leaf, a.RiskReduction)
	}
	return b.String()
}

func indent(s, prefix string) string {
	return strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n"+prefix)
}

// LoadResult re-reads a deployment specification CSAR (the MIRTO side of
// the Pillar 3 → Pillar 2 interface) and returns the template plus the
// parsed artifacts.
func LoadResult(data []byte) (*tosca.ServiceTemplate, []BitstreamManifest, []dse.OperatingPoint, error) {
	csar, err := tosca.ReadCSAR(data)
	if err != nil {
		return nil, nil, nil, err
	}
	st, err := csar.Template()
	if err != nil {
		return nil, nil, nil, err
	}
	var manifests []BitstreamManifest
	if raw, ok := csar.Files["artifacts/bitstreams.json"]; ok {
		if err := json.Unmarshal(raw, &manifests); err != nil {
			return nil, nil, nil, fmt.Errorf("dpe: bad bitstream manifest: %w", err)
		}
	}
	var points []dse.OperatingPoint
	if raw, ok := csar.Files["artifacts/oppoints.json"]; ok {
		if err := json.Unmarshal(raw, &points); err != nil {
			return nil, nil, nil, fmt.Errorf("dpe: bad operating points: %w", err)
		}
	}
	return st, manifests, points, nil
}
