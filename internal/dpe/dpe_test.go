package dpe

import (
	"strings"
	"testing"

	"myrtus/internal/adt"
	"myrtus/internal/dse"
	"myrtus/internal/mlir"
	"myrtus/internal/tosca"
)

const projYAML = `
tosca_definitions_version: tosca_2_0
metadata:
  template_name: telerehab
topology_template:
  node_templates:
    sensor:
      type: myrtus.nodes.Container
      properties: {cpu: 0.5, memoryMB: 128, gops: 0.2, outMB: 1.5}
    pose:
      type: myrtus.nodes.AcceleratedKernel
      properties: {cpu: 1, memoryMB: 1024, kernel: pose-estimation, gops: 8, outMB: 0.1}
      requirements:
        - source: sensor
    therapist-ui:
      type: myrtus.nodes.Container
      properties: {cpu: 1, memoryMB: 512, gops: 0.5}
      requirements:
        - source: pose
`

func project(t *testing.T) *Project {
	t.Helper()
	st, err := tosca.Parse(projYAML)
	if err != nil {
		t.Fatal(err)
	}
	model := &mlir.Model{Name: "pose-net"}
	model.Conv("c1", "", 64, 64, 3, 8, 3)
	model.Relu("r1", "c1", 64*64*8)
	model.Conv("c2", "r1", 32, 32, 8, 16, 3)
	model.Relu("r2", "c2", 32*32*16)
	model.Gemm("fc", "r2", 4096, 34)
	threats := &adt.Tree{
		Name: "patient-data-exfiltration",
		Root: &adt.Node{
			Name: "exfiltrate", Gate: adt.Or,
			Children: []*adt.Node{
				{Name: "sniff-stream", Gate: adt.Leaf, Prob: 0.4, Cost: 3, Tags: []string{"network"}},
				{Name: "dump-storage", Gate: adt.Leaf, Prob: 0.3, Cost: 5, Tags: []string{"storage"}},
			},
		},
	}
	return &Project{
		Name:          "telerehab",
		Template:      st,
		Threats:       threats,
		DefenceBudget: 6,
		Models:        map[string]*mlir.Model{"pose": model},
		Platform: &dse.Platform{
			Name: "edge-soc",
			PEs: []dse.PE{
				{Name: "cpu", GOPS: 8, PowerW: 4},
				{Name: "fpga", GOPS: 4, PowerW: 2, Accel: map[string]float64{"pose-estimation": 12}},
			},
			BandwidthMBps: 500, CommEnergyPerMB: 0.02,
		},
		CGRAPEs: 4,
	}
}

func TestBuildFullFlow(t *testing.T) {
	res, err := Build(project(t))
	if err != nil {
		t.Fatal(err)
	}
	// Step 1: threats mitigated.
	if res.Synthesis.After >= res.Synthesis.Before {
		t.Fatal("no threat mitigation")
	}
	// Step 3: one bitstream for the pose kernel with ordered points.
	if len(res.Bitstreams) != 1 || res.Bitstreams[0].Kernel != "pose-estimation" {
		t.Fatalf("bitstreams = %+v", res.Bitstreams)
	}
	if len(res.Manifests) != 1 || res.Manifests[0].ForNode != "pose" {
		t.Fatalf("manifests = %+v", res.Manifests)
	}
	if len(res.MappingPoints) == 0 {
		t.Fatal("no DSE points")
	}
	// CSAR carries everything.
	for _, path := range []string{
		"definitions/service.yaml", "artifacts/bitstreams.json",
		"artifacts/oppoints.json", "artifacts/countermeasures.txt",
		"artifacts/threat-model.txt", "reports/pipeline.txt",
		"TOSCA-Metadata/TOSCA.meta",
	} {
		if _, ok := res.CSAR.Files[path]; !ok {
			t.Fatalf("csar missing %s (has %v)", path, res.CSAR.Paths())
		}
	}
	for _, want := range []string{"step 1", "step 2", "step 3", "HLS estimate", "CGRA makespan", "Pareto points"} {
		if !strings.Contains(res.Report, want) {
			t.Fatalf("report missing %q:\n%s", want, res.Report)
		}
	}
}

func TestBuildRoundTripsThroughCSAR(t *testing.T) {
	res, err := Build(project(t))
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.CSAR.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	st, manifests, points, err := LoadResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Nodes) != 3 {
		t.Fatalf("template nodes = %d", len(st.Nodes))
	}
	if len(manifests) != 1 || manifests[0].Kernel != "pose-estimation" {
		t.Fatalf("manifests = %+v", manifests)
	}
	if len(points) != len(res.MappingPoints) {
		t.Fatalf("points = %d vs %d", len(points), len(res.MappingPoints))
	}
	if err := tosca.Validate(st); err != nil {
		t.Fatal(err)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Fatal("nil project accepted")
	}
	if _, err := Build(&Project{}); err == nil {
		t.Fatal("template-less project accepted")
	}
	p := project(t)
	p.Models["ghost"] = &mlir.Model{Name: "x", Layers: []mlir.Layer{{Name: "l", Kernel: "k", GOps: 1}}}
	if _, err := Build(p); err == nil {
		t.Fatal("model for unknown node accepted")
	}
	p2 := project(t)
	p2.Models = map[string]*mlir.Model{"sensor": p2.Models["pose"]}
	if _, err := Build(p2); err == nil {
		t.Fatal("model on non-accelerated node accepted")
	}
	p3 := project(t)
	p3.Threats = &adt.Tree{Name: "broken"}
	if _, err := Build(p3); err == nil {
		t.Fatal("broken threat model accepted")
	}
	p4 := project(t)
	p4.Template.Nodes["sensor"].Properties["cpu"] = int64(-1)
	if _, err := Build(p4); err == nil {
		t.Fatal("invalid template accepted")
	}
}

func TestBuildWithoutOptionalParts(t *testing.T) {
	st, _ := tosca.Parse(projYAML)
	res, err := Build(&Project{Name: "minimal", Template: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bitstreams) != 0 || len(res.MappingPoints) != 0 {
		t.Fatal("unexpected artifacts")
	}
	if _, ok := res.CSAR.Files["artifacts/bitstreams.json"]; ok {
		t.Fatal("empty manifest written")
	}
	if _, ok := res.CSAR.Files["reports/pipeline.txt"]; !ok {
		t.Fatal("missing report")
	}
}

func TestTemplateTaskGraph(t *testing.T) {
	st, _ := tosca.Parse(projYAML)
	g := templateTaskGraph(st)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Tasks) != 3 || len(g.Edges) != 2 {
		t.Fatalf("graph = %d tasks %d edges", len(g.Tasks), len(g.Edges))
	}
}

func TestDesignTimeKPICheck(t *testing.T) {
	p := project(t)
	// An achievable latency policy produces no warning.
	p.Template.Policies = append(p.Template.Policies, tosca.Policy{
		Name: "generous", Type: tosca.PolicyLatency,
		Targets:    []string{"pose"},
		Properties: map[string]any{"maxMs": float64(1e9)},
	})
	res, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.KPIWarnings) != 0 {
		t.Fatalf("unexpected warnings: %v", res.KPIWarnings)
	}
	if !strings.Contains(res.Report, "all latency policies achievable") {
		t.Fatalf("report missing KPI confirmation:\n%s", res.Report)
	}
	// An impossible policy is flagged at design time.
	p2 := project(t)
	p2.Template.Policies = append(p2.Template.Policies, tosca.Policy{
		Name: "impossible", Type: tosca.PolicyLatency,
		Targets:    []string{"pose"},
		Properties: map[string]any{"maxMs": float64(0.000001)},
	})
	res2, err := Build(p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.KPIWarnings) != 1 || !strings.Contains(res2.KPIWarnings[0], "impossible") {
		t.Fatalf("warnings = %v", res2.KPIWarnings)
	}
	if !strings.Contains(res2.Report, "KPI check") {
		t.Fatalf("report missing KPI check:\n%s", res2.Report)
	}
}

func TestManifestBitstreamRoundTrip(t *testing.T) {
	res, err := Build(project(t))
	if err != nil {
		t.Fatal(err)
	}
	orig := res.Bitstreams[0]
	re := res.Manifests[0].Bitstream()
	if err := re.Validate(); err != nil {
		t.Fatal(err)
	}
	if re.ID != orig.ID || re.Kernel != orig.Kernel || re.AreaUnits != orig.AreaUnits ||
		re.ReconfigTime != orig.ReconfigTime || len(re.Points) != len(orig.Points) {
		t.Fatalf("reconstructed bitstream differs: %+v vs %+v", re, orig)
	}
	for i := range re.Points {
		if re.Points[i] != orig.Points[i] {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestLoadResultCorruptArtifacts(t *testing.T) {
	res, err := Build(project(t))
	if err != nil {
		t.Fatal(err)
	}
	res.CSAR.AddArtifact("artifacts/oppoints.json", []byte("not json"))
	data, _ := res.CSAR.Bytes()
	if _, _, _, err := LoadResult(data); err == nil {
		t.Fatal("corrupt oppoints accepted")
	}
	res2, _ := Build(project(t))
	res2.CSAR.AddArtifact("artifacts/bitstreams.json", []byte("broken"))
	data2, _ := res2.CSAR.Bytes()
	if _, _, _, err := LoadResult(data2); err == nil {
		t.Fatal("corrupt manifests accepted")
	}
	if _, _, _, err := LoadResult([]byte("junk")); err == nil {
		t.Fatal("junk accepted")
	}
}
