package tenant

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"myrtus/internal/mirto"
	"myrtus/internal/sim"
)

// drrShares runs the DRR property experiment: tenant "a" offers ten
// times tenant "b"'s load against a dispatch capacity of one item per
// tick, and the dispatched shares must track the weights, not the
// offered ratio.
func drrShares(t *testing.T, wa, wb float64, rounds int) (shareA, shareB float64) {
	t.Helper()
	s := NewScheduler(16)
	s.AddTenant("a", wa)
	s.AddTenant("b", wb)
	for i := 0; i < rounds; i++ {
		// 10:1 offered load; the bounded queues absorb what fairness
		// refuses and overflow the rest.
		for j := 0; j < 10; j++ {
			s.Enqueue("a", 1, i*10+j)
		}
		s.Enqueue("b", 1, i)
		if _, ok := s.Next(); !ok {
			t.Fatalf("round %d: scheduler empty despite offered load", i)
		}
	}
	total := float64(s.Dispatched("a") + s.Dispatched("b"))
	if total == 0 {
		t.Fatal("nothing dispatched")
	}
	return float64(s.Dispatched("a")) / total, float64(s.Dispatched("b")) / total
}

// TestDRRFairnessProperty: with equal weights and a 10:1 offered-load
// imbalance, dispatch shares stay within ±5% of 50/50.
func TestDRRFairnessProperty(t *testing.T) {
	shareA, shareB := drrShares(t, 1, 1, 4000)
	if math.Abs(shareA-0.5) > 0.05 || math.Abs(shareB-0.5) > 0.05 {
		t.Fatalf("equal-weight shares diverged from 50/50: a=%.3f b=%.3f", shareA, shareB)
	}
}

// TestDRRWeightedShares: weights 3:1 yield 75/25 within ±5% under the
// same 10:1 offered imbalance.
func TestDRRWeightedShares(t *testing.T) {
	shareA, shareB := drrShares(t, 3, 1, 4000)
	if math.Abs(shareA-0.75) > 0.05 || math.Abs(shareB-0.25) > 0.05 {
		t.Fatalf("3:1-weight shares diverged from 75/25: a=%.3f b=%.3f", shareA, shareB)
	}
}

// TestDRRWorkConserving: an idle tenant's share flows to the busy one
// instead of going unused.
func TestDRRWorkConserving(t *testing.T) {
	s := NewScheduler(16)
	s.AddTenant("a", 1)
	s.AddTenant("b", 1)
	for j := 0; j < 10; j++ {
		s.Enqueue("a", 1, j)
	}
	for j := 0; j < 10; j++ {
		if _, ok := s.Next(); !ok {
			t.Fatalf("dispatch %d: empty with tenant a backlogged", j)
		}
	}
	if got := s.Dispatched("a"); got != 10 {
		t.Fatalf("busy tenant dispatched %d of 10 with the other idle", got)
	}
}

func TestRegistryValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRegistry(eng, 100)
	if _, err := r.Register("Bad_ID", mirto.PriorityLow, Quota{AdmissionShare: 0.1}, SLO{}); err == nil {
		t.Fatal("invalid tenant ID accepted")
	}
	if _, err := r.Register("ok", mirto.PriorityLow, Quota{AdmissionShare: 0}, SLO{}); err == nil {
		t.Fatal("zero admission share accepted")
	}
	if _, err := r.Register("t1", mirto.PriorityLow, Quota{AdmissionShare: 0.6}, SLO{}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Register("t1", mirto.PriorityLow, Quota{AdmissionShare: 0.1}, SLO{}); err == nil {
		t.Fatal("duplicate tenant accepted")
	}
	// Shares must partition, not oversubscribe, the platform rate.
	if _, err := r.Register("t2", mirto.PriorityLow, Quota{AdmissionShare: 0.5}, SLO{}); err == nil {
		t.Fatal("oversubscribed shares accepted")
	}
	if _, err := r.Register("t2", mirto.PriorityLow, Quota{AdmissionShare: 0.4}, SLO{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryQuotaCharging(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRegistry(eng, 100)
	tn, err := r.Register("capped", mirto.PriorityLow,
		Quota{AdmissionShare: 0.5, CPUCores: 4, MemMB: 1024}, SLO{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.BindApp("app-1", "capped", 3, 512); err != nil {
		t.Fatal(err)
	}
	if err := r.BindApp("app-2", "capped", 2, 128); err == nil {
		t.Fatal("CPU quota breach accepted")
	}
	if err := r.BindApp("app-2", "capped", 1, 1024); err == nil {
		t.Fatal("memory quota breach accepted")
	}
	if err := r.BindApp("app-2", "capped", 1, 512); err != nil {
		t.Fatal(err)
	}
	r.UnbindApp("app-1")
	if cpu, mem := tn.Used(); cpu != 1 || mem != 512 {
		t.Fatalf("unbind did not refund quota: cpu=%v mem=%v", cpu, mem)
	}
	if _, ok := r.TenantOf("app-1"); ok {
		t.Fatal("unbound app still resolves")
	}
}

// TestTenantChurnDuringReplans exercises the registry and scheduler
// locks under -race: goroutine packs churn synthetic tenants
// (register/bind/enqueue/unregister) and hammer the read paths while,
// between bursts, the main goroutine drives real traffic and MAPE-K
// iterations (which replan) through a live mixed-tenant system. The
// simulation engine itself is single-threaded by design, so engine
// advancement stays on the main goroutine; everything the tenant layer
// owns must tolerate the concurrency.
func TestTenantChurnDuringReplans(t *testing.T) {
	specs := tenantSpecsForTest()
	capacity, deadline, err := Calibrate(7, specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := BuildSystem(7, specs, true, capacity, deadline)
	if err != nil {
		t.Fatal(err)
	}
	eng := s.C.Engine
	app := s.Apps["alpha"][0]

	for round := 0; round < 4; round++ {
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				id := fmt.Sprintf("churn-%d", g)
				for i := 0; i < 40; i++ {
					tn, err := s.Reg.Register(id, mirto.PriorityLow,
						Quota{AdmissionShare: 0.01, Weight: 1}, SLO{})
					if err != nil {
						continue
					}
					s.Disp.AddTenant(tn)
					s.Reg.BindApp(fmt.Sprintf("%s-app", id), id, 1, 64) //nolint:errcheck
					s.Disp.Scheduler().Enqueue(id, 1, i)
					s.Reg.UnbindApp(fmt.Sprintf("%s-app", id))
					s.Disp.RemoveTenant(id)
					s.Reg.Unregister(id) //nolint:errcheck
				}
			}(g)
		}
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					s.Reg.List()
					s.Reg.TenantOf(app)
					s.Disp.Dispatched("alpha")
					s.Disp.Scheduler().Backlog()
				}
			}()
		}
		wg.Wait()

		// Single-threaded phase: serve traffic and iterate the MAPE-K
		// loops (replans included) against whatever the churn left behind.
		for i := 0; i < 30; i++ {
			s.Submit(app, 4, nil) //nolint:errcheck
			eng.RunFor(20 * sim.Millisecond)
		}
		s.Tick()
		eng.Run()
	}

	// The real tenant must have survived the churn intact.
	if _, ok := s.Reg.Get("alpha"); !ok {
		t.Fatal("tenant alpha lost during churn")
	}
	if tn, _ := s.Reg.Get("alpha"); tn != nil {
		if _, ok := s.Reg.TenantOf(app); !ok {
			t.Fatal("app binding lost during churn")
		}
	}
}

func tenantSpecsForTest() []Spec {
	app := func(name string) string {
		return fmt.Sprintf(`
tosca_definitions_version: tosca_2_0
metadata:
  template_name: %s
topology_template:
  node_templates:
    src:
      type: myrtus.nodes.Container
      properties: {cpu: 0.5, memoryMB: 128, gops: 0.2, outMB: 0.1, inMB: 0.2}
    sink:
      type: myrtus.nodes.Container
      properties: {cpu: 1, memoryMB: 256, gops: 1, outMB: 0.01}
      requirements:
        - source: src
`, name)
	}
	return []Spec{
		{ID: "alpha", Class: mirto.PriorityMedium,
			Quota: Quota{AdmissionShare: 0.4, Weight: 1}, Apps: []string{app("alpha-app")}},
		{ID: "beta", Class: mirto.PriorityLow,
			Quota: Quota{AdmissionShare: 0.4, Weight: 1}, Apps: []string{app("beta-app")}},
	}
}
