// Package tenant turns the single-operator continuum into a shared
// platform: multiple stakeholders (the MYRTUS pilots' smart-city
// operators, AI-on-demand customers, in-vehicle fleets) deploy
// applications onto one device/fabric substrate, and the platform must
// keep them isolated. Each tenant carries a priority class, CPU/memory
// placement quotas, a fabric-bandwidth budget, and an admission share —
// a carve-out of the platform's token-bucket rate, so one tenant's
// flash crowd exhausts its own budget instead of the shared bucket. A
// deficit-round-robin scheduler (see drr.go) arbitrates dispatch slots
// across per-tenant bounded queues so backlog, like admission, is
// per-tenant. Everything advances on the simulation clock; given a
// seed, admission, dispatch, and shed decisions are deterministic.
package tenant

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"myrtus/internal/mirto"
	"myrtus/internal/sim"
	"myrtus/internal/telemetry"
	"myrtus/internal/tosca"
)

// ErrNoTenant marks a submit for an app no tenant has claimed.
var ErrNoTenant = errors.New("tenant: app not bound to a tenant")

// ErrTenantRemoved fails queued work whose tenant was unregistered
// before dispatch.
var ErrTenantRemoved = errors.New("tenant: tenant unregistered")

// Quota is a tenant's resource envelope.
type Quota struct {
	// CPUCores / MemMB cap the summed declared demand of the tenant's
	// deployed templates (0 = unlimited). They are checked at bind time:
	// placement capacity is still arbitrated per-device by the Manager,
	// but a tenant cannot claim more of the continuum than it bought.
	CPUCores float64
	MemMB    float64
	// FabricMBps budgets the tenant's ingress data volume: a token
	// bucket over the per-request input megabytes (0 = unlimited).
	FabricMBps float64
	// AdmissionShare is the fraction of the platform admission rate
	// carved out for this tenant (required, (0,1]). Shares across
	// tenants may not exceed 1: the whole point is that the budgets
	// partition the measured capacity.
	AdmissionShare float64
	// Weight is the tenant's deficit-round-robin dispatch weight
	// (default 1): when dispatch slots are contended, tenants drain
	// their queues in proportion to Weight.
	Weight float64
}

// SLO is the per-tenant objective the isolation gate checks.
type SLO struct {
	// MinGoodputFrac is the fraction of submitted requests that must
	// complete within the experiment deadline (default 0.9).
	MinGoodputFrac float64
	// P95SloMult bounds the tenant's p95 latency relative to its solo
	// baseline (default 1.5).
	P95SloMult float64
}

func (s SLO) withDefaults() SLO {
	if s.MinGoodputFrac <= 0 {
		s.MinGoodputFrac = 0.9
	}
	if s.P95SloMult <= 0 {
		s.P95SloMult = 1.5
	}
	return s
}

// Tenant is one registered stakeholder. All mutable state is guarded
// by the owning Registry's lock.
type Tenant struct {
	ID    string
	Class mirto.Priority
	Quota Quota
	SLO   SLO

	reg     *Registry
	adm     *mirto.AdmissionController
	metrics *telemetry.Registry
	apps    map[string]appDemand

	usedCPU float64
	usedMem float64

	// Fabric-bandwidth token bucket (virtual-time refill, burst = 1s
	// of budget). Zero FabricMBps disables it.
	fabricTokens float64
	fabricLast   sim.Time
}

type appDemand struct{ cpu, mem float64 }

// Admission is the tenant's carved-out admission controller: rate =
// AdmissionShare x platform rate, with the same Table II priority
// reserves as the shared controller. Wire it into the runtime with
// Runtime.SetAppAdmission for each of the tenant's apps.
func (t *Tenant) Admission() *mirto.AdmissionController { return t.adm }

// Metrics is the tenant's telemetry registry. The dispatcher records
// latency_ms, requests_ok/failed/good, and the admission controller's
// shed_high/shed_med/shed_low land here via BindMetrics.
func (t *Tenant) Metrics() *telemetry.Registry { return t.metrics }

// Apps lists the tenant's bound app names, sorted.
func (t *Tenant) Apps() []string {
	t.reg.mu.Lock()
	defer t.reg.mu.Unlock()
	out := make([]string, 0, len(t.apps))
	for a := range t.apps {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// Used reports the tenant's bound CPU/memory demand.
func (t *Tenant) Used() (cpuCores, memMB float64) {
	t.reg.mu.Lock()
	defer t.reg.mu.Unlock()
	return t.usedCPU, t.usedMem
}

// allowFabric charges mb against the fabric budget.
func (t *Tenant) allowFabric(mb float64, now sim.Time) bool {
	if t.Quota.FabricMBps <= 0 {
		return true
	}
	t.reg.mu.Lock()
	defer t.reg.mu.Unlock()
	if dt := now - t.fabricLast; dt > 0 {
		t.fabricTokens += t.Quota.FabricMBps * dt.Seconds()
		if t.fabricTokens > t.Quota.FabricMBps {
			t.fabricTokens = t.Quota.FabricMBps
		}
	}
	t.fabricLast = now
	if t.fabricTokens < mb {
		return false
	}
	t.fabricTokens -= mb
	return true
}

// Registry tracks the platform's tenants and which app belongs to
// which. It is safe for concurrent use: replans, deploys, and tenant
// churn may race against the dispatch path.
type Registry struct {
	engine *sim.Engine
	// platformRPS is the measured admission rate being partitioned;
	// each tenant's bucket refills at share x platformRPS.
	platformRPS float64

	mu      sync.Mutex
	tenants map[string]*Tenant
	byApp   map[string]*Tenant
}

// NewRegistry builds a registry partitioning platformRPS of admission
// capacity (the calibrated 0.9 x measured capacity, in requests/s).
func NewRegistry(engine *sim.Engine, platformRPS float64) *Registry {
	return &Registry{
		engine:      engine,
		platformRPS: platformRPS,
		tenants:     map[string]*Tenant{},
		byApp:       map[string]*Tenant{},
	}
}

// PlatformRPS is the admission rate the shares partition.
func (r *Registry) PlatformRPS() float64 { return r.platformRPS }

// Register adds a tenant and carves its admission budget out of the
// platform rate. It fails on an invalid ID, a duplicate, a share
// outside (0,1], or if the sum of shares would exceed 1 (the budgets
// must partition, not oversubscribe, the platform rate).
func (r *Registry) Register(id string, class mirto.Priority, q Quota, slo SLO) (*Tenant, error) {
	if !tosca.ValidTenantID(id) {
		return nil, fmt.Errorf("tenant: invalid tenant ID %q", id)
	}
	if q.AdmissionShare <= 0 || q.AdmissionShare > 1 {
		return nil, fmt.Errorf("tenant: %s: admission share %.3f outside (0,1]", id, q.AdmissionShare)
	}
	if q.Weight <= 0 {
		q.Weight = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.tenants[id]; dup {
		return nil, fmt.Errorf("tenant: %s already registered", id)
	}
	total := q.AdmissionShare
	for _, t := range r.tenants {
		total += t.Quota.AdmissionShare
	}
	if total > 1+1e-9 {
		return nil, fmt.Errorf("tenant: registering %s oversubscribes admission (shares sum to %.3f)", id, total)
	}
	t := &Tenant{
		ID:         id,
		Class:      class,
		Quota:      q,
		SLO:        slo.withDefaults(),
		reg:        r,
		metrics:    telemetry.NewRegistry("tenant/" + id),
		apps:       map[string]appDemand{},
		fabricLast: r.engine.Now(),
	}
	if q.FabricMBps > 0 {
		t.fabricTokens = q.FabricMBps
	}
	t.adm = mirto.NewAdmissionController(r.engine, mirto.AdmissionConfig{
		Rate: q.AdmissionShare * r.platformRPS,
	})
	t.adm.BindMetrics(t.metrics)
	r.tenants[id] = t
	return t, nil
}

// Unregister removes a tenant and all its app bindings. Work already
// queued for it is failed by the dispatcher with ErrTenantRemoved.
func (r *Registry) Unregister(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	if !ok {
		return fmt.Errorf("tenant: %s not registered", id)
	}
	for app := range t.apps {
		delete(r.byApp, app)
	}
	delete(r.tenants, id)
	return nil
}

// Get returns a tenant by ID.
func (r *Registry) Get(id string) (*Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[id]
	return t, ok
}

// List returns all tenants sorted by ID.
func (r *Registry) List() []*Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*Tenant, 0, len(r.tenants))
	for _, t := range r.tenants {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// BindApp claims an app for a tenant, charging its declared CPU/memory
// demand against the tenant's quota. Call it at deploy time with the
// template's summed node demand (see TemplateDemand).
func (r *Registry) BindApp(app, tenantID string, cpuCores, memMB float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tenants[tenantID]
	if !ok {
		return fmt.Errorf("tenant: %s not registered", tenantID)
	}
	if prev, bound := r.byApp[app]; bound && prev != t {
		return fmt.Errorf("tenant: app %s already bound to %s", app, prev.ID)
	}
	if t.Quota.CPUCores > 0 && t.usedCPU+cpuCores > t.Quota.CPUCores+1e-9 {
		return fmt.Errorf("tenant: %s: app %s exceeds CPU quota (%.2f+%.2f > %.2f cores)",
			tenantID, app, t.usedCPU, cpuCores, t.Quota.CPUCores)
	}
	if t.Quota.MemMB > 0 && t.usedMem+memMB > t.Quota.MemMB+1e-9 {
		return fmt.Errorf("tenant: %s: app %s exceeds memory quota (%.0f+%.0f > %.0f MB)",
			tenantID, app, t.usedMem, memMB, t.Quota.MemMB)
	}
	t.apps[app] = appDemand{cpu: cpuCores, mem: memMB}
	t.usedCPU += cpuCores
	t.usedMem += memMB
	r.byApp[app] = t
	return nil
}

// UnbindApp releases an app's binding and refunds its quota charge.
func (r *Registry) UnbindApp(app string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byApp[app]
	if !ok {
		return
	}
	d := t.apps[app]
	t.usedCPU -= d.cpu
	t.usedMem -= d.mem
	delete(t.apps, app)
	delete(r.byApp, app)
}

// TenantOf resolves the tenant owning an app.
func (r *Registry) TenantOf(app string) (*Tenant, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byApp[app]
	return t, ok
}

// TemplateDemand sums a template's declared per-node CPU and memory
// demand (replicas included) — the quantity BindApp charges.
func TemplateDemand(st *tosca.ServiceTemplate) (cpuCores, memMB float64) {
	for _, name := range st.NodeNames() {
		n := st.Nodes[name]
		reps := float64(n.PropInt("replicas", 1))
		cpuCores += n.PropFloat("cpu", 0) * reps
		memMB += n.PropFloat("memoryMB", 0) * reps
	}
	return cpuCores, memMB
}
