package tenant

import "sync"

// Scheduler is a deficit-round-robin arbiter over per-tenant bounded
// queues. When dispatch slots are contended, backlogged tenants drain
// in proportion to their weights regardless of how lopsided the
// offered load is: a tenant flooding 10x another's rate still gets
// only its weighted share of dispatches, and its excess waits in (and
// overflows) its own queue instead of starving anyone else's.
//
// The algorithm is classic DRR: active tenants sit on a ring; each
// visit grants a tenant quantum x weight of deficit credit, and the
// tenant dispatches head-of-line items while its deficit covers their
// cost. An emptied queue forfeits its remaining deficit, so credit
// cannot be hoarded across idle periods.
type Scheduler struct {
	mu      sync.Mutex
	limit   int     // per-tenant queue bound
	quantum float64 // base credit per visit, scaled by weight

	queues     map[string]*drrQueue
	ring       []string // backlogged tenants, in activation order
	cur        int
	dispatched map[string]int64
	dropped    map[string]int64
}

type drrQueue struct {
	weight  float64
	deficit float64
	visited bool // quantum already granted for the current visit
	items   []Item
}

// Item is one queued unit of work.
type Item struct {
	Tenant  string
	Cost    float64 // deficit charge (e.g. request batch size)
	Payload any
}

// NewScheduler builds a scheduler bounding each tenant's queue at
// perTenantLimit items (minimum 1).
func NewScheduler(perTenantLimit int) *Scheduler {
	if perTenantLimit < 1 {
		perTenantLimit = 1
	}
	return &Scheduler{
		limit:      perTenantLimit,
		quantum:    1,
		queues:     map[string]*drrQueue{},
		dispatched: map[string]int64{},
		dropped:    map[string]int64{},
	}
}

// AddTenant registers a tenant's queue with the given DRR weight
// (values <= 0 become 1). Re-adding updates the weight.
func (s *Scheduler) AddTenant(id string, weight float64) {
	if weight <= 0 {
		weight = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.queues[id]; ok {
		q.weight = weight
		return
	}
	s.queues[id] = &drrQueue{weight: weight}
}

// RemoveTenant drops a tenant's queue and returns its undelivered
// items so the caller can fail their completions.
func (s *Scheduler) RemoveTenant(id string) []Item {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[id]
	if !ok {
		return nil
	}
	delete(s.queues, id)
	for i, name := range s.ring {
		if name == id {
			s.ring = append(s.ring[:i], s.ring[i+1:]...)
			if s.cur > i {
				s.cur--
			}
			if len(s.ring) > 0 {
				s.cur %= len(s.ring)
			} else {
				s.cur = 0
			}
			break
		}
	}
	return q.items
}

// Enqueue appends work to the tenant's queue. It returns false — the
// caller's cue to shed — when the tenant is unknown or its queue is
// at the bound.
func (s *Scheduler) Enqueue(id string, cost float64, payload any) bool {
	if cost <= 0 {
		cost = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[id]
	if !ok || len(q.items) >= s.limit {
		if ok {
			s.dropped[id]++
		}
		return false
	}
	if len(q.items) == 0 {
		s.ring = append(s.ring, id)
	}
	q.items = append(q.items, Item{Tenant: id, Cost: cost, Payload: payload})
	return true
}

// Next pops the next item under DRR order, or ok=false if every queue
// is empty.
func (s *Scheduler) Next() (Item, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.ring) > 0 {
		id := s.ring[s.cur]
		q := s.queues[id]
		if q == nil || len(q.items) == 0 {
			s.removeCur()
			continue
		}
		if !q.visited {
			q.deficit += s.quantum * q.weight
			q.visited = true
		}
		if q.deficit+1e-9 >= q.items[0].Cost {
			it := q.items[0]
			q.items = q.items[1:]
			q.deficit -= it.Cost
			s.dispatched[id]++
			if len(q.items) == 0 {
				// Forfeit leftover credit: an idle tenant must not bank
				// deficit to burst past its share later.
				q.deficit = 0
				q.visited = false
				s.removeCur()
			}
			return it, true
		}
		// Deficit does not cover the head item: end this visit and move
		// on; credit accrues again next round until the item affords.
		q.visited = false
		s.cur = (s.cur + 1) % len(s.ring)
	}
	return Item{}, false
}

// removeCur deletes the ring entry at cur; caller holds s.mu.
func (s *Scheduler) removeCur() {
	s.ring = append(s.ring[:s.cur], s.ring[s.cur+1:]...)
	if len(s.ring) > 0 {
		s.cur %= len(s.ring)
	} else {
		s.cur = 0
	}
}

// Len is the tenant's current queue depth.
func (s *Scheduler) Len(id string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if q, ok := s.queues[id]; ok {
		return len(q.items)
	}
	return 0
}

// Backlog is the total queued items across tenants.
func (s *Scheduler) Backlog() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, q := range s.queues {
		n += len(q.items)
	}
	return n
}

// Dispatched reports how many items the tenant has dequeued via Next.
func (s *Scheduler) Dispatched(id string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dispatched[id]
}

// Dropped reports how many enqueues the tenant's bound refused.
func (s *Scheduler) Dropped(id string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped[id]
}
