package tenant

import (
	"fmt"
	"sort"

	"myrtus/internal/continuum"
	"myrtus/internal/mapek"
	"myrtus/internal/mirto"
	"myrtus/internal/sim"
	"myrtus/internal/tosca"
)

// IngressDevice is the edge device tenant experiments submit from.
const IngressDevice = "edge-rv-0"

// Spec declares one tenant for a mixed-tenant system: its identity,
// quotas, SLO, and the TOSCA templates it deploys. Template tenant
// metadata, when present, must match ID.
type Spec struct {
	ID    string
	Class mirto.Priority
	Quota Quota
	SLO   SLO
	Apps  []string // TOSCA YAML documents
}

// System is one built mixed-tenant continuum. The two isolation arms
// share everything — substrate, protections, MAPE-K loops — except
// admission and arbitration: with quotas on, each tenant admits
// against its carved budget and the DRR dispatcher arbitrates slots;
// with quotas off (the control arm), every tenant shares one global
// admission controller whose only fairness is Table II priority.
type System struct {
	C   *continuum.Continuum
	O   *mirto.Orchestrator
	Reg *Registry // nil in the control arm

	// Disp arbitrates dispatch in the quotas arm; nil in control, where
	// submits go straight to the runtime.
	Disp *Dispatcher
	// Shared is the control arm's single admission controller.
	Shared *mirto.AdmissionController

	// Apps maps tenant ID to its deployed app names, deploy order.
	Apps  map[string][]string
	Loops map[string]*mapek.Loop // app -> MAPE-K loop

	CapacityRPS float64
	Deadline    sim.Time
}

// buildBare deploys every spec's apps on a fresh continuum with no
// protections — the calibration substrate.
func buildBare(seed uint64, specs []Spec) (*System, error) {
	opts := continuum.DefaultOptions()
	opts.Seed = seed
	c, err := continuum.Build(opts)
	if err != nil {
		return nil, err
	}
	o := mirto.NewOrchestrator(mirto.NewManager(c, mirto.LatencyGoal()))
	s := &System{C: c, O: o, Apps: map[string][]string{}, Loops: map[string]*mapek.Loop{}}
	for _, spec := range specs {
		for _, yaml := range spec.Apps {
			st, err := tosca.Parse(yaml)
			if err != nil {
				return nil, fmt.Errorf("tenant: parsing app for %s: %w", spec.ID, err)
			}
			if st.Tenant != "" && st.Tenant != spec.ID {
				return nil, fmt.Errorf("tenant: template %s declares tenant %q under spec %q",
					st.Name, st.Tenant, spec.ID)
			}
			st.Tenant = spec.ID
			plan, err := o.Deploy(st)
			if err != nil {
				return nil, fmt.Errorf("tenant: deploying %s for %s: %w", st.Name, spec.ID, err)
			}
			s.Apps[spec.ID] = append(s.Apps[spec.ID], plan.App)
		}
	}
	return s, nil
}

// BuildSystem builds one experiment arm: specs deployed on a seed-fresh
// continuum with the full protection stack (bounded queues, breakers,
// in-flight caps, MAPE-K brownout loops), plus either per-tenant
// admission budgets and DRR arbitration (quotas=true) or one shared
// admission controller (quotas=false). capacityRPS and deadline come
// from Calibrate.
func BuildSystem(seed uint64, specs []Spec, quotas bool, capacityRPS float64, deadline sim.Time) (*System, error) {
	s, err := buildBare(seed, specs)
	if err != nil {
		return nil, err
	}
	s.CapacityRPS = capacityRPS
	s.Deadline = deadline
	eng := s.C.Engine
	admissionRPS := 0.9 * capacityRPS
	maxIF := int(capacityRPS * deadline.Seconds())
	if maxIF < 8 {
		maxIF = 8
	}
	s.O.R.SetBreakers(mirto.NewBreakerSet(eng, mirto.BreakerConfig{}))
	s.O.R.SetMaxInFlight(maxIF)
	for _, name := range s.C.DeviceNames() {
		s.C.Devices[name].SetQueueLimit(deadline)
	}
	s.C.Fabric.SetMaxQueueDelay(deadline)

	if quotas {
		s.Reg = NewRegistry(eng, admissionRPS)
		for _, spec := range specs {
			t, err := s.Reg.Register(spec.ID, spec.Class, spec.Quota, spec.SLO)
			if err != nil {
				return nil, err
			}
			for i, app := range s.Apps[spec.ID] {
				st, perr := tosca.Parse(spec.Apps[i])
				if perr != nil {
					return nil, perr
				}
				cpu, mem := TemplateDemand(st)
				if err := s.Reg.BindApp(app, spec.ID, cpu, mem); err != nil {
					return nil, err
				}
				// The tenant's carved-out bucket replaces the shared gate on
				// this app's serve path.
				s.O.R.SetAppAdmission(app, t.Admission())
			}
		}
		s.Disp = NewDispatcher(eng, s.O.R, s.Reg, maxIF, maxIF)
		s.Disp.SetDeadline(deadline)
	} else {
		s.Shared = mirto.NewAdmissionController(eng, mirto.AdmissionConfig{Rate: admissionRPS})
		s.O.R.SetAdmission(s.Shared)
	}

	for _, spec := range specs {
		for _, app := range s.Apps[spec.ID] {
			loop, err := s.O.AttachLoop(app, mirto.SLO{MaxShedRate: 0.05})
			if err != nil {
				return nil, err
			}
			s.Loops[app] = loop
		}
	}
	return s, nil
}

// Submit routes one request: through the DRR dispatcher in the quotas
// arm, straight to the runtime in control.
func (s *System) Submit(app string, items int64, done func(lat sim.Time, energy float64, err error)) error {
	if s.Disp != nil {
		return s.Disp.Submit(app, IngressDevice, items, done)
	}
	return s.O.R.SubmitFrom(app, IngressDevice, items, done)
}

// Tick runs one MAPE-K iteration for every app and returns the deepest
// brownout level per app, keyed by app name.
func (s *System) Tick() map[string]int {
	apps := make([]string, 0, len(s.Loops))
	for app := range s.Loops {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	levels := make(map[string]int, len(apps))
	for _, app := range apps {
		s.Loops[app].Iterate()
		levels[app] = s.O.R.Brownout(app)
	}
	return levels
}

// Calibrate measures the mixed deployment's idle latency and closed-loop
// capacity on a throwaway substrate: deadline = 10x worst idle request
// latency, capacity = makespan rate of a closed 90-request burst round-
// robined across every deployed app.
func Calibrate(seed uint64, specs []Spec, items int64) (capacityRPS float64, deadline sim.Time, err error) {
	s, err := buildBare(seed, specs)
	if err != nil {
		return 0, 0, err
	}
	var apps []string
	for _, spec := range specs {
		apps = append(apps, s.Apps[spec.ID]...)
	}
	if len(apps) == 0 {
		return 0, 0, fmt.Errorf("tenant: no apps to calibrate")
	}
	var idle sim.Time
	for _, app := range apps {
		lat, _, serr := s.O.R.ServeRequestFrom(app, IngressDevice, items)
		if serr != nil {
			return 0, 0, fmt.Errorf("tenant: idle request to %s: %w", app, serr)
		}
		if lat > idle {
			idle = lat
		}
	}
	deadline = 10 * idle
	eng := s.C.Engine
	const burst = 90
	start := eng.Now()
	var last sim.Time
	pending := burst
	for i := 0; i < burst; i++ {
		app := apps[i%len(apps)]
		err := s.O.R.SubmitFrom(app, IngressDevice, items, func(_ sim.Time, _ float64, err error) {
			pending--
			if t := eng.Now(); t > last {
				last = t
			}
		})
		if err != nil {
			return 0, 0, fmt.Errorf("tenant: burst submit to %s: %w", app, err)
		}
	}
	eng.Run()
	if pending != 0 || last <= start {
		return 0, 0, fmt.Errorf("tenant: calibration burst did not complete (%d pending)", pending)
	}
	return burst / (last - start).Seconds(), deadline, nil
}
