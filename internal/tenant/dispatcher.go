package tenant

import (
	"errors"
	"sync"

	"myrtus/internal/mirto"
	"myrtus/internal/sim"
	"myrtus/internal/telemetry"
)

// Dispatcher fronts the MIRTO runtime with tenant-aware arbitration.
// Dispatch slots — the platform's serve-path concurrency — are the
// contended resource: while slots are free a submit goes straight
// through, and once they are exhausted requests wait in their tenant's
// bounded DRR queue, so a flooding tenant overflows its own queue
// while the weighted-fair scheduler keeps draining everyone else's.
//
// Admission itself is NOT duplicated here: each tenant's carved-out
// AdmissionController is wired into the runtime via SetAppAdmission,
// so the per-tenant token bucket and sojourn gate run inside the serve
// path exactly once per dispatch, and shed accounting (per-app
// requests_shed, per-tenant shed_high/med/low) stays consistent with
// single-tenant operation. The dispatcher adds the two gates the
// runtime cannot see: the tenant's fabric-bandwidth budget at the
// door, and weighted-fair ordering of the backlog.
type Dispatcher struct {
	engine *sim.Engine
	rt     *mirto.Runtime
	reg    *Registry
	sched  *Scheduler

	mu       sync.Mutex
	slots    int
	maxSlots int
	pumping  bool
	deadline sim.Time // goodput threshold for requests_good (0 = off)

	dispatched map[string]int64 // per-tenant total handoffs to the runtime
	ingressMB  map[string]float64
}

// queuedReq is one deferred submission.
type queuedReq struct {
	app, ingress string
	items        int64
	done         func(lat sim.Time, energy float64, err error)
}

// NewDispatcher builds a dispatcher with maxSlots concurrent in-runtime
// requests (minimum 1) and perTenantQueue waiting slots per tenant.
// Register tenants on reg and bind their apps before submitting.
func NewDispatcher(engine *sim.Engine, rt *mirto.Runtime, reg *Registry, maxSlots, perTenantQueue int) *Dispatcher {
	if maxSlots < 1 {
		maxSlots = 1
	}
	d := &Dispatcher{
		engine:     engine,
		rt:         rt,
		reg:        reg,
		sched:      NewScheduler(perTenantQueue),
		maxSlots:   maxSlots,
		dispatched: map[string]int64{},
		ingressMB:  map[string]float64{},
	}
	for _, t := range reg.List() {
		d.sched.AddTenant(t.ID, t.Quota.Weight)
	}
	return d
}

// Scheduler exposes the DRR arbiter (for stats and tenant churn).
func (d *Dispatcher) Scheduler() *Scheduler { return d.sched }

// AddTenant registers a late-arriving tenant's queue.
func (d *Dispatcher) AddTenant(t *Tenant) { d.sched.AddTenant(t.ID, t.Quota.Weight) }

// RemoveTenant drops a tenant's queue, failing its queued requests
// with ErrTenantRemoved.
func (d *Dispatcher) RemoveTenant(id string) {
	for _, it := range d.sched.RemoveTenant(id) {
		if q, ok := it.Payload.(*queuedReq); ok && q.done != nil {
			q.done(0, 0, ErrTenantRemoved)
		}
	}
}

// SetDeadline sets the goodput threshold: completions at or under it
// increment the tenant's requests_good counter.
func (d *Dispatcher) SetDeadline(dl sim.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.deadline = dl
}

// Dispatched reports total runtime handoffs for a tenant (both
// immediate and dequeued) — the quantity weighted fairness governs.
func (d *Dispatcher) Dispatched(id string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dispatched[id]
}

// Submit routes one request for app through tenant arbitration. The
// returned error is a synchronous refusal (unknown tenant, fabric
// budget exhausted, tenant queue full); otherwise the outcome —
// including admission shed at dispatch time — arrives via done,
// exactly once.
func (d *Dispatcher) Submit(app, ingress string, items int64, done func(lat sim.Time, energy float64, err error)) error {
	t, ok := d.reg.TenantOf(app)
	if !ok {
		return ErrNoTenant
	}
	m := t.Metrics()
	m.Counter(telemetry.Application, "requests_submitted").Inc()
	// Fabric budget: the tenant pays for its requests' ingress bytes up
	// front; a data flood is shed at the door before touching the DRR
	// queue or the fabric itself.
	if mb := d.appIngressMB(app); mb > 0 && !t.allowFabric(mb, d.engine.Now()) {
		m.Counter(telemetry.Application, "requests_shed").Inc()
		m.Counter(telemetry.Application, "shed_fabric").Inc()
		return mirto.ErrOverloaded
	}
	d.mu.Lock()
	if d.slots < d.maxSlots {
		d.slots++
		d.mu.Unlock()
		return d.dispatch(t, app, ingress, items, done)
	}
	d.mu.Unlock()
	if !d.sched.Enqueue(t.ID, float64(items), &queuedReq{app: app, ingress: ingress, items: items, done: done}) {
		m.Counter(telemetry.Application, "requests_shed").Inc()
		m.Counter(telemetry.Application, "shed_backlog").Inc()
		return mirto.ErrOverloaded
	}
	return nil
}

// dispatch hands one request to the runtime, owning one slot. On a
// synchronous refusal (per-tenant admission, in-flight bound) the slot
// is freed and the error returned — done is never called in that case,
// mirroring the runtime's own contract.
func (d *Dispatcher) dispatch(t *Tenant, app, ingress string, items int64, done func(lat sim.Time, energy float64, err error)) error {
	err := d.rt.SubmitFrom(app, ingress, items, func(lat sim.Time, energy float64, rerr error) {
		d.record(t, lat, rerr)
		d.freeSlot()
		if done != nil {
			done(lat, energy, rerr)
		}
	})
	if err != nil {
		m := t.Metrics()
		if errors.Is(err, mirto.ErrOverloaded) {
			m.Counter(telemetry.Application, "requests_shed").Inc()
		} else {
			m.Counter(telemetry.Application, "requests_failed").Inc()
		}
		d.freeSlot()
		return err
	}
	d.mu.Lock()
	d.dispatched[t.ID]++
	d.mu.Unlock()
	return nil
}

// record lands one completed request's outcome in the tenant registry.
func (d *Dispatcher) record(t *Tenant, lat sim.Time, err error) {
	m := t.Metrics()
	if err != nil {
		m.Counter(telemetry.Application, "requests_failed").Inc()
		return
	}
	m.Counter(telemetry.Application, "requests_ok").Inc()
	m.Histogram(telemetry.Application, "latency_ms").Observe(lat.Seconds() * 1e3)
	d.mu.Lock()
	dl := d.deadline
	d.mu.Unlock()
	if dl > 0 && lat <= dl {
		m.Counter(telemetry.Application, "requests_good").Inc()
	}
}

// freeSlot returns a slot and drains queued work into it.
func (d *Dispatcher) freeSlot() {
	d.mu.Lock()
	d.slots--
	d.mu.Unlock()
	d.pump()
}

// pump dispatches queued requests while slots are free. The pumping
// guard flattens re-entrancy: a synchronously-failing dispatch frees
// its slot and re-enters pump, which returns immediately while the
// outer loop re-checks slot availability.
func (d *Dispatcher) pump() {
	d.mu.Lock()
	if d.pumping {
		d.mu.Unlock()
		return
	}
	d.pumping = true
	for d.slots < d.maxSlots {
		it, ok := d.sched.Next()
		if !ok {
			break
		}
		d.slots++
		d.mu.Unlock()
		d.dispatchQueued(it)
		d.mu.Lock()
	}
	d.pumping = false
	d.mu.Unlock()
}

// dispatchQueued runs one dequeued item, completing its done on a
// synchronous refusal (the submitter already returned nil).
func (d *Dispatcher) dispatchQueued(it Item) {
	q, ok := it.Payload.(*queuedReq)
	if !ok {
		d.mu.Lock()
		d.slots--
		d.mu.Unlock()
		return
	}
	t, ok := d.reg.TenantOf(q.app)
	if !ok {
		d.mu.Lock()
		d.slots--
		d.mu.Unlock()
		if q.done != nil {
			q.done(0, 0, ErrTenantRemoved)
		}
		return
	}
	if err := d.dispatch(t, q.app, q.ingress, q.items, q.done); err != nil {
		// dispatch freed the slot and recorded the shed; surface the
		// outcome to the submitter, which got nil at enqueue time.
		if q.done != nil {
			q.done(0, 0, err)
		}
	}
}

// appIngressMB caches the per-request ingress megabytes an app's
// source stages declare — the fabric-budget charge per submit.
func (d *Dispatcher) appIngressMB(app string) float64 {
	d.mu.Lock()
	if mb, ok := d.ingressMB[app]; ok {
		d.mu.Unlock()
		return mb
	}
	d.mu.Unlock()
	mb := 0.0
	if plan, ok := d.rt.Plan(app); ok && plan.Template != nil {
		st := plan.Template
		for _, name := range st.NodeNames() {
			n := st.Nodes[name]
			if len(n.Requirements) == 0 {
				mb += n.PropFloat("inMB", 0)
			}
		}
	}
	d.mu.Lock()
	d.ingressMB[app] = mb
	d.mu.Unlock()
	return mb
}
