// Package fpga models the reconfigurable edge accelerators of the MYRTUS
// infrastructure: FPGA fabrics with dynamically reconfigurable regions,
// bitstream registries, per-bitstream operating points (the design-time
// metadata MIRTO Node Managers exploit at runtime, [29][30]), partial
// reconfiguration cost, and the performance monitoring counters the paper
// says edge devices are "already instrumented" with.
package fpga

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"myrtus/internal/sim"
)

// ErrOverloaded is the deterministic fast-reject Execute returns when a
// region's backlog exceeds the fabric's configured bound. Devices fall
// back to their general-purpose cores on it (graceful degradation), so
// an overloaded accelerator slows work down instead of queuing it
// without bound.
var ErrOverloaded = errors.New("fpga: region backlog full")

// OperatingPoint is one configuration of an accelerator: the clock /
// parallelism trade-off chosen by the Node Manager to balance latency
// against energy.
type OperatingPoint struct {
	Name        string
	ClockMHz    float64
	Parallelism int
	// LatencyPerItem is the processing time per work item at this point.
	LatencyPerItem sim.Time
	// PowerWatts is the dynamic power drawn while processing.
	PowerWatts float64
}

// EnergyPerItem returns joules consumed per item at this point.
func (op OperatingPoint) EnergyPerItem() float64 {
	return op.PowerWatts * op.LatencyPerItem.Seconds()
}

// Bitstream is a synthesized accelerator configuration for one kernel.
// The DPE node-level step produces these (internal/mlir HLS estimator).
type Bitstream struct {
	ID     string
	Kernel string // accelerated kernel name, e.g. "conv2d"
	// AreaUnits is the reconfigurable-region area the design occupies.
	AreaUnits int
	// ReconfigTime is the partial reconfiguration latency to load it.
	ReconfigTime sim.Time
	// Points are the supported operating points, fastest first.
	Points []OperatingPoint
}

// Validate checks internal consistency.
func (b *Bitstream) Validate() error {
	if b.ID == "" || b.Kernel == "" {
		return fmt.Errorf("fpga: bitstream needs ID and kernel")
	}
	if b.AreaUnits <= 0 {
		return fmt.Errorf("fpga: bitstream %s has non-positive area", b.ID)
	}
	if len(b.Points) == 0 {
		return fmt.Errorf("fpga: bitstream %s has no operating points", b.ID)
	}
	for _, p := range b.Points {
		if p.LatencyPerItem <= 0 || p.PowerWatts <= 0 {
			return fmt.Errorf("fpga: bitstream %s point %s has non-positive cost", b.ID, p.Name)
		}
	}
	return nil
}

// Registry stores bitstreams by kernel — the "container image registry"
// analogue for hardware artifacts (§VI).
type Registry struct {
	mu sync.Mutex
	by map[string][]*Bitstream
}

// NewRegistry returns an empty bitstream registry.
func NewRegistry() *Registry { return &Registry{by: make(map[string][]*Bitstream)} }

// Add validates and registers a bitstream.
func (r *Registry) Add(b *Bitstream) error {
	if err := b.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.by[b.Kernel] = append(r.by[b.Kernel], b)
	return nil
}

// ForKernel returns all bitstreams accelerating kernel.
func (r *Registry) ForKernel(kernel string) []*Bitstream {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Bitstream(nil), r.by[kernel]...)
}

// Kernels lists all kernels with at least one bitstream, sorted.
func (r *Registry) Kernels() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.by))
	for k := range r.by {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Counters are the performance monitoring counters of one region.
type Counters struct {
	Invocations  int64
	Items        int64
	BusyTime     sim.Time
	EnergyJoules float64
	Reconfigs    int64
	ReconfigTime sim.Time
}

// Region is one dynamically reconfigurable partition of the fabric.
type Region struct {
	Index     int
	AreaUnits int

	loaded    *Bitstream
	activeOP  int
	busyUntil sim.Time
	counters  Counters
}

// Loaded returns the currently loaded bitstream (nil when empty).
func (r *Region) Loaded() *Bitstream { return r.loaded }

// ActivePoint returns the active operating point. ok is false when the
// region is empty.
func (r *Region) ActivePoint() (OperatingPoint, bool) {
	if r.loaded == nil {
		return OperatingPoint{}, false
	}
	return r.loaded.Points[r.activeOP], true
}

// Counters returns a copy of the region's monitoring counters.
func (r *Region) Counters() Counters { return r.counters }

// Fabric is an FPGA with one or more reconfigurable regions.
// Methods take the current virtual time explicitly so the fabric composes
// with any scheduling discipline above it.
type Fabric struct {
	mu      sync.Mutex
	name    string
	regions []*Region
	// StaticPowerWatts is drawn whenever the fabric is powered.
	StaticPowerWatts float64
	// maxBacklog bounds how long new work may queue behind a region's
	// in-flight work before Execute rejects it (0 = unbounded).
	maxBacklog sim.Time
	rejected   int64
}

// SetMaxBacklog bounds each region's FIFO backlog: work that would start
// more than limit after its submission time is rejected with
// ErrOverloaded. Zero restores unbounded queuing.
func (f *Fabric) SetMaxBacklog(limit sim.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.maxBacklog = limit
}

// Rejected reports how many executions the backlog bound rejected.
func (f *Fabric) Rejected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rejected
}

// NewFabric builds a fabric with the given region areas.
func NewFabric(name string, staticPower float64, regionAreas ...int) *Fabric {
	f := &Fabric{name: name, StaticPowerWatts: staticPower}
	for i, a := range regionAreas {
		f.regions = append(f.regions, &Region{Index: i, AreaUnits: a})
	}
	return f
}

// Name returns the fabric name.
func (f *Fabric) Name() string { return f.name }

// Regions returns the number of regions.
func (f *Fabric) Regions() int { return len(f.regions) }

// Region returns region i.
func (f *Fabric) Region(i int) *Region {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.regions[i]
}

// FindLoaded returns the index of a region currently accelerating kernel,
// or -1.
func (f *Fabric) FindLoaded(kernel string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, r := range f.regions {
		if r.loaded != nil && r.loaded.Kernel == kernel {
			return r.Index
		}
	}
	return -1
}

// Load partially reconfigures region idx with bitstream b, starting at
// virtual time now. It returns the time at which the region becomes
// usable. Loading fails when the design does not fit the region.
func (f *Fabric) Load(idx int, b *Bitstream, now sim.Time) (sim.Time, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if idx < 0 || idx >= len(f.regions) {
		return 0, fmt.Errorf("fpga: region %d out of range [0,%d)", idx, len(f.regions))
	}
	r := f.regions[idx]
	if b.AreaUnits > r.AreaUnits {
		return 0, fmt.Errorf("fpga: bitstream %s needs %d area units, region %d has %d",
			b.ID, b.AreaUnits, idx, r.AreaUnits)
	}
	start := now
	if r.busyUntil > start {
		start = r.busyUntil // wait for in-flight work to drain
	}
	ready := start + b.ReconfigTime
	r.loaded = b
	r.activeOP = 0
	r.busyUntil = ready
	r.counters.Reconfigs++
	r.counters.ReconfigTime += b.ReconfigTime
	return ready, nil
}

// SetOperatingPoint switches region idx to the named point. The switch is
// immediate (clock scaling, no reconfiguration).
func (f *Fabric) SetOperatingPoint(idx int, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if idx < 0 || idx >= len(f.regions) {
		return fmt.Errorf("fpga: region %d out of range", idx)
	}
	r := f.regions[idx]
	if r.loaded == nil {
		return fmt.Errorf("fpga: region %d is empty", idx)
	}
	for i, p := range r.loaded.Points {
		if p.Name == name {
			r.activeOP = i
			return nil
		}
	}
	return fmt.Errorf("fpga: bitstream %s has no operating point %q", r.loaded.ID, name)
}

// Execute runs items work items of kernel on region idx starting no
// earlier than now. It returns the completion time and the energy drawn.
// Work queues FIFO behind whatever the region is already doing.
func (f *Fabric) Execute(idx int, kernel string, items int64, now sim.Time) (sim.Time, float64, error) {
	if items <= 0 {
		return 0, 0, fmt.Errorf("fpga: non-positive item count %d", items)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if idx < 0 || idx >= len(f.regions) {
		return 0, 0, fmt.Errorf("fpga: region %d out of range", idx)
	}
	r := f.regions[idx]
	if r.loaded == nil || r.loaded.Kernel != kernel {
		return 0, 0, fmt.Errorf("fpga: region %d does not accelerate %q", idx, kernel)
	}
	op := r.loaded.Points[r.activeOP]
	start := now
	if r.busyUntil > start {
		start = r.busyUntil
	}
	if f.maxBacklog > 0 && start-now > f.maxBacklog {
		f.rejected++
		return 0, 0, fmt.Errorf("fpga: region %d backlog %v exceeds limit %v: %w",
			idx, start-now, f.maxBacklog, ErrOverloaded)
	}
	// Parallelism processes ⌈items/parallelism⌉ batches.
	batches := (items + int64(op.Parallelism) - 1) / int64(op.Parallelism)
	dur := sim.Time(batches) * op.LatencyPerItem
	finish := start + dur
	r.busyUntil = finish
	energy := op.PowerWatts * dur.Seconds()
	r.counters.Invocations++
	r.counters.Items += items
	r.counters.BusyTime += dur
	r.counters.EnergyJoules += energy
	return finish, energy, nil
}

// Utilization reports the busy fraction of each region over [0, now].
func (f *Fabric) Utilization(now sim.Time) []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]float64, len(f.regions))
	if now <= 0 {
		return out
	}
	for i, r := range f.regions {
		out[i] = float64(r.counters.BusyTime) / float64(now)
		if out[i] > 1 {
			out[i] = 1
		}
	}
	return out
}
