package fpga

import (
	"testing"
	"testing/quick"

	"myrtus/internal/sim"
)

func convBitstream() *Bitstream {
	return &Bitstream{
		ID: "bs-conv-v1", Kernel: "conv2d", AreaUnits: 4,
		ReconfigTime: 10 * sim.Millisecond,
		Points: []OperatingPoint{
			{Name: "fast", ClockMHz: 300, Parallelism: 4, LatencyPerItem: 1 * sim.Millisecond, PowerWatts: 8},
			{Name: "eco", ClockMHz: 100, Parallelism: 2, LatencyPerItem: 3 * sim.Millisecond, PowerWatts: 2},
		},
	}
}

func TestBitstreamValidate(t *testing.T) {
	b := convBitstream()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Bitstream{
		{Kernel: "k", AreaUnits: 1, Points: convBitstream().Points},
		{ID: "x", AreaUnits: 1, Points: convBitstream().Points},
		{ID: "x", Kernel: "k", AreaUnits: 0, Points: convBitstream().Points},
		{ID: "x", Kernel: "k", AreaUnits: 1},
		{ID: "x", Kernel: "k", AreaUnits: 1, Points: []OperatingPoint{{Name: "p", LatencyPerItem: 0, PowerWatts: 1}}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("case %d validated", i)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if err := r.Add(convBitstream()); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(&Bitstream{}); err == nil {
		t.Fatal("invalid bitstream accepted")
	}
	if got := r.ForKernel("conv2d"); len(got) != 1 {
		t.Fatalf("ForKernel = %d", len(got))
	}
	if got := r.ForKernel("ghost"); len(got) != 0 {
		t.Fatal("ghost kernel")
	}
	if ks := r.Kernels(); len(ks) != 1 || ks[0] != "conv2d" {
		t.Fatalf("Kernels = %v", ks)
	}
}

func TestLoadAndExecute(t *testing.T) {
	f := NewFabric("edge-fpga", 1.0, 8, 2)
	if f.Name() != "edge-fpga" || f.Regions() != 2 {
		t.Fatal("fabric metadata")
	}
	b := convBitstream()
	ready, err := f.Load(0, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ready != 10*sim.Millisecond {
		t.Fatalf("ready = %v", ready)
	}
	// 8 items at parallelism 4 → 2 batches × 1ms.
	finish, energy, err := f.Execute(0, "conv2d", 8, ready)
	if err != nil {
		t.Fatal(err)
	}
	if finish != ready+2*sim.Millisecond {
		t.Fatalf("finish = %v", finish)
	}
	wantE := 8.0 * 0.002
	if energy < wantE-1e-9 || energy > wantE+1e-9 {
		t.Fatalf("energy = %v, want %v", energy, wantE)
	}
	c := f.Region(0).Counters()
	if c.Invocations != 1 || c.Items != 8 || c.Reconfigs != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestExecuteQueuesFIFO(t *testing.T) {
	f := NewFabric("x", 1, 8)
	ready, _ := f.Load(0, convBitstream(), 0)
	f1, _, err := f.Execute(0, "conv2d", 4, ready)
	if err != nil {
		t.Fatal(err)
	}
	// Submitted at the same time: must queue behind the first.
	f2, _, err := f.Execute(0, "conv2d", 4, ready)
	if err != nil {
		t.Fatal(err)
	}
	if f2 != f1+1*sim.Millisecond {
		t.Fatalf("f1=%v f2=%v", f1, f2)
	}
}

func TestOperatingPointSwitch(t *testing.T) {
	f := NewFabric("x", 1, 8)
	ready, _ := f.Load(0, convBitstream(), 0)
	if err := f.SetOperatingPoint(0, "eco"); err != nil {
		t.Fatal(err)
	}
	op, ok := f.Region(0).ActivePoint()
	if !ok || op.Name != "eco" {
		t.Fatalf("active = %+v %v", op, ok)
	}
	// 4 items at parallelism 2 → 2 batches × 3ms; power 2W.
	finish, energy, err := f.Execute(0, "conv2d", 4, ready)
	if err != nil {
		t.Fatal(err)
	}
	if finish != ready+6*sim.Millisecond {
		t.Fatalf("finish = %v", finish)
	}
	if e := 2.0 * 0.006; energy < e-1e-9 || energy > e+1e-9 {
		t.Fatalf("energy = %v", energy)
	}
	if err := f.SetOperatingPoint(0, "ghost"); err == nil {
		t.Fatal("unknown OP accepted")
	}
	if err := f.SetOperatingPoint(1, "eco"); err == nil {
		t.Fatal("out-of-range region accepted")
	}
}

func TestEcoPointTradesLatencyForEnergy(t *testing.T) {
	b := convBitstream()
	fast, eco := b.Points[0], b.Points[1]
	if fast.EnergyPerItem() <= eco.EnergyPerItem() {
		t.Fatalf("eco point should be cheaper: fast=%v eco=%v", fast.EnergyPerItem(), eco.EnergyPerItem())
	}
	if fast.LatencyPerItem >= eco.LatencyPerItem {
		t.Fatal("fast point should be faster")
	}
}

func TestLoadErrors(t *testing.T) {
	f := NewFabric("x", 1, 2) // small region
	b := convBitstream()      // needs 4 units
	if _, err := f.Load(0, b, 0); err == nil {
		t.Fatal("oversized bitstream accepted")
	}
	if _, err := f.Load(5, b, 0); err == nil {
		t.Fatal("bad region accepted")
	}
	if _, err := f.Load(0, &Bitstream{}, 0); err == nil {
		t.Fatal("invalid bitstream accepted")
	}
}

func TestExecuteErrors(t *testing.T) {
	f := NewFabric("x", 1, 8)
	if _, _, err := f.Execute(0, "conv2d", 1, 0); err == nil {
		t.Fatal("empty region executed")
	}
	f.Load(0, convBitstream(), 0) //nolint:errcheck
	if _, _, err := f.Execute(0, "matmul", 1, 0); err == nil {
		t.Fatal("wrong kernel executed")
	}
	if _, _, err := f.Execute(0, "conv2d", 0, 0); err == nil {
		t.Fatal("zero items executed")
	}
	if _, _, err := f.Execute(9, "conv2d", 1, 0); err == nil {
		t.Fatal("bad region executed")
	}
}

func TestReconfigWaitsForDrain(t *testing.T) {
	f := NewFabric("x", 1, 8)
	ready, _ := f.Load(0, convBitstream(), 0)
	finish, _, _ := f.Execute(0, "conv2d", 40, ready) // 10 batches → busy 10ms
	b2 := convBitstream()
	b2.ID = "bs-conv-v2"
	ready2, err := f.Load(0, b2, ready)
	if err != nil {
		t.Fatal(err)
	}
	if ready2 != finish+b2.ReconfigTime {
		t.Fatalf("reconfig did not wait: ready2=%v finish=%v", ready2, finish)
	}
	if idx := f.FindLoaded("conv2d"); idx != 0 {
		t.Fatalf("FindLoaded = %d", idx)
	}
	if idx := f.FindLoaded("ghost"); idx != -1 {
		t.Fatalf("FindLoaded(ghost) = %d", idx)
	}
}

func TestUtilization(t *testing.T) {
	f := NewFabric("x", 1, 8)
	ready, _ := f.Load(0, convBitstream(), 0)
	f.Execute(0, "conv2d", 40, ready) //nolint:errcheck // busy 10ms
	u := f.Utilization(ready + 20*sim.Millisecond)
	if u[0] < 0.3 || u[0] > 0.4 {
		t.Fatalf("utilization = %v, want ≈1/3", u[0])
	}
	if z := f.Utilization(0); z[0] != 0 {
		t.Fatal("zero-time utilization")
	}
}

func TestExecuteMonotoneProperty(t *testing.T) {
	// Completion times on one region are non-decreasing in submission
	// order (FIFO invariant), regardless of item counts.
	if err := quick.Check(func(itemCounts []uint8) bool {
		f := NewFabric("x", 1, 8)
		now, _ := f.Load(0, convBitstream(), 0)
		last := sim.Time(0)
		for _, n := range itemCounts {
			items := int64(n%16) + 1
			finish, _, err := f.Execute(0, "conv2d", items, now)
			if err != nil || finish < last {
				return false
			}
			last = finish
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
