// Package adt implements Attack-Defence Trees — the threat-analysis
// formalism the MYRTUS DPE uses at design time ("model the Attack Defence
// Tree for the analysis of the threats to which the system is exposed and
// synthesize a set of adapted counter-measures", §V). It provides attack
// success probability and cost analysis, minimal cut sets, and greedy
// countermeasure synthesis from a library of customizable primitives.
package adt

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Gate is the combinator type of an inner node.
type Gate int

const (
	// Leaf is an atomic attack step.
	Leaf Gate = iota
	// Or succeeds when any child succeeds.
	Or
	// And succeeds only when all children succeed.
	And
)

func (g Gate) String() string {
	switch g {
	case Leaf:
		return "LEAF"
	case Or:
		return "OR"
	case And:
		return "AND"
	default:
		return fmt.Sprintf("Gate(%d)", int(g))
	}
}

// Node is one vertex of the attack tree.
type Node struct {
	Name     string
	Gate     Gate
	Children []*Node

	// Leaf attributes.
	Prob float64  // baseline success probability
	Cost float64  // attacker effort
	Tags []string // what the step exploits ("network", "firmware", …)

	// Applied defences (effectiveness multiplies residual probability).
	Defences []Countermeasure
}

// Countermeasure is one defence primitive from the library.
type Countermeasure struct {
	Name string
	// Effectiveness ∈ (0,1]: fraction of attack probability removed.
	Effectiveness float64
	// Cost in defender budget units.
	Cost float64
	// Covers lists leaf tags the countermeasure applies to.
	Covers []string
}

func (c Countermeasure) covers(tag string) bool {
	for _, t := range c.Covers {
		if t == tag {
			return true
		}
	}
	return false
}

// Tree is a rooted attack-defence tree.
type Tree struct {
	Name string
	Root *Node
}

// Validate checks structural sanity.
func (t *Tree) Validate() error {
	if t.Root == nil {
		return fmt.Errorf("adt: tree %q has no root", t.Name)
	}
	seen := map[*Node]bool{}
	var walk func(n *Node, path []string) error
	walk = func(n *Node, path []string) error {
		if seen[n] {
			return fmt.Errorf("adt: node %q reachable twice (tree must be a tree)", n.Name)
		}
		seen[n] = true
		if n.Name == "" {
			return fmt.Errorf("adt: unnamed node under %v", path)
		}
		switch n.Gate {
		case Leaf:
			if len(n.Children) != 0 {
				return fmt.Errorf("adt: leaf %q has children", n.Name)
			}
			if n.Prob < 0 || n.Prob > 1 {
				return fmt.Errorf("adt: leaf %q probability %v out of [0,1]", n.Name, n.Prob)
			}
			if n.Cost < 0 {
				return fmt.Errorf("adt: leaf %q negative cost", n.Name)
			}
		case Or, And:
			if len(n.Children) == 0 {
				return fmt.Errorf("adt: gate %q has no children", n.Name)
			}
			for _, c := range n.Children {
				if err := walk(c, append(path, n.Name)); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("adt: node %q has invalid gate", n.Name)
		}
		return nil
	}
	return walk(t.Root, nil)
}

// residualProb is the leaf probability after applied defences.
func (n *Node) residualProb() float64 {
	p := n.Prob
	for _, d := range n.Defences {
		p *= 1 - d.Effectiveness
	}
	return p
}

// SuccessProbability computes the attack success probability of the root
// under independence assumptions.
func (t *Tree) SuccessProbability() float64 {
	var eval func(n *Node) float64
	eval = func(n *Node) float64 {
		switch n.Gate {
		case Leaf:
			return n.residualProb()
		case And:
			p := 1.0
			for _, c := range n.Children {
				p *= eval(c)
			}
			return p
		default: // Or
			q := 1.0
			for _, c := range n.Children {
				q *= 1 - eval(c)
			}
			return 1 - q
		}
	}
	return eval(t.Root)
}

// MinAttackCost computes the cheapest attacker effort to reach the root:
// min over OR children, sum over AND children.
func (t *Tree) MinAttackCost() float64 {
	var eval func(n *Node) float64
	eval = func(n *Node) float64 {
		switch n.Gate {
		case Leaf:
			return n.Cost
		case And:
			sum := 0.0
			for _, c := range n.Children {
				sum += eval(c)
			}
			return sum
		default: // Or
			best := math.Inf(1)
			for _, c := range n.Children {
				if v := eval(c); v < best {
					best = v
				}
			}
			return best
		}
	}
	return eval(t.Root)
}

// CutSet is one minimal set of leaf names whose joint success reaches the
// root.
type CutSet []string

// MinimalCutSets enumerates the minimal cut sets of the tree.
func (t *Tree) MinimalCutSets() []CutSet {
	var eval func(n *Node) []CutSet
	eval = func(n *Node) []CutSet {
		switch n.Gate {
		case Leaf:
			return []CutSet{{n.Name}}
		case Or:
			var out []CutSet
			for _, c := range n.Children {
				out = append(out, eval(c)...)
			}
			return out
		default: // And
			acc := []CutSet{{}}
			for _, c := range n.Children {
				var next []CutSet
				for _, left := range acc {
					for _, right := range eval(c) {
						merged := append(append(CutSet{}, left...), right...)
						next = append(next, merged)
					}
				}
				acc = next
			}
			return acc
		}
	}
	sets := eval(t.Root)
	for _, s := range sets {
		sort.Strings(s)
	}
	sort.Slice(sets, func(i, j int) bool {
		if len(sets[i]) != len(sets[j]) {
			return len(sets[i]) < len(sets[j])
		}
		return strings.Join(sets[i], ",") < strings.Join(sets[j], ",")
	})
	return sets
}

// Leaves returns all leaf nodes.
func (t *Tree) Leaves() []*Node {
	var out []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Gate == Leaf {
			out = append(out, n)
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}

// Synthesis is the result of countermeasure selection.
type Synthesis struct {
	Applied []AppliedDefence
	// Before and After are the root success probabilities.
	Before, After float64
	SpentBudget   float64
}

// AppliedDefence records one placement of a countermeasure on a leaf.
type AppliedDefence struct {
	Leaf           string
	Countermeasure string
	RiskReduction  float64
}

// Synthesize greedily selects (leaf, countermeasure) applications from
// the library that maximize root risk reduction per unit cost until the
// defender budget is exhausted or no application reduces risk. The
// defences are applied to the tree in place — this is the "Threat Counter
// Measures" synthesis step of the DPE.
func (t *Tree) Synthesize(library []Countermeasure, budget float64) Synthesis {
	syn := Synthesis{Before: t.SuccessProbability()}
	remaining := budget
	type candidate struct {
		leaf *Node
		cm   Countermeasure
	}
	applied := map[string]map[string]bool{} // leaf → cm name
	for {
		base := t.SuccessProbability()
		var best *candidate
		bestGain := 0.0
		for _, leaf := range t.Leaves() {
			for _, cm := range library {
				if cm.Cost > remaining || cm.Effectiveness <= 0 {
					continue
				}
				if applied[leaf.Name][cm.Name] {
					continue
				}
				match := false
				for _, tag := range leaf.Tags {
					if cm.covers(tag) {
						match = true
						break
					}
				}
				if !match {
					continue
				}
				// Trial application.
				leaf.Defences = append(leaf.Defences, cm)
				gain := (base - t.SuccessProbability()) / math.Max(cm.Cost, 1e-9)
				leaf.Defences = leaf.Defences[:len(leaf.Defences)-1]
				if gain > bestGain {
					bestGain = gain
					c := candidate{leaf: leaf, cm: cm}
					best = &c
				}
			}
		}
		if best == nil || bestGain <= 1e-12 {
			break
		}
		best.leaf.Defences = append(best.leaf.Defences, best.cm)
		remaining -= best.cm.Cost
		if applied[best.leaf.Name] == nil {
			applied[best.leaf.Name] = map[string]bool{}
		}
		applied[best.leaf.Name][best.cm.Name] = true
		syn.Applied = append(syn.Applied, AppliedDefence{
			Leaf:           best.leaf.Name,
			Countermeasure: best.cm.Name,
			RiskReduction:  base - t.SuccessProbability(),
		})
		syn.SpentBudget += best.cm.Cost
	}
	syn.After = t.SuccessProbability()
	return syn
}

// StandardLibrary returns the customizable countermeasure primitives the
// DPE ships with.
func StandardLibrary() []Countermeasure {
	return []Countermeasure{
		{Name: "tls-mutual-auth", Effectiveness: 0.90, Cost: 2, Covers: []string{"network", "spoofing"}},
		{Name: "encrypted-storage", Effectiveness: 0.85, Cost: 2, Covers: []string{"storage", "data-at-rest"}},
		{Name: "secure-boot", Effectiveness: 0.95, Cost: 3, Covers: []string{"firmware"}},
		{Name: "input-sanitization", Effectiveness: 0.80, Cost: 1, Covers: []string{"injection"}},
		{Name: "rate-limiting", Effectiveness: 0.60, Cost: 1, Covers: []string{"dos", "network"}},
		{Name: "attestation", Effectiveness: 0.75, Cost: 2, Covers: []string{"spoofing", "firmware"}},
		{Name: "anomaly-detection", Effectiveness: 0.50, Cost: 1, Covers: []string{"network", "injection", "dos"}},
	}
}

// Render pretty-prints the tree with probabilities and defences.
func (t *Tree) Render() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		indent := strings.Repeat("  ", depth)
		switch n.Gate {
		case Leaf:
			fmt.Fprintf(&b, "%s- %s [p=%.2f→%.2f cost=%.1f]", indent, n.Name, n.Prob, n.residualProb(), n.Cost)
			if len(n.Defences) > 0 {
				var names []string
				for _, d := range n.Defences {
					names = append(names, d.Name)
				}
				fmt.Fprintf(&b, " defended-by=%s", strings.Join(names, ","))
			}
			b.WriteString("\n")
		default:
			fmt.Fprintf(&b, "%s%s %s\n", indent, n.Gate, n.Name)
			for _, c := range n.Children {
				walk(c, depth+1)
			}
		}
	}
	fmt.Fprintf(&b, "ADT %s (P(success)=%.3f, min attacker cost=%.1f)\n", t.Name, t.SuccessProbability(), t.MinAttackCost())
	walk(t.Root, 0)
	return b.String()
}
