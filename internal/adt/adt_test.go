package adt

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// sampleTree: compromise-system = OR(network-path = AND(intercept, spoof),
// direct = firmware-exploit).
func sampleTree() *Tree {
	return &Tree{
		Name: "compromise-edge-node",
		Root: &Node{
			Name: "compromise", Gate: Or,
			Children: []*Node{
				{
					Name: "network-path", Gate: And,
					Children: []*Node{
						{Name: "intercept", Gate: Leaf, Prob: 0.5, Cost: 4, Tags: []string{"network"}},
						{Name: "spoof", Gate: Leaf, Prob: 0.4, Cost: 3, Tags: []string{"spoofing"}},
					},
				},
				{Name: "firmware-exploit", Gate: Leaf, Prob: 0.2, Cost: 10, Tags: []string{"firmware"}},
			},
		},
	}
}

func TestValidate(t *testing.T) {
	tr := sampleTree()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Tree{
		{Name: "no-root"},
		{Name: "leaf-kids", Root: &Node{Name: "l", Gate: Leaf, Children: []*Node{{Name: "x", Gate: Leaf}}}},
		{Name: "empty-gate", Root: &Node{Name: "g", Gate: Or}},
		{Name: "bad-prob", Root: &Node{Name: "l", Gate: Leaf, Prob: 1.5}},
		{Name: "neg-cost", Root: &Node{Name: "l", Gate: Leaf, Prob: 0.5, Cost: -1}},
		{Name: "unnamed", Root: &Node{Name: "g", Gate: Or, Children: []*Node{{Gate: Leaf}}}},
		{Name: "bad-gate", Root: &Node{Name: "x", Gate: Gate(9)}},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("tree %q validated", b.Name)
		}
	}
	shared := &Node{Name: "s", Gate: Leaf, Prob: 0.1}
	dag := &Tree{Name: "dag", Root: &Node{Name: "r", Gate: Or, Children: []*Node{shared, shared}}}
	if err := dag.Validate(); err == nil {
		t.Fatal("DAG accepted as tree")
	}
}

func TestSuccessProbability(t *testing.T) {
	tr := sampleTree()
	// AND: 0.5·0.4 = 0.2; OR with 0.2: 1-(0.8·0.8) = 0.36.
	if p := tr.SuccessProbability(); math.Abs(p-0.36) > 1e-9 {
		t.Fatalf("P = %v, want 0.36", p)
	}
}

func TestMinAttackCost(t *testing.T) {
	tr := sampleTree()
	// AND path costs 7; leaf path costs 10 → min 7.
	if c := tr.MinAttackCost(); c != 7 {
		t.Fatalf("cost = %v, want 7", c)
	}
}

func TestMinimalCutSets(t *testing.T) {
	tr := sampleTree()
	sets := tr.MinimalCutSets()
	if len(sets) != 2 {
		t.Fatalf("cut sets = %v", sets)
	}
	if len(sets[0]) != 1 || sets[0][0] != "firmware-exploit" {
		t.Fatalf("first set = %v", sets[0])
	}
	if len(sets[1]) != 2 || sets[1][0] != "intercept" || sets[1][1] != "spoof" {
		t.Fatalf("second set = %v", sets[1])
	}
}

func TestLeaves(t *testing.T) {
	if got := len(sampleTree().Leaves()); got != 3 {
		t.Fatalf("leaves = %d", got)
	}
}

func TestSynthesizeReducesRisk(t *testing.T) {
	tr := sampleTree()
	syn := tr.Synthesize(StandardLibrary(), 10)
	if syn.After >= syn.Before {
		t.Fatalf("no risk reduction: %v → %v", syn.Before, syn.After)
	}
	if syn.After > 0.1 {
		t.Fatalf("residual risk too high: %v", syn.After)
	}
	if len(syn.Applied) == 0 || syn.SpentBudget <= 0 || syn.SpentBudget > 10 {
		t.Fatalf("synthesis = %+v", syn)
	}
	// Applications are recorded with positive reductions.
	for _, a := range syn.Applied {
		if a.RiskReduction <= 0 {
			t.Fatalf("non-positive reduction: %+v", a)
		}
	}
}

func TestSynthesizeRespectsBudget(t *testing.T) {
	tr := sampleTree()
	syn := tr.Synthesize(StandardLibrary(), 1) // only cost-1 defences fit
	if syn.SpentBudget > 1 {
		t.Fatalf("budget exceeded: %v", syn.SpentBudget)
	}
	tr2 := sampleTree()
	syn0 := tr2.Synthesize(StandardLibrary(), 0)
	if len(syn0.Applied) != 0 || syn0.Before != syn0.After {
		t.Fatalf("zero budget applied defences: %+v", syn0)
	}
}

func TestSynthesizeOnlyMatchingTags(t *testing.T) {
	tr := &Tree{Name: "t", Root: &Node{Name: "l", Gate: Leaf, Prob: 0.9, Tags: []string{"exotic"}}}
	syn := tr.Synthesize(StandardLibrary(), 100)
	if len(syn.Applied) != 0 {
		t.Fatalf("untagged defences applied: %+v", syn.Applied)
	}
}

func TestSynthesizeNoDuplicateApplication(t *testing.T) {
	tr := sampleTree()
	syn := tr.Synthesize(StandardLibrary(), 1000)
	seen := map[string]bool{}
	for _, a := range syn.Applied {
		key := a.Leaf + "/" + a.Countermeasure
		if seen[key] {
			t.Fatalf("countermeasure %s applied twice", key)
		}
		seen[key] = true
	}
}

func TestProbabilityBoundsProperty(t *testing.T) {
	// For arbitrary leaf probabilities the root probability stays in
	// [0,1] and synthesis never increases it.
	if err := quick.Check(func(p1, p2, p3 uint8) bool {
		tr := sampleTree()
		tr.Root.Children[0].Children[0].Prob = float64(p1) / 255
		tr.Root.Children[0].Children[1].Prob = float64(p2) / 255
		tr.Root.Children[1].Prob = float64(p3) / 255
		before := tr.SuccessProbability()
		if before < 0 || before > 1 {
			return false
		}
		syn := tr.Synthesize(StandardLibrary(), 5)
		return syn.After >= 0 && syn.After <= before+1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAndMonotoneProperty(t *testing.T) {
	// Adding a child to an AND gate can only lower success probability.
	if err := quick.Check(func(probs []uint8) bool {
		if len(probs) == 0 {
			return true
		}
		var kids []*Node
		last := 1.1
		for i, p := range probs {
			kids = append(kids, &Node{Name: string(rune('a' + i%26)), Gate: Leaf, Prob: float64(p) / 255})
			tr := &Tree{Name: "t", Root: &Node{Name: "r", Gate: And, Children: append([]*Node(nil), kids...)}}
			cur := tr.SuccessProbability()
			if cur > last+1e-12 {
				return false
			}
			last = cur
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRender(t *testing.T) {
	tr := sampleTree()
	tr.Synthesize(StandardLibrary(), 10)
	out := tr.Render()
	for _, want := range []string{"ADT compromise-edge-node", "OR compromise", "AND network-path", "defended-by"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if Gate(9).String() == "" || Leaf.String() != "LEAF" {
		t.Fatal("gate strings")
	}
}
