// Package mlir implements the miniature multi-level IR at the heart of
// the MYRTUS DPE node-level step (§V): an SSA-based, dialect-extensible
// IR in the image of MLIR, with a textual format, a verifier, rewrite
// passes, the dialects the paper names (dfg for dataflow, base2 for
// binary numeral types, cgra for coarse-grained reconfigurable arrays),
// an ONNX-style model importer, and an HLS estimator that lowers dfg
// graphs to FPGA bitstream artifacts with operating points.
package mlir

import (
	"fmt"
	"sort"
	"strings"
)

// Type is a textual IR type ("f32", "i32", "tensor<1x224x224xf32>",
// "base2.fixed<8,4>", "none").
type Type string

// Value is one SSA value.
type Value struct {
	ID   int
	Type Type
	// def is the op producing this value (nil for block arguments).
	def *Op
	// uses counts consuming ops (maintained by the builder/passes).
	uses int
}

// Op is one operation instance.
type Op struct {
	Dialect string
	Name    string
	// Operands are consumed SSA values.
	Operands []*Value
	// Results are produced SSA values.
	Results []*Value
	// Attrs are named constants (string, int64, float64, bool).
	Attrs map[string]any
	// Body is the optional nested region (single-block, like dfg.graph).
	Body *Block

	erased bool
}

// FullName returns "dialect.name".
func (o *Op) FullName() string { return o.Dialect + "." + o.Name }

// AttrString reads a string attribute with default.
func (o *Op) AttrString(key, def string) string {
	if v, ok := o.Attrs[key].(string); ok {
		return v
	}
	return def
}

// AttrInt reads an integer attribute with default.
func (o *Op) AttrInt(key string, def int64) int64 {
	switch v := o.Attrs[key].(type) {
	case int64:
		return v
	case float64:
		return int64(v)
	default:
		return def
	}
}

// AttrFloat reads a float attribute with default.
func (o *Op) AttrFloat(key string, def float64) float64 {
	switch v := o.Attrs[key].(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	default:
		return def
	}
}

// Block is a sequence of ops with optional arguments.
type Block struct {
	Args []*Value
	Ops  []*Op
}

// LiveOps returns non-erased ops.
func (b *Block) LiveOps() []*Op {
	var out []*Op
	for _, op := range b.Ops {
		if !op.erased {
			out = append(out, op)
		}
	}
	return out
}

// Module is the IR root: one top-level block.
type Module struct {
	Name   string
	Top    *Block
	nextID int
}

// NewModule returns an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, Top: &Block{}}
}

// NewValue mints a fresh SSA value of the given type.
func (m *Module) NewValue(t Type) *Value {
	m.nextID++
	return &Value{ID: m.nextID, Type: t}
}

// Builder appends ops to a block.
type Builder struct {
	mod   *Module
	block *Block
}

// NewBuilder returns a builder appending to the module's top block.
func NewBuilder(m *Module) *Builder { return &Builder{mod: m, block: m.Top} }

// InBlock returns a builder appending to b.
func (b *Builder) InBlock(blk *Block) *Builder { return &Builder{mod: b.mod, block: blk} }

// Module returns the underlying module.
func (b *Builder) Module() *Module { return b.mod }

// Create appends an op producing results of the given types.
func (b *Builder) Create(dialect, name string, operands []*Value, resultTypes []Type, attrs map[string]any) *Op {
	op := &Op{Dialect: dialect, Name: name, Operands: operands, Attrs: attrs}
	if op.Attrs == nil {
		op.Attrs = map[string]any{}
	}
	for _, rt := range resultTypes {
		v := b.mod.NewValue(rt)
		v.def = op
		op.Results = append(op.Results, v)
	}
	for _, o := range operands {
		o.uses++
	}
	b.block.Ops = append(b.block.Ops, op)
	return op
}

// CreateWithBody appends an op with a nested region.
func (b *Builder) CreateWithBody(dialect, name string, attrs map[string]any) (*Op, *Builder) {
	op := b.Create(dialect, name, nil, nil, attrs)
	op.Body = &Block{}
	return op, b.InBlock(op.Body)
}

// Erase marks op dead and releases its operand uses.
func (op *Op) Erase() {
	if op.erased {
		return
	}
	op.erased = true
	for _, o := range op.Operands {
		o.uses--
	}
}

// ReplaceAllUses rewires every use of old to new within the block tree.
func (m *Module) ReplaceAllUses(old, new *Value) {
	var walk func(b *Block)
	walk = func(b *Block) {
		for _, op := range b.Ops {
			if op.erased {
				continue
			}
			for i, o := range op.Operands {
				if o == old {
					op.Operands[i] = new
					old.uses--
					new.uses++
				}
			}
			if op.Body != nil {
				walk(op.Body)
			}
		}
	}
	walk(m.Top)
}

// Walk visits every live op depth-first.
func (m *Module) Walk(fn func(*Op)) {
	var walk func(b *Block)
	walk = func(b *Block) {
		for _, op := range b.Ops {
			if op.erased {
				continue
			}
			fn(op)
			if op.Body != nil {
				walk(op.Body)
			}
		}
	}
	walk(m.Top)
}

// OpCount returns the number of live ops.
func (m *Module) OpCount() int {
	n := 0
	m.Walk(func(*Op) { n++ })
	return n
}

// String prints the module in the textual format.
func (m *Module) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "module @%s {\n", m.Name)
	printBlock(&b, m.Top, 1)
	b.WriteString("}\n")
	return b.String()
}

func printBlock(b *strings.Builder, blk *Block, depth int) {
	indent := strings.Repeat("  ", depth)
	for _, op := range blk.LiveOps() {
		b.WriteString(indent)
		if len(op.Results) > 0 {
			var rs []string
			for _, r := range op.Results {
				rs = append(rs, fmt.Sprintf("%%%d", r.ID))
			}
			b.WriteString(strings.Join(rs, ", ") + " = ")
		}
		b.WriteString(op.FullName())
		if len(op.Operands) > 0 {
			var os []string
			for _, o := range op.Operands {
				os = append(os, fmt.Sprintf("%%%d", o.ID))
			}
			b.WriteString("(" + strings.Join(os, ", ") + ")")
		}
		if len(op.Attrs) > 0 {
			var keys []string
			for k := range op.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			var kvs []string
			for _, k := range keys {
				kvs = append(kvs, k+" = "+printAttr(op.Attrs[k]))
			}
			b.WriteString(" {" + strings.Join(kvs, ", ") + "}")
		}
		// Type signature.
		var ins, outs []string
		for _, o := range op.Operands {
			ins = append(ins, string(o.Type))
		}
		for _, r := range op.Results {
			outs = append(outs, string(r.Type))
		}
		fmt.Fprintf(b, " : (%s) -> (%s)", strings.Join(ins, ", "), strings.Join(outs, ", "))
		if op.Body != nil {
			b.WriteString(" {\n")
			printBlock(b, op.Body, depth+1)
			b.WriteString(indent + "}")
		}
		b.WriteString("\n")
	}
}

func printAttr(v any) string {
	switch x := v.(type) {
	case string:
		return fmt.Sprintf("%q", x)
	case bool:
		return fmt.Sprintf("%v", x)
	case int64:
		return fmt.Sprintf("%d", x)
	case float64:
		return fmt.Sprintf("%g", x)
	default:
		return fmt.Sprintf("%v", x)
	}
}
