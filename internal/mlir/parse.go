package mlir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual format produced by Module.String, so modules
// round-trip. It is line-oriented: one op per line, nested regions
// between "{" and a line containing only "}".
func Parse(src string) (*Module, error) {
	var lines []string
	for _, l := range strings.Split(src, "\n") {
		t := strings.TrimSpace(l)
		if t != "" && !strings.HasPrefix(t, "//") {
			lines = append(lines, t)
		}
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("mlir: empty module text")
	}
	head := lines[0]
	if !strings.HasPrefix(head, "module @") || !strings.HasSuffix(head, "{") {
		return nil, fmt.Errorf("mlir: expected 'module @name {', got %q", head)
	}
	name := strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(head, "module @"), "{"))
	if lines[len(lines)-1] != "}" {
		return nil, fmt.Errorf("mlir: module not closed")
	}
	m := NewModule(name)
	vals := map[int]*Value{}
	p := &irParser{lines: lines, pos: 1, mod: m, vals: vals}
	if err := p.parseBlock(m.Top); err != nil {
		return nil, err
	}
	if p.pos != len(lines) {
		return nil, fmt.Errorf("mlir: trailing content at line %d", p.pos)
	}
	return m, nil
}

type irParser struct {
	lines []string
	pos   int
	mod   *Module
	vals  map[int]*Value
}

// parseBlock consumes ops until the closing "}" (which it consumes too).
func (p *irParser) parseBlock(blk *Block) error {
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		if line == "}" {
			p.pos++
			return nil
		}
		op, hasBody, err := p.parseOp(line)
		if err != nil {
			return fmt.Errorf("mlir: line %d: %w", p.pos+1, err)
		}
		p.pos++
		if hasBody {
			op.Body = &Block{}
			if err := p.parseBlock(op.Body); err != nil {
				return err
			}
		}
		blk.Ops = append(blk.Ops, op)
	}
	return fmt.Errorf("mlir: unterminated block")
}

func (p *irParser) parseOp(line string) (*Op, bool, error) {
	hasBody := false
	if strings.HasSuffix(line, "{") {
		hasBody = true
		line = strings.TrimSpace(strings.TrimSuffix(line, "{"))
	}
	// Results.
	var resultIDs []int
	if eq := strings.Index(line, " = "); eq >= 0 && strings.HasPrefix(line, "%") {
		for _, r := range strings.Split(line[:eq], ",") {
			r = strings.TrimSpace(r)
			id, err := parseValueRef(r)
			if err != nil {
				return nil, false, err
			}
			resultIDs = append(resultIDs, id)
		}
		line = line[eq+3:]
	}
	// Type signature " : (...) -> (...)" from the right.
	sig := strings.LastIndex(line, " : ")
	if sig < 0 {
		return nil, false, fmt.Errorf("missing type signature in %q", line)
	}
	sigText := line[sig+3:]
	line = line[:sig]
	inTypes, outTypes, err := parseSignature(sigText)
	if err != nil {
		return nil, false, err
	}
	// Attributes "{...}".
	attrs := map[string]any{}
	if i := strings.Index(line, " {"); i >= 0 {
		attrText := strings.TrimSpace(line[i+1:])
		if !strings.HasPrefix(attrText, "{") || !strings.HasSuffix(attrText, "}") {
			return nil, false, fmt.Errorf("malformed attributes in %q", line)
		}
		attrs, err = parseAttrs(attrText[1 : len(attrText)-1])
		if err != nil {
			return nil, false, err
		}
		line = strings.TrimSpace(line[:i])
	}
	// Operands "(...)".
	var operandIDs []int
	if i := strings.Index(line, "("); i >= 0 {
		if !strings.HasSuffix(line, ")") {
			return nil, false, fmt.Errorf("malformed operands in %q", line)
		}
		inner := line[i+1 : len(line)-1]
		if strings.TrimSpace(inner) != "" {
			for _, oref := range strings.Split(inner, ",") {
				id, err := parseValueRef(strings.TrimSpace(oref))
				if err != nil {
					return nil, false, err
				}
				operandIDs = append(operandIDs, id)
			}
		}
		line = line[:i]
	}
	full := strings.TrimSpace(line)
	dot := strings.Index(full, ".")
	if dot <= 0 || dot == len(full)-1 {
		return nil, false, fmt.Errorf("op name %q is not dialect.name", full)
	}
	op := &Op{Dialect: full[:dot], Name: full[dot+1:], Attrs: attrs}
	if len(operandIDs) != len(inTypes) {
		return nil, false, fmt.Errorf("operand/type count mismatch (%d vs %d)", len(operandIDs), len(inTypes))
	}
	if len(resultIDs) != len(outTypes) {
		return nil, false, fmt.Errorf("result/type count mismatch (%d vs %d)", len(resultIDs), len(outTypes))
	}
	for i, id := range operandIDs {
		v, ok := p.vals[id]
		if !ok {
			return nil, false, fmt.Errorf("use of undefined value %%%d", id)
		}
		if v.Type != inTypes[i] {
			return nil, false, fmt.Errorf("type mismatch on %%%d: %s vs %s", id, v.Type, inTypes[i])
		}
		v.uses++
		op.Operands = append(op.Operands, v)
	}
	for i, id := range resultIDs {
		if _, dup := p.vals[id]; dup {
			return nil, false, fmt.Errorf("redefinition of %%%d", id)
		}
		v := &Value{ID: id, Type: outTypes[i], def: op}
		p.vals[id] = v
		op.Results = append(op.Results, v)
		if id > p.mod.nextID {
			p.mod.nextID = id
		}
	}
	return op, hasBody, nil
}

func parseValueRef(s string) (int, error) {
	if !strings.HasPrefix(s, "%") {
		return 0, fmt.Errorf("bad value reference %q", s)
	}
	return strconv.Atoi(s[1:])
}

func parseSignature(s string) (ins, outs []Type, err error) {
	parts := strings.Split(s, " -> ")
	if len(parts) != 2 {
		return nil, nil, fmt.Errorf("bad signature %q", s)
	}
	parse := func(p string) ([]Type, error) {
		p = strings.TrimSpace(p)
		if !strings.HasPrefix(p, "(") || !strings.HasSuffix(p, ")") {
			return nil, fmt.Errorf("bad type list %q", p)
		}
		inner := strings.TrimSpace(p[1 : len(p)-1])
		if inner == "" {
			return nil, nil
		}
		var out []Type
		depth := 0
		start := 0
		for i := 0; i < len(inner); i++ {
			switch inner[i] {
			case '<':
				depth++
			case '>':
				depth--
			case ',':
				if depth == 0 {
					out = append(out, Type(strings.TrimSpace(inner[start:i])))
					start = i + 1
				}
			}
		}
		out = append(out, Type(strings.TrimSpace(inner[start:])))
		return out, nil
	}
	if ins, err = parse(parts[0]); err != nil {
		return nil, nil, err
	}
	if outs, err = parse(parts[1]); err != nil {
		return nil, nil, err
	}
	return ins, outs, nil
}

func parseAttrs(s string) (map[string]any, error) {
	attrs := map[string]any{}
	if strings.TrimSpace(s) == "" {
		return attrs, nil
	}
	// Split on top-level commas (respecting quotes).
	var parts []string
	inQuote := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inQuote = !inQuote
		case ',':
			if !inQuote {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	for _, part := range parts {
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad attribute %q", part)
		}
		key := strings.TrimSpace(kv[0])
		val := strings.TrimSpace(kv[1])
		switch {
		case strings.HasPrefix(val, "\"") && strings.HasSuffix(val, "\""):
			unq, err := strconv.Unquote(val)
			if err != nil {
				return nil, err
			}
			attrs[key] = unq
		case val == "true":
			attrs[key] = true
		case val == "false":
			attrs[key] = false
		default:
			if i, err := strconv.ParseInt(val, 10, 64); err == nil {
				attrs[key] = i
			} else if f, err := strconv.ParseFloat(val, 64); err == nil {
				attrs[key] = f
			} else {
				return nil, fmt.Errorf("bad attribute value %q", val)
			}
		}
	}
	return attrs, nil
}
