package mlir

import (
	"fmt"
	"sort"
)

// Pass is one module transformation or analysis.
type Pass interface {
	Name() string
	Run(m *Module) error
}

// PassManager runs a pipeline of passes, verifying after each.
type PassManager struct {
	passes []Pass
	// Trace records pass names and op counts for pipeline reports.
	Trace []string
}

// AddPass appends a pass to the pipeline.
func (pm *PassManager) AddPass(p Pass) { pm.passes = append(pm.passes, p) }

// Run executes the pipeline.
func (pm *PassManager) Run(m *Module) error {
	if err := Verify(m); err != nil {
		return fmt.Errorf("mlir: pre-pipeline verification: %w", err)
	}
	for _, p := range pm.passes {
		if err := p.Run(m); err != nil {
			return fmt.Errorf("mlir: pass %s: %w", p.Name(), err)
		}
		if err := Verify(m); err != nil {
			return fmt.Errorf("mlir: after pass %s: %w", p.Name(), err)
		}
		pm.Trace = append(pm.Trace, fmt.Sprintf("%s (ops=%d)", p.Name(), m.OpCount()))
	}
	return nil
}

// Verify checks SSA and dialect invariants: every operand defined, no
// erased defs in use, dfg.node has kernel+latency attributes, base2
// arithmetic has matching widths.
func Verify(m *Module) error {
	defined := map[*Value]bool{}
	var verifyBlock func(b *Block) error
	verifyBlock = func(b *Block) error {
		for _, a := range b.Args {
			defined[a] = true
		}
		for _, op := range b.LiveOps() {
			for _, o := range op.Operands {
				if !defined[o] {
					return fmt.Errorf("op %s uses %%%d before definition", op.FullName(), o.ID)
				}
			}
			for _, r := range op.Results {
				if defined[r] {
					return fmt.Errorf("op %s redefines %%%d", op.FullName(), r.ID)
				}
				defined[r] = true
			}
			switch op.FullName() {
			case "dfg.node":
				if op.AttrString("kernel", "") == "" {
					return fmt.Errorf("dfg.node without kernel attribute")
				}
				if op.AttrFloat("gops", 0) <= 0 {
					return fmt.Errorf("dfg.node %q needs positive gops", op.AttrString("kernel", ""))
				}
			case "base2.add", "base2.mul":
				if len(op.Operands) != 2 || len(op.Results) != 1 {
					return fmt.Errorf("%s must be binary", op.FullName())
				}
				if op.Operands[0].Type != op.Operands[1].Type || op.Operands[0].Type != op.Results[0].Type {
					return fmt.Errorf("%s operand/result types disagree", op.FullName())
				}
			case "cgra.place":
				if op.AttrInt("pe", -1) < 0 {
					return fmt.Errorf("cgra.place needs a pe attribute")
				}
			}
			if op.Body != nil {
				if err := verifyBlock(op.Body); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return verifyBlock(m.Top)
}

// verifyPass wraps Verify as a Pass.
type verifyPass struct{}

func (verifyPass) Name() string        { return "verify" }
func (verifyPass) Run(m *Module) error { return Verify(m) }

// NewVerifyPass returns a standalone verification pass.
func NewVerifyPass() Pass { return verifyPass{} }

// dcePass erases ops with no used results and no side effects.
type dcePass struct{}

// NewDCEPass returns a dead-code-elimination pass. Ops whose dialect is
// "func" or whose name ends in "return"/"output" are roots.
func NewDCEPass() Pass { return dcePass{} }

func (dcePass) Name() string { return "dce" }

func (dcePass) Run(m *Module) error {
	changed := true
	for changed {
		changed = false
		var walk func(b *Block)
		walk = func(b *Block) {
			for _, op := range b.LiveOps() {
				if op.Body != nil {
					walk(op.Body)
				}
				if isRoot(op) {
					continue
				}
				live := false
				for _, r := range op.Results {
					if r.uses > 0 {
						live = true
						break
					}
				}
				if !live {
					op.Erase()
					changed = true
				}
			}
		}
		walk(m.Top)
	}
	return nil
}

func isRoot(op *Op) bool {
	if op.Body != nil {
		return true
	}
	switch op.Name {
	case "return", "output", "func":
		return true
	}
	return op.Dialect == "func"
}

// canonicalizePass folds base2 constant arithmetic.
type canonicalizePass struct{}

// NewCanonicalizePass returns the base2 constant-folding pass.
func NewCanonicalizePass() Pass { return canonicalizePass{} }

func (canonicalizePass) Name() string { return "canonicalize" }

func (canonicalizePass) Run(m *Module) error {
	constOf := func(v *Value) (float64, bool) {
		if v.def == nil || v.def.erased || v.def.FullName() != "base2.const" {
			return 0, false
		}
		return v.def.AttrFloat("value", 0), true
	}
	var walk func(b *Block, builder *Builder)
	walk = func(b *Block, builder *Builder) {
		for _, op := range b.LiveOps() {
			if op.Body != nil {
				walk(op.Body, builder.InBlock(op.Body))
			}
			if op.Dialect != "base2" || (op.Name != "add" && op.Name != "mul") {
				continue
			}
			a, okA := constOf(op.Operands[0])
			c, okC := constOf(op.Operands[1])
			switch {
			case okA && okC:
				// Full fold: new const op inserted in place, uses rewired.
				val := a + c
				if op.Name == "mul" {
					val = a * c
				}
				folded := &Op{Dialect: "base2", Name: "const", Attrs: map[string]any{"value": val}}
				res := builder.mod.NewValue(op.Results[0].Type)
				res.def = folded
				folded.Results = []*Value{res}
				insertBefore(b, op, folded)
				builder.mod.ReplaceAllUses(op.Results[0], res)
				op.Erase()
			case okA || okC:
				// Identity/absorber patterns: x+0, x·1 → x; x·0 → 0.
				cv, other := a, op.Operands[1]
				if okC {
					cv, other = c, op.Operands[0]
				}
				switch {
				case op.Name == "add" && cv == 0, op.Name == "mul" && cv == 1:
					builder.mod.ReplaceAllUses(op.Results[0], other)
					op.Erase()
				case op.Name == "mul" && cv == 0:
					zero := &Op{Dialect: "base2", Name: "const", Attrs: map[string]any{"value": 0.0}}
					res := builder.mod.NewValue(op.Results[0].Type)
					res.def = zero
					zero.Results = []*Value{res}
					insertBefore(b, op, zero)
					builder.mod.ReplaceAllUses(op.Results[0], res)
					op.Erase()
				}
			}
		}
	}
	walk(m.Top, NewBuilder(m))
	return nil
}

func insertBefore(b *Block, anchor, newOp *Op) {
	for i, op := range b.Ops {
		if op == anchor {
			b.Ops = append(b.Ops[:i], append([]*Op{newOp}, b.Ops[i:]...)...)
			return
		}
	}
	b.Ops = append(b.Ops, newOp)
}

// fuseDFGPass merges producer→consumer dfg.node pairs when the producer
// has a single use and both are marked fusable — the classic kernel
// fusion that removes intermediate buffers on the accelerator.
type fuseDFGPass struct{ fused int }

// NewFuseDFGPass returns the dataflow fusion pass.
func NewFuseDFGPass() *FuseDFGPass { return &FuseDFGPass{} }

// FuseDFGPass exposes the fusion count for pipeline reports.
type FuseDFGPass struct{ Fused int }

// Name implements Pass.
func (*FuseDFGPass) Name() string { return "dfg-fuse" }

// Run implements Pass.
func (p *FuseDFGPass) Run(m *Module) error {
	changed := true
	for changed {
		changed = false
		var walk func(b *Block)
		walk = func(b *Block) {
			for _, op := range b.LiveOps() {
				if op.Body != nil {
					walk(op.Body)
				}
				if op.FullName() != "dfg.node" || !attrBool(op, "fusable") {
					continue
				}
				// Single producer operand that is itself a fusable node
				// with exactly one use.
				for _, in := range op.Operands {
					prod := in.def
					if prod == nil || prod.erased || prod.FullName() != "dfg.node" {
						continue
					}
					if !attrBool(prod, "fusable") || in.uses != 1 || len(prod.Results) != 1 {
						continue
					}
					// Fuse: op absorbs prod's cost and operands.
					op.Attrs["kernel"] = prod.AttrString("kernel", "") + "+" + op.AttrString("kernel", "")
					op.Attrs["gops"] = prod.AttrFloat("gops", 0) + op.AttrFloat("gops", 0)
					op.Attrs["area"] = prod.AttrInt("area", 0) + op.AttrInt("area", 0)
					// Replace the fused operand with prod's operands.
					var newOperands []*Value
					for _, o := range op.Operands {
						if o == in {
							newOperands = append(newOperands, prod.Operands...)
							for _, po := range prod.Operands {
								po.uses++
							}
							in.uses--
						} else {
							newOperands = append(newOperands, o)
						}
					}
					op.Operands = newOperands
					prod.Erase()
					p.Fused++
					changed = true
					break
				}
			}
		}
		walk(m.Top)
	}
	return nil
}

func attrBool(op *Op, key string) bool {
	v, ok := op.Attrs[key].(bool)
	return ok && v
}

// LowerToCGRAPass assigns dfg nodes to CGRA processing elements
// (round-robin over a PE grid, heaviest nodes first) and materializes
// cgra.place ops — the cgra-mlir role.
type LowerToCGRAPass struct {
	PEs int
	// Placements maps kernel → PE after the run.
	Placements map[string]int
}

// NewLowerToCGRAPass returns the lowering pass for a grid of n PEs.
func NewLowerToCGRAPass(n int) *LowerToCGRAPass {
	return &LowerToCGRAPass{PEs: n, Placements: map[string]int{}}
}

// Name implements Pass.
func (*LowerToCGRAPass) Name() string { return "lower-to-cgra" }

// Run implements Pass.
func (p *LowerToCGRAPass) Run(m *Module) error {
	if p.PEs <= 0 {
		return fmt.Errorf("cgra grid needs at least one PE")
	}
	type nodeCost struct {
		op   *Op
		gops float64
	}
	var nodes []nodeCost
	m.Walk(func(op *Op) {
		if op.FullName() == "dfg.node" {
			nodes = append(nodes, nodeCost{op, op.AttrFloat("gops", 0)})
		}
	})
	// Longest-processing-time assignment: heaviest first onto the least
	// loaded PE.
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].gops != nodes[j].gops {
			return nodes[i].gops > nodes[j].gops
		}
		return nodes[i].op.AttrString("layer", nodes[i].op.AttrString("kernel", "")) < nodes[j].op.AttrString("layer", nodes[j].op.AttrString("kernel", ""))
	})
	load := make([]float64, p.PEs)
	b := NewBuilder(m)
	for _, n := range nodes {
		pe := 0
		for i := 1; i < p.PEs; i++ {
			if load[i] < load[pe] {
				pe = i
			}
		}
		load[pe] += n.gops
		n.op.Attrs["pe"] = int64(pe)
		layer := n.op.AttrString("layer", n.op.AttrString("kernel", ""))
		b.Create("cgra", "place", nil, nil, map[string]any{
			"pe":     int64(pe),
			"kernel": layer,
		})
		p.Placements[layer] = pe
	}
	return nil
}

// Makespan returns the max PE load after lowering (giga-ops).
func (p *LowerToCGRAPass) Makespan(m *Module) float64 {
	load := make([]float64, p.PEs)
	m.Walk(func(op *Op) {
		if op.FullName() == "dfg.node" {
			pe := int(op.AttrInt("pe", 0))
			if pe >= 0 && pe < p.PEs {
				load[pe] += op.AttrFloat("gops", 0)
			}
		}
	})
	best := 0.0
	for _, l := range load {
		if l > best {
			best = l
		}
	}
	return best
}
