package mlir

import "fmt"

// ONNX-style model import (the "ML models in ONNX format" entry path of
// the DPE). A Model is a layer DAG with compute/area estimates; Import
// lowers it to a dfg.graph in the IR, from where the normal pipeline
// (fusion, CGRA lowering, HLS estimation) takes over — the ONNX-to-
// hardware flow of [26].

// Layer is one model operator.
type Layer struct {
	Name   string
	Kernel string // operator class: "conv2d", "relu", "maxpool", "gemm", …
	Inputs []string
	GOps   float64 // compute per inference
	Area   int64   // synthesized area units
	// Fusable marks element-wise layers the fusion pass may merge.
	Fusable bool
}

// Model is an ONNX-like inference graph.
type Model struct {
	Name   string
	Layers []Layer
}

// Conv adds a 2-D convolution layer (HWC input, square kernel).
func (m *Model) Conv(name, input string, h, w, cin, cout, k int) {
	gops := 2 * float64(h) * float64(w) * float64(cin) * float64(cout) * float64(k*k) / 1e9
	m.Layers = append(m.Layers, Layer{
		Name: name, Kernel: "conv2d", Inputs: inputs(input),
		GOps: gops, Area: int64(2 + k), Fusable: false,
	})
}

// Relu adds an element-wise activation.
func (m *Model) Relu(name, input string, elems int) {
	m.Layers = append(m.Layers, Layer{
		Name: name, Kernel: "relu", Inputs: inputs(input),
		GOps: float64(elems) / 1e9, Area: 1, Fusable: true,
	})
}

// MaxPool adds a pooling layer.
func (m *Model) MaxPool(name, input string, elems int) {
	m.Layers = append(m.Layers, Layer{
		Name: name, Kernel: "maxpool", Inputs: inputs(input),
		GOps: float64(elems) / 1e9, Area: 1, Fusable: true,
	})
}

// Gemm adds a fully-connected layer.
func (m *Model) Gemm(name, input string, in, out int) {
	m.Layers = append(m.Layers, Layer{
		Name: name, Kernel: "gemm", Inputs: inputs(input),
		GOps: 2 * float64(in) * float64(out) / 1e9, Area: 4, Fusable: false,
	})
}

func inputs(in string) []string {
	if in == "" {
		return nil
	}
	return []string{in}
}

// Validate checks layer references.
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("mlir: model needs a name")
	}
	if len(m.Layers) == 0 {
		return fmt.Errorf("mlir: model %s has no layers", m.Name)
	}
	seen := map[string]bool{}
	for _, l := range m.Layers {
		if l.Name == "" || l.Kernel == "" {
			return fmt.Errorf("mlir: model %s has an unnamed layer", m.Name)
		}
		if seen[l.Name] {
			return fmt.Errorf("mlir: model %s duplicates layer %q", m.Name, l.Name)
		}
		if l.GOps <= 0 {
			return fmt.Errorf("mlir: layer %q needs positive gops", l.Name)
		}
		for _, in := range l.Inputs {
			if !seen[in] {
				return fmt.Errorf("mlir: layer %q input %q not yet defined (layers must be topological)", l.Name, in)
			}
		}
		seen[l.Name] = true
	}
	return nil
}

// Import lowers the model into mod as a dfg.graph region containing one
// dfg.input, one dfg.node per layer, and one dfg.output. It returns the
// graph op.
func Import(model *Model, mod *Module) (*Op, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	b := NewBuilder(mod)
	graph, gb := b.CreateWithBody("dfg", "graph", map[string]any{"model": model.Name})
	in := gb.Create("dfg", "input", nil, []Type{"tensor"}, map[string]any{"name": "input"})
	values := map[string]*Value{}
	var last *Value
	for _, l := range model.Layers {
		var operands []*Value
		if len(l.Inputs) == 0 {
			operands = []*Value{in.Results[0]}
		} else {
			for _, name := range l.Inputs {
				operands = append(operands, values[name])
			}
		}
		node := gb.Create("dfg", "node", operands, []Type{"tensor"}, map[string]any{
			"kernel":  l.Kernel,
			"layer":   l.Name,
			"gops":    l.GOps,
			"area":    l.Area,
			"fusable": l.Fusable,
		})
		values[l.Name] = node.Results[0]
		last = node.Results[0]
	}
	gb.Create("dfg", "output", []*Value{last}, nil, map[string]any{"name": "output"})
	return graph, nil
}
