package mlir

import (
	"fmt"
	"strings"

	"myrtus/internal/dataflow"
	"myrtus/internal/fpga"
	"myrtus/internal/sim"
)

// The HLS estimation step (CIRCT-hls / Vitis-HLS role): turn a dfg.graph
// into (a) an analyzable SDF graph and (b) an FPGA bitstream artifact
// with operating points — the design-time metadata MIRTO exploits at
// runtime ([29][30]).

// HLSOptions tune the estimator.
type HLSOptions struct {
	// BaseClockMHz is the synthesis clock of the fastest point.
	BaseClockMHz float64
	// OpsPerCyclePerLane is the datapath width (fused MACs per cycle).
	OpsPerCyclePerLane float64
	// Parallelisms are the lane counts to emit as operating points,
	// fastest (largest) first.
	Parallelisms []int
	// WattsPerAreaUnitGHz scales dynamic power with area × clock.
	WattsPerAreaUnitGHz float64
}

// DefaultHLSOptions returns a 200 MHz, 2-ops/cycle/lane estimator with
// fast/balanced/eco points.
func DefaultHLSOptions() HLSOptions {
	return HLSOptions{
		BaseClockMHz:        200,
		OpsPerCyclePerLane:  2,
		Parallelisms:        []int{8, 4, 2},
		WattsPerAreaUnitGHz: 2.5,
	}
}

// HLSResult is the estimator output.
type HLSResult struct {
	Bitstream *fpga.Bitstream
	Graph     *dataflow.Graph
	TotalGOps float64
	Report    string
}

// EstimateHLS synthesizes the first dfg.graph in mod.
func EstimateHLS(mod *Module, opts HLSOptions) (*HLSResult, error) {
	var graph *Op
	mod.Walk(func(op *Op) {
		if graph == nil && op.FullName() == "dfg.graph" {
			graph = op
		}
	})
	if graph == nil {
		return nil, fmt.Errorf("mlir: module has no dfg.graph to synthesize")
	}
	if opts.BaseClockMHz <= 0 || opts.OpsPerCyclePerLane <= 0 || len(opts.Parallelisms) == 0 {
		return nil, fmt.Errorf("mlir: invalid HLS options")
	}

	// Build the SDF graph from SSA structure.
	g := dataflow.NewGraph(graph.AttrString("model", mod.Name))
	totalGOps := 0.0
	totalArea := int64(0)
	valueActor := map[*Value]string{}
	kernelName := ""
	for _, op := range graph.Body.LiveOps() {
		switch op.FullName() {
		case "dfg.input":
			if err := g.AddActor(dataflow.Actor{Name: "input", Kind: "src", Latency: 10 * sim.Microsecond, AreaUnits: 1}); err != nil {
				return nil, err
			}
			valueActor[op.Results[0]] = "input"
		case "dfg.node":
			name := op.AttrString("layer", op.AttrString("kernel", "node"))
			gops := op.AttrFloat("gops", 0)
			area := op.AttrInt("area", 1)
			totalGOps += gops
			totalArea += area
			// gops×1e9 ops at clock×1e6 Hz × ops/cycle → seconds; ×1e9 → ns.
			lat := sim.Time(gops * 1e3 / (opts.BaseClockMHz * opts.OpsPerCyclePerLane) * 1e9)
			if lat <= 0 {
				lat = sim.Microsecond
			}
			if err := g.AddActor(dataflow.Actor{Name: name, Kind: "kernel", Latency: lat, AreaUnits: int(area)}); err != nil {
				return nil, err
			}
			for _, in := range op.Operands {
				src, ok := valueActor[in]
				if !ok {
					return nil, fmt.Errorf("mlir: dfg.node %q consumes a value with no actor", name)
				}
				if err := g.AddEdge(dataflow.Edge{Src: src, Dst: name, Produce: 1, Consume: 1}); err != nil {
					return nil, err
				}
			}
			valueActor[op.Results[0]] = name
			if kernelName == "" {
				kernelName = op.AttrString("kernel", name)
			}
		case "dfg.output":
			if err := g.AddActor(dataflow.Actor{Name: "output", Kind: "sink", Latency: 10 * sim.Microsecond, AreaUnits: 1}); err != nil {
				return nil, err
			}
			for _, in := range op.Operands {
				src, ok := valueActor[in]
				if !ok {
					return nil, fmt.Errorf("mlir: dfg.output consumes a value with no actor")
				}
				if err := g.AddEdge(dataflow.Edge{Src: src, Dst: "output", Produce: 1, Consume: 1}); err != nil {
					return nil, err
				}
			}
		}
	}
	if totalGOps == 0 {
		return nil, fmt.Errorf("mlir: dfg.graph has no compute nodes")
	}
	analysis, err := g.Analyze()
	if err != nil {
		return nil, fmt.Errorf("mlir: synthesized graph unschedulable: %w", err)
	}

	// Operating points: parallelism scales throughput; clock scales with
	// a modest derate at higher parallelism; power scales with
	// area × lanes × clock.
	bs := &fpga.Bitstream{
		ID:           "bs-" + sanitize(g.Name),
		Kernel:       kernelName,
		AreaUnits:    int(totalArea),
		ReconfigTime: sim.Time(totalArea) * sim.Millisecond / 2,
	}
	names := []string{"fast", "balanced", "eco", "eco2", "eco3"}
	for i, par := range opts.Parallelisms {
		clock := opts.BaseClockMHz * (1 - 0.05*float64(i))
		perItemNs := totalGOps * 1e3 / (clock * opts.OpsPerCyclePerLane * float64(par)) * 1e9
		power := opts.WattsPerAreaUnitGHz * float64(totalArea) * float64(par) / float64(opts.Parallelisms[0]) * clock / 1000
		name := fmt.Sprintf("op%d", i)
		if i < len(names) {
			name = names[i]
		}
		bs.Points = append(bs.Points, fpga.OperatingPoint{
			Name:           name,
			ClockMHz:       clock,
			Parallelism:    par,
			LatencyPerItem: sim.Time(perItemNs),
			PowerWatts:     power,
		})
	}
	if err := bs.Validate(); err != nil {
		return nil, fmt.Errorf("mlir: estimator produced invalid bitstream: %w", err)
	}

	var rep strings.Builder
	fmt.Fprintf(&rep, "HLS estimate for %s\n", g.Name)
	fmt.Fprintf(&rep, "  total compute: %.3f GOps, area: %d units\n", totalGOps, totalArea)
	fmt.Fprintf(&rep, "  pipeline bottleneck: %s (period %v, %.1f iter/s)\n",
		analysis.Bottleneck, analysis.IterationPeriod, analysis.ThroughputHz)
	for _, p := range bs.Points {
		fmt.Fprintf(&rep, "  point %-9s clock=%.0fMHz lanes=%d latency/item=%v power=%.2fW energy/item=%.4fJ\n",
			p.Name, p.ClockMHz, p.Parallelism, p.LatencyPerItem, p.PowerWatts, p.EnergyPerItem())
	}
	return &HLSResult{Bitstream: bs, Graph: g, TotalGOps: totalGOps, Report: rep.String()}, nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '-' {
			return r
		}
		return '-'
	}, s)
}
