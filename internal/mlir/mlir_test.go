package mlir

import (
	"strings"
	"testing"
	"testing/quick"
)

func buildSimpleModule(t *testing.T) *Module {
	t.Helper()
	m := NewModule("test")
	b := NewBuilder(m)
	c1 := b.Create("base2", "const", nil, []Type{"base2.fixed<8,4>"}, map[string]any{"value": 2.0})
	c2 := b.Create("base2", "const", nil, []Type{"base2.fixed<8,4>"}, map[string]any{"value": 3.0})
	add := b.Create("base2", "add", []*Value{c1.Results[0], c2.Results[0]}, []Type{"base2.fixed<8,4>"}, nil)
	b.Create("func", "return", []*Value{add.Results[0]}, nil, nil)
	return m
}

func smallModel() *Model {
	mdl := &Model{Name: "tiny-cnn"}
	mdl.Conv("conv1", "", 32, 32, 3, 16, 3)
	mdl.Relu("relu1", "conv1", 32*32*16)
	mdl.MaxPool("pool1", "relu1", 32*32*16)
	mdl.Conv("conv2", "pool1", 16, 16, 16, 32, 3)
	mdl.Relu("relu2", "conv2", 16*16*32)
	mdl.Gemm("fc", "relu2", 8192, 10)
	return mdl
}

func TestBuilderAndPrint(t *testing.T) {
	m := buildSimpleModule(t)
	if m.OpCount() != 4 {
		t.Fatalf("ops = %d", m.OpCount())
	}
	text := m.String()
	for _, want := range []string{"module @test {", "base2.const", "value = 2", "base2.add", "func.return"} {
		if !strings.Contains(text, want) {
			t.Fatalf("print missing %q:\n%s", want, text)
		}
	}
}

func TestVerifyGoodAndBad(t *testing.T) {
	m := buildSimpleModule(t)
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	// Use-before-def: swap op order.
	m2 := buildSimpleModule(t)
	ops := m2.Top.Ops
	ops[0], ops[2] = ops[2], ops[0]
	if err := Verify(m2); err == nil {
		t.Fatal("use-before-def accepted")
	}
	// dfg.node without kernel.
	m3 := NewModule("bad")
	NewBuilder(m3).Create("dfg", "node", nil, []Type{"tensor"}, map[string]any{"gops": 1.0})
	if err := Verify(m3); err == nil {
		t.Fatal("kernel-less dfg.node accepted")
	}
	// base2.add type mismatch.
	m4 := NewModule("bad2")
	b4 := NewBuilder(m4)
	a := b4.Create("base2", "const", nil, []Type{"i8"}, map[string]any{"value": 1.0})
	c := b4.Create("base2", "const", nil, []Type{"i16"}, map[string]any{"value": 1.0})
	b4.Create("base2", "add", []*Value{a.Results[0], c.Results[0]}, []Type{"i8"}, nil)
	if err := Verify(m4); err == nil {
		t.Fatal("mixed-width base2.add accepted")
	}
	// cgra.place without pe.
	m5 := NewModule("bad3")
	NewBuilder(m5).Create("cgra", "place", nil, nil, nil)
	if err := Verify(m5); err == nil {
		t.Fatal("pe-less cgra.place accepted")
	}
}

func TestParseRoundTrip(t *testing.T) {
	m := buildSimpleModule(t)
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if m2.Name != "test" || m2.OpCount() != 4 {
		t.Fatalf("round trip: name=%q ops=%d", m2.Name, m2.OpCount())
	}
	if err := Verify(m2); err != nil {
		t.Fatal(err)
	}
	// Second round-trip is a fixed point.
	if m2.String() != text {
		t.Fatalf("not a fixed point:\n%s\nvs\n%s", m2.String(), text)
	}
}

func TestParseRoundTripWithRegions(t *testing.T) {
	mdl := smallModel()
	m := NewModule("cnn")
	if _, err := Import(mdl, m); err != nil {
		t.Fatal(err)
	}
	text := m.String()
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if m2.OpCount() != m.OpCount() {
		t.Fatalf("ops %d vs %d", m2.OpCount(), m.OpCount())
	}
	if m2.String() != text {
		t.Fatal("region round trip not a fixed point")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"not a module",
		"module @x {\n", // unterminated
		"module @x {\n%1 = foo(%9) : (i8) -> (i8)\n}",                                  // undefined operand
		"module @x {\nfoo : () -> ()\n}",                                               // no dialect dot
		"module @x {\n%1 = base2.const : () -> (i8)\n%1 = base2.const : () -> (i8)\n}", // redef
		"module @x {\nbase2.const\n}",                                                  // no signature
		"module @x {\n%1 = base2.const {v = @} : () -> (i8)\n}",                        // bad attr
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestDCEPass(t *testing.T) {
	m := NewModule("dce")
	b := NewBuilder(m)
	dead := b.Create("base2", "const", nil, []Type{"i8"}, map[string]any{"value": 9.0})
	live := b.Create("base2", "const", nil, []Type{"i8"}, map[string]any{"value": 1.0})
	b.Create("func", "return", []*Value{live.Results[0]}, nil, nil)
	_ = dead
	if err := NewDCEPass().Run(m); err != nil {
		t.Fatal(err)
	}
	if m.OpCount() != 2 {
		t.Fatalf("ops after DCE = %d", m.OpCount())
	}
}

func TestCanonicalizeFoldsConstants(t *testing.T) {
	m := buildSimpleModule(t)
	pm := &PassManager{}
	pm.AddPass(NewCanonicalizePass())
	pm.AddPass(NewDCEPass())
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	// add(2,3) → const 5; DCE removes the two source constants.
	var folded *Op
	m.Walk(func(op *Op) {
		if op.FullName() == "base2.const" {
			folded = op
		}
		if op.FullName() == "base2.add" {
			t.Fatal("add survived folding")
		}
	})
	if folded == nil || folded.AttrFloat("value", 0) != 5 {
		t.Fatalf("folded = %+v", folded)
	}
	if m.OpCount() != 2 {
		t.Fatalf("ops = %d", m.OpCount())
	}
	if len(pm.Trace) != 2 {
		t.Fatalf("trace = %v", pm.Trace)
	}
}

func TestCanonicalizeFoldProperty(t *testing.T) {
	if err := quick.Check(func(a, b int8, mul bool) bool {
		m := NewModule("p")
		bd := NewBuilder(m)
		c1 := bd.Create("base2", "const", nil, []Type{"i8"}, map[string]any{"value": float64(a)})
		c2 := bd.Create("base2", "const", nil, []Type{"i8"}, map[string]any{"value": float64(b)})
		name := "add"
		want := float64(a) + float64(b)
		if mul {
			name = "mul"
			want = float64(a) * float64(b)
		}
		op := bd.Create("base2", name, []*Value{c1.Results[0], c2.Results[0]}, []Type{"i8"}, nil)
		bd.Create("func", "return", []*Value{op.Results[0]}, nil, nil)
		pm := &PassManager{}
		pm.AddPass(NewCanonicalizePass())
		pm.AddPass(NewDCEPass())
		if err := pm.Run(m); err != nil {
			return false
		}
		got := -1e18
		m.Walk(func(o *Op) {
			if o.FullName() == "base2.const" {
				got = o.AttrFloat("value", 0)
			}
		})
		return got == want
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidate(t *testing.T) {
	if err := smallModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Model{Name: "b", Layers: []Layer{{Name: "x", Kernel: "k", GOps: 1, Inputs: []string{"ghost"}}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("dangling input accepted")
	}
	if err := (&Model{}).Validate(); err == nil {
		t.Fatal("nameless model accepted")
	}
	if err := (&Model{Name: "m"}).Validate(); err == nil {
		t.Fatal("empty model accepted")
	}
	dup := &Model{Name: "d", Layers: []Layer{
		{Name: "x", Kernel: "k", GOps: 1}, {Name: "x", Kernel: "k", GOps: 1}}}
	if err := dup.Validate(); err == nil {
		t.Fatal("duplicate layer accepted")
	}
}

func TestImportBuildsDFG(t *testing.T) {
	m := NewModule("cnn")
	graph, err := Import(smallModel(), m)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	nodes := 0
	for _, op := range graph.Body.LiveOps() {
		if op.FullName() == "dfg.node" {
			nodes++
		}
	}
	if nodes != 6 {
		t.Fatalf("dfg nodes = %d", nodes)
	}
}

func TestFuseDFGPass(t *testing.T) {
	m := NewModule("cnn")
	if _, err := Import(smallModel(), m); err != nil {
		t.Fatal(err)
	}
	before := m.OpCount()
	fuse := NewFuseDFGPass()
	pm := &PassManager{}
	pm.AddPass(fuse)
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	// relu1+pool1 fuse (both fusable, single-use chain); relu2 fuses into
	// nothing downstream (fc not fusable) but pool1 absorbs relu1.
	if fuse.Fused == 0 {
		t.Fatal("nothing fused")
	}
	if m.OpCount() >= before {
		t.Fatalf("op count did not shrink: %d → %d", before, m.OpCount())
	}
	fusedKernel := false
	m.Walk(func(op *Op) {
		if op.FullName() == "dfg.node" && strings.Contains(op.AttrString("kernel", ""), "+") {
			fusedKernel = true
		}
	})
	if !fusedKernel {
		t.Fatal("no fused kernel name")
	}
}

func TestLowerToCGRA(t *testing.T) {
	m := NewModule("cnn")
	if _, err := Import(smallModel(), m); err != nil {
		t.Fatal(err)
	}
	lower := NewLowerToCGRAPass(4)
	pm := &PassManager{}
	pm.AddPass(lower)
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	if len(lower.Placements) != 6 {
		t.Fatalf("placements = %v", lower.Placements)
	}
	places := 0
	m.Walk(func(op *Op) {
		if op.FullName() == "cgra.place" {
			places++
			if pe := op.AttrInt("pe", -1); pe < 0 || pe >= 4 {
				t.Fatalf("pe out of range: %d", pe)
			}
		}
	})
	if places != 6 {
		t.Fatalf("cgra.place ops = %d", places)
	}
	if lower.Makespan(m) <= 0 {
		t.Fatal("zero makespan")
	}
	// More PEs → no worse makespan.
	m2 := NewModule("cnn2")
	Import(smallModel(), m2) //nolint:errcheck
	lower8 := NewLowerToCGRAPass(8)
	if err := lower8.Run(m2); err != nil {
		t.Fatal(err)
	}
	if lower8.Makespan(m2) > lower.Makespan(m)+1e-9 {
		t.Fatalf("more PEs increased makespan: %v vs %v", lower8.Makespan(m2), lower.Makespan(m))
	}
	if err := NewLowerToCGRAPass(0).Run(NewModule("x")); err == nil {
		t.Fatal("0 PEs accepted")
	}
}

func TestEstimateHLS(t *testing.T) {
	m := NewModule("cnn")
	if _, err := Import(smallModel(), m); err != nil {
		t.Fatal(err)
	}
	res, err := EstimateHLS(m, DefaultHLSOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bitstream.Kernel == "" || len(res.Bitstream.Points) != 3 {
		t.Fatalf("bitstream = %+v", res.Bitstream)
	}
	// Operating points: fastest has lowest latency and highest power.
	pts := res.Bitstream.Points
	for i := 1; i < len(pts); i++ {
		if pts[i].LatencyPerItem <= pts[i-1].LatencyPerItem {
			t.Fatalf("latency not increasing across points: %v", pts)
		}
		if pts[i].PowerWatts >= pts[i-1].PowerWatts {
			t.Fatalf("power not decreasing across points: %v", pts)
		}
	}
	if _, err := res.Graph.Analyze(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Report, "HLS estimate") {
		t.Fatalf("report = %q", res.Report)
	}
	if res.TotalGOps <= 0 {
		t.Fatal("no compute")
	}
}

func TestEstimateHLSErrors(t *testing.T) {
	if _, err := EstimateHLS(NewModule("empty"), DefaultHLSOptions()); err == nil {
		t.Fatal("empty module synthesized")
	}
	m := NewModule("cnn")
	Import(smallModel(), m) //nolint:errcheck
	bad := DefaultHLSOptions()
	bad.Parallelisms = nil
	if _, err := EstimateHLS(m, bad); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestFullPipelineEndToEnd(t *testing.T) {
	// import → fuse → cgra lower → hls estimate: the DPE node-level step.
	m := NewModule("pipeline")
	if _, err := Import(smallModel(), m); err != nil {
		t.Fatal(err)
	}
	pm := &PassManager{}
	pm.AddPass(NewCanonicalizePass())
	pm.AddPass(NewFuseDFGPass())
	pm.AddPass(NewDCEPass())
	pm.AddPass(NewLowerToCGRAPass(4))
	if err := pm.Run(m); err != nil {
		t.Fatal(err)
	}
	res, err := EstimateHLS(m, DefaultHLSOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bitstream.AreaUnits <= 0 {
		t.Fatal("no area")
	}
}

func TestAttrAccessors(t *testing.T) {
	op := &Op{Attrs: map[string]any{"s": "x", "i": int64(3), "f": 2.5}}
	if op.AttrString("s", "") != "x" || op.AttrString("missing", "d") != "d" {
		t.Fatal("AttrString")
	}
	if op.AttrInt("i", 0) != 3 || op.AttrInt("f", 0) != 2 || op.AttrInt("missing", 7) != 7 {
		t.Fatal("AttrInt")
	}
	if op.AttrFloat("f", 0) != 2.5 || op.AttrFloat("i", 0) != 3 || op.AttrFloat("missing", 1) != 1 {
		t.Fatal("AttrFloat")
	}
}

func TestCanonicalizeIdentities(t *testing.T) {
	build := func(opName string, constVal float64) *Module {
		m := NewModule("id")
		b := NewBuilder(m)
		// An opaque (non-const) operand: result of an unfoldable op.
		src := b.Create("base2", "load", nil, []Type{"i8"}, map[string]any{"addr": int64(0)})
		cst := b.Create("base2", "const", nil, []Type{"i8"}, map[string]any{"value": constVal})
		op := b.Create("base2", opName, []*Value{src.Results[0], cst.Results[0]}, []Type{"i8"}, nil)
		b.Create("func", "return", []*Value{op.Results[0]}, nil, nil)
		pm := &PassManager{}
		pm.AddPass(NewCanonicalizePass())
		pm.AddPass(NewDCEPass())
		if err := pm.Run(m); err != nil {
			t.Fatal(err)
		}
		return m
	}
	// x + 0 → x: the add disappears, return consumes the load directly.
	m := build("add", 0)
	m.Walk(func(op *Op) {
		if op.FullName() == "base2.add" {
			t.Fatal("x+0 not folded")
		}
	})
	// x · 1 → x.
	m = build("mul", 1)
	m.Walk(func(op *Op) {
		if op.FullName() == "base2.mul" {
			t.Fatal("x·1 not folded")
		}
	})
	// x · 0 → 0: mul gone, a zero constant feeds return, load is dead.
	m = build("mul", 0)
	hasLoad := false
	var zero *Op
	m.Walk(func(op *Op) {
		switch op.FullName() {
		case "base2.mul":
			t.Fatal("x·0 not folded")
		case "base2.load":
			hasLoad = true
		case "base2.const":
			zero = op
		}
	})
	if hasLoad {
		t.Fatal("dead load survived DCE")
	}
	if zero == nil || zero.AttrFloat("value", -1) != 0 {
		t.Fatalf("zero constant missing: %+v", zero)
	}
	// x + 5 (non-identity) is left alone.
	m = build("add", 5)
	found := false
	m.Walk(func(op *Op) {
		if op.FullName() == "base2.add" {
			found = true
		}
	})
	if !found {
		t.Fatal("non-identity add folded incorrectly")
	}
}
