package mlir

import "testing"

// FuzzParse checks the IR parser never panics and that accepted modules
// reach a print/parse fixed point.
func FuzzParse(f *testing.F) {
	f.Add("module @m {\n}\n")
	f.Add("module @m {\n  %1 = base2.const {value = 2} : () -> (i8)\n}\n")
	f.Add("module @m {\n  dfg.graph {\n  }\n}\n")
	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return
		}
		text := m.String()
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("printed module does not re-parse: %v\n%s", err, text)
		}
		if m2.String() != text {
			t.Fatal("print/parse not a fixed point")
		}
	})
}
