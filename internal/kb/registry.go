package kb

import (
	"encoding/json"
	"fmt"
	"path"
	"sort"
)

// The Resource Registry / Status is the KB section the paper reserves for
// "a snapshot of the components availability and their status" (§III
// Monitoring & Observability, §VI). MIRTO Workload Managers read it when
// establishing deployment or reallocation directives.

// Key prefixes of the one ontological KB. All layers share these.
const (
	PrefixRegistry  = "/myrtus/registry/components/"
	PrefixStatus    = "/myrtus/registry/status/"
	PrefixHistory   = "/myrtus/kb/history/"
	PrefixDeploy    = "/myrtus/deployments/"
	PrefixModels    = "/myrtus/kb/models/"
	PrefixTrust     = "/myrtus/kb/trust/"
	PrefixOpPoints  = "/myrtus/kb/oppoints/"
	PrefixTelemetry = "/myrtus/kb/telemetry/"
	PrefixTraces    = "/myrtus/kb/traces/"
)

// ComponentRecord describes one continuum component in the registry.
type ComponentRecord struct {
	Name           string   `json:"name"`
	Layer          string   `json:"layer"` // "edge", "fog", "cloud"
	Kind           string   `json:"kind"`  // e.g. "hmpsoc", "fmdc", "gateway"
	Cluster        string   `json:"cluster,omitempty"`
	CPUCapacity    float64  `json:"cpuCapacity"` // cores
	MemCapacityMB  float64  `json:"memCapacityMB"`
	Accelerators   []string `json:"accelerators,omitempty"`
	SecurityLevels []string `json:"securityLevels,omitempty"` // supported suite names
	Protocols      []string `json:"protocols,omitempty"`      // e.g. "http", "mqtt", "coap"
}

// ComponentStatus is the frequently-updated half of the registry entry.
type ComponentStatus struct {
	Name        string  `json:"name"`
	Ready       bool    `json:"ready"`
	CPUUsed     float64 `json:"cpuUsed"`
	MemUsedMB   float64 `json:"memUsedMB"`
	PowerWatts  float64 `json:"powerWatts"`
	Temperature float64 `json:"temperatureC,omitempty"`
	SecurityLvl string  `json:"securityLevel,omitempty"` // active suite
	UpdatedAt   int64   `json:"updatedAtNanos"`
}

// Registry is the typed facade over the KB's resource section.
type Registry struct {
	kv     Backend
	leases *LeaseManager
}

// NewRegistry wraps a KB backend.
func NewRegistry(kv Backend) *Registry {
	return &Registry{kv: kv, leases: NewLeaseManager(kv)}
}

// Leases exposes the lease manager (heartbeat ticks come from the owner).
func (r *Registry) Leases() *LeaseManager { return r.leases }

// Register writes the static record and returns a heartbeat lease bound to
// the status key. The caller must KeepAlive the lease; if it stops, the
// status entry vanishes and the component reads as gone.
func (r *Registry) Register(rec ComponentRecord, now, ttl int64) (*Lease, error) {
	if rec.Name == "" {
		return nil, fmt.Errorf("kb: component record needs a name")
	}
	data, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	r.kv.Put(PrefixRegistry+rec.Name, data)
	lease := r.leases.Grant(now, ttl)
	st := ComponentStatus{Name: rec.Name, Ready: true, UpdatedAt: now}
	sdata, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	if err := r.leases.Attach(lease.ID, PrefixStatus+rec.Name, sdata); err != nil {
		return nil, err
	}
	return lease, nil
}

// Deregister removes a component entirely.
func (r *Registry) Deregister(name string) {
	r.kv.Delete(PrefixRegistry + name)
	r.kv.Delete(PrefixStatus + name)
}

// UpdateStatus writes a fresh status snapshot for the named component.
func (r *Registry) UpdateStatus(st ComponentStatus) error {
	if st.Name == "" {
		return fmt.Errorf("kb: status needs a name")
	}
	data, err := json.Marshal(st)
	if err != nil {
		return err
	}
	r.kv.Put(PrefixStatus+st.Name, data)
	return nil
}

// Component returns the static record for name.
func (r *Registry) Component(name string) (ComponentRecord, bool) {
	kv, ok := r.kv.Get(PrefixRegistry + name)
	if !ok {
		return ComponentRecord{}, false
	}
	var rec ComponentRecord
	if err := json.Unmarshal(kv.Value, &rec); err != nil {
		return ComponentRecord{}, false
	}
	return rec, true
}

// Status returns the latest status for name. A missing status (expired
// heartbeat) reports ok=false: the component is considered gone.
func (r *Registry) Status(name string) (ComponentStatus, bool) {
	kv, ok := r.kv.Get(PrefixStatus + name)
	if !ok {
		return ComponentStatus{}, false
	}
	var st ComponentStatus
	if err := json.Unmarshal(kv.Value, &st); err != nil {
		return ComponentStatus{}, false
	}
	return st, true
}

// List returns all registered components, optionally filtered by layer
// (empty means all), sorted by name.
func (r *Registry) List(layer string) []ComponentRecord {
	var out []ComponentRecord
	for _, kv := range r.kv.Range(PrefixRegistry) {
		var rec ComponentRecord
		if err := json.Unmarshal(kv.Value, &rec); err != nil {
			continue
		}
		if layer != "" && rec.Layer != layer {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Snapshot pairs a record with its live status.
type SnapshotEntry struct {
	Record ComponentRecord
	Status ComponentStatus
	Live   bool
}

// Snapshot returns the full registry view: every record plus its status
// (Live=false when the heartbeat lapsed).
func (r *Registry) Snapshot() []SnapshotEntry {
	recs := r.List("")
	out := make([]SnapshotEntry, 0, len(recs))
	for _, rec := range recs {
		st, ok := r.Status(rec.Name)
		out = append(out, SnapshotEntry{Record: rec, Status: st, Live: ok && st.Ready})
	}
	return out
}

// WatchStatus watches status changes for all components.
func (r *Registry) WatchStatus() *Watcher {
	return r.kv.Watch(PrefixStatus, 256)
}

// RecordHistory appends a historical observation batch under the given
// topic (e.g. "edge-0/latency"); the Network Manager's RL strategies read
// these back (§VI).
func (r *Registry) RecordHistory(topic string, seq int64, payload any) error {
	data, err := json.Marshal(payload)
	if err != nil {
		return err
	}
	key := path.Join(PrefixHistory, topic, fmt.Sprintf("%012d", seq))
	r.kv.Put(key, data)
	return nil
}

// History returns the payloads recorded under topic in sequence order.
func (r *Registry) History(topic string) [][]byte {
	prefix := path.Join(PrefixHistory, topic) + "/"
	kvs := r.kv.Range(prefix)
	out := make([][]byte, 0, len(kvs))
	for _, kv := range kvs {
		out = append(out, kv.Value)
	}
	return out
}
