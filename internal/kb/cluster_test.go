package kb

import (
	"fmt"
	"testing"
)

func TestClusterBasicReplication(t *testing.T) {
	c := NewCluster(3, 1)
	if c.Size() != 3 {
		t.Fatalf("Size = %d", c.Size())
	}
	if c.Leader() == 0 {
		t.Fatal("no leader")
	}
	if rev := c.Put("/k", []byte("v")); rev <= 0 {
		t.Fatalf("Put rev = %d", rev)
	}
	kv, ok := c.Get("/k")
	if !ok || string(kv.Value) != "v" {
		t.Fatalf("Get = %v %v", kv, ok)
	}
	// All replicas converge after some ticks.
	c.Ticks(20)
	for _, id := range c.Members() {
		kv, ok := c.StaleGet(id, "/k")
		if !ok || string(kv.Value) != "v" {
			t.Fatalf("replica %d missing key: %v %v", id, kv, ok)
		}
	}
}

func TestClusterDelete(t *testing.T) {
	c := NewCluster(3, 2)
	c.Put("/k", []byte("v"))
	rev, existed := c.Delete("/k")
	if !existed || rev <= 0 {
		t.Fatalf("Delete = %d %v", rev, existed)
	}
	if _, ok := c.Get("/k"); ok {
		t.Fatal("deleted key readable")
	}
	_, existed = c.Delete("/nope")
	if existed {
		t.Fatal("phantom delete")
	}
}

func TestClusterRangeAndRevision(t *testing.T) {
	c := NewCluster(3, 3)
	c.Put("/a/1", []byte("x"))
	c.Put("/a/2", []byte("y"))
	c.Put("/b/3", []byte("z"))
	got := c.Range("/a/")
	if len(got) != 2 {
		t.Fatalf("Range = %v", got)
	}
	if c.Revision() <= 0 {
		t.Fatal("revision not advancing")
	}
}

func TestClusterSurvivesMinorityCrash(t *testing.T) {
	c := NewCluster(5, 4)
	c.Put("/before", []byte("1"))
	lead := c.Leader()
	c.Crash(lead)
	if rev := c.Put("/after", []byte("2")); rev <= 0 {
		t.Fatal("put failed after leader crash")
	}
	if nl := c.Leader(); nl == lead || nl == 0 {
		t.Fatalf("leader = %d (old %d)", nl, lead)
	}
	kv, ok := c.Get("/before")
	if !ok || string(kv.Value) != "1" {
		t.Fatal("pre-crash data lost")
	}
	// Recovered node catches up.
	c.Recover(lead)
	c.Ticks(50)
	if kv, ok := c.StaleGet(lead, "/after"); !ok || string(kv.Value) != "2" {
		t.Fatalf("recovered replica did not catch up: %v %v", kv, ok)
	}
}

func TestClusterPartitionAndHeal(t *testing.T) {
	c := NewCluster(5, 5)
	c.Put("/k", []byte("v0"))
	// Partition 2 | 3: majority side keeps working.
	c.Partition([]NodeID{1, 2}, []NodeID{3, 4, 5})
	if rev := c.Put("/k", []byte("v1")); rev <= 0 {
		t.Fatal("majority cannot commit during partition")
	}
	c.Heal()
	c.Ticks(100)
	kv, ok := c.Get("/k")
	if !ok || string(kv.Value) != "v1" {
		t.Fatalf("post-heal value = %q", kv.Value)
	}
	for _, id := range c.Members() {
		if kv, ok := c.StaleGet(id, "/k"); !ok || string(kv.Value) != "v1" {
			t.Fatalf("replica %d diverged: %v %v", id, kv, ok)
		}
	}
}

func TestClusterNoQuorumFails(t *testing.T) {
	c := NewCluster(3, 6)
	c.Crash(1)
	c.Crash(2)
	if rev := c.Put("/k", []byte("v")); rev != -1 {
		t.Fatalf("write without quorum returned %d", rev)
	}
}

func TestClusterLossyNetwork(t *testing.T) {
	c := NewCluster(3, 7)
	c.SetDropProbability(0.2)
	for i := 0; i < 10; i++ {
		if rev := c.Put(fmt.Sprintf("/k%d", i), []byte("v")); rev <= 0 {
			t.Fatalf("put %d failed under 20%% loss", i)
		}
	}
	delivered, dropped := c.Stats()
	if dropped == 0 {
		t.Fatal("no drops recorded at 20% loss")
	}
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	c.SetDropProbability(0)
	c.Ticks(50)
	if got := c.Range("/k"); len(got) != 10 {
		t.Fatalf("Range = %d keys, want 10", len(got))
	}
}

func TestClusterWatch(t *testing.T) {
	c := NewCluster(3, 8)
	w := c.Watch("/w/", 0)
	defer w.Cancel()
	c.Put("/w/x", []byte("1"))
	ev := <-w.Events()
	if ev.KV.Key != "/w/x" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestClusterLinearizableReadAfterFailover(t *testing.T) {
	c := NewCluster(5, 9)
	c.Put("/x", []byte("a"))
	c.Crash(c.Leader())
	c.Put("/x", []byte("b"))
	kv, ok := c.Get("/x")
	if !ok || string(kv.Value) != "b" {
		t.Fatalf("read after failover = %q %v", kv.Value, ok)
	}
}

func TestClusterSingleton(t *testing.T) {
	c := NewCluster(1, 10)
	if rev := c.Put("/k", []byte("v")); rev <= 0 {
		t.Fatal("singleton put failed")
	}
	if kv, ok := c.Get("/k"); !ok || string(kv.Value) != "v" {
		t.Fatal("singleton get failed")
	}
}

func TestRegistryOnCluster(t *testing.T) {
	c := NewCluster(3, 11)
	r := NewRegistry(c)
	lease, err := r.Register(ComponentRecord{
		Name: "edge-0", Layer: "edge", Kind: "hmpsoc",
		CPUCapacity: 4, MemCapacityMB: 2048,
		Accelerators:   []string{"fpga0"},
		SecurityLevels: []string{"low", "medium"},
		Protocols:      []string{"http", "mqtt"},
	}, 0, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := r.Component("edge-0")
	if !ok || rec.Kind != "hmpsoc" || rec.CPUCapacity != 4 {
		t.Fatalf("Component = %+v %v", rec, ok)
	}
	st, ok := r.Status("edge-0")
	if !ok || !st.Ready {
		t.Fatalf("Status = %+v %v", st, ok)
	}
	// Heartbeat lapse removes status but not the static record.
	r.Leases().Tick(2_000_000)
	if _, ok := r.Status("edge-0"); ok {
		t.Fatal("status survived heartbeat lapse")
	}
	if _, ok := r.Component("edge-0"); !ok {
		t.Fatal("record should persist")
	}
	_ = lease
}

func TestRegistryListAndSnapshot(t *testing.T) {
	s := NewStore()
	r := NewRegistry(s)
	for i, layer := range []string{"edge", "edge", "fog", "cloud"} {
		name := fmt.Sprintf("c%d", i)
		if _, err := r.Register(ComponentRecord{Name: name, Layer: layer, Kind: "x"}, 0, 100); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.List("edge"); len(got) != 2 {
		t.Fatalf("List(edge) = %d", len(got))
	}
	if got := r.List(""); len(got) != 4 {
		t.Fatalf("List() = %d", len(got))
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot = %d", len(snap))
	}
	for _, e := range snap {
		if !e.Live {
			t.Fatalf("%s should be live", e.Record.Name)
		}
	}
	// Status update flows into snapshot.
	if err := r.UpdateStatus(ComponentStatus{Name: "c0", Ready: false, CPUUsed: 3}); err != nil {
		t.Fatal(err)
	}
	snap = r.Snapshot()
	if snap[0].Live {
		t.Fatal("c0 should not be live after Ready=false")
	}
	r.Deregister("c0")
	if got := r.List(""); len(got) != 3 {
		t.Fatalf("after Deregister = %d", len(got))
	}
}

func TestRegistryValidation(t *testing.T) {
	r := NewRegistry(NewStore())
	if _, err := r.Register(ComponentRecord{}, 0, 1); err == nil {
		t.Fatal("nameless registration accepted")
	}
	if err := r.UpdateStatus(ComponentStatus{}); err == nil {
		t.Fatal("nameless status accepted")
	}
	if _, ok := r.Component("ghost"); ok {
		t.Fatal("ghost component")
	}
	if _, ok := r.Status("ghost"); ok {
		t.Fatal("ghost status")
	}
}

func TestRegistryHistory(t *testing.T) {
	r := NewRegistry(NewStore())
	for i := int64(0); i < 5; i++ {
		if err := r.RecordHistory("edge-0/latency", i, map[string]float64{"ms": float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := r.History("edge-0/latency")
	if len(got) != 5 {
		t.Fatalf("History = %d entries", len(got))
	}
	if string(got[0]) != `{"ms":0}` {
		t.Fatalf("first = %s", got[0])
	}
	if len(r.History("ghost")) != 0 {
		t.Fatal("ghost history")
	}
}

func TestRegistryWatchStatus(t *testing.T) {
	r := NewRegistry(NewStore())
	w := r.WatchStatus()
	defer w.Cancel()
	r.UpdateStatus(ComponentStatus{Name: "n1", Ready: true}) //nolint:errcheck
	ev := <-w.Events()
	if ev.KV.Key != PrefixStatus+"n1" {
		t.Fatalf("event key = %s", ev.KV.Key)
	}
}

func TestClusterCAS(t *testing.T) {
	c := NewCluster(3, 12)
	rev, ok := c.CAS("/election/leader", 0, []byte("agent-edge"))
	if !ok || rev <= 0 {
		t.Fatalf("create CAS = %d %v", rev, ok)
	}
	if _, ok := c.CAS("/election/leader", 0, []byte("agent-fog")); ok {
		t.Fatal("second create won")
	}
	kv, _ := c.Get("/election/leader")
	if string(kv.Value) != "agent-edge" {
		t.Fatalf("leader = %q", kv.Value)
	}
	// Replicas converge on the same winner.
	c.Ticks(30)
	for _, id := range c.Members() {
		if kv, ok := c.StaleGet(id, "/election/leader"); !ok || string(kv.Value) != "agent-edge" {
			t.Fatalf("replica %d: %v %v", id, kv, ok)
		}
	}
	// Update path.
	if _, ok := c.CAS("/election/leader", kv.ModRevision, []byte("agent-cloud")); !ok {
		t.Fatal("correct-rev cluster CAS failed")
	}
	if _, ok := c.CAS("/election/leader", kv.ModRevision, []byte("mallory")); ok {
		t.Fatal("stale-rev cluster CAS succeeded")
	}
}

func TestStoreSerializeRestore(t *testing.T) {
	s := NewStore()
	s.Put("/a", []byte("1"))
	s.Put("/b", []byte("2"))
	s.Put("/a", []byte("1b"))
	s.Delete("/b")
	data := s.Serialize()
	s2 := NewStore()
	if err := s2.Restore(data); err != nil {
		t.Fatal(err)
	}
	if s2.Revision() != s.Revision() {
		t.Fatalf("revision %d vs %d", s2.Revision(), s.Revision())
	}
	kv, ok := s2.Get("/a")
	if !ok || string(kv.Value) != "1b" || kv.ModRevision != 3 || kv.Version != 2 {
		t.Fatalf("restored kv = %+v %v", kv, ok)
	}
	if _, ok := s2.Get("/b"); ok {
		t.Fatal("deleted key resurrected")
	}
	if err := s2.Restore([]byte("junk")); err == nil {
		t.Fatal("junk snapshot accepted")
	}
}

func TestClusterLogCompactionBoundsLog(t *testing.T) {
	c := NewCluster(3, 20)
	for i := 0; i < 4*compactThreshold; i++ {
		if rev := c.Put(fmt.Sprintf("/k%03d", i%50), []byte("v")); rev <= 0 {
			t.Fatalf("put %d failed", i)
		}
	}
	c.Ticks(30)
	c.mu.Lock()
	for _, id := range c.ids {
		if size := c.nodes[id].LogSize(); size > 2*compactThreshold {
			c.mu.Unlock()
			t.Fatalf("node %d log grew to %d entries", id, size)
		}
		if c.nodes[id].SnapshotIndex() == 0 {
			c.mu.Unlock()
			t.Fatalf("node %d never compacted", id)
		}
	}
	c.mu.Unlock()
	// Data still all present and linearizable.
	kv, ok := c.Get("/k007")
	if !ok || string(kv.Value) != "v" {
		t.Fatalf("post-compaction read = %v %v", kv, ok)
	}
}

func TestClusterSnapshotCatchUp(t *testing.T) {
	c := NewCluster(3, 21)
	c.Put("/seed", []byte("x"))
	victim := NodeID(0)
	for _, id := range c.Members() {
		if id != c.Leader() {
			victim = id
			break
		}
	}
	c.Crash(victim)
	// Write enough to force compaction past what the victim has.
	for i := 0; i < 3*compactThreshold; i++ {
		if rev := c.Put(fmt.Sprintf("/w%03d", i%64), []byte{byte(i)}); rev <= 0 {
			t.Fatalf("put %d failed", i)
		}
	}
	// The survivors must have compacted beyond the victim's log.
	c.mu.Lock()
	lead := c.leaderLocked()
	if c.nodes[lead].SnapshotIndex() == 0 {
		c.mu.Unlock()
		t.Fatal("leader never compacted; test premise broken")
	}
	c.mu.Unlock()
	// Recover: the victim can only catch up via MsgSnap.
	c.Recover(victim)
	c.Ticks(200)
	if kv, ok := c.StaleGet(victim, "/w010"); !ok || len(kv.Value) != 1 {
		t.Fatalf("victim did not catch up via snapshot: %v %v", kv, ok)
	}
	if kv, ok := c.StaleGet(victim, "/seed"); !ok || string(kv.Value) != "x" {
		t.Fatalf("victim lost pre-crash data: %v %v", kv, ok)
	}
	// And it keeps following new writes.
	c.Put("/after", []byte("y"))
	c.Ticks(30)
	if kv, ok := c.StaleGet(victim, "/after"); !ok || string(kv.Value) != "y" {
		t.Fatalf("victim not following after snapshot: %v %v", kv, ok)
	}
}

func TestClusterFailoverWithLaggingFollowerUnderLoss(t *testing.T) {
	// The compound recovery scenario checkpoint durability leans on: a
	// follower falls so far behind that the leader compacts past its log,
	// the network starts dropping 15% of messages, the follower comes back
	// and must catch up via snapshot transfer through the loss, and then
	// the leader itself crashes. The cluster must elect a new leader and
	// every live replica must converge on all committed keys.
	c := NewCluster(5, 23)
	c.Put("/seed", []byte("x"))
	oldLead := c.Leader()
	laggard := NodeID(0)
	for _, id := range c.Members() {
		if id != oldLead {
			laggard = id
			break
		}
	}
	c.Crash(laggard)
	// Push the log well past the compaction threshold so the laggard's
	// log tail no longer exists anywhere — only a snapshot can help it.
	for i := 0; i < 3*compactThreshold; i++ {
		if rev := c.Put(fmt.Sprintf("/w%03d", i%64), []byte{byte(i)}); rev <= 0 {
			t.Fatalf("put %d failed", i)
		}
	}
	c.mu.Lock()
	if c.nodes[oldLead].SnapshotIndex() == 0 {
		c.mu.Unlock()
		t.Fatal("leader never compacted; test premise broken")
	}
	c.mu.Unlock()
	// Lossy recovery: the snapshot transfer has to survive drops.
	c.SetDropProbability(0.15)
	c.Recover(laggard)
	c.Ticks(400)
	if kv, ok := c.StaleGet(laggard, "/seed"); !ok || string(kv.Value) != "x" {
		t.Fatalf("laggard lost pre-crash data under loss: %v %v", kv, ok)
	}
	if _, dropped := c.Stats(); dropped == 0 {
		t.Fatal("no drops recorded at 15% loss; test premise broken")
	}
	// Now the leader dies too. A new one must emerge and keep committing.
	c.Crash(oldLead)
	if rev := c.Put("/after-failover", []byte("y")); rev <= 0 {
		t.Fatal("cluster could not commit after leader crash")
	}
	newLead := c.Leader()
	if newLead == 0 || newLead == oldLead {
		t.Fatalf("leader = %d (old %d)", newLead, oldLead)
	}
	// Quiesce the network and verify every live replica holds the full
	// committed history — snapshot-recovered laggard included.
	c.SetDropProbability(0)
	c.Ticks(200)
	for _, id := range c.Members() {
		if id == oldLead {
			continue
		}
		for _, key := range []string{"/seed", "/w010", "/after-failover"} {
			if kv, ok := c.StaleGet(id, key); !ok || len(kv.Value) == 0 {
				t.Fatalf("replica %d missing %s after failover: %v %v", id, key, kv, ok)
			}
		}
	}
}

func TestCompactToValidation(t *testing.T) {
	c := NewCluster(1, 22)
	c.Put("/k", []byte("v"))
	c.mu.Lock()
	n := c.nodes[1]
	if err := n.CompactTo(0, nil); err == nil {
		t.Fatal("compact to 0 accepted")
	}
	if err := n.CompactTo(n.Commit()+10, nil); err == nil {
		t.Fatal("compact beyond applied accepted")
	}
	c.mu.Unlock()
}
