package kb

import (
	"fmt"
	"sort"

	"myrtus/internal/sim"
)

// This file implements Raft consensus (leader election + log replication
// + commit) in the tick-driven style: a Node is a pure state machine
// advanced by Tick and Step calls; outbound messages accumulate in an
// outbox drained by the surrounding transport. That keeps elections and
// replication fully deterministic under the simulation RNG and makes
// partitions trivial to inject in tests.

// NodeID identifies a Raft member. Zero means "none".
type NodeID int

// RoleType is the Raft role of a node.
type RoleType int

const (
	// Follower accepts entries from a leader.
	Follower RoleType = iota
	// Candidate is campaigning for leadership.
	Candidate
	// Leader replicates entries to followers.
	Leader
)

func (r RoleType) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	default:
		return fmt.Sprintf("RoleType(%d)", int(r))
	}
}

// Entry is one replicated log entry.
type Entry struct {
	Term  uint64
	Index uint64
	Data  []byte
}

// MsgType enumerates Raft RPCs.
type MsgType int

const (
	// MsgVote is a RequestVote RPC.
	MsgVote MsgType = iota
	// MsgVoteResp answers MsgVote.
	MsgVoteResp
	// MsgApp is an AppendEntries RPC (also the heartbeat).
	MsgApp
	// MsgAppResp answers MsgApp.
	MsgAppResp
	// MsgSnap installs a snapshot on a follower whose log lags behind the
	// leader's compaction point.
	MsgSnap
)

func (t MsgType) String() string {
	switch t {
	case MsgVote:
		return "MsgVote"
	case MsgVoteResp:
		return "MsgVoteResp"
	case MsgApp:
		return "MsgApp"
	case MsgAppResp:
		return "MsgAppResp"
	case MsgSnap:
		return "MsgSnap"
	default:
		return fmt.Sprintf("MsgType(%d)", int(t))
	}
}

// Message is one Raft RPC or response.
type Message struct {
	Type     MsgType
	From, To NodeID
	Term     uint64
	// MsgVote: candidate's last log position. MsgApp: position preceding
	// Entries. MsgAppResp: highest index known replicated (on success) or
	// a hint for next-index backoff (on reject).
	LogIndex uint64
	LogTerm  uint64
	Entries  []Entry
	Commit   uint64
	Reject   bool
	Granted  bool
	// Snapshot payload (MsgSnap): state-machine image at SnapIndex.
	SnapIndex uint64
	SnapTerm  uint64
	SnapData  []byte
}

// Node is a single Raft participant.
type Node struct {
	id    NodeID
	peers []NodeID // all members including self

	term uint64
	vote NodeID
	// log[0] is a sentinel standing for the entry at snapIndex; absolute
	// index i lives at log[i-snapIndex].
	log       []Entry
	snapIndex uint64
	snapTerm  uint64
	snapData  []byte // leader-side image for lagging followers

	// pendingSnap holds a freshly installed snapshot until the host
	// applies it to the state machine (TakeSnapshot).
	pendingSnap      []byte
	pendingSnapIndex uint64
	hasPendingSnap   bool

	commit  uint64
	applied uint64

	role RoleType
	lead NodeID

	// Leader volatile state.
	next  map[NodeID]uint64
	match map[NodeID]uint64

	votes map[NodeID]bool

	elapsed          int
	electionTimeout  int // randomized per term in [base, 2*base)
	electionBase     int
	heartbeatTimeout int

	rng  *sim.RNG
	msgs []Message
}

// NewNode returns a follower with the given ID and full member list.
// electionBase and heartbeat are in ticks; typical values 10 and 1.
func NewNode(id NodeID, peers []NodeID, electionBase, heartbeat int, rng *sim.RNG) *Node {
	if electionBase <= heartbeat {
		panic("kb: election timeout must exceed heartbeat interval")
	}
	n := &Node{
		id:               id,
		peers:            append([]NodeID(nil), peers...),
		log:              []Entry{{}},
		electionBase:     electionBase,
		heartbeatTimeout: heartbeat,
		rng:              rng.Fork(fmt.Sprintf("raft-%d", id)),
	}
	n.becomeFollower(0, 0)
	return n
}

// ID returns the node's identity.
func (n *Node) ID() NodeID { return n.id }

// Role returns the node's current role.
func (n *Node) Role() RoleType { return n.role }

// Term returns the node's current term.
func (n *Node) Term() uint64 { return n.term }

// Leader returns the known leader (0 when unknown).
func (n *Node) Leader() NodeID { return n.lead }

// Commit returns the commit index.
func (n *Node) Commit() uint64 { return n.commit }

// LastIndex returns the index of the last log entry.
func (n *Node) LastIndex() uint64 { return n.snapIndex + uint64(len(n.log)) - 1 }

// SnapshotIndex returns the compaction point (0 = never compacted).
func (n *Node) SnapshotIndex() uint64 { return n.snapIndex }

// LogSize returns the number of retained (uncompacted) entries.
func (n *Node) LogSize() int { return len(n.log) - 1 }

func (n *Node) lastTerm() uint64 {
	if len(n.log) == 1 {
		return n.snapTerm
	}
	return n.log[len(n.log)-1].Term
}

// termAt returns the term of the absolute index i (which must be
// ≥ snapIndex and ≤ LastIndex).
func (n *Node) termAt(i uint64) uint64 {
	if i == n.snapIndex {
		return n.snapTerm
	}
	return n.log[i-n.snapIndex].Term
}

// entryAt returns the entry at absolute index i (> snapIndex).
func (n *Node) entryAt(i uint64) Entry { return n.log[i-n.snapIndex] }

// CompactTo discards log entries up to and including index (which must
// not exceed the applied index), retaining data as the state-machine
// image lagging followers will be sent. The host calls this after
// persisting its own snapshot.
func (n *Node) CompactTo(index uint64, data []byte) error {
	if index <= n.snapIndex {
		return fmt.Errorf("kb: compact point %d not past snapshot %d", index, n.snapIndex)
	}
	if index > n.applied {
		return fmt.Errorf("kb: compact point %d beyond applied %d", index, n.applied)
	}
	term := n.termAt(index)
	kept := append([]Entry{{Term: term, Index: index}}, n.log[index-n.snapIndex+1:]...)
	n.log = kept
	n.snapIndex = index
	n.snapTerm = term
	n.snapData = append([]byte(nil), data...)
	return nil
}

// TakeSnapshot returns an installed-but-unapplied snapshot, if any; the
// host must restore its state machine from the data.
func (n *Node) TakeSnapshot() (data []byte, index uint64, ok bool) {
	if !n.hasPendingSnap {
		return nil, 0, false
	}
	n.hasPendingSnap = false
	return n.pendingSnap, n.pendingSnapIndex, true
}

func (n *Node) quorum() int { return len(n.peers)/2 + 1 }

func (n *Node) resetElectionTimeout() {
	n.elapsed = 0
	n.electionTimeout = n.electionBase + n.rng.Intn(n.electionBase)
}

func (n *Node) becomeFollower(term uint64, lead NodeID) {
	n.role = Follower
	n.term = term
	n.lead = lead
	n.vote = 0
	n.votes = nil
	n.resetElectionTimeout()
}

func (n *Node) becomeCandidate() {
	n.role = Candidate
	n.term++
	n.vote = n.id
	n.lead = 0
	n.votes = map[NodeID]bool{n.id: true}
	n.resetElectionTimeout()
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		n.send(Message{Type: MsgVote, To: p, LogIndex: n.LastIndex(), LogTerm: n.lastTerm()})
	}
	if len(n.votes) >= n.quorum() { // single-node cluster
		n.becomeLeader()
	}
}

func (n *Node) becomeLeader() {
	n.role = Leader
	n.lead = n.id
	n.elapsed = 0
	n.next = make(map[NodeID]uint64)
	n.match = make(map[NodeID]uint64)
	for _, p := range n.peers {
		n.next[p] = n.LastIndex() + 1
		n.match[p] = 0
	}
	n.match[n.id] = n.LastIndex()
	// Commit a no-op entry from the new term to pin down the commit index
	// (Raft §5.4.2: a leader may only count replicas for current-term
	// entries).
	n.appendEntry(nil)
	n.broadcastAppend()
}

func (n *Node) send(m Message) {
	m.From = n.id
	m.Term = n.term
	n.msgs = append(n.msgs, m)
}

// ReadMessages drains the outbox.
func (n *Node) ReadMessages() []Message {
	out := n.msgs
	n.msgs = nil
	return out
}

// Tick advances the node's logical clock by one tick.
func (n *Node) Tick() {
	n.elapsed++
	switch n.role {
	case Leader:
		if n.elapsed >= n.heartbeatTimeout {
			n.elapsed = 0
			n.broadcastAppend()
		}
	default:
		if n.elapsed >= n.electionTimeout {
			n.becomeCandidate()
		}
	}
}

// Propose appends data to the log if this node is the leader. It reports
// whether the proposal was accepted.
func (n *Node) Propose(data []byte) bool {
	if n.role != Leader {
		return false
	}
	n.appendEntry(data)
	n.broadcastAppend()
	return true
}

func (n *Node) appendEntry(data []byte) {
	e := Entry{Term: n.term, Index: n.LastIndex() + 1, Data: data}
	n.log = append(n.log, e)
	n.match[n.id] = e.Index
	n.maybeCommit()
}

func (n *Node) broadcastAppend() {
	for _, p := range n.peers {
		if p == n.id {
			continue
		}
		n.sendAppend(p)
	}
}

func (n *Node) sendAppend(to NodeID) {
	prev := n.next[to] - 1
	if prev > n.LastIndex() {
		prev = n.LastIndex()
	}
	if prev < n.snapIndex {
		// The follower needs entries we compacted away: ship the image.
		n.send(Message{
			Type:      MsgSnap,
			To:        to,
			SnapIndex: n.snapIndex,
			SnapTerm:  n.snapTerm,
			SnapData:  n.snapData,
			Commit:    n.commit,
		})
		return
	}
	var ents []Entry
	for i := prev + 1; i <= n.LastIndex(); i++ {
		ents = append(ents, n.entryAt(i))
	}
	n.send(Message{
		Type:     MsgApp,
		To:       to,
		LogIndex: prev,
		LogTerm:  n.termAt(prev),
		Entries:  ents,
		Commit:   n.commit,
	})
}

// Step processes one inbound message.
func (n *Node) Step(m Message) {
	if m.Term > n.term {
		lead := NodeID(0)
		if m.Type == MsgApp {
			lead = m.From
		}
		n.becomeFollower(m.Term, lead)
	}
	if m.Term < n.term {
		// Stale sender: tell it about our term (a MsgAppResp/VoteResp with
		// our higher term forces it to step down).
		switch m.Type {
		case MsgApp:
			n.send(Message{Type: MsgAppResp, To: m.From, Reject: true})
		case MsgVote:
			n.send(Message{Type: MsgVoteResp, To: m.From, Granted: false})
		}
		return
	}
	switch m.Type {
	case MsgVote:
		n.handleVote(m)
	case MsgVoteResp:
		n.handleVoteResp(m)
	case MsgApp:
		n.handleApp(m)
	case MsgAppResp:
		n.handleAppResp(m)
	case MsgSnap:
		n.handleSnap(m)
	}
}

func (n *Node) handleVote(m Message) {
	upToDate := m.LogTerm > n.lastTerm() ||
		(m.LogTerm == n.lastTerm() && m.LogIndex >= n.LastIndex())
	canVote := n.vote == 0 || n.vote == m.From
	if canVote && upToDate && n.role == Follower {
		n.vote = m.From
		n.resetElectionTimeout()
		n.send(Message{Type: MsgVoteResp, To: m.From, Granted: true})
		return
	}
	n.send(Message{Type: MsgVoteResp, To: m.From, Granted: false})
}

func (n *Node) handleVoteResp(m Message) {
	if n.role != Candidate {
		return
	}
	n.votes[m.From] = m.Granted
	granted := 0
	for _, g := range n.votes {
		if g {
			granted++
		}
	}
	if granted >= n.quorum() {
		n.becomeLeader()
	}
}

func (n *Node) handleApp(m Message) {
	if n.role != Follower {
		n.becomeFollower(m.Term, m.From)
	}
	n.lead = m.From
	n.resetElectionTimeout()

	// Entries at or below our snapshot are already committed and applied;
	// slide the match point up to the snapshot boundary.
	if m.LogIndex < n.snapIndex {
		drop := n.snapIndex - m.LogIndex
		if uint64(len(m.Entries)) <= drop {
			n.send(Message{Type: MsgAppResp, To: m.From, LogIndex: n.LastIndex()})
			return
		}
		m.Entries = m.Entries[drop:]
		m.LogIndex = n.snapIndex
		m.LogTerm = n.snapTerm
	}
	// Log-matching check at (m.LogIndex, m.LogTerm).
	if m.LogIndex > n.LastIndex() || n.termAt(m.LogIndex) != m.LogTerm {
		hint := n.LastIndex()
		if m.LogIndex < hint {
			hint = m.LogIndex
		}
		n.send(Message{Type: MsgAppResp, To: m.From, Reject: true, LogIndex: hint})
		return
	}
	// Append, truncating conflicts.
	for _, e := range m.Entries {
		if e.Index <= n.LastIndex() {
			if n.termAt(e.Index) == e.Term {
				continue
			}
			n.log = n.log[:e.Index-n.snapIndex]
		}
		n.log = append(n.log, e)
	}
	if m.Commit > n.commit {
		last := n.LastIndex()
		if m.Commit < last {
			n.commit = m.Commit
		} else {
			n.commit = last
		}
	}
	n.send(Message{Type: MsgAppResp, To: m.From, LogIndex: n.LastIndex()})
}

func (n *Node) handleAppResp(m Message) {
	if n.role != Leader {
		return
	}
	if m.Reject {
		// Back off next index using the follower's hint.
		next := m.LogIndex + 1
		if next < 1 {
			next = 1
		}
		if next < n.next[m.From] {
			n.next[m.From] = next
		} else if n.next[m.From] > 1 {
			n.next[m.From]--
		}
		n.sendAppend(m.From)
		return
	}
	if m.LogIndex > n.match[m.From] {
		n.match[m.From] = m.LogIndex
		n.next[m.From] = m.LogIndex + 1
		n.maybeCommit()
	}
}

// maybeCommit advances the commit index to the highest current-term index
// replicated on a quorum.
func (n *Node) maybeCommit() {
	if n.role != Leader {
		return
	}
	matches := make([]uint64, 0, len(n.peers))
	for _, p := range n.peers {
		matches = append(matches, n.match[p])
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	candidate := matches[n.quorum()-1]
	// candidate > commit ≥ snapIndex, so termAt is always available here.
	if candidate > n.commit && n.termAt(candidate) == n.term {
		n.commit = candidate
	}
}

// handleSnap installs a leader snapshot on a lagging follower.
func (n *Node) handleSnap(m Message) {
	if n.role != Follower {
		n.becomeFollower(m.Term, m.From)
	}
	n.lead = m.From
	n.resetElectionTimeout()
	if m.SnapIndex <= n.commit {
		// Stale snapshot; tell the leader where we actually are.
		n.send(Message{Type: MsgAppResp, To: m.From, LogIndex: n.LastIndex()})
		return
	}
	n.log = []Entry{{Term: m.SnapTerm, Index: m.SnapIndex}}
	n.snapIndex = m.SnapIndex
	n.snapTerm = m.SnapTerm
	n.commit = m.SnapIndex
	n.applied = m.SnapIndex
	n.pendingSnap = append([]byte(nil), m.SnapData...)
	n.pendingSnapIndex = m.SnapIndex
	n.hasPendingSnap = true
	n.send(Message{Type: MsgAppResp, To: m.From, LogIndex: n.LastIndex()})
}

// TakeCommitted returns entries newly committed since the last call,
// advancing the applied cursor. Sentinel/no-op entries (nil data) are
// filtered out.
func (n *Node) TakeCommitted() []Entry {
	var out []Entry
	for n.applied < n.commit {
		n.applied++
		e := n.entryAt(n.applied)
		if len(e.Data) > 0 {
			out = append(out, e)
		}
	}
	return out
}
