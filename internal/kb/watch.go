package kb

import (
	"fmt"
	"sort"
	"sync"
)

// EventType distinguishes put and delete watch events.
type EventType int

const (
	// EventPut reports a key write.
	EventPut EventType = iota
	// EventDelete reports a key deletion.
	EventDelete
)

func (t EventType) String() string {
	if t == EventPut {
		return "PUT"
	}
	return "DELETE"
}

// Event is one change observed by a watcher.
type Event struct {
	Type EventType
	KV   KV
}

// Watcher delivers events for keys under a prefix. Events are buffered;
// when a slow consumer overflows the buffer the oldest events are dropped
// and Dropped() reports how many (observability beats blocking the store).
type Watcher struct {
	prefix string
	ch     chan Event
	hub    *watchHub

	mu      sync.Mutex
	dropped int
	closed  bool
}

// Events returns the delivery channel. It is closed by Cancel.
func (w *Watcher) Events() <-chan Event { return w.ch }

// Dropped reports how many events were discarded due to a full buffer.
func (w *Watcher) Dropped() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.dropped
}

// Cancel detaches the watcher and closes its channel.
func (w *Watcher) Cancel() { w.hub.cancel(w) }

type watchHub struct {
	mu       sync.Mutex
	watchers map[*Watcher]struct{}
}

func newWatchHub() *watchHub {
	return &watchHub{watchers: make(map[*Watcher]struct{})}
}

// Watch registers a watcher for keys under prefix with the given buffer
// size (≤0 selects a default of 128).
func (s *Store) Watch(prefix string, buffer int) *Watcher {
	if buffer <= 0 {
		buffer = 128
	}
	w := &Watcher{prefix: prefix, ch: make(chan Event, buffer), hub: s.watchers}
	s.watchers.mu.Lock()
	s.watchers.watchers[w] = struct{}{}
	s.watchers.mu.Unlock()
	return w
}

// WatchFrom registers a watcher that first replays every event with
// ModRevision > fromRev (oldest first), then streams live changes — the
// etcd-style "watch from revision" MIRTO agents use to catch up on
// registry changes after a restart. It fails when fromRev predates the
// compaction floor.
func (s *Store) WatchFrom(prefix string, fromRev int64, buffer int) (*Watcher, error) {
	if buffer <= 0 {
		buffer = 128
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if fromRev < s.compacted {
		return nil, fmt.Errorf("kb: revision %d compacted (compact revision %d)", fromRev, s.compacted)
	}
	// Collect historical events across keys, ordered by revision.
	var replay []Event
	for key, hist := range s.keys {
		if !hasPrefix(key, prefix) {
			continue
		}
		for _, v := range hist {
			if v.rev <= fromRev {
				continue
			}
			if v.tombstone {
				replay = append(replay, Event{Type: EventDelete, KV: KV{Key: key, ModRevision: v.rev}})
				continue
			}
			val := append([]byte(nil), v.value...)
			replay = append(replay, Event{Type: EventPut, KV: KV{
				Key: key, Value: val, CreateRevision: v.createRev,
				ModRevision: v.rev, Version: v.version, Lease: v.lease,
			}})
		}
	}
	sort.Slice(replay, func(i, j int) bool { return replay[i].KV.ModRevision < replay[j].KV.ModRevision })
	if need := len(replay) + 16; buffer < need {
		buffer = need
	}
	w := &Watcher{prefix: prefix, ch: make(chan Event, buffer), hub: s.watchers}
	for _, ev := range replay {
		w.ch <- ev
	}
	// Attach for live events while still holding s.mu: mutators notify
	// under the same lock, so there is no gap or duplication window.
	s.watchers.mu.Lock()
	s.watchers.watchers[w] = struct{}{}
	s.watchers.mu.Unlock()
	return w, nil
}

func (h *watchHub) notify(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for w := range h.watchers {
		if !hasPrefix(ev.KV.Key, w.prefix) {
			continue
		}
		select {
		case w.ch <- ev:
		default:
			// Buffer full: drop the oldest, then retry once.
			select {
			case <-w.ch:
				w.mu.Lock()
				w.dropped++
				w.mu.Unlock()
			default:
			}
			select {
			case w.ch <- ev:
			default:
				w.mu.Lock()
				w.dropped++
				w.mu.Unlock()
			}
		}
	}
}

func (h *watchHub) cancel(w *Watcher) {
	h.mu.Lock()
	defer h.mu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	delete(h.watchers, w)
	close(w.ch)
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
