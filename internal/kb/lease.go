package kb

import (
	"fmt"
	"sort"
	"sync"
)

// Lease binds keys to a liveness contract: when the lease expires, the
// keys vanish. The Resource Registry uses leases as heartbeats so that a
// dead component disappears from the registry automatically.
//
// Time is supplied by the caller (virtual nanoseconds) so the KB works on
// the simulation clock without owning a timer.
type Lease struct {
	ID       int64
	TTL      int64 // nanoseconds
	Deadline int64 // absolute expiry, nanoseconds
}

// LeaseManager tracks leases for a Store.
type LeaseManager struct {
	mu     sync.Mutex
	store  Backend
	nextID int64
	leases map[int64]*Lease
	keys   map[int64]map[string]struct{}
}

// NewLeaseManager returns a manager bound to store.
func NewLeaseManager(store Backend) *LeaseManager {
	return &LeaseManager{
		store:  store,
		leases: make(map[int64]*Lease),
		keys:   make(map[int64]map[string]struct{}),
	}
}

// Grant creates a lease with the given TTL starting at now.
func (m *LeaseManager) Grant(now, ttl int64) *Lease {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nextID++
	l := &Lease{ID: m.nextID, TTL: ttl, Deadline: now + ttl}
	m.leases[l.ID] = l
	m.keys[l.ID] = make(map[string]struct{})
	return l
}

// KeepAlive refreshes the lease deadline to now+TTL. A keep-alive that
// arrives at or after the deadline fails and revokes the lease (keys
// dropped, exactly as if Tick had expired it): an expired lease must
// never be resurrected, or a holder partitioned past its TTL would keep
// authority the rest of the system has already reassigned.
func (m *LeaseManager) KeepAlive(id, now int64) error {
	m.mu.Lock()
	l, ok := m.leases[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("kb: lease %d not found", id)
	}
	if l.Deadline <= now {
		deadline := l.Deadline
		m.mu.Unlock()
		m.Revoke(id) //nolint:errcheck // lease exists: checked above
		return fmt.Errorf("kb: lease %d expired at %d (keep-alive at %d)", id, deadline, now)
	}
	l.Deadline = now + l.TTL
	m.mu.Unlock()
	return nil
}

// Deadline reports the lease's absolute expiry; ok is false when the
// lease is gone (expired or revoked).
func (m *LeaseManager) Deadline(id int64) (int64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	l, ok := m.leases[id]
	if !ok {
		return 0, false
	}
	return l.Deadline, true
}

// Revoke deletes the lease and all attached keys immediately.
func (m *LeaseManager) Revoke(id int64) error {
	m.mu.Lock()
	keys, ok := m.keys[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("kb: lease %d not found", id)
	}
	delete(m.leases, id)
	delete(m.keys, id)
	var ks []string
	for k := range keys {
		ks = append(ks, k)
	}
	m.mu.Unlock()
	sort.Strings(ks)
	for _, k := range ks {
		m.store.Delete(k)
	}
	return nil
}

// Attach binds key to the lease and writes value through the store.
func (m *LeaseManager) Attach(id int64, key string, value []byte) error {
	m.mu.Lock()
	if _, ok := m.leases[id]; !ok {
		m.mu.Unlock()
		return fmt.Errorf("kb: lease %d not found", id)
	}
	m.keys[id][key] = struct{}{}
	m.mu.Unlock()
	m.store.PutLease(key, value, id)
	return nil
}

// Tick expires every lease whose deadline has passed, deleting attached
// keys. It returns the IDs of expired leases.
func (m *LeaseManager) Tick(now int64) []int64 {
	m.mu.Lock()
	var expired []int64
	for id, l := range m.leases {
		if l.Deadline <= now {
			expired = append(expired, id)
		}
	}
	m.mu.Unlock()
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	for _, id := range expired {
		m.Revoke(id) //nolint:errcheck // cannot race: only Tick removes these
	}
	return expired
}

// Alive reports whether the lease exists (not expired, not revoked).
func (m *LeaseManager) Alive(id int64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.leases[id]
	return ok
}

// Len reports the number of live leases.
func (m *LeaseManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.leases)
}
