// Package kb implements the MYRTUS shared ontological Knowledge Base: a
// strongly-consistent, distributed, revisioned key-value store in the role
// the paper assigns to etcd (§III, footnote 3). It provides:
//
//   - an MVCC store with monotonically increasing revisions, historical
//     reads, prefix ranges, and compaction (store.go);
//   - watches over key prefixes (watch.go);
//   - leases for liveness-bound keys such as Resource Registry heartbeats
//     (lease.go);
//   - Raft consensus for replication across continuum layers (raft.go,
//     cluster.go);
//   - a typed Resource Registry / Status API used by MIRTO agents
//     (registry.go).
//
// The logical view is a single KB; the implementation view is a replica
// set distributed over the layers, exactly as the paper prescribes.
package kb

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// KV is one key-value pair at a revision.
type KV struct {
	Key            string
	Value          []byte
	CreateRevision int64
	ModRevision    int64
	Version        int64 // number of writes to this key since creation
	Lease          int64 // owning lease ID, 0 if none
}

type keyVersion struct {
	rev       int64
	value     []byte
	tombstone bool
	createRev int64
	version   int64
	lease     int64
}

// Store is a single-replica MVCC store. It is safe for concurrent use.
// The zero value is not ready; use NewStore.
type Store struct {
	mu        sync.RWMutex
	rev       int64
	compacted int64
	keys      map[string][]keyVersion
	watchers  *watchHub
}

// NewStore returns an empty store at revision 0.
func NewStore() *Store {
	return &Store{
		keys:     make(map[string][]keyVersion),
		watchers: newWatchHub(),
	}
}

// Revision returns the current store revision.
func (s *Store) Revision() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.rev
}

// Put writes value under key and returns the new revision.
func (s *Store) Put(key string, value []byte) int64 {
	return s.PutLease(key, value, 0)
}

// PutLease writes value under key, attached to the given lease ID
// (0 for none), and returns the new revision.
func (s *Store) PutLease(key string, value []byte, lease int64) int64 {
	s.mu.Lock()
	s.rev++
	rev := s.rev
	hist := s.keys[key]
	createRev := rev
	version := int64(1)
	if n := len(hist); n > 0 && !hist[n-1].tombstone {
		createRev = hist[n-1].createRev
		version = hist[n-1].version + 1
	}
	v := make([]byte, len(value))
	copy(v, value)
	s.keys[key] = append(hist, keyVersion{rev: rev, value: v, createRev: createRev, version: version, lease: lease})
	ev := Event{Type: EventPut, KV: KV{Key: key, Value: v, CreateRevision: createRev, ModRevision: rev, Version: version, Lease: lease}}
	// Notify while holding the store lock so WatchFrom can atomically
	// replay history and attach without missing or duplicating events.
	s.watchers.notify(ev)
	s.mu.Unlock()
	return rev
}

// Delete removes key. It returns the new revision and whether the key
// existed.
func (s *Store) Delete(key string) (int64, bool) {
	s.mu.Lock()
	hist := s.keys[key]
	n := len(hist)
	if n == 0 || hist[n-1].tombstone {
		rev := s.rev
		s.mu.Unlock()
		return rev, false
	}
	s.rev++
	rev := s.rev
	s.keys[key] = append(hist, keyVersion{rev: rev, tombstone: true})
	ev := Event{Type: EventDelete, KV: KV{Key: key, ModRevision: rev}}
	s.watchers.notify(ev)
	s.mu.Unlock()
	return rev, true
}

// CAS writes value only if the key's current ModRevision equals
// expectRev (0 = key must not exist). It returns the new revision and
// whether the swap happened — the primitive agents use to claim
// leadership of a shared decision without a separate lock service.
func (s *Store) CAS(key string, expectRev int64, value []byte) (int64, bool) {
	s.mu.Lock()
	cur, ok := s.getLocked(key, s.rev)
	switch {
	case !ok && expectRev != 0:
		rev := s.rev
		s.mu.Unlock()
		return rev, false
	case ok && cur.ModRevision != expectRev:
		rev := s.rev
		s.mu.Unlock()
		return rev, false
	}
	s.rev++
	rev := s.rev
	hist := s.keys[key]
	createRev := rev
	version := int64(1)
	if n := len(hist); n > 0 && !hist[n-1].tombstone {
		createRev = hist[n-1].createRev
		version = hist[n-1].version + 1
	}
	v := make([]byte, len(value))
	copy(v, value)
	s.keys[key] = append(hist, keyVersion{rev: rev, value: v, createRev: createRev, version: version})
	ev := Event{Type: EventPut, KV: KV{Key: key, Value: v, CreateRevision: createRev, ModRevision: rev, Version: version}}
	s.watchers.notify(ev)
	s.mu.Unlock()
	return rev, true
}

// Get returns the latest value of key.
func (s *Store) Get(key string) (KV, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.getLocked(key, s.rev)
}

// GetAt returns the value of key as of revision rev. It reports an error
// when rev has been compacted away.
func (s *Store) GetAt(key string, rev int64) (KV, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if rev < s.compacted {
		return KV{}, false, fmt.Errorf("kb: revision %d compacted (compact revision %d)", rev, s.compacted)
	}
	kv, ok := s.getLocked(key, rev)
	return kv, ok, nil
}

func (s *Store) getLocked(key string, rev int64) (KV, bool) {
	hist := s.keys[key]
	// Latest version with version.rev ≤ rev.
	idx := sort.Search(len(hist), func(i int) bool { return hist[i].rev > rev }) - 1
	if idx < 0 {
		return KV{}, false
	}
	v := hist[idx]
	if v.tombstone {
		return KV{}, false
	}
	val := make([]byte, len(v.value))
	copy(val, v.value)
	return KV{Key: key, Value: val, CreateRevision: v.createRev, ModRevision: v.rev, Version: v.version, Lease: v.lease}, true
}

// Range returns all live keys with the given prefix, sorted by key.
func (s *Store) Range(prefix string) []KV {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []KV
	for key := range s.keys {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		if kv, ok := s.getLocked(key, s.rev); ok {
			out = append(out, kv)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Count returns the number of live keys under prefix.
func (s *Store) Count(prefix string) int { return len(s.Range(prefix)) }

// Compact discards history older than rev, keeping the latest version of
// each key at or before rev so current reads are unaffected.
func (s *Store) Compact(rev int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if rev > s.rev {
		return fmt.Errorf("kb: compact revision %d beyond current %d", rev, s.rev)
	}
	if rev < s.compacted {
		return fmt.Errorf("kb: compact revision %d already compacted (at %d)", rev, s.compacted)
	}
	for key, hist := range s.keys {
		// Keep the last version ≤ rev plus everything after rev.
		idx := sort.Search(len(hist), func(i int) bool { return hist[i].rev > rev }) - 1
		if idx <= 0 {
			continue
		}
		kept := hist[idx:]
		if kept[0].tombstone && len(kept) == 1 {
			delete(s.keys, key)
			continue
		}
		s.keys[key] = append([]keyVersion(nil), kept...)
	}
	s.compacted = rev
	return nil
}

// CompactedRevision returns the compaction floor.
func (s *Store) CompactedRevision() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.compacted
}

// Serialize renders the store's live state (latest version of every key
// plus the revision counter) for snapshot transfer. History is not
// carried — a snapshot is a compaction by definition.
func (s *Store) Serialize() []byte {
	s.mu.RLock()
	snap := storeImage{Revision: s.rev, Compacted: s.rev}
	for key := range s.keys {
		if kv, ok := s.getLocked(key, s.rev); ok {
			snap.KVs = append(snap.KVs, kv)
		}
	}
	s.mu.RUnlock()
	sort.Slice(snap.KVs, func(i, j int) bool { return snap.KVs[i].Key < snap.KVs[j].Key })
	data, err := json.Marshal(snap)
	if err != nil {
		// All fields are plain data; marshalling cannot fail in practice.
		panic(fmt.Sprintf("kb: serializing store: %v", err))
	}
	return data
}

// Restore replaces the store's contents with a Serialize image,
// preserving per-key revisions and the revision counter so replicas stay
// aligned.
func (s *Store) Restore(data []byte) error {
	var snap storeImage
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("kb: corrupt store snapshot: %w", err)
	}
	s.mu.Lock()
	s.keys = make(map[string][]keyVersion, len(snap.KVs))
	for _, kv := range snap.KVs {
		s.keys[kv.Key] = []keyVersion{{
			rev: kv.ModRevision, value: append([]byte(nil), kv.Value...),
			createRev: kv.CreateRevision, version: kv.Version, lease: kv.Lease,
		}}
	}
	s.rev = snap.Revision
	s.compacted = snap.Compacted
	s.mu.Unlock()
	return nil
}

// storeImage is the snapshot wire format.
type storeImage struct {
	Revision  int64 `json:"revision"`
	Compacted int64 `json:"compacted"`
	KVs       []KV  `json:"kvs"`
}

// Keys returns all live keys (sorted), mainly for diagnostics.
func (s *Store) Keys() []string {
	kvs := s.Range("")
	out := make([]string, len(kvs))
	for i, kv := range kvs {
		out[i] = kv.Key
	}
	return out
}
