package kb

import (
	"fmt"
	"sync"
	"testing"
)

// TestKeepAliveCannotResurrectExpiredLease is the regression test for
// the lease-resurrection bug: a keep-alive arriving after the deadline
// used to silently extend the lease, letting a zombie client keep keys
// alive that the rest of the cluster had already watched expire. A
// late keep-alive must fail, and the lease's keys must be gone.
func TestKeepAliveCannotResurrectExpiredLease(t *testing.T) {
	s := NewStore()
	m := NewLeaseManager(s)

	l := m.Grant(0, 100)
	if err := m.Attach(l.ID, "svc/a", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// In-window keep-alives extend as ever.
	if err := m.KeepAlive(l.ID, 90); err != nil {
		t.Fatalf("in-window keep-alive failed: %v", err)
	}

	// The client goes dark for longer than the TTL (gap > TTL with no
	// Tick in between — exactly the partition shape): the keep-alive
	// must fail even though no Tick got to expire the lease first.
	if err := m.KeepAlive(l.ID, 90+101); err == nil {
		t.Fatal("keep-alive after the deadline resurrected the lease")
	}
	if m.Alive(l.ID) {
		t.Fatal("expired lease still tracked")
	}
	if _, ok := s.Get("svc/a"); ok {
		t.Fatal("expired lease's key survived the failed keep-alive")
	}
	if d, ok := m.Deadline(l.ID); ok {
		t.Fatalf("Deadline reports %d for a dead lease", d)
	}

	// A fresh Grant starts clean — the failure is not sticky.
	l2 := m.Grant(300, 100)
	if err := m.KeepAlive(l2.ID, 350); err != nil {
		t.Fatalf("fresh lease keep-alive failed: %v", err)
	}
}

// TestWatchLeaseChurnUnderPartition drives the replicated KB through
// lease grants, attaches, expiries, and re-grants while the cluster is
// repeatedly partitioned and healed, with a concurrent watcher
// draining events (run it with -race). Invariants: no expired lease's
// key survives, and the watcher observes events in revision order.
func TestWatchLeaseChurnUnderPartition(t *testing.T) {
	cl := NewCluster(3, 99)
	m := NewLeaseManager(cl)
	w := cl.Watch("svc/", 8192)

	var mu sync.Mutex
	var revs []int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := range w.Events() {
			mu.Lock()
			revs = append(revs, e.KV.ModRevision)
			mu.Unlock()
		}
	}()

	ids := cl.Members()
	now := int64(0)
	const ttl = 20

	// A long-lived lease kept alive through the churn — it must survive
	// every partition because its client never goes dark.
	keeper := m.Grant(now, ttl)
	if err := m.Attach(keeper.ID, "svc/keeper", []byte("k")); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 60; i++ {
		now += 5
		l := m.Grant(now, ttl)
		if err := m.Attach(l.ID, fmt.Sprintf("svc/%03d", i), []byte("v")); err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		if err := m.KeepAlive(keeper.ID, now); err != nil {
			t.Fatalf("keeper keep-alive at %d: %v", now, err)
		}
		switch i % 7 {
		case 3:
			cl.Partition(ids[:1], ids[1:])
		case 5:
			cl.Heal()
		}
		m.Tick(now) // expires every short lease whose client went dark
	}
	cl.Heal()

	// Sweep forward with the keeper's client still renewing in-window:
	// every short lease lapses, the keeper must survive.
	for j := 0; j < 10; j++ {
		now += ttl / 2
		if err := m.KeepAlive(keeper.ID, now); err != nil {
			t.Fatalf("keeper keep-alive during sweep at %d: %v", now, err)
		}
		m.Tick(now)
	}
	kvs := cl.Range("svc/")
	if len(kvs) != 1 || kvs[0].Key != "svc/keeper" {
		t.Fatalf("stale lease keys survived the churn: %d keys", len(kvs))
	}
	if m.Len() != 1 {
		t.Fatalf("lease table carries %d leases, want 1", m.Len())
	}

	// And the regression stays fixed on the replicated backend too: a
	// keep-alive far past the deadline fails and drops the keys.
	if err := m.KeepAlive(keeper.ID, now+10*ttl); err == nil {
		t.Fatal("keep-alive far past the deadline resurrected the keeper")
	}
	if kvs := cl.Range("svc/"); len(kvs) != 0 {
		t.Fatalf("dead keeper's key survived: %d keys", len(kvs))
	}

	w.Cancel()
	wg.Wait()
	if len(revs) == 0 {
		t.Fatal("watcher observed no events")
	}
	for i := 1; i < len(revs); i++ {
		if revs[i] <= revs[i-1] {
			t.Fatalf("events out of revision order at %d: %d after %d", i, revs[i], revs[i-1])
		}
	}
	if d := w.Dropped(); d != 0 {
		t.Fatalf("watcher dropped %d events", d)
	}
}
