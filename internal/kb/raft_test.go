package kb

import (
	"fmt"
	"testing"

	"myrtus/internal/sim"
)

// harness is a minimal in-test transport for raw raft Nodes.
type harness struct {
	nodes map[NodeID]*Node
	down  map[NodeID]bool
	cut   map[[2]NodeID]bool
}

func newHarness(n int, seed uint64) *harness {
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i + 1)
	}
	rng := sim.NewRNG(seed)
	h := &harness{nodes: map[NodeID]*Node{}, down: map[NodeID]bool{}, cut: map[[2]NodeID]bool{}}
	for _, id := range ids {
		h.nodes[id] = NewNode(id, ids, 10, 1, rng)
	}
	return h
}

func (h *harness) tick(n int) {
	for i := 0; i < n; i++ {
		for id := NodeID(1); int(id) <= len(h.nodes); id++ {
			if !h.down[id] {
				h.nodes[id].Tick()
			}
		}
		for j := 0; j < 32; j++ {
			if !h.route() {
				break
			}
		}
	}
}

func (h *harness) route() bool {
	moved := false
	for id := NodeID(1); int(id) <= len(h.nodes); id++ {
		msgs := h.nodes[id].ReadMessages()
		if h.down[id] {
			continue
		}
		for _, m := range msgs {
			if h.down[m.To] || h.cut[[2]NodeID{id, m.To}] {
				continue
			}
			h.nodes[m.To].Step(m)
			moved = true
		}
	}
	return moved
}

func (h *harness) leader() *Node {
	for _, n := range h.nodes {
		if !h.down[n.ID()] && n.Role() == Leader {
			return n
		}
	}
	return nil
}

func (h *harness) leaders() []NodeID {
	var out []NodeID
	for _, n := range h.nodes {
		if !h.down[n.ID()] && n.Role() == Leader {
			out = append(out, n.ID())
		}
	}
	return out
}

func TestRaftElectsSingleLeader(t *testing.T) {
	h := newHarness(3, 1)
	h.tick(100)
	if l := h.leader(); l == nil {
		t.Fatal("no leader elected")
	}
	if n := len(h.leaders()); n != 1 {
		t.Fatalf("%d leaders", n)
	}
	// All nodes agree on the leader and term.
	lead := h.leader()
	for _, n := range h.nodes {
		if n.Leader() != lead.ID() {
			t.Fatalf("node %d thinks leader is %d, want %d", n.ID(), n.Leader(), lead.ID())
		}
		if n.Term() != lead.Term() {
			t.Fatalf("term disagreement")
		}
	}
}

func TestRaftSingleNodeCluster(t *testing.T) {
	h := newHarness(1, 2)
	h.tick(30)
	l := h.leader()
	if l == nil {
		t.Fatal("singleton did not self-elect")
	}
	if !l.Propose([]byte("x")) {
		t.Fatal("propose failed")
	}
	h.tick(2)
	ents := l.TakeCommitted()
	if len(ents) != 1 || string(ents[0].Data) != "x" {
		t.Fatalf("committed = %v", ents)
	}
}

func TestRaftReplicationAndCommit(t *testing.T) {
	h := newHarness(5, 3)
	h.tick(100)
	l := h.leader()
	for i := 0; i < 10; i++ {
		if !l.Propose([]byte(fmt.Sprintf("e%d", i))) {
			t.Fatal("propose failed")
		}
	}
	h.tick(20)
	for id, n := range h.nodes {
		ents := n.TakeCommitted()
		if len(ents) != 10 {
			t.Fatalf("node %d committed %d entries, want 10", id, len(ents))
		}
		for i, e := range ents {
			if string(e.Data) != fmt.Sprintf("e%d", i) {
				t.Fatalf("node %d entry %d = %q", id, i, e.Data)
			}
		}
	}
}

func TestRaftFollowerRejectsProposal(t *testing.T) {
	h := newHarness(3, 4)
	h.tick(100)
	for _, n := range h.nodes {
		if n.Role() != Leader && n.Propose([]byte("x")) {
			t.Fatal("follower accepted proposal")
		}
	}
}

func TestRaftLeaderFailover(t *testing.T) {
	h := newHarness(3, 5)
	h.tick(100)
	old := h.leader()
	old.Propose([]byte("before"))
	h.tick(10)
	h.down[old.ID()] = true
	h.tick(200)
	nl := h.leader()
	if nl == nil {
		t.Fatal("no new leader after failover")
	}
	if nl.ID() == old.ID() {
		t.Fatal("dead node still leader")
	}
	if nl.Term() <= old.Term() {
		t.Fatalf("term did not advance: %d ≤ %d", nl.Term(), old.Term())
	}
	// Committed entry survives failover.
	nl.Propose([]byte("after"))
	h.tick(20)
	var datas []string
	for _, e := range nl.TakeCommitted() {
		datas = append(datas, string(e.Data))
	}
	if len(datas) != 2 || datas[0] != "before" || datas[1] != "after" {
		t.Fatalf("log after failover = %v", datas)
	}
}

func TestRaftMinorityPartitionCannotCommit(t *testing.T) {
	h := newHarness(5, 6)
	h.tick(100)
	l := h.leader()
	// Isolate the leader with one follower (minority).
	follower := NodeID(0)
	for id := NodeID(1); id <= 5; id++ {
		if id != l.ID() {
			follower = id
			break
		}
	}
	minority := map[NodeID]bool{l.ID(): true, follower: true}
	for a := NodeID(1); a <= 5; a++ {
		for b := NodeID(1); b <= 5; b++ {
			if minority[a] != minority[b] {
				h.cut[[2]NodeID{a, b}] = true
			}
		}
	}
	before := l.Commit()
	l.Propose([]byte("doomed"))
	h.tick(50)
	if l.Commit() > before {
		t.Fatal("minority leader advanced commit")
	}
	// Majority side elects a new leader which can commit.
	h.tick(200)
	var newLead *Node
	for _, n := range h.nodes {
		if n.Role() == Leader && !minority[n.ID()] {
			newLead = n
		}
	}
	if newLead == nil {
		t.Fatal("majority did not elect a leader")
	}
	newLead.Propose([]byte("ok"))
	h.tick(20)
	found := false
	for _, e := range newLead.TakeCommitted() {
		if string(e.Data) == "ok" {
			found = true
		}
		if string(e.Data) == "doomed" {
			t.Fatal("uncommitted minority entry leaked into majority log")
		}
	}
	if !found {
		t.Fatal("majority entry not committed")
	}
	// Heal: old leader steps down and converges.
	h.cut = map[[2]NodeID]bool{}
	h.tick(100)
	if len(h.leaders()) != 1 {
		t.Fatalf("split brain after heal: %v", h.leaders())
	}
	if l.Role() == Leader && l.Term() < newLead.Term() {
		t.Fatal("stale leader did not step down")
	}
}

func TestRaftLogInvariants(t *testing.T) {
	// After arbitrary proposals and failovers, all nodes' committed
	// prefixes must be consistent (log matching safety).
	for seed := uint64(10); seed < 15; seed++ {
		h := newHarness(5, seed)
		h.tick(100)
		rng := sim.NewRNG(seed)
		committed := map[NodeID][]string{}
		for round := 0; round < 6; round++ {
			if l := h.leader(); l != nil {
				for i := 0; i < 3; i++ {
					l.Propose([]byte(fmt.Sprintf("r%d-%d", round, i)))
				}
			}
			h.tick(30)
			// Random crash/recover.
			victim := NodeID(1 + rng.Intn(5))
			h.down[victim] = !h.down[victim]
			if countDown(h) > 2 {
				h.down[victim] = false // keep a quorum alive
			}
			h.tick(60)
			for id, n := range h.nodes {
				for _, e := range n.TakeCommitted() {
					committed[id] = append(committed[id], string(e.Data))
				}
			}
		}
		// Every pair of nodes agrees on their common committed prefix.
		for a := NodeID(1); a <= 5; a++ {
			for b := a + 1; b <= 5; b++ {
				la, lb := committed[a], committed[b]
				n := len(la)
				if len(lb) < n {
					n = len(lb)
				}
				for i := 0; i < n; i++ {
					if la[i] != lb[i] {
						t.Fatalf("seed %d: committed divergence at %d: %q vs %q", seed, i, la[i], lb[i])
					}
				}
			}
		}
	}
}

func countDown(h *harness) int {
	n := 0
	for _, d := range h.down {
		if d {
			n++
		}
	}
	return n
}

func TestRaftRoleStrings(t *testing.T) {
	if Follower.String() != "follower" || Candidate.String() != "candidate" || Leader.String() != "leader" {
		t.Fatal("role names")
	}
	if MsgVote.String() != "MsgVote" || MsgApp.String() != "MsgApp" || MsgVoteResp.String() != "MsgVoteResp" || MsgAppResp.String() != "MsgAppResp" {
		t.Fatal("msg names")
	}
	if RoleType(9).String() == "" || MsgType(9).String() == "" {
		t.Fatal("unknown formatting")
	}
}

func TestRaftBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNode(1, []NodeID{1}, 1, 1, sim.NewRNG(1))
}
