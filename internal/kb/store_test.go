package kb

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestStorePutGet(t *testing.T) {
	s := NewStore()
	rev := s.Put("a", []byte("1"))
	if rev != 1 {
		t.Fatalf("rev = %d, want 1", rev)
	}
	kv, ok := s.Get("a")
	if !ok || string(kv.Value) != "1" {
		t.Fatalf("Get = %v %v", kv, ok)
	}
	if kv.CreateRevision != 1 || kv.ModRevision != 1 || kv.Version != 1 {
		t.Fatalf("metadata = %+v", kv)
	}
}

func TestStoreVersioning(t *testing.T) {
	s := NewStore()
	s.Put("a", []byte("1"))
	s.Put("b", []byte("x"))
	s.Put("a", []byte("2"))
	kv, _ := s.Get("a")
	if kv.CreateRevision != 1 || kv.ModRevision != 3 || kv.Version != 2 {
		t.Fatalf("metadata = %+v", kv)
	}
}

func TestStoreHistoricalReads(t *testing.T) {
	s := NewStore()
	s.Put("k", []byte("v1")) // rev 1
	s.Put("k", []byte("v2")) // rev 2
	s.Delete("k")            // rev 3
	s.Put("k", []byte("v4")) // rev 4

	for _, tc := range []struct {
		rev  int64
		want string
		ok   bool
	}{
		{1, "v1", true}, {2, "v2", true}, {3, "", false}, {4, "v4", true},
	} {
		kv, ok, err := s.GetAt("k", tc.rev)
		if err != nil {
			t.Fatalf("GetAt(%d): %v", tc.rev, err)
		}
		if ok != tc.ok || (ok && string(kv.Value) != tc.want) {
			t.Fatalf("GetAt(%d) = %q %v, want %q %v", tc.rev, kv.Value, ok, tc.want, tc.ok)
		}
	}
	// Re-creation resets create revision and version.
	kv, _ := s.Get("k")
	if kv.CreateRevision != 4 || kv.Version != 1 {
		t.Fatalf("recreated metadata = %+v", kv)
	}
}

func TestStoreDelete(t *testing.T) {
	s := NewStore()
	s.Put("a", []byte("1"))
	rev, existed := s.Delete("a")
	if !existed || rev != 2 {
		t.Fatalf("Delete = %d %v", rev, existed)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still readable")
	}
	// Deleting a missing key does not bump the revision.
	rev2, existed := s.Delete("a")
	if existed || rev2 != 2 {
		t.Fatalf("double delete = %d %v", rev2, existed)
	}
}

func TestStoreRange(t *testing.T) {
	s := NewStore()
	s.Put("/app/b", []byte("2"))
	s.Put("/app/a", []byte("1"))
	s.Put("/other/c", []byte("3"))
	s.Put("/app/deleted", []byte("x"))
	s.Delete("/app/deleted")
	got := s.Range("/app/")
	if len(got) != 2 || got[0].Key != "/app/a" || got[1].Key != "/app/b" {
		t.Fatalf("Range = %+v", got)
	}
	if s.Count("/app/") != 2 || s.Count("") != 3 {
		t.Fatalf("Count wrong")
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "/app/a" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestStoreCompact(t *testing.T) {
	s := NewStore()
	s.Put("k", []byte("v1")) // 1
	s.Put("k", []byte("v2")) // 2
	s.Put("k", []byte("v3")) // 3
	s.Put("dead", []byte("x"))
	s.Delete("dead")
	if err := s.Compact(3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.GetAt("k", 1); err == nil {
		t.Fatal("compacted read should error")
	}
	kv, ok, err := s.GetAt("k", 3)
	if err != nil || !ok || string(kv.Value) != "v3" {
		t.Fatalf("post-compact read = %v %v %v", kv, ok, err)
	}
	if kv, ok := s.Get("k"); !ok || string(kv.Value) != "v3" {
		t.Fatal("current read broken by compaction")
	}
	// Fully-dead keys are garbage collected.
	if _, ok := s.Get("dead"); ok {
		t.Fatal("dead key resurrected")
	}
	if err := s.Compact(1); err == nil {
		t.Fatal("compacting backwards should error")
	}
	if err := s.Compact(1000); err == nil {
		t.Fatal("compacting future should error")
	}
	if s.CompactedRevision() != 3 {
		t.Fatalf("CompactedRevision = %d", s.CompactedRevision())
	}
}

func TestStoreValueIsolation(t *testing.T) {
	s := NewStore()
	buf := []byte("abc")
	s.Put("k", buf)
	buf[0] = 'X' // caller mutates its slice after Put
	kv, _ := s.Get("k")
	if string(kv.Value) != "abc" {
		t.Fatalf("store aliased caller buffer: %q", kv.Value)
	}
	kv.Value[0] = 'Y' // reader mutates the returned slice
	kv2, _ := s.Get("k")
	if string(kv2.Value) != "abc" {
		t.Fatalf("reader mutated store state: %q", kv2.Value)
	}
}

func TestStoreRevisionMonotonicProperty(t *testing.T) {
	type op struct {
		Del bool
		Key uint8
		Val uint8
	}
	if err := quick.Check(func(ops []op) bool {
		s := NewStore()
		last := int64(0)
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%8)
			var rev int64
			if o.Del {
				rev, _ = s.Delete(key)
			} else {
				rev = s.Put(key, []byte{o.Val})
			}
			if rev < last {
				return false
			}
			last = rev
		}
		return s.Revision() == last || len(ops) == 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStoreHistoricalConsistencyProperty(t *testing.T) {
	// Writing a sequence and replaying GetAt at each recorded revision
	// must reproduce the value written at that revision.
	if err := quick.Check(func(vals []uint8) bool {
		s := NewStore()
		type snap struct {
			rev int64
			val byte
		}
		var snaps []snap
		for _, v := range vals {
			rev := s.Put("k", []byte{v})
			snaps = append(snaps, snap{rev, v})
		}
		for _, sn := range snaps {
			kv, ok, err := s.GetAt("k", sn.rev)
			if err != nil || !ok || !bytes.Equal(kv.Value, []byte{sn.val}) {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWatchDelivery(t *testing.T) {
	s := NewStore()
	w := s.Watch("/a/", 0)
	defer w.Cancel()
	s.Put("/a/x", []byte("1"))
	s.Put("/b/y", []byte("2")) // outside prefix
	s.Delete("/a/x")

	ev := <-w.Events()
	if ev.Type != EventPut || ev.KV.Key != "/a/x" || string(ev.KV.Value) != "1" {
		t.Fatalf("first event = %+v", ev)
	}
	ev = <-w.Events()
	if ev.Type != EventDelete || ev.KV.Key != "/a/x" {
		t.Fatalf("second event = %+v", ev)
	}
	select {
	case ev := <-w.Events():
		t.Fatalf("unexpected event %+v", ev)
	default:
	}
}

func TestWatchCancel(t *testing.T) {
	s := NewStore()
	w := s.Watch("", 0)
	w.Cancel()
	w.Cancel() // double cancel is fine
	if _, open := <-w.Events(); open {
		t.Fatal("channel should be closed")
	}
	s.Put("k", []byte("v")) // must not panic on cancelled watcher
}

func TestWatchOverflowDropsOldest(t *testing.T) {
	s := NewStore()
	w := s.Watch("", 2)
	for i := 0; i < 5; i++ {
		s.Put("k", []byte{byte('0' + i)})
	}
	if w.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", w.Dropped())
	}
	// The two retained events are the newest.
	ev := <-w.Events()
	if string(ev.KV.Value) != "3" {
		t.Fatalf("retained oldest = %q, want 3", ev.KV.Value)
	}
}

func TestEventTypeString(t *testing.T) {
	if EventPut.String() != "PUT" || EventDelete.String() != "DELETE" {
		t.Fatal("event type names")
	}
}

func TestLeaseLifecycle(t *testing.T) {
	s := NewStore()
	m := NewLeaseManager(s)
	l := m.Grant(0, 100)
	if l.ID == 0 || !m.Alive(l.ID) {
		t.Fatal("grant failed")
	}
	if err := m.Attach(l.ID, "hb", []byte("alive")); err != nil {
		t.Fatal(err)
	}
	kv, ok := s.Get("hb")
	if !ok || kv.Lease != l.ID {
		t.Fatalf("attached kv = %+v %v", kv, ok)
	}
	// Keepalive extends the deadline.
	if err := m.KeepAlive(l.ID, 90); err != nil {
		t.Fatal(err)
	}
	if exp := m.Tick(100); len(exp) != 0 {
		t.Fatalf("expired early: %v", exp)
	}
	exp := m.Tick(190)
	if len(exp) != 1 || exp[0] != l.ID {
		t.Fatalf("expired = %v", exp)
	}
	if _, ok := s.Get("hb"); ok {
		t.Fatal("lease key survived expiry")
	}
	if m.Alive(l.ID) || m.Len() != 0 {
		t.Fatal("lease survived expiry")
	}
	if err := m.KeepAlive(l.ID, 0); err == nil {
		t.Fatal("keepalive of dead lease should error")
	}
	if err := m.Attach(l.ID, "x", nil); err == nil {
		t.Fatal("attach to dead lease should error")
	}
	if err := m.Revoke(l.ID); err == nil {
		t.Fatal("revoking dead lease should error")
	}
}

func TestLeaseRevoke(t *testing.T) {
	s := NewStore()
	m := NewLeaseManager(s)
	l := m.Grant(0, 1000)
	m.Attach(l.ID, "a", []byte("1")) //nolint:errcheck
	m.Attach(l.ID, "b", []byte("2")) //nolint:errcheck
	if err := m.Revoke(l.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("a survived revoke")
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("b survived revoke")
	}
}

func TestWatchFromReplaysHistory(t *testing.T) {
	s := NewStore()
	s.Put("/a/x", []byte("1")) // rev 1
	s.Put("/a/y", []byte("2")) // rev 2
	s.Put("/b/z", []byte("3")) // rev 3 (outside prefix)
	s.Delete("/a/x")           // rev 4
	w, err := s.WatchFrom("/a/", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Cancel()
	// Replay: rev 2 put, rev 4 delete (rev 1 excluded, rev 3 filtered).
	ev := <-w.Events()
	if ev.Type != EventPut || ev.KV.Key != "/a/y" || ev.KV.ModRevision != 2 {
		t.Fatalf("first replay = %+v", ev)
	}
	ev = <-w.Events()
	if ev.Type != EventDelete || ev.KV.Key != "/a/x" || ev.KV.ModRevision != 4 {
		t.Fatalf("second replay = %+v", ev)
	}
	// Live events continue seamlessly.
	s.Put("/a/x", []byte("again"))
	ev = <-w.Events()
	if ev.Type != EventPut || ev.KV.Key != "/a/x" || ev.KV.ModRevision != 5 {
		t.Fatalf("live event = %+v", ev)
	}
	select {
	case ev := <-w.Events():
		t.Fatalf("unexpected event %+v", ev)
	default:
	}
}

func TestWatchFromZeroReplaysEverything(t *testing.T) {
	s := NewStore()
	for i := 0; i < 5; i++ {
		s.Put("k", []byte{byte(i)})
	}
	w, err := s.WatchFrom("", 0, 2) // small buffer must auto-grow
	if err != nil {
		t.Fatal(err)
	}
	defer w.Cancel()
	for i := 0; i < 5; i++ {
		ev := <-w.Events()
		if ev.KV.ModRevision != int64(i+1) {
			t.Fatalf("event %d revision = %d", i, ev.KV.ModRevision)
		}
	}
	if w.Dropped() != 0 {
		t.Fatalf("replay dropped %d events", w.Dropped())
	}
}

func TestWatchFromCompactedFails(t *testing.T) {
	s := NewStore()
	s.Put("k", []byte("1"))
	s.Put("k", []byte("2"))
	s.Put("k", []byte("3"))
	if err := s.Compact(2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WatchFrom("", 1, 0); err == nil {
		t.Fatal("compacted watch accepted")
	}
	if w, err := s.WatchFrom("", 2, 0); err != nil {
		t.Fatal(err)
	} else {
		ev := <-w.Events()
		if ev.KV.ModRevision != 3 {
			t.Fatalf("post-compaction replay = %+v", ev)
		}
		w.Cancel()
	}
}

func TestWatchFromOrderingProperty(t *testing.T) {
	// Replayed revisions are strictly increasing for any write pattern.
	if err := quick.Check(func(ops []uint8) bool {
		s := NewStore()
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o%5)
			if o%7 == 0 {
				s.Delete(key)
			} else {
				s.Put(key, []byte{o})
			}
		}
		w, err := s.WatchFrom("", 0, 0)
		if err != nil {
			return false
		}
		defer w.Cancel()
		last := int64(0)
		for {
			select {
			case ev := <-w.Events():
				if ev.KV.ModRevision <= last {
					return false
				}
				last = ev.KV.ModRevision
			default:
				return last == s.Revision()
			}
		}
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCASCreateAndUpdate(t *testing.T) {
	s := NewStore()
	// Create-if-absent.
	rev, ok := s.CAS("lock", 0, []byte("owner-a"))
	if !ok || rev != 1 {
		t.Fatalf("create CAS = %d %v", rev, ok)
	}
	// Second create-if-absent loses.
	if _, ok := s.CAS("lock", 0, []byte("owner-b")); ok {
		t.Fatal("double create succeeded")
	}
	kv, _ := s.Get("lock")
	if string(kv.Value) != "owner-a" {
		t.Fatalf("value = %q", kv.Value)
	}
	// Update with correct revision wins; stale revision loses.
	if _, ok := s.CAS("lock", kv.ModRevision, []byte("owner-a2")); !ok {
		t.Fatal("correct-rev CAS failed")
	}
	if _, ok := s.CAS("lock", kv.ModRevision, []byte("owner-b")); ok {
		t.Fatal("stale-rev CAS succeeded")
	}
	kv2, _ := s.Get("lock")
	if string(kv2.Value) != "owner-a2" || kv2.Version != 2 {
		t.Fatalf("final = %+v", kv2)
	}
	// Expecting a revision on a missing key fails.
	if _, ok := s.CAS("ghost", 7, []byte("x")); ok {
		t.Fatal("CAS on missing key with rev succeeded")
	}
}

func TestCASEmitsWatchEvent(t *testing.T) {
	s := NewStore()
	w := s.Watch("", 0)
	defer w.Cancel()
	s.CAS("k", 0, []byte("v"))
	ev := <-w.Events()
	if ev.Type != EventPut || string(ev.KV.Value) != "v" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestCASMutualExclusionProperty(t *testing.T) {
	// Of N contenders doing create-if-absent, exactly one wins.
	if err := quick.Check(func(n uint8) bool {
		s := NewStore()
		contenders := int(n%8) + 2
		wins := 0
		for i := 0; i < contenders; i++ {
			if _, ok := s.CAS("leader", 0, []byte{byte(i)}); ok {
				wins++
			}
		}
		return wins == 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}
