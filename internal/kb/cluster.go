package kb

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"myrtus/internal/sim"
)

// Backend is the KV contract shared by a single-replica Store and a
// Raft-replicated Cluster. Higher layers (Resource Registry, MIRTO
// proxies) program against Backend so the same code runs on either.
type Backend interface {
	Put(key string, value []byte) int64
	PutLease(key string, value []byte, lease int64) int64
	Delete(key string) (int64, bool)
	Get(key string) (KV, bool)
	Range(prefix string) []KV
	Watch(prefix string, buffer int) *Watcher
	Revision() int64
	// CAS writes value iff the key's ModRevision equals expectRev
	// (0 = must not exist); it reports whether the swap happened.
	CAS(key string, expectRev int64, value []byte) (int64, bool)
}

var (
	_ Backend = (*Store)(nil)
	_ Backend = (*Cluster)(nil)
)

// command is the replicated state-machine operation.
type command struct {
	Op    string `json:"op"` // "put", "delete", "cas", "nop"
	Key   string `json:"key,omitempty"`
	Value []byte `json:"value,omitempty"`
	Lease int64  `json:"lease,omitempty"`
	// ExpectRev is the CAS precondition (0 = key must not exist).
	ExpectRev int64 `json:"expectRev,omitempty"`
}

// Cluster is a Raft-replicated KB: N nodes, each applying the committed
// log to its own MVCC Store replica. The convenience mutators (Put,
// Delete, …) are synchronous: they propose, then pump the message fabric
// until the command applies on the leader, which mirrors how control-plane
// clients use etcd.
//
// Cluster is safe for concurrent use; internally a single mutex serializes
// the deterministic pump.
type Cluster struct {
	mu     sync.Mutex
	ids    []NodeID
	nodes  map[NodeID]*Node
	stores map[NodeID]*Store
	alive  map[NodeID]bool
	inbox  map[NodeID][]Message

	// blocked[a][b] severs the a→b link (partition injection).
	blocked map[NodeID]map[NodeID]bool
	dropP   float64
	rng     *sim.RNG

	delivered uint64
	dropped   uint64
}

// NewCluster creates a cluster of n nodes (IDs 1..n) and elects a leader.
func NewCluster(n int, seed uint64) *Cluster {
	if n < 1 {
		panic("kb: cluster needs at least one node")
	}
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(i + 1)
	}
	rng := sim.NewRNG(seed)
	c := &Cluster{
		ids:     ids,
		nodes:   make(map[NodeID]*Node),
		stores:  make(map[NodeID]*Store),
		alive:   make(map[NodeID]bool),
		inbox:   make(map[NodeID][]Message),
		blocked: make(map[NodeID]map[NodeID]bool),
		rng:     rng.Fork("transport"),
	}
	for _, id := range ids {
		c.nodes[id] = NewNode(id, ids, 10, 1, rng)
		c.stores[id] = NewStore()
		c.alive[id] = true
		c.blocked[id] = make(map[NodeID]bool)
	}
	c.mu.Lock()
	c.pumpUntilLeader(2000)
	c.mu.Unlock()
	return c
}

// Size returns the number of members.
func (c *Cluster) Size() int { return len(c.ids) }

// Leader returns the current leader ID (0 when none).
func (c *Cluster) Leader() NodeID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leaderLocked()
}

func (c *Cluster) leaderLocked() NodeID {
	// Prefer the highest term: a partitioned old leader keeps its role
	// (no peer can reach it to demote it), and picking it would route
	// every proposal into a log that can never commit.
	var best NodeID
	var bestTerm uint64
	for _, id := range c.ids {
		if c.alive[id] && c.nodes[id].Role() == Leader && c.nodes[id].Term() > bestTerm {
			best, bestTerm = id, c.nodes[id].Term()
		}
	}
	return best
}

// tick advances every live node one tick and delivers all messages.
func (c *Cluster) tickLocked() {
	for _, id := range c.ids {
		if c.alive[id] {
			c.nodes[id].Tick()
		}
	}
	c.routeLocked()
	// Drain steps until quiescent so a tick's consequences settle.
	for i := 0; i < 64; i++ {
		if !c.stepLocked() {
			break
		}
	}
	c.applyLocked()
}

// routeLocked moves outboxes into inboxes, honoring partitions and drops.
func (c *Cluster) routeLocked() {
	for _, id := range c.ids {
		if !c.alive[id] {
			c.nodes[id].ReadMessages() // discard output of crashed nodes
			continue
		}
		for _, m := range c.nodes[id].ReadMessages() {
			if !c.alive[m.To] || c.blocked[id][m.To] {
				c.dropped++
				continue
			}
			if c.dropP > 0 && c.rng.Bool(c.dropP) {
				c.dropped++
				continue
			}
			c.inbox[m.To] = append(c.inbox[m.To], m)
			c.delivered++
		}
	}
}

// stepLocked delivers queued inbox messages; reports whether any work was
// done.
func (c *Cluster) stepLocked() bool {
	work := false
	for _, id := range c.ids {
		msgs := c.inbox[id]
		c.inbox[id] = nil
		if len(msgs) > 0 && c.alive[id] {
			work = true
			for _, m := range msgs {
				c.nodes[id].Step(m)
			}
		}
	}
	if work {
		c.routeLocked()
	}
	return work
}

// compactThreshold is the retained-log size that triggers snapshotting.
const compactThreshold = 96

// applyLocked applies newly committed entries on every replica, installs
// any received snapshots, and compacts logs that outgrew the threshold.
func (c *Cluster) applyLocked() {
	for _, id := range c.ids {
		n := c.nodes[id]
		st := c.stores[id]
		// A freshly installed snapshot replaces local state wholesale.
		if data, _, ok := n.TakeSnapshot(); ok {
			st.Restore(data) //nolint:errcheck // leader-produced images are well-formed
		}
		for _, e := range n.TakeCommitted() {
			var cmd command
			if err := json.Unmarshal(e.Data, &cmd); err != nil {
				continue // malformed entries are ignored by the state machine
			}
			switch cmd.Op {
			case "put":
				st.PutLease(cmd.Key, cmd.Value, cmd.Lease)
			case "delete":
				st.Delete(cmd.Key)
			case "cas":
				// Deterministic: every replica evaluates the precondition
				// against the same applied prefix.
				st.CAS(cmd.Key, cmd.ExpectRev, cmd.Value)
			}
		}
		// Log compaction: snapshot the applied state and truncate. Only
		// serialize when the compaction point actually advanced — a
		// partitioned replica whose commit is frozen would otherwise pay
		// for a full-store marshal on every tick just to have CompactTo
		// reject it.
		if applied := n.Commit(); n.LogSize() > compactThreshold && applied > n.SnapshotIndex() {
			n.CompactTo(applied, st.Serialize()) //nolint:errcheck // preconditions hold here
		}
	}
}

func (c *Cluster) pumpUntilLeader(maxTicks int) NodeID {
	for i := 0; i < maxTicks; i++ {
		if id := c.leaderLocked(); id != 0 {
			return id
		}
		c.tickLocked()
	}
	return c.leaderLocked()
}

// propose replicates cmd and waits for it to apply on the leader replica.
func (c *Cluster) propose(cmd command) error {
	data, err := json.Marshal(cmd)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for attempt := 0; attempt < 8; attempt++ {
		lead := c.pumpUntilLeader(2000)
		if lead == 0 {
			return fmt.Errorf("kb: no quorum, cannot elect a leader")
		}
		n := c.nodes[lead]
		if !n.Propose(data) {
			continue
		}
		idx := n.LastIndex()
		term := n.Term()
		for i := 0; i < 2000; i++ {
			c.tickLocked()
			if !c.alive[lead] || c.nodes[lead].Term() != term || c.nodes[lead].Role() != Leader {
				break // leadership lost; retry
			}
			if c.nodes[lead].Commit() >= idx {
				return nil
			}
		}
	}
	return fmt.Errorf("kb: proposal failed to commit")
}

// leaderStore returns the store of the current leader.
func (c *Cluster) leaderStore() *Store {
	c.mu.Lock()
	defer c.mu.Unlock()
	lead := c.pumpUntilLeader(2000)
	if lead == 0 {
		// Fall back to node 1's replica; reads may be stale but callers
		// without quorum asked for it.
		return c.stores[c.ids[0]]
	}
	return c.stores[lead]
}

// Put replicates a write and returns the leader-store revision.
func (c *Cluster) Put(key string, value []byte) int64 {
	return c.PutLease(key, value, 0)
}

// PutLease replicates a write bound to a lease ID.
func (c *Cluster) PutLease(key string, value []byte, lease int64) int64 {
	if err := c.propose(command{Op: "put", Key: key, Value: value, Lease: lease}); err != nil {
		return -1
	}
	return c.leaderStore().Revision()
}

// Delete replicates a deletion.
func (c *Cluster) Delete(key string) (int64, bool) {
	st := c.leaderStore()
	_, existed := st.Get(key)
	if err := c.propose(command{Op: "delete", Key: key}); err != nil {
		return -1, false
	}
	return c.leaderStore().Revision(), existed
}

// CAS replicates a compare-and-swap. Success is judged by reading the
// leader replica after commit: the swap happened iff the key now carries
// our value at a revision past the precondition.
func (c *Cluster) CAS(key string, expectRev int64, value []byte) (int64, bool) {
	if err := c.propose(command{Op: "cas", Key: key, Value: value, ExpectRev: expectRev}); err != nil {
		return -1, false
	}
	st := c.leaderStore()
	kv, ok := st.Get(key)
	if !ok {
		return st.Revision(), false
	}
	swapped := kv.ModRevision > expectRev && string(kv.Value) == string(value)
	return st.Revision(), swapped
}

// Get performs a linearizable read: it commits a no-op barrier, then reads
// the leader replica.
func (c *Cluster) Get(key string) (KV, bool) {
	if err := c.propose(command{Op: "nop"}); err != nil {
		return KV{}, false
	}
	return c.leaderStore().Get(key)
}

// StaleGet reads the given replica without a barrier (follower read).
func (c *Cluster) StaleGet(id NodeID, key string) (KV, bool) {
	c.mu.Lock()
	st := c.stores[id]
	c.mu.Unlock()
	if st == nil {
		return KV{}, false
	}
	return st.Get(key)
}

// Range lists keys under prefix from the leader replica after a barrier.
func (c *Cluster) Range(prefix string) []KV {
	if err := c.propose(command{Op: "nop"}); err != nil {
		return nil
	}
	return c.leaderStore().Range(prefix)
}

// Watch attaches a watcher to the leader replica.
func (c *Cluster) Watch(prefix string, buffer int) *Watcher {
	return c.leaderStore().Watch(prefix, buffer)
}

// Revision returns the leader replica's revision.
func (c *Cluster) Revision() int64 { return c.leaderStore().Revision() }

// Crash stops a node (it neither ticks nor receives messages). Its log is
// retained, modelling a persisted disk.
func (c *Cluster) Crash(id NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.alive[id] = false
	c.inbox[id] = nil
}

// Recover restarts a crashed node.
func (c *Cluster) Recover(id NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.alive[id] = true
}

// Partition severs links between the listed groups (full connectivity
// within each group, none across). Nodes in no group keep all links.
func (c *Cluster) Partition(groups ...[]NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	group := make(map[NodeID]int)
	for gi, g := range groups {
		for _, id := range g {
			group[id] = gi + 1
		}
	}
	for _, a := range c.ids {
		for _, b := range c.ids {
			ga, ok1 := group[a]
			gb, ok2 := group[b]
			c.blocked[a][b] = ok1 && ok2 && ga != gb
		}
	}
}

// Heal removes all partitions.
func (c *Cluster) Heal() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, a := range c.ids {
		for _, b := range c.ids {
			c.blocked[a][b] = false
		}
	}
}

// SetDropProbability sets the i.i.d. message-loss probability.
func (c *Cluster) SetDropProbability(p float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropP = p
}

// Ticks advances the whole cluster by n ticks (for tests that want time to
// pass without issuing requests).
func (c *Cluster) Ticks(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < n; i++ {
		c.tickLocked()
	}
}

// Stats reports transport counters.
func (c *Cluster) Stats() (delivered, dropped uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delivered, c.dropped
}

// Members returns the sorted member IDs.
func (c *Cluster) Members() []NodeID {
	out := append([]NodeID(nil), c.ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ReplicaRevision returns a given replica's local revision (diagnostics).
func (c *Cluster) ReplicaRevision(id NodeID) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.stores[id]; st != nil {
		return st.Revision()
	}
	return -1
}
