package security

import (
	"crypto/rand"
	"crypto/sha512"
	"encoding/binary"
	"errors"
	"io"
)

// Regev-style LWE key encapsulation, standing in for CRYSTALS-Kyber in
// the High suite. Post-quantum by construction (learning-with-errors);
// simulation-grade parameters — see the package comment.
//
// Parameters: n = 256 dimensions, m = 256 samples, q = 4096, error
// e ∈ [-2, 2]. Each encapsulated bit adds a subset of ≤ m rows, so the
// accumulated error stays below q/4 and decryption is exact.

const (
	lweN = 256
	lweM = 256
	lweQ = 4096
)

// LWEPrivateKey is the LWE secret vector plus the public matrix.
type LWEPrivateKey struct {
	s   [lweN]uint16
	pub LWEPublicKey
}

// LWEPublicKey is (A, b = A·s + e).
type LWEPublicKey struct {
	a [lweM][lweN]uint16
	b [lweM]uint16
}

// GenerateLWEKey draws a key pair from rng (nil = crypto/rand).
func GenerateLWEKey(rng io.Reader) (*LWEPrivateKey, error) {
	if rng == nil {
		rng = rand.Reader
	}
	priv := &LWEPrivateKey{}
	buf := make([]byte, 2*lweN)
	if _, err := io.ReadFull(rng, buf); err != nil {
		return nil, err
	}
	for i := 0; i < lweN; i++ {
		priv.s[i] = binary.LittleEndian.Uint16(buf[2*i:]) % lweQ
	}
	rowBuf := make([]byte, 2*lweN+1)
	for r := 0; r < lweM; r++ {
		if _, err := io.ReadFull(rng, rowBuf); err != nil {
			return nil, err
		}
		var acc uint64
		for c := 0; c < lweN; c++ {
			v := binary.LittleEndian.Uint16(rowBuf[2*c:]) % lweQ
			priv.pub.a[r][c] = v
			acc += uint64(v) * uint64(priv.s[c])
		}
		e := int(rowBuf[2*lweN]%5) - 2 // error in [-2, 2]
		priv.pub.b[r] = uint16((acc + uint64(lweQ+e)) % lweQ)
	}
	return priv, nil
}

// PublicKey returns the encapsulation key.
func (k *LWEPrivateKey) PublicKey() *LWEPublicKey { return &k.pub }

// SharedSecretSize is the KEM output length (a SHA-512 digest).
const SharedSecretSize = 64

// lweSeedBits is the number of encapsulated seed bits.
const lweSeedBits = 128

// Encapsulate derives a fresh shared secret for the public key. It
// returns the ciphertext and the shared secret.
func (p *LWEPublicKey) Encapsulate(rng io.Reader) (ct []byte, shared []byte, err error) {
	if rng == nil {
		rng = rand.Reader
	}
	seed := make([]byte, lweSeedBits/8)
	if _, err := io.ReadFull(rng, seed); err != nil {
		return nil, nil, err
	}
	// ct = 128 × (u ∈ Z_q^n, v ∈ Z_q): 2 bytes per coefficient.
	ct = make([]byte, lweSeedBits*(lweN+1)*2)
	sel := make([]byte, lweM/8)
	off := 0
	for bit := 0; bit < lweSeedBits; bit++ {
		if _, err := io.ReadFull(rng, sel); err != nil {
			return nil, nil, err
		}
		var u [lweN]uint32
		var v uint32
		for r := 0; r < lweM; r++ {
			if sel[r/8]&(1<<(r%8)) == 0 {
				continue
			}
			for c := 0; c < lweN; c++ {
				u[c] += uint32(p.a[r][c])
			}
			v += uint32(p.b[r])
		}
		if seed[bit/8]&(1<<(bit%8)) != 0 {
			v += lweQ / 2
		}
		for c := 0; c < lweN; c++ {
			binary.LittleEndian.PutUint16(ct[off:], uint16(u[c]%lweQ))
			off += 2
		}
		binary.LittleEndian.PutUint16(ct[off:], uint16(v%lweQ))
		off += 2
	}
	sum := sha512.Sum512(seed)
	return ct, sum[:], nil
}

// Decapsulate recovers the shared secret from ct.
func (k *LWEPrivateKey) Decapsulate(ct []byte) ([]byte, error) {
	if len(ct) != lweSeedBits*(lweN+1)*2 {
		return nil, errors.New("security: bad LWE ciphertext length")
	}
	seed := make([]byte, lweSeedBits/8)
	off := 0
	for bit := 0; bit < lweSeedBits; bit++ {
		var dot uint64
		for c := 0; c < lweN; c++ {
			u := binary.LittleEndian.Uint16(ct[off:])
			off += 2
			dot += uint64(u) * uint64(k.s[c])
		}
		v := binary.LittleEndian.Uint16(ct[off:])
		off += 2
		diff := (uint64(v) + uint64(lweQ)*lweN*lweQ - dot) % lweQ
		// diff ≈ 0 → bit 0, diff ≈ q/2 → bit 1 (within q/4).
		if diff > lweQ/4 && diff < 3*lweQ/4 {
			seed[bit/8] |= 1 << (bit % 8)
		}
	}
	sum := sha512.Sum512(seed)
	return sum[:], nil
}
