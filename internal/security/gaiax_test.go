package security

import (
	"strings"
	"testing"
)

func federation(t *testing.T) (*ComplianceService, *TrustAnchor, *Participant) {
	t.Helper()
	anchor, err := NewTrustAnchor("gaia-x-eu", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewParticipant("hiro-fmdc", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := anchor.Endorse(p); err != nil {
		t.Fatal(err)
	}
	cs := NewComplianceService()
	cs.AddAnchor(anchor)
	if err := cs.Register(p); err != nil {
		t.Fatal(err)
	}
	return cs, anchor, p
}

func compliantClaims() Claims {
	return Claims{
		"legalName":          "HIRO MicroDataCenters B.V.",
		"headquarterCountry": "NL",
		"termsAndConditions": "sha256:abcd",
		"service":            "fog-micro-datacenter",
	}
}

func TestGaiaXHappyPath(t *testing.T) {
	cs, _, p := federation(t)
	sd, err := p.SignSelfDescription("fmdc-0", compliantClaims())
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Verify(sd); err != nil {
		t.Fatal(err)
	}
	if !cs.Compliant(sd) {
		t.Fatal("Compliant = false")
	}
}

func TestGaiaXRejectsUnregisteredIssuer(t *testing.T) {
	cs, _, _ := federation(t)
	stranger, _ := NewParticipant("stranger", nil)
	anchor2, _ := NewTrustAnchor("rogue", nil)
	anchor2.Endorse(stranger) //nolint:errcheck
	sd, _ := stranger.SignSelfDescription("svc", compliantClaims())
	if err := cs.Verify(sd); err == nil || !strings.Contains(err.Error(), "not registered") {
		t.Fatalf("err = %v", err)
	}
}

func TestGaiaXRejectsUnknownAnchor(t *testing.T) {
	cs := NewComplianceService()
	rogue, _ := NewTrustAnchor("rogue", nil)
	p, _ := NewParticipant("p", nil)
	rogue.Endorse(p) //nolint:errcheck
	if err := cs.Register(p); err != nil {
		t.Fatal(err)
	}
	sd, _ := p.SignSelfDescription("svc", compliantClaims())
	if err := cs.Verify(sd); err == nil || !strings.Contains(err.Error(), "unknown anchor") {
		t.Fatalf("err = %v", err)
	}
}

func TestGaiaXRejectsUnendorsedRegistration(t *testing.T) {
	cs := NewComplianceService()
	p, _ := NewParticipant("p", nil)
	if err := cs.Register(p); err == nil {
		t.Fatal("unendorsed participant registered")
	}
}

func TestGaiaXRejectsTamperedClaims(t *testing.T) {
	cs, _, p := federation(t)
	sd, _ := p.SignSelfDescription("fmdc-0", compliantClaims())
	sd.Claims["legalName"] = "Mallory Inc."
	if cs.Compliant(sd) {
		t.Fatal("tampered self-description accepted")
	}
}

func TestGaiaXRejectsForgedSignature(t *testing.T) {
	cs, _, p := federation(t)
	sd, _ := p.SignSelfDescription("fmdc-0", compliantClaims())
	sd.Signature[8] ^= 1
	if cs.Compliant(sd) {
		t.Fatal("forged signature accepted")
	}
}

func TestGaiaXRejectsMissingMandatoryClaims(t *testing.T) {
	cs, _, p := federation(t)
	claims := compliantClaims()
	delete(claims, "headquarterCountry")
	sd, _ := p.SignSelfDescription("fmdc-0", claims)
	err := cs.Verify(sd)
	if err == nil || !strings.Contains(err.Error(), "mandatory claim") {
		t.Fatalf("err = %v", err)
	}
}

func TestGaiaXImpersonationFails(t *testing.T) {
	// A registered participant cannot sign as another registered one.
	cs, anchor, p1 := federation(t)
	p2, _ := NewParticipant("canon-edge", nil)
	anchor.Endorse(p2) //nolint:errcheck
	cs.Register(p2)    //nolint:errcheck
	sd, _ := p2.SignSelfDescription("svc", compliantClaims())
	sd.Issuer = p1.Name // claim to be p1
	if cs.Compliant(sd) {
		t.Fatal("impersonation accepted")
	}
}

func TestGaiaXSerializationRoundTrip(t *testing.T) {
	cs, _, p := federation(t)
	sd, _ := p.SignSelfDescription("fmdc-0", compliantClaims())
	data, err := MarshalSelfDescription(sd)
	if err != nil {
		t.Fatal(err)
	}
	sd2, err := UnmarshalSelfDescription(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.Verify(sd2); err != nil {
		t.Fatalf("round-tripped SD rejected: %v", err)
	}
	if _, err := UnmarshalSelfDescription([]byte("junk")); err == nil {
		t.Fatal("junk parsed")
	}
}

func TestGaiaXValidation(t *testing.T) {
	if _, err := NewParticipant("", nil); err == nil {
		t.Fatal("nameless participant accepted")
	}
}
