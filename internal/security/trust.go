package security

import (
	"fmt"
	"math"
	"math/big"
	"sort"
	"sync"
	"sync/atomic"
)

func newBigInt(b []byte) *big.Int { return new(big.Int).SetBytes(b) }

// TrustEngine implements the Trust & Reputation building block: per-
// component trust scores derived from observed interaction outcomes
// (beta-reputation), combined with cross-rater reputation aggregation.
// Scores are in [0, 1]; MIRTO's Privacy & Security Manager treats them as
// trust-related KPIs when (re)allocating workloads.
type TrustEngine struct {
	mu sync.Mutex
	// obs[rater][subject] = (successes, failures), exponentially decayed.
	obs map[string]map[string]*betaRecord
	// decay per Observe on the same (rater, subject) pair.
	decay float64
	// rep memoizes Reputation per subject between Observe calls; the
	// orchestrator polls reputations once per candidate per plan, so the
	// cross-rater aggregation would otherwise rerun constantly.
	rep map[string]float64
	// hasObs flips once the first observation lands. While false every
	// reputation is exactly the neutral 0.5, which lets callers with a
	// threshold at or below neutral skip per-subject queries entirely.
	hasObs atomic.Bool
}

type betaRecord struct {
	s, f float64
}

// NewTrustEngine returns an engine with the given memory decay factor in
// (0, 1]; 1 means no forgetting. Typical: 0.98.
func NewTrustEngine(decay float64) (*TrustEngine, error) {
	if decay <= 0 || decay > 1 {
		return nil, fmt.Errorf("security: trust decay %v out of (0,1]", decay)
	}
	return &TrustEngine{
		obs:   make(map[string]map[string]*betaRecord),
		decay: decay,
		rep:   make(map[string]float64),
	}, nil
}

// Observe records an interaction outcome between rater and subject.
func (t *TrustEngine) Observe(rater, subject string, success bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := t.obs[rater]
	if m == nil {
		m = make(map[string]*betaRecord)
		t.obs[rater] = m
	}
	r := m[subject]
	if r == nil {
		r = &betaRecord{}
		m[subject] = r
	}
	r.s *= t.decay
	r.f *= t.decay
	if success {
		r.s++
	} else {
		r.f++
	}
	// New evidence about subject invalidates only subject's memo.
	delete(t.rep, subject)
	t.hasObs.Store(true)
}

// HasEvidence reports whether any interaction has ever been observed.
// While false, Reputation is the neutral 0.5 for every subject.
func (t *TrustEngine) HasEvidence() bool { return t.hasObs.Load() }

// Trust returns rater's direct trust in subject: the beta-reputation
// expected value (s+1)/(s+f+2). With no history it is the neutral 0.5.
func (t *TrustEngine) Trust(rater, subject string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r := t.obs[rater][subject]; r != nil {
		return (r.s + 1) / (r.s + r.f + 2)
	}
	return 0.5
}

// Reputation aggregates all raters' direct trust in subject, weighting
// each rater by its observation mass (raters with more evidence count
// more). No evidence yields the neutral 0.5.
func (t *TrustEngine) Reputation(subject string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if v, ok := t.rep[subject]; ok {
		return v
	}
	num, den := 0.0, 0.0
	for _, m := range t.obs {
		r := m[subject]
		if r == nil {
			continue
		}
		w := r.s + r.f
		if w == 0 {
			continue
		}
		trust := (r.s + 1) / (r.s + r.f + 2)
		num += w * trust
		den += w
	}
	v := 0.5
	if den != 0 {
		v = num / den
	}
	t.rep[subject] = v
	return v
}

// Trusted reports whether subject's reputation clears threshold.
func (t *TrustEngine) Trusted(subject string, threshold float64) bool {
	return t.Reputation(subject) >= threshold
}

// Subjects returns every subject with recorded evidence, sorted.
func (t *TrustEngine) Subjects() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	set := map[string]bool{}
	for _, m := range t.obs {
		for s := range m {
			set[s] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Confidence returns how much evidence backs subject's reputation,
// normalized to [0, 1) via mass/(mass+10).
func (t *TrustEngine) Confidence(subject string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	mass := 0.0
	for _, m := range t.obs {
		if r := m[subject]; r != nil {
			mass += r.s + r.f
		}
	}
	return mass / (mass + 10)
}

// Entropy summarizes how divided raters are about subject (0 = raters
// agree, 1 = maximal disagreement). Diagnostic for Sybil-ish behaviour.
func (t *TrustEngine) Entropy(subject string) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	var vals []float64
	for _, m := range t.obs {
		if r := m[subject]; r != nil && r.s+r.f > 0 {
			vals = append(vals, (r.s+1)/(r.s+r.f+2))
		}
	}
	if len(vals) < 2 {
		return 0
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	variance := 0.0
	for _, v := range vals {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(vals))
	// Max variance of values in [0,1] is 0.25.
	return math.Min(variance/0.25, 1)
}
