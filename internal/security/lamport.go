package security

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"io"
)

// Lamport one-time signatures: the hash-based construction standing in
// for the NIST lattice signatures (CRYSTALS-Dilithium, FALCON) of the
// High level. Hash-based signatures are post-quantum secure; like the
// lattice schemes they exhibit the Table II cost shape — kilobyte-scale
// keys and signatures, cheap verification. One key signs ONE message.

const lamportChunks = 256 // one secret pair per digest bit

// LamportPrivateKey holds the 2×256 secret preimages.
type LamportPrivateKey struct {
	secrets [2][lamportChunks][32]byte
	pub     LamportPublicKey
	used    bool
}

// LamportPublicKey holds the 2×256 hashed commitments.
type LamportPublicKey struct {
	hashes [2][lamportChunks][32]byte
}

// GenerateLamportKey draws a fresh one-time key pair from rng
// (crypto/rand.Reader in production; a deterministic reader in tests).
func GenerateLamportKey(rng io.Reader) (*LamportPrivateKey, error) {
	if rng == nil {
		rng = rand.Reader
	}
	priv := &LamportPrivateKey{}
	for b := 0; b < 2; b++ {
		for i := 0; i < lamportChunks; i++ {
			if _, err := io.ReadFull(rng, priv.secrets[b][i][:]); err != nil {
				return nil, err
			}
			priv.pub.hashes[b][i] = sha256.Sum256(priv.secrets[b][i][:])
		}
	}
	return priv, nil
}

// PublicKey returns the verification key.
func (k *LamportPrivateKey) PublicKey() LamportPublicKey { return k.pub }

// Bytes serializes the public key (16 KiB — the PQC size shape).
func (p LamportPublicKey) Bytes() []byte {
	out := make([]byte, 0, 2*lamportChunks*32)
	for b := 0; b < 2; b++ {
		for i := 0; i < lamportChunks; i++ {
			out = append(out, p.hashes[b][i][:]...)
		}
	}
	return out
}

// ParseLamportPublicKey deserializes Bytes output.
func ParseLamportPublicKey(data []byte) (LamportPublicKey, error) {
	var p LamportPublicKey
	if len(data) != 2*lamportChunks*32 {
		return p, errors.New("security: bad lamport public key length")
	}
	for b := 0; b < 2; b++ {
		for i := 0; i < lamportChunks; i++ {
			copy(p.hashes[b][i][:], data[(b*lamportChunks+i)*32:])
		}
	}
	return p, nil
}

// Sign produces the one-time signature of msg. Signing twice with the
// same key is refused: revealing two signatures breaks the scheme.
func (k *LamportPrivateKey) Sign(msg []byte) ([]byte, error) {
	if k.used {
		return nil, errors.New("security: lamport key already used (one-time signature)")
	}
	k.used = true
	digest := sha256.Sum256(msg)
	sig := make([]byte, 0, lamportChunks*32)
	for i := 0; i < lamportChunks; i++ {
		bit := (digest[i/8] >> (7 - uint(i%8))) & 1
		sig = append(sig, k.secrets[bit][i][:]...)
	}
	return sig, nil
}

// Verify checks sig over msg against the public key.
func (p LamportPublicKey) Verify(msg, sig []byte) bool {
	if len(sig) != lamportChunks*32 {
		return false
	}
	digest := sha256.Sum256(msg)
	ok := 1
	for i := 0; i < lamportChunks; i++ {
		bit := (digest[i/8] >> (7 - uint(i%8))) & 1
		h := sha256.Sum256(sig[i*32 : (i+1)*32])
		ok &= subtle.ConstantTimeCompare(h[:], p.hashes[bit][i][:])
	}
	return ok == 1
}
