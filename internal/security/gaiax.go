package security

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Gaia-X trust model (§III: "on the cloud side, adherence to the Gaia-X
// trust model will be guaranteed"). The Gaia-X Trust Framework rests on
// signed self-descriptions: every participant publishes a machine-
// readable description of itself and its services, signed with a key
// endorsed by a trust anchor; a compliance service verifies signature
// chains and mandatory attributes. This file implements that contract:
//
//	TrustAnchor ──endorses──▶ Participant ──signs──▶ SelfDescription
//	                                │
//	     ComplianceService.Verify ◀─┘  (chain + mandatory attributes)

// Claims are the self-description attributes (Gaia-X calls these the
// credential subject).
type Claims map[string]string

// Mandatory Gaia-X-style attributes a compliant self-description carries.
var mandatoryClaims = []string{"legalName", "headquarterCountry", "termsAndConditions"}

// SelfDescription is a signed participant/service description.
type SelfDescription struct {
	Issuer    string `json:"issuer"` // participant name
	Subject   string `json:"subject"`
	Claims    Claims `json:"claims"`
	IssuedAt  int64  `json:"issuedAt"`
	Signature []byte `json:"signature,omitempty"`
}

// payload returns the canonical signing payload (claims sorted).
func (sd *SelfDescription) payload() []byte {
	keys := make([]string, 0, len(sd.Claims))
	for k := range sd.Claims {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%d", sd.Issuer, sd.Subject, sd.IssuedAt)
	for _, k := range keys {
		fmt.Fprintf(h, "|%s=%s", k, sd.Claims[k])
	}
	return h.Sum(nil)
}

// Participant is one Gaia-X participant with its signing identity.
type Participant struct {
	Name string
	key  *ecdsa.PrivateKey
	// endorsement is the anchor's signature over the participant key.
	endorsement []byte
	anchor      string
}

// NewParticipant creates a participant identity (rng nil = crypto/rand).
func NewParticipant(name string, rng io.Reader) (*Participant, error) {
	if name == "" {
		return nil, fmt.Errorf("security: participant needs a name")
	}
	if rng == nil {
		rng = rand.Reader
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, err
	}
	return &Participant{Name: name, key: key}, nil
}

// PublicKey returns the participant's compressed public key.
func (p *Participant) PublicKey() []byte {
	return elliptic.MarshalCompressed(elliptic.P256(), p.key.X, p.key.Y)
}

// SignSelfDescription issues and signs a self-description.
func (p *Participant) SignSelfDescription(subject string, claims Claims) (*SelfDescription, error) {
	sd := &SelfDescription{
		Issuer:   p.Name,
		Subject:  subject,
		Claims:   claims,
		IssuedAt: time.Now().UnixNano(),
	}
	sig, err := ecdsa.SignASN1(rand.Reader, p.key, sd.payload())
	if err != nil {
		return nil, err
	}
	sd.Signature = sig
	return sd, nil
}

// TrustAnchor endorses participant keys (the federation's root of trust).
type TrustAnchor struct {
	Name string
	key  *ecdsa.PrivateKey
}

// NewTrustAnchor creates a federation trust anchor.
func NewTrustAnchor(name string, rng io.Reader) (*TrustAnchor, error) {
	if rng == nil {
		rng = rand.Reader
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, err
	}
	return &TrustAnchor{Name: name, key: key}, nil
}

// Endorse signs the participant's public key, chaining it to the anchor.
func (a *TrustAnchor) Endorse(p *Participant) error {
	digest := sha256.Sum256(append([]byte(p.Name+"|"), p.PublicKey()...))
	sig, err := ecdsa.SignASN1(rand.Reader, a.key, digest[:])
	if err != nil {
		return err
	}
	p.endorsement = sig
	p.anchor = a.Name
	return nil
}

func (a *TrustAnchor) publicKey() *ecdsa.PublicKey { return &a.key.PublicKey }

// ComplianceService verifies self-descriptions against the federation's
// trust anchors — the Gaia-X compliance role.
type ComplianceService struct {
	mu           sync.Mutex
	anchors      map[string]*ecdsa.PublicKey
	participants map[string]*participantRecord
}

type participantRecord struct {
	pub         []byte
	endorsement []byte
	anchor      string
}

// NewComplianceService returns an empty federation.
func NewComplianceService() *ComplianceService {
	return &ComplianceService{
		anchors:      map[string]*ecdsa.PublicKey{},
		participants: map[string]*participantRecord{},
	}
}

// AddAnchor registers a trust anchor.
func (c *ComplianceService) AddAnchor(a *TrustAnchor) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.anchors[a.Name] = a.publicKey()
}

// Register records an endorsed participant. Unendorsed participants are
// rejected.
func (c *ComplianceService) Register(p *Participant) error {
	if p.endorsement == nil {
		return fmt.Errorf("security: participant %s has no anchor endorsement", p.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.participants[p.Name] = &participantRecord{
		pub: p.PublicKey(), endorsement: p.endorsement, anchor: p.anchor,
	}
	return nil
}

// Verify checks the full chain: issuer registered, issuer key endorsed
// by a known anchor, signature valid, mandatory claims present.
func (c *ComplianceService) Verify(sd *SelfDescription) error {
	c.mu.Lock()
	rec := c.participants[sd.Issuer]
	var anchorKey *ecdsa.PublicKey
	if rec != nil {
		anchorKey = c.anchors[rec.anchor]
	}
	c.mu.Unlock()
	if rec == nil {
		return fmt.Errorf("security: issuer %q not registered with the federation", sd.Issuer)
	}
	if anchorKey == nil {
		return fmt.Errorf("security: issuer %q endorsed by unknown anchor %q", sd.Issuer, rec.anchor)
	}
	// 1. Anchor endorsement of the issuer key.
	digest := sha256.Sum256(append([]byte(sd.Issuer+"|"), rec.pub...))
	if !ecdsa.VerifyASN1(anchorKey, digest[:], rec.endorsement) {
		return fmt.Errorf("security: endorsement of %q does not verify", sd.Issuer)
	}
	// 2. Issuer signature over the self-description.
	x, y := elliptic.UnmarshalCompressed(elliptic.P256(), rec.pub)
	if x == nil {
		return fmt.Errorf("security: issuer %q has a malformed key", sd.Issuer)
	}
	pub := &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
	if !ecdsa.VerifyASN1(pub, sd.payload(), sd.Signature) {
		return fmt.Errorf("security: self-description signature of %q does not verify", sd.Subject)
	}
	// 3. Mandatory attributes.
	for _, k := range mandatoryClaims {
		if sd.Claims[k] == "" {
			return fmt.Errorf("security: self-description of %q missing mandatory claim %q", sd.Subject, k)
		}
	}
	return nil
}

// Compliant is the boolean convenience over Verify.
func (c *ComplianceService) Compliant(sd *SelfDescription) bool { return c.Verify(sd) == nil }

// MarshalSelfDescription serializes a self-description for exchange.
func MarshalSelfDescription(sd *SelfDescription) ([]byte, error) { return json.Marshal(sd) }

// UnmarshalSelfDescription parses a serialized self-description.
func UnmarshalSelfDescription(data []byte) (*SelfDescription, error) {
	var sd SelfDescription
	if err := json.Unmarshal(data, &sd); err != nil {
		return nil, err
	}
	return &sd, nil
}
