// Package security implements the MYRTUS Security & Privacy and Trust &
// Reputation building blocks: the three security levels of Table II as
// runnable cipher suites, plus the runtime trust/reputation scoring the
// paper envisions ("trust-related KPIs to implement trust and reputation
// schemes at runtime").
//
// Primitive provenance:
//
//   - AES-GCM, SHA-256/512, RSA, ECDSA, ECDH come from the Go standard
//     library (real, production cryptography);
//   - ASCON-128 AEAD and ASCON-Hash (the NIST lightweight-cryptography
//     winner Table II selects for the Low level) are implemented here from
//     the specification;
//   - the PQC primitives of the High level (CRYSTALS-Kyber/Dilithium in
//     the paper) are substituted by a Regev-style LWE KEM and Lamport
//     one-time signatures — genuinely post-quantum constructions that are
//     implementable without external dependencies and preserve the cost
//     shape Table II implies (larger keys/signatures, heavier arithmetic).
//     They are simulation-grade: parameterized for the experiments, not
//     for production use. See DESIGN.md.
package security

import (
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"math/bits"
)

// ASCON-128 parameters (NIST LWC): 128-bit key/nonce/tag, 64-bit rate,
// 12 initialization/finalization rounds, 6 processing rounds.
const (
	AsconKeySize   = 16
	AsconNonceSize = 16
	AsconTagSize   = 16
)

const (
	asconAEADIV = 0x80400c0600000000
	asconHashIV = 0x00400c0000000100
)

type asconState [5]uint64

func (s *asconState) round(c uint64) {
	x0, x1, x2, x3, x4 := s[0], s[1], s[2], s[3], s[4]
	// Addition of round constant.
	x2 ^= c
	// Substitution layer (bitsliced 5-bit S-box).
	x0 ^= x4
	x4 ^= x3
	x2 ^= x1
	t0 := ^x0 & x1
	t1 := ^x1 & x2
	t2 := ^x2 & x3
	t3 := ^x3 & x4
	t4 := ^x4 & x0
	x0 ^= t1
	x1 ^= t2
	x2 ^= t3
	x3 ^= t4
	x4 ^= t0
	x1 ^= x0
	x0 ^= x4
	x3 ^= x2
	x2 = ^x2
	// Linear diffusion layer.
	x0 ^= bits.RotateLeft64(x0, -19) ^ bits.RotateLeft64(x0, -28)
	x1 ^= bits.RotateLeft64(x1, -61) ^ bits.RotateLeft64(x1, -39)
	x2 ^= bits.RotateLeft64(x2, -1) ^ bits.RotateLeft64(x2, -6)
	x3 ^= bits.RotateLeft64(x3, -10) ^ bits.RotateLeft64(x3, -17)
	x4 ^= bits.RotateLeft64(x4, -7) ^ bits.RotateLeft64(x4, -41)
	s[0], s[1], s[2], s[3], s[4] = x0, x1, x2, x3, x4
}

var asconRC = [12]uint64{0xf0, 0xe1, 0xd2, 0xc3, 0xb4, 0xa5, 0x96, 0x87, 0x78, 0x69, 0x5a, 0x4b}

// permute applies rounds of the ASCON permutation (rounds ∈ {6, 8, 12}).
func (s *asconState) permute(rounds int) {
	for _, c := range asconRC[12-rounds:] {
		s.round(c)
	}
}

// AsconEncrypt seals plaintext with associated data under key/nonce and
// returns ciphertext||tag.
func AsconEncrypt(key, nonce, ad, plaintext []byte) ([]byte, error) {
	if len(key) != AsconKeySize {
		return nil, errors.New("security: ascon key must be 16 bytes")
	}
	if len(nonce) != AsconNonceSize {
		return nil, errors.New("security: ascon nonce must be 16 bytes")
	}
	k0 := binary.BigEndian.Uint64(key[0:8])
	k1 := binary.BigEndian.Uint64(key[8:16])
	s := asconInit(k0, k1, nonce)
	asconAbsorbAD(&s, ad)

	out := make([]byte, 0, len(plaintext)+AsconTagSize)
	// Full plaintext blocks.
	pt := plaintext
	for len(pt) >= 8 {
		s[0] ^= binary.BigEndian.Uint64(pt[:8])
		var cb [8]byte
		binary.BigEndian.PutUint64(cb[:], s[0])
		out = append(out, cb[:]...)
		s.permute(6)
		pt = pt[8:]
	}
	// Final (partial) block with 10* padding.
	var last [8]byte
	copy(last[:], pt)
	last[len(pt)] = 0x80
	s[0] ^= binary.BigEndian.Uint64(last[:])
	var cb [8]byte
	binary.BigEndian.PutUint64(cb[:], s[0])
	out = append(out, cb[:len(pt)]...)

	// Finalization.
	s[1] ^= k0
	s[2] ^= k1
	s.permute(12)
	var tag [16]byte
	binary.BigEndian.PutUint64(tag[0:8], s[3]^k0)
	binary.BigEndian.PutUint64(tag[8:16], s[4]^k1)
	return append(out, tag[:]...), nil
}

// AsconDecrypt opens ciphertext||tag; it returns an error on any
// authentication failure.
func AsconDecrypt(key, nonce, ad, sealed []byte) ([]byte, error) {
	if len(key) != AsconKeySize {
		return nil, errors.New("security: ascon key must be 16 bytes")
	}
	if len(nonce) != AsconNonceSize {
		return nil, errors.New("security: ascon nonce must be 16 bytes")
	}
	if len(sealed) < AsconTagSize {
		return nil, errors.New("security: ascon ciphertext shorter than tag")
	}
	ct := sealed[:len(sealed)-AsconTagSize]
	wantTag := sealed[len(sealed)-AsconTagSize:]
	k0 := binary.BigEndian.Uint64(key[0:8])
	k1 := binary.BigEndian.Uint64(key[8:16])
	s := asconInit(k0, k1, nonce)
	asconAbsorbAD(&s, ad)

	out := make([]byte, 0, len(ct))
	for len(ct) >= 8 {
		c := binary.BigEndian.Uint64(ct[:8])
		var pb [8]byte
		binary.BigEndian.PutUint64(pb[:], s[0]^c)
		out = append(out, pb[:]...)
		s[0] = c
		s.permute(6)
		ct = ct[8:]
	}
	// Final partial block.
	l := len(ct)
	var cb [8]byte
	binary.BigEndian.PutUint64(cb[:], s[0])
	for i := 0; i < l; i++ {
		p := ct[i] ^ cb[i]
		out = append(out, p)
		cb[i] = ct[i]
	}
	cb[l] ^= 0x80
	s[0] = binary.BigEndian.Uint64(cb[:])

	s[1] ^= k0
	s[2] ^= k1
	s.permute(12)
	var tag [16]byte
	binary.BigEndian.PutUint64(tag[0:8], s[3]^k0)
	binary.BigEndian.PutUint64(tag[8:16], s[4]^k1)
	if subtle.ConstantTimeCompare(tag[:], wantTag) != 1 {
		return nil, errors.New("security: ascon authentication failed")
	}
	return out, nil
}

func asconInit(k0, k1 uint64, nonce []byte) asconState {
	var s asconState
	s[0] = asconAEADIV
	s[1] = k0
	s[2] = k1
	s[3] = binary.BigEndian.Uint64(nonce[0:8])
	s[4] = binary.BigEndian.Uint64(nonce[8:16])
	s.permute(12)
	s[3] ^= k0
	s[4] ^= k1
	return s
}

func asconAbsorbAD(s *asconState, ad []byte) {
	if len(ad) > 0 {
		for len(ad) >= 8 {
			s[0] ^= binary.BigEndian.Uint64(ad[:8])
			s.permute(6)
			ad = ad[8:]
		}
		var last [8]byte
		copy(last[:], ad)
		last[len(ad)] = 0x80
		s[0] ^= binary.BigEndian.Uint64(last[:])
		s.permute(6)
	}
	s[4] ^= 1 // domain separation
}

// AsconHashSize is the ASCON-Hash digest length.
const AsconHashSize = 32

// AsconHash computes the 256-bit ASCON-Hash digest of msg.
func AsconHash(msg []byte) [AsconHashSize]byte {
	var s asconState
	s[0] = asconHashIV
	s.permute(12)
	for len(msg) >= 8 {
		s[0] ^= binary.BigEndian.Uint64(msg[:8])
		s.permute(12)
		msg = msg[8:]
	}
	var last [8]byte
	copy(last[:], msg)
	last[len(msg)] = 0x80
	s[0] ^= binary.BigEndian.Uint64(last[:])
	s.permute(12)

	var out [AsconHashSize]byte
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint64(out[i*8:], s[0])
		if i < 3 {
			s.permute(12)
		}
	}
	return out
}
