package security

import (
	"bytes"
	"testing"
	"testing/quick"
)

// detReader is a deterministic io.Reader for reproducible key material.
type detReader struct{ state uint64 }

func (d *detReader) Read(p []byte) (int, error) {
	for i := range p {
		d.state = d.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(d.state >> 56)
	}
	return len(p), nil
}

func asconKeyNonce() (key, nonce []byte) {
	key = bytes.Repeat([]byte{0x42}, 16)
	nonce = bytes.Repeat([]byte{0x17}, 16)
	return
}

func TestAsconRoundTrip(t *testing.T) {
	key, nonce := asconKeyNonce()
	for _, n := range []int{0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 100, 1000} {
		pt := make([]byte, n)
		for i := range pt {
			pt[i] = byte(i)
		}
		ad := []byte("associated")
		ct, err := AsconEncrypt(key, nonce, ad, pt)
		if err != nil {
			t.Fatal(err)
		}
		if len(ct) != n+AsconTagSize {
			t.Fatalf("len(ct) = %d, want %d", len(ct), n+AsconTagSize)
		}
		got, err := AsconDecrypt(key, nonce, ad, ct)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("n=%d: round-trip mismatch", n)
		}
	}
}

func TestAsconEmptyADAndEmptyPT(t *testing.T) {
	key, nonce := asconKeyNonce()
	ct, err := AsconEncrypt(key, nonce, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ct) != AsconTagSize {
		t.Fatalf("empty pt ct length = %d", len(ct))
	}
	if _, err := AsconDecrypt(key, nonce, nil, ct); err != nil {
		t.Fatal(err)
	}
}

func TestAsconTamperDetection(t *testing.T) {
	key, nonce := asconKeyNonce()
	pt := []byte("the continuum of computing resources")
	ad := []byte("hdr")
	ct, _ := AsconEncrypt(key, nonce, ad, pt)
	for _, i := range []int{0, len(pt) / 2, len(ct) - 1} {
		bad := append([]byte(nil), ct...)
		bad[i] ^= 0x01
		if _, err := AsconDecrypt(key, nonce, ad, bad); err == nil {
			t.Fatalf("tamper at byte %d undetected", i)
		}
	}
	// Wrong AD.
	if _, err := AsconDecrypt(key, nonce, []byte("other"), ct); err == nil {
		t.Fatal("wrong AD undetected")
	}
	// Wrong key.
	k2 := append([]byte(nil), key...)
	k2[0] ^= 1
	if _, err := AsconDecrypt(k2, nonce, ad, ct); err == nil {
		t.Fatal("wrong key undetected")
	}
	// Wrong nonce.
	n2 := append([]byte(nil), nonce...)
	n2[0] ^= 1
	if _, err := AsconDecrypt(key, n2, ad, ct); err == nil {
		t.Fatal("wrong nonce undetected")
	}
}

func TestAsconInputValidation(t *testing.T) {
	if _, err := AsconEncrypt([]byte("short"), make([]byte, 16), nil, nil); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := AsconEncrypt(make([]byte, 16), []byte("short"), nil, nil); err == nil {
		t.Fatal("short nonce accepted")
	}
	if _, err := AsconDecrypt([]byte("short"), make([]byte, 16), nil, make([]byte, 16)); err == nil {
		t.Fatal("short key accepted")
	}
	if _, err := AsconDecrypt(make([]byte, 16), []byte("x"), nil, make([]byte, 16)); err == nil {
		t.Fatal("short nonce accepted")
	}
	if _, err := AsconDecrypt(make([]byte, 16), make([]byte, 16), nil, []byte("tiny")); err == nil {
		t.Fatal("short ciphertext accepted")
	}
}

func TestAsconNonceChangesCiphertext(t *testing.T) {
	key, nonce := asconKeyNonce()
	pt := []byte("same plaintext")
	ct1, _ := AsconEncrypt(key, nonce, nil, pt)
	n2 := append([]byte(nil), nonce...)
	n2[15] ^= 1
	ct2, _ := AsconEncrypt(key, n2, nil, pt)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("nonce did not change ciphertext")
	}
}

func TestAsconRoundTripProperty(t *testing.T) {
	key, nonce := asconKeyNonce()
	if err := quick.Check(func(pt, ad []byte) bool {
		ct, err := AsconEncrypt(key, nonce, ad, pt)
		if err != nil {
			return false
		}
		got, err := AsconDecrypt(key, nonce, ad, ct)
		return err == nil && bytes.Equal(got, pt)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAsconHash(t *testing.T) {
	h1 := AsconHash([]byte("abc"))
	h2 := AsconHash([]byte("abc"))
	if h1 != h2 {
		t.Fatal("hash not deterministic")
	}
	h3 := AsconHash([]byte("abd"))
	if h1 == h3 {
		t.Fatal("collision on trivially different input")
	}
	// Avalanche: flipping one input bit flips ~half the output bits.
	diff := 0
	for i := range h1 {
		x := h1[i] ^ h3[i]
		for x != 0 {
			diff += int(x & 1)
			x >>= 1
		}
	}
	if diff < 80 || diff > 176 {
		t.Fatalf("avalanche weak: %d/256 bits differ", diff)
	}
	// Length-extension resistance shape: empty and 8-byte boundary inputs.
	if AsconHash(nil) == AsconHash(make([]byte, 8)) {
		t.Fatal("padding ambiguity")
	}
}

func TestLamportSignVerify(t *testing.T) {
	k, err := GenerateLamportKey(&detReader{1})
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("deploy request")
	sig, err := k.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	pub := k.PublicKey()
	if !pub.Verify(msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if pub.Verify([]byte("other"), sig) {
		t.Fatal("forged message accepted")
	}
	bad := append([]byte(nil), sig...)
	bad[100] ^= 1
	if pub.Verify(msg, bad) {
		t.Fatal("tampered signature accepted")
	}
	if pub.Verify(msg, sig[:64]) {
		t.Fatal("truncated signature accepted")
	}
	// One-time property.
	if _, err := k.Sign(msg); err == nil {
		t.Fatal("double signing allowed")
	}
}

func TestLamportSerialization(t *testing.T) {
	k, _ := GenerateLamportKey(&detReader{2})
	data := k.PublicKey().Bytes()
	if len(data) != 2*256*32 {
		t.Fatalf("pub key size = %d", len(data))
	}
	p, err := ParseLamportPublicKey(data)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	sig, _ := k.Sign(msg)
	if !p.Verify(msg, sig) {
		t.Fatal("parsed key rejects valid signature")
	}
	if _, err := ParseLamportPublicKey(data[:100]); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestLWEKEMRoundTrip(t *testing.T) {
	k, err := GenerateLWEKey(&detReader{3})
	if err != nil {
		t.Fatal(err)
	}
	ct, shared, err := k.PublicKey().Encapsulate(&detReader{4})
	if err != nil {
		t.Fatal(err)
	}
	if len(shared) != SharedSecretSize {
		t.Fatalf("shared size = %d", len(shared))
	}
	got, err := k.Decapsulate(ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shared) {
		t.Fatal("KEM round-trip mismatch")
	}
	if _, err := k.Decapsulate(ct[:100]); err == nil {
		t.Fatal("short ciphertext accepted")
	}
}

func TestLWEKEMRepeatedCorrectness(t *testing.T) {
	// Error accumulation must never flip a bit: run several encaps.
	k, _ := GenerateLWEKey(&detReader{5})
	for i := uint64(0); i < 5; i++ {
		ct, shared, err := k.PublicKey().Encapsulate(&detReader{100 + i})
		if err != nil {
			t.Fatal(err)
		}
		got, err := k.Decapsulate(ct)
		if err != nil || !bytes.Equal(got, shared) {
			t.Fatalf("iteration %d failed", i)
		}
	}
}

func TestLWESerialization(t *testing.T) {
	k, _ := GenerateLWEKey(&detReader{6})
	data := serializeLWEPub(k.PublicKey())
	p, err := parseLWEPub(data)
	if err != nil {
		t.Fatal(err)
	}
	ct, shared, _ := p.Encapsulate(&detReader{7})
	got, _ := k.Decapsulate(ct)
	if !bytes.Equal(got, shared) {
		t.Fatal("serialized key round-trip failed")
	}
	if _, err := parseLWEPub(data[:10]); err == nil {
		t.Fatal("short key accepted")
	}
}

func TestLevelOrdering(t *testing.T) {
	if !(LevelHigh.Rank() > LevelMedium.Rank() && LevelMedium.Rank() > LevelLow.Rank()) {
		t.Fatal("rank ordering")
	}
	if !LevelHigh.Satisfies(LevelLow) || LevelLow.Satisfies(LevelHigh) {
		t.Fatal("Satisfies")
	}
	if !LevelLow.Satisfies("") {
		t.Fatal("empty requirement")
	}
	if Level("bogus").Rank() != 0 {
		t.Fatal("bogus level rank")
	}
	if len(Levels()) != 3 {
		t.Fatal("Levels")
	}
}

func TestSuiteForAndTableII(t *testing.T) {
	for _, l := range Levels() {
		s, err := SuiteFor(l)
		if err != nil {
			t.Fatal(err)
		}
		if s.Level() != l {
			t.Fatalf("level = %v", s.Level())
		}
	}
	if _, err := SuiteFor("bogus"); err == nil {
		t.Fatal("bogus suite")
	}
	rows := TableII()
	if len(rows) != 3 || rows[0].Level != LevelHigh || rows[2].Level != LevelLow {
		t.Fatalf("TableII = %+v", rows)
	}
	// The table's qualitative claims.
	if rows[0].Encryption != "AES-256-GCM" || rows[1].Encryption != "AES-128-GCM" || rows[2].Encryption != "ASCON-128" {
		t.Fatal("encryption column")
	}
}

func TestSuiteAEADAllLevels(t *testing.T) {
	for _, l := range Levels() {
		s, _ := SuiteFor(l)
		key := make([]byte, s.KeySize())
		nonce := make([]byte, s.NonceSize())
		(&detReader{8}).Read(key)   //nolint:errcheck
		(&detReader{9}).Read(nonce) //nolint:errcheck
		pt := []byte("continuum payload")
		ad := []byte("meta")
		ct, err := s.Seal(key, nonce, ad, pt)
		if err != nil {
			t.Fatalf("%s seal: %v", l, err)
		}
		got, err := s.Open(key, nonce, ad, ct)
		if err != nil || !bytes.Equal(got, pt) {
			t.Fatalf("%s open: %v", l, err)
		}
		ct[0] ^= 1
		if _, err := s.Open(key, nonce, ad, ct); err == nil {
			t.Fatalf("%s tamper undetected", l)
		}
		if len(s.Hash([]byte("x"))) < 32 {
			t.Fatalf("%s hash too short", l)
		}
	}
}

func TestSuiteSignAllLevels(t *testing.T) {
	for _, l := range Levels() {
		s, _ := SuiteFor(l)
		signer, err := s.NewSigner(&detReader{10})
		if err != nil {
			t.Fatalf("%s signer: %v", l, err)
		}
		msg := []byte("orchestrate")
		sig, err := signer.Sign(msg)
		if err != nil {
			t.Fatalf("%s sign: %v", l, err)
		}
		if !s.Verify(signer.PublicKey(), msg, sig) {
			t.Fatalf("%s valid signature rejected", l)
		}
		if s.Verify(signer.PublicKey(), []byte("forged"), sig) {
			t.Fatalf("%s forgery accepted", l)
		}
		if signer.Algorithm() == "" {
			t.Fatalf("%s empty algorithm", l)
		}
	}
}

func TestSuiteKEMAllLevels(t *testing.T) {
	for _, l := range Levels() {
		s, _ := SuiteFor(l)
		decap, pub, err := s.NewKEM(&detReader{11})
		if err != nil {
			t.Fatalf("%s kem gen: %v", l, err)
		}
		ct, shared, err := s.Encapsulate(pub, &detReader{12})
		if err != nil {
			t.Fatalf("%s encap: %v", l, err)
		}
		got, err := decap(ct)
		if err != nil {
			t.Fatalf("%s decap: %v", l, err)
		}
		if !bytes.Equal(got, shared) {
			t.Fatalf("%s shared secret mismatch", l)
		}
	}
}

func TestHighLevelHasPQCSizeShape(t *testing.T) {
	high, _ := SuiteFor(LevelHigh)
	low, _ := SuiteFor(LevelLow)
	hs, _ := high.NewSigner(&detReader{13})
	ls, _ := low.NewSigner(&detReader{14})
	if len(hs.PublicKey()) <= len(ls.PublicKey())*10 {
		t.Fatalf("PQC keys should dwarf ECC keys: %d vs %d", len(hs.PublicKey()), len(ls.PublicKey()))
	}
	_, hpub, _ := high.NewKEM(&detReader{15})
	_, lpub, _ := low.NewKEM(&detReader{16})
	if len(hpub) <= len(lpub)*10 {
		t.Fatalf("PQC KEM keys should dwarf ECDH: %d vs %d", len(hpub), len(lpub))
	}
}

func TestTrustEngine(t *testing.T) {
	if _, err := NewTrustEngine(0); err == nil {
		t.Fatal("decay 0 accepted")
	}
	if _, err := NewTrustEngine(1.5); err == nil {
		t.Fatal("decay >1 accepted")
	}
	te, err := NewTrustEngine(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := te.Trust("a", "b"); got != 0.5 {
		t.Fatalf("neutral trust = %v", got)
	}
	if got := te.Reputation("b"); got != 0.5 {
		t.Fatalf("neutral reputation = %v", got)
	}
	for i := 0; i < 10; i++ {
		te.Observe("a", "good", true)
		te.Observe("a", "bad", false)
	}
	if tg := te.Trust("a", "good"); tg < 0.85 {
		t.Fatalf("good trust = %v", tg)
	}
	if tb := te.Trust("a", "bad"); tb > 0.15 {
		t.Fatalf("bad trust = %v", tb)
	}
	if !te.Trusted("good", 0.8) || te.Trusted("bad", 0.5) {
		t.Fatal("Trusted thresholds")
	}
	subs := te.Subjects()
	if len(subs) != 2 || subs[0] != "bad" {
		t.Fatalf("Subjects = %v", subs)
	}
}

func TestTrustBoundsProperty(t *testing.T) {
	if err := quick.Check(func(outcomes []bool) bool {
		te, _ := NewTrustEngine(0.95)
		for _, o := range outcomes {
			te.Observe("r", "s", o)
		}
		tr := te.Trust("r", "s")
		rep := te.Reputation("s")
		return tr >= 0 && tr <= 1 && rep >= 0 && rep <= 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTrustDecayForgets(t *testing.T) {
	te, _ := NewTrustEngine(0.5)
	for i := 0; i < 20; i++ {
		te.Observe("r", "s", false)
	}
	// A streak of successes should overcome old failures quickly.
	for i := 0; i < 20; i++ {
		te.Observe("r", "s", true)
	}
	if tr := te.Trust("r", "s"); tr < 0.7 {
		t.Fatalf("decayed trust = %v, old failures dominating", tr)
	}
}

func TestTrustReputationAggregation(t *testing.T) {
	te, _ := NewTrustEngine(1)
	// Heavy-evidence rater says good; light-evidence rater says bad.
	for i := 0; i < 30; i++ {
		te.Observe("heavy", "s", true)
	}
	te.Observe("light", "s", false)
	if rep := te.Reputation("s"); rep < 0.7 {
		t.Fatalf("reputation = %v, evidence weighting broken", rep)
	}
	if te.Confidence("s") < 0.7 {
		t.Fatalf("confidence = %v", te.Confidence("s"))
	}
	if te.Confidence("ghost") != 0 {
		t.Fatal("ghost confidence")
	}
	// Disagreement raises entropy.
	if te.Entropy("s") <= 0 {
		t.Fatal("entropy should be positive with disagreeing raters")
	}
	if te.Entropy("ghost") != 0 {
		t.Fatal("ghost entropy")
	}
}
