package security

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/sha512"
	"fmt"
	"io"
	"sort"
)

// Level is one of the Table II security levels.
type Level string

// The three MYRTUS security levels.
const (
	LevelHigh   Level = "high"   // PQC resistant
	LevelMedium Level = "medium" // non-PQC but suitable for current threats
	LevelLow    Level = "low"    // lightweight, for constrained components
)

// Levels lists all levels strongest-first.
func Levels() []Level { return []Level{LevelHigh, LevelMedium, LevelLow} }

// Rank orders levels: higher rank = stronger.
func (l Level) Rank() int {
	switch l {
	case LevelHigh:
		return 3
	case LevelMedium:
		return 2
	case LevelLow:
		return 1
	default:
		return 0
	}
}

// Satisfies reports whether level l meets requirement req (stronger
// levels satisfy weaker requirements).
func (l Level) Satisfies(req Level) bool {
	if req == "" {
		return true
	}
	return l.Rank() >= req.Rank()
}

// Info describes a suite for Table II rendering.
type Info struct {
	Level          Level
	Encryption     string
	Authentication string
	KeyExchange    string
	Hashing        string
}

// Signer produces signatures.
type Signer interface {
	Sign(msg []byte) ([]byte, error)
	PublicKey() []byte
	Algorithm() string
}

// Suite is one runnable security level: AEAD + signature + KEM + hash.
type Suite struct {
	info    Info
	keySize int

	seal   func(key, nonce, ad, pt []byte) ([]byte, error)
	open   func(key, nonce, ad, ct []byte) ([]byte, error)
	hash   func(msg []byte) []byte
	signer func(rng io.Reader) (Signer, error)
	verify func(pub, msg, sig []byte) bool
	// kemGen returns (decapsulate, publicKey).
	kemGen func(rng io.Reader) (func(ct []byte) ([]byte, error), []byte, error)
	encap  func(pub []byte, rng io.Reader) (ct, shared []byte, err error)
}

// Info returns the Table II row for the suite.
func (s *Suite) Info() Info { return s.info }

// Level returns the suite's level.
func (s *Suite) Level() Level { return s.info.Level }

// KeySize returns the AEAD key length in bytes.
func (s *Suite) KeySize() int { return s.keySize }

// NonceSize returns the AEAD nonce length in bytes.
func (s *Suite) NonceSize() int {
	if s.info.Level == LevelLow {
		return AsconNonceSize
	}
	return 12 // GCM standard nonce
}

// Seal encrypts-and-authenticates plaintext.
func (s *Suite) Seal(key, nonce, ad, plaintext []byte) ([]byte, error) {
	return s.seal(key, nonce, ad, plaintext)
}

// Open verifies-and-decrypts sealed data.
func (s *Suite) Open(key, nonce, ad, sealed []byte) ([]byte, error) {
	return s.open(key, nonce, ad, sealed)
}

// Hash digests msg with the suite's hash.
func (s *Suite) Hash(msg []byte) []byte { return s.hash(msg) }

// NewSigner creates a signing key (rng nil = crypto/rand).
func (s *Suite) NewSigner(rng io.Reader) (Signer, error) { return s.signer(rng) }

// Verify checks a signature against a serialized public key.
func (s *Suite) Verify(pub, msg, sig []byte) bool { return s.verify(pub, msg, sig) }

// NewKEM creates a decapsulation key; it returns the decapsulate closure
// and the serialized public key.
func (s *Suite) NewKEM(rng io.Reader) (func(ct []byte) ([]byte, error), []byte, error) {
	return s.kemGen(rng)
}

// Encapsulate derives a shared secret for a serialized KEM public key.
func (s *Suite) Encapsulate(pub []byte, rng io.Reader) (ct, shared []byte, err error) {
	return s.encap(pub, rng)
}

func gcmSeal(key, nonce, ad, pt []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	g, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return g.Seal(nil, nonce, pt, ad), nil
}

func gcmOpen(key, nonce, ad, ct []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	g, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return g.Open(nil, nonce, ct, ad)
}

type lamportSigner struct{ key *LamportPrivateKey }

func (l *lamportSigner) Sign(msg []byte) ([]byte, error) { return l.key.Sign(msg) }
func (l *lamportSigner) PublicKey() []byte               { return l.key.PublicKey().Bytes() }
func (l *lamportSigner) Algorithm() string               { return "Lamport-OTS" }

type ecdsaSigner struct{ key *ecdsa.PrivateKey }

func (e *ecdsaSigner) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	return ecdsa.SignASN1(rand.Reader, e.key, digest[:])
}
func (e *ecdsaSigner) PublicKey() []byte {
	return elliptic.MarshalCompressed(elliptic.P256(), e.key.X, e.key.Y)
}
func (e *ecdsaSigner) Algorithm() string { return "ECDSA-P256" }

type rsaSigner struct{ key *rsa.PrivateKey }

func (r *rsaSigner) Sign(msg []byte) ([]byte, error) {
	digest := sha256.Sum256(msg)
	return rsa.SignPKCS1v15(rand.Reader, r.key, 0, digest[:])
}
func (r *rsaSigner) PublicKey() []byte {
	return r.key.PublicKey.N.Bytes() // modulus; e fixed at 65537
}
func (r *rsaSigner) Algorithm() string { return "RSA-2048" }

var suites = map[Level]*Suite{}

func init() {
	suites[LevelHigh] = &Suite{
		info: Info{
			Level:          LevelHigh,
			Encryption:     "AES-256-GCM",
			Authentication: "Lamport-OTS (for CRYSTALS-Dilithium/FALCON)",
			KeyExchange:    "Regev-LWE KEM (for CRYSTALS-KYBER)",
			Hashing:        "SHA-512",
		},
		keySize: 32,
		seal:    gcmSeal,
		open:    gcmOpen,
		hash:    func(m []byte) []byte { d := sha512.Sum512(m); return d[:] },
		signer: func(rng io.Reader) (Signer, error) {
			k, err := GenerateLamportKey(rng)
			if err != nil {
				return nil, err
			}
			return &lamportSigner{key: k}, nil
		},
		verify: func(pub, msg, sig []byte) bool {
			p, err := ParseLamportPublicKey(pub)
			if err != nil {
				return false
			}
			return p.Verify(msg, sig)
		},
		kemGen: func(rng io.Reader) (func([]byte) ([]byte, error), []byte, error) {
			k, err := GenerateLWEKey(rng)
			if err != nil {
				return nil, nil, err
			}
			return k.Decapsulate, serializeLWEPub(k.PublicKey()), nil
		},
		encap: func(pub []byte, rng io.Reader) ([]byte, []byte, error) {
			p, err := parseLWEPub(pub)
			if err != nil {
				return nil, nil, err
			}
			return p.Encapsulate(rng)
		},
	}

	suites[LevelMedium] = &Suite{
		info: Info{
			Level:          LevelMedium,
			Encryption:     "AES-128-GCM",
			Authentication: "RSA-2048 / ECDSA-P256",
			KeyExchange:    "RSA-2048-OAEP",
			Hashing:        "SHA-256",
		},
		keySize: 16,
		seal:    gcmSeal,
		open:    gcmOpen,
		hash:    func(m []byte) []byte { d := sha256.Sum256(m); return d[:] },
		signer: func(rng io.Reader) (Signer, error) {
			if rng == nil {
				rng = rand.Reader
			}
			k, err := rsa.GenerateKey(rng, 2048)
			if err != nil {
				return nil, err
			}
			return &rsaSigner{key: k}, nil
		},
		verify: func(pub, msg, sig []byte) bool {
			k, err := parseRSAPub(pub)
			if err != nil {
				return false
			}
			digest := sha256.Sum256(msg)
			return rsa.VerifyPKCS1v15(k, 0, digest[:], sig) == nil
		},
		kemGen: func(rng io.Reader) (func([]byte) ([]byte, error), []byte, error) {
			if rng == nil {
				rng = rand.Reader
			}
			k, err := rsa.GenerateKey(rng, 2048)
			if err != nil {
				return nil, nil, err
			}
			decap := func(ct []byte) ([]byte, error) {
				return rsa.DecryptOAEP(sha256.New(), nil, k, ct, nil)
			}
			return decap, k.PublicKey.N.Bytes(), nil
		},
		encap: func(pub []byte, rng io.Reader) ([]byte, []byte, error) {
			if rng == nil {
				rng = rand.Reader
			}
			k, err := parseRSAPub(pub)
			if err != nil {
				return nil, nil, err
			}
			shared := make([]byte, 32)
			if _, err := io.ReadFull(rng, shared); err != nil {
				return nil, nil, err
			}
			ct, err := rsa.EncryptOAEP(sha256.New(), rng, k, shared, nil)
			if err != nil {
				return nil, nil, err
			}
			return ct, shared, nil
		},
	}

	suites[LevelLow] = &Suite{
		info: Info{
			Level:          LevelLow,
			Encryption:     "ASCON-128",
			Authentication: "ECDSA-P256",
			KeyExchange:    "ECDH-P256",
			Hashing:        "ASCON-Hash",
		},
		keySize: AsconKeySize,
		seal:    AsconEncrypt,
		open:    AsconDecrypt,
		hash:    func(m []byte) []byte { d := AsconHash(m); return d[:] },
		signer: func(rng io.Reader) (Signer, error) {
			if rng == nil {
				rng = rand.Reader
			}
			k, err := ecdsa.GenerateKey(elliptic.P256(), rng)
			if err != nil {
				return nil, err
			}
			return &ecdsaSigner{key: k}, nil
		},
		verify: func(pub, msg, sig []byte) bool {
			x, y := elliptic.UnmarshalCompressed(elliptic.P256(), pub)
			if x == nil {
				return false
			}
			k := &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}
			digest := sha256.Sum256(msg)
			return ecdsa.VerifyASN1(k, digest[:], sig)
		},
		kemGen: func(rng io.Reader) (func([]byte) ([]byte, error), []byte, error) {
			if rng == nil {
				rng = rand.Reader
			}
			k, err := ecdh.P256().GenerateKey(rng)
			if err != nil {
				return nil, nil, err
			}
			decap := func(ct []byte) ([]byte, error) {
				peer, err := ecdh.P256().NewPublicKey(ct)
				if err != nil {
					return nil, err
				}
				return k.ECDH(peer)
			}
			return decap, k.PublicKey().Bytes(), nil
		},
		encap: func(pub []byte, rng io.Reader) ([]byte, []byte, error) {
			if rng == nil {
				rng = rand.Reader
			}
			peer, err := ecdh.P256().NewPublicKey(pub)
			if err != nil {
				return nil, nil, err
			}
			eph, err := ecdh.P256().GenerateKey(rng)
			if err != nil {
				return nil, nil, err
			}
			shared, err := eph.ECDH(peer)
			if err != nil {
				return nil, nil, err
			}
			return eph.PublicKey().Bytes(), shared, nil
		},
	}
}

// SuiteFor returns the suite implementing the given level.
func SuiteFor(level Level) (*Suite, error) {
	s, ok := suites[level]
	if !ok {
		return nil, fmt.Errorf("security: unknown level %q", level)
	}
	return s, nil
}

// TableII returns all suite rows, strongest first — the regenerated
// Table II of the paper.
func TableII() []Info {
	out := make([]Info, 0, len(suites))
	for _, s := range suites {
		out = append(out, s.info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Level.Rank() > out[j].Level.Rank() })
	return out
}

func serializeLWEPub(p *LWEPublicKey) []byte {
	out := make([]byte, 0, lweM*(lweN+1)*2)
	var b [2]byte
	for r := 0; r < lweM; r++ {
		for c := 0; c < lweN; c++ {
			b[0] = byte(p.a[r][c])
			b[1] = byte(p.a[r][c] >> 8)
			out = append(out, b[0], b[1])
		}
		b[0] = byte(p.b[r])
		b[1] = byte(p.b[r] >> 8)
		out = append(out, b[0], b[1])
	}
	return out
}

func parseLWEPub(data []byte) (*LWEPublicKey, error) {
	if len(data) != lweM*(lweN+1)*2 {
		return nil, fmt.Errorf("security: bad LWE public key length %d", len(data))
	}
	p := &LWEPublicKey{}
	off := 0
	for r := 0; r < lweM; r++ {
		for c := 0; c < lweN; c++ {
			p.a[r][c] = uint16(data[off]) | uint16(data[off+1])<<8
			off += 2
		}
		p.b[r] = uint16(data[off]) | uint16(data[off+1])<<8
		off += 2
	}
	return p, nil
}

func parseRSAPub(n []byte) (*rsa.PublicKey, error) {
	if len(n) < 128 {
		return nil, fmt.Errorf("security: RSA modulus too short")
	}
	k := &rsa.PublicKey{E: 65537}
	k.N = newBigInt(n)
	return k, nil
}
