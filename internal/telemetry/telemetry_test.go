package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(2.5)
	if c.Value() != 3.5 {
		t.Fatalf("Value = %v, want 3.5", c.Value())
	}
}

func TestCounterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Counter
	c.Add(-1)
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("Value = %v, want 8000", c.Value())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("Value = %v, want 7", g.Value())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 50.5 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 49 || p50 > 52 {
		t.Fatalf("P50 = %v", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 98 || p99 > 100 {
		t.Fatalf("P99 = %v", p99)
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 100 {
		t.Fatalf("extreme quantiles wrong")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should return zeros")
	}
	if !math.IsInf(h.Min(), 1) || !math.IsInf(h.Max(), -1) {
		t.Fatal("empty Min/Max should be infinities")
	}
}

func TestHistogramReservoir(t *testing.T) {
	h := NewHistogram(16)
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i % 100))
	}
	if h.Count() != 10000 {
		t.Fatalf("Count = %d", h.Count())
	}
	// Quantiles should still be roughly uniform over [0,99].
	p50 := h.Quantile(0.5)
	if p50 < 10 || p50 > 90 {
		t.Fatalf("reservoir P50 far off: %v", p50)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	if err := quick.Check(func(vals []float64) bool {
		h := NewHistogram(0)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		last := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.95, 1} {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram(0)
	h.Observe(1)
	s := h.Snapshot().String()
	if !strings.Contains(s, "n=1") {
		t.Fatalf("Snapshot string %q", s)
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	for i := 1; i <= 5; i++ {
		w.Push(int64(i), float64(i))
	}
	pts := w.Points()
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Value != 3 || pts[2].Value != 5 {
		t.Fatalf("points = %v", pts)
	}
	if w.Len() != 3 {
		t.Fatalf("Len = %d", w.Len())
	}
}

func TestWindowMeanAndSlope(t *testing.T) {
	w := NewWindow(10)
	// value = 2*t seconds → slope 2/s.
	for i := 0; i < 10; i++ {
		w.Push(int64(i)*1e9, float64(2*i))
	}
	if got := w.Slope(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("Slope = %v, want 2", got)
	}
	if got := w.Mean(); got != 9 {
		t.Fatalf("Mean = %v, want 9", got)
	}
}

func TestWindowDegenerate(t *testing.T) {
	w := NewWindow(4)
	if w.Slope() != 0 || w.Mean() != 0 {
		t.Fatal("empty window should be zero")
	}
	w.Push(5, 1)
	if w.Slope() != 0 {
		t.Fatal("single-point slope should be 0")
	}
	w.Push(5, 3) // same timestamp → zero spread
	if w.Slope() != 0 {
		t.Fatal("zero-spread slope should be 0")
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry("edge-0")
	c1 := r.Counter(Application, "requests")
	c2 := r.Counter(Application, "requests")
	if c1 != c2 {
		t.Fatal("Counter not memoized")
	}
	g1 := r.Gauge(Infrastructure, "cpu")
	if g1 != r.Gauge(Infrastructure, "cpu") {
		t.Fatal("Gauge not memoized")
	}
	h1 := r.Histogram(Telemetry, "rtt")
	if h1 != r.Histogram(Telemetry, "rtt") {
		t.Fatal("Histogram not memoized")
	}
}

func TestRegistryExport(t *testing.T) {
	r := NewRegistry("fog-1")
	r.Counter(Application, "b-counter").Add(2)
	r.Gauge(Infrastructure, "a-gauge").Set(1)
	r.Histogram(Telemetry, "c-hist").Observe(4)
	out := r.Export()
	if len(out) != 3 {
		t.Fatalf("Export len = %d", len(out))
	}
	// Sorted by name.
	if out[0].Name != "a-gauge" || out[1].Name != "b-counter" || out[2].Name != "c-hist" {
		t.Fatalf("order wrong: %v %v %v", out[0].Name, out[1].Name, out[2].Name)
	}
	if out[2].Hist.Count != 1 {
		t.Fatal("histogram snapshot missing")
	}
	if out[0].Component != "fog-1" {
		t.Fatal("component missing")
	}
	if s, ok := r.Find("b-counter"); !ok || s.Value != 2 {
		t.Fatalf("Find = %v %v", s, ok)
	}
	if _, ok := r.Find("nope"); ok {
		t.Fatal("Find found a ghost")
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry("cloud")
	r.Counter(Application, "reqs").Inc()
	r.Histogram(Infrastructure, "lat").Observe(1)
	s := r.Render()
	if !strings.Contains(s, "component cloud") || !strings.Contains(s, "reqs") || !strings.Contains(s, "lat") {
		t.Fatalf("Render = %q", s)
	}
}

func TestClassString(t *testing.T) {
	if Application.String() != "application" || Telemetry.String() != "telemetry" || Infrastructure.String() != "infrastructure" {
		t.Fatal("class names wrong")
	}
	if Class(42).String() != "Class(42)" {
		t.Fatal("unknown class formatting")
	}
}
