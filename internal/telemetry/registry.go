package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Class identifies one of the three EU-CEI monitor classes MYRTUS adopts.
type Class int

const (
	// Application monitoring: status of the application, to identify
	// underperformance issues not related to network or devices.
	Application Class = iota
	// Telemetry monitoring: connectivity status and information loss.
	Telemetry
	// Infrastructure monitoring: status of the components themselves.
	Infrastructure
)

func (c Class) String() string {
	switch c {
	case Application:
		return "application"
	case Telemetry:
		return "telemetry"
	case Infrastructure:
		return "infrastructure"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Registry is a namespace of metrics, keyed by (class, name). A registry
// per component feeds the component's MIRTO agent; a merged export feeds
// the Knowledge Base.
type Registry struct {
	mu         sync.Mutex
	component  string
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	classes    map[string]Class
}

// NewRegistry returns an empty registry for the named component.
func NewRegistry(component string) *Registry {
	return &Registry{
		component:  component,
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		classes:    make(map[string]Class),
	}
}

// Component returns the owning component name.
func (r *Registry) Component() string { return r.component }

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(class Class, name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	r.classes[name] = class
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(class Class, name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	r.classes[name] = class
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(class Class, name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.histograms[name]; ok {
		return h
	}
	h := NewHistogram(0)
	r.histograms[name] = h
	r.classes[name] = class
	return h
}

// Sample is one exported metric value.
type Sample struct {
	Component string
	Class     Class
	Name      string
	Kind      string // "counter", "gauge", "histogram"
	Value     float64
	Hist      Snapshot // populated for histograms
}

// Export returns all metrics, sorted by name, suitable for publication to
// the Knowledge Base.
func (r *Registry) Export() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	for name, c := range r.counters {
		out = append(out, Sample{r.component, r.classes[name], name, "counter", c.Value(), Snapshot{}})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{r.component, r.classes[name], name, "gauge", g.Value(), Snapshot{}})
	}
	for name, h := range r.histograms {
		snap := h.Snapshot()
		out = append(out, Sample{r.component, r.classes[name], name, "histogram", snap.Mean, snap})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Find returns the exported sample with the given name, if present.
func (r *Registry) Find(name string) (Sample, bool) {
	for _, s := range r.Export() {
		if s.Name == name {
			return s, true
		}
	}
	return Sample{}, false
}

// Render returns a human-readable dump of the registry, one metric per
// line, for the observability reports.
func (r *Registry) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# component %s\n", r.component)
	for _, s := range r.Export() {
		switch s.Kind {
		case "histogram":
			fmt.Fprintf(&b, "%-14s %-32s %s\n", s.Class, s.Name, s.Hist)
		default:
			fmt.Fprintf(&b, "%-14s %-32s %.6g\n", s.Class, s.Name, s.Value)
		}
	}
	return b.String()
}
