// Package telemetry implements the MYRTUS Monitoring & Observability
// building block (EU-CEI): metric primitives, sliding windows, and the
// three monitor classes the paper distinguishes — application monitoring,
// telemetry (connectivity) monitoring, and infrastructure/resource
// monitoring. MIRTO agents consume these series to make decisions, and
// snapshots are published to the Knowledge Base.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Add increases the counter. Negative deltas are rejected.
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic("telemetry: negative delta on Counter")
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a value that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Histogram accumulates observations and answers quantile queries.
// It keeps exact samples up to a bound and then reservoir-samples, which
// is plenty for simulation-scale series.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	count   int64
	sum     float64
	min     float64
	max     float64
	limit   int
	rng     uint64
}

// NewHistogram returns a histogram retaining up to limit samples
// (reservoir sampling beyond that). limit ≤ 0 selects a default of 4096.
func NewHistogram(limit int) *Histogram {
	if limit <= 0 {
		limit = 4096
	}
	return &Histogram{limit: limit, min: math.Inf(1), max: math.Inf(-1), rng: 0x9e3779b97f4a7c15}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if len(h.samples) < h.limit {
		h.samples = append(h.samples, v)
		return
	}
	// Reservoir: replace a random slot with probability limit/count.
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if idx := h.rng % uint64(h.count); idx < uint64(h.limit) {
		h.samples[idx] = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean of all observations (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (+Inf when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (-Inf when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) over retained samples.
// It returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	s := make([]float64, len(h.samples))
	copy(s, h.samples)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Snapshot is a point-in-time summary of a histogram.
type Snapshot struct {
	Count int64
	Mean  float64
	Min   float64
	Max   float64
	P50   float64
	P95   float64
	P99   float64
}

// Snapshot summarizes the histogram.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Window is a fixed-capacity sliding window of (time, value) points used
// for short-horizon trend analysis (e.g. load over the last minute).
type Window struct {
	mu   sync.Mutex
	cap  int
	pts  []Point
	head int
	n    int
}

// Point is one timestamped observation.
type Point struct {
	At    int64 // virtual nanoseconds
	Value float64
}

// NewWindow returns a sliding window holding up to capacity points.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = 64
	}
	return &Window{cap: capacity, pts: make([]Point, capacity)}
}

// Push appends a point, evicting the oldest when full.
func (w *Window) Push(at int64, v float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pts[(w.head+w.n)%w.cap] = Point{At: at, Value: v}
	if w.n < w.cap {
		w.n++
	} else {
		w.head = (w.head + 1) % w.cap
	}
}

// Len reports the number of retained points.
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Points returns the retained points oldest-first.
func (w *Window) Points() []Point {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]Point, w.n)
	for i := 0; i < w.n; i++ {
		out[i] = w.pts[(w.head+i)%w.cap]
	}
	return out
}

// Mean returns the mean of retained values (0 when empty).
func (w *Window) Mean() float64 {
	pts := w.Points()
	if len(pts) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range pts {
		s += p.Value
	}
	return s / float64(len(pts))
}

// Slope returns the least-squares slope of value over time in
// units-per-second, used to detect rising load. Returns 0 with fewer than
// two points or zero time spread.
func (w *Window) Slope() float64 {
	pts := w.Points()
	if len(pts) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(pts))
	t0 := pts[0].At
	for _, p := range pts {
		x := float64(p.At-t0) / 1e9
		sx += x
		sy += p.Value
		sxx += x * x
		sxy += x * p.Value
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
