// Package sim provides a deterministic discrete-event simulation kernel.
//
// All MYRTUS data-plane models (devices, networks, FPGA fabrics) advance on
// a virtual clock owned by an Engine. Events are totally ordered by
// (time, sequence), so two runs with the same seed produce identical
// traces. Control-plane code observes the simulated world only through the
// models built on top of this kernel.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, measured in nanoseconds from the start
// of the simulation. It deliberately mirrors time.Duration semantics so
// model code can use time.Millisecond-style literals for offsets.
type Time int64

// Common virtual-time unit helpers.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// MaxTime is the largest representable virtual time.
const MaxTime Time = math.MaxInt64

// Duration converts a virtual time to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string { return time.Duration(t).String() }

// Seconds reports the virtual time as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index; -1 when removed
	dead  bool
	Label string
}

// Time reports when the event fires.
func (e *Event) Time() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e.dead }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine owns the virtual clock and the pending event set.
// The zero value is not ready; use NewEngine.
//
// Engine is not safe for concurrent use: simulation models must be driven
// from a single goroutine (the conventional DES discipline). Control-plane
// goroutines interact with models via their own synchronization.
type Engine struct {
	now   Time
	seq   uint64
	queue eventQueue
	rng   *RNG
	fired uint64
}

// NewEngine returns an engine at virtual time zero with a deterministic
// RNG derived from seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's root random stream.
func (e *Engine) RNG() *RNG { return e.rng }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not cancelled.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.dead {
			n++
		}
	}
	return n
}

// At schedules fn at absolute virtual time at. Scheduling in the past
// panics: that is always a model bug.
func (e *Engine) At(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", at, e.now))
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn after delay d (clamped at zero).
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Step fires the single next event. It reports false when the queue is
// empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue is drained.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// the deadline (if it is ahead of the last event).
func (e *Engine) RunUntil(deadline Time) {
	for {
		next, ok := e.peek()
		if !ok || next > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

func (e *Engine) peek() (Time, bool) {
	for len(e.queue) > 0 {
		if e.queue[0].dead {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0].at, true
	}
	return 0, false
}
