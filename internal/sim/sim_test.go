package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(5, func() {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(15)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 15", fired)
	}
	if e.Now() != 15 {
		t.Fatalf("clock = %v, want 15", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 3 || e.Now() != 100 {
		t.Fatalf("fired=%v now=%v", fired, e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(10, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 40 {
		t.Fatalf("now = %v, want 40", e.Now())
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []uint64 {
		e := NewEngine(42)
		var draws []uint64
		for i := 0; i < 8; i++ {
			e.After(Time(i)*Millisecond, func() { draws = append(draws, e.RNG().Uint64()) })
		}
		e.Run()
		return draws
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic draw %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	root := NewRNG(7)
	a := root.Fork("a")
	b := root.Fork("b")
	if a.Uint64() == b.Uint64() {
		t.Fatal("forked streams identical on first draw")
	}
	// Fork must be order-independent: same label from same parent state.
	root2 := NewRNG(7)
	b2 := root2.Fork("b")
	a2 := root2.Fork("a")
	if a2.Uint64() != NewRNG(7).Fork("a").Uint64() {
		t.Fatal("fork depends on call order")
	}
	_ = b2
}

func TestRNGFloat64Bounds(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(50)
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPick(t *testing.T) {
	r := NewRNG(3)
	if got := r.Pick(nil); got != -1 {
		t.Fatalf("Pick(nil) = %d, want -1", got)
	}
	if got := r.Pick([]float64{0, 0}); got != -1 {
		t.Fatalf("Pick(zeros) = %d, want -1", got)
	}
	counts := [3]int{}
	for i := 0; i < 3000; i++ {
		counts[r.Pick([]float64{1, 0, 3})]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[1])
	}
	if counts[2] < counts[0] {
		t.Fatalf("weights not respected: %v", counts)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / n
	if mean < 4.5 || mean > 5.5 {
		t.Fatalf("Exp mean = %v, want ≈5", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	sum, sq := 0.0, 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		x := r.Norm(10, 2)
		sum += x
		sq += x * x
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if mean < 9.8 || mean > 10.2 {
		t.Fatalf("Norm mean = %v", mean)
	}
	if variance < 3.2 || variance > 4.8 {
		t.Fatalf("Norm variance = %v, want ≈4", variance)
	}
}

func TestPendingAndFired(t *testing.T) {
	e := NewEngine(1)
	e.At(1, func() {})
	ev := e.At(2, func() {})
	ev.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", e.Pending())
	}
	e.Run()
	if e.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", e.Fired())
	}
}

func TestTimeHelpers(t *testing.T) {
	if Second != 1_000_000_000 {
		t.Fatal("Second wrong")
	}
	if (2 * Second).Seconds() != 2.0 {
		t.Fatal("Seconds wrong")
	}
	if (1500 * Millisecond).String() != "1.5s" {
		t.Fatalf("String = %q", (1500 * Millisecond).String())
	}
}
