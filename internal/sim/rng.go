package sim

import "math"

// RNG is a small, fast, deterministic random stream (xoshiro256** seeded
// via splitmix64). Each model that needs randomness should Fork its own
// stream so that adding a model does not perturb the draws seen by others.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a stream seeded from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork derives an independent stream. The derived stream is a pure
// function of the parent state and the label, so model construction order
// does not change it.
func (r *RNG) Fork(label string) *RNG {
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return NewRNG(r.s[0] ^ h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics when n ≤ 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform draw in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponential draw with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normal draw (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Pick returns a random index weighted by the (non-negative) weights.
// It returns -1 when all weights are zero or the slice is empty.
func (r *RNG) Pick(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return -1
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
