package dse

import (
	"testing"
	"testing/quick"

	"myrtus/internal/sim"
)

func pipelineGraph() *TaskGraph {
	return &TaskGraph{
		Name: "pipeline",
		Tasks: []Task{
			{Name: "capture", GOps: 1},
			{Name: "detect", GOps: 20, Kernel: "conv2d"},
			{Name: "track", GOps: 5},
			{Name: "report", GOps: 1},
		},
		Edges: []Edge{
			{Src: "capture", Dst: "detect", DataMB: 8},
			{Src: "detect", Dst: "track", DataMB: 1},
			{Src: "track", Dst: "report", DataMB: 0.1},
		},
	}
}

func heteroPlatform() *Platform {
	return &Platform{
		Name: "edge-soc",
		PEs: []PE{
			{Name: "big-core", GOPS: 10, PowerW: 4},
			{Name: "little-core", GOPS: 3, PowerW: 1},
			{Name: "fpga", GOPS: 5, PowerW: 2, Accel: map[string]float64{"conv2d": 10}},
		},
		BandwidthMBps:   1000,
		CommEnergyPerMB: 0.01,
	}
}

func TestValidate(t *testing.T) {
	if err := pipelineGraph().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := heteroPlatform().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*TaskGraph{
		{Name: "empty"},
		{Name: "dup", Tasks: []Task{{Name: "a", GOps: 1}, {Name: "a", GOps: 1}}},
		{Name: "zero", Tasks: []Task{{Name: "a"}}},
		{Name: "ghost-edge", Tasks: []Task{{Name: "a", GOps: 1}}, Edges: []Edge{{Src: "a", Dst: "b"}}},
		{Name: "cycle", Tasks: []Task{{Name: "a", GOps: 1}, {Name: "b", GOps: 1}},
			Edges: []Edge{{Src: "a", Dst: "b"}, {Src: "b", Dst: "a"}}},
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("graph %q validated", g.Name)
		}
	}
	if err := (&Platform{Name: "p"}).Validate(); err == nil {
		t.Fatal("empty platform validated")
	}
	if err := (&Platform{Name: "p", PEs: []PE{{Name: "x", GOPS: 1, PowerW: 1}}}).Validate(); err == nil {
		t.Fatal("no-bandwidth platform validated")
	}
}

func TestEvaluateSequentialChain(t *testing.T) {
	g := pipelineGraph()
	p := heteroPlatform()
	// Everything on the big core: latency = (1+20+5+1)/10 = 2.7 s, no comm.
	cost, err := Evaluate(g, p, Mapping{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Time(2.7 * float64(sim.Second))
	if cost.Latency != want {
		t.Fatalf("latency = %v, want %v", cost.Latency, want)
	}
	// Energy = 4W × 2.7s.
	if cost.EnergyJ < 10.79 || cost.EnergyJ > 10.81 {
		t.Fatalf("energy = %v", cost.EnergyJ)
	}
}

func TestEvaluateAcceleratorWins(t *testing.T) {
	g := pipelineGraph()
	p := heteroPlatform()
	allBig, _ := Evaluate(g, p, Mapping{0, 0, 0, 0})
	// detect on FPGA: 20 GOps at 5×10 = 50 GOPS → 0.4 s.
	fpga, _ := Evaluate(g, p, Mapping{0, 2, 0, 0})
	if fpga.Latency >= allBig.Latency {
		t.Fatalf("accelerator did not help: %v vs %v", fpga.Latency, allBig.Latency)
	}
}

func TestEvaluateCommCost(t *testing.T) {
	g := &TaskGraph{Name: "two", Tasks: []Task{{Name: "a", GOps: 1}, {Name: "b", GOps: 1}},
		Edges: []Edge{{Src: "a", Dst: "b", DataMB: 100}}}
	p := &Platform{Name: "p", PEs: []PE{{Name: "x", GOPS: 10, PowerW: 1}, {Name: "y", GOPS: 10, PowerW: 1}},
		BandwidthMBps: 100, CommEnergyPerMB: 0.1}
	same, _ := Evaluate(g, p, Mapping{0, 0})
	split, _ := Evaluate(g, p, Mapping{0, 1})
	// Split pays 1 s of transfer + 10 J of comm energy.
	if split.Latency <= same.Latency {
		t.Fatal("no comm latency on split mapping")
	}
	if split.EnergyJ <= same.EnergyJ {
		t.Fatal("no comm energy on split mapping")
	}
}

func TestEvaluateErrors(t *testing.T) {
	g := pipelineGraph()
	p := heteroPlatform()
	if _, err := Evaluate(g, p, Mapping{0}); err == nil {
		t.Fatal("short mapping accepted")
	}
	if _, err := Evaluate(g, p, Mapping{0, 0, 0, 9}); err == nil {
		t.Fatal("out-of-range PE accepted")
	}
}

func TestParetoFront(t *testing.T) {
	cands := []Candidate{
		{Cost: Cost{Latency: 10, EnergyJ: 10}},
		{Cost: Cost{Latency: 5, EnergyJ: 20}},
		{Cost: Cost{Latency: 20, EnergyJ: 5}},
		{Cost: Cost{Latency: 15, EnergyJ: 15}}, // dominated by (10,10)
		{Cost: Cost{Latency: 10, EnergyJ: 10}}, // duplicate
	}
	front := ParetoFront(cands)
	if len(front) != 3 {
		t.Fatalf("front = %v", front)
	}
	for i := 1; i < len(front); i++ {
		if front[i].Cost.Latency < front[i-1].Cost.Latency {
			t.Fatal("front not sorted by latency")
		}
	}
}

func TestDominates(t *testing.T) {
	a := Cost{Latency: 1, EnergyJ: 1}
	b := Cost{Latency: 2, EnergyJ: 2}
	if !a.Dominates(b) || b.Dominates(a) || a.Dominates(a) {
		t.Fatal("dominance relation wrong")
	}
}

func TestExhaustiveFindsAcceleratedMapping(t *testing.T) {
	g := pipelineGraph()
	p := heteroPlatform()
	front, err := ExploreExhaustive(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("empty front")
	}
	// The fastest point must put detect on the FPGA.
	best := front[0]
	if best.Mapping[1] != 2 {
		t.Fatalf("fastest mapping = %v, detect not on fpga", best.Mapping)
	}
	// Front is mutually non-dominated.
	for i, a := range front {
		for j, b := range front {
			if i != j && a.Cost.Dominates(b.Cost) {
				t.Fatalf("front contains dominated point")
			}
		}
	}
}

func TestExhaustiveTooLarge(t *testing.T) {
	tasks := make([]Task, 30)
	for i := range tasks {
		tasks[i] = Task{Name: string(rune('a'+i%26)) + string(rune('0'+i/26)), GOps: 1}
	}
	g := &TaskGraph{Name: "big", Tasks: tasks}
	if _, err := ExploreExhaustive(g, heteroPlatform()); err == nil {
		t.Fatal("huge space accepted")
	}
}

func TestGAApproachesExhaustive(t *testing.T) {
	g := pipelineGraph()
	p := heteroPlatform()
	exact, _ := ExploreExhaustive(g, p)
	front, err := ExploreGA(g, p, DefaultGAOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("GA found nothing")
	}
	// GA's best latency within 25% of the optimum.
	if float64(front[0].Cost.Latency) > 1.25*float64(exact[0].Cost.Latency) {
		t.Fatalf("GA best %v far from optimum %v", front[0].Cost.Latency, exact[0].Cost.Latency)
	}
	if _, err := ExploreGA(g, p, GAOptions{Population: 1, Generations: 1}); err == nil {
		t.Fatal("bad GA options accepted")
	}
}

func TestSAApproachesExhaustive(t *testing.T) {
	g := pipelineGraph()
	p := heteroPlatform()
	exact, _ := ExploreExhaustive(g, p)
	front, err := ExploreSA(g, p, DefaultSAOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(front) == 0 {
		t.Fatal("SA found nothing")
	}
	if float64(front[0].Cost.Latency) > 1.5*float64(exact[0].Cost.Latency) {
		t.Fatalf("SA best %v far from optimum %v", front[0].Cost.Latency, exact[0].Cost.Latency)
	}
	if _, err := ExploreSA(g, p, SAOptions{}); err == nil {
		t.Fatal("bad SA options accepted")
	}
}

func TestFrontNonDominatedProperty(t *testing.T) {
	// Any front returned by the explorers is mutually non-dominated.
	if err := quick.Check(func(seed uint64) bool {
		front, err := ExploreGA(pipelineGraph(), heteroPlatform(), GAOptions{
			Population: 10, Generations: 5, MutationP: 0.3, WLatency: 0.5, Seed: seed,
		})
		if err != nil {
			return false
		}
		for i, a := range front {
			for j, b := range front {
				if i != j && a.Cost.Dominates(b.Cost) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestExportOperatingPoints(t *testing.T) {
	g := pipelineGraph()
	front, _ := ExploreExhaustive(g, heteroPlatform())
	pts := ExportOperatingPoints(g, front)
	if len(pts) != len(front) {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Name != "perf" {
		t.Fatalf("first point = %q", pts[0].Name)
	}
	if len(front) > 1 && pts[len(pts)-1].Name != "eco" {
		t.Fatalf("last point = %q", pts[len(pts)-1].Name)
	}
	for _, p := range pts {
		if len(p.Mapping) != 4 || p.LatencyMs <= 0 || p.EnergyJ <= 0 {
			t.Fatalf("bad point %+v", p)
		}
	}
	// perf is fastest, eco most frugal.
	if len(pts) > 1 {
		if pts[0].LatencyMs > pts[len(pts)-1].LatencyMs {
			t.Fatal("perf point slower than eco")
		}
		if pts[0].EnergyJ < pts[len(pts)-1].EnergyJ {
			t.Fatal("eco point costs more energy than perf")
		}
	}
}

func TestDeterministicExplorers(t *testing.T) {
	g := pipelineGraph()
	p := heteroPlatform()
	a, _ := ExploreGA(g, p, DefaultGAOptions())
	b, _ := ExploreGA(g, p, DefaultGAOptions())
	if len(a) != len(b) {
		t.Fatal("GA not deterministic")
	}
	for i := range a {
		if a[i].Cost != b[i].Cost {
			t.Fatal("GA not deterministic")
		}
	}
}
