// Package dse implements design-space exploration for mapping
// applications onto heterogeneous platforms — the Mocasin role in the
// MYRTUS DPE ([27]), extended with the energy-aware operating-point
// export of [29][30]: the Pareto-optimal mappings become the runtime
// metadata the MIRTO Cognitive Engine switches between.
package dse

import (
	"fmt"
	"math"
	"sort"

	"myrtus/internal/sim"
)

// Task is one schedulable unit of an application.
type Task struct {
	Name   string
	GOps   float64
	Kernel string // optional accelerable kernel
}

// Edge is a data dependency carrying DataMB megabytes.
type Edge struct {
	Src, Dst string
	DataMB   float64
}

// TaskGraph is a DAG of tasks.
type TaskGraph struct {
	Name  string
	Tasks []Task
	Edges []Edge
}

// Validate checks names, positivity, and acyclicity.
func (g *TaskGraph) Validate() error {
	if len(g.Tasks) == 0 {
		return fmt.Errorf("dse: graph %q has no tasks", g.Name)
	}
	idx := map[string]int{}
	for i, t := range g.Tasks {
		if t.Name == "" {
			return fmt.Errorf("dse: unnamed task in %q", g.Name)
		}
		if _, dup := idx[t.Name]; dup {
			return fmt.Errorf("dse: duplicate task %q", t.Name)
		}
		if t.GOps <= 0 {
			return fmt.Errorf("dse: task %q needs positive GOps", t.Name)
		}
		idx[t.Name] = i
	}
	for _, e := range g.Edges {
		if _, ok := idx[e.Src]; !ok {
			return fmt.Errorf("dse: edge source %q unknown", e.Src)
		}
		if _, ok := idx[e.Dst]; !ok {
			return fmt.Errorf("dse: edge destination %q unknown", e.Dst)
		}
		if e.DataMB < 0 {
			return fmt.Errorf("dse: edge %s->%s negative data", e.Src, e.Dst)
		}
	}
	if _, err := g.topoOrder(); err != nil {
		return err
	}
	return nil
}

func (g *TaskGraph) topoOrder() ([]int, error) {
	idx := map[string]int{}
	for i, t := range g.Tasks {
		idx[t.Name] = i
	}
	indeg := make([]int, len(g.Tasks))
	adj := make([][]int, len(g.Tasks))
	for _, e := range g.Edges {
		s, d := idx[e.Src], idx[e.Dst]
		adj[s] = append(adj[s], d)
		indeg[d]++
	}
	var queue []int
	for i, d := range indeg {
		if d == 0 {
			queue = append(queue, i)
		}
	}
	var order []int
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, m := range adj[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if len(order) != len(g.Tasks) {
		return nil, fmt.Errorf("dse: graph %q has a dependency cycle", g.Name)
	}
	return order, nil
}

// PE is one processing element of the platform.
type PE struct {
	Name   string
	GOPS   float64
	PowerW float64 // active power
	// Accel maps kernel names to speedup factors on this PE.
	Accel map[string]float64
}

// Platform is a set of PEs connected by a uniform interconnect.
type Platform struct {
	Name          string
	PEs           []PE
	BandwidthMBps float64
	// CommEnergyPerMB is joules per megabyte moved between PEs.
	CommEnergyPerMB float64
}

// Validate checks the platform.
func (p *Platform) Validate() error {
	if len(p.PEs) == 0 {
		return fmt.Errorf("dse: platform %q has no PEs", p.Name)
	}
	for _, pe := range p.PEs {
		if pe.GOPS <= 0 || pe.PowerW <= 0 {
			return fmt.Errorf("dse: PE %q needs positive GOPS and power", pe.Name)
		}
	}
	if p.BandwidthMBps <= 0 {
		return fmt.Errorf("dse: platform %q needs positive bandwidth", p.Name)
	}
	return nil
}

// Mapping assigns task index → PE index.
type Mapping []int

// Cost is the bi-objective evaluation result.
type Cost struct {
	Latency sim.Time // makespan of one iteration
	EnergyJ float64
}

// Dominates reports Pareto dominance (≤ in both, < in one).
func (c Cost) Dominates(o Cost) bool {
	if c.Latency > o.Latency || c.EnergyJ > o.EnergyJ {
		return false
	}
	return c.Latency < o.Latency || c.EnergyJ < o.EnergyJ
}

// Evaluate schedules g on p under mapping (list scheduling honoring
// dependencies and PE availability) and returns the makespan and energy.
func Evaluate(g *TaskGraph, p *Platform, m Mapping) (Cost, error) {
	if len(m) != len(g.Tasks) {
		return Cost{}, fmt.Errorf("dse: mapping covers %d of %d tasks", len(m), len(g.Tasks))
	}
	for _, pe := range m {
		if pe < 0 || pe >= len(p.PEs) {
			return Cost{}, fmt.Errorf("dse: mapping references PE %d of %d", pe, len(p.PEs))
		}
	}
	order, err := g.topoOrder()
	if err != nil {
		return Cost{}, err
	}
	idx := map[string]int{}
	for i, t := range g.Tasks {
		idx[t.Name] = i
	}
	inEdges := make([][]Edge, len(g.Tasks))
	for _, e := range g.Edges {
		inEdges[idx[e.Dst]] = append(inEdges[idx[e.Dst]], e)
	}
	peFree := make([]sim.Time, len(p.PEs))
	finish := make([]sim.Time, len(g.Tasks))
	energy := 0.0
	for _, ti := range order {
		task := g.Tasks[ti]
		pe := p.PEs[m[ti]]
		ready := sim.Time(0)
		for _, e := range inEdges[ti] {
			si := idx[e.Src]
			arr := finish[si]
			if m[si] != m[ti] && e.DataMB > 0 {
				comm := sim.Time(e.DataMB / p.BandwidthMBps * float64(sim.Second))
				arr += comm
				energy += e.DataMB * p.CommEnergyPerMB
			}
			if arr > ready {
				ready = arr
			}
		}
		if peFree[m[ti]] > ready {
			ready = peFree[m[ti]]
		}
		speed := pe.GOPS
		if s, ok := pe.Accel[task.Kernel]; ok && s > 1 {
			speed *= s
		}
		dur := sim.Time(task.GOps / speed * float64(sim.Second))
		finish[ti] = ready + dur
		peFree[m[ti]] = finish[ti]
		energy += pe.PowerW * dur.Seconds()
	}
	makespan := sim.Time(0)
	for _, f := range finish {
		if f > makespan {
			makespan = f
		}
	}
	return Cost{Latency: makespan, EnergyJ: energy}, nil
}

// Candidate pairs a mapping with its evaluated cost.
type Candidate struct {
	Mapping Mapping
	Cost    Cost
}

// ParetoFront filters the non-dominated candidates, sorted by latency.
func ParetoFront(cands []Candidate) []Candidate {
	var front []Candidate
	for i, c := range cands {
		dominated := false
		for j, o := range cands {
			if i != j && o.Cost.Dominates(c.Cost) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, c)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Cost.Latency != front[j].Cost.Latency {
			return front[i].Cost.Latency < front[j].Cost.Latency
		}
		return front[i].Cost.EnergyJ < front[j].Cost.EnergyJ
	})
	// Deduplicate identical costs.
	var out []Candidate
	for _, c := range front {
		if len(out) > 0 && out[len(out)-1].Cost == c.Cost {
			continue
		}
		out = append(out, c)
	}
	return out
}

// scalarize folds a cost into a single objective for the heuristics:
// normalized weighted sum.
func scalarize(c Cost, wLatency float64) float64 {
	return wLatency*c.Latency.Seconds() + (1-wLatency)*c.EnergyJ/100
}

// ExploreExhaustive enumerates every mapping (|PEs|^|tasks| — small
// graphs only) and returns the full Pareto front.
func ExploreExhaustive(g *TaskGraph, p *Platform) ([]Candidate, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, k := len(g.Tasks), len(p.PEs)
	total := math.Pow(float64(k), float64(n))
	if total > 2_000_000 {
		return nil, fmt.Errorf("dse: exhaustive space too large (%g mappings)", total)
	}
	m := make(Mapping, n)
	var cands []Candidate
	var rec func(i int) error
	rec = func(i int) error {
		if i == n {
			cost, err := Evaluate(g, p, m)
			if err != nil {
				return err
			}
			cands = append(cands, Candidate{Mapping: append(Mapping(nil), m...), Cost: cost})
			return nil
		}
		for pe := 0; pe < k; pe++ {
			m[i] = pe
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	return ParetoFront(cands), nil
}

// GAOptions tune the genetic explorer.
type GAOptions struct {
	Population  int
	Generations int
	MutationP   float64
	WLatency    float64 // scalarization weight ∈ [0,1]
	Seed        uint64
}

// DefaultGAOptions returns a balanced configuration.
func DefaultGAOptions() GAOptions {
	return GAOptions{Population: 40, Generations: 60, MutationP: 0.15, WLatency: 0.5, Seed: 1}
}

// ExploreGA runs a genetic search and returns the Pareto front over all
// evaluated individuals.
func ExploreGA(g *TaskGraph, p *Platform, opts GAOptions) ([]Candidate, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Population < 4 || opts.Generations < 1 {
		return nil, fmt.Errorf("dse: GA needs population ≥ 4 and generations ≥ 1")
	}
	rng := sim.NewRNG(opts.Seed)
	n, k := len(g.Tasks), len(p.PEs)
	pop := make([]Mapping, opts.Population)
	for i := range pop {
		pop[i] = randomMapping(rng, n, k)
	}
	var all []Candidate
	evaluate := func(m Mapping) Candidate {
		cost, _ := Evaluate(g, p, m)
		c := Candidate{Mapping: append(Mapping(nil), m...), Cost: cost}
		all = append(all, c)
		return c
	}
	cur := make([]Candidate, len(pop))
	for i, m := range pop {
		cur[i] = evaluate(m)
	}
	for gen := 0; gen < opts.Generations; gen++ {
		sort.Slice(cur, func(i, j int) bool {
			return scalarize(cur[i].Cost, opts.WLatency) < scalarize(cur[j].Cost, opts.WLatency)
		})
		elite := cur[:len(cur)/2]
		var next []Candidate
		next = append(next, elite...)
		for len(next) < opts.Population {
			a := elite[rng.Intn(len(elite))].Mapping
			b := elite[rng.Intn(len(elite))].Mapping
			child := make(Mapping, n)
			cut := rng.Intn(n)
			copy(child, a[:cut])
			copy(child[cut:], b[cut:])
			for i := range child {
				if rng.Bool(opts.MutationP) {
					child[i] = rng.Intn(k)
				}
			}
			next = append(next, evaluate(child))
		}
		cur = next
	}
	return ParetoFront(all), nil
}

// SAOptions tune simulated annealing.
type SAOptions struct {
	Iterations  int
	T0, Cooling float64
	WLatency    float64
	Seed        uint64
}

// DefaultSAOptions returns a standard schedule.
func DefaultSAOptions() SAOptions {
	return SAOptions{Iterations: 2000, T0: 1.0, Cooling: 0.998, WLatency: 0.5, Seed: 1}
}

// ExploreSA runs simulated annealing and returns the Pareto front of the
// visited states.
func ExploreSA(g *TaskGraph, p *Platform, opts SAOptions) ([]Candidate, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if opts.Iterations < 1 || opts.T0 <= 0 || opts.Cooling <= 0 || opts.Cooling >= 1 {
		return nil, fmt.Errorf("dse: bad SA options")
	}
	rng := sim.NewRNG(opts.Seed)
	n, k := len(g.Tasks), len(p.PEs)
	cur := randomMapping(rng, n, k)
	curCost, err := Evaluate(g, p, cur)
	if err != nil {
		return nil, err
	}
	all := []Candidate{{Mapping: append(Mapping(nil), cur...), Cost: curCost}}
	temp := opts.T0
	for i := 0; i < opts.Iterations; i++ {
		next := append(Mapping(nil), cur...)
		next[rng.Intn(n)] = rng.Intn(k)
		nextCost, err := Evaluate(g, p, next)
		if err != nil {
			return nil, err
		}
		all = append(all, Candidate{Mapping: next, Cost: nextCost})
		d := scalarize(nextCost, opts.WLatency) - scalarize(curCost, opts.WLatency)
		if d <= 0 || rng.Float64() < math.Exp(-d/temp) {
			cur, curCost = next, nextCost
		}
		temp *= opts.Cooling
	}
	return ParetoFront(all), nil
}

func randomMapping(rng *sim.RNG, n, k int) Mapping {
	m := make(Mapping, n)
	for i := range m {
		m[i] = rng.Intn(k)
	}
	return m
}

// OperatingPoint is the runtime metadata exported for one Pareto point
// ([29][30]): the Node Manager switches between these at runtime.
type OperatingPoint struct {
	Name      string         `json:"name"`
	Mapping   map[string]int `json:"mapping"` // task → PE index
	LatencyMs float64        `json:"latencyMs"`
	EnergyJ   float64        `json:"energyJ"`
}

// ExportOperatingPoints converts a Pareto front into named operating
// points (fastest = "perf", most frugal = "eco", middle = "balanced-i").
func ExportOperatingPoints(g *TaskGraph, front []Candidate) []OperatingPoint {
	out := make([]OperatingPoint, 0, len(front))
	for i, c := range front {
		name := fmt.Sprintf("balanced-%d", i)
		if i == 0 {
			name = "perf"
		}
		if i == len(front)-1 && len(front) > 1 {
			name = "eco"
		}
		mp := map[string]int{}
		for ti, pe := range c.Mapping {
			mp[g.Tasks[ti].Name] = pe
		}
		out = append(out, OperatingPoint{
			Name:      name,
			Mapping:   mp,
			LatencyMs: c.Cost.Latency.Seconds() * 1e3,
			EnergyJ:   c.Cost.EnergyJ,
		})
	}
	return out
}
