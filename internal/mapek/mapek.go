// Package mapek implements the MAPE-K feedback loop ([17], [18]) that
// structures MIRTO's dynamic orchestration: the four steps the paper
// lists — 1) sensing of triggers, 2) evaluation of aggregated
// information, 3) decision for resource allocation/configuration, and
// 4) reconfiguration/reallocation — map onto Monitor, Analyze, Plan, and
// Execute over a shared Knowledge store.
package mapek

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"myrtus/internal/trace"
)

// KPI is one sensed indicator with its goal.
type KPI struct {
	Name   string
	Value  float64
	Target float64
	// HigherIsBetter: true for throughput-like KPIs, false for
	// latency/energy-like KPIs.
	HigherIsBetter bool
}

// Violated reports whether the KPI misses its target.
func (k KPI) Violated() bool {
	if k.HigherIsBetter {
		return k.Value < k.Target
	}
	return k.Value > k.Target
}

// Severity is the relative miss magnitude (0 when satisfied).
func (k KPI) Severity() float64 {
	if !k.Violated() || k.Target == 0 {
		if k.Target == 0 && k.Violated() {
			return 1
		}
		return 0
	}
	d := (k.Value - k.Target) / k.Target
	if k.HigherIsBetter {
		d = -d
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Violation is one analyzed problem.
type Violation struct {
	KPI      KPI
	Severity float64
}

// Action is one planned adaptation.
type Action struct {
	Kind   string // e.g. "scale-up", "offload", "set-operating-point"
	Target string
	Args   map[string]any
}

// Monitor senses the managed system.
type Monitor func() []KPI

// Planner turns violations into actions.
type Planner func(violations []Violation, k *Knowledge) []Action

// Executor applies one action; errors are recorded, not fatal.
type Executor func(Action) error

// Knowledge is the shared K of MAPE-K: a thread-safe blackboard the four
// phases read and write (backed by the distributed KB in the full stack).
type Knowledge struct {
	mu   sync.Mutex
	data map[string]any
}

// NewKnowledge returns an empty store.
func NewKnowledge() *Knowledge { return &Knowledge{data: map[string]any{}} }

// Put stores a fact.
func (k *Knowledge) Put(key string, v any) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.data[key] = v
}

// Get reads a fact.
func (k *Knowledge) Get(key string) (any, bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	v, ok := k.data[key]
	return v, ok
}

// GetFloat reads a numeric fact with default.
func (k *Knowledge) GetFloat(key string, def float64) float64 {
	if v, ok := k.Get(key); ok {
		if f, ok := v.(float64); ok {
			return f
		}
	}
	return def
}

// Loop is one MAPE-K instance.
type Loop struct {
	Name     string
	Monitor  Monitor
	Planner  Planner
	Executor Executor
	K        *Knowledge

	mu      sync.Mutex
	iters   int
	actions int
	failed  int
	history []IterationRecord
	tracer  *trace.Tracer
}

// IterationRecord captures one loop pass for observability.
type IterationRecord struct {
	Iteration  int
	KPIs       []KPI
	Violations []Violation
	Actions    []Action
	ExecErrors []string
}

// NewLoop wires a loop; all three hooks are required.
func NewLoop(name string, m Monitor, p Planner, e Executor) (*Loop, error) {
	if m == nil || p == nil || e == nil {
		return nil, fmt.Errorf("mapek: loop %q needs monitor, planner and executor", name)
	}
	return &Loop{Name: name, Monitor: m, Planner: p, Executor: e, K: NewKnowledge()}, nil
}

// SetTracer attaches a tracer; Iterate then records a decision span per
// pass so loop activity appears in layer attribution.
func (l *Loop) SetTracer(t *trace.Tracer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.tracer = t
}

// Analyze is the default analysis: every violated KPI becomes a
// violation ranked by severity.
func Analyze(kpis []KPI) []Violation {
	var out []Violation
	for _, k := range kpis {
		if k.Violated() {
			out = append(out, Violation{KPI: k, Severity: k.Severity()})
		}
	}
	return out
}

// Iterate runs one M-A-P-E pass and returns its record.
func (l *Loop) Iterate() IterationRecord {
	l.mu.Lock()
	l.iters++
	rec := IterationRecord{Iteration: l.iters}
	l.mu.Unlock()

	rec.KPIs = l.Monitor()
	rec.Violations = Analyze(rec.KPIs)
	for _, k := range rec.KPIs {
		l.K.Put("kpi/"+k.Name, k.Value)
	}
	if len(rec.Violations) > 0 {
		rec.Actions = l.Planner(rec.Violations, l.K)
	}
	for _, a := range rec.Actions {
		if err := l.Executor(a); err != nil {
			rec.ExecErrors = append(rec.ExecErrors, err.Error())
			l.mu.Lock()
			l.failed++
			l.mu.Unlock()
			continue
		}
		l.mu.Lock()
		l.actions++
		l.mu.Unlock()
	}
	l.mu.Lock()
	l.history = append(l.history, rec)
	if len(l.history) > 1024 {
		l.history = l.history[len(l.history)-512:]
	}
	tracer := l.tracer
	l.mu.Unlock()

	if sp := tracer.StartRoot("mapek/"+l.Name, trace.LayerAgent); sp != nil {
		sp.SetAttr("violations", strconv.Itoa(len(rec.Violations)))
		if len(rec.Actions) > 0 {
			kinds := make([]string, len(rec.Actions))
			for i, a := range rec.Actions {
				kinds[i] = a.Kind
			}
			sp.SetAttr("actions", strings.Join(kinds, ","))
		}
		sp.EndNow()
	}
	return rec
}

// RunUntilStable iterates until a pass has no violations (or maxIters),
// returning the number of passes used and whether it stabilized.
func (l *Loop) RunUntilStable(maxIters int) (int, bool) {
	for i := 1; i <= maxIters; i++ {
		rec := l.Iterate()
		if len(rec.Violations) == 0 {
			return i, true
		}
	}
	return maxIters, false
}

// Stats reports loop counters: iterations, successful actions, failures.
func (l *Loop) Stats() (iters, actions, failed int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.iters, l.actions, l.failed
}

// History returns the retained iteration records.
func (l *Loop) History() []IterationRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]IterationRecord(nil), l.history...)
}
