package mapek

import (
	"fmt"
	"testing"
	"testing/quick"

	"myrtus/internal/sim"
	"myrtus/internal/trace"
)

func TestKPIViolated(t *testing.T) {
	cases := []struct {
		k    KPI
		want bool
	}{
		{KPI{Name: "lat", Value: 10, Target: 20, HigherIsBetter: false}, false},
		{KPI{Name: "lat", Value: 30, Target: 20, HigherIsBetter: false}, true},
		{KPI{Name: "thr", Value: 10, Target: 20, HigherIsBetter: true}, true},
		{KPI{Name: "thr", Value: 30, Target: 20, HigherIsBetter: true}, false},
	}
	for _, c := range cases {
		if c.k.Violated() != c.want {
			t.Fatalf("%+v violated = %v", c.k, c.k.Violated())
		}
	}
}

func TestKPISeverity(t *testing.T) {
	k := KPI{Name: "lat", Value: 30, Target: 20}
	if s := k.Severity(); s < 0.49 || s > 0.51 {
		t.Fatalf("severity = %v", s)
	}
	ok := KPI{Name: "lat", Value: 10, Target: 20}
	if ok.Severity() != 0 {
		t.Fatal("satisfied KPI has severity")
	}
	zt := KPI{Name: "x", Value: 1, Target: 0}
	if zt.Severity() != 1 {
		t.Fatalf("zero-target severity = %v", zt.Severity())
	}
	// Higher-is-better severity is positive too.
	hb := KPI{Name: "thr", Value: 10, Target: 20, HigherIsBetter: true}
	if s := hb.Severity(); s < 0.49 || s > 0.51 {
		t.Fatalf("hb severity = %v", s)
	}
}

func TestSeverityNonNegativeProperty(t *testing.T) {
	if err := quick.Check(func(v, tg float64, hb bool) bool {
		k := KPI{Name: "x", Value: v, Target: tg, HigherIsBetter: hb}
		return k.Severity() >= 0
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewLoopValidation(t *testing.T) {
	if _, err := NewLoop("l", nil, nil, nil); err == nil {
		t.Fatal("nil hooks accepted")
	}
}

func TestLoopConvergesOnViolation(t *testing.T) {
	// Managed system: latency starts at 100ms, each "scale-up" action
	// halves it; target 20ms.
	latency := 100.0
	monitor := func() []KPI {
		return []KPI{{Name: "latency_ms", Value: latency, Target: 20}}
	}
	planner := func(v []Violation, k *Knowledge) []Action {
		if len(v) == 0 {
			return nil
		}
		return []Action{{Kind: "scale-up", Target: "detector"}}
	}
	executor := func(a Action) error {
		if a.Kind == "scale-up" {
			latency /= 2
		}
		return nil
	}
	loop, err := NewLoop("wl-manager", monitor, planner, executor)
	if err != nil {
		t.Fatal(err)
	}
	iters, stable := loop.RunUntilStable(20)
	if !stable {
		t.Fatal("loop did not stabilize")
	}
	// 100 → 50 → 25 → 12.5: three actions, stable on the 4th check.
	if iters != 4 {
		t.Fatalf("iters = %d", iters)
	}
	_, actions, failed := loop.Stats()
	if actions != 3 || failed != 0 {
		t.Fatalf("actions=%d failed=%d", actions, failed)
	}
	// Knowledge carries the last sensed KPI.
	if got := loop.K.GetFloat("kpi/latency_ms", -1); got != 12.5 {
		t.Fatalf("knowledge = %v", got)
	}
	if len(loop.History()) != 4 {
		t.Fatalf("history = %d", len(loop.History()))
	}
}

func TestLoopRecordsExecutorErrors(t *testing.T) {
	monitor := func() []KPI { return []KPI{{Name: "x", Value: 2, Target: 1}} }
	planner := func(v []Violation, k *Knowledge) []Action {
		return []Action{{Kind: "broken"}}
	}
	executor := func(a Action) error { return fmt.Errorf("actuator offline") }
	loop, _ := NewLoop("l", monitor, planner, executor)
	rec := loop.Iterate()
	if len(rec.ExecErrors) != 1 {
		t.Fatalf("errors = %v", rec.ExecErrors)
	}
	_, actions, failed := loop.Stats()
	if actions != 0 || failed != 1 {
		t.Fatalf("actions=%d failed=%d", actions, failed)
	}
}

func TestLoopNoActionsWhenHealthy(t *testing.T) {
	called := false
	monitor := func() []KPI { return []KPI{{Name: "x", Value: 1, Target: 10}} }
	planner := func(v []Violation, k *Knowledge) []Action { called = true; return nil }
	executor := func(a Action) error { return nil }
	loop, _ := NewLoop("l", monitor, planner, executor)
	rec := loop.Iterate()
	if called {
		t.Fatal("planner invoked without violations")
	}
	if len(rec.Violations) != 0 || len(rec.Actions) != 0 {
		t.Fatalf("rec = %+v", rec)
	}
}

func TestLoopUnstableReported(t *testing.T) {
	monitor := func() []KPI { return []KPI{{Name: "x", Value: 5, Target: 1}} }
	planner := func(v []Violation, k *Knowledge) []Action { return nil }
	executor := func(a Action) error { return nil }
	loop, _ := NewLoop("l", monitor, planner, executor)
	iters, stable := loop.RunUntilStable(5)
	if stable || iters != 5 {
		t.Fatalf("iters=%d stable=%v", iters, stable)
	}
}

func TestKnowledge(t *testing.T) {
	k := NewKnowledge()
	k.Put("a", 1.5)
	k.Put("b", "str")
	if v, ok := k.Get("a"); !ok || v != 1.5 {
		t.Fatal("Get")
	}
	if k.GetFloat("a", 0) != 1.5 {
		t.Fatal("GetFloat")
	}
	if k.GetFloat("b", 7) != 7 || k.GetFloat("ghost", 7) != 7 {
		t.Fatal("GetFloat defaults")
	}
	if _, ok := k.Get("ghost"); ok {
		t.Fatal("ghost key")
	}
}

func TestAnalyzeRanksBySeverity(t *testing.T) {
	vs := Analyze([]KPI{
		{Name: "ok", Value: 1, Target: 10},
		{Name: "bad", Value: 30, Target: 10},
	})
	if len(vs) != 1 || vs[0].KPI.Name != "bad" || vs[0].Severity != 2 {
		t.Fatalf("violations = %+v", vs)
	}
}

func TestIterateRecordsSpan(t *testing.T) {
	l, err := NewLoop("test",
		func() []KPI { return []KPI{{Name: "lat", Value: 10, Target: 5}} },
		func(v []Violation, _ *Knowledge) []Action { return []Action{{Kind: "scale-up"}} },
		func(Action) error { return nil },
	)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.NewTracer(sim.NewEngine(1))
	l.SetTracer(tr)
	l.Iterate()
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	sp := traces[0].Root
	if sp.Name != "mapek/test" || sp.Layer != trace.LayerAgent {
		t.Fatalf("span = %+v", sp)
	}
	if sp.Attrs["violations"] != "1" || sp.Attrs["actions"] != "scale-up" {
		t.Fatalf("attrs = %v", sp.Attrs)
	}
}
