package trace

import (
	"encoding/json"

	"myrtus/internal/kb"
	"myrtus/internal/telemetry"
)

// ExportTelemetry feeds span durations and critical-path attribution
// into a telemetry registry, so MIRTO agents consume trace signals
// through the same metric plane as every other monitor:
//
//	span_ms:<name>        histogram of span durations (ms)
//	critpath_ns:<layer>   counter of critical-path virtual ns per layer
func ExportTelemetry(traces []*Trace, reg *telemetry.Registry) {
	for _, tr := range traces {
		for _, s := range tr.Spans {
			reg.Histogram(telemetry.Application, "span_ms:"+s.Name).
				Observe(s.Duration().Seconds() * 1e3)
		}
		for _, ls := range tr.LayerBreakdown() {
			reg.Counter(telemetry.Application, "critpath_ns:"+string(ls.Layer)).
				Add(float64(ls.Time))
		}
	}
}

// kbSummary is the JSON document published to the Knowledge Base.
type kbSummary struct {
	UpdatedAtNanos int64    `json:"updatedAtNanos"`
	Summary        *Summary `json:"summary"`
}

// PublishKB stores the aggregated summary under the traces section of
// the KB, returning the resulting revision. MIRTO planners read it to
// attribute SLO violations to a continuum layer.
func PublishKB(kv kb.Backend, s *Summary, nowNanos int64) int64 {
	doc, err := json.Marshal(kbSummary{UpdatedAtNanos: nowNanos, Summary: s})
	if err != nil {
		return 0
	}
	return kv.Put(kb.PrefixTraces+"summary", doc)
}

// LoadKB reads back the last published summary, if any.
func LoadKB(kv kb.Backend) (*Summary, int64, bool) {
	rec, ok := kv.Get(kb.PrefixTraces + "summary")
	if !ok {
		return nil, 0, false
	}
	var doc kbSummary
	if err := json.Unmarshal(rec.Value, &doc); err != nil {
		return nil, 0, false
	}
	return doc.Summary, doc.UpdatedAtNanos, true
}
