package trace

import (
	"errors"
	"strings"
	"testing"

	"myrtus/internal/kb"
	"myrtus/internal/sim"
	"myrtus/internal/telemetry"
)

// buildTrace constructs a three-hop causal chain on a fresh engine:
//
//	root request/test [0, 14ms]
//	  net.in  [network]  0..4ms
//	    exec/a [device]  4..10ms   (child branch: exec/side 4..6ms)
//	      net.out [network] 10..14ms   <- terminal
func buildTrace(t *testing.T) (*Tracer, *Trace) {
	t.Helper()
	eng := sim.NewEngine(1)
	tr := NewTracer(eng)
	root := tr.StartRoot("request/test", LayerAgent)
	if root == nil {
		t.Fatal("root not sampled at every=1")
	}
	netIn := tr.StartSpan(root.Context(), "net.in", LayerNetwork)
	side := tr.StartSpanAt(netIn.Context(), "exec/side", LayerDevice, 4*sim.Millisecond)
	exec := tr.StartSpanAt(netIn.Context(), "exec/a", LayerDevice, 4*sim.Millisecond)
	netOut := tr.StartSpanAt(exec.Context(), "net.out", LayerNetwork, 10*sim.Millisecond)
	netIn.EndAt(4 * sim.Millisecond)
	side.EndAt(6 * sim.Millisecond)
	exec.SetAttr("device", "edge-hmp-0")
	exec.EndAt(10 * sim.Millisecond)
	netOut.EndAt(14 * sim.Millisecond)
	root.EndAt(14 * sim.Millisecond)
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("finished traces = %d, want 1", len(traces))
	}
	return tr, traces[0]
}

func TestSpanLifecycleAndDeterministicIDs(t *testing.T) {
	_, trc := buildTrace(t)
	if trc.ID != "t000001" {
		t.Fatalf("trace ID = %q, want t000001", trc.ID)
	}
	if trc.Root.ID != "s000001" {
		t.Fatalf("root span ID = %q, want s000001", trc.Root.ID)
	}
	if !trc.Complete() {
		t.Fatal("trace should be complete after root end")
	}
	if got := trc.Root.Duration(); got != 14*sim.Millisecond {
		t.Fatalf("root duration = %v, want 14ms", got)
	}
	// Two independently built traces must be bit-identical.
	_, again := buildTrace(t)
	if RenderTree(trc) != RenderTree(again) {
		t.Fatal("seeded trace rendering is not deterministic")
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartRoot("x", LayerAgent)
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.SetAttr("k", "v")
	sp.SetError(errors.New("boom"))
	sp.EndAt(5)
	if sp.Context().Valid() {
		t.Fatal("nil span context must be invalid")
	}
	if tr.StartSpan(SpanContext{}, "y", LayerDevice) != nil {
		t.Fatal("invalid parent must yield nil span")
	}
}

func TestCriticalPathSumsToTotal(t *testing.T) {
	_, trc := buildTrace(t)
	segs, total := trc.CriticalPath()
	if total != 14*sim.Millisecond {
		t.Fatalf("total = %v, want 14ms", total)
	}
	names := make([]string, 0, len(segs))
	var explained sim.Time
	for _, seg := range segs {
		names = append(names, seg.Span.Name)
		explained += seg.Wait + seg.Span.Duration()
	}
	if got, want := strings.Join(names, ","), "net.in,exec/a,net.out"; got != want {
		t.Fatalf("critical path = %s, want %s", got, want)
	}
	if explained != total {
		t.Fatalf("critical path explains %v of %v", explained, total)
	}
	// The side branch must not be on the path.
	if trc.OnCriticalPath()["s000003"] {
		t.Fatal("side branch should be off the critical path")
	}
}

func TestLayerBreakdown(t *testing.T) {
	_, trc := buildTrace(t)
	bd := trc.LayerBreakdown()
	byLayer := make(map[Layer]LayerStat)
	for _, ls := range bd {
		byLayer[ls.Layer] = ls
	}
	if got := byLayer[LayerNetwork].Time; got != 8*sim.Millisecond {
		t.Fatalf("network time = %v, want 8ms", got)
	}
	if got := byLayer[LayerDevice].Time; got != 6*sim.Millisecond {
		t.Fatalf("device time = %v, want 6ms", got)
	}
	var sum sim.Time
	for _, ls := range bd {
		sum += ls.Time
	}
	if sum != 14*sim.Millisecond {
		t.Fatalf("breakdown sums to %v, want 14ms", sum)
	}
}

func TestHeadSamplingIsDeterministic(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := NewTracer(eng)
	tr.SetSampleEvery(3)
	var sampled []int
	for i := 0; i < 9; i++ {
		sp := tr.StartRoot("r", LayerAgent)
		if sp != nil {
			sampled = append(sampled, i)
			sp.EndAt(sim.Time(i))
		}
	}
	if len(sampled) != 3 || sampled[0] != 0 || sampled[1] != 3 || sampled[2] != 6 {
		t.Fatalf("sampled roots = %v, want [0 3 6]", sampled)
	}
	st := tr.Stats()
	if st.RootsStarted != 9 || st.RootsSampled != 3 {
		t.Fatalf("stats = %+v", st)
	}
	// Sampling off: everything is a no-op.
	tr.SetSampleEvery(0)
	if tr.StartRoot("r", LayerAgent) != nil {
		t.Fatal("sampling off must not create spans")
	}
}

func TestMaxTracesEviction(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := NewTracer(eng)
	tr.SetMaxTraces(2)
	var ids []TraceID
	for i := 0; i < 4; i++ {
		sp := tr.StartRoot("r", LayerAgent)
		ids = append(ids, sp.Context().Trace)
		sp.EndAt(sim.Time(i))
	}
	got := tr.Traces()
	if len(got) != 2 || got[0].ID != ids[2] || got[1].ID != ids[3] {
		t.Fatalf("retained traces wrong: %d retained", len(got))
	}
	if _, ok := tr.Find(ids[0]); ok {
		t.Fatal("evicted trace still findable")
	}
	// Spans for evicted traces are counted as dropped, not recorded.
	if tr.StartSpan(SpanContext{Trace: ids[0], Span: "s000001"}, "late", LayerDevice) != nil {
		t.Fatal("span on evicted trace should be nil")
	}
	if tr.Stats().SpansDropped == 0 {
		t.Fatal("expected dropped span accounting")
	}
}

func TestFromSpansRoundTrip(t *testing.T) {
	_, trc := buildTrace(t)
	rebuilt, err := FromSpans(trc.Spans)
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Root.ID != trc.Root.ID {
		t.Fatalf("rebuilt root = %s, want %s", rebuilt.Root.ID, trc.Root.ID)
	}
	segs, total := rebuilt.CriticalPath()
	if total != 14*sim.Millisecond || len(segs) != 3 {
		t.Fatalf("rebuilt critical path: %d segs, total %v", len(segs), total)
	}
	if _, err := FromSpans(nil); err == nil {
		t.Fatal("FromSpans(nil) should fail")
	}
}

func TestSummarizeAndRender(t *testing.T) {
	_, trc := buildTrace(t)
	sum := Summarize([]*Trace{trc})
	if sum.Traces != 1 || sum.Spans != 5 {
		t.Fatalf("summary = %d traces %d spans", sum.Traces, sum.Spans)
	}
	out := RenderSummary(sum)
	for _, want := range []string{"per-layer", "network", "device", "exec/a"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary render missing %q:\n%s", want, out)
		}
	}
	tree := RenderTree(trc)
	if !strings.Contains(tree, "* ") || !strings.Contains(tree, "exec/side") {
		t.Fatalf("tree render unexpected:\n%s", tree)
	}
	segs, total := trc.CriticalPath()
	cp := RenderCriticalPath(segs, total)
	if !strings.Contains(cp, "100.0%") {
		t.Fatalf("critical path should explain 100%%:\n%s", cp)
	}
}

func TestExportTelemetryAndKB(t *testing.T) {
	_, trc := buildTrace(t)
	reg := telemetry.NewRegistry("trace")
	ExportTelemetry([]*Trace{trc}, reg)
	if s, ok := reg.Find("span_ms:exec/a"); !ok || s.Hist.Count != 1 {
		t.Fatalf("span histogram not exported: %+v ok=%v", s, ok)
	}
	if s, ok := reg.Find("critpath_ns:network"); !ok || s.Value != float64(8*sim.Millisecond) {
		t.Fatalf("critpath counter = %+v ok=%v", s, ok)
	}

	store := kb.NewStore()
	sum := Summarize([]*Trace{trc})
	if rev := PublishKB(store, sum, 14_000_000); rev == 0 {
		t.Fatal("PublishKB returned revision 0")
	}
	back, at, ok := LoadKB(store)
	if !ok || at != 14_000_000 || back.Traces != 1 {
		t.Fatalf("LoadKB = %+v at=%d ok=%v", back, at, ok)
	}
}
