package trace

import (
	"sort"

	"myrtus/internal/sim"
	"myrtus/internal/telemetry"
)

// PathSegment is one hop on a critical path: the span itself plus the
// virtual time the request waited between the previous segment's end and
// this span's start (queueing/scheduling gaps).
type PathSegment struct {
	Span *Span
	Wait sim.Time
}

// CriticalPath extracts the chain of spans that determined the trace's
// end-to-end latency: starting from the terminal span (the latest-ending
// non-root span, ties broken by start time then span ID so the result is
// deterministic), it walks parent links back to the root. The returned
// segments are ordered root-first; total is the root span's duration.
// For a causally-parented trace — every span's parent is the operation
// whose completion enabled it — Σ(Wait+Duration) over the segments equals
// total.
func (t *Trace) CriticalPath() ([]PathSegment, sim.Time) {
	if t == nil || t.Root == nil {
		return nil, 0
	}
	byID := make(map[SpanID]*Span, len(t.Spans))
	var terminal *Span
	for _, s := range t.Spans {
		byID[s.ID] = s
		if s == t.Root {
			continue
		}
		if terminal == nil ||
			s.End > terminal.End ||
			(s.End == terminal.End && s.Start > terminal.Start) ||
			(s.End == terminal.End && s.Start == terminal.Start && s.ID > terminal.ID) {
			terminal = s
		}
	}
	total := t.Root.Duration()
	if terminal == nil {
		return nil, total
	}
	// Walk back to the root, guarding against malformed parent cycles.
	var chain []*Span
	seen := make(map[SpanID]bool)
	for cur := terminal; cur != nil && cur != t.Root && !seen[cur.ID]; cur = byID[cur.Parent] {
		seen[cur.ID] = true
		chain = append(chain, cur)
	}
	segs := make([]PathSegment, 0, len(chain))
	prevEnd := t.Root.Start
	for i := len(chain) - 1; i >= 0; i-- {
		s := chain[i]
		wait := s.Start - prevEnd
		if wait < 0 {
			wait = 0
		}
		segs = append(segs, PathSegment{Span: s, Wait: wait})
		prevEnd = s.End
	}
	return segs, total
}

// OnCriticalPath returns the set of span IDs on the trace's critical
// path (excluding the root).
func (t *Trace) OnCriticalPath() map[SpanID]bool {
	segs, _ := t.CriticalPath()
	out := make(map[SpanID]bool, len(segs))
	for _, seg := range segs {
		out[seg.Span.ID] = true
	}
	return out
}

// LayerStat is the virtual time one layer contributed to a critical path
// (or to a set of them). Wait before a span is attributed to the span's
// own layer: the gap exists because that layer had not yet served it.
type LayerStat struct {
	Layer Layer    `json:"layer"`
	Time  sim.Time `json:"time"`
	Spans int      `json:"spans"`
	Share float64  `json:"share"` // fraction of total critical-path time
}

// LayerBreakdown attributes the trace's critical-path time to layers, in
// canonical layer order (layers with no contribution omitted).
func (t *Trace) LayerBreakdown() []LayerStat {
	segs, total := t.CriticalPath()
	acc := make(map[Layer]*LayerStat)
	for _, seg := range segs {
		ls := acc[seg.Span.Layer]
		if ls == nil {
			ls = &LayerStat{Layer: seg.Span.Layer}
			acc[seg.Span.Layer] = ls
		}
		ls.Time += seg.Wait + seg.Span.Duration()
		ls.Spans++
	}
	var out []LayerStat
	for _, l := range CanonicalLayers() {
		if ls, ok := acc[l]; ok {
			if total > 0 {
				ls.Share = float64(ls.Time) / float64(total)
			}
			out = append(out, *ls)
		}
	}
	return out
}

// TenantStat summarizes end-to-end request latency for one tenant across
// traces: requests whose root span carries a "tenant" attribute are
// grouped by it, so a shared continuum's per-stakeholder p50/p95/p99 fall
// straight out of the trace store.
type TenantStat struct {
	Tenant string  `json:"tenant"`
	Count  int64   `json:"count"`
	Errors int64   `json:"errors"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
}

// TenantSummary aggregates per-tenant request-latency percentiles over
// finished traces, sorted by tenant name. Only successful requests
// contribute latency samples; failed roots count under Errors. Traces
// whose root has no tenant attribute are skipped.
func TenantSummary(traces []*Trace) []TenantStat {
	hists := make(map[string]*telemetry.Histogram)
	errs := make(map[string]int64)
	for _, tr := range traces {
		if tr == nil || tr.Root == nil {
			continue
		}
		tenant := tr.Root.Attrs["tenant"]
		if tenant == "" {
			continue
		}
		if tr.Root.Error != "" {
			errs[tenant]++
			if hists[tenant] == nil {
				hists[tenant] = telemetry.NewHistogram(0)
			}
			continue
		}
		h := hists[tenant]
		if h == nil {
			h = telemetry.NewHistogram(0)
			hists[tenant] = h
		}
		h.Observe(tr.Root.Duration().Seconds() * 1e3)
	}
	tenants := make([]string, 0, len(hists))
	for tn := range hists {
		tenants = append(tenants, tn)
	}
	sort.Strings(tenants)
	out := make([]TenantStat, 0, len(tenants))
	for _, tn := range tenants {
		snap := hists[tn].Snapshot()
		out = append(out, TenantStat{
			Tenant: tn,
			Count:  snap.Count + errs[tn],
			Errors: errs[tn],
			MeanMs: snap.Mean,
			P50Ms:  snap.P50,
			P95Ms:  snap.P95,
			P99Ms:  snap.P99,
		})
	}
	return out
}

// NameStat summarizes span durations for one span name across traces.
type NameStat struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
}

// Summary aggregates attribution over a set of finished traces: total
// critical-path time per layer and duration percentiles per span name.
type Summary struct {
	Traces int         `json:"traces"`
	Spans  int         `json:"spans"`
	Layers []LayerStat `json:"layers"`
	Names  []NameStat  `json:"names"`
}

// Summarize aggregates the traces. Layers appear in canonical order,
// span names alphabetically, so the output is deterministic for
// deterministic inputs.
func Summarize(traces []*Trace) *Summary {
	sum := &Summary{Traces: len(traces)}
	layerAcc := make(map[Layer]*LayerStat)
	hists := make(map[string]*telemetry.Histogram)
	var totalPath sim.Time
	for _, tr := range traces {
		sum.Spans += len(tr.Spans)
		for _, ls := range tr.LayerBreakdown() {
			acc := layerAcc[ls.Layer]
			if acc == nil {
				acc = &LayerStat{Layer: ls.Layer}
				layerAcc[ls.Layer] = acc
			}
			acc.Time += ls.Time
			acc.Spans += ls.Spans
			totalPath += ls.Time
		}
		for _, s := range tr.Spans {
			h := hists[s.Name]
			if h == nil {
				h = telemetry.NewHistogram(0)
				hists[s.Name] = h
			}
			h.Observe(s.Duration().Seconds() * 1e3)
		}
	}
	for _, l := range CanonicalLayers() {
		if acc, ok := layerAcc[l]; ok {
			if totalPath > 0 {
				acc.Share = float64(acc.Time) / float64(totalPath)
			}
			sum.Layers = append(sum.Layers, *acc)
		}
	}
	names := make([]string, 0, len(hists))
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		snap := hists[name].Snapshot()
		sum.Names = append(sum.Names, NameStat{
			Name:   name,
			Count:  snap.Count,
			MeanMs: snap.Mean,
			P50Ms:  snap.P50,
			P95Ms:  snap.P95,
			P99Ms:  snap.P99,
		})
	}
	return sum
}
