package trace

import (
	"fmt"
	"sort"
	"strings"

	"myrtus/internal/sim"
)

// RenderTree renders the trace as an indented span tree. Children are
// ordered by start time (ties by span ID); spans on the critical path
// are marked with '*'. Offsets are relative to the root span's start.
func RenderTree(t *Trace) string {
	if t == nil || t.Root == nil {
		return "(empty trace)\n"
	}
	children := make(map[SpanID][]*Span)
	for _, s := range t.Spans {
		if s == t.Root {
			continue
		}
		children[s.Parent] = append(children[s.Parent], s)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].Start != kids[j].Start {
				return kids[i].Start < kids[j].Start
			}
			return kids[i].ID < kids[j].ID
		})
	}
	crit := t.OnCriticalPath()

	var b strings.Builder
	fmt.Fprintf(&b, "trace %s  %s  total=%v  spans=%d\n",
		t.ID, t.Root.Name, t.Root.Duration(), len(t.Spans))
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		mark := " "
		if crit[s.ID] {
			mark = "*"
		}
		line := fmt.Sprintf("%s %s%s [%s] +%v %v",
			mark, strings.Repeat("  ", depth), s.Name, s.Layer,
			s.Start-t.Root.Start, s.Duration())
		if s.Error != "" {
			line += "  ERROR: " + s.Error
		}
		b.WriteString(line + "\n")
		for _, kid := range children[s.ID] {
			walk(kid, depth+1)
		}
	}
	walk(t.Root, 0)
	return b.String()
}

// RenderCriticalPath renders critical-path segments as one line per hop
// with wait and service time, ending with the total and the fraction of
// the end-to-end latency the path explains.
func RenderCriticalPath(segs []PathSegment, total sim.Time) string {
	var b strings.Builder
	b.WriteString("critical path:\n")
	var explained sim.Time
	for _, seg := range segs {
		explained += seg.Wait + seg.Span.Duration()
		fmt.Fprintf(&b, "  %-32s [%-7s] wait=%-10v serve=%v\n",
			seg.Span.Name, seg.Span.Layer, seg.Wait, seg.Span.Duration())
	}
	share := 0.0
	if total > 0 {
		share = float64(explained) / float64(total)
	}
	fmt.Fprintf(&b, "  path=%v of total=%v (%.1f%%)\n", explained, total, share*100)
	return b.String()
}

// RenderSummary renders the cross-trace summary: a per-layer breakdown
// table followed by per-span-name percentiles.
func RenderSummary(s *Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace summary: %d traces, %d spans\n", s.Traces, s.Spans)
	b.WriteString("per-layer critical-path breakdown:\n")
	fmt.Fprintf(&b, "  %-8s %-14s %6s %7s\n", "layer", "time", "spans", "share")
	for _, ls := range s.Layers {
		fmt.Fprintf(&b, "  %-8s %-14v %6d %6.1f%%\n", ls.Layer, ls.Time, ls.Spans, ls.Share*100)
	}
	b.WriteString("per-span latency (ms):\n")
	fmt.Fprintf(&b, "  %-32s %6s %9s %9s %9s %9s\n", "span", "count", "mean", "p50", "p95", "p99")
	for _, ns := range s.Names {
		fmt.Fprintf(&b, "  %-32s %6d %9.3f %9.3f %9.3f %9.3f\n",
			ns.Name, ns.Count, ns.MeanMs, ns.P50Ms, ns.P95Ms, ns.P99Ms)
	}
	return b.String()
}
