// Package trace implements virtual-time distributed tracing across the
// MYRTUS continuum. A request that crosses a device, the network fabric,
// the MQTT-style broker, a cluster scheduler, and a MIRTO decision loop
// is recorded as one trace: a tree of spans stamped in virtual time from
// the owning sim.Engine, so two seeded runs produce bit-identical traces.
//
// On top of the raw spans the package provides the analysis the MIRTO
// agents need for latency attribution: per-trace critical-path
// extraction, per-layer breakdowns, and cross-trace percentile summaries
// (analyze.go), human-readable rendering for the CLIs (render.go), and
// export into telemetry registries and the Knowledge Base (export.go).
//
// Sampling is head-based and deterministic: the tracer keeps every Nth
// started trace, decided at trace start from a monotonic counter rather
// than a random draw, so sampled runs are reproducible too.
package trace

import (
	"fmt"
	"sync"

	"myrtus/internal/sim"
)

// TraceID identifies one trace; SpanID one span within it. Both are
// generated from deterministic counters.
type (
	TraceID string
	SpanID  string
)

// Layer names the continuum layer a span is attributed to in breakdowns.
type Layer string

// The five attribution layers of the continuum.
const (
	LayerDevice  Layer = "device"  // operating-point execution on a device
	LayerNetwork Layer = "network" // fabric transfers
	LayerBroker  Layer = "broker"  // pub/sub fan-out
	LayerCluster Layer = "cluster" // pod scheduling
	LayerAgent   Layer = "agent"   // MIRTO / MAPE-K decisions and request roots
)

// CanonicalLayers returns the fixed layer order used in breakdown tables.
func CanonicalLayers() []Layer {
	return []Layer{LayerDevice, LayerNetwork, LayerBroker, LayerCluster, LayerAgent}
}

// SpanContext is the propagated reference to a span: it travels through
// network options, device work units, and broker publishes. The zero
// value means "not traced" and makes every tracing call a no-op.
type SpanContext struct {
	Trace TraceID `json:"traceId"`
	Span  SpanID  `json:"spanId"`
}

// Valid reports whether the context references a live sampled trace.
func (c SpanContext) Valid() bool { return c.Trace != "" && c.Span != "" }

// Span is one timed operation within a trace. Exported fields are the
// wire format served by the MIRTO agent; a span is immutable once ended.
// All Span methods are nil-safe so unsampled call sites stay branch-free.
type Span struct {
	TraceID TraceID           `json:"traceId"`
	ID      SpanID            `json:"id"`
	Parent  SpanID            `json:"parent,omitempty"`
	Name    string            `json:"name"`
	Layer   Layer             `json:"layer"`
	Start   sim.Time          `json:"start"`
	End     sim.Time          `json:"end"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Error   string            `json:"error,omitempty"`

	tracer *Tracer
	ended  bool
}

// Context returns the propagatable reference to this span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{Trace: s.TraceID, Span: s.ID}
}

// Duration is End-Start (0 for a nil or unfinished span).
func (s *Span) Duration() sim.Time {
	if s == nil || s.End < s.Start {
		return 0
	}
	return s.End - s.Start
}

// SetAttr records a key/value attribute. No-op after EndAt.
func (s *Span) SetAttr(k, v string) {
	if s == nil || s.ended {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
}

// SetError stamps the span with a failure. No-op for nil errors.
func (s *Span) SetError(err error) {
	if s == nil || s.ended || err == nil {
		return
	}
	s.Error = err.Error()
}

// EndNow finishes the span at the engine's current virtual time.
func (s *Span) EndNow() {
	if s == nil {
		return
	}
	s.EndAt(s.tracer.engine.Now())
}

// EndAt finishes the span at an explicit virtual time (clamped to Start)
// and records it into its trace. Ending twice is a no-op; after EndAt the
// span must not be mutated — readers may hold it concurrently.
func (s *Span) EndAt(at sim.Time) {
	if s == nil || s.ended {
		return
	}
	if at < s.Start {
		at = s.Start
	}
	s.End = at
	s.ended = true
	s.tracer.record(s)
}

// Trace is the recorded span set of one request (or one standalone
// decision). Spans appear in record order; Root is the span that opened
// the trace and whose end completes it.
type Trace struct {
	ID    TraceID `json:"id"`
	Root  *Span   `json:"-"`
	Spans []*Span `json:"spans"`

	complete bool
}

// Complete reports whether the root span has ended.
func (t *Trace) Complete() bool { return t != nil && t.complete }

// FromSpans reconstructs a Trace from a decoded span set (the shape
// served by GET /v1/traces/{id}): the unique parentless span is the root.
func FromSpans(spans []*Span) (*Trace, error) {
	var root *Span
	for _, s := range spans {
		if s.Parent != "" {
			continue
		}
		if root != nil {
			return nil, fmt.Errorf("trace: multiple root spans (%s, %s)", root.ID, s.ID)
		}
		root = s
	}
	if root == nil {
		return nil, fmt.Errorf("trace: no root span among %d spans", len(spans))
	}
	return &Trace{ID: root.TraceID, Root: root, Spans: spans, complete: true}, nil
}

// Tracer mints spans stamped from one engine's virtual clock and retains
// the most recent finished traces in a bounded ring. It is safe for
// concurrent use: the simulation goroutine records while control-plane
// readers (the agent REST API) snapshot.
type Tracer struct {
	engine *sim.Engine

	mu       sync.Mutex
	spanSeq  uint64
	traceSeq uint64
	every    int // sample 1-in-every roots; 0 disables tracing
	max      int // finished traces retained
	traces   map[TraceID]*Trace
	order    []TraceID // finished traces, completion order

	rootsStarted  uint64
	rootsSampled  uint64
	spansRecorded uint64
	spansDropped  uint64
}

// NewTracer returns a tracer over the engine's clock that samples every
// trace and retains the last 256 finished ones.
func NewTracer(engine *sim.Engine) *Tracer {
	return &Tracer{
		engine: engine,
		every:  1,
		max:    256,
		traces: make(map[TraceID]*Trace),
	}
}

// SetSampleEvery configures deterministic head sampling: keep one of
// every n started traces (1 = all). n <= 0 disables tracing entirely,
// which is the zero-overhead production setting for the hot path.
func (t *Tracer) SetSampleEvery(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.every = n
	t.mu.Unlock()
}

// SampleEvery returns the sampling modulus (0 = disabled).
func (t *Tracer) SampleEvery() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.every
}

// SetMaxTraces bounds the finished-trace ring (minimum 1).
func (t *Tracer) SetMaxTraces(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.max = n
	t.evictLocked()
	t.mu.Unlock()
}

// StartRoot opens a new trace if the head sampler elects it, returning
// the root span (nil when unsampled — safe to use anyway).
func (t *Tracer) StartRoot(name string, layer Layer) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rootsStarted++
	t.traceSeq++
	if t.every <= 0 || (t.traceSeq-1)%uint64(t.every) != 0 {
		return nil
	}
	t.rootsSampled++
	id := TraceID(fmt.Sprintf("t%06d", t.traceSeq))
	t.spanSeq++
	sp := &Span{
		tracer:  t,
		TraceID: id,
		ID:      SpanID(fmt.Sprintf("s%06d", t.spanSeq)),
		Name:    name,
		Layer:   layer,
		Start:   t.engine.Now(),
	}
	t.traces[id] = &Trace{ID: id, Root: sp}
	return sp
}

// StartSpan opens a child span at the current virtual time. An invalid
// parent (unsampled trace) yields nil.
func (t *Tracer) StartSpan(parent SpanContext, name string, layer Layer) *Span {
	if t == nil {
		return nil
	}
	return t.StartSpanAt(parent, name, layer, t.engine.Now())
}

// StartSpanAt opens a child span with an explicit virtual start time —
// used when the start (e.g. a stage's ready time) precedes the call.
func (t *Tracer) StartSpanAt(parent SpanContext, name string, layer Layer, at sim.Time) *Span {
	if t == nil || !parent.Valid() {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.traces[parent.Trace]; !ok {
		t.spansDropped++ // trace evicted or never sampled
		return nil
	}
	t.spanSeq++
	return &Span{
		tracer:  t,
		TraceID: parent.Trace,
		ID:      SpanID(fmt.Sprintf("s%06d", t.spanSeq)),
		Parent:  parent.Span,
		Name:    name,
		Layer:   layer,
		Start:   at,
	}
}

func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.traces[s.TraceID]
	if !ok {
		t.spansDropped++
		return
	}
	tr.Spans = append(tr.Spans, s)
	t.spansRecorded++
	if s == tr.Root {
		tr.complete = true
		t.order = append(t.order, tr.ID)
		t.evictLocked()
	}
}

func (t *Tracer) evictLocked() {
	for len(t.order) > t.max {
		delete(t.traces, t.order[0])
		t.order = t.order[1:]
	}
}

// Traces returns the finished traces in completion order. Each returned
// Trace is a snapshot header with a copied span slice, so late spans
// appended afterwards do not race with the reader.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Trace, 0, len(t.order))
	for _, id := range t.order {
		tr := t.traces[id]
		if tr == nil {
			continue
		}
		out = append(out, &Trace{
			ID:       tr.ID,
			Root:     tr.Root,
			Spans:    append([]*Span(nil), tr.Spans...),
			complete: tr.complete,
		})
	}
	return out
}

// Find returns a snapshot of the identified trace (finished or active).
func (t *Tracer) Find(id TraceID) (*Trace, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.traces[id]
	if !ok {
		return nil, false
	}
	return &Trace{
		ID:       tr.ID,
		Root:     tr.Root,
		Spans:    append([]*Span(nil), tr.Spans...),
		complete: tr.complete,
	}, true
}

// Info is one row of the trace listing served by GET /v1/traces.
type Info struct {
	ID        TraceID  `json:"id"`
	Name      string   `json:"name"`
	Start     sim.Time `json:"start"`
	LatencyMs float64  `json:"latencyMs"`
	Spans     int      `json:"spans"`
	Error     string   `json:"error,omitempty"`
}

// Infos lists the finished traces, completion-ordered.
func (t *Tracer) Infos() []Info {
	var out []Info
	for _, tr := range t.Traces() {
		out = append(out, Info{
			ID:        tr.ID,
			Name:      tr.Root.Name,
			Start:     tr.Root.Start,
			LatencyMs: tr.Root.Duration().Seconds() * 1e3,
			Spans:     len(tr.Spans),
			Error:     tr.Root.Error,
		})
	}
	return out
}

// Stats are cumulative tracer counters.
type Stats struct {
	RootsStarted  uint64
	RootsSampled  uint64
	SpansRecorded uint64
	SpansDropped  uint64
	Finished      int
}

// Stats returns cumulative counters.
func (t *Tracer) Stats() Stats {
	if t == nil {
		return Stats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return Stats{
		RootsStarted:  t.rootsStarted,
		RootsSampled:  t.rootsSampled,
		SpansRecorded: t.spansRecorded,
		SpansDropped:  t.spansDropped,
		Finished:      len(t.order),
	}
}
