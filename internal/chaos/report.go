package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"myrtus/internal/mirto"
	"myrtus/internal/network"
	"myrtus/internal/sim"
	"myrtus/internal/telemetry"
	"myrtus/internal/trace"
)

// Report is the per-scenario resilience report: request-level outcomes,
// incident MTTR, detector and loop activity, and recovery-time
// attribution. Render is deterministic — byte-identical across runs with
// the same (scenario, seed, config) — so reports double as regression
// fixtures.
type Report struct {
	Scenario  string
	Seed      uint64
	MAPEK     bool
	Duration  sim.Time
	TickEvery sim.Time

	// Request outcomes: OK on the first attempt, Recovered via retries,
	// Lost after exhausting them. AttemptFailures counts every failed
	// attempt, including ones later recovered.
	Total, OK, Recovered, Lost int
	AttemptFailures            int

	// Incidents and their repair times: an incident spans the first
	// failed attempt to the next success that post-dates it.
	Incidents   int
	MTTRSamples []sim.Time

	// Failure-detector counters.
	Suspected, Confirmed, DetectorRecovered int

	// MAPE-K loop activity (zero in the control run).
	LoopIterations, Replans, Boosts, ExecErrors int

	// Replan-mode attribution: incremental delta splices vs full
	// renegotiations, with each replan's deterministic planning cost in
	// candidates scored (wall-clock-free, so renders stay byte-identical
	// per seed).
	DeltaReplans, FullReplans int
	DeltaCost, FullCost       []int

	// Circuit-breaker activity (zero in the control run, which carries no
	// breaker set): transitions to open and requests fast-failed while
	// open or probing.
	BreakerOpens, BreakerFastFails int64

	Fabric network.FabricStats

	// EventsApplied counts executed fault events; EventErrors records
	// events that could not be applied (still deterministic).
	EventsApplied int
	EventErrors   []string

	// Stateful-state section (set only when Config.Stateful). Checkpoint
	// is false in the no-checkpoint control arm.
	Stateful   bool
	Checkpoint bool
	// StateApplied counts state updates applied across stateful stages;
	// DedupHits retried re-executions the dedup window absorbed (each one
	// a prevented double-apply); Invalidations device-loss events on
	// state cells; CleanMigrations live state moves under replans.
	StateApplied, DedupHits        uint64
	Invalidations, CleanMigrations uint64
	// RPOItems is the number of applied state updates recovery could not
	// bring back (the recovery-point objective; 0 = no state lost).
	RPOItems uint64
	// JournalReplayed counts journal entries folded in during restores;
	// JournalEvicted entries that aged out of the bounded journal.
	JournalReplayed, JournalEvicted uint64
	// RTOSamples are per-incident crash→state-restored latencies.
	RTOSamples []sim.Time
	// Ckpt carries the checkpointer's counters (zero in the control arm).
	Ckpt mirto.CheckpointStats
	// UnrestoredCells counts cells still lost when the run drained.
	UnrestoredCells int
	// ComparedCells/DivergentCells are the state-divergence check against
	// the fault-free same-seed reference: any cell whose canonical state
	// bytes differ is listed.
	ComparedCells  int
	DivergentCells []string

	// Migration section (set when the scenario carried DrainDevice
	// events): per-drain pre-copy/catch-up/flip traces, the count of
	// plan splices attributed to drains, and the state cells flipped to
	// a new owner without a restore.
	Drains         []*mirto.DrainReport
	DrainSplices   int
	LiveMigrations uint64

	// Gray-failure section (set when Config.Health): the peer-relative
	// health monitor's counters and per-device end state, plus the
	// fault-injection→first-escalation detection lags.
	HealthOn         bool
	HedgeOnly        bool
	Health           mirto.HealthStats
	DeviceHealth     []mirto.DeviceHealth
	DetectionSamples []sim.Time

	// Fencing section (set only when Config.Fencing): the fencing
	// ledger's counters plus the state store's count of stale-token
	// writes it rejected. Absent from renders of non-fenced runs, so
	// existing scenario outputs stay byte-identical.
	FencingOn    bool
	Fence        mirto.FenceStats
	FencedWrites uint64

	// Latencies are per-request submit→completion times of every request
	// that eventually succeeded (retry backoffs included).
	Latencies []sim.Time

	// Registry exposes the headline counters as telemetry for export.
	Registry *telemetry.Registry

	// fingerprints is the canonical per-cell state at the end of the run,
	// compared between the chaos and fault-free arms.
	fingerprints map[string][]byte

	attribution map[trace.Layer]*trace.LayerStat
}

// Availability is the fraction of requests that eventually succeeded.
func (r *Report) Availability() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.OK+r.Recovered) / float64(r.Total)
}

// MTTR returns the p50 and p95 of the incident repair-time samples
// (0, 0 when no incident closed).
func (r *Report) MTTR() (p50, p95 sim.Time) { return quantiles(r.MTTRSamples) }

// RTO returns the p50 and p95 of the crash→state-restored latency
// samples (0, 0 when no restore completed).
func (r *Report) RTO() (p50, p95 sim.Time) { return quantiles(r.RTOSamples) }

func quantiles(samples []sim.Time) (p50, p95 sim.Time) {
	n := len(samples)
	if n == 0 {
		return 0, 0
	}
	s := make([]sim.Time, n)
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	q := func(f float64) sim.Time {
		i := int(f * float64(n))
		if i >= n {
			i = n - 1
		}
		return s[i]
	}
	return q(0.50), q(0.95)
}

// LatencyQuantiles returns the p50/p95/p99 of the successful-request
// latency samples (0s when none succeeded).
func (r *Report) LatencyQuantiles() (p50, p95, p99 sim.Time) {
	n := len(r.Latencies)
	if n == 0 {
		return 0, 0, 0
	}
	s := make([]sim.Time, n)
	copy(s, r.Latencies)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	q := func(f float64) sim.Time {
		i := int(f * float64(n))
		if i >= n {
			i = n - 1
		}
		return s[i]
	}
	return q(0.50), q(0.95), q(0.99)
}

func intQuantiles(samples []int) (p50, p95 int) {
	n := len(samples)
	if n == 0 {
		return 0, 0
	}
	s := make([]int, n)
	copy(s, samples)
	sort.Ints(s)
	q := func(f float64) int {
		i := int(f * float64(n))
		if i >= n {
			i = n - 1
		}
		return s[i]
	}
	return q(0.50), q(0.95)
}

// Attribution returns the accumulated recovery critical-path time per
// layer, in canonical layer order.
func (r *Report) Attribution() []trace.LayerStat {
	var total sim.Time
	for _, ls := range r.attribution {
		total += ls.Time
	}
	var out []trace.LayerStat
	for _, l := range trace.CanonicalLayers() {
		ls, ok := r.attribution[l]
		if !ok {
			continue
		}
		cp := *ls
		if total > 0 {
			cp.Share = float64(cp.Time) / float64(total)
		}
		out = append(out, cp)
	}
	return out
}

func dur(t sim.Time) string { return time.Duration(t).String() }

// PauseSamples flattens every per-app intake-pause duration across the
// report's drains (the unavailability a planned drain did impose).
func (r *Report) PauseSamples() []sim.Time {
	var out []sim.Time
	for _, d := range r.Drains {
		for _, p := range d.Pauses {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ticks expresses a duration in sensing ticks — the unit the drain
// pause bound is stated in.
func (r *Report) ticks(t sim.Time) float64 {
	if r.TickEvery <= 0 {
		return 0
	}
	return float64(t) / float64(r.TickEvery)
}

// Render formats the report as deterministic text.
func (r *Report) Render() string {
	var b strings.Builder
	mode := "off"
	if r.MAPEK {
		mode = "on"
	}
	fmt.Fprintf(&b, "chaos report: scenario=%s seed=%d mapek=%s duration=%s\n",
		r.Scenario, r.Seed, mode, dur(r.Duration))
	fmt.Fprintf(&b, "  requests:  total=%d ok=%d recovered=%d lost=%d (attempt failures=%d)\n",
		r.Total, r.OK, r.Recovered, r.Lost, r.AttemptFailures)
	fmt.Fprintf(&b, "  availability: %.2f%%\n", 100*r.Availability())
	lp50, lp95, lp99 := r.LatencyQuantiles()
	fmt.Fprintf(&b, "  latency:   p50=%s p95=%s p99=%s n=%d\n",
		dur(lp50), dur(lp95), dur(lp99), len(r.Latencies))
	p50, p95 := r.MTTR()
	fmt.Fprintf(&b, "  incidents: %d closed=%d mttr_p50=%s mttr_p95=%s\n",
		r.Incidents, len(r.MTTRSamples), dur(p50), dur(p95))
	fmt.Fprintf(&b, "  detector:  suspected=%d confirmed=%d recovered=%d\n",
		r.Suspected, r.Confirmed, r.DetectorRecovered)
	fmt.Fprintf(&b, "  loop:      iterations=%d replans=%d boosts=%d exec_errors=%d\n",
		r.LoopIterations, r.Replans, r.Boosts, r.ExecErrors)
	dp50, dp95 := intQuantiles(r.DeltaCost)
	fp50, fp95 := intQuantiles(r.FullCost)
	fmt.Fprintf(&b, "  replan_mode: delta=%d full=%d delta_cost_p50=%d delta_cost_p95=%d full_cost_p50=%d full_cost_p95=%d (cost=candidates scored)\n",
		r.DeltaReplans, r.FullReplans, dp50, dp95, fp50, fp95)
	fmt.Fprintf(&b, "  breakers:  opens=%d fast_fails=%d\n",
		r.BreakerOpens, r.BreakerFastFails)
	fmt.Fprintf(&b, "  fabric:    delivered=%d lost=%d retries=%d queue_drops=%d backoff=%s\n",
		r.Fabric.Delivered, r.Fabric.Lost, r.Fabric.Retries, r.Fabric.QueueDrops, dur(r.Fabric.BackoffTime))
	fmt.Fprintf(&b, "  faults:    applied=%d errors=%d\n", r.EventsApplied, len(r.EventErrors))
	for _, e := range r.EventErrors {
		fmt.Fprintf(&b, "    ! %s\n", e)
	}
	if r.Stateful {
		ck := "on"
		if !r.Checkpoint {
			ck = "off"
		}
		fmt.Fprintf(&b, "  state:     applied=%d dedup_hits=%d invalidations=%d clean_migrations=%d unrestored=%d (checkpoint=%s)\n",
			r.StateApplied, r.DedupHits, r.Invalidations, r.CleanMigrations, r.UnrestoredCells, ck)
		rp50, rp95 := r.RTO()
		fmt.Fprintf(&b, "  recovery:  rpo_items=%d rto_p50=%s rto_p95=%s restores=%d journal_replayed=%d journal_evicted=%d\n",
			r.RPOItems, dur(rp50), dur(rp95), len(r.RTOSamples), r.JournalReplayed, r.JournalEvicted)
		fmt.Fprintf(&b, "  checkpoint: fulls=%d deltas=%d skipped=%d bytes=%d send_failures=%d restores=%d journal_only=%d restore_failures=%d gc_keys=%d\n",
			r.Ckpt.Fulls, r.Ckpt.Deltas, r.Ckpt.Skipped, r.Ckpt.BytesSent, r.Ckpt.SendFailures,
			r.Ckpt.Restores, r.Ckpt.JournalOnlyRestores, r.Ckpt.RestoreFailures, r.Ckpt.KeysDeleted)
		fmt.Fprintf(&b, "  divergence: compared=%d divergent=%d\n", r.ComparedCells, len(r.DivergentCells))
		for _, cell := range r.DivergentCells {
			fmt.Fprintf(&b, "    ! state diverged: %s\n", cell)
		}
	}
	if len(r.Drains) > 0 {
		pp50, pp95 := quantiles(r.PauseSamples())
		fmt.Fprintf(&b, "  migration: drains=%d splices=%d live_migrations=%d pause_p50=%s pause_p95=%s (%.2f ticks)\n",
			len(r.Drains), r.DrainSplices, r.LiveMigrations, dur(pp50), dur(pp95), r.ticks(pp95))
		for _, d := range r.Drains {
			status := "completed"
			if d.Aborted {
				status = "aborted: " + d.Reason
			}
			fmt.Fprintf(&b, "    drain %s: took=%s moved=%d %s\n",
				d.Device, dur(d.Finished-d.Started), d.Moved, status)
			for _, sm := range d.Stages {
				fmt.Fprintf(&b, "      %s/%s %s->%s flipped=%v rounds=%d precopy_bytes=%d delta_bytes=%d residuals=%v final_delta=%d\n",
					sm.App, sm.Stage, sm.From, sm.To, sm.Flipped, sm.Rounds,
					sm.PrecopyBytes, sm.DeltaBytes, sm.Residuals, sm.FinalDelta)
			}
			apps := make([]string, 0, len(d.Pauses))
			for app := range d.Pauses {
				apps = append(apps, app)
			}
			sort.Strings(apps)
			for _, app := range apps {
				fmt.Fprintf(&b, "      pause %s: %s (%.2f ticks) parked=%d\n",
					app, dur(d.Pauses[app]), r.ticks(d.Pauses[app]), d.Parked[app])
			}
		}
	}
	if r.HealthOn {
		hmode := "quarantine"
		if r.HedgeOnly {
			hmode = "hedge-only"
		}
		dp50, dp95 := quantiles(r.DetectionSamples)
		fmt.Fprintf(&b, "  health:    suspects=%d quarantines=%d requarantines=%d probations=%d restores=%d probes=%d detect_p50=%s detect_p95=%s (mode=%s)\n",
			r.Health.Suspects, r.Health.Quarantines, r.Health.Requarantines,
			r.Health.Probations, r.Health.Restores, r.Health.Probes,
			dur(dp50), dur(dp95), hmode)
		overhead := 0.0
		if r.Health.Dispatches > 0 {
			overhead = 100 * float64(r.Health.HedgesFired) / float64(r.Health.Dispatches)
		}
		fmt.Fprintf(&b, "  hedges:    dispatches=%d fired=%d won=%d suppressed=%d denied=%d failovers=%d steered=%d overhead=%.2f%%\n",
			r.Health.Dispatches, r.Health.HedgesFired, r.Health.HedgesWon,
			r.Health.HedgesSuppressed, r.Health.HedgesDenied, r.Health.Failovers,
			r.Health.Steered, overhead)
		for _, dh := range r.DeviceHealth {
			if dh.State == mirto.HealthHealthy.String() && dh.Score <= 1.5 {
				continue // only the interesting rows; healthy-at-nominal is the default
			}
			fmt.Fprintf(&b, "    device %s (%s): state=%s score=%.2f ewma=%.3f peer_median=%.3f samples=%d\n",
				dh.Device, dh.Class, dh.State, dh.Score, dh.EWMA, dh.PeerMedian, dh.Samples)
		}
	}
	if r.FencingOn {
		fmt.Fprintf(&b, "  fencing:   tokens_minted=%d fenced_writes=%d fenced_checkpoints=%d fenced_migrates=%d epoch_rejects=%d self_demotions=%d owner_fences=%d\n",
			r.Fence.TokensMinted, r.FencedWrites, r.Fence.FencedCheckpoints,
			r.Fence.FencedMigrates, r.Fence.PlanEpochRejects,
			r.Fence.SelfDemotions, r.Fence.OwnerFences)
		fmt.Fprintf(&b, "  reconcile: reconciliations=%d journal_discards=%d resync_bytes=%d\n",
			r.Fence.Reconciliations, r.Fence.JournalDiscards, r.Fence.ResyncBytes)
	}
	if att := r.Attribution(); len(att) > 0 {
		fmt.Fprintf(&b, "  recovery attribution (critical path of recovering requests):\n")
		for _, ls := range att {
			fmt.Fprintf(&b, "    %-8s %6.1f%%  time=%s spans=%d\n",
				ls.Layer, 100*ls.Share, dur(ls.Time), ls.Spans)
		}
	}
	return b.String()
}
