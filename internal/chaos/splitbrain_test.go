package chaos

import (
	"strings"
	"testing"
)

// TestSplitBrainExperimentHoldsItsBars runs the three-arm experiment
// and demands every bar holds: baseline fences nothing, the defense
// arm lets zero zombie writes land, zero double-applies through,
// epoch-rejects the superseded plan, self-demotes the stranded
// checkpointer, reconciles at heal, and stays byte-identical to the
// fault-free reference; the unfenced control arm measurably diverges.
func TestSplitBrainExperimentHoldsItsBars(t *testing.T) {
	rep, err := RunSplitBrain(7, true)
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violated(); v != "" {
		t.Errorf("violated: %s\n%s", v, rep.Render())
	}
}

// TestSplitBrainSameSeedRunsAreByteIdentical pins the experiment —
// partition, zombie writes, epoch rejects, reconciliation, probation
// rejoin — to the deterministic-replay contract.
func TestSplitBrainSameSeedRunsAreByteIdentical(t *testing.T) {
	a, err := RunSplitBrain(3, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSplitBrain(3, true)
	if err != nil {
		t.Fatal(err)
	}
	if ra, rb := a.Render(), b.Render(); ra != rb {
		t.Errorf("same-seed renders differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", ra, rb)
	}
}

// TestSplitBrainPremises proves the scenario's setup claims: the
// stranded owner keeps heartbeating so the binary detector never fires
// in any arm, the KB really lost a minority replica, and the control-
// only invocation (-fencing=false) carries its own verdict.
func TestSplitBrainPremises(t *testing.T) {
	rep, err := RunSplitBrain(7, true)
	if err != nil {
		t.Fatal(err)
	}
	for arm, r := range map[string]*Report{
		"defense": rep.Defense, "control": rep.Control,
	} {
		if r.Suspected != 0 || r.Confirmed != 0 {
			t.Errorf("%s arm: binary detector fired (suspected=%d confirmed=%d) on a heartbeating zombie",
				arm, r.Suspected, r.Confirmed)
		}
	}
	if !rep.DefenseObs.KBPartitioned || !rep.ControlObs.KBPartitioned {
		t.Error("KB cluster was never partitioned")
	}
	if !strings.Contains(rep.Render(), "summary:") {
		t.Error("render missing summary line")
	}
	// Fencing must stay out of the no-fencing arm's render so the
	// control report is comparable with the legacy scenarios.
	if strings.Contains(rep.Control.Render(), "fencing:") {
		t.Error("no-fencing control render carries a fencing section")
	}
	if !strings.Contains(rep.Defense.Render(), "fencing:") {
		t.Error("defense render missing the fencing section")
	}

	ctl, err := RunSplitBrain(7, false)
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Baseline != nil || ctl.Defense != nil {
		t.Error("control-only mode ran fenced arms")
	}
	if v := ctl.Violated(); v != "" {
		t.Errorf("control-only verdict: %s", v)
	}
}
