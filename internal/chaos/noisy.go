package chaos

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"myrtus/internal/mirto"
	"myrtus/internal/sim"
	"myrtus/internal/tenant"
)

// The noisy-neighbor scenario: the fault injected is not a crash or a
// partition but another stakeholder. Two tenants share the continuum;
// mid-run the aggressor tenant's load flash-crowds to a multiple of
// its admission budget while the victim keeps its steady, in-budget
// rate. Self-healing here is isolation: per-tenant budget carving and
// DRR dispatch must shed the aggressor back to its share and keep the
// victim's goodput and p95 at their solo baseline. The aggressor's app
// deliberately outranks the victim's on the Table II security axis, so
// the shared-admission control arm (-quotas=false) demonstrates the
// failure mode: priority-aware shedding alone lets a high-priority
// flood starve a lower-priority tenant.

// NoisyConfig tunes one noisy-neighbor run.
type NoisyConfig struct {
	Seed uint64
	// Quotas enables per-tenant isolation; false is the shared-admission
	// control arm.
	Quotas bool
	// Duration is the run's virtual length (default 10s).
	Duration sim.Time
	// FlashStart / FlashEnd bound the aggressor's flash crowd
	// (defaults 3s / 7s).
	FlashStart, FlashEnd sim.Time
	// FlashMult is the aggressor's flash-crowd load as a multiple of its
	// admission budget (default 4).
	FlashMult float64
	// MaxRequests bounds total submissions per tenant (default 24000).
	MaxRequests int
}

func (c NoisyConfig) withDefaults() NoisyConfig {
	if c.Duration <= 0 {
		c.Duration = 10 * sim.Second
	}
	if c.FlashStart <= 0 {
		c.FlashStart = 3 * sim.Second
	}
	if c.FlashEnd <= c.FlashStart {
		c.FlashEnd = c.FlashStart + 4*sim.Second
	}
	if c.FlashEnd > c.Duration {
		c.FlashEnd = c.Duration
	}
	if c.FlashMult <= 0 {
		c.FlashMult = 4
	}
	if c.MaxRequests <= 0 {
		c.MaxRequests = 24000
	}
	return c
}

// noisyWindow accumulates one tenant's outcomes over one time window.
type noisyWindow struct {
	Submitted int64
	Good      int64
	Late      int64
	Failed    int64
	Shed      int64
	lats      []float64
}

// GoodputFrac is the in-deadline completion fraction of submitted load.
func (w *noisyWindow) GoodputFrac() float64 {
	if w.Submitted == 0 {
		return 0
	}
	return float64(w.Good) / float64(w.Submitted)
}

func (w *noisyWindow) p95() float64 {
	if len(w.lats) == 0 {
		return 0
	}
	sort.Float64s(w.lats)
	i := int(0.95 * float64(len(w.lats)))
	if i >= len(w.lats) {
		i = len(w.lats) - 1
	}
	return w.lats[i]
}

// NoisyTenantResult is one tenant's full-run and flash-window outcome.
type NoisyTenantResult struct {
	Tenant      string
	OfferedRPS  float64 // steady rate (outside the flash, for the aggressor)
	Overall     noisyWindow
	Flash       noisyWindow // requests submitted during the flash window
	OverallP95  float64
	FlashP95    float64
	BrownoutMax int
}

// NoisyReport is one noisy-neighbor run's outcome.
type NoisyReport struct {
	Seed        uint64
	Quotas      bool
	CapacityRPS float64
	DeadlineMs  float64
	FlashMult   float64
	FlashStartS float64
	FlashEndS   float64
	// Budgets derived from calibration (half the admission rate each).
	VictimBudgetRPS float64
	NoisyBudgetRPS  float64
	// Solo baseline: the victim with the aggressor absent.
	SoloP95Ms       float64
	SoloGoodputFrac float64
	Victim          NoisyTenantResult
	Noisy           NoisyTenantResult
	// NoisyAdmittedRPS is the aggressor's admitted (non-shed) rate during
	// the flash — with quotas it must collapse to about its budget.
	NoisyAdmittedRPS float64
}

// Violated returns "" when isolation held through the flash crowd,
// else the first violated bound.
func (r *NoisyReport) Violated() string {
	if gf := r.Victim.Flash.GoodputFrac(); gf < 0.9 {
		return fmt.Sprintf("victim goodput %.1f%% < 90%% during the flash crowd", 100*gf)
	}
	if r.SoloP95Ms > 0 && r.Victim.FlashP95 > 1.5*r.SoloP95Ms {
		return fmt.Sprintf("victim flash p95 %.2fms > 1.5x solo baseline %.2fms",
			r.Victim.FlashP95, r.SoloP95Ms)
	}
	return ""
}

// Render formats the report; byte-identical for a given seed + config.
func (r *NoisyReport) Render() string {
	var b strings.Builder
	mode := "off (shared admission, control)"
	if r.Quotas {
		mode = "on (per-tenant budgets + DRR)"
	}
	fmt.Fprintf(&b, "noisy-neighbor  seed=%d  quotas=%s\n", r.Seed, mode)
	fmt.Fprintf(&b, "capacity=%.1f req/s  deadline=%.2fms  budgets victim=%.1f noisy=%.1f req/s\n",
		r.CapacityRPS, r.DeadlineMs, r.VictimBudgetRPS, r.NoisyBudgetRPS)
	fmt.Fprintf(&b, "flash crowd: %.1fs-%.1fs at %.0fx the aggressor budget\n",
		r.FlashStartS, r.FlashEndS, r.FlashMult)
	fmt.Fprintf(&b, "victim solo: p95=%.2fms goodput=%.1f%%\n", r.SoloP95Ms, 100*r.SoloGoodputFrac)
	row := func(t *NoisyTenantResult) {
		fmt.Fprintf(&b, "%-8s steady=%.1f/s  overall: sub=%d good=%.1f%% p95=%.2fms shed=%d failed=%d  flash: sub=%d good=%.1f%% p95=%.2fms shed=%d  brownout<=%d\n",
			t.Tenant, t.OfferedRPS,
			t.Overall.Submitted, 100*t.Overall.GoodputFrac(), t.OverallP95, t.Overall.Shed, t.Overall.Failed,
			t.Flash.Submitted, 100*t.Flash.GoodputFrac(), t.FlashP95, t.Flash.Shed,
			t.BrownoutMax)
	}
	row(&r.Victim)
	row(&r.Noisy)
	fmt.Fprintf(&b, "aggressor admitted during flash: %.1f req/s (budget %.1f)\n",
		r.NoisyAdmittedRPS, r.NoisyBudgetRPS)
	if v := r.Violated(); v != "" {
		fmt.Fprintf(&b, "ISOLATION VIOLATED: %s\n", v)
	} else {
		fmt.Fprintf(&b, "isolation held\n")
	}
	return b.String()
}

// noisySpecs mirrors the overload mixed-tenant deployment: equal
// shares and weights, aggressor app high-security, victim medium.
func noisySpecs() []tenant.Spec {
	app := func(name, level string) string {
		sec := ""
		if level != "" {
			sec = fmt.Sprintf(`    - sec-%s:
        type: myrtus.policies.Security
        targets: [aggregator]
        properties: {level: %s}
`, level, level)
		}
		return fmt.Sprintf(`
tosca_definitions_version: tosca_2_0
metadata:
  template_name: %s
topology_template:
  node_templates:
    camera:
      type: myrtus.nodes.Container
      properties: {cpu: 0.5, memoryMB: 128, gops: 0.2, outMB: 0.1, inMB: 0.2}
    detector:
      type: myrtus.nodes.AcceleratedKernel
      properties: {cpu: 1, memoryMB: 256, kernel: conv2d, gops: 2, outMB: 0.05}
      requirements:
        - source: camera
    aggregator:
      type: myrtus.nodes.Container
      properties: {cpu: 1.5, memoryMB: 512, gops: 1, outMB: 0.01}
      requirements:
        - source: detector
  policies:
    - cam-edge:
        type: myrtus.policies.Placement
        targets: [camera]
        properties: {layer: edge}
%s`, name, sec)
	}
	return []tenant.Spec{
		{
			ID:    "victim",
			Class: mirto.PriorityMedium,
			Quota: tenant.Quota{AdmissionShare: 0.5, Weight: 1},
			Apps:  []string{app("nn-victim", "medium")},
		},
		{
			ID:    "noisy",
			Class: mirto.PriorityHigh,
			Quota: tenant.Quota{AdmissionShare: 0.5, Weight: 1},
			Apps:  []string{app("nn-noisy", "high")},
		},
	}
}

const noisyItems = 4

// runNoisyArm executes one arm: victim steady, aggressor flashing
// (flashMult <= 0 removes the aggressor's load entirely — the solo
// baseline).
func runNoisyArm(cfg NoisyConfig, capacityRPS float64, deadline sim.Time, flashMult float64) (victim, noisy *NoisyTenantResult, err error) {
	specs := noisySpecs()
	s, err := tenant.BuildSystem(cfg.Seed, specs, cfg.Quotas, capacityRPS, deadline)
	if err != nil {
		return nil, nil, err
	}
	eng := s.C.Engine
	admissionRPS := 0.9 * capacityRPS
	budget := 0.5 * admissionRPS

	victim = &NoisyTenantResult{Tenant: "victim", OfferedRPS: 0.8 * budget}
	noisy = &NoisyTenantResult{Tenant: "noisy", OfferedRPS: 0.5 * budget}
	results := map[string]*NoisyTenantResult{"victim": victim, "noisy": noisy}

	inFlash := func(t sim.Time) bool { return t >= cfg.FlashStart && t < cfg.FlashEnd }
	submitOne := func(res *NoisyTenantResult, app string, at sim.Time) {
		flash := inFlash(at)
		wins := []*noisyWindow{&res.Overall}
		if flash {
			wins = append(wins, &res.Flash)
		}
		for _, w := range wins {
			w.Submitted++
		}
		count := func(err error, lat sim.Time, completed bool) {
			for _, w := range wins {
				switch {
				case errors.Is(err, mirto.ErrOverloaded):
					w.Shed++
				case err != nil:
					w.Failed++
				case completed:
					w.lats = append(w.lats, lat.Seconds()*1e3)
					if lat <= deadline {
						w.Good++
					} else {
						w.Late++
					}
				}
			}
		}
		serr := s.Submit(app, noisyItems, func(lat sim.Time, _ float64, err error) {
			count(err, lat, true)
		})
		if serr != nil {
			count(serr, 0, false)
		}
	}

	// Victim: steady in-budget arrivals across the whole run.
	schedule := func(id string, rate func(sim.Time) float64) {
		res := results[id]
		app := s.Apps[id][0]
		n := 0
		for t := sim.Time(0); n < cfg.MaxRequests; n++ {
			r := rate(t)
			if r <= 0 {
				break
			}
			t += sim.Time(float64(sim.Second) / r)
			if t > cfg.Duration {
				break
			}
			at := t
			eng.At(at, func() { submitOne(res, app, at) })
		}
	}
	schedule("victim", func(sim.Time) float64 { return victim.OfferedRPS })
	if flashMult > 0 {
		schedule("noisy", func(t sim.Time) float64 {
			if inFlash(t) {
				return flashMult * budget
			}
			return noisy.OfferedRPS
		})
	}

	const tickEvery = 250 * sim.Millisecond
	var tick func()
	tick = func() {
		levels := s.Tick()
		for id, res := range results {
			for _, app := range s.Apps[id] {
				if lvl := levels[app]; lvl > res.BrownoutMax {
					res.BrownoutMax = lvl
				}
			}
		}
		if eng.Now()+tickEvery <= cfg.Duration {
			eng.After(tickEvery, tick)
		}
	}
	eng.After(tickEvery, tick)

	eng.RunUntil(cfg.Duration)
	eng.Run()

	for _, res := range results {
		res.OverallP95 = res.Overall.p95()
		res.FlashP95 = res.Flash.p95()
	}
	return victim, noisy, nil
}

// RunNoisyNeighbor executes the scenario: a solo victim baseline, then
// the mixed run with the aggressor's flash crowd.
func RunNoisyNeighbor(cfg NoisyConfig) (*NoisyReport, error) {
	cfg = cfg.withDefaults()
	specs := noisySpecs()
	capacityRPS, deadline, err := tenant.Calibrate(cfg.Seed, specs, noisyItems)
	if err != nil {
		return nil, err
	}
	admissionRPS := 0.9 * capacityRPS
	rep := &NoisyReport{
		Seed:            cfg.Seed,
		Quotas:          cfg.Quotas,
		CapacityRPS:     capacityRPS,
		DeadlineMs:      deadline.Seconds() * 1e3,
		FlashMult:       cfg.FlashMult,
		FlashStartS:     cfg.FlashStart.Seconds(),
		FlashEndS:       cfg.FlashEnd.Seconds(),
		VictimBudgetRPS: 0.5 * admissionRPS,
		NoisyBudgetRPS:  0.5 * admissionRPS,
	}
	soloV, _, err := runNoisyArm(cfg, capacityRPS, deadline, 0)
	if err != nil {
		return nil, fmt.Errorf("chaos: noisy-neighbor solo baseline: %w", err)
	}
	rep.SoloP95Ms = soloV.OverallP95
	rep.SoloGoodputFrac = soloV.Overall.GoodputFrac()

	v, a, err := runNoisyArm(cfg, capacityRPS, deadline, cfg.FlashMult)
	if err != nil {
		return nil, fmt.Errorf("chaos: noisy-neighbor mixed run: %w", err)
	}
	rep.Victim, rep.Noisy = *v, *a
	if flashDur := (cfg.FlashEnd - cfg.FlashStart).Seconds(); flashDur > 0 {
		admitted := a.Flash.Submitted - a.Flash.Shed
		rep.NoisyAdmittedRPS = float64(admitted) / flashDur
	}
	return rep, nil
}
