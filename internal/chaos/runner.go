package chaos

import (
	"fmt"
	"sort"
	"strings"

	"myrtus/internal/continuum"
	"myrtus/internal/mapek"
	"myrtus/internal/mirto"
	"myrtus/internal/network"
	"myrtus/internal/sim"
	"myrtus/internal/telemetry"
	"myrtus/internal/tosca"
	"myrtus/internal/trace"
)

// Config tunes one scenario run.
type Config struct {
	Seed uint64
	// MAPEK attaches the self-healing loop; false is the control run that
	// measures what the retries alone can absorb.
	MAPEK bool
	// DetectK is the failure detector's missed-heartbeat threshold
	// (default 2); TickEvery is the sensing cadence (default 250ms).
	DetectK   int
	TickEvery sim.Time
	// BrokerQueueLimit bounds every link's queue delay — the cap on the
	// pub/sub broker's effective queue depth under a burst. Transfers
	// past the bound are dropped and counted in FabricStats.QueueDrops.
	// The bound rides with the protection stack (MAPEK runs); the control
	// arm keeps the legacy unbounded fabric it is the baseline for
	// (default 250ms; negative disables the bound).
	BrokerQueueLimit sim.Time
	// Infra overrides the continuum sizing (nil = DefaultOptions with
	// the run seed).
	Infra *continuum.Options

	// Stateful tracks per-stage state cells for stages the app declares
	// stateful, runs a fault-free same-seed reference of the scenario, and
	// reports RPO/RTO plus the state-divergence check against it.
	Stateful bool
	// NoCheckpoint is the control arm: state cells exist but nothing
	// persists them, so a crashed device's state is unrecoverable — the
	// run that quantifies what checkpointing buys.
	NoCheckpoint bool
	// CheckpointEvery throttles checkpoint passes (default 1s).
	CheckpointEvery sim.Time
	// NoDeltaReplans forces every reallocation through full
	// renegotiation — the control arm quantifying what incremental
	// delta replans save (see the report's replan_mode line).
	NoDeltaReplans bool

	// Health attaches the gray-failure defense: peer-relative health
	// scoring over observed stage service times, planner penalties and
	// hedged requests for suspect-slow devices, and (with MAPEK)
	// quarantine via cordon + live drain plus probation re-entry.
	Health bool
	// HedgeOnly caps the defense at hedging: no planner penalty, no
	// quarantine — the middle arm of the gray-fail experiment.
	HedgeOnly bool
	// DeviceQueueLimit bounds every device's work queue: work that would
	// wait longer for a core is rejected with ErrOverloaded instead of
	// queuing without bound (0 = unbounded). Both gray-fail arms carry
	// it, so the control arm's collapse is queue-bound rejection, not an
	// unbounded-backlog artifact.
	DeviceQueueLimit sim.Time

	// Fencing attaches the split-brain defense: a KB-backed fencing
	// ledger mints a monotonic token per ownership change, every
	// checkpoint, migration transfer, and stateful apply carries its
	// writer's token, and stale tokens are rejected deterministically.
	// Plans are stamped with CAS'd epochs so superseded plans cannot
	// dispatch or splice. False is the split-brain control arm.
	Fencing bool
	// Hook, when set, runs after the full stack is wired but before any
	// fault event or workload is scheduled — harnesses use it to grab
	// live handles and schedule scenario-specific behavior (partitions,
	// zombie writers, heal reconciliation) on the sim clock.
	Hook func(RunHandles)
}

// RunHandles exposes the wired run internals to a Config.Hook, so a
// harness can drive behavior no declarative Event covers (KB cluster
// partitions, stale-token writes, explicit reconciliation).
type RunHandles struct {
	C     *continuum.Continuum
	O     *mirto.Orchestrator
	App   string
	SS    *mirto.StateStore
	CP    *mirto.Checkpointer
	HM    *mirto.HealthMonitor
	FD    *mirto.FailureDetector
	Mig   *mirto.Migrator
	Fence *mirto.FenceLedger
}

// ckptAnchor is the device fronting the raft-replicated KB: checkpoint
// transfers terminate there and restore transfers originate there.
const ckptAnchor = "cloud-srv-0"

// runner is the per-run mutable state: the live system plus the memo
// maps that pair a fault with its later restore even after the plan has
// moved on.
type runner struct {
	c   *continuum.Continuum
	o   *mirto.Orchestrator
	app string

	// crashTarget/isolateTarget memoize "stage:x" resolution at fault
	// time so the paired repair/reconnect hits the same physical device.
	crashTarget   map[string]string
	isolateTarget map[string]string
	savedLinks    map[string][]network.Link
	degraded      map[string][]network.Link
	failedLayer   map[string][]string
	// slowTarget memoizes DeviceSlow resolution so the paired unslow
	// restores the same physical device even after the stage migrates
	// away; slowAt stamps injection time for detection-lag measurement.
	slowTarget map[string]string
	slowAt     map[string]sim.Time

	// hm is the gray-failure health monitor (nil unless cfg.Health).
	hm *mirto.HealthMonitor

	// ss is the stateful-stage state store (nil unless cfg.Stateful):
	// fault events stamp crash times on it for honest RTO measurement.
	ss *mirto.StateStore
	// mig executes planned drains (nil unless cfg.MAPEK — live migration
	// needs the self-healing stack to replan around the cordon).
	mig *mirto.Migrator

	rep *Report
}

// Run executes one scenario and produces its resilience report. The
// whole run — workload, faults, detection, healing — advances on the
// simulation clock, so a (scenario, config) pair is fully reproducible.
// With cfg.Stateful the scenario is run twice: once as scheduled and
// once fault-free with the same seed, and the surviving per-stage state
// of the chaos run is compared cell-by-cell against the fault-free
// reference — nonzero divergence means recovery lost or double-applied
// an update.
func Run(sc Scenario, cfg Config) (*Report, error) {
	rep, err := runOnce(sc, cfg)
	if err != nil || !cfg.Stateful {
		return rep, err
	}
	// Fault-free reference: same app, same seed, same workload schedule,
	// no fault events and no harness hook. Its final per-stage state is
	// what a correct recovery must reproduce exactly.
	ref := sc
	ref.Events = nil
	refCfg := cfg
	refCfg.Hook = nil
	refRep, err := runOnce(ref, refCfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: fault-free reference run: %w", err)
	}
	for cell, want := range refRep.fingerprints {
		rep.ComparedCells++
		if string(rep.fingerprints[cell]) != string(want) {
			rep.DivergentCells = append(rep.DivergentCells, cell)
		}
	}
	for cell := range rep.fingerprints {
		if _, ok := refRep.fingerprints[cell]; !ok {
			rep.ComparedCells++
			rep.DivergentCells = append(rep.DivergentCells, cell)
		}
	}
	sort.Strings(rep.DivergentCells)
	return rep, nil
}

// runOnce executes one scenario run end to end.
func runOnce(sc Scenario, cfg Config) (*Report, error) {
	sc = defaults(sc)
	if cfg.DetectK < 1 {
		cfg.DetectK = 2
	}
	if cfg.TickEvery <= 0 {
		cfg.TickEvery = 250 * sim.Millisecond
	}
	if cfg.BrokerQueueLimit == 0 {
		cfg.BrokerQueueLimit = 250 * sim.Millisecond
	}
	opts := continuum.DefaultOptions()
	if cfg.Infra != nil {
		opts = *cfg.Infra
	}
	opts.Seed = cfg.Seed

	c, err := continuum.Build(opts)
	if err != nil {
		return nil, err
	}
	if cfg.DeviceQueueLimit > 0 {
		// Bounded device queues: a fail-slow device sheds its backlog
		// with ErrOverloaded instead of stalling requests without bound.
		for _, name := range c.DeviceNames() {
			c.Devices[name].SetQueueLimit(cfg.DeviceQueueLimit)
		}
	}
	if cfg.MAPEK && cfg.BrokerQueueLimit > 0 {
		// Bounded link queues: a broker burst sheds its excess instead of
		// stalling every transfer behind it. Protection-stack behavior, so
		// the unprotected control arm keeps unbounded queuing.
		c.Fabric.SetMaxQueueDelay(cfg.BrokerQueueLimit)
	}
	m := mirto.NewManager(c, mirto.LatencyGoal())
	o := mirto.NewOrchestrator(m)
	o.DeltaReplans = !cfg.NoDeltaReplans
	var fl *mirto.FenceLedger
	if cfg.Fencing {
		// The fencing ledger must be wired before Deploy: the first plan
		// already gets an epoch stamp and the first Register mints the
		// initial ownership tokens.
		fl = mirto.NewFenceLedger(c.KB)
		m.SetFence(fl)
		o.R.SetFence(fl)
	}
	var ss *mirto.StateStore
	var cp *mirto.Checkpointer
	if cfg.Stateful {
		ss = mirto.NewStateStore(0)
		o.R.SetStateStore(ss)
		if fl != nil {
			ss.SetFencing(true)
		}
		if !cfg.NoCheckpoint {
			// Checkpoints ride the fabric into the raft-replicated KB the
			// continuum already carries; the orchestrator pokes the
			// checkpointer on every replan.
			cp = mirto.NewCheckpointer(o.R, c.KB, ckptAnchor, cfg.CheckpointEvery)
			o.CP = cp
			if fl != nil {
				cp.SetFence(fl)
			}
		}
	}
	st, err := tosca.Parse(sc.App)
	if err != nil {
		return nil, err
	}
	plan, err := o.Deploy(st)
	if err != nil {
		return nil, err
	}
	var loop *mapek.Loop
	var breakers *mirto.BreakerSet
	if cfg.MAPEK {
		if loop, err = o.AttachLoop(plan.App, sc.SLO); err != nil {
			return nil, err
		}
		// Circuit breakers ride with the self-healing stack: the serve
		// path fast-fails suspect devices and links, and the failure
		// detector trips/resets device breakers at suspicion/recovery.
		breakers = mirto.NewBreakerSet(c.Engine, mirto.BreakerConfig{})
		o.R.SetBreakers(breakers)
	}
	fd := mirto.NewFailureDetector(c, cfg.DetectK)
	if breakers != nil {
		fd.SetBreakers(breakers)
	}
	if ss != nil {
		fd.SetStateStore(ss)
	}
	if fl != nil {
		fd.SetFence(fl)
	}
	var mig *mirto.Migrator
	if cfg.MAPEK {
		mig = mirto.NewMigrator(o)
		mig.SetDetector(fd)
		mig.SetKB(c.KB)
		if fl != nil {
			mig.SetFence(fl)
		}
	}
	var hm *mirto.HealthMonitor
	if cfg.Health {
		hcfg := mirto.HealthConfig{NoQuarantine: cfg.HedgeOnly}
		if cfg.HedgeOnly {
			hcfg.SuspectPenalty = -1 // hedge-only: no planner bias either
		}
		hm = mirto.NewHealthMonitor(c, hcfg)
		hm.SetDetector(fd)
		if mig != nil && !cfg.HedgeOnly {
			hm.SetMigrator(mig)
		}
		m.SetHealth(hm)
		o.R.SetHealth(hm)
	}

	r := &runner{
		c: c, o: o, app: plan.App, ss: ss, mig: mig, hm: hm,
		crashTarget:   map[string]string{},
		isolateTarget: map[string]string{},
		savedLinks:    map[string][]network.Link{},
		degraded:      map[string][]network.Link{},
		failedLayer:   map[string][]string{},
		slowTarget:    map[string]string{},
		slowAt:        map[string]sim.Time{},
		rep: &Report{
			Scenario: sc.Name, Seed: cfg.Seed, MAPEK: cfg.MAPEK, Duration: sc.Duration,
			TickEvery: cfg.TickEvery,
			Stateful:  cfg.Stateful, Checkpoint: cfg.Stateful && !cfg.NoCheckpoint,
			HealthOn: cfg.Health, HedgeOnly: cfg.HedgeOnly,
			attribution: map[trace.Layer]*trace.LayerStat{},
		},
	}
	eng := c.Engine
	if hm != nil {
		// Detection lag: the gap between a fail-slow injection and the
		// monitor first escalating that device off healthy.
		hm.OnTransition = func(dev string, from, to mirto.HealthState, at sim.Time) {
			if from == mirto.HealthHealthy && to != mirto.HealthHealthy {
				if t0, ok := r.slowAt[dev]; ok {
					r.rep.DetectionSamples = append(r.rep.DetectionSamples, at-t0)
					delete(r.slowAt, dev)
				}
			}
		}
	}

	if cfg.Hook != nil {
		// The harness hook sees the fully wired stack before anything is
		// scheduled, so everything it plants fires on the same sim clock
		// as the declarative events.
		cfg.Hook(RunHandles{
			C: c, O: o, App: plan.App, SS: ss, CP: cp,
			HM: hm, FD: fd, Mig: mig, Fence: fl,
		})
	}

	// Fault schedule.
	for _, ev := range sc.Events {
		ev := ev
		eng.At(ev.At, func() {
			if err := r.apply(ev); err != nil {
				r.rep.EventErrors = append(r.rep.EventErrors,
					fmt.Sprintf("%v %s %s: %v", ev.At, ev.Kind, ev.Target, err))
			}
		})
	}
	// Broker noise sink: bursts need a subscriber for full fan-out load.
	for _, ev := range sc.Events {
		if ev.Kind == BrokerBurst {
			c.Broker.Subscribe(fmt.Sprintf("cloud-srv-%d", opts.CloudServers-1),
				"chaos/#", "", func(string, []byte) {})
			break
		}
	}

	// Sensing cadence: heartbeats, failure detection, and (when enabled)
	// one MAPE-K pass per tick.
	var tick func()
	tick = func() {
		c.Heartbeat()
		fd.Tick()
		if hm != nil {
			hm.Tick(eng.Now())
		}
		if loop != nil {
			loop.Iterate()
		}
		if cp != nil {
			cp.Tick()
		} else if ss != nil {
			// No-checkpoint control: a lost cell has nothing to restore from,
			// so the stage restarts empty on its current live placement and
			// everything it held counts as RPO loss.
			for _, key := range ss.LostCells() {
				app, stage := mirto.SplitCellKey(key)
				if dev, ok := o.R.StageDevice(app, stage); ok {
					ss.AbandonLost(app, stage, dev, eng.Now())
				}
			}
		}
		if eng.Now()+cfg.TickEvery <= sc.Duration {
			eng.After(cfg.TickEvery, tick)
		}
	}
	eng.After(cfg.TickEvery, tick)

	// Open-loop workload with incident bookkeeping: an incident opens at
	// the first failed attempt and closes at the next success that
	// post-dates it; the gap is one MTTR sample.
	var inIncident bool
	var incidentStart sim.Time
	for at := sc.RequestEvery; at <= sc.Duration; at += sc.RequestEvery {
		eng.At(at, func() {
			r.rep.Total++
			submitAt := eng.Now()
			pol := sc.Retry
			pol.OnAttemptFail = func(int, error) {
				r.rep.AttemptFailures++
				if !inIncident {
					inIncident = true
					incidentStart = eng.Now()
					r.rep.Incidents++
				}
			}
			err := o.R.SubmitWithRetry(r.app, sc.Ingress, sc.Items, pol,
				func(_ sim.Time, _ float64, attempts int, err error) {
					if err != nil {
						r.rep.Lost++
						return
					}
					// User-perceived latency: submit to final completion,
					// retry backoffs included — the honest tail.
					r.rep.Latencies = append(r.rep.Latencies, eng.Now()-submitAt)
					if attempts > 1 {
						r.rep.Recovered++
					} else {
						r.rep.OK++
					}
					// Only a success that started (or retried) after the
					// incident opened proves the service healed.
					if inIncident && (attempts > 1 || submitAt >= incidentStart) {
						r.rep.MTTRSamples = append(r.rep.MTTRSamples, eng.Now()-incidentStart)
						inIncident = false
						r.attributeRecovery()
					}
				})
			if err != nil {
				r.rep.Lost++
			}
		})
	}

	eng.RunUntil(sc.Duration)
	eng.Run() // drain in-flight retries and transfers past the horizon
	if cp != nil {
		// Final restore/checkpoint pass: a cell whose placement came back
		// only near the horizon still gets its state recovered and the
		// closing state persisted.
		cp.Sync()
		eng.Run()
	}

	// Roll up the counters.
	rep := r.rep
	if fl != nil {
		rep.FencingOn = true
		rep.Fence = fl.Stats()
	}
	if ss != nil {
		sst := ss.Stats()
		rep.FencedWrites = sst.FencedWrites
		rep.StateApplied = sst.Applied
		rep.DedupHits = sst.DedupHits
		rep.Invalidations = sst.Invalidations
		rep.CleanMigrations = sst.CleanMigrations
		rep.RPOItems = sst.RPOItems
		rep.LiveMigrations = sst.LiveMigrations
		rep.JournalReplayed = sst.JournalReplayed
		rep.JournalEvicted = sst.JournalEvicted
		rep.RTOSamples = sst.RTOSamples
		rep.UnrestoredCells = len(ss.LostCells())
		if cp != nil {
			rep.Ckpt = cp.Stats()
		}
		rep.fingerprints = ss.Fingerprints()
	}
	rep.Suspected, rep.Confirmed, rep.DetectorRecovered = fd.Stats()
	if loop != nil {
		rep.LoopIterations, _, _ = loop.Stats()
		for _, rec := range loop.History() {
			for _, a := range rec.Actions {
				switch a.Kind {
				case "replan":
					rep.Replans++
				case "boost":
					rep.Boosts++
				}
			}
			rep.ExecErrors += len(rec.ExecErrors)
		}
		// Replan-mode attribution: which reallocations were incremental
		// splices vs full renegotiations, and what each cost in the
		// deterministic candidates-scored unit.
		for _, ev := range o.ReplanLog() {
			switch ev.Mode {
			case "delta":
				rep.DeltaReplans++
				rep.DeltaCost = append(rep.DeltaCost, ev.Scored)
			case "drain":
				// Migration flips splice the plan too, but they are planned
				// maintenance, not healing — reported in the migration
				// section, not the replan-mode attribution.
				rep.DrainSplices++
			default:
				rep.FullReplans++
				rep.FullCost = append(rep.FullCost, ev.Scored)
			}
		}
	}
	if breakers != nil {
		rep.BreakerOpens, rep.BreakerFastFails = breakers.Stats()
	}
	if hm != nil {
		rep.Health = hm.Stats()
		rep.DeviceHealth = hm.States()
	}
	if mig != nil {
		// Every completed drain — event-scheduled or quarantine-driven —
		// lands in the migrator's report log, in start order.
		rep.Drains = mig.Reports()
	}
	rep.Fabric = c.Fabric.Stats()

	reg := telemetry.NewRegistry("chaos")
	reg.Counter(telemetry.Application, "failovers").Add(float64(rep.Replans))
	reg.Counter(telemetry.Application, "boosts").Add(float64(rep.Boosts))
	reg.Counter(telemetry.Application, "suspected_failures").Add(float64(rep.Suspected))
	reg.Counter(telemetry.Application, "confirmed_failures").Add(float64(rep.Confirmed))
	reg.Counter(telemetry.Application, "requests_recovered").Add(float64(rep.Recovered))
	reg.Counter(telemetry.Application, "requests_lost").Add(float64(rep.Lost))
	reg.Counter(telemetry.Application, "incidents").Add(float64(rep.Incidents))
	rep.Registry = reg
	return rep, nil
}

// attributeRecovery charges the just-completed recovering request's
// critical path to layers. Inside a request's done callback the newest
// finished trace is that request's trace (the root ends, records, and
// fires done within one engine event).
func (r *runner) attributeRecovery() {
	trs := r.c.Tracer.Traces()
	if len(trs) == 0 {
		return
	}
	tr := trs[len(trs)-1]
	if tr.Root == nil || tr.Root.Name != "request/"+r.app || tr.Root.Error != "" {
		return
	}
	for _, ls := range tr.LayerBreakdown() {
		acc := r.rep.attribution[ls.Layer]
		if acc == nil {
			acc = &trace.LayerStat{Layer: ls.Layer}
			r.rep.attribution[ls.Layer] = acc
		}
		acc.Time += ls.Time
		acc.Spans += ls.Spans
	}
}

// resolve turns a target spec into a physical device name; "stage:<node>"
// is resolved against the live plan at fire time.
func (r *runner) resolve(spec string) (string, error) {
	node, ok := strings.CutPrefix(spec, "stage:")
	if !ok {
		return spec, nil
	}
	plan, ok := r.o.PlanFor(r.app)
	if !ok {
		return "", fmt.Errorf("app %q not deployed", r.app)
	}
	a, ok := plan.Assignment(node)
	if !ok {
		return "", fmt.Errorf("no stage %q in plan", node)
	}
	return a.Device, nil
}

// endpoints resolves a link target "A<->B" or "A->B" into the concrete
// directed pairs to mutate; the restore pairing keeps the resolved pairs
// in Report state, so resolution here is always against the live plan.
func (r *runner) endpoints(target string) ([][2]string, error) {
	duplex := strings.Contains(target, "<->")
	sep := "->"
	if duplex {
		sep = "<->"
	}
	parts := strings.SplitN(target, sep, 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("bad link target %q", target)
	}
	a, err := r.resolve(strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, err
	}
	b, err := r.resolve(strings.TrimSpace(parts[1]))
	if err != nil {
		return nil, err
	}
	pairs := [][2]string{{a, b}}
	if duplex {
		pairs = append(pairs, [2]string{b, a})
	}
	return pairs, nil
}

// apply executes one fault event against the live system.
func (r *runner) apply(ev Event) error {
	topo := r.c.Topo
	switch ev.Kind {
	case DeviceCrash:
		dev, err := r.resolve(ev.Target)
		if err != nil {
			return err
		}
		d := r.c.Devices[dev]
		if d == nil {
			return fmt.Errorf("unknown device %q", dev)
		}
		r.crashTarget[ev.Target] = dev
		if r.ss != nil {
			// Stamp the true crash instant so RTO measures crash→restored,
			// not detection→restored.
			r.ss.NoteCrash(dev, r.c.Engine.Now())
		}
		d.Fail() // silent: the failure detector has to notice

	case DeviceRepair:
		dev := r.crashTarget[ev.Target]
		if dev == "" {
			var err error
			if dev, err = r.resolve(ev.Target); err != nil {
				return err
			}
		}
		delete(r.crashTarget, ev.Target)
		d := r.c.Devices[dev]
		if d == nil {
			return fmt.Errorf("unknown device %q", dev)
		}
		d.Repair(r.c.Engine.Now()) // the detector restores its node on the next tick

	case LinkDegrade:
		pairs, err := r.endpoints(ev.Target)
		if err != nil {
			return err
		}
		var saved []network.Link
		for _, p := range pairs {
			l, ok := topo.Link(p[0], p[1])
			if !ok {
				return fmt.Errorf("no link %s->%s", p[0], p[1])
			}
			saved = append(saved, network.Link{From: p[0], To: p[1],
				Latency: l.Latency, Bandwidth: l.Bandwidth, LossP: l.LossP})
		}
		for _, p := range pairs {
			if err := topo.SetLinkQuality(p[0], p[1], ev.Latency, ev.Bandwidth, ev.LossP); err != nil {
				return err
			}
		}
		if _, dup := r.degraded[ev.Target]; !dup {
			r.degraded[ev.Target] = saved
		}

	case LinkRestore:
		saved, ok := r.degraded[ev.Target]
		if !ok {
			return fmt.Errorf("no degraded link for %q", ev.Target)
		}
		delete(r.degraded, ev.Target)
		for _, l := range saved {
			if err := topo.SetLinkQuality(l.From, l.To, l.Latency, l.Bandwidth, l.LossP); err != nil {
				return err
			}
		}

	case NodeIsolate:
		dev, err := r.resolve(ev.Target)
		if err != nil {
			return err
		}
		r.isolateTarget[ev.Target] = dev
		links := topo.AdjacentLinks(dev)
		if len(links) == 0 {
			return fmt.Errorf("device %q has no links to cut", dev)
		}
		r.savedLinks[ev.Target] = links
		for _, l := range links {
			topo.RemoveLink(l.From, l.To)
		}

	case NodeReconnect:
		links, ok := r.savedLinks[ev.Target]
		if !ok {
			return fmt.Errorf("no isolation for %q", ev.Target)
		}
		delete(r.savedLinks, ev.Target)
		delete(r.isolateTarget, ev.Target)
		for _, l := range links {
			if err := topo.AddLink(l.From, l.To, l.Latency, l.Bandwidth, l.LossP); err != nil {
				return err
			}
		}

	case LayerOutage:
		names := r.c.DevicesInLayer(ev.Target)
		if len(names) == 0 {
			return fmt.Errorf("no devices in layer %q", ev.Target)
		}
		r.failedLayer[ev.Target] = names
		for _, n := range names {
			if r.ss != nil {
				r.ss.NoteCrash(n, r.c.Engine.Now())
			}
			r.c.Devices[n].Fail()
		}

	case LayerRestore:
		names, ok := r.failedLayer[ev.Target]
		if !ok {
			return fmt.Errorf("no outage for layer %q", ev.Target)
		}
		delete(r.failedLayer, ev.Target)
		for _, n := range names {
			r.c.Devices[n].Repair(r.c.Engine.Now())
		}

	case BrokerBurst:
		pub, err := r.resolve(ev.Target)
		if err != nil {
			return err
		}
		payload := make([]byte, ev.Bytes)
		for i := 0; i < ev.Messages; i++ {
			r.c.Broker.Publish(pub, "chaos/noise", payload, "") //nolint:errcheck
		}

	case DrainDevice:
		if r.mig == nil {
			return fmt.Errorf("planned drain needs the MAPE-K stack (run with -mapek)")
		}
		dev, err := r.resolve(ev.Target)
		if err != nil {
			return err
		}
		// The drain runs asynchronously (pre-copy rounds ride the fabric);
		// its report lands in the migrator's log on completion, aborted
		// or not, and the rollup collects the log. A mid-drain crash of
		// the device shows up as an aborted drain plus the normal
		// crash-restore path taking over.
		return r.mig.Drain(dev, nil)

	case DeviceSlow:
		dev, err := r.resolve(ev.Target)
		if err != nil {
			return err
		}
		d := r.c.Devices[dev]
		if d == nil {
			return fmt.Errorf("unknown device %q", dev)
		}
		factor := ev.Slow
		if factor <= 1 {
			return fmt.Errorf("device-slow needs Slow > 1, got %v", factor)
		}
		r.slowTarget[ev.Target] = dev
		if _, ok := r.slowAt[dev]; !ok {
			r.slowAt[dev] = r.c.Engine.Now()
		}
		d.SetSlowFactor(factor) // silent: the device keeps heartbeating

	case DeviceUnslow:
		dev := r.slowTarget[ev.Target]
		if dev == "" {
			var err error
			if dev, err = r.resolve(ev.Target); err != nil {
				return err
			}
		}
		delete(r.slowTarget, ev.Target)
		delete(r.slowAt, dev)
		d := r.c.Devices[dev]
		if d == nil {
			return fmt.Errorf("unknown device %q", dev)
		}
		d.SetSlowFactor(1)

	default:
		return fmt.Errorf("unknown event kind %q", ev.Kind)
	}
	r.rep.EventsApplied++
	return nil
}
