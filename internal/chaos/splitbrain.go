package chaos

import (
	"fmt"
	"strings"

	"myrtus/internal/kb"
	"myrtus/internal/mirto"
	"myrtus/internal/sim"
)

// Split-brain harness: the partitioned-authority counterpart to the
// fail-stop and fail-slow scenarios. The device owning the stateful
// aggregator is symmetrically partitioned from the rest of the
// continuum (and the KB loses a minority replica) for several lease
// TTLs — but it keeps heartbeating and believes it is still the owner,
// so the binary failure detector never fires. The majority side replans
// the stage onto a healthy device and keeps serving; the stranded old
// owner keeps writing as a zombie. Three same-seed arms share one
// workload schedule:
//
//   - fault-free baseline: no fault, fencing attached. The false-
//     positive check — a healthy continuum must fence nothing, reject
//     no epochs, and demote no checkpointer.
//   - defense: the partition with the full fencing stack — ownership
//     tokens on every stateful apply/checkpoint/migration, CAS'd plan
//     epochs, checkpointer self-fencing, and heal-time reconciliation.
//     The bar: zero zombie writes land, zero double-applies, zero
//     divergence from the fault-free reference, availability ≥ 95%.
//   - no-fencing control: same partition, same zombie, fencing off.
//     Must measurably diverge — zombie writes land and the replayed
//     pre-partition suffix double-applies — or the fault is too weak
//     to prove the defense earns its place.

const (
	// sbPartitionAt..sbHealAt is the symmetric-partition window: 14
	// seconds, 3.5 checkpoint-lease TTLs (the checkpointer lease is
	// 4×1s), so the minority-side leadership provably cannot survive on
	// lease validity alone.
	sbPartitionAt = 10 * sim.Second
	sbHealAt      = 24 * sim.Second
	sbDuration    = 40 * sim.Second

	sbRequestEvery = 40 * sim.Millisecond

	// sbZombieDelay..every: the stranded owner starts re-asserting
	// writes two seconds into the partition, every 80ms until heal.
	// The writer is token-gated in the harness itself: a write fires
	// only once cluster authority has actually moved past the captured
	// token (before that instant the "zombie" would still be the
	// legitimate owner, and its writes would be correct).
	sbZombieDelay = 2 * sim.Second
	sbZombieEvery = 80 * sim.Millisecond

	// sbReplayLen is the pre-partition journal suffix the healed owner
	// replays — the buffered-but-unshipped writes a real zombie carries
	// back across the heal. Long after the dedup window has cycled, so
	// only fencing (not dedup) can stop the double-apply.
	sbReplayLen = 16
)

// sbStage is the stateful stage whose owner is stranded.
const sbStage = "aggregator"

// SplitBrain is the bundled split-brain scenario: the stateful pipeline
// under open-loop load with the aggregator's device symmetrically
// isolated for the partition window. Heartbeats ride out-of-band, so
// the detector never suspects it — only SLO-breach replanning moves the
// stage, and only fencing revokes the stranded owner's authority.
func SplitBrain(seed uint64) Scenario {
	sc := Scenario{
		Name:         "split-brain",
		Ingress:      "edge-rv-0",
		Duration:     sbDuration,
		RequestEvery: sbRequestEvery,
		SLO:          mirto.SLO{P95LatencyMs: 250, MaxFailureRate: 0.05},
		Events: []Event{
			{At: sbPartitionAt, Kind: NodeIsolate, Target: "stage:" + sbStage},
			{At: sbHealAt, Kind: NodeReconnect, Target: "stage:" + sbStage},
		},
	}
	_ = seed // the schedule is fixed; the seed shapes run-time draws
	sc = defaults(Statefulize(sc))
	sc.App = grayFailApp
	return sc
}

// SplitBrainObs is what the harness hook itself observed in one arm —
// ground truth the report gates check against, independent of the
// defense's own counters.
type SplitBrainObs struct {
	// Owner/StaleToken are the pre-partition aggregator owner and its
	// fencing token (0 in the no-fencing arm).
	Owner      string
	StaleToken uint64
	// ZombieAttempts/ZombieLanded count the stranded owner's stale-token
	// writes and how many actually mutated the cell. Fencing must hold
	// ZombieLanded at zero.
	ZombieAttempts, ZombieLanded int
	// ReplaySize/DoubleApplies: the pre-partition journal suffix
	// replayed at heal, and how many entries re-applied (every one a
	// double-apply — dedup has long cycled past them).
	ReplaySize, DoubleApplies int
	// StaleRegisterTried/Rejected: the superseded pre-partition plan was
	// re-registered mid-partition; with fencing the runtime must reject
	// it by epoch.
	StaleRegisterTried, StaleRegisterRejected bool
	// KBPartitioned records that the KB cluster really lost a minority
	// replica for the window (requires the replicated-cluster backend).
	KBPartitioned bool
}

// splitBrainHook builds the Config.Hook driving one arm: capture the
// owner and its token just before the partition, partition the KB
// minority, strand the checkpointer on the minority side, run the
// token-gated zombie writer, re-register the superseded plan, replay
// the pre-partition journal suffix after heal, and (with fencing)
// reconcile and rejoin the fenced owner through probation.
func splitBrainHook(obs *SplitBrainObs) func(RunHandles) {
	return func(h RunHandles) {
		eng := h.C.Engine
		var owner string
		var staleTok uint64
		var stalePlan *mirto.Plan
		var replay []mirto.JournalEntry

		// The lease-elected checkpointer rides the minority side of the
		// partition: while minority holds it cannot renew, and must
		// self-demote on lease math alone.
		minority := false
		if h.CP != nil {
			h.CP.SetReachable(func() bool { return !minority })
		}

		eng.At(sbPartitionAt-50*sim.Millisecond, func() {
			owner, _ = h.O.R.StageDevice(h.App, sbStage)
			obs.Owner = owner
			if h.Fence != nil {
				staleTok = h.O.R.CellToken(h.App, sbStage)
			}
			obs.StaleToken = staleTok
			if p, ok := h.O.PlanFor(h.App); ok {
				stalePlan = p
			}
			pos := h.SS.JournalPos(h.App, sbStage)
			from := uint64(0)
			if pos > sbReplayLen {
				from = pos - sbReplayLen
			}
			if entries, _, ok := h.SS.JournalSince(h.App, sbStage, from); ok {
				replay = entries
			}
			obs.ReplaySize = len(replay)
		})

		eng.At(sbPartitionAt, func() {
			minority = true
			if cl, ok := h.C.KB.(*kb.Cluster); ok && cl.Size() >= 3 {
				ids := cl.Members()
				cl.Partition(ids[:1], ids[1:])
				obs.KBPartitioned = true
			}
		})

		// Token-gated zombie writer: the stranded owner re-asserts writes
		// with the token it held before the partition. Until cluster
		// authority has actually moved past that token the write is
		// withheld — it would be the legitimate owner's write, not a
		// zombie's. Without fencing there is no authority to consult and
		// every write fires (and lands — the control arm's divergence).
		var zi uint64
		var zombie func()
		zombie = func() {
			if eng.Now() >= sbHealAt {
				return
			}
			fire := true
			if h.Fence != nil {
				_, cur, _, ok := h.Fence.Current(h.App, sbStage)
				fire = ok && cur > staleTok
			}
			if fire {
				zi++
				obs.ZombieAttempts++
				if h.SS.ApplyFenced(h.App, sbStage, owner, uint64(1)<<62|zi, 3, eng.Now(), staleTok) {
					obs.ZombieLanded++
				}
			}
			eng.After(sbZombieEvery, zombie)
		}
		eng.At(sbPartitionAt+sbZombieDelay, zombie)

		// Mid-partition the minority side re-asserts its superseded plan.
		// With fencing the epoch gate rejects the Register; without it the
		// stale plan lands and re-points the stage at the stranded device.
		eng.At(sbHealAt-2*sim.Second, func() {
			if stalePlan == nil {
				return
			}
			if h.Fence != nil && h.Fence.CurrentEpoch(h.App) <= stalePlan.Epoch {
				return // not superseded yet: registering it would be legitimate
			}
			obs.StaleRegisterTried = true
			before := h.O.R.Epoch(h.App)
			h.O.R.Register(stalePlan)
			if h.Fence != nil {
				// Rejected iff the runtime's accepted epoch did not regress.
				obs.StaleRegisterRejected = h.O.R.Epoch(h.App) >= before && before > stalePlan.Epoch
			}
		})

		eng.At(sbHealAt, func() {
			minority = false
			if obs.KBPartitioned {
				h.C.KB.(*kb.Cluster).Heal()
			}
		})

		// Heal + 500ms: the rejoined owner replays its buffered
		// pre-partition suffix — request IDs long aged out of the dedup
		// window. Only the stale token stops the double-apply.
		eng.At(sbHealAt+500*sim.Millisecond, func() {
			for _, e := range replay {
				if h.SS.ApplyFenced(h.App, sbStage, owner, e.ReqID, e.Items, eng.Now(), staleTok) {
					obs.DoubleApplies++
				}
			}
		})

		// Heal + 1s: partition-heal reconciliation (fencing arms only):
		// discard the fenced journal suffix, account the resync, and
		// rejoin the fenced owner through the probation path.
		eng.At(sbHealAt+sim.Second, func() {
			if h.Fence == nil {
				return
			}
			discarded, resync := h.SS.Reconcile(h.App, sbStage)
			h.Fence.NoteReconciliation(discarded, resync)
			if h.HM != nil {
				h.HM.BeginProbation(owner, eng.Now())
			}
		})
	}
}

// SplitBrainRunReport bundles the arms plus the harness observations.
type SplitBrainRunReport struct {
	Seed uint64
	// FencingArm is false for the -fencing=false invocation, which runs
	// only the control arm (Baseline and Defense are nil).
	FencingArm bool
	// Baseline is the fault-free reference arm, Defense the fenced
	// partition arm, Control the unfenced partition arm.
	Baseline, Defense, Control *Report
	DefenseObs, ControlObs     SplitBrainObs
}

// RunSplitBrain executes the split-brain experiment with one seed and
// one workload schedule. With fencing true all three arms run; with
// fencing false only the no-fencing control arm runs (the CLI's
// -fencing=false switch).
func RunSplitBrain(seed uint64, fencing bool) (*SplitBrainRunReport, error) {
	base := Config{Seed: seed, MAPEK: true, Stateful: true, Health: true,
		Fencing: true, DeviceQueueLimit: grayQueueBound}
	r := &SplitBrainRunReport{Seed: seed, FencingArm: fencing}

	if fencing {
		clean := SplitBrain(seed)
		clean.Name = "split-brain/fault-free"
		clean.Events = nil
		var err error
		if r.Baseline, err = Run(clean, base); err != nil {
			return nil, fmt.Errorf("chaos: fault-free arm: %w", err)
		}

		dcfg := base
		dcfg.Hook = splitBrainHook(&r.DefenseObs)
		if r.Defense, err = Run(SplitBrain(seed), dcfg); err != nil {
			return nil, fmt.Errorf("chaos: defense arm: %w", err)
		}
	}

	ccfg := base
	ccfg.Fencing = false
	ccfg.Hook = splitBrainHook(&r.ControlObs)
	ctl := SplitBrain(seed)
	ctl.Name = "split-brain/no-fencing"
	var err error
	if r.Control, err = Run(ctl, ccfg); err != nil {
		return nil, fmt.Errorf("chaos: no-fencing arm: %w", err)
	}
	return r, nil
}

// Violated returns a non-empty reason if any arm misses its bar: the
// fault-free baseline must fence nothing; the defense arm must let zero
// zombie writes land, zero double-applies through, reject the
// superseded plan by epoch, self-demote the stranded checkpointer,
// reconcile the fenced journal at heal, stay byte-identical to the
// fault-free reference, and hold availability ≥ 95%; the control arm
// must measurably diverge, or the fault is too weak to prove anything.
func (r *SplitBrainRunReport) Violated() string {
	if r.FencingArm {
		b := r.Baseline
		if b.FencedWrites != 0 || b.Fence.FencedCheckpoints != 0 || b.Fence.FencedMigrates != 0 {
			return fmt.Sprintf("baseline arm fenced writes with no fault: state=%d ckpt=%d migrate=%d (want 0)",
				b.FencedWrites, b.Fence.FencedCheckpoints, b.Fence.FencedMigrates)
		}
		if b.Fence.PlanEpochRejects != 0 || b.Fence.SelfDemotions != 0 {
			return fmt.Sprintf("baseline arm rejected epochs or demoted leaders with no fault: epoch_rejects=%d self_demotions=%d (want 0)",
				b.Fence.PlanEpochRejects, b.Fence.SelfDemotions)
		}
		if b.ComparedCells == 0 || len(b.DivergentCells) != 0 {
			return fmt.Sprintf("baseline arm state check broken: compared=%d divergent=%d",
				b.ComparedCells, len(b.DivergentCells))
		}

		d, o := r.Defense, r.DefenseObs
		if d.Replans < 1 {
			return "defense arm: partition never forced a replan (fault too weak to move ownership)"
		}
		if o.ZombieAttempts < 1 {
			return "defense arm: authority never moved past the stranded owner's token (no zombie window)"
		}
		if o.ZombieLanded != 0 {
			return fmt.Sprintf("defense arm: %d zombie write(s) LANDED despite fencing", o.ZombieLanded)
		}
		if d.FencedWrites < 1 {
			return "defense arm fenced no writes (zombie never rejected?)"
		}
		if o.ReplaySize < 1 {
			return "defense arm captured no pre-partition journal suffix to replay"
		}
		if o.DoubleApplies != 0 {
			return fmt.Sprintf("defense arm: %d replayed entr(ies) double-applied despite fencing", o.DoubleApplies)
		}
		if !o.StaleRegisterTried || d.Fence.PlanEpochRejects < 1 {
			return "defense arm: superseded plan was not epoch-rejected"
		}
		if d.Fence.SelfDemotions < 1 {
			return "defense arm: stranded checkpointer never self-demoted"
		}
		if d.Fence.Reconciliations < 1 || d.Fence.JournalDiscards < 1 {
			return fmt.Sprintf("defense arm: heal reconciliation missing (reconciliations=%d discards=%d)",
				d.Fence.Reconciliations, d.Fence.JournalDiscards)
		}
		if d.ComparedCells == 0 {
			return "defense arm compared no state cells"
		}
		if len(d.DivergentCells) != 0 {
			return fmt.Sprintf("defense arm diverged from fault-free reference: %v", d.DivergentCells)
		}
		if a := d.Availability(); a < 0.95 {
			return fmt.Sprintf("defense availability %.2f%% (bar: 95%%)", 100*a)
		}
	}

	c, co := r.Control, r.ControlObs
	if co.ZombieAttempts < 1 {
		return "control arm: zombie writer never fired"
	}
	if co.ZombieLanded < 1 {
		return "control arm: no zombie write landed — fencing defends against nothing"
	}
	if len(c.DivergentCells) == 0 && co.DoubleApplies == 0 {
		return "control arm did not diverge (no divergent cells, no double-applies) — fault too weak"
	}
	return ""
}

// Render formats the experiment deterministically: every arm's full
// report, the harness observations, and the headline comparison.
func (r *SplitBrainRunReport) Render() string {
	var b strings.Builder
	mode := "full"
	if !r.FencingArm {
		mode = "control-only (-fencing=false)"
	}
	fmt.Fprintf(&b, "split-brain experiment: seed=%d partition=%s..%s stage=%s mode=%s\n",
		r.Seed, dur(sbPartitionAt), dur(sbHealAt), sbStage, mode)
	if r.FencingArm {
		fmt.Fprintf(&b, "== fault-free arm (baseline, fencing attached) ==\n%s", r.Baseline.Render())
		fmt.Fprintf(&b, "== defense arm (fencing + epochs + reconciliation) ==\n%s", r.Defense.Render())
		b.WriteString(renderObs("defense", r.DefenseObs))
	}
	fmt.Fprintf(&b, "== no-fencing arm (control) ==\n%s", r.Control.Render())
	b.WriteString(renderObs("control", r.ControlObs))
	verdict := "ok"
	if v := r.Violated(); v != "" {
		verdict = "VIOLATED: " + v
	}
	if r.FencingArm {
		fmt.Fprintf(&b, "summary: defense avail=%.2f%% fenced_writes=%d zombie_landed=%d double_applies=%d epoch_rejects=%d divergent=%d | control avail=%.2f%% zombie_landed=%d double_applies=%d divergent=%d | %s\n",
			100*r.Defense.Availability(), r.Defense.FencedWrites,
			r.DefenseObs.ZombieLanded, r.DefenseObs.DoubleApplies,
			r.Defense.Fence.PlanEpochRejects, len(r.Defense.DivergentCells),
			100*r.Control.Availability(), r.ControlObs.ZombieLanded,
			r.ControlObs.DoubleApplies, len(r.Control.DivergentCells), verdict)
	} else {
		fmt.Fprintf(&b, "summary: control avail=%.2f%% zombie_landed=%d double_applies=%d divergent=%d | %s\n",
			100*r.Control.Availability(), r.ControlObs.ZombieLanded,
			r.ControlObs.DoubleApplies, len(r.Control.DivergentCells), verdict)
	}
	return b.String()
}

func renderObs(arm string, o SplitBrainObs) string {
	return fmt.Sprintf("  [%s harness] owner=%s stale_token=%d kb_partitioned=%v zombie_attempts=%d zombie_landed=%d replayed=%d double_applies=%d stale_register_tried=%v rejected=%v\n",
		arm, o.Owner, o.StaleToken, o.KBPartitioned,
		o.ZombieAttempts, o.ZombieLanded, o.ReplaySize, o.DoubleApplies,
		o.StaleRegisterTried, o.StaleRegisterRejected)
}
