package chaos

import (
	"testing"

	"myrtus/internal/sim"
)

func shortNoisyCfg(quotas bool) NoisyConfig {
	return NoisyConfig{
		Seed:       3,
		Quotas:     quotas,
		Duration:   5 * sim.Second,
		FlashStart: 1 * sim.Second,
		FlashEnd:   3 * sim.Second,
		FlashMult:  4,
	}
}

// TestNoisyNeighborIsolation: the flash-crowd scenario must hold the
// victim's flash-window bounds with quotas on, and measurably violate
// them in the shared-admission control arm.
func TestNoisyNeighborIsolation(t *testing.T) {
	rep, err := RunNoisyNeighbor(shortNoisyCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violated(); v != "" {
		t.Fatalf("noisy-neighbor violated with quotas on: %s\n%s", v, rep.Render())
	}

	ctl, err := RunNoisyNeighbor(shortNoisyCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	if ctl.Violated() == "" {
		t.Fatalf("control arm unexpectedly held isolation:\n%s", ctl.Render())
	}
}

// TestNoisyNeighborDeterminism: same seed + config renders
// byte-identical reports.
func TestNoisyNeighborDeterminism(t *testing.T) {
	a, err := RunNoisyNeighbor(shortNoisyCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunNoisyNeighbor(shortNoisyCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("noisy-neighbor run not deterministic:\n--- a ---\n%s--- b ---\n%s", a.Render(), b.Render())
	}
}
