package chaos

import (
	"fmt"
	"strings"

	"myrtus/internal/mirto"
	"myrtus/internal/sim"
)

// Planned-drain harness: the controlled-experiment counterpart to the
// crash scenarios. Three same-seed arms share one workload schedule:
//
//   - drain: the aggregator's device is drained at t=10s — pre-copy,
//     journal catch-up, paused flip. The bar is zero-loss: no request
//     lost, state fingerprints byte-identical to the fault-free
//     reference, and the only unavailability the sub-tick intake pause.
//   - crash control: the same device crashes at the same instant
//     instead (repair at t=20s). Checkpoint restore delivers RPO=0,
//     but detection plus restore cost real unavailability — the RTO
//     the drain arm must beat.
//   - mid-migration crash: the drain starts and the device dies 150ms
//     in, mid-pre-copy. The drain must abort cleanly and degrade to
//     the crash-restore path with no double-apply and no state loss.

// drainAt/drainCrashLag place the faults: the drain fires at drainAt;
// the adversarial arm kills the device drainCrashLag later, which is
// inside the pre-copy window (the first catch-up round cannot start
// before drainAt + the migrator's 250ms round gap).
const (
	drainAt       = 10 * sim.Second
	drainCrashLag = 150 * sim.Millisecond
	drainRepairAt = 20 * sim.Second
)

// PlannedDrain is the bundled maintenance scenario: the stateful app
// runs under open-loop load and the device hosting the 2MB aggregator
// cell is drained mid-run. The generous retry budget matches the other
// stateful scenarios so the divergence check is apples-to-apples.
func PlannedDrain(seed uint64) Scenario {
	sc := Scenario{
		Name:    "planned-drain",
		Ingress: "edge-rv-0",
		SLO:     mirto.SLO{P95LatencyMs: 250, MaxFailureRate: 0.05},
		Events: []Event{
			{At: drainAt, Kind: DrainDevice, Target: "stage:aggregator"},
		},
	}
	_ = seed // the schedule is fixed; the seed shapes run-time draws
	return defaults(Statefulize(sc))
}

// DrainRunReport bundles the three arms plus the headline comparison.
type DrainRunReport struct {
	Seed uint64
	// Drain is the planned-drain arm (with the fault-free divergence
	// check), Crash the same-seed crash-control arm, MidCrash the
	// adversarial crash-mid-migration arm.
	Drain, Crash, MidCrash *Report
}

// Run executes all three arms of the planned-drain experiment with one
// seed and one workload schedule.
func RunPlannedDrain(seed uint64) (*DrainRunReport, error) {
	cfg := Config{Seed: seed, MAPEK: true, Stateful: true}

	drainRep, err := Run(PlannedDrain(seed), cfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: drain arm: %w", err)
	}

	crash := PlannedDrain(seed)
	crash.Name = "planned-drain/crash-control"
	crash.Events = []Event{
		{At: drainAt, Kind: DeviceCrash, Target: "stage:aggregator"},
		{At: drainRepairAt, Kind: DeviceRepair, Target: "stage:aggregator"},
	}
	crashRep, err := Run(defaults(crash), cfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: crash-control arm: %w", err)
	}

	mid := PlannedDrain(seed)
	mid.Name = "planned-drain/mid-crash"
	mid.Events = append(mid.Events,
		Event{At: drainAt + drainCrashLag, Kind: DeviceCrash, Target: "stage:aggregator"},
		Event{At: drainRepairAt, Kind: DeviceRepair, Target: "stage:aggregator"},
	)
	midRep, err := Run(defaults(mid), cfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: mid-crash arm: %w", err)
	}

	return &DrainRunReport{Seed: seed, Drain: drainRep, Crash: crashRep, MidCrash: midRep}, nil
}

// Violated returns a non-empty reason if any arm misses its bar:
// the drain arm must be zero-loss, non-divergent, actually flip
// ownership, and keep every intake pause at or under 2 sensing ticks;
// its worst pause must be strictly below the crash arm's RTO p95; the
// mid-crash arm must abort the drain yet still deliver RPO=0 with no
// divergence (clean fallback to crash restore, no double-apply).
func (r *DrainRunReport) Violated() string {
	d := r.Drain
	if d.Lost != 0 {
		return fmt.Sprintf("drain arm lost %d requests (want 0)", d.Lost)
	}
	if d.ComparedCells == 0 {
		return "drain arm compared no state cells"
	}
	if len(d.DivergentCells) != 0 {
		return fmt.Sprintf("drain arm diverged from fault-free reference: %v", d.DivergentCells)
	}
	if d.RPOItems != 0 {
		return fmt.Sprintf("drain arm rpo_items=%d (want 0)", d.RPOItems)
	}
	if len(d.Drains) == 0 {
		return "drain arm executed no drain"
	}
	flipped := 0
	for _, dr := range d.Drains {
		if dr.Aborted {
			return fmt.Sprintf("drain of %s aborted: %s", dr.Device, dr.Reason)
		}
		for _, sm := range dr.Stages {
			if sm.Flipped {
				flipped++
			}
		}
	}
	if flipped == 0 {
		return "drain arm flipped no stateful stage"
	}
	pauses := d.PauseSamples()
	if len(pauses) == 0 {
		return "drain arm recorded no intake pause"
	}
	_, pauseP95 := quantiles(pauses)
	if ticks := d.ticks(pauseP95); ticks > 2 {
		return fmt.Sprintf("drain pause p95=%s is %.2f ticks (bar: 2)", dur(pauseP95), ticks)
	}
	_, rtoP95 := r.Crash.RTO()
	if rtoP95 == 0 {
		return "crash-control arm measured no RTO (nothing to compare against)"
	}
	pauseMax := pauses[len(pauses)-1]
	if pauseMax >= rtoP95 {
		return fmt.Sprintf("drain pause max=%s not below crash rto_p95=%s", dur(pauseMax), dur(rtoP95))
	}
	m := r.MidCrash
	if m.RPOItems != 0 {
		return fmt.Sprintf("mid-crash arm rpo_items=%d (want 0)", m.RPOItems)
	}
	if m.ComparedCells == 0 {
		return "mid-crash arm compared no state cells"
	}
	if len(m.DivergentCells) != 0 {
		return fmt.Sprintf("mid-crash arm diverged (double-apply?): %v", m.DivergentCells)
	}
	return ""
}

// Render formats the experiment deterministically: the three full arm
// reports plus the headline drain-vs-crash comparison.
func (r *DrainRunReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "planned-drain experiment: seed=%d\n", r.Seed)
	fmt.Fprintf(&b, "== drain arm (planned maintenance) ==\n%s", r.Drain.Render())
	fmt.Fprintf(&b, "== crash-control arm (same seed, same instant) ==\n%s", r.Crash.Render())
	fmt.Fprintf(&b, "== mid-migration crash arm (drain aborted under it) ==\n%s", r.MidCrash.Render())
	pauses := r.Drain.PauseSamples()
	var pauseMax sim.Time
	if len(pauses) > 0 {
		pauseMax = pauses[len(pauses)-1]
	}
	_, rtoP95 := r.Crash.RTO()
	verdict := "ok"
	if v := r.Violated(); v != "" {
		verdict = "VIOLATED: " + v
	}
	fmt.Fprintf(&b, "summary: drain pause_max=%s (%.2f ticks) lost=%d vs crash rto_p95=%s lost=%d | mid-crash rpo_items=%d divergent=%d | %s\n",
		dur(pauseMax), r.Drain.ticks(pauseMax), r.Drain.Lost,
		dur(rtoP95), r.Crash.Lost, r.MidCrash.RPOItems, len(r.MidCrash.DivergentCells), verdict)
	return b.String()
}
