package chaos

import (
	"strings"
	"testing"
)

// TestGrayFailExperimentHoldsItsBars runs the four-arm experiment and
// demands every bar holds: baseline false-positive-free, defense inside
// availability/p99/budget, hedge-only capped at suspect, control
// measurably degraded.
func TestGrayFailExperimentHoldsItsBars(t *testing.T) {
	rep, err := RunGrayFail(7)
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violated(); v != "" {
		t.Errorf("violated: %s\n%s", v, rep.Render())
	}
}

// TestGrayFailSameSeedRunsAreByteIdentical pins the whole experiment —
// scoring, hedging, quarantine drains, probation probes — to the
// deterministic-replay contract the other scenarios honor.
func TestGrayFailSameSeedRunsAreByteIdentical(t *testing.T) {
	a, err := RunGrayFail(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunGrayFail(3)
	if err != nil {
		t.Fatal(err)
	}
	if ra, rb := a.Render(), b.Render(); ra != rb {
		t.Errorf("same-seed renders differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", ra, rb)
	}
}

// TestGrayFailBinaryDetectorNeverFires proves the premise of the whole
// exercise: the fail-slow device keeps heartbeating, so the fail-stop
// detector records zero suspicions across every faulted arm — without
// the health monitor nothing in the stack notices.
func TestGrayFailBinaryDetectorNeverFires(t *testing.T) {
	rep, err := RunGrayFail(7)
	if err != nil {
		t.Fatal(err)
	}
	for arm, r := range map[string]*Report{
		"defense": rep.Defense, "hedge-only": rep.HedgeOnly, "control": rep.Control,
	} {
		if r.Suspected != 0 || r.Confirmed != 0 {
			t.Errorf("%s arm: binary detector fired (suspected=%d confirmed=%d) on a heartbeating device",
				arm, r.Suspected, r.Confirmed)
		}
	}
	if !strings.Contains(rep.Render(), "summary:") {
		t.Error("render missing summary line")
	}
}
