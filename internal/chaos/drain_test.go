package chaos

import (
	"strings"
	"testing"

	"myrtus/internal/sim"
)

// TestPlannedDrainExperimentGates runs the full three-arm experiment
// and asserts the acceptance bars: the drain arm is zero-loss and
// fingerprint-identical to the fault-free reference with a sub-2-tick
// pause, strictly beating the same-seed crash arm's RTO; the
// mid-migration crash arm aborts the drain yet recovers with RPO=0 and
// no divergence.
func TestPlannedDrainExperimentGates(t *testing.T) {
	rep, err := RunPlannedDrain(7)
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violated(); v != "" {
		t.Fatalf("experiment violated: %s", v)
	}

	d := rep.Drain
	if d.Lost != 0 || d.AttemptFailures != 0 {
		t.Fatalf("drain arm lost=%d attempt_failures=%d, want a faultless run", d.Lost, d.AttemptFailures)
	}
	if d.ComparedCells == 0 || len(d.DivergentCells) != 0 {
		t.Fatalf("drain arm divergence: compared=%d divergent=%v", d.ComparedCells, d.DivergentCells)
	}
	if d.LiveMigrations == 0 || d.DrainSplices == 0 {
		t.Fatalf("drain arm live_migrations=%d splices=%d, want both nonzero", d.LiveMigrations, d.DrainSplices)
	}
	if len(d.Drains) != 1 || d.Drains[0].Aborted {
		t.Fatalf("drain arm drains = %+v", d.Drains)
	}
	var flipped bool
	for _, sm := range d.Drains[0].Stages {
		if sm.Flipped {
			flipped = true
			if sm.PrecopyBytes == 0 {
				t.Fatalf("flipped stage %s shipped no pre-copy bytes", sm.Stage)
			}
		}
	}
	if !flipped {
		t.Fatal("drain arm flipped no stage")
	}
	// The planned drain's only unavailability is the intake pause — and
	// it must be bounded by two sensing ticks and beaten by nothing the
	// crash arm can offer.
	_, pauseP95 := quantiles(d.PauseSamples())
	if pauseP95 > 2*d.TickEvery {
		t.Fatalf("pause p95 %s exceeds 2 ticks (%s)", dur(pauseP95), dur(2*d.TickEvery))
	}
	_, rtoP95 := rep.Crash.RTO()
	if rtoP95 == 0 || pauseP95 >= rtoP95 {
		t.Fatalf("drain pause %s not strictly below crash rto_p95 %s", dur(pauseP95), dur(rtoP95))
	}
	// The crash arm had a real incident to recover from; the drain arm
	// had none.
	if rep.Crash.Incidents == 0 || d.Incidents != 0 {
		t.Fatalf("incidents: crash=%d drain=%d, want >0 / 0", rep.Crash.Incidents, d.Incidents)
	}

	m := rep.MidCrash
	if len(m.Drains) != 1 || !m.Drains[0].Aborted {
		t.Fatalf("mid-crash arm drains = %+v, want one aborted drain", m.Drains)
	}
	if m.RPOItems != 0 || len(m.DivergentCells) != 0 || m.ComparedCells == 0 {
		t.Fatalf("mid-crash recovery: rpo=%d divergent=%v compared=%d",
			m.RPOItems, m.DivergentCells, m.ComparedCells)
	}
	if m.LiveMigrations != 0 {
		t.Fatalf("mid-crash arm counted %d live migrations for an aborted drain", m.LiveMigrations)
	}
}

// TestPlannedDrainRenderDeterministic renders the experiment twice from
// independent runs: byte-identical output is the regression contract
// the smoke script diffs on.
func TestPlannedDrainRenderDeterministic(t *testing.T) {
	a, err := RunPlannedDrain(3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPlannedDrain(3)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Render(), b.Render()
	if ra != rb {
		t.Fatalf("renders differ:\n%s\n----\n%s", ra, rb)
	}
	for _, want := range []string{"migration:", "pre", "residuals=", "pause ", "summary:"} {
		if !strings.Contains(ra, want) {
			t.Fatalf("render missing %q:\n%s", want, ra)
		}
	}
}

// TestDrainEventRequiresMAPEK: without the self-healing stack there is
// no migrator, so the event must surface as an event error, not a
// crash.
func TestDrainEventRequiresMAPEK(t *testing.T) {
	sc := PlannedDrain(1)
	rep, err := Run(sc, Config{Seed: 1, Stateful: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.EventErrors) != 1 || !strings.Contains(rep.EventErrors[0], "MAPE-K") {
		t.Fatalf("event errors = %v, want one MAPE-K rejection", rep.EventErrors)
	}
	if len(rep.Drains) != 0 {
		t.Fatalf("drains ran without a migrator: %+v", rep.Drains)
	}
}

// TestDrainScenarioShape pins the bundled scenario's structure so the
// smoke gates keep meaning what they say.
func TestDrainScenarioShape(t *testing.T) {
	sc := PlannedDrain(9)
	if sc.Name != "planned-drain" || sc.App != StatefulApp {
		t.Fatalf("scenario = %q app stateful=%v", sc.Name, sc.App == StatefulApp)
	}
	if len(sc.Events) != 1 || sc.Events[0].Kind != DrainDevice {
		t.Fatalf("events = %+v, want one drain", sc.Events)
	}
	if sc.Events[0].At != 10*sim.Second {
		t.Fatalf("drain at %s", sc.Events[0].At)
	}
	if sc.Retry.Attempts != 10 {
		t.Fatalf("retry budget %d, want the stateful default 10", sc.Retry.Attempts)
	}
}
