// Package chaos is the deterministic fault-injection subsystem: seeded
// scenarios of timed fault events (device crashes, link degradation and
// partitions, broker overload, correlated layer outages) executed as
// discrete events on the simulation clock, driven against a full
// continuum with the MIRTO self-healing stack attached. Two runs with
// the same seed are byte-identical, which turns resilience claims —
// availability, MTTR, recovery attribution — into regression-testable
// numbers.
package chaos

import (
	"sort"

	"myrtus/internal/mirto"
	"myrtus/internal/sim"
)

// Kind names one fault-event type.
type Kind string

const (
	// DeviceCrash silently fails the target device: no FailDevice call,
	// the heartbeat-based failure detector has to notice.
	DeviceCrash Kind = "device-crash"
	// DeviceRepair brings a crashed device back (paired with the crash's
	// target so the same physical device recovers even after replans).
	DeviceRepair Kind = "device-repair"
	// LinkDegrade rewrites a link's latency/bandwidth/loss in place.
	LinkDegrade Kind = "link-degrade"
	// LinkRestore undoes a LinkDegrade on the same target.
	LinkRestore Kind = "link-restore"
	// NodeIsolate cuts every link touching the target device (network
	// partition); the device itself stays healthy.
	NodeIsolate Kind = "node-isolate"
	// NodeReconnect restores the links a NodeIsolate on the same target cut.
	NodeReconnect Kind = "node-reconnect"
	// LayerOutage fails every device of the target layer at once
	// (correlated failure: power loss, zone outage).
	LayerOutage Kind = "layer-outage"
	// LayerRestore repairs the devices a LayerOutage took down.
	LayerRestore Kind = "layer-restore"
	// BrokerBurst floods the pub/sub broker with Messages × Bytes noise
	// published from the target device, loading its real uplinks.
	BrokerBurst Kind = "broker-burst"
	// DrainDevice starts a planned drain of the target device: the
	// migrator cordons it and live-migrates every resident stateful
	// stage (pre-copy → catch-up → flip) with zero request loss. The
	// maintenance event the MYRTUS continuum's any-tier mobility story
	// promises — as opposed to DeviceCrash's unplanned recovery.
	DrainDevice Kind = "drain-device"
	// DeviceSlow injects a fail-slow gray failure: the target's service
	// times stretch by Event.Slow while the device keeps heartbeating,
	// so the binary failure detector provably never fires — only the
	// peer-relative health monitor can see it.
	DeviceSlow Kind = "device-slow"
	// DeviceUnslow restores the slowed device's nominal speed (paired
	// with the slow's target so the same physical device recovers even
	// after the stage migrates away).
	DeviceUnslow Kind = "device-unslow"
)

// Event is one timed fault. Target is a device name, a layer name (for
// layer events), a "stage:<node>" reference resolved against the live
// plan when the event fires, or — for link events — "A<->B" / "A->B"
// where each endpoint may itself be a stage reference.
type Event struct {
	At     sim.Time
	Kind   Kind
	Target string

	// Link quality for LinkDegrade.
	Latency   sim.Time
	Bandwidth float64
	LossP     float64

	// Burst sizing for BrokerBurst.
	Messages int
	Bytes    int

	// Slow is the DeviceSlow service-time multiplier (>1).
	Slow float64
}

// Scenario is a seeded schedule of faults plus the workload driven
// through them.
type Scenario struct {
	Name string
	// App is the TOSCA service template under test ("" = DefaultApp).
	App string
	// Duration is the virtual length of the run; open-loop requests
	// arrive every RequestEvery until then.
	Duration     sim.Time
	RequestEvery sim.Time
	Items        int64
	// Ingress is the device the request input data originates at.
	Ingress string
	// SLO drives the MAPE-K loop; Retry shapes the serve-path retries.
	SLO   mirto.SLO
	Retry mirto.RetryPolicy

	Events []Event
}

// DefaultApp is the three-stage pipeline the bundled scenarios stress:
// an edge-pinned camera, a security-medium accelerated detector, and an
// aggregator free to ride fog or cloud.
const DefaultApp = `
tosca_definitions_version: tosca_2_0
metadata:
  template_name: chaos-cam
topology_template:
  node_templates:
    camera:
      type: myrtus.nodes.Container
      properties: {cpu: 0.5, memoryMB: 128, gops: 0.2, outMB: 0.1, inMB: 0.2}
    detector:
      type: myrtus.nodes.AcceleratedKernel
      properties: {cpu: 1, memoryMB: 256, kernel: conv2d, gops: 2, outMB: 0.05}
      requirements:
        - source: camera
    aggregator:
      type: myrtus.nodes.Container
      properties: {cpu: 2, memoryMB: 1024, gops: 1, outMB: 0.01}
      requirements:
        - source: detector
  policies:
    - cam-edge:
        type: myrtus.policies.Placement
        targets: [camera]
        properties: {layer: edge}
    - det-medium:
        type: myrtus.policies.Security
        targets: [detector]
        properties: {level: medium}
`

// StatefulApp is DefaultApp with stateful detector and aggregator
// stages: the detector accumulates per-window detection counters
// (crashed and restored by edge-flap), the aggregator holds the rolling
// aggregate (isolated and migrated by fog-partition) — together they
// exercise both the crash-restore and the clean-migration recovery
// paths.
const StatefulApp = `
tosca_definitions_version: tosca_2_0
metadata:
  template_name: chaos-cam
topology_template:
  node_templates:
    camera:
      type: myrtus.nodes.Container
      properties: {cpu: 0.5, memoryMB: 128, gops: 0.2, outMB: 0.1, inMB: 0.2}
    detector:
      type: myrtus.nodes.AcceleratedKernel
      properties: {cpu: 1, memoryMB: 256, kernel: conv2d, gops: 2, outMB: 0.05, stateful: true, stateMB: 0.5}
      requirements:
        - source: camera
    aggregator:
      type: myrtus.nodes.Container
      properties: {cpu: 2, memoryMB: 1024, gops: 1, outMB: 0.01, stateful: true, stateMB: 2}
      requirements:
        - source: detector
  policies:
    - cam-edge:
        type: myrtus.policies.Placement
        targets: [camera]
        properties: {layer: edge}
    - det-medium:
        type: myrtus.policies.Security
        targets: [detector]
        properties: {level: medium}
`

// Statefulize converts a scenario to its stateful-app variant: the app
// gains stateful stages and the retry budget grows so every request
// survives the bundled fault windows — the state-divergence check
// demands that the chaos run eventually applies exactly the updates the
// fault-free run does.
func Statefulize(sc Scenario) Scenario {
	sc.App = StatefulApp
	sc.Retry = mirto.RetryPolicy{Attempts: 10, Base: 100 * sim.Millisecond}
	return sc
}

func defaults(sc Scenario) Scenario {
	if sc.App == "" {
		sc.App = DefaultApp
	}
	if sc.Duration <= 0 {
		sc.Duration = 60 * sim.Second
	}
	if sc.RequestEvery <= 0 {
		sc.RequestEvery = 50 * sim.Millisecond
	}
	if sc.Items <= 0 {
		sc.Items = 1
	}
	if sc.Retry.Attempts == 0 {
		sc.Retry = mirto.RetryPolicy{Attempts: 6, Base: 100 * sim.Millisecond}
	}
	sort.SliceStable(sc.Events, func(i, j int) bool { return sc.Events[i].At < sc.Events[j].At })
	return sc
}

// EdgeFlap is the bundled link-flap scenario: the camera's uplink flaps
// three times (degrade/restore), then the detector's and the camera's
// devices crash and come back, and a broker burst floods the camera's
// uplink near the end. The flap tests replan hysteresis (one replan per
// cooldown, not a storm); the crashes test detection and failover.
func EdgeFlap(seed uint64) Scenario {
	sc := Scenario{
		Name:    "edge-flap",
		Ingress: "edge-rv-0",
		SLO:     mirto.SLO{P95LatencyMs: 250, MaxFailureRate: 0.05},
	}
	// Three 2-second flaps of the camera device's gateway uplink. The
	// stage reference re-resolves per flap, so the fault follows the app
	// after each escape replan.
	for i := 0; i < 3; i++ {
		at := sim.Time(5+4*i) * sim.Second
		sc.Events = append(sc.Events,
			Event{At: at, Kind: LinkDegrade, Target: "stage:camera<->fog-gw-0",
				Latency: 60 * sim.Millisecond, Bandwidth: 6e6, LossP: 0.3},
			Event{At: at + 2*sim.Second, Kind: LinkRestore, Target: "stage:camera<->fog-gw-0"},
		)
	}
	sc.Events = append(sc.Events,
		Event{At: 20 * sim.Second, Kind: DeviceCrash, Target: "stage:detector"},
		Event{At: 27 * sim.Second, Kind: DeviceRepair, Target: "stage:detector"},
		Event{At: 40 * sim.Second, Kind: DeviceCrash, Target: "stage:camera"},
		Event{At: 47 * sim.Second, Kind: DeviceRepair, Target: "stage:camera"},
		Event{At: 52 * sim.Second, Kind: BrokerBurst, Target: "stage:camera", Messages: 2000, Bytes: 10_000},
	)
	_ = seed // the schedule is fixed; the seed shapes loss/jitter draws at run time
	return defaults(sc)
}

// FogPartition is the bundled partition scenario: the aggregator's
// device is cut off the network for 8 seconds, a correlated cloud-layer
// outage strikes at a seeded time, and a broker burst rides on top.
func FogPartition(seed uint64) Scenario {
	rng := sim.NewRNG(seed).Fork("chaos/fog-partition")
	outageAt := sim.Time(rng.Range(30, 38) * float64(sim.Second))
	sc := Scenario{
		Name:    "fog-partition",
		Ingress: "edge-rv-0",
		SLO:     mirto.SLO{P95LatencyMs: 250, MaxFailureRate: 0.05},
		Events: []Event{
			{At: 10 * sim.Second, Kind: NodeIsolate, Target: "stage:aggregator"},
			{At: 18 * sim.Second, Kind: NodeReconnect, Target: "stage:aggregator"},
			{At: outageAt, Kind: LayerOutage, Target: "cloud"},
			{At: outageAt + 5*sim.Second, Kind: LayerRestore, Target: "cloud"},
			{At: 50 * sim.Second, Kind: BrokerBurst, Target: "stage:detector", Messages: 1500, Bytes: 20_000},
		},
	}
	return defaults(sc)
}
