package chaos

import (
	"fmt"
	"strings"

	"myrtus/internal/mirto"
	"myrtus/internal/sim"
)

// Gray-failure harness: the fail-slow counterpart to the fail-stop
// scenarios. The device hosting the aggregator silently stretches its
// service times 40× while heartbeating normally — the binary failure
// detector provably never fires, only the peer-relative health monitor
// can see it. Four same-seed arms share one workload schedule:
//
//   - fault-free baseline: no fault, full defense attached. The tail
//     reference the defense arm is judged against, and the
//     false-positive check: a healthy continuum must produce zero
//     suspects, zero quarantines, zero hedges.
//   - defense: fail-slow pulse with the full stack — peer-relative
//     scoring, hedged requests, and quarantine via live migration. The
//     bar: availability ≥ 99% and p99 within 2× the baseline's.
//   - hedge-only: same fault, escalation capped at suspect-slow. Hedges
//     rescue individual requests but the slow device keeps taking
//     traffic — the ablation showing why quarantine earns its place.
//   - no-defense control: same fault, health monitor off. MAPE-K stays
//     on and still cannot help — the device heartbeats, so nothing
//     escalates. Must measurably violate both defense bars, or the
//     fault is too weak to prove anything.

// grayFailAt/grayFail2At/grayFail3At/grayFailDur place the three
// fail-slow pulses; grayFailSlow is the service-time multiplier. At 40×
// the aggregator's ~40ms stage becomes ~1.6s: with a request every 40ms
// the slow device's queue blows through the 300ms bound and overload
// rejections begin ~0.6s into each pulse — the window the defense has
// to detect and route around. Later pulses re-resolve
// "stage:aggregator", so each strikes whatever device the stage
// migrated to after the previous quarantine: the fault follows the app,
// and the defense has to detect a fresh device from a cold score every
// time.
const (
	grayFailAt   = 10 * sim.Second
	grayFail2At  = 40 * sim.Second
	grayFail3At  = 65 * sim.Second
	grayFailDur  = 4 * sim.Second
	grayFailSlow = 40.0

	grayFailDuration     = 90 * sim.Second
	grayFailRequestEvery = 40 * sim.Millisecond

	// grayQueueBound is the per-device queue-wait bound both arms run
	// under: without it a fail-slow device absorbs unbounded queue and
	// every request "succeeds" seconds late, hiding the availability
	// damage real bounded systems take.
	grayQueueBound = 300 * sim.Millisecond
)

// grayFailApp is StatefulApp with the aggregator pinned to the fog
// layer: a 16-core FMDC at 40× service time saturates under the 40ms
// open-loop arrivals (utilization 2.5), so the fault produces real
// queue-bound rejections — a 64-core cloud server would absorb the
// whole pulse and hide the availability damage.
const grayFailApp = `
tosca_definitions_version: tosca_2_0
metadata:
  template_name: chaos-cam
topology_template:
  node_templates:
    camera:
      type: myrtus.nodes.Container
      properties: {cpu: 0.5, memoryMB: 128, gops: 0.2, outMB: 0.1, inMB: 0.2}
    detector:
      type: myrtus.nodes.AcceleratedKernel
      properties: {cpu: 1, memoryMB: 256, kernel: conv2d, gops: 2, outMB: 0.05, stateful: true, stateMB: 0.5}
      requirements:
        - source: camera
    aggregator:
      type: myrtus.nodes.Container
      properties: {cpu: 2, memoryMB: 1024, gops: 1, outMB: 0.01, stateful: true, stateMB: 2}
      requirements:
        - source: detector
  policies:
    - cam-edge:
        type: myrtus.policies.Placement
        targets: [camera]
        properties: {layer: edge}
    - det-medium:
        type: myrtus.policies.Security
        targets: [detector]
        properties: {level: medium}
    - agg-fog:
        type: myrtus.policies.Placement
        targets: [aggregator]
        properties: {layer: fog}
`

// GrayFail is the bundled fail-slow scenario: the stateful pipeline
// under open-loop load, with the aggregator's device (re-resolved at
// fire time, so each fault lands wherever the stage lives right then)
// slowed 40× for 4 seconds, three times. The un-slow pairs by target,
// restoring the same physical device even after quarantine migrates
// the stage away.
func GrayFail(seed uint64) Scenario {
	sc := Scenario{
		Name:         "gray-fail",
		Ingress:      "edge-rv-0",
		Duration:     grayFailDuration,
		RequestEvery: grayFailRequestEvery,
		SLO:          mirto.SLO{P95LatencyMs: 250, MaxFailureRate: 0.05},
		Events: []Event{
			{At: grayFailAt, Kind: DeviceSlow, Target: "stage:aggregator", Slow: grayFailSlow},
			{At: grayFailAt + grayFailDur, Kind: DeviceUnslow, Target: "stage:aggregator"},
			{At: grayFail2At, Kind: DeviceSlow, Target: "stage:aggregator", Slow: grayFailSlow},
			{At: grayFail2At + grayFailDur, Kind: DeviceUnslow, Target: "stage:aggregator"},
			{At: grayFail3At, Kind: DeviceSlow, Target: "stage:aggregator", Slow: grayFailSlow},
			{At: grayFail3At + grayFailDur, Kind: DeviceUnslow, Target: "stage:aggregator"},
		},
	}
	_ = seed // the schedule is fixed; the seed shapes run-time draws
	sc = defaults(Statefulize(sc))
	sc.App = grayFailApp
	return sc
}

// GrayFailRunReport bundles the four arms plus the headline comparison.
type GrayFailRunReport struct {
	Seed uint64
	// Baseline is the fault-free reference arm, Defense the full
	// defense arm, HedgeOnly the quarantine-ablated arm, Control the
	// no-defense arm.
	Baseline, Defense, HedgeOnly, Control *Report
}

// RunGrayFail executes all four arms of the gray-failure experiment
// with one seed and one workload schedule.
func RunGrayFail(seed uint64) (*GrayFailRunReport, error) {
	base := Config{Seed: seed, MAPEK: true, Stateful: true, Health: true,
		DeviceQueueLimit: grayQueueBound}

	clean := GrayFail(seed)
	clean.Name = "gray-fail/fault-free"
	clean.Events = nil
	baseRep, err := Run(clean, base)
	if err != nil {
		return nil, fmt.Errorf("chaos: fault-free arm: %w", err)
	}

	defRep, err := Run(GrayFail(seed), base)
	if err != nil {
		return nil, fmt.Errorf("chaos: defense arm: %w", err)
	}

	hcfg := base
	hcfg.HedgeOnly = true
	hedge := GrayFail(seed)
	hedge.Name = "gray-fail/hedge-only"
	hedgeRep, err := Run(hedge, hcfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: hedge-only arm: %w", err)
	}

	ccfg := base
	ccfg.Health = false
	ctl := GrayFail(seed)
	ctl.Name = "gray-fail/no-defense"
	ctlRep, err := Run(ctl, ccfg)
	if err != nil {
		return nil, fmt.Errorf("chaos: no-defense arm: %w", err)
	}

	return &GrayFailRunReport{Seed: seed,
		Baseline: baseRep, Defense: defRep, HedgeOnly: hedgeRep, Control: ctlRep}, nil
}

// Violated returns a non-empty reason if any arm misses its bar: the
// fault-free baseline must raise zero false alarms; the defense arm
// must detect, quarantine, hold availability ≥ 99% and p99 within 2×
// the baseline, keep hedge overhead inside the 5% budget, and stay
// byte-identical to the fault-free state (exactly-once under hedging);
// the hedge-only arm must hedge without quarantining; the control arm
// must measurably violate both defense bars.
func (r *GrayFailRunReport) Violated() string {
	_, _, basP99 := r.Baseline.LatencyQuantiles()
	if basP99 <= 0 {
		return "baseline arm measured no latency (nothing to compare against)"
	}
	b := r.Baseline.Health
	if b.Suspects != 0 || b.Quarantines != 0 {
		return fmt.Sprintf("baseline arm raised false alarms: suspects=%d quarantines=%d (want 0)",
			b.Suspects, b.Quarantines)
	}
	if b.HedgesFired != 0 {
		return fmt.Sprintf("baseline arm fired %d hedges with no fault (want 0)", b.HedgesFired)
	}

	d := r.Defense
	if a := d.Availability(); a < 0.99 {
		return fmt.Sprintf("defense availability %.2f%% (bar: 99%%)", 100*a)
	}
	_, _, defP99 := d.LatencyQuantiles()
	if defP99 > 2*basP99 {
		return fmt.Sprintf("defense p99=%s exceeds 2x baseline p99=%s", dur(defP99), dur(basP99))
	}
	if d.Health.Quarantines < 1 {
		return "defense arm quarantined nothing"
	}
	if len(d.DetectionSamples) < 1 {
		return "defense arm recorded no detection sample"
	}
	if d.Health.HedgesFired < 1 {
		return "defense arm fired no hedge"
	}
	budget := uint64(0.05*float64(d.Health.Dispatches)) + 1
	if d.Health.HedgesFired > budget {
		return fmt.Sprintf("defense hedge overhead %d of %d dispatches breaches the 5%% budget",
			d.Health.HedgesFired, d.Health.Dispatches)
	}
	if d.ComparedCells == 0 {
		return "defense arm compared no state cells"
	}
	if len(d.DivergentCells) != 0 {
		return fmt.Sprintf("defense arm diverged from fault-free reference (hedge double-apply?): %v",
			d.DivergentCells)
	}

	h := r.HedgeOnly
	if h.Health.Quarantines != 0 {
		return fmt.Sprintf("hedge-only arm quarantined %d devices (escalation should cap at suspect)",
			h.Health.Quarantines)
	}
	if h.Health.Suspects < 1 {
		return "hedge-only arm suspected nothing"
	}

	c := r.Control
	_, _, ctlP99 := c.LatencyQuantiles()
	if c.Availability() >= 0.99 {
		return fmt.Sprintf("control availability %.2f%% did not degrade below 99%% — fault too weak",
			100*c.Availability())
	}
	if ctlP99 <= 2*basP99 {
		return fmt.Sprintf("control p99=%s did not blow the 2x baseline bar (%s) — fault too weak",
			dur(ctlP99), dur(basP99))
	}
	return ""
}

// Render formats the experiment deterministically: the four full arm
// reports plus the headline defense-vs-control comparison.
func (r *GrayFailRunReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "gray-fail experiment: seed=%d slow=%gx pulse=%s\n",
		r.Seed, grayFailSlow, dur(grayFailDur))
	fmt.Fprintf(&b, "== fault-free arm (baseline, defense attached) ==\n%s", r.Baseline.Render())
	fmt.Fprintf(&b, "== defense arm (score + hedge + quarantine) ==\n%s", r.Defense.Render())
	fmt.Fprintf(&b, "== hedge-only arm (no quarantine) ==\n%s", r.HedgeOnly.Render())
	fmt.Fprintf(&b, "== no-defense arm (control) ==\n%s", r.Control.Render())
	_, _, basP99 := r.Baseline.LatencyQuantiles()
	_, _, defP99 := r.Defense.LatencyQuantiles()
	_, _, hedP99 := r.HedgeOnly.LatencyQuantiles()
	_, _, ctlP99 := r.Control.LatencyQuantiles()
	detP50, _ := quantiles(r.Defense.DetectionSamples)
	verdict := "ok"
	if v := r.Violated(); v != "" {
		verdict = "VIOLATED: " + v
	}
	fmt.Fprintf(&b, "summary: baseline p99=%s | defense avail=%.2f%% p99=%s detect_p50=%s quarantines=%d hedges=%d won=%d | hedge-only avail=%.2f%% p99=%s | control avail=%.2f%% p99=%s | %s\n",
		dur(basP99),
		100*r.Defense.Availability(), dur(defP99), dur(detP50),
		r.Defense.Health.Quarantines, r.Defense.Health.HedgesFired, r.Defense.Health.HedgesWon,
		100*r.HedgeOnly.Availability(), dur(hedP99),
		100*r.Control.Availability(), dur(ctlP99), verdict)
	return b.String()
}
