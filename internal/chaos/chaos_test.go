package chaos

import (
	"strings"
	"testing"
)

// run executes a bundled scenario and fails the test on any setup error.
func run(t *testing.T, name string, seed uint64, mapek bool) *Report {
	t.Helper()
	sc, err := BuiltIn(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, Config{Seed: seed, MAPEK: mapek})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return rep
}

func TestScenariosSelfHealToSLO(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			rep := run(t, name, 7, true)
			if got := rep.Availability(); got < 0.99 {
				t.Errorf("availability = %.4f, want >= 0.99\n%s", got, rep.Render())
			}
			if rep.Total < 100 {
				t.Errorf("total requests = %d, scenario barely exercised", rep.Total)
			}
			if rep.Incidents == 0 || len(rep.MTTRSamples) == 0 {
				t.Errorf("incidents=%d mttr samples=%d, faults never bit",
					rep.Incidents, len(rep.MTTRSamples))
			}
			p50, p95 := rep.MTTR()
			if p50 <= 0 || p95 < p50 {
				t.Errorf("mttr p50=%v p95=%v not finite/ordered", p50, p95)
			}
			if rep.Replans < 1 {
				t.Errorf("replans = %d, self-healing never replanned", rep.Replans)
			}
			if rep.EventsApplied == 0 || len(rep.EventErrors) != 0 {
				t.Errorf("events applied=%d errors=%v", rep.EventsApplied, rep.EventErrors)
			}
			if len(rep.Attribution()) == 0 {
				t.Errorf("no recovery attribution despite %d incidents", rep.Incidents)
			}
		})
	}
}

func TestSameSeedRunsAreByteIdentical(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			a := run(t, name, 7, true).Render()
			b := run(t, name, 7, true).Render()
			if a != b {
				t.Errorf("same-seed reports differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
			}
		})
	}
}

func TestControlWithoutMAPEKIsStrictlyWorse(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			healed := run(t, name, 7, true)
			control := run(t, name, 7, false)
			if control.Replans != 0 || control.LoopIterations != 0 {
				t.Fatalf("control ran the loop: replans=%d iterations=%d",
					control.Replans, control.LoopIterations)
			}
			ha, ca := healed.Availability(), control.Availability()
			if ca >= ha {
				t.Errorf("control availability %.4f >= healed %.4f", ca, ha)
			}
			if control.Lost <= healed.Lost {
				t.Errorf("control lost %d <= healed lost %d", control.Lost, healed.Lost)
			}
			hp50, _ := healed.MTTR()
			cp50, _ := control.MTTR()
			if cp50 <= hp50 {
				t.Errorf("control mttr p50 %v <= healed %v", cp50, hp50)
			}
		})
	}
}

func TestBuiltInUnknownScenario(t *testing.T) {
	if _, err := BuiltIn("no-such", 1); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("err = %v", err)
	}
}

func TestSeedShapesSeededDraws(t *testing.T) {
	// fog-partition's cloud outage time is a seeded draw: different seeds
	// should move it (with overwhelming probability over a few tries).
	base := FogPartition(1)
	moved := false
	for seed := uint64(2); seed < 6; seed++ {
		if FogPartition(seed).Events[2].At != base.Events[2].At {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("cloud outage time identical across seeds 1-5")
	}
	// And the same seed reproduces the same schedule.
	if FogPartition(1).Events[2].At != base.Events[2].At {
		t.Error("same seed drew a different outage time")
	}
}
