package chaos

import (
	"strings"
	"testing"

	"myrtus/internal/sim"
)

// run executes a bundled scenario and fails the test on any setup error.
func run(t *testing.T, name string, seed uint64, mapek bool) *Report {
	t.Helper()
	sc, err := BuiltIn(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(sc, Config{Seed: seed, MAPEK: mapek})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return rep
}

func TestScenariosSelfHealToSLO(t *testing.T) {
	for _, name := range EventNames() {
		t.Run(name, func(t *testing.T) {
			rep := run(t, name, 7, true)
			if got := rep.Availability(); got < 0.99 {
				t.Errorf("availability = %.4f, want >= 0.99\n%s", got, rep.Render())
			}
			if rep.Total < 100 {
				t.Errorf("total requests = %d, scenario barely exercised", rep.Total)
			}
			if rep.Incidents == 0 || len(rep.MTTRSamples) == 0 {
				t.Errorf("incidents=%d mttr samples=%d, faults never bit",
					rep.Incidents, len(rep.MTTRSamples))
			}
			p50, p95 := rep.MTTR()
			if p50 <= 0 || p95 < p50 {
				t.Errorf("mttr p50=%v p95=%v not finite/ordered", p50, p95)
			}
			if rep.Replans < 1 {
				t.Errorf("replans = %d, self-healing never replanned", rep.Replans)
			}
			if rep.EventsApplied == 0 || len(rep.EventErrors) != 0 {
				t.Errorf("events applied=%d errors=%v", rep.EventsApplied, rep.EventErrors)
			}
			if len(rep.Attribution()) == 0 {
				t.Errorf("no recovery attribution despite %d incidents", rep.Incidents)
			}
		})
	}
}

func TestSameSeedRunsAreByteIdentical(t *testing.T) {
	for _, name := range EventNames() {
		t.Run(name, func(t *testing.T) {
			a := run(t, name, 7, true).Render()
			b := run(t, name, 7, true).Render()
			if a != b {
				t.Errorf("same-seed reports differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
			}
		})
	}
}

func TestControlWithoutMAPEKIsStrictlyWorse(t *testing.T) {
	for _, name := range EventNames() {
		t.Run(name, func(t *testing.T) {
			healed := run(t, name, 7, true)
			control := run(t, name, 7, false)
			if control.Replans != 0 || control.LoopIterations != 0 {
				t.Fatalf("control ran the loop: replans=%d iterations=%d",
					control.Replans, control.LoopIterations)
			}
			ha, ca := healed.Availability(), control.Availability()
			if ca >= ha {
				t.Errorf("control availability %.4f >= healed %.4f", ca, ha)
			}
			if control.Lost <= healed.Lost {
				t.Errorf("control lost %d <= healed lost %d", control.Lost, healed.Lost)
			}
			hp50, _ := healed.MTTR()
			cp50, _ := control.MTTR()
			if cp50 <= hp50 {
				t.Errorf("control mttr p50 %v <= healed %v", cp50, hp50)
			}
		})
	}
}

// runStateful executes a bundled scenario in its stateful-app variant.
func runStateful(t *testing.T, name string, seed uint64, noCheckpoint bool) *Report {
	t.Helper()
	sc, err := BuiltIn(name, seed)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(Statefulize(sc), Config{
		Seed: seed, MAPEK: true, Stateful: true, NoCheckpoint: noCheckpoint,
	})
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return rep
}

func TestStatefulScenariosRecoverWithZeroRPO(t *testing.T) {
	for _, name := range EventNames() {
		t.Run(name, func(t *testing.T) {
			rep := runStateful(t, name, 7, false)
			if !rep.Stateful || !rep.Checkpoint {
				t.Fatalf("report flags stateful=%v checkpoint=%v", rep.Stateful, rep.Checkpoint)
			}
			if rep.StateApplied == 0 {
				t.Fatal("no state applies; stateful stages never exercised")
			}
			if rep.Invalidations == 0 {
				t.Errorf("invalidations = 0, faults never destroyed state\n%s", rep.Render())
			}
			if rep.Ckpt.Restores == 0 || len(rep.RTOSamples) == 0 {
				t.Errorf("restores=%d rto samples=%d, recovery never ran",
					rep.Ckpt.Restores, len(rep.RTOSamples))
			}
			_, p95 := rep.RTO()
			if p95 <= 0 || p95 > 5*sim.Second {
				t.Errorf("rto p95 = %v, want finite and under 5s", p95)
			}
			if rep.RPOItems != 0 {
				t.Errorf("RPOItems = %d, committed state was lost\n%s", rep.RPOItems, rep.Render())
			}
			if rep.UnrestoredCells != 0 {
				t.Errorf("unrestored cells = %d at drain", rep.UnrestoredCells)
			}
			if rep.ComparedCells != 2 || len(rep.DivergentCells) != 0 {
				t.Errorf("divergence: compared=%d divergent=%v",
					rep.ComparedCells, rep.DivergentCells)
			}
			if rep.Ckpt.Fulls == 0 || rep.Ckpt.BytesSent == 0 {
				t.Errorf("checkpointer idle: fulls=%d bytes=%d", rep.Ckpt.Fulls, rep.Ckpt.BytesSent)
			}
		})
	}
}

func TestStatefulWithoutCheckpointLosesState(t *testing.T) {
	// The control arm: same faults, no checkpointing — the loss must be
	// measurable, or the recovery machinery is claiming credit it did not
	// earn.
	for _, name := range EventNames() {
		t.Run(name, func(t *testing.T) {
			rep := runStateful(t, name, 7, true)
			if rep.Checkpoint {
				t.Fatal("control arm reports checkpoint=on")
			}
			if rep.RPOItems == 0 {
				t.Errorf("control arm lost nothing; checkpointing shows no benefit\n%s", rep.Render())
			}
			if rep.Ckpt.Restores != 0 || len(rep.RTOSamples) != 0 {
				t.Errorf("control arm restored state: restores=%d rto=%d",
					rep.Ckpt.Restores, len(rep.RTOSamples))
			}
			if len(rep.DivergentCells) == 0 {
				t.Errorf("control arm state matches the fault-free run despite losing %d items",
					rep.RPOItems)
			}
		})
	}
}

func TestStatefulSameSeedRunsAreByteIdentical(t *testing.T) {
	a := runStateful(t, "edge-flap", 7, false).Render()
	b := runStateful(t, "edge-flap", 7, false).Render()
	if a != b {
		t.Errorf("same-seed stateful reports differ:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
}

func TestStatefulizeShape(t *testing.T) {
	sc := Statefulize(EdgeFlap(1))
	if sc.App != StatefulApp {
		t.Fatal("app not swapped")
	}
	if sc.Retry.Attempts < 10 {
		t.Fatalf("retry attempts = %d, divergence check needs every request to land", sc.Retry.Attempts)
	}
}

func TestBuiltInUnknownScenario(t *testing.T) {
	if _, err := BuiltIn("no-such", 1); err == nil ||
		!strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("err = %v", err)
	}
}

func TestSeedShapesSeededDraws(t *testing.T) {
	// fog-partition's cloud outage time is a seeded draw: different seeds
	// should move it (with overwhelming probability over a few tries).
	base := FogPartition(1)
	moved := false
	for seed := uint64(2); seed < 6; seed++ {
		if FogPartition(seed).Events[2].At != base.Events[2].At {
			moved = true
			break
		}
	}
	if !moved {
		t.Error("cloud outage time identical across seeds 1-5")
	}
	// And the same seed reproduces the same schedule.
	if FogPartition(1).Events[2].At != base.Events[2].At {
		t.Error("same seed drew a different outage time")
	}
}

func TestDeltaReplansDoNotRegressMTTR(t *testing.T) {
	// Delta replans change how the MAPE-K loop computes a new plan, not
	// when it runs or what it produces — so recovery time must not get
	// worse. The clock is virtual and the runs are deterministic, so an
	// exact comparison against the full-replan control arm is valid.
	for _, name := range EventNames() {
		t.Run(name, func(t *testing.T) {
			runMode := func(noDelta bool) *Report {
				sc, err := BuiltIn(name, 7)
				if err != nil {
					t.Fatal(err)
				}
				rep, err := Run(sc, Config{Seed: 7, MAPEK: true, NoDeltaReplans: noDelta})
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				return rep
			}
			on, off := runMode(false), runMode(true)
			if off.DeltaReplans != 0 {
				t.Fatalf("control arm ran %d delta replans, want 0", off.DeltaReplans)
			}
			_, onP95 := on.MTTR()
			_, offP95 := off.MTTR()
			if onP95 > offP95 {
				t.Errorf("mttr p95 with delta replans = %v, full-replan control = %v\n%s",
					onP95, offP95, on.Render())
			}
			if onAv, offAv := on.Availability(), off.Availability(); onAv < offAv {
				t.Errorf("availability with delta replans = %.4f, control = %.4f", onAv, offAv)
			}
			if on.DeltaReplans == 0 {
				t.Errorf("%s never exercised a delta replan; comparison is vacuous", name)
			}
		})
	}
}
