package chaos

import "fmt"

// HarnessReport is the common surface of the multi-arm experiment
// reports (noisy-neighbor, planned-drain, gray-fail): a deterministic
// rendered text and a verdict — "" when every bar holds, else the first
// violated bar's reason.
type HarnessReport interface {
	Render() string
	Violated() string
}

// Registered is one bundled scenario. Exactly one of Events / Harness
// is set: Events builds a timed-fault schedule for the Run runner;
// Harness runs a multi-arm experiment end to end.
type Registered struct {
	Name    string
	Summary string
	// Events builds the timed-fault scenario (nil for harness entries).
	Events func(seed uint64) Scenario
	// Harness runs the multi-arm experiment (nil for event entries).
	// defense carries the CLI's -mapek flag: harnesses with a single
	// defense/control switch (noisy-neighbor's quotas) honor it; the
	// ones that always run every arm ignore it.
	Harness func(seed uint64, defense bool) (HarnessReport, error)
}

// registry is the single source of truth for bundled scenario names:
// `continuum-sim chaos -list`, the usage text, and BuiltIn's
// unknown-scenario error all read it, so they cannot drift.
var registry = []Registered{
	{
		Name:    "edge-flap",
		Summary: "camera uplink flaps, detector/camera crashes, broker burst",
		Events:  EdgeFlap,
	},
	{
		Name:    "fog-partition",
		Summary: "aggregator partition, correlated cloud outage, broker burst",
		Events:  FogPartition,
	},
	{
		Name:    "gray-fail",
		Summary: "fail-slow device; four arms: fault-free / defense / hedge-only / no-defense",
		Harness: func(seed uint64, defense bool) (HarnessReport, error) {
			return RunGrayFail(seed)
		},
	},
	{
		Name:    "noisy-neighbor",
		Summary: "tenant flash crowd; -mapek=false is the no-quotas control arm",
		Harness: func(seed uint64, defense bool) (HarnessReport, error) {
			return RunNoisyNeighbor(NoisyConfig{Seed: seed, Quotas: defense})
		},
	},
	{
		Name:    "planned-drain",
		Summary: "live migration; three arms: drain / crash / mid-migration crash",
		Harness: func(seed uint64, defense bool) (HarnessReport, error) {
			return RunPlannedDrain(seed)
		},
	},
	{
		Name:    "split-brain",
		Summary: "partitioned owner + KB minority; arms: fault-free / fencing / no-fencing (-fencing=false runs the control arm alone)",
		Harness: func(seed uint64, defense bool) (HarnessReport, error) {
			return RunSplitBrain(seed, true)
		},
	},
}

// Names lists every bundled scenario (event schedules and experiment
// harnesses alike), in registry order.
func Names() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.Name
	}
	return out
}

// EventNames lists only the timed-fault schedules — the subset of
// Names() that BuiltIn accepts and the generic runner can drive.
func EventNames() []string {
	var out []string
	for _, r := range registry {
		if r.Events != nil {
			out = append(out, r.Name)
		}
	}
	return out
}

// Lookup finds a bundled scenario by name.
func Lookup(name string) (Registered, bool) {
	for _, r := range registry {
		if r.Name == name {
			return r, true
		}
	}
	return Registered{}, false
}

// BuiltIn returns a bundled timed-fault scenario by name, with the seed
// applied to any seeded schedule draws.
func BuiltIn(name string, seed uint64) (Scenario, error) {
	r, ok := Lookup(name)
	if !ok {
		return Scenario{}, fmt.Errorf("chaos: unknown scenario %q (have %v)", name, Names())
	}
	if r.Events == nil {
		return Scenario{}, fmt.Errorf("chaos: scenario %q is a multi-arm experiment harness, not a timed-fault schedule (have %v)", name, Names())
	}
	return r.Events(seed), nil
}
