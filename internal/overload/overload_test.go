package overload

import (
	"strings"
	"testing"

	"myrtus/internal/mirto"
	"myrtus/internal/sim"
)

// sweep runs a short two-point sweep (1x and 4x capacity) used by every
// assertion below.
func sweep(t *testing.T, admission bool) *Report {
	t.Helper()
	rep, err := Run(Config{
		Seed:        42,
		Admission:   admission,
		Duration:    4 * sim.Second,
		Multipliers: []float64{1, 4},
		MaxRequests: 8000,
	})
	if err != nil {
		t.Fatalf("sweep (admission=%v): %v", admission, err)
	}
	return rep
}

// TestGoodputRetentionUnderOverload is the acceptance bar: at 4x offered
// load the protected system sustains at least 90% of its peak goodput,
// while the unprotected control run degrades measurably below it.
func TestGoodputRetentionUnderOverload(t *testing.T) {
	prot := sweep(t, true)
	ctrl := sweep(t, false)

	peak := prot.PeakGoodput()
	if peak <= 0 {
		t.Fatalf("protected sweep has no goodput:\n%s", prot.Render())
	}
	at4 := prot.Points[len(prot.Points)-1]
	if at4.Multiplier != 4 {
		t.Fatalf("last point is %vx, want 4x", at4.Multiplier)
	}
	if ret := at4.GoodputRPS / peak; ret < 0.9 {
		t.Errorf("protected 4x retention = %.3f, want >= 0.9\n%s", ret, prot.Render())
	}
	ctrl4 := ctrl.Points[len(ctrl.Points)-1]
	if ctrl4.GoodputRPS >= 0.9*at4.GoodputRPS {
		t.Errorf("control 4x goodput %.1f not measurably below protected %.1f\n%s\n%s",
			ctrl4.GoodputRPS, at4.GoodputRPS, ctrl.Render(), prot.Render())
	}
}

// TestPrioritySheddingOrder checks the Table II mapping end to end: the
// High-priority app's shed rate never exceeds the Low-priority app's at
// any sweep point.
func TestPrioritySheddingOrder(t *testing.T) {
	rep := sweep(t, true)
	for _, p := range rep.Points {
		hi := p.Classes[mirto.PriorityHigh].ShedFrac()
		lo := p.Classes[mirto.PriorityLow].ShedFrac()
		if hi > lo {
			t.Errorf("at %.1fx: shed(high)=%.3f > shed(low)=%.3f\n%s",
				p.Multiplier, hi, lo, rep.Render())
		}
	}
}

// TestOverloadSheddingEngages makes sure the 4x point actually exercises
// the protection stack rather than passing vacuously.
func TestOverloadSheddingEngages(t *testing.T) {
	rep := sweep(t, true)
	at4 := rep.Points[len(rep.Points)-1]
	var shed int64
	for _, c := range at4.Classes {
		shed += c.Shed
	}
	if shed == 0 {
		t.Errorf("no requests shed at 4x offered load\n%s", rep.Render())
	}
}

// TestReportDeterminism renders the same seed twice and demands
// byte-identical output.
func TestReportDeterminism(t *testing.T) {
	a := sweep(t, true).Render()
	b := sweep(t, true).Render()
	if a != b {
		t.Errorf("same-seed renders differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if !strings.Contains(a, "admission=on") {
		t.Errorf("render missing admission mode line:\n%s", a)
	}
}
