// Package overload is the deterministic overload experiment: it sweeps
// offered load from well below to well above the continuum's measured
// serving capacity and records what the end-to-end protection stack —
// admission control with Table II priority classes, bounded device and
// link queues, circuit breakers, and MAPE-K brownout — preserves, versus
// an unprotected control run. Everything advances on the simulation
// clock, so a (seed, config) pair renders a byte-identical report.
//
// The sweep drives three copies of a four-stage pipeline whose security
// policies span Table II: ov-high carries a High-security aggregator
// (shed last), ov-med a Medium-security detector, ov-low no policy at
// all (shed first). The headline curve is goodput — requests completing
// within a deadline calibrated from idle latency — against offered load:
// a protected system holds its peak goodput flat while the control run's
// unbounded queues push every completion past the deadline.
package overload

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"myrtus/internal/continuum"
	"myrtus/internal/mapek"
	"myrtus/internal/mirto"
	"myrtus/internal/sim"
	"myrtus/internal/telemetry"
	"myrtus/internal/tosca"
)

// ingress is the edge device every request's input data originates at.
const ingress = "edge-rv-0"

// items is the per-request accelerator batch size; brownout level 2
// halves it.
const items = 4

// appNames indexes the three priority-class apps by mirto.Priority.
var appNames = [3]string{"ov-high", "ov-med", "ov-low"}

// appTemplate builds one sweep app: an edge-pinned camera feeding an
// accelerated detector, an *optional* enhancer (the stage brownout level
// 1 sheds), and an aggregator consuming both. secPolicy appends the
// app's Table II security policy ("" for the unclassified Low app).
func appTemplate(name, secPolicy string) string {
	return fmt.Sprintf(`
tosca_definitions_version: tosca_2_0
metadata:
  template_name: %s
topology_template:
  node_templates:
    camera:
      type: myrtus.nodes.Container
      properties: {cpu: 0.5, memoryMB: 128, gops: 0.2, outMB: 0.1, inMB: 0.2}
    detector:
      type: myrtus.nodes.AcceleratedKernel
      properties: {cpu: 1, memoryMB: 256, kernel: conv2d, gops: 2, outMB: 0.05}
      requirements:
        - source: camera
    enhancer:
      type: myrtus.nodes.Container
      properties: {cpu: 0.5, memoryMB: 128, gops: 0.8, outMB: 0.05, optional: 1}
      requirements:
        - source: detector
    aggregator:
      type: myrtus.nodes.Container
      properties: {cpu: 1.5, memoryMB: 512, gops: 1, outMB: 0.01}
      requirements:
        - source: detector
        - source: enhancer
  policies:
    - cam-edge:
        type: myrtus.policies.Placement
        targets: [camera]
        properties: {layer: edge}
%s`, name, secPolicy)
}

func templates() [3]string {
	return [3]string{
		appTemplate("ov-high", `    - agg-high:
        type: myrtus.policies.Security
        targets: [aggregator]
        properties: {level: high}
`),
		appTemplate("ov-med", `    - det-medium:
        type: myrtus.policies.Security
        targets: [detector]
        properties: {level: medium}
`),
		appTemplate("ov-low", ""),
	}
}

// Config tunes one sweep.
type Config struct {
	Seed uint64
	// Admission enables the full protection stack; false is the
	// unprotected control run (no admission, unbounded queues, no
	// breakers, no brownout).
	Admission bool
	// Duration is the virtual time per sweep point (default 10s; a point
	// is shortened deterministically if it would exceed MaxRequests).
	Duration sim.Time
	// Multipliers are the offered-load points as fractions of measured
	// capacity (default 0.5, 1, 1.5, 2, 3, 4).
	Multipliers []float64
	// MaxRequests bounds one point's submissions (default 24000).
	MaxRequests int
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 10 * sim.Second
	}
	if len(c.Multipliers) == 0 {
		c.Multipliers = []float64{0.5, 1, 1.5, 2, 3, 4}
	}
	if c.MaxRequests <= 0 {
		c.MaxRequests = 24000
	}
	return c
}

// ClassStats is one priority class's outcome at one sweep point.
type ClassStats struct {
	Submitted int64
	Good      int64 // completed within the deadline
	Late      int64 // completed past the deadline
	Failed    int64
	Shed      int64
	Degraded  int64
}

// ShedFrac is the class's shed fraction of submitted load.
func (s ClassStats) ShedFrac() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.Shed) / float64(s.Submitted)
}

// Point is one sweep point's measurements.
type Point struct {
	Multiplier float64
	OfferedRPS float64
	DurationS  float64
	Submitted  int64
	Good       int64
	GoodputRPS float64
	P95Ms      float64 // over in-deadline completions
	Classes    [3]ClassStats
	// Protection-stack internals: device/FPGA queue rejects, link queue
	// drops, breaker opens and fast-fails, deepest brownout level seen.
	DeviceRejects int64
	LinkDrops     int64
	BreakerOpens  int64
	BreakerFast   int64
	BrownoutMax   int
}

// Report is one full sweep.
type Report struct {
	Seed        uint64
	Admission   bool
	CapacityRPS float64
	DeadlineMs  float64
	Points      []Point
}

// PeakGoodput is the best goodput across the sweep.
func (r *Report) PeakGoodput() float64 {
	peak := 0.0
	for _, p := range r.Points {
		if p.GoodputRPS > peak {
			peak = p.GoodputRPS
		}
	}
	return peak
}

// Render formats the report; two runs with the same seed and config are
// byte-identical.
func (r *Report) Render() string {
	var b strings.Builder
	mode := "off (control)"
	if r.Admission {
		mode = "on"
	}
	fmt.Fprintf(&b, "overload sweep  seed=%d  admission=%s\n", r.Seed, mode)
	fmt.Fprintf(&b, "capacity=%.1f req/s  deadline=%.2fms\n", r.CapacityRPS, r.DeadlineMs)
	peak := r.PeakGoodput()
	fmt.Fprintf(&b, "%5s %9s %9s %9s %8s %22s %9s %8s %8s\n",
		"mult", "offered/s", "goodput/s", "retention", "p95ms", "shed% hi/med/lo", "devrej", "linkdrop", "brkopen")
	for _, p := range r.Points {
		ret := 0.0
		if peak > 0 {
			ret = p.GoodputRPS / peak
		}
		fmt.Fprintf(&b, "%5.2f %9.1f %9.1f %9.3f %8.2f %7.1f/%6.1f/%6.1f %9d %8d %8d\n",
			p.Multiplier, p.OfferedRPS, p.GoodputRPS, ret, p.P95Ms,
			100*p.Classes[mirto.PriorityHigh].ShedFrac(),
			100*p.Classes[mirto.PriorityMedium].ShedFrac(),
			100*p.Classes[mirto.PriorityLow].ShedFrac(),
			p.DeviceRejects, p.LinkDrops, p.BreakerOpens)
	}
	return b.String()
}

// system is one freshly built continuum with the three apps deployed.
type system struct {
	c     *continuum.Continuum
	o     *mirto.Orchestrator
	plans [3]*mirto.Plan
}

func buildSystem(seed uint64) (*system, error) {
	opts := continuum.DefaultOptions()
	opts.Seed = seed
	c, err := continuum.Build(opts)
	if err != nil {
		return nil, err
	}
	o := mirto.NewOrchestrator(mirto.NewManager(c, mirto.LatencyGoal()))
	s := &system{c: c, o: o}
	for i, tpl := range templates() {
		st, err := tosca.Parse(tpl)
		if err != nil {
			return nil, fmt.Errorf("overload: parsing %s: %w", appNames[i], err)
		}
		plan, err := o.Deploy(st)
		if err != nil {
			return nil, fmt.Errorf("overload: deploying %s: %w", appNames[i], err)
		}
		s.plans[i] = plan
	}
	return s, nil
}

// calibrate measures the system's idle latency and closed-loop capacity
// on a throwaway continuum: the deadline is 10x the worst idle request
// latency, and capacity is the makespan rate of a closed burst.
func calibrate(seed uint64) (capacityRPS float64, deadline sim.Time, err error) {
	s, err := buildSystem(seed)
	if err != nil {
		return 0, 0, err
	}
	var idle sim.Time
	for _, app := range appNames {
		lat, _, serr := s.o.R.ServeRequestFrom(app, ingress, items)
		if serr != nil {
			return 0, 0, fmt.Errorf("overload: idle request to %s: %w", app, serr)
		}
		if lat > idle {
			idle = lat
		}
	}
	deadline = 10 * idle
	eng := s.c.Engine
	const burst = 90
	start := eng.Now()
	var last sim.Time
	pending := burst
	for i := 0; i < burst; i++ {
		app := appNames[i%3]
		err := s.o.R.SubmitFrom(app, ingress, items, func(_ sim.Time, _ float64, err error) {
			pending--
			if t := eng.Now(); t > last {
				last = t
			}
		})
		if err != nil {
			return 0, 0, fmt.Errorf("overload: burst submit to %s: %w", app, err)
		}
	}
	eng.Run()
	if pending != 0 || last <= start {
		return 0, 0, fmt.Errorf("overload: calibration burst did not complete (%d pending)", pending)
	}
	capacityRPS = burst / (last - start).Seconds()
	return capacityRPS, deadline, nil
}

// runPoint executes one sweep point on a fresh same-seed system.
func runPoint(cfg Config, capacityRPS float64, deadline sim.Time, mult float64) (Point, error) {
	s, err := buildSystem(cfg.Seed)
	if err != nil {
		return Point{}, err
	}
	eng := s.c.Engine
	var loops [3]*mapek.Loop
	// admReg receives the admission controller's per-priority shed
	// counters (shed_high/shed_med/shed_low); the report reads those
	// instead of re-deriving sheds from submit-site errors.
	var admReg *telemetry.Registry
	if cfg.Admission {
		// The full protection stack: rate calibrated just under capacity,
		// queue bounds at the deadline (queuing past it is wasted work),
		// breakers over devices and links, and brownout via MAPE-K.
		ac := mirto.NewAdmissionController(eng, mirto.AdmissionConfig{Rate: 0.9 * capacityRPS})
		admReg = telemetry.NewRegistry("admission")
		ac.BindMetrics(admReg)
		s.o.R.SetAdmission(ac)
		s.o.R.SetBreakers(mirto.NewBreakerSet(eng, mirto.BreakerConfig{}))
		maxIF := int(capacityRPS * deadline.Seconds())
		if maxIF < 8 {
			maxIF = 8
		}
		s.o.R.SetMaxInFlight(maxIF)
		for _, name := range s.c.DeviceNames() {
			s.c.Devices[name].SetQueueLimit(deadline)
		}
		s.c.Fabric.SetMaxQueueDelay(deadline)
		for i, app := range appNames {
			loop, err := s.o.AttachLoop(app, mirto.SLO{MaxShedRate: 0.05})
			if err != nil {
				return Point{}, err
			}
			loops[i] = loop
		}
	}

	offered := mult * capacityRPS
	inter := sim.Time(float64(sim.Second) / offered)
	if inter < 1 {
		inter = 1
	}
	n := int(cfg.Duration / inter)
	if n > cfg.MaxRequests {
		n = cfg.MaxRequests
	}
	if n < 1 {
		n = 1
	}
	horizon := sim.Time(n) * inter

	pt := Point{Multiplier: mult, OfferedRPS: offered, DurationS: horizon.Seconds()}
	var lats []float64
	for i := 1; i <= n; i++ {
		at := sim.Time(i) * inter
		idx := (i - 1) % 3
		app := appNames[idx]
		eng.At(at, func() {
			pt.Submitted++
			pt.Classes[idx].Submitted++
			err := s.o.R.SubmitFrom(app, ingress, items, func(lat sim.Time, _ float64, err error) {
				switch {
				case err != nil:
					pt.Classes[idx].Failed++
				case lat <= deadline:
					pt.Good++
					pt.Classes[idx].Good++
					lats = append(lats, lat.Seconds()*1e3)
				default:
					pt.Classes[idx].Late++
				}
			})
			if err != nil {
				if errors.Is(err, mirto.ErrOverloaded) {
					// With admission on, the controller's telemetry counters
					// are the source of truth for sheds (read after the run);
					// only the control arm tallies them here.
					if admReg == nil {
						pt.Classes[idx].Shed++
					}
				} else {
					pt.Classes[idx].Failed++
				}
			}
		})
	}
	if cfg.Admission {
		// MAPE-K cadence: shed-rate sensing drives brownout engagement
		// and, once shedding stops, staged restore.
		const tickEvery = 250 * sim.Millisecond
		var tick func()
		tick = func() {
			for i, loop := range loops {
				loop.Iterate()
				if lvl := s.o.R.Brownout(appNames[i]); lvl > pt.BrownoutMax {
					pt.BrownoutMax = lvl
				}
			}
			if eng.Now()+tickEvery <= horizon {
				eng.After(tickEvery, tick)
			}
		}
		eng.After(tickEvery, tick)
	}

	eng.RunUntil(horizon)
	eng.Run() // drain in-flight completions past the horizon

	pt.GoodputRPS = float64(pt.Good) / horizon.Seconds()
	if len(lats) > 0 {
		sort.Float64s(lats)
		i := int(0.95 * float64(len(lats)))
		if i >= len(lats) {
			i = len(lats) - 1
		}
		pt.P95Ms = lats[i]
	}
	for i, app := range appNames {
		if k, ok := s.o.R.KPIs(app); ok {
			pt.Classes[i].Degraded = k.Degraded
		}
	}
	if admReg != nil {
		// Each sweep app is exactly one Table II priority class, so the
		// controller's exported per-priority counters are the classes'
		// shed totals.
		for p := 0; p < len(pt.Classes); p++ {
			pt.Classes[p].Shed = counterValue(admReg, mirto.ShedCounterNames[p])
		}
	}
	for _, name := range s.c.DeviceNames() {
		d := s.c.Devices[name]
		pt.DeviceRejects += d.Rejected()
		if fab := d.Fabric(); fab != nil {
			pt.DeviceRejects += fab.Rejected()
		}
	}
	pt.LinkDrops = s.c.Fabric.Stats().QueueDrops
	if cfg.Admission {
		if bs := breakersOf(s.o.R); bs != nil {
			pt.BreakerOpens, pt.BreakerFast = bs.Stats()
		}
	}
	return pt, nil
}

// breakersOf fetches the runtime's breaker set via the admission run's
// wiring (nil in control runs).
func breakersOf(r *mirto.Runtime) *mirto.BreakerSet { return r.Breakers() }

// Run executes a full sweep.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	capacityRPS, deadline, err := calibrate(cfg.Seed)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Seed:        cfg.Seed,
		Admission:   cfg.Admission,
		CapacityRPS: capacityRPS,
		DeadlineMs:  deadline.Seconds() * 1e3,
	}
	for _, mult := range cfg.Multipliers {
		pt, err := runPoint(cfg, capacityRPS, deadline, mult)
		if err != nil {
			return nil, fmt.Errorf("overload: point %.2fx: %w", mult, err)
		}
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}
