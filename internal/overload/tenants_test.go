package overload

import (
	"testing"

	"myrtus/internal/sim"
)

func shortTenantsCfg(quotas bool) TenantsConfig {
	return TenantsConfig{
		Seed:        1,
		Quotas:      quotas,
		Duration:    3 * sim.Second,
		Multipliers: []float64{4},
	}
}

// TestTenantIsolationGate: with per-tenant budgets and DRR dispatch,
// an aggressor at 4x its admission budget is shed back to roughly its
// share while the in-budget victim keeps its goodput and p95 bounds.
func TestTenantIsolationGate(t *testing.T) {
	rep, err := RunTenants(shortTenantsCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violated(); v != "" {
		t.Fatalf("isolation violated with quotas on: %s\n%s", v, rep.Render())
	}
	last := rep.Points[len(rep.Points)-1]
	agg := last.byTenant(NoisyTenant)
	if agg == nil || agg.Shed == 0 {
		t.Fatalf("aggressor at 4x budget was never shed:\n%s", rep.Render())
	}
	// The aggressor's admitted volume must collapse toward its budget:
	// within 1.5x of budget x duration.
	admitted := float64(agg.Submitted - agg.Shed)
	budgetVol := rep.NoisyBudgetRPS * 3
	if admitted > 1.5*budgetVol {
		t.Fatalf("aggressor admitted %.0f requests, budget volume %.0f:\n%s",
			admitted, budgetVol, rep.Render())
	}
}

// TestTenantControlArmViolates: the shared-admission control arm must
// measurably fail the same gate — the aggressor's higher Table II
// priority lets its flood starve the victim.
func TestTenantControlArmViolates(t *testing.T) {
	rep, err := RunTenants(shortTenantsCfg(false))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violated() == "" {
		t.Fatalf("control arm unexpectedly isolated the victim:\n%s", rep.Render())
	}
}

// TestTenantsReportDeterminism: same seed + config renders
// byte-identical reports.
func TestTenantsReportDeterminism(t *testing.T) {
	a, err := RunTenants(shortTenantsCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTenants(shortTenantsCfg(true))
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Fatalf("mixed-tenant sweep not deterministic:\n--- a ---\n%s--- b ---\n%s", a.Render(), b.Render())
	}
}
