package overload

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"myrtus/internal/mirto"
	"myrtus/internal/sim"
	"myrtus/internal/telemetry"
	"myrtus/internal/tenant"
	"myrtus/internal/trace"
)

// The mixed-tenant sweep: two stakeholders share one continuum, and an
// aggressor tenant offers up to several multiples of its admission
// budget while a victim tenant stays comfortably inside its own. The
// isolation question is asymmetric by construction — the aggressor's
// app carries a HIGH Table II security policy and the victim's only
// MEDIUM, so the control arm's shared admission controller (whose only
// fairness is priority reserves) systematically prefers the flood:
// priority is the wrong tool for inter-tenant fairness. Per-tenant
// budget carving plus DRR dispatch is the right one, and the sweep
// measures exactly that difference.

// Tenant IDs, fixed so reports are stable.
const (
	VictimTenant = "victim"
	NoisyTenant  = "noisy"
)

// TenantsConfig tunes one mixed-tenant sweep.
type TenantsConfig struct {
	Seed uint64
	// Quotas enables per-tenant admission budgets and DRR dispatch;
	// false is the shared-admission control arm.
	Quotas bool
	// Duration is virtual time per sweep point (default 8s).
	Duration sim.Time
	// Multipliers are the aggressor's offered load as multiples of its
	// admission budget (default 1, 2, 4).
	Multipliers []float64
	// MaxRequests bounds one point's submissions per tenant (default 24000).
	MaxRequests int
}

func (c TenantsConfig) withDefaults() TenantsConfig {
	if c.Duration <= 0 {
		c.Duration = 8 * sim.Second
	}
	if len(c.Multipliers) == 0 {
		c.Multipliers = []float64{1, 2, 4}
	}
	if c.MaxRequests <= 0 {
		c.MaxRequests = 24000
	}
	return c
}

// tenantSpecs builds the two-tenant deployment: each tenant gets half
// the admission budget and equal DRR weight; the aggressor's app
// out-prioritizes the victim's on the Table II axis.
func tenantSpecs() []tenant.Spec {
	victimApp := appTemplate("vt-app", `    - det-medium:
        type: myrtus.policies.Security
        targets: [detector]
        properties: {level: medium}
`)
	noisyApp := appTemplate("ag-app", `    - agg-high:
        type: myrtus.policies.Security
        targets: [aggregator]
        properties: {level: high}
`)
	return []tenant.Spec{
		{
			ID:    VictimTenant,
			Class: mirto.PriorityMedium,
			Quota: tenant.Quota{AdmissionShare: 0.5, Weight: 1},
			Apps:  []string{victimApp},
		},
		{
			ID:    NoisyTenant,
			Class: mirto.PriorityHigh,
			Quota: tenant.Quota{AdmissionShare: 0.5, Weight: 1},
			Apps:  []string{noisyApp},
		},
	}
}

// TenantStats is one tenant's outcome at one sweep point.
type TenantStats struct {
	Tenant     string
	OfferedRPS float64
	Submitted  int64
	Good       int64 // completed within the deadline
	Late       int64
	Failed     int64
	Shed       int64
	P95Ms      float64 // over all successful completions
	// Per-priority sheds from the tenant's telemetry registry (quotas
	// arm only; the control arm has no per-tenant controller).
	ShedHigh, ShedMed, ShedLow int64
	// Dispatched is the DRR handoff count (quotas arm only).
	Dispatched  int64
	BrownoutMax int
}

// GoodputFrac is the fraction of submitted requests that completed in
// deadline.
func (s TenantStats) GoodputFrac() float64 {
	if s.Submitted == 0 {
		return 0
	}
	return float64(s.Good) / float64(s.Submitted)
}

// TenantPoint is one sweep point: the aggressor at Mult x its budget.
type TenantPoint struct {
	Mult    float64
	Tenants []TenantStats // sorted by tenant ID
}

// byTenant finds a tenant's stats at this point.
func (p TenantPoint) byTenant(id string) *TenantStats {
	for i := range p.Tenants {
		if p.Tenants[i].Tenant == id {
			return &p.Tenants[i]
		}
	}
	return nil
}

// TenantsReport is one full mixed-tenant sweep.
type TenantsReport struct {
	Seed        uint64
	Quotas      bool
	CapacityRPS float64
	DeadlineMs  float64
	// Budgets and offered load derived from calibration.
	VictimBudgetRPS  float64
	NoisyBudgetRPS   float64
	VictimOfferedRPS float64
	// SoloP95Ms is the victim's p95 with the aggressor silent — the
	// baseline the isolation gate compares against.
	SoloP95Ms float64
	Points    []TenantPoint
	// TraceStats is the per-tenant latency summary from the trace store
	// at the heaviest sweep point.
	TraceStats []trace.TenantStat
}

// Violated returns "" when isolation held, else the first violated
// bound at the heaviest point: victim goodput >= 90% of its submitted
// load, and victim p95 <= 1.5x its solo baseline.
func (r *TenantsReport) Violated() string {
	if len(r.Points) == 0 {
		return "no sweep points"
	}
	last := r.Points[len(r.Points)-1]
	v := last.byTenant(VictimTenant)
	if v == nil {
		return "victim tenant missing from sweep"
	}
	if gf := v.GoodputFrac(); gf < 0.9 {
		return fmt.Sprintf("victim goodput %.1f%% < 90%% at %.0fx aggressor load", 100*gf, last.Mult)
	}
	if r.SoloP95Ms > 0 && v.P95Ms > 1.5*r.SoloP95Ms {
		return fmt.Sprintf("victim p95 %.2fms > 1.5x solo baseline %.2fms at %.0fx aggressor load",
			v.P95Ms, r.SoloP95Ms, last.Mult)
	}
	return ""
}

// Render formats the report; same seed and config render byte-identical.
func (r *TenantsReport) Render() string {
	var b strings.Builder
	mode := "off (shared admission, control)"
	if r.Quotas {
		mode = "on (per-tenant budgets + DRR)"
	}
	fmt.Fprintf(&b, "mixed-tenant sweep  seed=%d  quotas=%s\n", r.Seed, mode)
	fmt.Fprintf(&b, "capacity=%.1f req/s  deadline=%.2fms  victim budget=%.1f req/s (offered %.1f)  noisy budget=%.1f req/s\n",
		r.CapacityRPS, r.DeadlineMs, r.VictimBudgetRPS, r.VictimOfferedRPS, r.NoisyBudgetRPS)
	fmt.Fprintf(&b, "victim solo p95=%.2fms\n", r.SoloP95Ms)
	fmt.Fprintf(&b, "%5s %-8s %9s %9s %8s %8s %8s %8s %8s %6s\n",
		"mult", "tenant", "offered/s", "submitted", "good%", "p95ms", "shed", "failed", "drr", "brown")
	for _, p := range r.Points {
		for _, t := range p.Tenants {
			fmt.Fprintf(&b, "%5.2f %-8s %9.1f %9d %8.1f %8.2f %8d %8d %8d %6d\n",
				p.Mult, t.Tenant, t.OfferedRPS, t.Submitted, 100*t.GoodputFrac(),
				t.P95Ms, t.Shed, t.Failed, t.Dispatched, t.BrownoutMax)
		}
	}
	if len(r.TraceStats) > 0 {
		fmt.Fprintf(&b, "trace per-tenant (heaviest point):\n")
		for _, ts := range r.TraceStats {
			fmt.Fprintf(&b, "  %-8s n=%-6d err=%-5d p50=%.2fms p95=%.2fms p99=%.2fms\n",
				ts.Tenant, ts.Count, ts.Errors, ts.P50Ms, ts.P95Ms, ts.P99Ms)
		}
	}
	if v := r.Violated(); v != "" {
		fmt.Fprintf(&b, "ISOLATION VIOLATED: %s\n", v)
	} else {
		fmt.Fprintf(&b, "isolation held\n")
	}
	return b.String()
}

// tenantArrivals schedules one tenant's open-loop arrivals and returns
// its stats collector.
type tenantCollector struct {
	stats TenantStats
	lats  []float64
}

func scheduleTenant(s *tenant.System, app string, offered float64, horizon sim.Time, maxReq int, col *tenantCollector) {
	if offered <= 0 {
		return
	}
	eng := s.C.Engine
	inter := sim.Time(float64(sim.Second) / offered)
	if inter < 1 {
		inter = 1
	}
	n := int(horizon / inter)
	if n > maxReq {
		n = maxReq
	}
	for i := 1; i <= n; i++ {
		at := sim.Time(i) * inter
		eng.At(at, func() {
			col.stats.Submitted++
			err := s.Submit(app, items, func(lat sim.Time, _ float64, err error) {
				switch {
				case errors.Is(err, mirto.ErrOverloaded):
					col.stats.Shed++
				case err != nil:
					col.stats.Failed++
				default:
					col.lats = append(col.lats, lat.Seconds()*1e3)
					if lat <= s.Deadline {
						col.stats.Good++
					} else {
						col.stats.Late++
					}
				}
			})
			switch {
			case errors.Is(err, mirto.ErrOverloaded):
				col.stats.Shed++
			case err != nil:
				col.stats.Failed++
			}
		})
	}
}

func p95(lats []float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Float64s(lats)
	i := int(0.95 * float64(len(lats)))
	if i >= len(lats) {
		i = len(lats) - 1
	}
	return lats[i]
}

// counterValue reads one tenant counter (0 when absent).
func counterValue(reg *telemetry.Registry, name string) int64 {
	if s, ok := reg.Find(name); ok {
		return int64(s.Value)
	}
	return 0
}

// runTenantPoint executes one mixed point on a fresh same-seed system.
// aggMult <= 0 silences the aggressor (the solo baseline).
func runTenantPoint(cfg TenantsConfig, capacityRPS float64, deadline sim.Time, aggMult float64) (TenantPoint, []trace.TenantStat, error) {
	specs := tenantSpecs()
	s, err := tenant.BuildSystem(cfg.Seed, specs, cfg.Quotas, capacityRPS, deadline)
	if err != nil {
		return TenantPoint{}, nil, err
	}
	eng := s.C.Engine
	admissionRPS := 0.9 * capacityRPS
	victimBudget := 0.5 * admissionRPS
	noisyBudget := 0.5 * admissionRPS

	cols := map[string]*tenantCollector{
		VictimTenant: {stats: TenantStats{Tenant: VictimTenant, OfferedRPS: 0.8 * victimBudget}},
		NoisyTenant:  {stats: TenantStats{Tenant: NoisyTenant, OfferedRPS: aggMult * noisyBudget}},
	}
	horizon := cfg.Duration
	scheduleTenant(s, s.Apps[VictimTenant][0], cols[VictimTenant].stats.OfferedRPS, horizon, cfg.MaxRequests, cols[VictimTenant])
	scheduleTenant(s, s.Apps[NoisyTenant][0], cols[NoisyTenant].stats.OfferedRPS, horizon, cfg.MaxRequests, cols[NoisyTenant])

	// MAPE-K cadence, tracking the deepest brownout per tenant.
	const tickEvery = 250 * sim.Millisecond
	var tick func()
	tick = func() {
		levels := s.Tick()
		for id, col := range cols {
			for _, app := range s.Apps[id] {
				if lvl := levels[app]; lvl > col.stats.BrownoutMax {
					col.stats.BrownoutMax = lvl
				}
			}
		}
		if eng.Now()+tickEvery <= horizon {
			eng.After(tickEvery, tick)
		}
	}
	eng.After(tickEvery, tick)

	eng.RunUntil(horizon)
	eng.Run() // drain in-flight completions

	ids := []string{NoisyTenant, VictimTenant}
	sort.Strings(ids)
	pt := TenantPoint{Mult: aggMult}
	for _, id := range ids {
		col := cols[id]
		col.stats.P95Ms = p95(col.lats)
		if s.Reg != nil {
			if t, ok := s.Reg.Get(id); ok {
				m := t.Metrics()
				col.stats.ShedHigh = counterValue(m, mirto.ShedCounterNames[mirto.PriorityHigh])
				col.stats.ShedMed = counterValue(m, mirto.ShedCounterNames[mirto.PriorityMedium])
				col.stats.ShedLow = counterValue(m, mirto.ShedCounterNames[mirto.PriorityLow])
			}
			if s.Disp != nil {
				col.stats.Dispatched = s.Disp.Dispatched(id)
			}
		}
		pt.Tenants = append(pt.Tenants, col.stats)
	}
	return pt, trace.TenantSummary(s.C.Tracer.Traces()), nil
}

// RunTenants executes a full mixed-tenant sweep: a victim-solo
// baseline, then the aggressor at each multiplier of its budget.
func RunTenants(cfg TenantsConfig) (*TenantsReport, error) {
	cfg = cfg.withDefaults()
	specs := tenantSpecs()
	capacityRPS, deadline, err := tenant.Calibrate(cfg.Seed, specs, items)
	if err != nil {
		return nil, err
	}
	admissionRPS := 0.9 * capacityRPS
	rep := &TenantsReport{
		Seed:             cfg.Seed,
		Quotas:           cfg.Quotas,
		CapacityRPS:      capacityRPS,
		DeadlineMs:       deadline.Seconds() * 1e3,
		VictimBudgetRPS:  0.5 * admissionRPS,
		NoisyBudgetRPS:   0.5 * admissionRPS,
		VictimOfferedRPS: 0.8 * 0.5 * admissionRPS,
	}
	solo, _, err := runTenantPoint(cfg, capacityRPS, deadline, 0)
	if err != nil {
		return nil, fmt.Errorf("overload: solo baseline: %w", err)
	}
	if v := solo.byTenant(VictimTenant); v != nil {
		rep.SoloP95Ms = v.P95Ms
	}
	for _, mult := range cfg.Multipliers {
		pt, traceStats, err := runTenantPoint(cfg, capacityRPS, deadline, mult)
		if err != nil {
			return nil, fmt.Errorf("overload: tenant point %.2fx: %w", mult, err)
		}
		rep.Points = append(rep.Points, pt)
		rep.TraceStats = traceStats
	}
	return rep, nil
}
