package cluster

import (
	"testing"
)

// record collects node-change notifications for assertions.
func record(c *Cluster) *[]string {
	events := &[]string{}
	c.Subscribe(func(node string) { *events = append(*events, node) })
	return events
}

func drain(events *[]string) []string {
	out := *events
	*events = nil
	return out
}

func TestSubscribeNodeLifecycleEvents(t *testing.T) {
	c := twoNodes(t)
	events := record(c)

	if err := c.AddNode(Node{Name: "late-0", Allocatable: Resources{CPU: 2, MemMB: 1024}, Ready: true}); err != nil {
		t.Fatal(err)
	}
	if got := drain(events); len(got) != 1 || got[0] != "late-0" {
		t.Fatalf("AddNode events = %v", got)
	}

	if err := c.SetNodeReady("late-0", false); err != nil {
		t.Fatal(err)
	}
	if got := drain(events); len(got) != 1 || got[0] != "late-0" {
		t.Fatalf("SetNodeReady events = %v", got)
	}

	c.RemoveNode("late-0")
	if got := drain(events); len(got) != 1 || got[0] != "late-0" {
		t.Fatalf("RemoveNode events = %v", got)
	}
}

func TestSubscribeBindAndFreeEvents(t *testing.T) {
	c := twoNodes(t)
	events := record(c)

	pod, err := c.CreatePod(PodSpec{App: "cam", Requests: Resources{CPU: 1, MemMB: 512}})
	if err != nil {
		t.Fatal(err)
	}
	// Creating an unbound pod consumes nothing — no notification.
	if got := drain(events); len(got) != 0 {
		t.Fatalf("CreatePod events = %v", got)
	}

	if err := c.Bind(pod, "edge-0"); err != nil {
		t.Fatal(err)
	}
	if got := drain(events); len(got) != 1 || got[0] != "edge-0" {
		t.Fatalf("Bind events = %v", got)
	}

	// Deleting the running pod frees edge-0's resources.
	c.DeletePod(pod)
	if got := drain(events); len(got) != 1 || got[0] != "edge-0" {
		t.Fatalf("DeletePod events = %v", got)
	}

	// Scheduling notifies each node that received a pod.
	if _, err := c.CreatePod(PodSpec{App: "det", Requests: Resources{CPU: 1, MemMB: 512}}); err != nil {
		t.Fatal(err)
	}
	if n := c.Schedule(); n != 1 {
		t.Fatalf("Schedule bound %d", n)
	}
	if got := drain(events); len(got) != 1 {
		t.Fatalf("Schedule events = %v", got)
	}
}

func TestSubscribeEvictAndDeploymentEvents(t *testing.T) {
	c := twoNodes(t)
	events := record(c)

	if err := c.ApplyDeployment(Deployment{
		Name: "det", Replicas: 2,
		Template: PodSpec{App: "det", Requests: Resources{CPU: 1, MemMB: 256}},
	}); err != nil {
		t.Fatal(err)
	}
	c.Reconcile()
	if got := drain(events); len(got) != 2 {
		t.Fatalf("Reconcile bind events = %v", got)
	}

	// Scaling down frees the victim's node.
	if err := c.ApplyDeployment(Deployment{
		Name: "det", Replicas: 1,
		Template: PodSpec{App: "det", Requests: Resources{CPU: 1, MemMB: 256}},
	}); err != nil {
		t.Fatal(err)
	}
	c.Reconcile()
	if got := drain(events); len(got) != 1 {
		t.Fatalf("scale-down events = %v", got)
	}

	// Deleting the deployment frees the remaining pod's node.
	c.DeleteDeployment("det")
	if got := drain(events); len(got) != 1 {
		t.Fatalf("DeleteDeployment events = %v", got)
	}
}
