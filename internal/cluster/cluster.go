// Package cluster implements the low-level desired-state orchestrator of
// the MYRTUS infrastructure — the role Table I assigns to Kubernetes:
// nodes, pods, deployments, a filter-and-score scheduler, and reconcile
// controllers. The MIRTO Cognitive Engine (internal/mirto) sits above it
// and *decides*; this layer merely converges actual state to desired
// state, exactly the split the paper prescribes ("Kubernetes is used as a
// low-level orchestrator; the MIRTO Cognitive Engine covers the
// high-level orchestrator role").
package cluster

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"

	"myrtus/internal/trace"
)

// Resources is a resource quantity vector.
type Resources struct {
	CPU   float64 // cores
	MemMB float64
}

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{CPU: r.CPU + o.CPU, MemMB: r.MemMB + o.MemMB}
}

// Fits reports whether r fits within capacity c.
func (r Resources) Fits(c Resources) bool {
	return r.CPU <= c.CPU+1e-9 && r.MemMB <= c.MemMB+1e-9
}

// PodPhase is the pod lifecycle phase.
type PodPhase string

// Pod lifecycle phases.
const (
	PodPending PodPhase = "Pending"
	PodRunning PodPhase = "Running"
	PodFailed  PodPhase = "Failed"
)

// PodSpec is the desired description of one workload container.
type PodSpec struct {
	App      string
	Requests Resources
	Labels   map[string]string
	// NodeSelector restricts placement to nodes carrying these labels.
	NodeSelector map[string]string
	// SecurityLevel names the minimum Table II suite the hosting node
	// must support ("" = any).
	SecurityLevel string
	// Kernel optionally names an accelerable kernel the workload runs.
	Kernel string
}

// Pod is one scheduled instance.
type Pod struct {
	Name  string
	Spec  PodSpec
	Node  string // "" until bound
	Phase PodPhase
}

// Node is a schedulable member of the cluster.
type Node struct {
	Name        string
	Allocatable Resources
	Labels      map[string]string
	// SecurityLevels are the suites the node supports.
	SecurityLevels []string
	Ready          bool
	// Virtual marks Liqo-style virtual nodes backed by a peered cluster.
	Virtual bool
}

func (n *Node) supportsSecurity(level string) bool {
	if level == "" {
		return true
	}
	for _, l := range n.SecurityLevels {
		if l == level {
			return true
		}
	}
	return false
}

func (n *Node) matchesSelector(sel map[string]string) bool {
	for k, v := range sel {
		if n.Labels[k] != v {
			return false
		}
	}
	return true
}

// Event records one orchestration action, for observability.
type Event struct {
	Kind    string // "Scheduled", "Failed", "Evicted", "Created", "Deleted"
	Object  string
	Message string
}

// ScoreFunc ranks a feasible node for a pod; higher is better. The
// cognitive layer injects its own policy through this hook.
type ScoreFunc func(pod *Pod, node *Node, free Resources) float64

// BinPackScore is the default policy: prefer the most-allocated feasible
// node (consolidation keeps devices idle for power-down). Virtual (Liqo)
// nodes carry a large penalty so offloading happens only when no local
// node fits — the "prefer local" taint of real Liqo deployments.
func BinPackScore(pod *Pod, node *Node, free Resources) float64 {
	if node.Allocatable.CPU == 0 {
		return 0
	}
	s := 1 - free.CPU/node.Allocatable.CPU
	if node.Virtual {
		s -= 10
	}
	return s
}

// SpreadScore prefers the least-allocated node (load spreading baseline),
// with the same local-first virtual-node penalty as BinPackScore.
func SpreadScore(pod *Pod, node *Node, free Resources) float64 {
	if node.Allocatable.CPU == 0 {
		return 0
	}
	s := free.CPU / node.Allocatable.CPU
	if node.Virtual {
		s -= 10
	}
	return s
}

// NodeListener observes node-affecting cluster changes: node add/remove,
// readiness flips, and pod bind/unbind events that alter a node's free
// resources. Listeners fire after the mutation commits, outside the
// cluster lock, with the affected node's name — the hook incremental
// schedulers (MIRTO's candidate index) use to avoid full rescans.
type NodeListener func(node string)

// Cluster is one Kubernetes-role cluster instance.
type Cluster struct {
	mu        sync.Mutex
	name      string
	nodes     map[string]*Node
	pods      map[string]*Pod
	deps      map[string]*Deployment
	events    []Event
	nextID    int
	score     ScoreFunc
	tracer    *trace.Tracer
	listeners []NodeListener
}

// New returns an empty cluster using the default bin-packing score.
func New(name string) *Cluster {
	return &Cluster{
		name:  name,
		nodes: make(map[string]*Node),
		pods:  make(map[string]*Pod),
		deps:  make(map[string]*Deployment),
		score: BinPackScore,
	}
}

// Name returns the cluster name.
func (c *Cluster) Name() string { return c.name }

// SetTracer attaches a tracer; scheduler passes that bind pods then
// record instant spans for attribution.
func (c *Cluster) SetTracer(t *trace.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = t
}

// SetScoreFunc replaces the scheduler scoring policy.
func (c *Cluster) SetScoreFunc(f ScoreFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f == nil {
		f = BinPackScore
	}
	c.score = f
}

// Subscribe registers a listener for node-affecting changes.
func (c *Cluster) Subscribe(fn NodeListener) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.listeners = append(c.listeners, fn)
}

// notify fires every listener for each named node, outside c.mu.
func (c *Cluster) notify(nodes ...string) {
	if len(nodes) == 0 {
		return
	}
	c.mu.Lock()
	ls := c.listeners
	c.mu.Unlock()
	for _, fn := range ls {
		for _, n := range nodes {
			if n != "" {
				fn(n)
			}
		}
	}
}

// AddNode registers a node.
func (c *Cluster) AddNode(n Node) error {
	if n.Name == "" {
		return fmt.Errorf("cluster: node needs a name")
	}
	if n.Allocatable.CPU <= 0 || n.Allocatable.MemMB <= 0 {
		return fmt.Errorf("cluster: node %s needs positive allocatable resources", n.Name)
	}
	c.mu.Lock()
	if _, ok := c.nodes[n.Name]; ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: node %s already exists", n.Name)
	}
	cp := n
	c.nodes[n.Name] = &cp
	c.eventLocked("Created", "node/"+n.Name, "node registered")
	c.mu.Unlock()
	c.notify(n.Name)
	return nil
}

// RemoveNode deletes a node; its pods fail (to be rescheduled by the
// controllers).
func (c *Cluster) RemoveNode(name string) {
	c.mu.Lock()
	delete(c.nodes, name)
	for _, p := range c.pods {
		if p.Node == name && p.Phase == PodRunning {
			p.Phase = PodFailed
			c.eventLocked("Evicted", "pod/"+p.Name, "node removed")
		}
	}
	c.mu.Unlock()
	c.notify(name)
}

// SetNodeReady flips a node's readiness. Marking a node unready fails its
// running pods, modelling a crashed device.
func (c *Cluster) SetNodeReady(name string, ready bool) error {
	c.mu.Lock()
	n, ok := c.nodes[name]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown node %s", name)
	}
	n.Ready = ready
	if !ready {
		for _, p := range c.pods {
			if p.Node == name && p.Phase == PodRunning {
				p.Phase = PodFailed
				c.eventLocked("Evicted", "pod/"+p.Name, "node not ready")
			}
		}
	}
	c.mu.Unlock()
	c.notify(name)
	return nil
}

// Node returns a copy of the named node.
func (c *Cluster) Node(name string) (Node, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.nodes[name]
	if !ok {
		return Node{}, false
	}
	return *n, true
}

// Nodes returns copies of all nodes, sorted by name.
func (c *Cluster) Nodes() []Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		out = append(out, *n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreatePod creates a pending pod and returns its generated name.
func (c *Cluster) CreatePod(spec PodSpec) (string, error) {
	if spec.App == "" {
		return "", fmt.Errorf("cluster: pod spec needs an app")
	}
	if spec.Requests.CPU <= 0 || spec.Requests.MemMB <= 0 {
		return "", fmt.Errorf("cluster: pod for %s needs positive requests", spec.App)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	name := fmt.Sprintf("%s-%d", spec.App, c.nextID)
	c.pods[name] = &Pod{Name: name, Spec: spec, Phase: PodPending}
	c.eventLocked("Created", "pod/"+name, "pod created")
	return name, nil
}

// DeletePod removes a pod.
func (c *Cluster) DeletePod(name string) {
	c.mu.Lock()
	var freed string
	if p, ok := c.pods[name]; ok {
		if p.Phase == PodRunning {
			freed = p.Node
		}
		delete(c.pods, name)
		c.eventLocked("Deleted", "pod/"+name, "pod deleted")
	}
	c.mu.Unlock()
	c.notify(freed)
}

// Pod returns a copy of the named pod.
func (c *Cluster) Pod(name string) (Pod, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pods[name]
	if !ok {
		return Pod{}, false
	}
	return *p, true
}

// Pods returns copies of all pods, sorted by name.
func (c *Cluster) Pods() []Pod {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.podsLocked()
}

func (c *Cluster) podsLocked() []Pod {
	out := make([]Pod, 0, len(c.pods))
	for _, p := range c.pods {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PodsOnNode returns running pods bound to the named node.
func (c *Cluster) PodsOnNode(node string) []Pod {
	var out []Pod
	for _, p := range c.Pods() {
		if p.Node == node && p.Phase == PodRunning {
			out = append(out, p)
		}
	}
	return out
}

// FreeOn returns the unallocated resources of a node.
func (c *Cluster) FreeOn(node string) (Resources, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.freeLocked(node)
}

// FreeAll returns the unallocated resources of every node in one pass —
// O(nodes + pods), for schedulers scanning many candidates.
func (c *Cluster) FreeAll() map[string]Resources {
	c.mu.Lock()
	defer c.mu.Unlock()
	used := make(map[string]Resources, len(c.nodes))
	for _, p := range c.pods {
		if p.Phase == PodRunning {
			used[p.Node] = used[p.Node].Add(p.Spec.Requests)
		}
	}
	out := make(map[string]Resources, len(c.nodes))
	for name, n := range c.nodes {
		u := used[name]
		out[name] = Resources{CPU: n.Allocatable.CPU - u.CPU, MemMB: n.Allocatable.MemMB - u.MemMB}
	}
	return out
}

func (c *Cluster) freeLocked(node string) (Resources, bool) {
	n, ok := c.nodes[node]
	if !ok {
		return Resources{}, false
	}
	used := Resources{}
	for _, p := range c.pods {
		if p.Node == node && p.Phase == PodRunning {
			used = used.Add(p.Spec.Requests)
		}
	}
	return Resources{CPU: n.Allocatable.CPU - used.CPU, MemMB: n.Allocatable.MemMB - used.MemMB}, true
}

// Bind places a pending pod on a specific node, bypassing the scheduler
// (the hook the cognitive layer uses to impose its decisions).
func (c *Cluster) Bind(podName, nodeName string) error {
	if err := c.bind(podName, nodeName); err != nil {
		return err
	}
	c.notify(nodeName)
	return nil
}

func (c *Cluster) bind(podName, nodeName string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pods[podName]
	if !ok {
		return fmt.Errorf("cluster: unknown pod %s", podName)
	}
	if p.Phase == PodRunning {
		return fmt.Errorf("cluster: pod %s already running on %s", podName, p.Node)
	}
	n, ok := c.nodes[nodeName]
	if !ok {
		return fmt.Errorf("cluster: unknown node %s", nodeName)
	}
	if !n.Ready {
		return fmt.Errorf("cluster: node %s not ready", nodeName)
	}
	if !n.supportsSecurity(p.Spec.SecurityLevel) {
		return fmt.Errorf("cluster: node %s does not support security level %q", nodeName, p.Spec.SecurityLevel)
	}
	free, _ := c.freeLocked(nodeName)
	if !p.Spec.Requests.Fits(free) {
		return fmt.Errorf("cluster: pod %s does not fit node %s (free %.1f CPU / %.0f MB)",
			podName, nodeName, free.CPU, free.MemMB)
	}
	p.Node = nodeName
	p.Phase = PodRunning
	c.eventLocked("Scheduled", "pod/"+podName, "bound to "+nodeName)
	return nil
}

// Evict returns a running pod to Pending (used for re-allocation).
func (c *Cluster) Evict(podName string) error {
	c.mu.Lock()
	p, ok := c.pods[podName]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown pod %s", podName)
	}
	was := p.Node
	p.Node = ""
	p.Phase = PodPending
	c.eventLocked("Evicted", "pod/"+podName, "evicted for re-allocation")
	c.mu.Unlock()
	c.notify(was)
	return nil
}

// Schedule runs one scheduler pass: every pending or failed pod is
// (re-)bound to the best feasible node under the active score function.
// It returns the number of pods bound; pods with no feasible node remain
// pending.
func (c *Cluster) Schedule() int {
	c.mu.Lock()
	touched := c.scheduleLocked()
	tracer := c.tracer
	c.mu.Unlock()
	bound := len(touched)
	// Span creation happens outside c.mu: the tracer has its own lock and
	// must never nest inside the cluster's.
	if bound > 0 {
		if sp := tracer.StartRoot("cluster.schedule/"+c.name, trace.LayerCluster); sp != nil {
			sp.SetAttr("bound", strconv.Itoa(bound))
			sp.EndNow()
		}
	}
	c.notify(touched...)
	return bound
}

// scheduleLocked binds pending pods and returns the nodes it bound to.
func (c *Cluster) scheduleLocked() []string {
	var touched []string
	for _, p := range c.podsLocked() {
		if p.Phase == PodRunning {
			continue
		}
		pod := c.pods[p.Name]
		if pod.Phase == PodFailed {
			pod.Phase = PodPending
			pod.Node = ""
		}
		best, bestScore := "", math.Inf(-1)
		var names []string
		for name := range c.nodes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			n := c.nodes[name]
			if !n.Ready || !n.matchesSelector(pod.Spec.NodeSelector) || !n.supportsSecurity(pod.Spec.SecurityLevel) {
				continue
			}
			free, _ := c.freeLocked(name)
			if !pod.Spec.Requests.Fits(free) {
				continue
			}
			if s := c.score(pod, n, free); s > bestScore {
				best, bestScore = name, s
			}
		}
		if best == "" {
			continue
		}
		pod.Node = best
		pod.Phase = PodRunning
		touched = append(touched, best)
		c.eventLocked("Scheduled", "pod/"+pod.Name, "bound to "+best)
	}
	return touched
}

// Events returns the accumulated event log.
func (c *Cluster) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

func (c *Cluster) eventLocked(kind, object, msg string) {
	c.events = append(c.events, Event{Kind: kind, Object: object, Message: msg})
	if len(c.events) > 4096 {
		c.events = c.events[len(c.events)-2048:]
	}
}
