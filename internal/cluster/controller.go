package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Deployment is a declarative replica set: the controller converges the
// number of live pods for the app to Replicas.
type Deployment struct {
	Name     string
	Replicas int
	Template PodSpec
}

// ApplyDeployment creates or updates a deployment.
func (c *Cluster) ApplyDeployment(d Deployment) error {
	if d.Name == "" {
		return fmt.Errorf("cluster: deployment needs a name")
	}
	if d.Replicas < 0 {
		return fmt.Errorf("cluster: deployment %s has negative replicas", d.Name)
	}
	if d.Template.App == "" {
		d.Template.App = d.Name
	}
	if d.Template.Requests.CPU <= 0 || d.Template.Requests.MemMB <= 0 {
		return fmt.Errorf("cluster: deployment %s template needs positive requests", d.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := d
	c.deps[d.Name] = &cp
	return nil
}

// DeleteDeployment removes the deployment and all its pods.
func (c *Cluster) DeleteDeployment(name string) {
	c.mu.Lock()
	d, ok := c.deps[name]
	if !ok {
		c.mu.Unlock()
		return
	}
	delete(c.deps, name)
	app := d.Template.App
	var victims, freed []string
	for _, p := range c.pods {
		if p.Spec.App == app {
			victims = append(victims, p.Name)
			if p.Phase == PodRunning {
				freed = append(freed, p.Node)
			}
		}
	}
	for _, v := range victims {
		delete(c.pods, v)
		c.eventLocked("Deleted", "pod/"+v, "deployment deleted")
	}
	c.mu.Unlock()
	c.notify(freed...)
}

// Deployment returns a copy of the named deployment.
func (c *Cluster) Deployment(name string) (Deployment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.deps[name]
	if !ok {
		return Deployment{}, false
	}
	return *d, true
}

// Deployments lists deployments sorted by name.
func (c *Cluster) Deployments() []Deployment {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Deployment, 0, len(c.deps))
	for _, d := range c.deps {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reconcile runs one controller pass:
//
//  1. replica control — create missing pods, delete surplus pods, and
//     garbage-collect failed pods owned by a deployment (they respawn
//     fresh);
//  2. scheduling — bind whatever is pending.
//
// It returns how many pods were created, deleted, and bound. Calling it
// repeatedly is how the control plane "runs"; MIRTO's MAPE-K loop invokes
// it after editing desired state.
func (c *Cluster) Reconcile() (created, deleted, bound int) {
	c.mu.Lock()
	var freed []string
	var depNames []string
	for name := range c.deps {
		depNames = append(depNames, name)
	}
	sort.Strings(depNames)
	for _, name := range depNames {
		d := c.deps[name]
		var live, dead []string
		for _, p := range c.podsLocked() {
			if p.Spec.App != d.Template.App {
				continue
			}
			if p.Phase == PodFailed {
				dead = append(dead, p.Name)
			} else {
				live = append(live, p.Name)
			}
		}
		// Failed pods owned by a deployment are replaced, not resurrected.
		for _, v := range dead {
			delete(c.pods, v)
			c.eventLocked("Deleted", "pod/"+v, "failed pod garbage-collected")
			deleted++
		}
		for len(live) < d.Replicas {
			c.nextID++
			pn := fmt.Sprintf("%s-%d", d.Template.App, c.nextID)
			c.pods[pn] = &Pod{Name: pn, Spec: d.Template, Phase: PodPending}
			c.eventLocked("Created", "pod/"+pn, "replica control")
			live = append(live, pn)
			created++
		}
		for len(live) > d.Replicas {
			victim := live[len(live)-1]
			live = live[:len(live)-1]
			if p := c.pods[victim]; p != nil && p.Phase == PodRunning {
				freed = append(freed, p.Node)
			}
			delete(c.pods, victim)
			c.eventLocked("Deleted", "pod/"+victim, "replica control")
			deleted++
		}
	}
	c.mu.Unlock()
	c.notify(freed...)
	bound = c.Schedule()
	return created, deleted, bound
}

// ReconcileUntilStable reconciles until a pass makes no change (bounded
// by maxPasses) and reports whether a fixed point was reached.
func (c *Cluster) ReconcileUntilStable(maxPasses int) bool {
	for i := 0; i < maxPasses; i++ {
		created, deleted, bound := c.Reconcile()
		if created == 0 && deleted == 0 && bound == 0 {
			return true
		}
	}
	return false
}

// Summary renders a one-line-per-node placement overview.
func (c *Cluster) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster %s\n", c.name)
	for _, n := range c.Nodes() {
		free, _ := c.FreeOn(n.Name)
		ready := "Ready"
		if !n.Ready {
			ready = "NotReady"
		}
		if n.Virtual {
			ready += " (virtual)"
		}
		var apps []string
		for _, p := range c.PodsOnNode(n.Name) {
			apps = append(apps, p.Name)
		}
		fmt.Fprintf(&b, "  %-16s %-10s free %.1fcpu/%.0fMB pods=[%s]\n",
			n.Name, ready, free.CPU, free.MemMB, strings.Join(apps, " "))
	}
	pending := 0
	for _, p := range c.Pods() {
		if p.Phase != PodRunning {
			pending++
		}
	}
	fmt.Fprintf(&b, "  pending/failed pods: %d\n", pending)
	return b.String()
}
