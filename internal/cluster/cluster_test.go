package cluster

import (
	"strings"
	"testing"
	"testing/quick"

	"myrtus/internal/sim"
	"myrtus/internal/trace"
)

func twoNodes(t *testing.T) *Cluster {
	t.Helper()
	c := New("test")
	for _, n := range []Node{
		{Name: "edge-0", Allocatable: Resources{CPU: 4, MemMB: 4096}, Ready: true,
			Labels: map[string]string{"layer": "edge"}, SecurityLevels: []string{"low", "medium"}},
		{Name: "fog-0", Allocatable: Resources{CPU: 16, MemMB: 65536}, Ready: true,
			Labels: map[string]string{"layer": "fog"}, SecurityLevels: []string{"low", "medium", "high"}},
	} {
		if err := c.AddNode(n); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestAddNodeValidation(t *testing.T) {
	c := New("t")
	if err := c.AddNode(Node{Allocatable: Resources{CPU: 1, MemMB: 1}}); err == nil {
		t.Fatal("nameless node accepted")
	}
	if err := c.AddNode(Node{Name: "n", Allocatable: Resources{CPU: 0, MemMB: 1}}); err == nil {
		t.Fatal("zero CPU accepted")
	}
	if err := c.AddNode(Node{Name: "n", Allocatable: Resources{CPU: 1, MemMB: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(Node{Name: "n", Allocatable: Resources{CPU: 1, MemMB: 1}}); err == nil {
		t.Fatal("duplicate node accepted")
	}
}

func TestCreatePodValidation(t *testing.T) {
	c := New("t")
	if _, err := c.CreatePod(PodSpec{Requests: Resources{CPU: 1, MemMB: 1}}); err == nil {
		t.Fatal("appless pod accepted")
	}
	if _, err := c.CreatePod(PodSpec{App: "a"}); err == nil {
		t.Fatal("zero requests accepted")
	}
}

func TestScheduleBasic(t *testing.T) {
	c := twoNodes(t)
	name, err := c.CreatePod(PodSpec{App: "cam", Requests: Resources{CPU: 1, MemMB: 512}})
	if err != nil {
		t.Fatal(err)
	}
	if n := c.Schedule(); n != 1 {
		t.Fatalf("Schedule bound %d", n)
	}
	p, _ := c.Pod(name)
	if p.Phase != PodRunning || p.Node == "" {
		t.Fatalf("pod = %+v", p)
	}
}

func TestScheduleRespectsSelectorAndSecurity(t *testing.T) {
	c := twoNodes(t)
	name, _ := c.CreatePod(PodSpec{
		App: "secure", Requests: Resources{CPU: 1, MemMB: 512},
		SecurityLevel: "high",
	})
	c.Schedule()
	p, _ := c.Pod(name)
	if p.Node != "fog-0" {
		t.Fatalf("high-security pod on %s", p.Node)
	}
	name2, _ := c.CreatePod(PodSpec{
		App: "edgy", Requests: Resources{CPU: 1, MemMB: 512},
		NodeSelector: map[string]string{"layer": "edge"},
	})
	c.Schedule()
	p2, _ := c.Pod(name2)
	if p2.Node != "edge-0" {
		t.Fatalf("selector pod on %s", p2.Node)
	}
	// Infeasible: edge selector + high security.
	name3, _ := c.CreatePod(PodSpec{
		App: "impossible", Requests: Resources{CPU: 1, MemMB: 512},
		NodeSelector:  map[string]string{"layer": "edge"},
		SecurityLevel: "high",
	})
	c.Schedule()
	p3, _ := c.Pod(name3)
	if p3.Phase != PodPending {
		t.Fatalf("infeasible pod = %+v", p3)
	}
}

func TestScheduleNeverOvercommits(t *testing.T) {
	c := New("t")
	c.AddNode(Node{Name: "n", Allocatable: Resources{CPU: 4, MemMB: 4096}, Ready: true}) //nolint:errcheck
	for i := 0; i < 10; i++ {
		c.CreatePod(PodSpec{App: "w", Requests: Resources{CPU: 1, MemMB: 512}}) //nolint:errcheck
	}
	c.Schedule()
	running := 0
	for _, p := range c.Pods() {
		if p.Phase == PodRunning {
			running++
		}
	}
	if running != 4 {
		t.Fatalf("running = %d, want 4 (CPU bound)", running)
	}
	free, _ := c.FreeOn("n")
	if free.CPU < -1e-9 {
		t.Fatalf("overcommitted: %v", free)
	}
}

func TestOvercommitProperty(t *testing.T) {
	// Arbitrary pod sizes: the scheduler must never exceed allocatable.
	if err := quick.Check(func(sizes []uint8) bool {
		c := New("t")
		c.AddNode(Node{Name: "n", Allocatable: Resources{CPU: 8, MemMB: 8192}, Ready: true}) //nolint:errcheck
		for _, s := range sizes {
			cpu := float64(s%5) + 0.5
			c.CreatePod(PodSpec{App: "w", Requests: Resources{CPU: cpu, MemMB: 256}}) //nolint:errcheck
		}
		c.Schedule()
		free, _ := c.FreeOn("n")
		return free.CPU >= -1e-9 && free.MemMB >= -1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBinPackVsSpread(t *testing.T) {
	mk := func(score ScoreFunc) map[string]int {
		c := New("t")
		c.AddNode(Node{Name: "a", Allocatable: Resources{CPU: 8, MemMB: 8192}, Ready: true}) //nolint:errcheck
		c.AddNode(Node{Name: "b", Allocatable: Resources{CPU: 8, MemMB: 8192}, Ready: true}) //nolint:errcheck
		c.SetScoreFunc(score)
		for i := 0; i < 4; i++ {
			c.CreatePod(PodSpec{App: "w", Requests: Resources{CPU: 1, MemMB: 256}}) //nolint:errcheck
			c.Schedule()
		}
		counts := map[string]int{}
		for _, p := range c.Pods() {
			counts[p.Node]++
		}
		return counts
	}
	pack := mk(BinPackScore)
	if pack["a"] != 4 {
		t.Fatalf("binpack spread pods: %v", pack)
	}
	spread := mk(SpreadScore)
	if spread["a"] != 2 || spread["b"] != 2 {
		t.Fatalf("spread did not spread: %v", spread)
	}
}

func TestBindAndEvict(t *testing.T) {
	c := twoNodes(t)
	name, _ := c.CreatePod(PodSpec{App: "w", Requests: Resources{CPU: 1, MemMB: 256}})
	if err := c.Bind(name, "fog-0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Bind(name, "edge-0"); err == nil {
		t.Fatal("double bind accepted")
	}
	if err := c.Evict(name); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Pod(name)
	if p.Phase != PodPending || p.Node != "" {
		t.Fatalf("evicted pod = %+v", p)
	}
	if err := c.Bind("ghost", "fog-0"); err == nil {
		t.Fatal("ghost pod bound")
	}
	if err := c.Bind(name, "ghost"); err == nil {
		t.Fatal("ghost node bound")
	}
	if err := c.Evict("ghost"); err == nil {
		t.Fatal("ghost evict accepted")
	}
}

func TestBindChecksFeasibility(t *testing.T) {
	c := twoNodes(t)
	big, _ := c.CreatePod(PodSpec{App: "big", Requests: Resources{CPU: 100, MemMB: 256}})
	if err := c.Bind(big, "edge-0"); err == nil {
		t.Fatal("oversized bind accepted")
	}
	sec, _ := c.CreatePod(PodSpec{App: "sec", Requests: Resources{CPU: 1, MemMB: 256}, SecurityLevel: "high"})
	if err := c.Bind(sec, "edge-0"); err == nil {
		t.Fatal("security-violating bind accepted")
	}
	c.SetNodeReady("edge-0", false) //nolint:errcheck
	ok2, _ := c.CreatePod(PodSpec{App: "w", Requests: Resources{CPU: 1, MemMB: 256}})
	if err := c.Bind(ok2, "edge-0"); err == nil {
		t.Fatal("bind to unready node accepted")
	}
}

func TestNodeFailureEvictsPods(t *testing.T) {
	c := twoNodes(t)
	name, _ := c.CreatePod(PodSpec{App: "w", Requests: Resources{CPU: 1, MemMB: 256},
		NodeSelector: map[string]string{"layer": "edge"}})
	c.Schedule()
	if err := c.SetNodeReady("edge-0", false); err != nil {
		t.Fatal(err)
	}
	p, _ := c.Pod(name)
	if p.Phase != PodFailed {
		t.Fatalf("pod after node failure = %+v", p)
	}
	if err := c.SetNodeReady("ghost", true); err == nil {
		t.Fatal("ghost node readiness accepted")
	}
	// Reschedule lands nowhere (selector) until node returns.
	c.Schedule()
	p, _ = c.Pod(name)
	if p.Phase == PodRunning {
		t.Fatal("pod ran with selector unsatisfied")
	}
	c.SetNodeReady("edge-0", true) //nolint:errcheck
	c.Schedule()
	p, _ = c.Pod(name)
	if p.Phase != PodRunning || p.Node != "edge-0" {
		t.Fatalf("pod after recovery = %+v", p)
	}
}

func TestRemoveNode(t *testing.T) {
	c := twoNodes(t)
	name, _ := c.CreatePod(PodSpec{App: "w", Requests: Resources{CPU: 1, MemMB: 256}})
	c.Schedule()
	p, _ := c.Pod(name)
	c.RemoveNode(p.Node)
	p, _ = c.Pod(name)
	if p.Phase != PodFailed {
		t.Fatalf("pod = %+v", p)
	}
	if _, ok := c.Node("fog-0"); ok && p.Node == "fog-0" {
		t.Fatal("node not removed")
	}
}

func TestDeploymentReconcile(t *testing.T) {
	c := twoNodes(t)
	err := c.ApplyDeployment(Deployment{
		Name: "detector", Replicas: 3,
		Template: PodSpec{App: "detector", Requests: Resources{CPU: 1, MemMB: 512}},
	})
	if err != nil {
		t.Fatal(err)
	}
	created, _, bound := c.Reconcile()
	if created != 3 || bound != 3 {
		t.Fatalf("created=%d bound=%d", created, bound)
	}
	// Scale down.
	c.ApplyDeployment(Deployment{Name: "detector", Replicas: 1, //nolint:errcheck
		Template: PodSpec{App: "detector", Requests: Resources{CPU: 1, MemMB: 512}}})
	_, deleted, _ := c.Reconcile()
	if deleted != 2 {
		t.Fatalf("deleted = %d", deleted)
	}
	if !c.ReconcileUntilStable(10) {
		t.Fatal("did not stabilize")
	}
	d, ok := c.Deployment("detector")
	if !ok || d.Replicas != 1 {
		t.Fatalf("deployment = %+v %v", d, ok)
	}
	if len(c.Deployments()) != 1 {
		t.Fatal("Deployments list")
	}
}

func TestDeploymentSelfHealing(t *testing.T) {
	c := twoNodes(t)
	c.ApplyDeployment(Deployment{Name: "svc", Replicas: 2, //nolint:errcheck
		Template: PodSpec{App: "svc", Requests: Resources{CPU: 1, MemMB: 256}}})
	c.ReconcileUntilStable(10)
	// Kill a node: its pods fail, controller replaces them elsewhere.
	c.SetNodeReady("edge-0", false) //nolint:errcheck
	c.ReconcileUntilStable(10)
	running := 0
	for _, p := range c.Pods() {
		if p.Phase == PodRunning {
			if p.Node == "edge-0" {
				t.Fatal("pod on dead node")
			}
			running++
		}
	}
	if running != 2 {
		t.Fatalf("running = %d after self-heal", running)
	}
}

func TestDeploymentValidation(t *testing.T) {
	c := New("t")
	if err := c.ApplyDeployment(Deployment{Replicas: 1}); err == nil {
		t.Fatal("nameless deployment accepted")
	}
	if err := c.ApplyDeployment(Deployment{Name: "d", Replicas: -1}); err == nil {
		t.Fatal("negative replicas accepted")
	}
	if err := c.ApplyDeployment(Deployment{Name: "d", Replicas: 1}); err == nil {
		t.Fatal("zero-request template accepted")
	}
	// App defaults to deployment name.
	if err := c.ApplyDeployment(Deployment{Name: "d", Replicas: 0,
		Template: PodSpec{Requests: Resources{CPU: 1, MemMB: 1}}}); err != nil {
		t.Fatal(err)
	}
	d, _ := c.Deployment("d")
	if d.Template.App != "d" {
		t.Fatal("app did not default")
	}
}

func TestDeleteDeployment(t *testing.T) {
	c := twoNodes(t)
	c.ApplyDeployment(Deployment{Name: "svc", Replicas: 2, //nolint:errcheck
		Template: PodSpec{App: "svc", Requests: Resources{CPU: 1, MemMB: 256}}})
	c.ReconcileUntilStable(10)
	c.DeleteDeployment("svc")
	if len(c.Pods()) != 0 {
		t.Fatalf("pods after delete = %v", c.Pods())
	}
	c.DeleteDeployment("ghost") // no-op
}

func TestEventsAndSummary(t *testing.T) {
	c := twoNodes(t)
	name, _ := c.CreatePod(PodSpec{App: "w", Requests: Resources{CPU: 1, MemMB: 256}})
	c.Schedule()
	c.DeletePod(name)
	evs := c.Events()
	kinds := map[string]bool{}
	for _, e := range evs {
		kinds[e.Kind] = true
	}
	for _, k := range []string{"Created", "Scheduled", "Deleted"} {
		if !kinds[k] {
			t.Fatalf("missing event kind %s in %v", k, evs)
		}
	}
	s := c.Summary()
	if !strings.Contains(s, "edge-0") || !strings.Contains(s, "fog-0") {
		t.Fatalf("summary = %q", s)
	}
}

func TestResourcesHelpers(t *testing.T) {
	a := Resources{CPU: 1, MemMB: 2}
	b := Resources{CPU: 3, MemMB: 4}
	if got := a.Add(b); got.CPU != 4 || got.MemMB != 6 {
		t.Fatalf("Add = %+v", got)
	}
	if !a.Fits(b) || b.Fits(a) {
		t.Fatal("Fits wrong")
	}
}

func TestPodsOnNodeAndFreeOn(t *testing.T) {
	c := twoNodes(t)
	name, _ := c.CreatePod(PodSpec{App: "w", Requests: Resources{CPU: 2, MemMB: 1024},
		NodeSelector: map[string]string{"layer": "edge"}})
	c.Schedule()
	pods := c.PodsOnNode("edge-0")
	if len(pods) != 1 || pods[0].Name != name {
		t.Fatalf("PodsOnNode = %v", pods)
	}
	free, ok := c.FreeOn("edge-0")
	if !ok || free.CPU != 2 || free.MemMB != 3072 {
		t.Fatalf("FreeOn = %+v %v", free, ok)
	}
	if _, ok := c.FreeOn("ghost"); ok {
		t.Fatal("ghost FreeOn")
	}
}

func TestScheduleRecordsSpan(t *testing.T) {
	c := twoNodes(t)
	tr := trace.NewTracer(sim.NewEngine(1))
	c.SetTracer(tr)
	if _, err := c.CreatePod(PodSpec{App: "web", Requests: Resources{CPU: 1, MemMB: 256}}); err != nil {
		t.Fatal(err)
	}
	if n := c.Schedule(); n != 1 {
		t.Fatalf("bound = %d", n)
	}
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	sp := traces[0].Root
	if sp.Name != "cluster.schedule/test" || sp.Layer != trace.LayerCluster || sp.Attrs["bound"] != "1" {
		t.Fatalf("span = %+v attrs = %v", sp, sp.Attrs)
	}
	// An idle pass (nothing to bind) must not record a span.
	if n := c.Schedule(); n != 0 {
		t.Fatalf("idle bound = %d", n)
	}
	if len(tr.Traces()) != 1 {
		t.Fatal("idle scheduler pass recorded a span")
	}
}
