// Package swarm implements the swarm-intelligence orchestration strategy
// of the MIRTO Cognitive Engine (LAKE's contribution in the paper):
// decentralized workload balancing driven by evolved local rules. FREVO's
// role — evolutionary design of the local rules — is reproduced by
// Evolve, and DynAA's role — simulating the effect of rule changes on
// system KPIs — by Network.Run.
package swarm

import (
	"fmt"
	"math"
	"sort"

	"myrtus/internal/sim"
)

// Rule is the local decision rule every swarm agent executes. An agent
// offloads its smallest task to its least-loaded neighbor when its own
// relative load exceeds OffloadThreshold and the neighbor is at least
// Hysteresis less loaded.
type Rule struct {
	// OffloadThreshold is the relative load (load/capacity) above which
	// an agent tries to shed work.
	OffloadThreshold float64
	// Hysteresis is the minimum relative-load gap to a neighbor before
	// migrating (prevents thrashing).
	Hysteresis float64
}

// Validate checks rule ranges.
func (r Rule) Validate() error {
	if r.OffloadThreshold < 0 || r.OffloadThreshold > 2 {
		return fmt.Errorf("swarm: offload threshold %v out of [0,2]", r.OffloadThreshold)
	}
	if r.Hysteresis < 0 || r.Hysteresis > 1 {
		return fmt.Errorf("swarm: hysteresis %v out of [0,1]", r.Hysteresis)
	}
	return nil
}

// Node is one swarm agent with a capacity and a bag of task sizes.
type Node struct {
	Name     string
	Capacity float64
	Tasks    []float64
	// neighbors by index.
	neighbors []int
}

// Load returns the node's total assigned work.
func (n *Node) Load() float64 {
	s := 0.0
	for _, t := range n.Tasks {
		s += t
	}
	return s
}

// RelLoad returns load normalized by capacity.
func (n *Node) RelLoad() float64 { return n.Load() / n.Capacity }

// Network is the agent population with its neighborhood graph.
type Network struct {
	Nodes []*Node
	rng   *sim.RNG
}

// NewRing builds n identical-capacity nodes in a ring with degree 2k
// (each node sees k neighbors on each side).
func NewRing(n, k int, capacity float64, seed uint64) (*Network, error) {
	if n < 2 || k < 1 || capacity <= 0 {
		return nil, fmt.Errorf("swarm: ring needs n ≥ 2, k ≥ 1, positive capacity")
	}
	net := &Network{rng: sim.NewRNG(seed).Fork("swarm")}
	for i := 0; i < n; i++ {
		net.Nodes = append(net.Nodes, &Node{Name: fmt.Sprintf("fog-%d", i), Capacity: capacity})
	}
	for i := range net.Nodes {
		for d := 1; d <= k; d++ {
			net.Nodes[i].neighbors = append(net.Nodes[i].neighbors, (i+d)%n, (i-d+n)%n)
		}
	}
	return net, nil
}

// AssignRandom scatters tasks uniformly over the nodes.
func (net *Network) AssignRandom(tasks []float64) {
	for _, t := range tasks {
		n := net.Nodes[net.rng.Intn(len(net.Nodes))]
		n.Tasks = append(n.Tasks, t)
	}
}

// AssignTo puts all tasks on one node (hotspot scenario).
func (net *Network) AssignTo(idx int, tasks []float64) {
	net.Nodes[idx].Tasks = append(net.Nodes[idx].Tasks, tasks...)
}

// Step runs one synchronous round of the local rule on every agent and
// returns the number of migrations. Agents only observe their neighbors —
// no global state, which is the point of the swarm approach.
func (net *Network) Step(rule Rule) int {
	migrations := 0
	type move struct {
		from, to int
		taskIdx  int
	}
	var moves []move
	for i, n := range net.Nodes {
		if n.RelLoad() <= rule.OffloadThreshold || len(n.Tasks) == 0 {
			continue
		}
		// Least-loaded neighbor.
		best := -1
		bestLoad := math.Inf(1)
		for _, j := range n.neighbors {
			if l := net.Nodes[j].RelLoad(); l < bestLoad {
				best, bestLoad = j, l
			}
		}
		if best < 0 || n.RelLoad()-bestLoad < rule.Hysteresis {
			continue
		}
		// Shed the smallest task (cheapest migration).
		smallest := 0
		for ti, t := range n.Tasks {
			if t < n.Tasks[smallest] {
				smallest = ti
			}
		}
		moves = append(moves, move{from: i, to: best, taskIdx: smallest})
	}
	// Apply moves after the observation phase (synchronous update).
	sort.Slice(moves, func(a, b int) bool { return moves[a].from < moves[b].from })
	for _, mv := range moves {
		n := net.Nodes[mv.from]
		t := n.Tasks[mv.taskIdx]
		n.Tasks = append(n.Tasks[:mv.taskIdx], n.Tasks[mv.taskIdx+1:]...)
		net.Nodes[mv.to].Tasks = append(net.Nodes[mv.to].Tasks, t)
		migrations++
	}
	return migrations
}

// Stats summarizes a placement.
type Stats struct {
	MaxRelLoad  float64
	MeanRelLoad float64
	StdDev      float64
	Migrations  int
	Rounds      int
}

// Run executes up to maxRounds of the rule, stopping early when a round
// makes no migration.
func (net *Network) Run(rule Rule, maxRounds int) (Stats, error) {
	if err := rule.Validate(); err != nil {
		return Stats{}, err
	}
	st := Stats{}
	for r := 0; r < maxRounds; r++ {
		m := net.Step(rule)
		st.Migrations += m
		st.Rounds = r + 1
		if m == 0 {
			break
		}
	}
	st.MaxRelLoad, st.MeanRelLoad, st.StdDev = net.balance()
	return st, nil
}

func (net *Network) balance() (maxL, mean, std float64) {
	for _, n := range net.Nodes {
		l := n.RelLoad()
		mean += l
		if l > maxL {
			maxL = l
		}
	}
	mean /= float64(len(net.Nodes))
	for _, n := range net.Nodes {
		d := n.RelLoad() - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(net.Nodes)))
	return
}

// GreedyCentral is the centralized baseline: longest-processing-time
// assignment with global knowledge. It returns the resulting stats for
// the same tasks and node count.
func GreedyCentral(tasks []float64, n int, capacity float64) Stats {
	sorted := append([]float64(nil), tasks...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	loads := make([]float64, n)
	for _, t := range sorted {
		min := 0
		for i := range loads {
			if loads[i] < loads[min] {
				min = i
			}
		}
		loads[min] += t
	}
	st := Stats{}
	for _, l := range loads {
		rel := l / capacity
		st.MeanRelLoad += rel
		if rel > st.MaxRelLoad {
			st.MaxRelLoad = rel
		}
	}
	st.MeanRelLoad /= float64(n)
	for _, l := range loads {
		d := l/capacity - st.MeanRelLoad
		st.StdDev += d * d
	}
	st.StdDev = math.Sqrt(st.StdDev / float64(n))
	return st
}

// EvolveOptions tune rule evolution (the FREVO role).
type EvolveOptions struct {
	Population  int
	Generations int
	Rounds      int // simulation rounds per fitness evaluation
	Seed        uint64
	// MigrationPenalty weights migration count in the fitness.
	MigrationPenalty float64
}

// DefaultEvolveOptions returns a small but effective configuration.
func DefaultEvolveOptions() EvolveOptions {
	return EvolveOptions{Population: 24, Generations: 30, Rounds: 50, Seed: 7, MigrationPenalty: 0.001}
}

// Evolve searches for the rule minimizing post-convergence load imbalance
// (std dev + migration penalty) on the given scenario builder. The
// builder must return a fresh identical scenario each call.
func Evolve(scenario func() *Network, opts EvolveOptions) (Rule, float64, error) {
	if opts.Population < 4 || opts.Generations < 1 {
		return Rule{}, 0, fmt.Errorf("swarm: evolve needs population ≥ 4 and generations ≥ 1")
	}
	rng := sim.NewRNG(opts.Seed).Fork("evolve")
	random := func() Rule {
		return Rule{OffloadThreshold: rng.Range(0, 1.5), Hysteresis: rng.Range(0, 0.5)}
	}
	fitness := func(r Rule) float64 {
		net := scenario()
		st, err := net.Run(r, opts.Rounds)
		if err != nil {
			return math.Inf(1)
		}
		return st.StdDev + opts.MigrationPenalty*float64(st.Migrations)
	}
	type indiv struct {
		r Rule
		f float64
	}
	pop := make([]indiv, opts.Population)
	for i := range pop {
		r := random()
		pop[i] = indiv{r, fitness(r)}
	}
	for g := 0; g < opts.Generations; g++ {
		sort.Slice(pop, func(i, j int) bool { return pop[i].f < pop[j].f })
		for i := opts.Population / 2; i < opts.Population; i++ {
			a := pop[rng.Intn(opts.Population/2)].r
			b := pop[rng.Intn(opts.Population/2)].r
			child := Rule{
				OffloadThreshold: (a.OffloadThreshold + b.OffloadThreshold) / 2,
				Hysteresis:       (a.Hysteresis + b.Hysteresis) / 2,
			}
			if rng.Bool(0.3) {
				child.OffloadThreshold = clamp(child.OffloadThreshold+rng.Norm(0, 0.1), 0, 1.5)
			}
			if rng.Bool(0.3) {
				child.Hysteresis = clamp(child.Hysteresis+rng.Norm(0, 0.05), 0, 0.5)
			}
			pop[i] = indiv{child, fitness(child)}
		}
	}
	sort.Slice(pop, func(i, j int) bool { return pop[i].f < pop[j].f })
	return pop[0].r, pop[0].f, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
