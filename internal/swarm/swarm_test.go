package swarm

import (
	"testing"
	"testing/quick"

	"myrtus/internal/sim"
)

func tasks(n int, size float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = size
	}
	return out
}

func TestRuleValidate(t *testing.T) {
	if err := (Rule{OffloadThreshold: 0.8, Hysteresis: 0.1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Rule{OffloadThreshold: 3}).Validate(); err == nil {
		t.Fatal("bad threshold accepted")
	}
	if err := (Rule{Hysteresis: 2}).Validate(); err == nil {
		t.Fatal("bad hysteresis accepted")
	}
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(1, 1, 1, 0); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := NewRing(4, 0, 1, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewRing(4, 1, 0, 0); err == nil {
		t.Fatal("capacity=0 accepted")
	}
	net, err := NewRing(6, 1, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Nodes) != 6 || len(net.Nodes[0].neighbors) != 2 {
		t.Fatalf("ring shape wrong")
	}
}

func TestHotspotDiffuses(t *testing.T) {
	net, _ := NewRing(10, 2, 10, 1)
	net.AssignTo(0, tasks(40, 1)) // node 0 at 4× capacity
	rule := Rule{OffloadThreshold: 0.5, Hysteresis: 0.05}
	st, err := net.Run(rule, 200)
	if err != nil {
		t.Fatal(err)
	}
	if st.Migrations == 0 {
		t.Fatal("no migrations from hotspot")
	}
	if st.MaxRelLoad > 1.0 {
		t.Fatalf("hotspot not diffused: max rel load %v", st.MaxRelLoad)
	}
	if st.StdDev > 0.2 {
		t.Fatalf("poor balance: std %v", st.StdDev)
	}
}

func TestNoMigrationWhenBalanced(t *testing.T) {
	net, _ := NewRing(4, 1, 10, 2)
	for i := range net.Nodes {
		net.AssignTo(i, tasks(2, 1))
	}
	st, _ := net.Run(Rule{OffloadThreshold: 0.5, Hysteresis: 0.1}, 50)
	if st.Migrations != 0 {
		t.Fatalf("balanced network migrated %d tasks", st.Migrations)
	}
	if st.Rounds != 1 {
		t.Fatalf("did not stop early: %d rounds", st.Rounds)
	}
}

func TestHysteresisPreventsThrashing(t *testing.T) {
	mk := func(h float64) int {
		net, _ := NewRing(6, 1, 10, 3)
		net.AssignTo(0, tasks(30, 1))
		st, _ := net.Run(Rule{OffloadThreshold: 0.3, Hysteresis: h}, 300)
		return st.Migrations
	}
	low := mk(0.0)
	high := mk(0.2)
	if high >= low {
		t.Fatalf("hysteresis did not reduce migrations: %d vs %d", high, low)
	}
}

func TestWorkConservedProperty(t *testing.T) {
	// Total load is invariant under any number of steps of any rule.
	if err := quick.Check(func(seed uint64, th, hy uint8) bool {
		net, _ := NewRing(8, 2, 10, seed)
		rng := sim.NewRNG(seed)
		var ts []float64
		total := 0.0
		for i := 0; i < 30; i++ {
			v := 0.5 + rng.Float64()
			ts = append(ts, v)
			total += v
		}
		net.AssignRandom(ts)
		rule := Rule{OffloadThreshold: float64(th%20) / 10, Hysteresis: float64(hy%10) / 20}
		net.Run(rule, 50) //nolint:errcheck
		sum := 0.0
		for _, n := range net.Nodes {
			sum += n.Load()
		}
		return sum > total-1e-9 && sum < total+1e-9
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSwarmNearGreedy(t *testing.T) {
	// E4 shape: decentralized swarm ends within a reasonable factor of
	// the centralized LPT baseline on balance quality.
	ts := make([]float64, 0, 120)
	rng := sim.NewRNG(4)
	for i := 0; i < 120; i++ {
		ts = append(ts, 0.2+rng.Float64())
	}
	greedy := GreedyCentral(ts, 16, 10)
	net, _ := NewRing(16, 2, 10, 4)
	net.AssignRandom(ts)
	st, _ := net.Run(Rule{OffloadThreshold: 0.3, Hysteresis: 0.02}, 300)
	if st.MaxRelLoad > greedy.MaxRelLoad*1.8+0.05 {
		t.Fatalf("swarm max load %v vs greedy %v", st.MaxRelLoad, greedy.MaxRelLoad)
	}
}

func TestEvolveImprovesOverRandomRule(t *testing.T) {
	scenario := func() *Network {
		net, _ := NewRing(12, 2, 10, 9)
		net.AssignTo(0, tasks(30, 1))
		net.AssignTo(5, tasks(20, 1))
		return net
	}
	best, fit, err := Evolve(scenario, DefaultEvolveOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := best.Validate(); err != nil {
		t.Fatalf("evolved rule invalid: %v", err)
	}
	// A deliberately bad rule (never offload) must be worse.
	net := scenario()
	badStats, _ := net.Run(Rule{OffloadThreshold: 1.9, Hysteresis: 0.5}, 50)
	if fit >= badStats.StdDev {
		t.Fatalf("evolution did not beat the do-nothing rule: %v vs %v", fit, badStats.StdDev)
	}
	if _, _, err := Evolve(scenario, EvolveOptions{Population: 1}); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestGreedyCentral(t *testing.T) {
	st := GreedyCentral([]float64{5, 3, 3, 3}, 2, 10)
	// LPT: [5,3] and [3,3] → max 0.8... wait: 5 then 3→other, 3→lighter(3)=6, 3→(5+3=8 vs 6)→6+3=9? LPT: sorted 5,3,3,3.
	// loads: 5|0 → 5|3 → 5+? min is 3 → 5|6 → min 5 → 8|6. max rel = 0.8.
	if st.MaxRelLoad != 0.8 {
		t.Fatalf("greedy max = %v", st.MaxRelLoad)
	}
	if st.MeanRelLoad != 0.7 {
		t.Fatalf("greedy mean = %v", st.MeanRelLoad)
	}
}
