// Package fl implements the federated-learning strategy of the MIRTO
// Cognitive Engine (KCL's contribution): edge agents train local models
// on their own telemetry and share only model weights, which a
// coordinator aggregates with FedAvg — "combining learned models from
// different agents … allowing MIRTO edge agents to evolve based on each
// other's experiences" (§IV). The models are linear regressors trained by
// SGD, used as operating-point performance predictors.
package fl

import (
	"fmt"
	"math"
	"sort"

	"myrtus/internal/sim"
)

// Dataset is a supervised regression set: X rows of features, y targets.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Validate checks shape consistency.
func (d *Dataset) Validate() error {
	if len(d.X) == 0 || len(d.X) != len(d.Y) {
		return fmt.Errorf("fl: dataset needs matching non-empty X (%d) and Y (%d)", len(d.X), len(d.Y))
	}
	dim := len(d.X[0])
	if dim == 0 {
		return fmt.Errorf("fl: dataset has zero-dimensional features")
	}
	for i, row := range d.X {
		if len(row) != dim {
			return fmt.Errorf("fl: row %d has %d features, want %d", i, len(row), dim)
		}
	}
	return nil
}

// Len returns the sample count.
func (d *Dataset) Len() int { return len(d.X) }

// Model is a linear regressor with bias: ŷ = w·x + b.
type Model struct {
	W []float64
	B float64
}

// NewModel returns a zero model of the given feature dimension.
func NewModel(dim int) *Model { return &Model{W: make([]float64, dim)} }

// Clone deep-copies the model.
func (m *Model) Clone() *Model {
	return &Model{W: append([]float64(nil), m.W...), B: m.B}
}

// Predict evaluates the model on one feature vector.
func (m *Model) Predict(x []float64) float64 {
	s := m.B
	for i, w := range m.W {
		if i < len(x) {
			s += w * x[i]
		}
	}
	return s
}

// MSE returns the mean squared error over a dataset.
func (m *Model) MSE(d *Dataset) float64 {
	if d.Len() == 0 {
		return 0
	}
	s := 0.0
	for i, x := range d.X {
		e := m.Predict(x) - d.Y[i]
		s += e * e
	}
	return s / float64(d.Len())
}

// SGDOptions tune local training.
type SGDOptions struct {
	Epochs       int
	LearningRate float64
	L2           float64
}

// DefaultSGDOptions returns a stable configuration for normalized
// features.
func DefaultSGDOptions() SGDOptions {
	return SGDOptions{Epochs: 20, LearningRate: 0.05, L2: 1e-4}
}

// TrainSGD runs mini-batch (batch = 1) gradient descent in place.
func (m *Model) TrainSGD(d *Dataset, opts SGDOptions) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if len(m.W) != len(d.X[0]) {
		return fmt.Errorf("fl: model dim %d vs data dim %d", len(m.W), len(d.X[0]))
	}
	if opts.Epochs < 1 || opts.LearningRate <= 0 {
		return fmt.Errorf("fl: bad SGD options")
	}
	for e := 0; e < opts.Epochs; e++ {
		for i, x := range d.X {
			err := m.Predict(x) - d.Y[i]
			for j := range m.W {
				m.W[j] -= opts.LearningRate * (err*x[j] + opts.L2*m.W[j])
			}
			m.B -= opts.LearningRate * err
		}
	}
	for _, w := range m.W {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("fl: training diverged (reduce learning rate)")
		}
	}
	return nil
}

// Client is one federated participant: a device agent with private data.
type Client struct {
	Name string
	Data *Dataset
}

// FedAvgOptions tune federated training.
type FedAvgOptions struct {
	Rounds int
	Local  SGDOptions
	// TrimFraction enables Byzantine-robust aggregation: each round the
	// server takes the coordinate-wise trimmed mean, dropping the
	// ⌈TrimFraction·n⌉ smallest and largest client values of every weight
	// coordinate before averaging. The trimmed mean is unweighted —
	// sample-count weighting would let a poisoning client amplify itself
	// simply by claiming more data. 0 keeps plain sample-weighted FedAvg;
	// values must lie in [0, 0.5) and leave at least one client untrimmed.
	TrimFraction float64
}

// DefaultFedAvgOptions returns a standard configuration.
func DefaultFedAvgOptions() FedAvgOptions {
	return FedAvgOptions{Rounds: 10, Local: SGDOptions{Epochs: 5, LearningRate: 0.05, L2: 1e-4}}
}

// FedAvg trains a global model without moving any raw data: each round,
// every client trains a copy of the global model locally, and the server
// averages the resulting weights proportionally to sample counts.
func FedAvg(clients []Client, dim int, opts FedAvgOptions) (*Model, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("fl: no clients")
	}
	if opts.Rounds < 1 {
		return nil, fmt.Errorf("fl: need at least one round")
	}
	for _, c := range clients {
		if err := c.Data.Validate(); err != nil {
			return nil, fmt.Errorf("fl: client %s: %w", c.Name, err)
		}
		if len(c.Data.X[0]) != dim {
			return nil, fmt.Errorf("fl: client %s dim %d, want %d", c.Name, len(c.Data.X[0]), dim)
		}
	}
	trim := 0
	if opts.TrimFraction > 0 {
		if opts.TrimFraction >= 0.5 {
			return nil, fmt.Errorf("fl: trim fraction %.2f must be < 0.5", opts.TrimFraction)
		}
		trim = int(math.Ceil(opts.TrimFraction * float64(len(clients))))
		if len(clients)-2*trim < 1 {
			return nil, fmt.Errorf("fl: trimming %d from each end leaves no clients (have %d)", trim, len(clients))
		}
	}
	global := NewModel(dim)
	for r := 0; r < opts.Rounds; r++ {
		locals := make([]*Model, len(clients))
		for i, c := range clients {
			local := global.Clone()
			if err := local.TrainSGD(c.Data, opts.Local); err != nil {
				return nil, fmt.Errorf("fl: client %s round %d: %w", c.Name, r, err)
			}
			locals[i] = local
		}
		if trim > 0 {
			vals := make([]float64, len(locals))
			coord := func(pick func(m *Model) float64) float64 {
				for i, l := range locals {
					vals[i] = pick(l)
				}
				return trimmedMean(vals, trim)
			}
			for j := range global.W {
				j := j
				global.W[j] = coord(func(m *Model) float64 { return m.W[j] })
			}
			global.B = coord(func(m *Model) float64 { return m.B })
			continue
		}
		sumW := make([]float64, dim)
		sumB := 0.0
		total := 0.0
		for i, c := range clients {
			w := float64(c.Data.Len())
			for j := range sumW {
				sumW[j] += w * locals[i].W[j]
			}
			sumB += w * locals[i].B
			total += w
		}
		for j := range global.W {
			global.W[j] = sumW[j] / total
		}
		global.B = sumB / total
	}
	return global, nil
}

// trimmedMean sorts vals in place, drops k values from each end, and
// averages the rest. The caller guarantees len(vals) > 2k.
func trimmedMean(vals []float64, k int) float64 {
	sort.Float64s(vals)
	kept := vals[k : len(vals)-k]
	s := 0.0
	for _, v := range kept {
		s += v
	}
	return s / float64(len(kept))
}

// OperatingPointSample is one telemetry observation: device features at
// execution time and the measured latency of the active operating point.
type OperatingPointSample struct {
	Utilization float64 // device load ∈ [0,1]
	BatchSize   float64 // normalized items per request
	ClockScale  float64 // active DVFS/OP scale ∈ (0,1]
	LatencyMs   float64
}

// SamplesToDataset converts telemetry to a training set.
func SamplesToDataset(samples []OperatingPointSample) *Dataset {
	d := &Dataset{}
	for _, s := range samples {
		d.X = append(d.X, []float64{s.Utilization, s.BatchSize, 1 / s.ClockScale})
		d.Y = append(d.Y, s.LatencyMs)
	}
	return d
}

// SyntheticWorkload generates telemetry from a ground-truth latency model
// latency = base + a·util + b·batch + c/clock + noise — the per-device
// physics the predictors must learn. Different devices pass different
// coefficients, giving the non-IID setting FL is designed for.
func SyntheticWorkload(rng *sim.RNG, n int, base, a, b, c, noise float64) []OperatingPointSample {
	out := make([]OperatingPointSample, n)
	for i := range out {
		u := rng.Float64()
		bs := rng.Float64()
		clk := 0.4 + 0.6*rng.Float64()
		lat := base + a*u + b*bs + c/clk + rng.Norm(0, noise)
		out[i] = OperatingPointSample{Utilization: u, BatchSize: bs, ClockScale: clk, LatencyMs: lat}
	}
	return out
}
