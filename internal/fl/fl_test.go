package fl

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"myrtus/internal/sim"
)

func TestDatasetValidate(t *testing.T) {
	good := &Dataset{X: [][]float64{{1, 2}}, Y: []float64{3}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Dataset{
		{},
		{X: [][]float64{{1}}, Y: []float64{1, 2}},
		{X: [][]float64{{}}, Y: []float64{1}},
		{X: [][]float64{{1, 2}, {1}}, Y: []float64{1, 2}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Fatalf("bad dataset %d validated", i)
		}
	}
}

func TestSGDLearnsLinearFunction(t *testing.T) {
	rng := sim.NewRNG(1)
	d := &Dataset{}
	for i := 0; i < 300; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		d.X = append(d.X, x)
		d.Y = append(d.Y, 3*x[0]-2*x[1]+0.5)
	}
	m := NewModel(2)
	if err := m.TrainSGD(d, SGDOptions{Epochs: 200, LearningRate: 0.05}); err != nil {
		t.Fatal(err)
	}
	if mse := m.MSE(d); mse > 1e-3 {
		t.Fatalf("MSE = %v", mse)
	}
	if math.Abs(m.W[0]-3) > 0.1 || math.Abs(m.W[1]+2) > 0.1 || math.Abs(m.B-0.5) > 0.1 {
		t.Fatalf("weights = %v b = %v", m.W, m.B)
	}
}

func TestSGDValidation(t *testing.T) {
	m := NewModel(2)
	d := &Dataset{X: [][]float64{{1}}, Y: []float64{1}}
	if err := m.TrainSGD(d, DefaultSGDOptions()); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	d2 := &Dataset{X: [][]float64{{1, 2}}, Y: []float64{1}}
	if err := m.TrainSGD(d2, SGDOptions{Epochs: 0, LearningRate: 0.1}); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if err := m.TrainSGD(&Dataset{}, DefaultSGDOptions()); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestSGDDivergenceDetected(t *testing.T) {
	d := &Dataset{}
	for i := 0; i < 50; i++ {
		d.X = append(d.X, []float64{100, 100})
		d.Y = append(d.Y, 1e6)
	}
	m := NewModel(2)
	if err := m.TrainSGD(d, SGDOptions{Epochs: 100, LearningRate: 10}); err == nil {
		t.Fatal("divergence not detected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := NewModel(2)
	m.W[0] = 1
	c := m.Clone()
	c.W[0] = 9
	if m.W[0] != 1 {
		t.Fatal("clone aliases weights")
	}
}

func TestFedAvgMatchesCentralizedShape(t *testing.T) {
	// Three devices, same physics, disjoint data; FedAvg should learn
	// the shared function without moving data.
	rng := sim.NewRNG(2)
	truth := func(x []float64) float64 { return 2*x[0] + x[1] - 1 }
	mkClient := func(name string, n int) Client {
		d := &Dataset{}
		for i := 0; i < n; i++ {
			x := []float64{rng.Float64(), rng.Float64()}
			d.X = append(d.X, x)
			d.Y = append(d.Y, truth(x))
		}
		return Client{Name: name, Data: d}
	}
	clients := []Client{mkClient("edge-0", 100), mkClient("edge-1", 100), mkClient("edge-2", 100)}
	global, err := FedAvg(clients, 2, DefaultFedAvgOptions())
	if err != nil {
		t.Fatal(err)
	}
	test := mkClient("test", 100).Data
	if mse := global.MSE(test); mse > 0.01 {
		t.Fatalf("federated MSE = %v", mse)
	}
}

func TestFedAvgHelpsSparseClient(t *testing.T) {
	// E3 shape: a device with few samples predicts better with the
	// federated model than with its own isolated model.
	rng := sim.NewRNG(3)
	world := func(n int, r *sim.RNG) *Dataset {
		return SamplesToDataset(SyntheticWorkload(r, n, 5, 10, 8, 3, 0.2))
	}
	rich1 := Client{Name: "rich1", Data: world(400, rng.Fork("r1"))}
	rich2 := Client{Name: "rich2", Data: world(400, rng.Fork("r2"))}
	sparse := Client{Name: "sparse", Data: world(6, rng.Fork("s"))}
	test := world(300, rng.Fork("test"))

	local := NewModel(3)
	if err := local.TrainSGD(sparse.Data, SGDOptions{Epochs: 50, LearningRate: 0.03, L2: 1e-4}); err != nil {
		t.Fatal(err)
	}
	global, err := FedAvg([]Client{rich1, rich2, sparse}, 3, FedAvgOptions{
		Rounds: 20, Local: SGDOptions{Epochs: 5, LearningRate: 0.03, L2: 1e-4}})
	if err != nil {
		t.Fatal(err)
	}
	lMSE, gMSE := local.MSE(test), global.MSE(test)
	if gMSE >= lMSE {
		t.Fatalf("FL did not help sparse client: federated %v vs local %v", gMSE, lMSE)
	}
}

func TestFedAvgValidation(t *testing.T) {
	if _, err := FedAvg(nil, 2, DefaultFedAvgOptions()); err == nil {
		t.Fatal("no clients accepted")
	}
	c := Client{Name: "c", Data: &Dataset{X: [][]float64{{1}}, Y: []float64{1}}}
	if _, err := FedAvg([]Client{c}, 2, DefaultFedAvgOptions()); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := FedAvg([]Client{c}, 1, FedAvgOptions{Rounds: 0}); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestTrimmedMeanFedAvgResistsPoisoning(t *testing.T) {
	// Five honest clients share the same physics; one adversarial client
	// claims a huge dataset whose labels are inverted and scaled — a model
	// replacement attack. Plain sample-weighted FedAvg is dragged far off;
	// the coordinate-wise trimmed mean discards the outlier per coordinate
	// and stays close to the honest function.
	rng := sim.NewRNG(7)
	truth := func(x []float64) float64 { return 2*x[0] + x[1] - 1 }
	mk := func(name string, n int, f func([]float64) float64) Client {
		d := &Dataset{}
		for i := 0; i < n; i++ {
			x := []float64{rng.Float64(), rng.Float64()}
			d.X = append(d.X, x)
			d.Y = append(d.Y, f(x))
		}
		return Client{Name: name, Data: d}
	}
	var clients []Client
	for i := 0; i < 5; i++ {
		clients = append(clients, mk(fmt.Sprintf("honest-%d", i), 80, truth))
	}
	poison := func(x []float64) float64 { return -40 * truth(x) }
	clients = append(clients, mk("adversary", 2000, poison))
	test := mk("test", 200, truth).Data

	opts := DefaultFedAvgOptions()
	plain, err := FedAvg(clients, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.TrimFraction = 0.2 // ceil(0.2*6)=2 trimmed per end, 2 kept
	robust, err := FedAvg(clients, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	pMSE, rMSE := plain.MSE(test), robust.MSE(test)
	if rMSE > 0.05 {
		t.Fatalf("trimmed-mean model still poisoned: MSE %v", rMSE)
	}
	if pMSE < 10*rMSE {
		t.Fatalf("attack too weak to discriminate: plain %v vs robust %v", pMSE, rMSE)
	}
}

func TestTrimmedMeanEqualsPlainMeanWithoutOutliers(t *testing.T) {
	vals := []float64{3, 1, 2, 5, 4}
	if got := trimmedMean(vals, 0); math.Abs(got-3) > 1e-12 {
		t.Fatalf("untrimmed mean = %v", got)
	}
	vals2 := []float64{100, 1, 2, 3, -50}
	if got := trimmedMean(vals2, 1); math.Abs(got-2) > 1e-12 {
		t.Fatalf("trimmed mean = %v", got)
	}
}

func TestFedAvgTrimValidation(t *testing.T) {
	c := Client{Name: "c", Data: &Dataset{X: [][]float64{{1}}, Y: []float64{1}}}
	opts := DefaultFedAvgOptions()
	opts.TrimFraction = 0.5
	if _, err := FedAvg([]Client{c}, 1, opts); err == nil {
		t.Fatal("trim fraction 0.5 accepted")
	}
	opts.TrimFraction = 0.4 // ceil(0.4*2)=1 per end leaves zero of two
	if _, err := FedAvg([]Client{c, c}, 1, opts); err == nil {
		t.Fatal("over-trimming accepted")
	}
}

func TestPredictRobustToShortFeatures(t *testing.T) {
	m := &Model{W: []float64{1, 2, 3}, B: 1}
	if got := m.Predict([]float64{1}); got != 2 {
		t.Fatalf("short predict = %v", got)
	}
}

func TestMSEEmptyDataset(t *testing.T) {
	if NewModel(1).MSE(&Dataset{}) != 0 {
		t.Fatal("empty MSE")
	}
}

func TestSyntheticWorkloadShape(t *testing.T) {
	rng := sim.NewRNG(5)
	samples := SyntheticWorkload(rng, 50, 5, 10, 8, 3, 0)
	if len(samples) != 50 {
		t.Fatal("count")
	}
	for _, s := range samples {
		if s.ClockScale < 0.4 || s.ClockScale > 1 {
			t.Fatalf("clock scale %v", s.ClockScale)
		}
		if s.LatencyMs <= 0 {
			t.Fatalf("latency %v", s.LatencyMs)
		}
	}
	d := SamplesToDataset(samples)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.X[0]) != 3 {
		t.Fatal("feature dim")
	}
}

func TestFedAvgWeightsBySampleCountProperty(t *testing.T) {
	// With one client, FedAvg equals local training from zero for the
	// same total epochs schedule (rounds × local epochs, weights reset
	// each round is the same as continuing since averaging over one
	// client is identity).
	if err := quick.Check(func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		d := &Dataset{}
		for i := 0; i < 40; i++ {
			x := []float64{rng.Float64()}
			d.X = append(d.X, x)
			d.Y = append(d.Y, 2*x[0])
		}
		opts := FedAvgOptions{Rounds: 4, Local: SGDOptions{Epochs: 5, LearningRate: 0.05}}
		g, err := FedAvg([]Client{{Name: "solo", Data: d}}, 1, opts)
		if err != nil {
			return false
		}
		l := NewModel(1)
		if err := l.TrainSGD(d, SGDOptions{Epochs: 20, LearningRate: 0.05}); err != nil {
			return false
		}
		return math.Abs(g.W[0]-l.W[0]) < 1e-9 && math.Abs(g.B-l.B) < 1e-9
	}, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
