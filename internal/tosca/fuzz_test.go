package tosca

import "testing"

// FuzzParseYAML checks the parser never panics and that any template it
// accepts renders back to a parseable document.
func FuzzParseYAML(f *testing.F) {
	f.Add("a: 1\nb:\n  - x\n  - y: 2\n")
	f.Add(sampleTemplate)
	f.Add("k: [1, {a: b}, \"q\"]\n")
	f.Add(": :\n- -\n")
	f.Fuzz(func(t *testing.T, src string) {
		v, err := ParseYAML(src)
		if err != nil {
			return
		}
		_ = v
		st, err := Parse(src)
		if err != nil {
			return
		}
		if _, err := Parse(st.Render()); err != nil {
			t.Fatalf("accepted template does not round-trip: %v", err)
		}
	})
}
