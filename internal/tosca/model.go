package tosca

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The MYRTUS TOSCA profile: node and policy types the DPE emits and the
// MIRTO agents understand.
const (
	// TypeContainer is a software container workload.
	TypeContainer = "myrtus.nodes.Container"
	// TypeAcceleratedKernel is a workload with an FPGA/CGRA-accelerable
	// kernel; its properties carry the kernel name.
	TypeAcceleratedKernel = "myrtus.nodes.AcceleratedKernel"
	// TypeDataStore is a stateful storage workload.
	TypeDataStore = "myrtus.nodes.DataStore"

	// PolicyPlacement constrains target layers/labels.
	PolicyPlacement = "myrtus.policies.Placement"
	// PolicySecurity demands a minimum Table II level.
	PolicySecurity = "myrtus.policies.Security"
	// PolicyLatency bounds end-to-end latency (ms) between two nodes.
	PolicyLatency = "myrtus.policies.Latency"
	// PolicyEnergy asks the orchestrator to minimize energy for targets.
	PolicyEnergy = "myrtus.policies.Energy"
)

// NodeTemplate is one workload component of a service template.
type NodeTemplate struct {
	Name       string
	Type       string
	Properties map[string]any
	// Requirements are dependency edges to other node templates
	// (data flows from the requirement target to this node).
	Requirements []Requirement
}

// Requirement names a dependency on another node template.
type Requirement struct {
	Name   string // e.g. "source", "storage"
	Target string // node template name
}

// Policy attaches non-functional requirements to target nodes.
type Policy struct {
	Name       string
	Type       string
	Targets    []string
	Properties map[string]any
}

// ServiceTemplate is the topology_template of a TOSCA document.
type ServiceTemplate struct {
	Name        string
	Description string
	Version     string
	// Tenant is the owning stakeholder of this application (metadata
	// "tenant"). On a shared continuum the orchestrator charges the app's
	// resource usage, admission budget, and dispatch share to this tenant;
	// empty means the implicit single-tenant default.
	Tenant   string
	Nodes    map[string]*NodeTemplate
	Policies []Policy

	// policyIdx memoizes PoliciesFor per node. Planning resolves
	// policies for every stage on every (re)plan, so the naive
	// policies×targets scan turns quadratic on wide templates; the index
	// is built once on first use, after which the template's policies
	// are treated as immutable (they are — templates are parsed, then
	// only read).
	policyOnce sync.Once
	policyIdx  map[string][]Policy
	policyAll  []Policy // policies with no explicit target: apply to all
}

// PropFloat reads a numeric property with a default.
func (n *NodeTemplate) PropFloat(key string, def float64) float64 {
	switch v := n.Properties[key].(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	default:
		return def
	}
}

// PropString reads a string property with a default.
func (n *NodeTemplate) PropString(key, def string) string {
	if v, ok := n.Properties[key].(string); ok {
		return v
	}
	return def
}

// PropBool reads a boolean property with a default; numeric values are
// truthy when nonzero (YAML authors write both "stateful: true" and
// "stateful: 1").
func (n *NodeTemplate) PropBool(key string, def bool) bool {
	switch v := n.Properties[key].(type) {
	case bool:
		return v
	case int64:
		return v != 0
	case float64:
		return v != 0
	default:
		return def
	}
}

// PropInt reads an integer property with a default.
func (n *NodeTemplate) PropInt(key string, def int) int {
	switch v := n.Properties[key].(type) {
	case int64:
		return int(v)
	case float64:
		return int(v)
	default:
		return def
	}
}

// NodeNames returns template names, sorted.
func (t *ServiceTemplate) NodeNames() []string {
	out := make([]string, 0, len(t.Nodes))
	for n := range t.Nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// PoliciesFor returns the policies targeting the named node (or with no
// explicit target, which apply to all). The first call indexes the
// policy list by target; callers must not mutate t.Policies afterwards.
func (t *ServiceTemplate) PoliciesFor(node string) []Policy {
	t.policyOnce.Do(func() {
		t.policyIdx = make(map[string][]Policy, len(t.Nodes))
		for _, p := range t.Policies {
			if len(p.Targets) == 0 {
				t.policyAll = append(t.policyAll, p)
				continue
			}
			for _, tg := range p.Targets {
				t.policyIdx[tg] = append(t.policyIdx[tg], p)
			}
		}
	})
	targeted := t.policyIdx[node]
	if len(t.policyAll) == 0 {
		return targeted
	}
	if len(targeted) == 0 {
		return t.policyAll
	}
	// Both targeted and catch-all policies exist (rare): fall back to
	// the order-preserving scan so the result interleaves exactly as the
	// policy list declares.
	var out []Policy
	for _, p := range t.Policies {
		if len(p.Targets) == 0 {
			out = append(out, p)
			continue
		}
		for _, tg := range p.Targets {
			if tg == node {
				out = append(out, p)
				break
			}
		}
	}
	return out
}

// SecurityLevelFor resolves the strongest security requirement on node.
func (t *ServiceTemplate) SecurityLevelFor(node string) string {
	best := ""
	rank := map[string]int{"low": 1, "medium": 2, "high": 3}
	for _, p := range t.PoliciesFor(node) {
		if p.Type != PolicySecurity {
			continue
		}
		if lvl, ok := p.Properties["level"].(string); ok && rank[lvl] > rank[best] {
			best = lvl
		}
	}
	return best
}

// Parse decodes a TOSCA YAML document into a ServiceTemplate.
func Parse(src string) (*ServiceTemplate, error) {
	root, err := ParseYAML(src)
	if err != nil {
		return nil, err
	}
	doc, ok := root.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("tosca: document is not a mapping")
	}
	version, _ := doc["tosca_definitions_version"].(string)
	if version == "" {
		return nil, fmt.Errorf("tosca: missing tosca_definitions_version")
	}
	tt, ok := doc["topology_template"].(map[string]any)
	if !ok {
		return nil, fmt.Errorf("tosca: missing topology_template")
	}
	st := &ServiceTemplate{
		Version: version,
		Nodes:   map[string]*NodeTemplate{},
	}
	if md, ok := doc["metadata"].(map[string]any); ok {
		if n, ok := md["template_name"].(string); ok {
			st.Name = n
		}
		if tn, ok := md["tenant"].(string); ok {
			st.Tenant = tn
		}
	}
	if d, ok := doc["description"].(string); ok {
		st.Description = d
	}
	nts, ok := tt["node_templates"].(map[string]any)
	if !ok || len(nts) == 0 {
		return nil, fmt.Errorf("tosca: topology_template has no node_templates")
	}
	for name, raw := range nts {
		nm, ok := raw.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("tosca: node template %q is not a mapping", name)
		}
		nt := &NodeTemplate{Name: name, Properties: map[string]any{}}
		nt.Type, _ = nm["type"].(string)
		if props, ok := nm["properties"].(map[string]any); ok {
			nt.Properties = props
		}
		if reqs, ok := nm["requirements"].([]any); ok {
			for _, r := range reqs {
				rm, ok := r.(map[string]any)
				if !ok {
					return nil, fmt.Errorf("tosca: node %q requirement is not a mapping", name)
				}
				for rname, rv := range rm {
					switch target := rv.(type) {
					case string:
						nt.Requirements = append(nt.Requirements, Requirement{Name: rname, Target: target})
					case map[string]any:
						tgt, _ := target["node"].(string)
						nt.Requirements = append(nt.Requirements, Requirement{Name: rname, Target: tgt})
					default:
						return nil, fmt.Errorf("tosca: node %q requirement %q malformed", name, rname)
					}
				}
			}
		}
		sort.Slice(nt.Requirements, func(i, j int) bool { return nt.Requirements[i].Name < nt.Requirements[j].Name })
		st.Nodes[name] = nt
	}
	if pols, ok := tt["policies"].([]any); ok {
		for _, p := range pols {
			pm, ok := p.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("tosca: policy is not a mapping")
			}
			for pname, pv := range pm {
				body, ok := pv.(map[string]any)
				if !ok {
					return nil, fmt.Errorf("tosca: policy %q malformed", pname)
				}
				pol := Policy{Name: pname, Properties: map[string]any{}}
				pol.Type, _ = body["type"].(string)
				if props, ok := body["properties"].(map[string]any); ok {
					pol.Properties = props
				}
				if tgts, ok := body["targets"].([]any); ok {
					for _, tg := range tgts {
						if s, ok := tg.(string); ok {
							pol.Targets = append(pol.Targets, s)
						}
					}
				}
				st.Policies = append(st.Policies, pol)
			}
		}
		sort.Slice(st.Policies, func(i, j int) bool { return st.Policies[i].Name < st.Policies[j].Name })
	}
	return st, nil
}

// Render serializes the template back to TOSCA YAML (round-trippable by
// Parse); this is what the DPE writes into the CSAR.
func (t *ServiceTemplate) Render() string {
	var b strings.Builder
	b.WriteString("tosca_definitions_version: " + t.Version + "\n")
	if t.Name != "" || t.Tenant != "" {
		b.WriteString("metadata:\n")
		if t.Name != "" {
			b.WriteString("  template_name: " + t.Name + "\n")
		}
		if t.Tenant != "" {
			b.WriteString("  tenant: " + t.Tenant + "\n")
		}
	}
	if t.Description != "" {
		fmt.Fprintf(&b, "description: %q\n", t.Description)
	}
	b.WriteString("topology_template:\n  node_templates:\n")
	for _, name := range t.NodeNames() {
		n := t.Nodes[name]
		fmt.Fprintf(&b, "    %s:\n      type: %s\n", name, n.Type)
		if len(n.Properties) > 0 {
			b.WriteString("      properties:\n")
			var keys []string
			for k := range n.Properties {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Fprintf(&b, "        %s: %s\n", k, renderScalar(n.Properties[k]))
			}
		}
		if len(n.Requirements) > 0 {
			b.WriteString("      requirements:\n")
			for _, r := range n.Requirements {
				fmt.Fprintf(&b, "        - %s: %s\n", r.Name, r.Target)
			}
		}
	}
	if len(t.Policies) > 0 {
		b.WriteString("  policies:\n")
		for _, p := range t.Policies {
			fmt.Fprintf(&b, "    - %s:\n        type: %s\n", p.Name, p.Type)
			if len(p.Targets) > 0 {
				fmt.Fprintf(&b, "        targets: [%s]\n", strings.Join(p.Targets, ", "))
			}
			if len(p.Properties) > 0 {
				b.WriteString("        properties:\n")
				var keys []string
				for k := range p.Properties {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(&b, "          %s: %s\n", k, renderScalar(p.Properties[k]))
				}
			}
		}
	}
	return b.String()
}

func renderScalar(v any) string {
	switch x := v.(type) {
	case string:
		return fmt.Sprintf("%q", x)
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%v", x)
	}
}
