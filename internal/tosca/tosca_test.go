package tosca

import (
	"strings"
	"testing"
	"testing/quick"
)

const sampleTemplate = `
tosca_definitions_version: tosca_2_0
metadata:
  template_name: smart-mobility
description: "camera pipeline across the continuum"
topology_template:
  node_templates:
    camera-feed:
      type: myrtus.nodes.Container
      properties:
        cpu: 0.5
        memoryMB: 256
        replicas: 2
    detector:
      type: myrtus.nodes.AcceleratedKernel
      properties:
        cpu: 1.0
        memoryMB: 1024
        kernel: conv2d
      requirements:
        - source: camera-feed
    aggregator:
      type: myrtus.nodes.Container
      properties:
        cpu: 2
        memoryMB: 4096
      requirements:
        - source: detector
    history:
      type: myrtus.nodes.DataStore
      properties:
        cpu: 1
        memoryMB: 8192
      requirements:
        - source: aggregator
  policies:
    - secure-detector:
        type: myrtus.policies.Security
        targets: [detector, aggregator]
        properties:
          level: medium
    - low-latency:
        type: myrtus.policies.Latency
        targets: [camera-feed, detector]
        properties:
          maxMs: 50
    - edge-camera:
        type: myrtus.policies.Placement
        targets: [camera-feed]
        properties:
          layer: edge
`

func TestParseYAMLScalars(t *testing.T) {
	v, err := ParseYAML("a: 1\nb: 2.5\nc: hello\nd: true\ne: null\nf: \"quoted: str\"\n")
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	if m["a"] != int64(1) || m["b"] != 2.5 || m["c"] != "hello" || m["d"] != true || m["e"] != nil {
		t.Fatalf("scalars = %#v", m)
	}
	if m["f"] != "quoted: str" {
		t.Fatalf("quoted = %#v", m["f"])
	}
}

func TestParseYAMLNesting(t *testing.T) {
	src := `
top:
  mid:
    leaf: 42
  list:
    - one
    - two
flow: [1, 2, 3]
fmap: {x: 1, y: "z"}
`
	v, err := ParseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	mid := m["top"].(map[string]any)["mid"].(map[string]any)
	if mid["leaf"] != int64(42) {
		t.Fatalf("leaf = %v", mid["leaf"])
	}
	list := m["top"].(map[string]any)["list"].([]any)
	if len(list) != 2 || list[0] != "one" {
		t.Fatalf("list = %v", list)
	}
	flow := m["flow"].([]any)
	if len(flow) != 3 || flow[2] != int64(3) {
		t.Fatalf("flow = %v", flow)
	}
	fmap := m["fmap"].(map[string]any)
	if fmap["x"] != int64(1) || fmap["y"] != "z" {
		t.Fatalf("fmap = %v", fmap)
	}
}

func TestParseYAMLListOfMappings(t *testing.T) {
	src := `
items:
  - name: a
    value: 1
  - name: b
    value: 2
`
	v, err := ParseYAML(src)
	if err != nil {
		t.Fatal(err)
	}
	items := v.(map[string]any)["items"].([]any)
	if len(items) != 2 {
		t.Fatalf("items = %v", items)
	}
	first := items[0].(map[string]any)
	if first["name"] != "a" || first["value"] != int64(1) {
		t.Fatalf("first = %v", first)
	}
}

func TestParseYAMLComments(t *testing.T) {
	v, err := ParseYAML("# header\na: 1 # trailing\nb: \"has # inside\"\n")
	if err != nil {
		t.Fatal(err)
	}
	m := v.(map[string]any)
	if m["a"] != int64(1) || m["b"] != "has # inside" {
		t.Fatalf("m = %#v", m)
	}
}

func TestParseYAMLErrors(t *testing.T) {
	for _, src := range []string{
		"a: 1\n\tb: 2",   // tab
		"a: 1\na: 2",     // duplicate key
		"key\nother: 1",  // not key: value
		"a: 1\n  b: 2\n", // bad indent under scalar... actually a:1 consumes; "  b: 2" deeper
	} {
		if _, err := ParseYAML(src); err == nil {
			t.Fatalf("accepted %q", src)
		}
	}
	if v, err := ParseYAML("   \n# only comments\n"); err != nil || v != nil {
		t.Fatalf("empty doc = %v %v", v, err)
	}
}

func TestParseServiceTemplate(t *testing.T) {
	st, err := Parse(sampleTemplate)
	if err != nil {
		t.Fatal(err)
	}
	if st.Name != "smart-mobility" || st.Version != "tosca_2_0" {
		t.Fatalf("meta = %q %q", st.Name, st.Version)
	}
	if len(st.Nodes) != 4 {
		t.Fatalf("nodes = %v", st.NodeNames())
	}
	det := st.Nodes["detector"]
	if det.Type != TypeAcceleratedKernel || det.PropString("kernel", "") != "conv2d" {
		t.Fatalf("detector = %+v", det)
	}
	if det.PropFloat("cpu", 0) != 1.0 || det.PropFloat("memoryMB", 0) != 1024 {
		t.Fatalf("detector resources wrong")
	}
	if len(det.Requirements) != 1 || det.Requirements[0].Target != "camera-feed" {
		t.Fatalf("detector reqs = %v", det.Requirements)
	}
	if st.Nodes["camera-feed"].PropInt("replicas", 1) != 2 {
		t.Fatal("replicas")
	}
	if len(st.Policies) != 3 {
		t.Fatalf("policies = %v", st.Policies)
	}
	if lvl := st.SecurityLevelFor("detector"); lvl != "medium" {
		t.Fatalf("security level = %q", lvl)
	}
	if lvl := st.SecurityLevelFor("history"); lvl != "" {
		t.Fatalf("unconstrained level = %q", lvl)
	}
	pols := st.PoliciesFor("camera-feed")
	if len(pols) != 2 {
		t.Fatalf("camera policies = %v", pols)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"not: tosca",
		"tosca_definitions_version: tosca_2_0\n",
		"tosca_definitions_version: tosca_2_0\ntopology_template:\n  node_templates:\n",
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestValidateGood(t *testing.T) {
	st, _ := Parse(sampleTemplate)
	if err := Validate(st); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	st, _ := Parse(sampleTemplate)
	st.Nodes["detector"].Type = "bogus.Type"
	st.Nodes["detector"].Properties["cpu"] = int64(-1)
	st.Nodes["camera-feed"].Requirements = []Requirement{{Name: "x", Target: "ghost"}}
	st.Policies = append(st.Policies, Policy{
		Name: "bad-sec", Type: PolicySecurity, Targets: []string{"ghost2"},
		Properties: map[string]any{"level": "ultra"},
	})
	err := Validate(st)
	if err == nil {
		t.Fatal("invalid template accepted")
	}
	ve := err.(*ValidationError)
	if len(ve.Problems) < 5 {
		t.Fatalf("problems = %v", ve.Problems)
	}
	msg := err.Error()
	if !strings.Contains(msg, "problem") {
		t.Fatalf("error = %q", msg)
	}
}

func TestValidateCycle(t *testing.T) {
	st, _ := Parse(sampleTemplate)
	st.Nodes["camera-feed"].Requirements = []Requirement{{Name: "loop", Target: "history"}}
	err := Validate(st)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle undetected: %v", err)
	}
}

func TestValidateKernelRequired(t *testing.T) {
	st, _ := Parse(sampleTemplate)
	delete(st.Nodes["detector"].Properties, "kernel")
	err := Validate(st)
	if err == nil || !strings.Contains(err.Error(), "kernel") {
		t.Fatalf("missing kernel undetected: %v", err)
	}
}

func TestRenderRoundTrip(t *testing.T) {
	st, _ := Parse(sampleTemplate)
	rendered := st.Render()
	st2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, rendered)
	}
	if len(st2.Nodes) != len(st.Nodes) || len(st2.Policies) != len(st.Policies) {
		t.Fatalf("round trip lost content: %d/%d nodes, %d/%d policies",
			len(st2.Nodes), len(st.Nodes), len(st2.Policies), len(st.Policies))
	}
	if st2.SecurityLevelFor("detector") != "medium" {
		t.Fatal("policy semantics lost in round trip")
	}
	if st2.Nodes["detector"].PropString("kernel", "") != "conv2d" {
		t.Fatal("property lost in round trip")
	}
	if err := Validate(st2); err != nil {
		t.Fatal(err)
	}
}

func TestRenderRoundTripProperty(t *testing.T) {
	// Arbitrary cpu/mem values survive a render+parse cycle.
	if err := quick.Check(func(cpu, mem uint16) bool {
		st := &ServiceTemplate{
			Version: "tosca_2_0",
			Nodes: map[string]*NodeTemplate{
				"n": {Name: "n", Type: TypeContainer, Properties: map[string]any{
					"cpu":      float64(cpu%64) + 0.5,
					"memoryMB": int64(mem) + 1,
				}},
			},
		}
		st2, err := Parse(st.Render())
		if err != nil {
			return false
		}
		return st2.Nodes["n"].PropFloat("cpu", 0) == float64(cpu%64)+0.5 &&
			st2.Nodes["n"].PropFloat("memoryMB", 0) == float64(mem)+1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCSARRoundTrip(t *testing.T) {
	st, _ := Parse(sampleTemplate)
	c := NewCSAR(st)
	c.AddArtifact("artifacts/oppoints.json", []byte(`{"detector":["fast","eco"]}`))
	data, err := c.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := ReadCSAR(data)
	if err != nil {
		t.Fatal(err)
	}
	if c2.EntryTemplate != "definitions/service.yaml" {
		t.Fatalf("entry = %q", c2.EntryTemplate)
	}
	st2, err := c2.Template()
	if err != nil {
		t.Fatal(err)
	}
	if len(st2.Nodes) != 4 {
		t.Fatalf("csar template nodes = %d", len(st2.Nodes))
	}
	if string(c2.Files["artifacts/oppoints.json"]) != `{"detector":["fast","eco"]}` {
		t.Fatal("artifact lost")
	}
	if len(c2.Paths()) != 3 {
		t.Fatalf("paths = %v", c2.Paths())
	}
}

func TestReadCSARErrors(t *testing.T) {
	if _, err := ReadCSAR([]byte("not a zip")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Zip without metadata.
	st, _ := Parse(sampleTemplate)
	c := NewCSAR(st)
	delete(c.Files, "TOSCA-Metadata/TOSCA.meta")
	data, _ := c.Bytes()
	if _, err := ReadCSAR(data); err == nil {
		t.Fatal("metadata-less csar accepted")
	}
	// Metadata pointing to a missing entry.
	c2 := NewCSAR(st)
	delete(c2.Files, c2.EntryTemplate)
	data2, _ := c2.Bytes()
	if _, err := ReadCSAR(data2); err == nil {
		t.Fatal("dangling entry accepted")
	}
}

func TestCSARTemplateMissing(t *testing.T) {
	c := &CSAR{EntryTemplate: "nope", Files: map[string][]byte{}}
	if _, err := c.Template(); err == nil {
		t.Fatal("missing template accepted")
	}
}

const tenantTemplate = `
tosca_definitions_version: tosca_2_0
metadata:
  template_name: shared-app
  tenant: acme-mobility
topology_template:
  node_templates:
    worker:
      type: myrtus.nodes.Container
      properties: {cpu: 1, memoryMB: 256}
`

func TestParseTenantMetadata(t *testing.T) {
	st, err := Parse(tenantTemplate)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tenant != "acme-mobility" {
		t.Fatalf("tenant = %q", st.Tenant)
	}
	if err := Validate(st); err != nil {
		t.Fatal(err)
	}
	// Absent tenant metadata parses to the empty (single-tenant) default.
	st2, _ := Parse(sampleTemplate)
	if st2.Tenant != "" {
		t.Fatalf("implicit tenant = %q", st2.Tenant)
	}
}

func TestValidateTenantID(t *testing.T) {
	for _, ok := range []string{"a", "acme", "acme-1", "0tenant9"} {
		if !ValidTenantID(ok) {
			t.Fatalf("valid tenant ID %q rejected", ok)
		}
	}
	long := strings.Repeat("a", 64)
	for _, bad := range []string{"", "-acme", "acme-", "Acme", "ac_me", "a/b", long} {
		if ValidTenantID(bad) {
			t.Fatalf("invalid tenant ID %q accepted", bad)
		}
	}
	st, _ := Parse(tenantTemplate)
	st.Tenant = "Not-Valid-"
	if err := Validate(st); err == nil || !strings.Contains(err.Error(), "tenant") {
		t.Fatalf("bad tenant ID passed validation: %v", err)
	}
}

func TestRenderPreservesTenant(t *testing.T) {
	st, err := Parse(tenantTemplate)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Parse(st.Render())
	if err != nil {
		t.Fatal(err)
	}
	if st2.Tenant != st.Tenant {
		t.Fatalf("render round-trip lost tenant: %q != %q", st2.Tenant, st.Tenant)
	}
}
