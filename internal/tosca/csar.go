package tosca

import (
	"archive/zip"
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
)

// CSAR (Cloud Service ARchive) packaging: the zip format Modelio's TOSCA
// Designer exports. A MYRTUS CSAR carries the service template, the
// deployment metadata, and the design-time artifacts (operating points,
// bitstream manifests, threat countermeasures) the runtime consumes.

// CSAR is an in-memory archive.
type CSAR struct {
	// EntryTemplate is the path of the main service template.
	EntryTemplate string
	// Files maps archive paths to contents.
	Files map[string][]byte
}

// NewCSAR builds an archive around a service template.
func NewCSAR(t *ServiceTemplate) *CSAR {
	entry := "definitions/service.yaml"
	c := &CSAR{EntryTemplate: entry, Files: map[string][]byte{}}
	c.Files[entry] = []byte(t.Render())
	c.Files["TOSCA-Metadata/TOSCA.meta"] = []byte(
		"TOSCA-Meta-File-Version: 1.1\n" +
			"CSAR-Version: 1.1\n" +
			"Created-By: MYRTUS DPE\n" +
			"Entry-Definitions: " + entry + "\n")
	return c
}

// AddArtifact stores an extra file (metadata, bitstream manifest, …).
func (c *CSAR) AddArtifact(path string, data []byte) {
	c.Files[path] = append([]byte(nil), data...)
}

// Template parses and returns the entry service template.
func (c *CSAR) Template() (*ServiceTemplate, error) {
	data, ok := c.Files[c.EntryTemplate]
	if !ok {
		return nil, fmt.Errorf("tosca: csar missing entry template %q", c.EntryTemplate)
	}
	return Parse(string(data))
}

// Paths lists archive paths, sorted.
func (c *CSAR) Paths() []string {
	out := make([]string, 0, len(c.Files))
	for p := range c.Files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// WriteTo serializes the archive as a zip.
func (c *CSAR) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for _, path := range c.Paths() {
		f, err := zw.Create(path)
		if err != nil {
			return 0, err
		}
		if _, err := f.Write(c.Files[path]); err != nil {
			return 0, err
		}
	}
	if err := zw.Close(); err != nil {
		return 0, err
	}
	return buf.WriteTo(w)
}

// Bytes serializes the archive to a byte slice.
func (c *CSAR) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := c.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadCSAR parses a zip archive produced by WriteTo (or any
// TOSCA-compliant packager using TOSCA-Metadata/TOSCA.meta).
func ReadCSAR(data []byte) (*CSAR, error) {
	zr, err := zip.NewReader(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		return nil, fmt.Errorf("tosca: not a csar: %w", err)
	}
	c := &CSAR{Files: map[string][]byte{}}
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			return nil, err
		}
		content, err := io.ReadAll(rc)
		rc.Close() //nolint:errcheck
		if err != nil {
			return nil, err
		}
		c.Files[f.Name] = content
	}
	meta, ok := c.Files["TOSCA-Metadata/TOSCA.meta"]
	if !ok {
		return nil, fmt.Errorf("tosca: csar missing TOSCA-Metadata/TOSCA.meta")
	}
	for _, line := range strings.Split(string(meta), "\n") {
		if strings.HasPrefix(line, "Entry-Definitions:") {
			c.EntryTemplate = strings.TrimSpace(strings.TrimPrefix(line, "Entry-Definitions:"))
		}
	}
	if c.EntryTemplate == "" {
		return nil, fmt.Errorf("tosca: csar metadata missing Entry-Definitions")
	}
	if _, ok := c.Files[c.EntryTemplate]; !ok {
		return nil, fmt.Errorf("tosca: csar entry %q not in archive", c.EntryTemplate)
	}
	return c, nil
}
