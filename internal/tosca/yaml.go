// Package tosca implements the subset of the OASIS TOSCA standard MYRTUS
// uses as its orchestration lingua franca: a YAML-subset parser (TOSCA
// documents are YAML; the stdlib has no YAML, so we parse the subset
// TOSCA service templates need), the object model (service templates,
// node templates, requirements, policies), the validation processor that
// sits inside every MIRTO agent (Fig. 3), and CSAR packaging — the .csar
// archives Modelio's TOSCA Designer exports for deployment (§V).
package tosca

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseYAML parses a YAML-subset document into nested
// map[string]any / []any / scalar values.
//
// Supported: block mappings and sequences by indentation, inline scalars
// (string, int, float, bool, null), quoted strings, "- " list items
// (including inline "key: value" heads), comments, empty lines flow
// mappings/sequences like {a: 1} and [1, 2]. Not supported: anchors,
// multi-line block scalars, tabs for indentation.
func ParseYAML(src string) (any, error) {
	p := &yamlParser{}
	for _, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.Contains(line, "\t") {
			return nil, fmt.Errorf("tosca: yaml line %q uses tabs", raw)
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		p.lines = append(p.lines, yamlLine{indent: indent, text: strings.TrimSpace(line)})
	}
	if len(p.lines) == 0 {
		return nil, nil
	}
	v, next, err := p.parseBlock(0, p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if next != len(p.lines) {
		return nil, fmt.Errorf("tosca: yaml trailing content at line %d (%q)", next, p.lines[next].text)
	}
	return v, nil
}

type yamlLine struct {
	indent int
	text   string
}

type yamlParser struct {
	lines []yamlLine
}

// parseBlock parses the block starting at line i with the given indent,
// returning the value and the index of the first unconsumed line.
func (p *yamlParser) parseBlock(i, indent int) (any, int, error) {
	if i >= len(p.lines) {
		return nil, i, fmt.Errorf("tosca: yaml unexpected end of input")
	}
	if strings.HasPrefix(p.lines[i].text, "- ") || p.lines[i].text == "-" {
		return p.parseSequence(i, indent)
	}
	return p.parseMapping(i, indent)
}

func (p *yamlParser) parseSequence(i, indent int) (any, int, error) {
	var seq []any
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent != indent || (!strings.HasPrefix(ln.text, "- ") && ln.text != "-") {
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if rest == "" {
			// Nested block follows.
			if i+1 < len(p.lines) && p.lines[i+1].indent > indent {
				v, next, err := p.parseBlock(i+1, p.lines[i+1].indent)
				if err != nil {
					return nil, 0, err
				}
				seq = append(seq, v)
				i = next
				continue
			}
			seq = append(seq, nil)
			i++
			continue
		}
		if k, v, isMap := splitKeyValue(rest); isMap {
			// "- key: value" starts an inline mapping whose further keys
			// sit indented under the dash.
			m := map[string]any{}
			if v == "" {
				if i+1 < len(p.lines) && p.lines[i+1].indent > indent+2 {
					sub, next, err := p.parseBlock(i+1, p.lines[i+1].indent)
					if err != nil {
						return nil, 0, err
					}
					m[k] = sub
					i = next
				} else {
					m[k] = nil
					i++
				}
			} else {
				m[k] = scalar(v)
				i++
			}
			// Continuation keys of the same item.
			for i < len(p.lines) && p.lines[i].indent == indent+2 && !strings.HasPrefix(p.lines[i].text, "- ") {
				sub, next, err := p.parseMapping(i, indent+2)
				if err != nil {
					return nil, 0, err
				}
				for kk, vv := range sub.(map[string]any) {
					m[kk] = vv
				}
				i = next
			}
			seq = append(seq, m)
			continue
		}
		seq = append(seq, scalar(rest))
		i++
	}
	return seq, i, nil
}

func (p *yamlParser) parseMapping(i, indent int) (any, int, error) {
	m := map[string]any{}
	for i < len(p.lines) {
		ln := p.lines[i]
		if ln.indent != indent {
			if ln.indent > indent {
				return nil, 0, fmt.Errorf("tosca: yaml unexpected indent at %q", ln.text)
			}
			break
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			break
		}
		k, v, isMap := splitKeyValue(ln.text)
		if !isMap {
			return nil, 0, fmt.Errorf("tosca: yaml expected key: value, got %q", ln.text)
		}
		if _, dup := m[k]; dup {
			return nil, 0, fmt.Errorf("tosca: yaml duplicate key %q", k)
		}
		if v != "" {
			m[k] = scalar(v)
			i++
			continue
		}
		// Value is a nested block (or null).
		if i+1 < len(p.lines) && p.lines[i+1].indent > indent {
			sub, next, err := p.parseBlock(i+1, p.lines[i+1].indent)
			if err != nil {
				return nil, 0, err
			}
			m[k] = sub
			i = next
			continue
		}
		// Sequences may sit at the same indent as their key.
		if i+1 < len(p.lines) && p.lines[i+1].indent == indent &&
			(strings.HasPrefix(p.lines[i+1].text, "- ") || p.lines[i+1].text == "-") {
			sub, next, err := p.parseSequence(i+1, indent)
			if err != nil {
				return nil, 0, err
			}
			m[k] = sub
			i = next
			continue
		}
		m[k] = nil
		i++
	}
	return m, i, nil
}

// splitKeyValue splits "key: value" outside quotes. isMap is false when
// the line has no unquoted ": ".
func splitKeyValue(s string) (key, value string, isMap bool) {
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			continue
		}
		if c == '"' || c == '\'' {
			inQuote = c
			continue
		}
		if c == ':' {
			if i == len(s)-1 {
				return strings.TrimSpace(s[:i]), "", true
			}
			if s[i+1] == ' ' {
				return strings.TrimSpace(s[:i]), strings.TrimSpace(s[i+2:]), true
			}
		}
	}
	return "", "", false
}

func stripComment(s string) string {
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inQuote = c
		case '#':
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

// scalar interprets an inline YAML value.
func scalar(s string) any {
	if len(s) >= 2 {
		if (s[0] == '"' && s[len(s)-1] == '"') || (s[0] == '\'' && s[len(s)-1] == '\'') {
			return s[1 : len(s)-1]
		}
	}
	// Flow collections.
	if strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]") {
		inner := strings.TrimSpace(s[1 : len(s)-1])
		if inner == "" {
			return []any{}
		}
		var out []any
		for _, part := range splitFlow(inner) {
			out = append(out, scalar(strings.TrimSpace(part)))
		}
		return out
	}
	if strings.HasPrefix(s, "{") && strings.HasSuffix(s, "}") {
		inner := strings.TrimSpace(s[1 : len(s)-1])
		m := map[string]any{}
		if inner == "" {
			return m
		}
		for _, part := range splitFlow(inner) {
			kv := strings.SplitN(part, ":", 2)
			if len(kv) != 2 {
				return s // not valid flow mapping; treat as string
			}
			m[strings.TrimSpace(kv[0])] = scalar(strings.TrimSpace(kv[1]))
		}
		return m
	}
	switch s {
	case "null", "~":
		return nil
	case "true", "True":
		return true
	case "false", "False":
		return false
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return i
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f
	}
	return s
}

// splitFlow splits flow-collection content on top-level commas.
func splitFlow(s string) []string {
	var out []string
	depth := 0
	start := 0
	inQuote := byte(0)
	for i := 0; i < len(s); i++ {
		c := s[i]
		if inQuote != 0 {
			if c == inQuote {
				inQuote = 0
			}
			continue
		}
		switch c {
		case '"', '\'':
			inQuote = c
		case '[', '{':
			depth++
		case ']', '}':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}
