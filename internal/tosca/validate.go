package tosca

import (
	"fmt"
	"sort"
)

// The TOSCA Validation Processor of the MIRTO agent (Fig. 3): structural
// and semantic checks a deployment request must pass before reaching the
// MIRTO Manager.

var knownNodeTypes = map[string]bool{
	TypeContainer:         true,
	TypeAcceleratedKernel: true,
	TypeDataStore:         true,
}

var knownPolicyTypes = map[string]bool{
	PolicyPlacement: true,
	PolicySecurity:  true,
	PolicyLatency:   true,
	PolicyEnergy:    true,
}

var validSecurityLevels = map[string]bool{"low": true, "medium": true, "high": true}

// ValidationError aggregates all problems found in a template.
type ValidationError struct {
	Problems []string
}

func (e *ValidationError) Error() string {
	return fmt.Sprintf("tosca: template invalid: %d problem(s): %v", len(e.Problems), e.Problems)
}

// Validate runs the full validation pass. It returns nil or a
// *ValidationError listing every problem.
func Validate(t *ServiceTemplate) error {
	var problems []string
	add := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	if len(t.Nodes) == 0 {
		add("no node templates")
	}
	if t.Tenant != "" && !ValidTenantID(t.Tenant) {
		add("tenant %q is not a valid tenant ID (lowercase alphanumeric and '-', must start/end alphanumeric, max 63 chars)", t.Tenant)
	}
	for _, name := range t.NodeNames() {
		n := t.Nodes[name]
		if !knownNodeTypes[n.Type] {
			add("node %q has unknown type %q", name, n.Type)
		}
		if cpu := n.PropFloat("cpu", 0); cpu <= 0 {
			add("node %q needs positive cpu", name)
		}
		if mem := n.PropFloat("memoryMB", 0); mem <= 0 {
			add("node %q needs positive memoryMB", name)
		}
		if n.Type == TypeAcceleratedKernel && n.PropString("kernel", "") == "" {
			add("accelerated node %q missing kernel property", name)
		}
		if reps := n.PropInt("replicas", 1); reps < 1 {
			add("node %q has non-positive replicas", name)
		}
		// Stateful stages carry a state-size hint that sizes checkpoint
		// transfers; a declared hint without statefulness is a likely typo.
		if n.PropBool("stateful", false) {
			if mb := n.PropFloat("stateMB", 1); mb <= 0 {
				add("stateful node %q needs positive stateMB", name)
			}
		} else if _, has := n.Properties["stateMB"]; has {
			add("node %q declares stateMB without stateful: true", name)
		}
		for _, r := range n.Requirements {
			if r.Target == "" {
				add("node %q requirement %q has no target", name, r.Name)
			} else if _, ok := t.Nodes[r.Target]; !ok {
				add("node %q requirement %q targets unknown node %q", name, r.Name, r.Target)
			}
		}
	}
	// Dependency cycles.
	if cyc := findCycle(t); cyc != "" {
		add("requirement cycle through %s", cyc)
	}
	for _, p := range t.Policies {
		if !knownPolicyTypes[p.Type] {
			add("policy %q has unknown type %q", p.Name, p.Type)
		}
		for _, tg := range p.Targets {
			if _, ok := t.Nodes[tg]; !ok {
				add("policy %q targets unknown node %q", p.Name, tg)
			}
		}
		switch p.Type {
		case PolicySecurity:
			lvl, _ := p.Properties["level"].(string)
			if !validSecurityLevels[lvl] {
				add("policy %q has invalid security level %q", p.Name, lvl)
			}
		case PolicyLatency:
			if ms := propFloat(p.Properties, "maxMs"); ms <= 0 {
				add("policy %q needs positive maxMs", p.Name)
			}
		case PolicyPlacement:
			if _, ok := p.Properties["layer"].(string); !ok {
				if _, ok := p.Properties["labels"]; !ok {
					add("policy %q needs layer or labels", p.Name)
				}
			}
		}
	}
	if problems != nil {
		sort.Strings(problems)
		return &ValidationError{Problems: problems}
	}
	return nil
}

// ValidTenantID reports whether id is a well-formed tenant identifier:
// a DNS-label-shaped name (lowercase alphanumeric and '-', starting and
// ending alphanumeric, at most 63 characters) so tenant IDs can double as
// Kubernetes namespace names and KB key segments.
func ValidTenantID(id string) bool {
	if len(id) == 0 || len(id) > 63 {
		return false
	}
	alnum := func(c byte) bool {
		return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
	}
	if !alnum(id[0]) || !alnum(id[len(id)-1]) {
		return false
	}
	for i := 0; i < len(id); i++ {
		if !alnum(id[i]) && id[i] != '-' {
			return false
		}
	}
	return true
}

func propFloat(m map[string]any, key string) float64 {
	switch v := m[key].(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	default:
		return 0
	}
}

// findCycle returns the name of a node on a requirements cycle, or "".
func findCycle(t *ServiceTemplate) string {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(string) string
	visit = func(n string) string {
		color[n] = grey
		node := t.Nodes[n]
		if node != nil {
			for _, r := range node.Requirements {
				if _, ok := t.Nodes[r.Target]; !ok {
					continue
				}
				switch color[r.Target] {
				case grey:
					return r.Target
				case white:
					if c := visit(r.Target); c != "" {
						return c
					}
				}
			}
		}
		color[n] = black
		return ""
	}
	for _, n := range t.NodeNames() {
		if color[n] == white {
			if c := visit(n); c != "" {
				return c
			}
		}
	}
	return ""
}
