package mirto

import (
	"sort"
	"sync"

	"myrtus/internal/cluster"
	"myrtus/internal/device"
)

// candEntry is one device in a layer agent's candidate index. Static
// facts (compute rate, power, supported suites) are captured once from
// the device spec; the free-resource watermark is refreshed
// incrementally by cluster change events instead of per-negotiation
// full scans.
type candEntry struct {
	name  string
	dev   *device.Device
	ready bool
	// free is the node's free-resource watermark, maintained by
	// deploy/teardown/failure events.
	free cluster.Resources

	gopsPerCore  float64
	custom       map[string]float64 // kernel → custom-unit speedup
	hasFabric    bool
	powerPerCore float64
}

// candIndex indexes a layer's ready devices by security level so Offers
// answers negotiations from pre-bucketed, pre-sorted candidate lists.
// It builds lazily on the first negotiation and stays current through
// cluster NodeListener events; buckets are sorted by device name, which
// keeps offer order (and therefore plans) deterministic.
type candIndex struct {
	mu      sync.RWMutex
	built   bool
	entries map[string]*candEntry
	// bySec buckets entries by supported suite; key "" holds every
	// entry (negotiations without a security requirement).
	bySec map[string][]*candEntry
	// maxFreeCPU/maxFreeMem are upper bounds on any entry's free
	// resources (raised on updates, tightened on rebuild) so oversized
	// requests exit before touching a single candidate.
	maxFreeCPU, maxFreeMem float64
}

func newCandIndex() *candIndex {
	return &candIndex{
		entries: map[string]*candEntry{},
		bySec:   map[string][]*candEntry{},
	}
}

// onNodeChange is the cluster NodeListener: it refreshes exactly the
// touched device's entry. Before the first build there is nothing to
// maintain — the build scan will observe current state.
func (a *LayerAgent) onNodeChange(node string) {
	a.idx.mu.Lock()
	defer a.idx.mu.Unlock()
	if !a.idx.built {
		return
	}
	a.refreshLocked(node)
}

// refreshLocked re-reads one node from the cluster and updates its
// index entry (adding or removing it as needed).
func (a *LayerAgent) refreshLocked(node string) {
	n, ok := a.cl.Node(node)
	if !ok || n.Virtual {
		a.removeLocked(node)
		return
	}
	e := a.idx.entries[node]
	if e == nil {
		d := a.c.Devices[node]
		if d == nil {
			return // virtual or foreign node: never indexed
		}
		e = newEntry(node, d)
		a.idx.entries[node] = e
		a.insertLocked(e, n.SecurityLevels)
	}
	e.ready = n.Ready
	if free, ok := a.cl.FreeOn(node); ok {
		e.free = free
		if free.CPU > a.idx.maxFreeCPU {
			a.idx.maxFreeCPU = free.CPU
		}
		if free.MemMB > a.idx.maxFreeMem {
			a.idx.maxFreeMem = free.MemMB
		}
	}
}

func newEntry(name string, d *device.Device) *candEntry {
	spec := d.Spec()
	return &candEntry{
		name:         name,
		dev:          d,
		gopsPerCore:  spec.GOPSPerCore,
		custom:       spec.CustomUnits,
		hasFabric:    spec.Fabric != nil,
		powerPerCore: (spec.MaxPowerW - spec.IdlePowerW) / float64(spec.Cores),
	}
}

// insertLocked places an entry into the "" bucket and one bucket per
// supported suite, preserving name order.
func (a *LayerAgent) insertLocked(e *candEntry, levels []string) {
	keys := append([]string{""}, levels...)
	for _, k := range keys {
		b := a.idx.bySec[k]
		i := sort.Search(len(b), func(i int) bool { return b[i].name >= e.name })
		if i < len(b) && b[i].name == e.name {
			continue
		}
		b = append(b, nil)
		copy(b[i+1:], b[i:])
		b[i] = e
		a.idx.bySec[k] = b
	}
}

func (a *LayerAgent) removeLocked(node string) {
	if _, ok := a.idx.entries[node]; !ok {
		return
	}
	delete(a.idx.entries, node)
	for k, b := range a.idx.bySec {
		for i, e := range b {
			if e.name == node {
				a.idx.bySec[k] = append(b[:i], b[i+1:]...)
				break
			}
		}
	}
}

// buildLocked scans the cluster once and constructs the index.
func (a *LayerAgent) buildLocked() {
	a.idx.entries = map[string]*candEntry{}
	a.idx.bySec = map[string][]*candEntry{}
	a.idx.maxFreeCPU, a.idx.maxFreeMem = 0, 0
	freeAll := a.cl.FreeAll()
	for _, n := range a.cl.Nodes() { // sorted by name
		if n.Virtual {
			continue
		}
		d := a.c.Devices[n.Name]
		if d == nil {
			continue
		}
		e := newEntry(n.Name, d)
		e.ready = n.Ready
		e.free = freeAll[n.Name]
		a.idx.entries[n.Name] = e
		a.insertLocked(e, n.SecurityLevels)
		if e.free.CPU > a.idx.maxFreeCPU {
			a.idx.maxFreeCPU = e.free.CPU
		}
		if e.free.MemMB > a.idx.maxFreeMem {
			a.idx.maxFreeMem = e.free.MemMB
		}
	}
	a.idx.built = true
}
