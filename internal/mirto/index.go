package mirto

import (
	"sync"

	"myrtus/internal/cluster"
	"myrtus/internal/device"
)

// candEntry is one device in a layer agent's candidate index. Static
// facts (compute rate, power, supported suites) are captured once from
// the device spec; the free-resource watermark is refreshed
// incrementally by cluster change events instead of per-negotiation
// full scans.
type candEntry struct {
	name  string
	dev   *device.Device
	ready bool
	// cordoned marks a device being drained for live migration: it stays
	// ready (existing placements keep serving) but the planner must not
	// place anything new on it, and shard digests treat it as absent.
	cordoned bool
	// free is the node's free-resource watermark, maintained by
	// deploy/teardown/failure events.
	free cluster.Resources

	gopsPerCore float64
	custom      map[string]float64 // kernel → custom-unit speedup
	// maxCustom is the largest custom-unit speedup across kernels (≥1),
	// folded into shard digests as the entry's effective-rate ceiling.
	maxCustom    float64
	hasFabric    bool
	powerPerCore float64
	// secLevels mirrors the cluster node's supported suites — the same
	// list that chose this entry's security buckets — so a keep check
	// can test bucket membership without a per-bucket shard search.
	secLevels []string
}

// inBucket reports whether the entry belongs to the security bucket for
// level ("" is the catch-all bucket holding every entry).
func (e *candEntry) inBucket(level string) bool {
	if level == "" {
		return true
	}
	for _, k := range e.secLevels {
		if k == level {
			return true
		}
	}
	return false
}

// candIndex indexes a layer's ready devices by security level so Offers
// and the planner answer negotiations from pre-bucketed candidates. It
// builds lazily on the first negotiation and stays current through
// cluster NodeListener events.
//
// Each bucket is a list of shards — contiguous, name-ordered runs of
// ~shardTarget entries, each carrying a capacity digest (free-resource
// watermarks, effective-rate ceiling, ready count; see digest.go). The
// planner descends bucket → digest → entries, skipping whole shards
// whose digest proves no candidate can fit or win, and fans shards out
// to workers for large continua. Concatenating a bucket's shards yields
// the entries in device-name order, which keeps offer order (and
// therefore plans) deterministic and identical to the pre-shard index.
type candIndex struct {
	mu      sync.RWMutex
	built   bool
	entries map[string]*candEntry
	// bySec buckets shards by supported suite; key "" holds every entry
	// (negotiations without a security requirement).
	bySec map[string][]*candShard
	// cordoned is the authoritative drain set; it survives full rebuilds
	// (buildLocked re-applies it) and lazy first builds.
	cordoned map[string]bool
}

func newCandIndex() *candIndex {
	return &candIndex{
		entries:  map[string]*candEntry{},
		bySec:    map[string][]*candShard{},
		cordoned: map[string]bool{},
	}
}

// SetCordon marks (or clears) a device as cordoned in this layer's
// index: digests and entry filters exclude it, so new placements route
// around it while existing pods keep serving. A device the layer does
// not hold is recorded anyway — a later build or insert honors the set.
func (a *LayerAgent) SetCordon(device string, on bool) {
	a.idx.mu.Lock()
	defer a.idx.mu.Unlock()
	if on {
		a.idx.cordoned[device] = true
	} else {
		delete(a.idx.cordoned, device)
	}
	if e := a.idx.entries[device]; e != nil {
		e.cordoned = on
		a.refreshDigestsLocked(device)
	}
}

// rlockBuilt leaves the index read-locked with the build guaranteed to
// have run — the shared preamble of every negotiation or descent.
func (a *LayerAgent) rlockBuilt() {
	a.idx.mu.RLock()
	if a.idx.built {
		return
	}
	a.idx.mu.RUnlock()
	a.idx.mu.Lock()
	if !a.idx.built {
		a.buildLocked()
	}
	a.idx.mu.Unlock()
	a.idx.mu.RLock()
}

// onNodeChange is the cluster NodeListener: it refreshes exactly the
// touched device's entry and the digests of the shards holding it.
// Before the first build there is nothing to maintain — the build scan
// will observe current state.
func (a *LayerAgent) onNodeChange(node string) {
	a.idx.mu.Lock()
	defer a.idx.mu.Unlock()
	if !a.idx.built {
		return
	}
	a.refreshLocked(node)
}

// refreshLocked re-reads one node from the cluster and updates its
// index entry (adding or removing it as needed), then refreshes the
// digest of every shard the entry lives in — the zero-alloc fan-out
// that keeps capacity digests current with cluster events.
func (a *LayerAgent) refreshLocked(node string) {
	n, ok := a.cl.Node(node)
	if !ok || n.Virtual {
		a.removeLocked(node)
		return
	}
	e := a.idx.entries[node]
	if e == nil {
		d := a.c.Devices[node]
		if d == nil {
			return // virtual or foreign node: never indexed
		}
		e = newEntry(node, d)
		e.secLevels = n.SecurityLevels
		a.idx.entries[node] = e
		a.insertLocked(e, n.SecurityLevels)
	}
	e.ready = n.Ready
	e.cordoned = a.idx.cordoned[node]
	if free, ok := a.cl.FreeOn(node); ok {
		e.free = free
	}
	a.refreshDigestsLocked(node)
}

func newEntry(name string, d *device.Device) *candEntry {
	spec := d.Spec()
	maxCustom := 1.0
	for _, s := range spec.CustomUnits {
		if s > maxCustom {
			maxCustom = s
		}
	}
	return &candEntry{
		name:         name,
		dev:          d,
		gopsPerCore:  spec.GOPSPerCore,
		custom:       spec.CustomUnits,
		maxCustom:    maxCustom,
		hasFabric:    spec.Fabric != nil,
		powerPerCore: (spec.MaxPowerW - spec.IdlePowerW) / float64(spec.Cores),
	}
}

// insertLocked places an entry into the "" bucket and one bucket per
// supported suite, preserving name order and splitting oversized shards.
func (a *LayerAgent) insertLocked(e *candEntry, levels []string) {
	a.idx.bySec[""] = shardInsert(a.idx.bySec[""], e)
	for _, k := range levels {
		a.idx.bySec[k] = shardInsert(a.idx.bySec[k], e)
	}
}

func (a *LayerAgent) removeLocked(node string) {
	if _, ok := a.idx.entries[node]; !ok {
		return
	}
	delete(a.idx.entries, node)
	for k, b := range a.idx.bySec {
		a.idx.bySec[k] = shardRemove(b, node)
	}
}

// refreshDigestsLocked recomputes the digest of the shard holding node
// in every bucket. Buckets without the node are untouched (shardFind
// misses), so the cost is O(buckets × shardTarget) per event.
func (a *LayerAgent) refreshDigestsLocked(node string) {
	for _, b := range a.idx.bySec {
		if sh := shardFind(b, node); sh != nil {
			sh.refresh()
		}
	}
}

// buildLocked scans the cluster once and constructs the sharded index:
// entries are gathered in name order per bucket, chunked into shards,
// and each shard's digest computed — O(N log N) total, no per-entry
// sorted inserts.
func (a *LayerAgent) buildLocked() {
	a.idx.entries = map[string]*candEntry{}
	a.idx.bySec = map[string][]*candShard{}
	freeAll := a.cl.FreeAll()
	byKey := map[string][]*candEntry{}
	for _, n := range a.cl.Nodes() { // sorted by name
		if n.Virtual {
			continue
		}
		d := a.c.Devices[n.Name]
		if d == nil {
			continue
		}
		e := newEntry(n.Name, d)
		e.ready = n.Ready
		e.cordoned = a.idx.cordoned[n.Name]
		e.free = freeAll[n.Name]
		e.secLevels = n.SecurityLevels
		a.idx.entries[n.Name] = e
		byKey[""] = append(byKey[""], e)
		for _, k := range n.SecurityLevels {
			byKey[k] = append(byKey[k], e)
		}
	}
	for k, entries := range byKey {
		a.idx.bySec[k] = shardChunk(entries)
	}
	a.idx.built = true
}
