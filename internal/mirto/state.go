package mirto

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"

	"myrtus/internal/sim"
)

// This file implements the stateful-stage model: TOSCA stages declared
// "stateful: 1" carry a per-placement state cell — windowed counters and
// aggregates updated once per served request — plus a bounded dedup
// window (exactly-once across serve-path retries) and a bounded apply
// journal (replayed on restore after a failover). The cell's contents
// travel through a versioned binary codec: full checkpoints and delta
// records written into the raft-replicated KB by the Checkpointer
// (checkpoint.go) and read back on the MAPE-K restore path.

// stateWindows is the number of per-window aggregate buckets a cell
// retains; stateWindowLen is one bucket's span of virtual time.
const (
	stateWindows   = 8
	stateWindowLen = sim.Second
)

// DefaultStateBound is the default size of both the dedup window and the
// apply journal. The two bounds must satisfy dedup ≥ journal: every
// journal entry predating a checkpoint must still be visible in that
// checkpoint's dedup window, or restore replay could double-apply it.
const DefaultStateBound = 256

// JournalEntry is one applied request: the deterministic request ID, the
// batch size it carried, and the virtual time it was applied.
type JournalEntry struct {
	ReqID uint64
	Items int64
	At    sim.Time
}

// StageState is the logical state of one stateful stage placement:
// cumulative applied counters, an XOR fingerprint of applied request IDs
// (so two states with equal counts but different applied sets still
// differ), per-window apply buckets, and the bounded dedup window.
type StageState struct {
	Stage string
	// Count is the number of requests applied; Items the total batch items
	// folded in. Xor accumulates applied request IDs (order-independent).
	Count uint64
	Items int64
	Xor   uint64
	// LastApply is the virtual time of the newest apply.
	LastApply sim.Time
	// WindowBase indexes the newest bucket's window (LastApply /
	// stateWindowLen); Windows[i] counts applies in window WindowBase-i.
	WindowBase uint64
	Windows    [stateWindows]uint64
	// Dedup is the bounded window of the most recently applied request
	// IDs, oldest first.
	Dedup []uint64
}

// apply folds one request into the state. The caller has already
// performed dedup.
func (s *StageState) apply(reqID uint64, items int64, at sim.Time, bound int) {
	s.Count++
	s.Items += items
	s.Xor ^= reqID
	if at > s.LastApply {
		s.LastApply = at
	}
	w := uint64(at / stateWindowLen)
	if w > s.WindowBase {
		shift := w - s.WindowBase
		if shift >= stateWindows {
			s.Windows = [stateWindows]uint64{}
		} else {
			copy(s.Windows[shift:], s.Windows[:stateWindows-shift])
			for i := uint64(0); i < shift; i++ {
				s.Windows[i] = 0
			}
		}
		s.WindowBase = w
	}
	if idx := s.WindowBase - w; idx < stateWindows {
		s.Windows[idx]++
	}
	s.Dedup = append(s.Dedup, reqID)
	if len(s.Dedup) > bound {
		s.Dedup = s.Dedup[len(s.Dedup)-bound:]
	}
}

// seen reports whether reqID is inside the dedup window.
func (s *StageState) seen(reqID uint64) bool {
	for _, id := range s.Dedup {
		if id == reqID {
			return true
		}
	}
	return false
}

// Fingerprint renders the logical content of the state — applied count,
// item sum, and the request-ID XOR — as canonical bytes. This is the
// unit of the chaos divergence check: timing-indexed fields (windows,
// LastApply) are excluded by construction, because a recovered run
// applies the same requests at later virtual times than a fault-free
// one.
func (s *StageState) Fingerprint() []byte {
	b := make([]byte, 24)
	binary.BigEndian.PutUint64(b[0:], s.Count)
	binary.BigEndian.PutUint64(b[8:], uint64(s.Items))
	binary.BigEndian.PutUint64(b[16:], s.Xor)
	return b
}

// Codec wire constants. Full images and delta records carry distinct
// magics so a reader can never confuse the two; both end in a CRC-32 of
// everything before it.
const (
	stateMagicFull  = "MYSF"
	stateMagicDelta = "MYSD"
	stateCodecV1    = 1
	// maxCodecList bounds decoded list lengths so corrupt input cannot
	// trigger huge allocations.
	maxCodecList = 1 << 16
)

// EncodeState renders a full checkpoint image of the state.
func EncodeState(s *StageState) []byte {
	b := make([]byte, 0, 64+8*len(s.Dedup))
	b = append(b, stateMagicFull...)
	b = append(b, stateCodecV1)
	b = appendString(b, s.Stage)
	b = appendU64(b, s.Count)
	b = appendU64(b, uint64(s.Items))
	b = appendU64(b, s.Xor)
	b = appendU64(b, uint64(s.LastApply))
	b = appendU64(b, s.WindowBase)
	for _, w := range s.Windows {
		b = appendU64(b, w)
	}
	b = appendU32(b, uint32(len(s.Dedup)))
	for _, id := range s.Dedup {
		b = appendU64(b, id)
	}
	return appendCRC(b)
}

// DecodeState parses a full checkpoint image, rejecting anything with a
// bad magic, version, length, list bound, or checksum.
func DecodeState(data []byte) (*StageState, error) {
	r, err := openRecord(data, stateMagicFull)
	if err != nil {
		return nil, err
	}
	s := &StageState{}
	if s.Stage, err = r.str(); err != nil {
		return nil, err
	}
	var u uint64
	if s.Count, err = r.u64(); err != nil {
		return nil, err
	}
	if u, err = r.u64(); err != nil {
		return nil, err
	}
	s.Items = int64(u)
	if s.Xor, err = r.u64(); err != nil {
		return nil, err
	}
	if u, err = r.u64(); err != nil {
		return nil, err
	}
	s.LastApply = sim.Time(u)
	if s.WindowBase, err = r.u64(); err != nil {
		return nil, err
	}
	for i := range s.Windows {
		if s.Windows[i], err = r.u64(); err != nil {
			return nil, err
		}
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > maxCodecList {
		return nil, fmt.Errorf("mirto: state dedup window %d exceeds bound", n)
	}
	for i := uint32(0); i < n; i++ {
		id, err := r.u64()
		if err != nil {
			return nil, err
		}
		s.Dedup = append(s.Dedup, id)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// StateDelta is the incremental checkpoint record: the applies made
// since the base full image (whose Count it names).
type StateDelta struct {
	Stage     string
	BaseCount uint64
	Entries   []JournalEntry
}

// EncodeDelta renders a delta record.
func EncodeDelta(d *StateDelta) []byte {
	b := make([]byte, 0, 32+24*len(d.Entries))
	b = append(b, stateMagicDelta...)
	b = append(b, stateCodecV1)
	b = appendString(b, d.Stage)
	b = appendU64(b, d.BaseCount)
	b = appendU32(b, uint32(len(d.Entries)))
	for _, e := range d.Entries {
		b = appendU64(b, e.ReqID)
		b = appendU64(b, uint64(e.Items))
		b = appendU64(b, uint64(e.At))
	}
	return appendCRC(b)
}

// DecodeDelta parses a delta record with the same rejection rules as
// DecodeState.
func DecodeDelta(data []byte) (*StateDelta, error) {
	r, err := openRecord(data, stateMagicDelta)
	if err != nil {
		return nil, err
	}
	d := &StateDelta{}
	if d.Stage, err = r.str(); err != nil {
		return nil, err
	}
	if d.BaseCount, err = r.u64(); err != nil {
		return nil, err
	}
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	if n > maxCodecList {
		return nil, fmt.Errorf("mirto: delta entry count %d exceeds bound", n)
	}
	for i := uint32(0); i < n; i++ {
		var e JournalEntry
		var u uint64
		if e.ReqID, err = r.u64(); err != nil {
			return nil, err
		}
		if u, err = r.u64(); err != nil {
			return nil, err
		}
		e.Items = int64(u)
		if u, err = r.u64(); err != nil {
			return nil, err
		}
		e.At = sim.Time(u)
		d.Entries = append(d.Entries, e)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return d, nil
}

func appendU64(b []byte, v uint64) []byte {
	var t [8]byte
	binary.BigEndian.PutUint64(t[:], v)
	return append(b, t[:]...)
}

func appendU32(b []byte, v uint32) []byte {
	var t [4]byte
	binary.BigEndian.PutUint32(t[:], v)
	return append(b, t[:]...)
}

func appendString(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendCRC(b []byte) []byte {
	return appendU32(b, crc32.ChecksumIEEE(b))
}

// recReader walks an encoded record after its envelope has been checked.
type recReader struct {
	b   []byte
	pos int
}

// openRecord validates magic, version, and trailing CRC, returning a
// reader positioned after the version byte and bounded before the CRC.
func openRecord(data []byte, magic string) (*recReader, error) {
	if len(data) < len(magic)+1+4 {
		return nil, fmt.Errorf("mirto: state record truncated (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("mirto: bad state record magic %q", data[:len(magic)])
	}
	if v := data[len(magic)]; v != stateCodecV1 {
		return nil, fmt.Errorf("mirto: unsupported state codec version %d", v)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(tail) {
		return nil, fmt.Errorf("mirto: state record checksum mismatch")
	}
	return &recReader{b: body, pos: len(magic) + 1}, nil
}

func (r *recReader) u64() (uint64, error) {
	if r.pos+8 > len(r.b) {
		return 0, fmt.Errorf("mirto: state record truncated at offset %d", r.pos)
	}
	v := binary.BigEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *recReader) u32() (uint32, error) {
	if r.pos+4 > len(r.b) {
		return 0, fmt.Errorf("mirto: state record truncated at offset %d", r.pos)
	}
	v := binary.BigEndian.Uint32(r.b[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *recReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if n > maxCodecList || r.pos+int(n) > len(r.b) {
		return "", fmt.Errorf("mirto: state record string length %d out of bounds", n)
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// done rejects trailing garbage between the last field and the CRC.
func (r *recReader) done() error {
	if r.pos != len(r.b) {
		return fmt.Errorf("mirto: state record has %d trailing bytes", len(r.b)-r.pos)
	}
	return nil
}

// stateCell is one stage's live state plus its recovery bookkeeping.
type stateCell struct {
	app, stage string
	owner      string // device currently holding the state in memory
	state      StageState
	// lost marks the in-memory copy destroyed (owner crashed); applies are
	// journaled but not folded until a restore (or, without checkpointing,
	// a fresh zero state re-owned by the next placement) completes.
	lost      bool
	lostAt    sim.Time
	lostCount uint64
	restoring bool

	// journal is the bounded ring of recent applies (control-plane side:
	// it survives device crashes the way the ingress' request log would).
	journal []JournalEntry
	// journalDropped counts entries evicted past the bound; total appended
	// is len(journal)+journalDropped.
	journalDropped uint64

	// token is the highest fencing token an apply has carried (fence.go);
	// a fenced apply carrying a lower token is rejected and parked in the
	// fenced journal instead — the unshipped suffix a partition-heal
	// reconciliation discards.
	token         uint64
	fenced        []JournalEntry
	fencedDropped uint64
}

// StateStoreStats are the apply-side counters of the state subsystem.
type StateStoreStats struct {
	// Applied counts state applies; DedupHits retried requests whose
	// re-execution was absorbed by the dedup window (the exactly-once
	// guard); LostApplies applies made while the cell was lost (journaled,
	// folded only by restore or lost without checkpointing).
	Applied, DedupHits, LostApplies uint64
	// Invalidations counts device-loss events; CleanMigrations moves of a
	// live cell to a new placement (no state loss).
	Invalidations, CleanMigrations uint64
	// LiveMigrations counts completed pre-copy/catch-up/flip ownership
	// hand-offs (planned drains) — zero-loss by construction, counted
	// separately from the passive CleanMigrations follow-the-placement
	// moves.
	LiveMigrations uint64
	// RPOItems is the total number of applied state items (requests) that
	// recovery could not bring back — the recovery-point objective, 0 when
	// every committed apply survived.
	RPOItems uint64
	// RTOSamples are per-incident crash→state-restored latencies.
	RTOSamples []sim.Time
	// JournalReplayed counts journal entries folded in during restores;
	// JournalEvicted entries lost past the journal bound.
	JournalReplayed, JournalEvicted uint64
	// FencedWrites counts applies rejected for carrying a stale fencing
	// token — a partitioned zombie owner's writes, never folded in.
	FencedWrites uint64
}

// StateStore holds every stateful stage's cell for one runtime. It is
// safe for concurrent use; all mutation happens on the simulation
// goroutine in practice, but tests hit it with -race.
type StateStore struct {
	mu    sync.Mutex
	cells map[string]*stateCell // key app + "/" + stage
	bound int
	// hints records each stateful stage's declared state-size hint in MB
	// (the TOSCA "stateMB" property) — it sizes checkpoint transfers.
	hints map[string]float64

	stats StateStoreStats

	// onLost, when set (by the Checkpointer), observes invalidations so a
	// restore can be scheduled; onRestored observes completed restores
	// (chaos harnesses use it for RTO attribution).
	onLost     func(app, stage string)
	onRestored func(app, stage string, at sim.Time)

	// crashAt lets the fault injector stamp the true crash instant of a
	// device, so RTO measures crash→restored rather than detect→restored.
	crashAt map[string]sim.Time

	// failed, when set (by the Runtime), reports whether a device is
	// currently down. An apply arriving from a new placement while the
	// previous owner is dead must NOT migrate the state — the old owner's
	// RAM is gone — even if the failure detector has not confirmed the
	// crash yet.
	failed func(device string) bool

	// fencing enables stale-token rejection on ApplyFenced; off (the
	// default) every token is accepted, so pre-fencing callers and the
	// -fencing=false control arm behave exactly as before.
	fencing bool
}

// NewStateStore returns an empty store; bound sizes both the dedup
// window and the apply journal (0 = DefaultStateBound).
func NewStateStore(bound int) *StateStore {
	if bound <= 0 {
		bound = DefaultStateBound
	}
	return &StateStore{
		cells:   map[string]*stateCell{},
		bound:   bound,
		hints:   map[string]float64{},
		crashAt: map[string]sim.Time{},
	}
}

func cellKey(app, stage string) string { return app + "/" + stage }

// Bound returns the dedup/journal bound.
func (ss *StateStore) Bound() int { return ss.bound }

// SetFencing toggles stale-token rejection on ApplyFenced. Off (the
// default), tokens are recorded but never rejected — existing callers
// and the control arm of the split-brain experiment are unchanged.
func (ss *StateStore) SetFencing(on bool) {
	ss.mu.Lock()
	ss.fencing = on
	ss.mu.Unlock()
}

// RaiseToken records the ledger's current fencing token for a cell,
// creating the cell (owned by device) if it has no state yet. The
// runtime calls this at plan registration, so the fence rises the
// moment ownership changes — before the new owner's first apply lands.
func (ss *StateStore) RaiseToken(app, stage, device string, token uint64) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	c := ss.cells[cellKey(app, stage)]
	if c == nil {
		c = &stateCell{app: app, stage: stage, owner: device, state: StageState{Stage: stage}}
		ss.cells[cellKey(app, stage)] = c
	}
	if token > c.token {
		c.token = token
	}
}

// CellToken returns the highest fencing token a cell has observed.
func (ss *StateStore) CellToken(app, stage string) uint64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if c := ss.cells[cellKey(app, stage)]; c != nil {
		return c.token
	}
	return 0
}

// FencedEntries reports how many stale-token applies a cell has parked
// in its fenced journal (including any evicted past the bound).
func (ss *StateStore) FencedEntries(app, stage string) int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if c := ss.cells[cellKey(app, stage)]; c != nil {
		return len(c.fenced) + int(c.fencedDropped)
	}
	return 0
}

// Apply folds one served request into a stage's state cell, creating the
// cell on first touch. It is idempotent per request ID within the dedup
// window: a retried request that already executed the stage reports a
// dedup hit and changes nothing. Returns whether the apply took effect.
func (ss *StateStore) Apply(app, stage, device string, reqID uint64, items int64, at sim.Time) bool {
	return ss.ApplyFenced(app, stage, device, reqID, items, at, ^uint64(0))
}

// ApplyFenced is Apply with the writer's fencing token. With fencing
// enabled, a token below the cell's highest observed one identifies a
// stale writer — a partitioned zombie owner or a replayed pre-partition
// suffix: the apply is counted, parked in the fenced journal (for the
// heal-time reconciliation to discard), and never folded into state.
// Un-fenced callers pass MaxUint64 via Apply and are never rejected.
func (ss *StateStore) ApplyFenced(app, stage, device string, reqID uint64, items int64, at sim.Time, token uint64) bool {
	// newlyLost collects cells an inline owner-death invalidation marks
	// lost; their onLost callbacks fire after the lock is released (defers
	// run LIFO, so this one runs after the unlock below).
	var newlyLost []*stateCell
	defer func() {
		if ss.onLost != nil {
			for _, lc := range newlyLost {
				ss.onLost(lc.app, lc.stage)
			}
		}
	}()
	ss.mu.Lock()
	defer ss.mu.Unlock()
	c := ss.cells[cellKey(app, stage)]
	if c == nil {
		c = &stateCell{app: app, stage: stage, owner: device, state: StageState{Stage: stage}}
		ss.cells[cellKey(app, stage)] = c
	}
	// Fencing gate: the token comparison runs before dedup so a stale
	// writer can neither mutate state nor pollute the dedup window or
	// journal. MaxUint64 is the un-fenced sentinel (plain Apply): it is
	// never rejected and never raises the cell's watermark.
	if ss.fencing && token != ^uint64(0) {
		if token < c.token {
			ss.stats.FencedWrites++
			c.fenced = append(c.fenced, JournalEntry{ReqID: reqID, Items: items, At: at})
			if len(c.fenced) > ss.bound {
				drop := len(c.fenced) - ss.bound
				c.fenced = c.fenced[drop:]
				c.fencedDropped += uint64(drop)
			}
			return false
		}
		if token > c.token {
			c.token = token
		}
	}
	if c.state.seen(reqID) || journalHas(c.journal, reqID) {
		ss.stats.DedupHits++
		return false
	}
	c.journal = append(c.journal, JournalEntry{ReqID: reqID, Items: items, At: at})
	if len(c.journal) > ss.bound {
		drop := len(c.journal) - ss.bound
		c.journal = c.journal[drop:]
		c.journalDropped += uint64(drop)
		ss.stats.JournalEvicted += uint64(drop)
	}
	if !c.lost && c.owner != device && c.owner != "" && ss.ownerDeadLocked(c.owner) {
		// The stage moved to a new placement because its previous owner
		// died: the state cannot migrate out of dead RAM, whatever the
		// failure detector has concluded so far. Invalidate now — the
		// replan is often faster than suspicion confirmation.
		newlyLost = append(newlyLost, ss.invalidateLocked(c.owner, at)...)
	}
	if c.lost {
		// The in-memory copy is gone; the apply is journaled and will be
		// folded by the restore replay (or lost without checkpointing).
		ss.stats.LostApplies++
		return true
	}
	if c.owner != device {
		// The stage moved under a live cell (clean replan); the state
		// follows the placement, like a process migration.
		c.owner = device
		ss.stats.CleanMigrations++
	}
	c.state.apply(reqID, items, at, ss.bound)
	ss.stats.Applied++
	return true
}

// journalHas reports whether the journal already carries reqID — the
// dedup backstop for applies journaled while a cell is lost (they are
// not yet in the state's own dedup window).
func journalHas(j []JournalEntry, reqID uint64) bool {
	for i := len(j) - 1; i >= 0; i-- {
		if j[i].ReqID == reqID {
			return true
		}
	}
	return false
}

// Reconcile is the partition-heal cleanup for a fenced owner: the
// fenced journal suffix — writes the zombie attempted while stale — is
// discarded deterministically (it was never folded in, so state is
// untouched), and the resync cost of re-pulling the authoritative image
// (encoded state plus the declared stateMB hint) is reported. Returns
// the discarded entry count and the resync bytes.
func (ss *StateStore) Reconcile(app, stage string) (discarded int, resyncBytes uint64) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	c := ss.cells[cellKey(app, stage)]
	if c == nil {
		return 0, 0
	}
	discarded = len(c.fenced) + int(c.fencedDropped)
	c.fenced, c.fencedDropped = nil, 0
	img := c.state
	resyncBytes = uint64(len(EncodeState(&img))) + uint64(ss.hints[cellKey(app, stage)]*1e6)
	return discarded, resyncBytes
}

// NoteCrash stamps the true crash time of a device (fault injectors call
// this) so RTO samples measure from the crash, not from detection.
func (ss *StateStore) NoteCrash(device string, at sim.Time) {
	ss.mu.Lock()
	ss.crashAt[device] = at
	ss.mu.Unlock()
}

// Invalidate destroys the in-memory state of every cell owned by device
// — the RAM died with it. The journal survives (it is control-plane
// state), and a wired Checkpointer will schedule restores; without one,
// the applies the cell held are permanently lost and counted as RPO.
func (ss *StateStore) Invalidate(device string, now sim.Time) {
	ss.mu.Lock()
	lost := ss.invalidateLocked(device, now)
	onLost := ss.onLost
	ss.mu.Unlock()
	if onLost != nil {
		for _, c := range lost {
			onLost(c.app, c.stage)
		}
	}
}

// invalidateLocked marks every live cell owned by device lost and returns
// them; the caller fires onLost after releasing ss.mu (the callback —
// typically the Checkpointer's restore scheduler — re-enters the store).
func (ss *StateStore) invalidateLocked(device string, now sim.Time) []*stateCell {
	var lost []*stateCell
	for _, c := range ss.sortedCellsLocked() {
		if c.owner != device || c.lost {
			continue
		}
		c.lost = true
		c.lostAt = now
		if at, ok := ss.crashAt[device]; ok && at < now {
			c.lostAt = at
		}
		c.lostCount = c.state.Count
		c.state = StageState{Stage: c.stage}
		c.restoring = false
		ss.stats.Invalidations++
		lost = append(lost, c)
	}
	delete(ss.crashAt, device)
	return lost
}

// ownerDeadLocked reports whether a device is known dead: either a fault
// injector stamped its crash (NoteCrash) or the runtime's liveness probe
// says it is down.
func (ss *StateStore) ownerDeadLocked(device string) bool {
	if _, ok := ss.crashAt[device]; ok {
		return true
	}
	return ss.failed != nil && ss.failed(device)
}

// sortedCellsLocked returns the cells in deterministic key order.
func (ss *StateStore) sortedCellsLocked() []*stateCell {
	keys := make([]string, 0, len(ss.cells))
	for k := range ss.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*stateCell, len(keys))
	for i, k := range keys {
		out[i] = ss.cells[k]
	}
	return out
}

// CompleteRestore installs a recovered state image on a lost cell: the
// decoded checkpoint (nil without one), the extra dedup IDs its delta
// carried, then a replay of every journal entry not already covered.
// It closes the incident's RPO/RTO accounting and re-owns the cell.
func (ss *StateStore) CompleteRestore(app, stage, device string, img *StageState, extraDedup map[uint64]bool, now sim.Time) {
	ss.mu.Lock()
	c := ss.cells[cellKey(app, stage)]
	if c == nil || !c.lost {
		ss.mu.Unlock()
		return
	}
	st := StageState{Stage: stage}
	covered := map[uint64]bool{}
	if img != nil {
		st = *img
		st.Stage = stage
		st.Dedup = append([]uint64(nil), img.Dedup...)
		for _, id := range st.Dedup {
			covered[id] = true
		}
	}
	for id := range extraDedup {
		covered[id] = true
	}
	replayed, recoveredToLoss := uint64(0), st.Count
	for _, e := range c.journal {
		if covered[e.ReqID] || st.seen(e.ReqID) {
			continue
		}
		st.apply(e.ReqID, e.Items, e.At, ss.bound)
		replayed++
		if e.At <= c.lostAt {
			recoveredToLoss++
		}
	}
	c.state = st
	c.owner = device
	c.lost = false
	c.restoring = false
	ss.stats.JournalReplayed += replayed
	if c.lostCount > recoveredToLoss {
		ss.stats.RPOItems += c.lostCount - recoveredToLoss
	}
	ss.stats.RTOSamples = append(ss.stats.RTOSamples, now-c.lostAt)
	onRestored := ss.onRestored
	ss.mu.Unlock()
	if onRestored != nil {
		onRestored(app, stage, now)
	}
}

// AbandonLost re-owns a lost cell with zero state — the no-checkpoint
// path: the next placement starts fresh and everything the cell held is
// recorded as unrecoverable RPO loss.
func (ss *StateStore) AbandonLost(app, stage, device string, now sim.Time) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	c := ss.cells[cellKey(app, stage)]
	if c == nil || !c.lost {
		return
	}
	c.state = StageState{Stage: stage}
	c.owner = device
	c.lost = false
	c.restoring = false
	ss.stats.RPOItems += c.lostCount
}

// State returns a copy of a stage's live state and whether the cell is
// currently lost.
func (ss *StateStore) State(app, stage string) (StageState, bool, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	c := ss.cells[cellKey(app, stage)]
	if c == nil {
		return StageState{}, false, false
	}
	st := c.state
	st.Dedup = append([]uint64(nil), c.state.Dedup...)
	return st, c.lost, true
}

// Fingerprints returns the canonical logical-state bytes of every cell,
// keyed app/stage — the artifact the chaos divergence check compares
// against a fault-free same-seed run.
func (ss *StateStore) Fingerprints() map[string][]byte {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	out := make(map[string][]byte, len(ss.cells))
	for k, c := range ss.cells {
		out[k] = c.state.Fingerprint()
	}
	return out
}

// Stats returns a copy of the apply-side counters.
func (ss *StateStore) Stats() StateStoreStats {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	s := ss.stats
	s.RTOSamples = append([]sim.Time(nil), ss.stats.RTOSamples...)
	return s
}

// Cells returns the app/stage keys of all cells, sorted.
func (ss *StateStore) Cells() []string {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	keys := make([]string, 0, len(ss.cells))
	for k := range ss.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SplitCellKey splits a Cells()/LostCells() key back into app and stage.
func SplitCellKey(key string) (app, stage string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}

// LostCells returns the keys of cells whose in-memory state is currently
// lost, sorted.
func (ss *StateStore) LostCells() []string {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var keys []string
	for k, c := range ss.cells {
		if c.lost {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// SetHint records a stage's declared state-size hint (MB).
func (ss *StateStore) SetHint(app, stage string, mb float64) {
	ss.mu.Lock()
	ss.hints[cellKey(app, stage)] = mb
	ss.mu.Unlock()
}

// Hint returns a stage's state-size hint in MB (0 when undeclared).
func (ss *StateStore) Hint(app, stage string) float64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return ss.hints[cellKey(app, stage)]
}

// SetOnLost registers the invalidation observer (the Checkpointer's
// restore scheduler). Wire before serving.
func (ss *StateStore) SetOnLost(fn func(app, stage string)) {
	ss.mu.Lock()
	ss.onLost = fn
	ss.mu.Unlock()
}

// SetFailedFn registers the device-liveness probe (the Runtime wires it
// to its device table) used to catch state applies arriving from a new
// placement while the previous owner is dead but not yet confirmed.
func (ss *StateStore) SetFailedFn(fn func(device string) bool) {
	ss.mu.Lock()
	ss.failed = fn
	ss.mu.Unlock()
}

// SetOnRestored registers the restore-completion observer.
func (ss *StateStore) SetOnRestored(fn func(app, stage string, at sim.Time)) {
	ss.mu.Lock()
	ss.onRestored = fn
	ss.mu.Unlock()
}

// CellInfo reports a cell's owner and recovery flags.
func (ss *StateStore) CellInfo(app, stage string) (owner string, lost, restoring, ok bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	c := ss.cells[cellKey(app, stage)]
	if c == nil {
		return "", false, false, false
	}
	return c.owner, c.lost, c.restoring, true
}

// MarkRestoring flags a lost cell as having a restore in flight so the
// scheduler does not start a second one; it reports whether the flag was
// taken (false when the cell is not lost or already restoring).
func (ss *StateStore) MarkRestoring(app, stage string) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	c := ss.cells[cellKey(app, stage)]
	if c == nil || !c.lost || c.restoring {
		return false
	}
	c.restoring = true
	return true
}

// ClearRestoring drops the in-flight flag after a failed restore attempt
// so the next tick can retry.
func (ss *StateStore) ClearRestoring(app, stage string) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if c := ss.cells[cellKey(app, stage)]; c != nil {
		c.restoring = false
	}
}

// JournalPos returns the cell's current total journal position (entries
// ever appended, evicted ones included) — the pre-copy baseline of a
// live migration.
func (ss *StateStore) JournalPos(app, stage string) uint64 {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	c := ss.cells[cellKey(app, stage)]
	if c == nil {
		return 0
	}
	return c.journalDropped + uint64(len(c.journal))
}

// CompleteMigration finalizes a live migration's ownership flip: the
// cell's owner becomes newOwner without touching the state itself (the
// store is authoritative and the pre-copy/catch-up already proved the
// image converged). It refuses cells that are missing, lost, or
// restoring — a crash mid-migration falls back to checkpoint restore
// and the flip must not fight it.
func (ss *StateStore) CompleteMigration(app, stage, newOwner string) bool {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	c := ss.cells[cellKey(app, stage)]
	if c == nil || c.lost || c.restoring {
		return false
	}
	if c.owner != newOwner {
		c.owner = newOwner
	}
	ss.stats.LiveMigrations++
	return true
}

// JournalSince returns a copy of the journal entries at total position ≥
// pos (the total position counts every entry ever appended, evicted ones
// included), the new total position, and whether the journal still
// covers pos — false means entries between pos and the journal's oldest
// retained entry were evicted, so a delta from pos would have holes.
func (ss *StateStore) JournalSince(app, stage string, pos uint64) ([]JournalEntry, uint64, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	c := ss.cells[cellKey(app, stage)]
	if c == nil {
		return nil, 0, true
	}
	total := c.journalDropped + uint64(len(c.journal))
	if pos < c.journalDropped {
		return nil, total, false
	}
	ents := append([]JournalEntry(nil), c.journal[pos-c.journalDropped:]...)
	return ents, total, true
}
