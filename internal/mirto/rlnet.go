package mirto

import (
	"encoding/json"
	"fmt"
	"sort"

	"myrtus/internal/kb"
	"myrtus/internal/sim"
)

// NetworkManager is the RL-flavored network driver the paper's §VI calls
// out ("historical batch data needed to implement, for example, a
// Reinforcement Learning-based strategy within the Network Manager"): a
// tabular Q-learner that decides, per observed congestion regime,
// whether an application's traffic should ride a reserved network slice
// or best-effort. Rewards are negative latency minus a reservation cost,
// so the policy converges to "slice only when congestion makes it pay".
//
// The learner's experience persists as historical batches in the KB
// (PrefixHistory), exactly where the paper says such data lives.
type NetworkManager struct {
	Alpha   float64 // learning rate
	Gamma   float64 // discount (0 = contextual bandit, our episodic use)
	Epsilon float64 // exploration probability
	// SliceCost is the per-request reward penalty of holding a
	// reservation (encourages best-effort when the link is quiet).
	SliceCost float64

	q   map[string]map[string]float64
	n   map[string]map[string]int
	rng *sim.RNG
}

// Network actions.
const (
	ActionBestEffort = "best-effort"
	ActionSlice      = "slice"
)

var netActions = []string{ActionBestEffort, ActionSlice}

// NewNetworkManager returns a learner with standard hyper-parameters.
func NewNetworkManager(seed uint64) *NetworkManager {
	return &NetworkManager{
		Alpha: 0.2, Gamma: 0, Epsilon: 0.1, SliceCost: 0.05,
		q:   map[string]map[string]float64{},
		n:   map[string]map[string]int{},
		rng: sim.NewRNG(seed).Fork("rlnet"),
	}
}

// CongestionState buckets a congestion signal (e.g. mean queue delay in
// seconds) into the discrete state space.
func CongestionState(queueDelaySeconds float64) string {
	switch {
	case queueDelaySeconds < 0.01:
		return "quiet"
	case queueDelaySeconds < 0.2:
		return "busy"
	default:
		return "congested"
	}
}

// Choose picks an action for the state (ε-greedy).
func (nm *NetworkManager) Choose(state string) string {
	if nm.rng.Bool(nm.Epsilon) {
		return netActions[nm.rng.Intn(len(netActions))]
	}
	return nm.Best(state)
}

// Best returns the greedy action for the state.
func (nm *NetworkManager) Best(state string) string {
	qs := nm.q[state]
	best := ActionBestEffort
	bestQ := qs[ActionBestEffort]
	for _, a := range netActions {
		if qs[a] > bestQ {
			best, bestQ = a, qs[a]
		}
	}
	return best
}

// Observe records one outcome: the measured request latency (seconds)
// for the action taken in state. Lower latency = higher reward.
func (nm *NetworkManager) Observe(state, action string, latencySeconds float64) {
	reward := -latencySeconds
	if action == ActionSlice {
		reward -= nm.SliceCost
	}
	if nm.q[state] == nil {
		nm.q[state] = map[string]float64{}
		nm.n[state] = map[string]int{}
	}
	old := nm.q[state][action]
	nm.q[state][action] = old + nm.Alpha*(reward-old)
	nm.n[state][action]++
}

// Q returns the learned value for (state, action).
func (nm *NetworkManager) Q(state, action string) float64 { return nm.q[state][action] }

// Visits returns how often (state, action) was trained.
func (nm *NetworkManager) Visits(state, action string) int { return nm.n[state][action] }

// Policy renders the greedy policy per visited state, sorted.
func (nm *NetworkManager) Policy() map[string]string {
	out := map[string]string{}
	for s := range nm.q {
		out[s] = nm.Best(s)
	}
	return out
}

// qSnapshot is the serialized learner state.
type qSnapshot struct {
	Q map[string]map[string]float64 `json:"q"`
	N map[string]map[string]int     `json:"n"`
}

// Persist stores the learner's experience as a historical batch in the
// KB under topic (seq distinguishes successive batches).
func (nm *NetworkManager) Persist(reg *kb.Registry, topic string, seq int64) error {
	return reg.RecordHistory(topic, seq, qSnapshot{Q: nm.q, N: nm.n})
}

// Restore loads the latest batch recorded under topic, if any.
func (nm *NetworkManager) Restore(reg *kb.Registry, topic string) error {
	batches := reg.History(topic)
	if len(batches) == 0 {
		return fmt.Errorf("mirto: no RL history under %q", topic)
	}
	var snap qSnapshot
	if err := json.Unmarshal(batches[len(batches)-1], &snap); err != nil {
		return fmt.Errorf("mirto: corrupt RL history: %w", err)
	}
	if snap.Q != nil {
		nm.q = snap.Q
	}
	if snap.N != nil {
		nm.n = snap.N
	}
	return nil
}

// Render prints the Q-table for reports.
func (nm *NetworkManager) Render() string {
	var states []string
	for s := range nm.q {
		states = append(states, s)
	}
	sort.Strings(states)
	out := "network manager Q-table (greedy action starred):\n"
	for _, s := range states {
		best := nm.Best(s)
		for _, a := range netActions {
			star := " "
			if a == best {
				star = "*"
			}
			out += fmt.Sprintf("  %-10s %-12s%s Q=%+.4f (n=%d)\n", s, a, star, nm.q[s][a], nm.n[s][a])
		}
	}
	return out
}
