package mirto

import (
	"fmt"

	"myrtus/internal/cluster"
)

// DeltaStats summarizes one incremental replan: how much of the old
// plan survived, how much was re-negotiated, and the deterministic
// planning cost (candidates scored) the delta actually paid.
type DeltaStats struct {
	Kept     int // stages spliced through unchanged (pods untouched)
	Replaced int // stages re-placed against the shard indexes
	Moved    int // re-placed stages that landed on a different device
	Scored   int // candidates scored — O(Replaced), not O(stages × devices)
}

// DeltaPlan computes an incremental replan of old: only the dirty
// stages (and their forced closure) are re-placed; every other stage is
// spliced through with its device — and its live pod — untouched. The
// result is NOT executed; ExecuteDelta applies it, DeltaReplan does
// both.
//
// The closure grows during the walk: a stage is re-placed when it is
// dirty, when any of its upstreams moved (its network scores changed),
// or when its old device can no longer host it (gone, not ready,
// outside the security bucket, untrusted, or out of capacity once this
// plan's reservations are counted). Re-placement scores candidates as
// if the old plan were already torn down — the old pods' resources are
// credited back via a release set — which makes the delta equivalent to
// Teardown+Plan: under otherwise-unchanged cluster state the spliced
// plan is byte-identical (same assignments, same score) to a
// from-scratch plan, because every stage's candidate scan sees exactly
// the free capacity, upstream placements, and reservation prefix the
// full planner would see. Dirty stages whose fresh winner is the old
// device keep their pod and do not poison downstream stages.
//
// The security invariant of full planning holds unchanged on this
// path: kept stages re-verify membership in their security bucket, and
// re-placed stages go through the same bucketed descent — a degraded
// delta plan never relaxes a stage's security level.
func (m *Manager) DeltaPlan(old *Plan, dirty map[string]bool) (*Plan, DeltaStats, error) {
	var stats DeltaStats
	st := old.Template
	np := &Plan{App: old.App, Template: st}
	shape := old.pipelineShape() // same template: reuse the cached shape
	np.adoptShape(shape)
	order := shape.order
	np.Assignments = make([]Assignment, 0, len(order))

	// release credits back what Teardown(old) would free, so candidate
	// fit checks see post-teardown capacity while the old pods still run.
	release := make(map[string]cluster.Resources, len(old.Assignments))
	for i := range old.Assignments {
		a := &old.Assignments[i]
		if a.PodName == "" {
			continue
		}
		release[a.Device] = release[a.Device].Add(shape.reqs[a.TemplateNode].req)
	}

	ps := getPlanScratch()
	defer putPlanScratch(ps)
	var moved map[string]bool

	// Consecutive keeps hold one read lock on their layer's index
	// instead of locking per stage; the lock is always dropped before a
	// re-placement descends (placeStage takes its own agent locks).
	var lockedAg *LayerAgent
	unlockAg := func() {
		if lockedAg != nil {
			lockedAg.idx.mu.RUnlock()
			lockedAg = nil
		}
	}
	defer unlockAg()

	for _, nodeName := range order {
		oldA := old.assignmentRef(nodeName)
		replace := dirty[nodeName] || oldA == nil
		if !replace && moved != nil {
			for _, t := range shape.ups[nodeName] {
				if moved[t] {
					replace = true // upstream moved: network scores changed
					break
				}
			}
		}
		sr := shape.reqs[nodeName]
		if !replace {
			kept := false
			if ag := m.agentFor(oldA.Layer); ag != nil {
				if ag != lockedAg {
					unlockAg()
					ag.rlockBuilt()
					lockedAg = ag
				}
				kept = m.keepStageLocked(ag, sr, ps, release, oldA)
			}
			if kept {
				np.Score += oldA.Score
				ps.placedAt[nodeName] = oldA.Device
				ps.reserved[oldA.Device] = ps.reserved[oldA.Device].Add(sr.req)
				np.Assignments = append(np.Assignments, *oldA)
				stats.Kept++
				continue
			}
			replace = true // old device can no longer host the stage
		}
		unlockAg()
		if err := m.planStageInto(np, st, nodeName, ps, release); err != nil {
			return nil, stats, err
		}
		stats.Replaced++
		na := &np.Assignments[len(np.Assignments)-1]
		if oldA != nil && na.Device == oldA.Device {
			// Fresh winner is the old device: the deployed pod already
			// matches the spec — splice it through instead of churning.
			na.PodName = oldA.PodName
		} else {
			if moved == nil {
				moved = make(map[string]bool, len(dirty))
			}
			moved[nodeName] = true
			stats.Moved++
		}
	}
	np.Negotiations = ps.negotiations
	np.Scored = ps.scored
	stats.Scored = ps.scored
	if m.fence != nil {
		np.Epoch = m.fence.StampEpoch(np.App)
	}
	return np, stats, nil
}

// keepStageLocked re-verifies that a non-dirty stage's old device can
// still host it: alive, ready, in the stage's security bucket, trusted,
// and with the stage's demand fitting the post-teardown capacity. The
// checks mirror the planner's candidate filters exactly, so a kept
// stage is one the full planner would also have accepted — and its
// recorded Score is the value a fresh scan would re-derive, because
// every scoring input (free capacity once releases are credited,
// upstream placements, queue state) is unchanged for a kept stage. No
// candidate is scored: a keep is O(1) validity checking. The caller
// holds ag's index read lock (batched across consecutive keeps).
func (m *Manager) keepStageLocked(ag *LayerAgent, sr *stageReq, ps *planScratch, release map[string]cluster.Resources, oldA *Assignment) bool {
	e := ag.idx.entries[oldA.Device]
	if e == nil || !e.ready || e.cordoned || e.dev.Failed() {
		return false
	}
	// Bucket membership, not just device capability: the full planner
	// only ever scans the stage's security bucket.
	if !e.inBucket(sr.secLevel) {
		return false
	}
	if sr.pin != "" && e.name != sr.pin {
		return false
	}
	free := e.free
	if r, ok := release[e.name]; ok {
		free = free.Add(r)
	}
	if r, ok := ps.reserved[e.name]; ok {
		free = cluster.Resources{CPU: free.CPU - r.CPU, MemMB: free.MemMB - r.MemMB}
	}
	if !sr.req.Fits(free) {
		return false
	}
	if th := m.Goal.TrustThreshold; th > 0 && (th > 0.5 || m.C.Trust.HasEvidence()) {
		if m.C.Trust.Reputation(e.name) < th {
			return false
		}
	}
	return true
}

// agentFor maps a layer name back to its agent.
func (m *Manager) agentFor(layer string) *LayerAgent {
	switch layer {
	case "edge":
		return m.Edge
	case "fog":
		return m.Fog
	case "cloud":
		return m.Cloud
	}
	return nil
}

// ExecuteDelta applies a delta plan: stages spliced through (PodName
// already set) are untouched; replaced stages have their old pods
// removed and new ones created and bound, mirroring Replan's
// teardown-then-execute so the freed capacity is visible to the new
// bindings. On failure the created pods are removed and the old ones
// restored best-effort, leaving the caller free to fall back to a full
// replan.
func (m *Manager) ExecuteDelta(old, np *Plan) error {
	// Epoch gate: a splice built from a superseded plan epoch was
	// computed by a stale authority (a partitioned orchestrator, or a
	// drain that raced a newer replan) — applying it would tear pods
	// against a placement the rest of the system has moved past.
	if m.fence != nil && np.Epoch != 0 {
		if cur := m.fence.CurrentEpoch(np.App); np.Epoch < cur {
			m.fence.NoteEpochReject()
			return fmt.Errorf("mirto: splice of %s rejected: plan epoch %d superseded by %d",
				np.App, np.Epoch, cur)
		}
	}
	var changed []int
	for i := range np.Assignments {
		if np.Assignments[i].PodName == "" {
			changed = append(changed, i)
		}
	}
	restore := make([]Assignment, 0, len(changed))
	for _, i := range changed {
		if oa, ok := old.Assignment(np.Assignments[i].TemplateNode); ok && oa.PodName != "" {
			oa.Cluster.DeletePod(oa.PodName)
			restore = append(restore, oa)
		}
	}
	rollback := func(created []int) {
		for _, j := range created {
			a := &np.Assignments[j]
			a.Cluster.DeletePod(a.PodName)
			a.PodName = ""
		}
		for _, oa := range restore {
			if name, err := oa.Cluster.CreatePod(podSpec(np, &oa)); err == nil {
				if oa.Cluster.Bind(name, oa.Device) != nil {
					oa.Cluster.DeletePod(name)
				}
			}
		}
	}
	var created []int
	for _, i := range changed {
		a := &np.Assignments[i]
		name, err := a.Cluster.CreatePod(podSpec(np, a))
		if err == nil {
			if berr := a.Cluster.Bind(name, a.Device); berr != nil {
				a.Cluster.DeletePod(name)
				err = berr
			}
		}
		if err != nil {
			rollback(created)
			return fmt.Errorf("mirto: delta splice of %s: %w", a.TemplateNode, err)
		}
		a.PodName = name
		created = append(created, i)
	}
	return m.configureNodes(np)
}

// DeltaReplan computes and applies an incremental replan in one step.
func (m *Manager) DeltaReplan(old *Plan, dirty map[string]bool) (*Plan, DeltaStats, error) {
	np, stats, err := m.DeltaPlan(old, dirty)
	if err != nil {
		return nil, stats, err
	}
	if err := m.ExecuteDelta(old, np); err != nil {
		return nil, stats, err
	}
	return np, stats, nil
}

// DirtyStages returns the stages of a plan whose device has failed or
// whose cluster node is gone/unready — the seed set an incremental
// replan re-places (nil when the plan is fully healthy, which callers
// treat as "nothing locally wrong, renegotiate globally").
func (m *Manager) DirtyStages(plan *Plan) map[string]bool {
	var dirty map[string]bool
	for _, a := range plan.Assignments {
		bad := false
		if d := m.C.Devices[a.Device]; d == nil || d.Failed() {
			bad = true
		} else if a.Cluster != nil {
			if n, ok := a.Cluster.Node(a.Device); !ok || !n.Ready {
				bad = true
			}
		}
		if bad {
			if dirty == nil {
				dirty = map[string]bool{}
			}
			dirty[a.TemplateNode] = true
		}
	}
	return dirty
}
