package mirto

import (
	"reflect"
	"strings"
	"testing"

	"myrtus/internal/continuum"
	"myrtus/internal/sim"
	"myrtus/internal/tosca"
)

func sampleMigrate(kind byte) *MigrateMsg {
	m := &MigrateMsg{
		Kind: kind, App: "app", Stage: "agg",
		From: "fog-gw-0", To: "cloud-srv-1",
		Round: 3, BasePos: 17,
	}
	if kind == MigratePrecopy {
		m.Image = EncodeState(&StageState{Stage: "agg", Count: 2, Items: 5, Xor: 7})
	} else {
		m.Entries = []JournalEntry{
			{ReqID: 18, Items: 2, At: 4 * sim.Second},
			{ReqID: 19, Items: 1, At: 5 * sim.Second},
		}
	}
	return m
}

func TestMigrateCodecRoundTrip(t *testing.T) {
	for _, kind := range []byte{MigratePrecopy, MigrateDelta} {
		m := sampleMigrate(kind)
		got, err := DecodeMigrate(EncodeMigrate(m))
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("kind %d round trip:\n want %+v\n got  %+v", kind, m, got)
		}
	}
}

func TestMigrateCodecRejectsCorruptInput(t *testing.T) {
	good := EncodeMigrate(sampleMigrate(MigratePrecopy))
	cases := map[string][]byte{
		"empty":     {},
		"truncated": good[:8],
		"bad magic": append([]byte("XXXX"), good[4:]...),
		"flipped byte": func() []byte {
			b := append([]byte(nil), good...)
			b[12] ^= 0xff
			return b
		}(),
		"bad version": func() []byte {
			b := append([]byte(nil), good...)
			b[4] = 99
			return resealCRC(b)
		}(),
		"bad kind": func() []byte {
			b := append([]byte(nil), good...)
			b[5] = 7
			return resealCRC(b)
		}(),
		"trailing garbage": func() []byte {
			b := append([]byte(nil), good[:len(good)-4]...)
			b = append(b, 0xab)
			return resealCRC(append(b, good[len(good)-4:]...))
		}(),
		"oversized entry list": func() []byte {
			b := append([]byte{}, migrateMagic...)
			b = append(b, stateCodecV1, MigrateDelta)
			for i := 0; i < 4; i++ {
				b = appendString(b, "x")
			}
			b = appendU32(b, 0)
			b = appendU64(b, 0)
			b = appendU32(b, 0) // empty image
			b = appendU32(b, maxCodecList+1)
			return appendCRC(b)
		}(),
		"image longer than record": func() []byte {
			b := append([]byte{}, migrateMagic...)
			b = append(b, stateCodecV1, MigratePrecopy)
			for i := 0; i < 4; i++ {
				b = appendString(b, "x")
			}
			b = appendU32(b, 0)
			b = appendU64(b, 0)
			b = appendU32(b, 1<<15) // claims bytes the record doesn't carry
			return appendCRC(b)
		}(),
		"precopy without image": EncodeMigrate(&MigrateMsg{
			Kind: MigratePrecopy, App: "a", Stage: "s", From: "f", To: "t"}),
		"delta with image": func() []byte {
			m := sampleMigrate(MigrateDelta)
			m.Image = []byte{1, 2, 3}
			return EncodeMigrate(m)
		}(),
		"state magic on migrate": EncodeState(&StageState{Stage: "agg"}),
	}
	for name, data := range cases {
		if _, err := DecodeMigrate(data); err == nil {
			t.Errorf("%s: DecodeMigrate accepted corrupt input", name)
		}
	}
	if _, err := DecodeState(good); err == nil {
		t.Error("DecodeState accepted a migrate record")
	}
}

// FuzzMigrateCodec checks the migration codec never panics on arbitrary
// bytes and that anything it accepts re-encodes canonically.
func FuzzMigrateCodec(f *testing.F) {
	f.Add(EncodeMigrate(sampleMigrate(MigratePrecopy)))
	f.Add(EncodeMigrate(sampleMigrate(MigrateDelta)))
	f.Add([]byte(migrateMagic))
	f.Add([]byte("junk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMigrate(data)
		if err != nil {
			return
		}
		re := EncodeMigrate(m)
		m2, err := DecodeMigrate(re)
		if err != nil {
			t.Fatalf("re-encode of accepted migrate msg rejected: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("migrate msg not canonical: %+v vs %+v", m, m2)
		}
	})
}

// drainAppYAML is the stateful pipeline the drain tests move around:
// the aggregator carries a 2MB cell, the detector a small one.
const drainAppYAML = `
tosca_definitions_version: tosca_2_0
metadata:
  template_name: drainapp
topology_template:
  node_templates:
    camera:
      type: myrtus.nodes.Container
      properties: {cpu: 0.5, memoryMB: 128, gops: 0.2, outMB: 0.1, inMB: 0.2}
    detector:
      type: myrtus.nodes.Container
      properties: {cpu: 1, memoryMB: 256, gops: 1, outMB: 0.05, stateful: true, stateMB: 0.5}
      requirements:
        - source: camera
    aggregator:
      type: myrtus.nodes.Container
      properties: {cpu: 2, memoryMB: 1024, gops: 1, outMB: 0.01, stateful: true, stateMB: 2}
      requirements:
        - source: detector
`

// drainStack is the full live-migration fixture: orchestrator with
// state store, checkpointer, failure detector, and migrator.
type drainStack struct {
	c  *continuum.Continuum
	o  *Orchestrator
	ss *StateStore
	fd *FailureDetector
	mg *Migrator
}

func newDrainStack(t *testing.T) *drainStack {
	t.Helper()
	opts := continuum.DefaultOptions()
	opts.KBReplicas = 1
	c, err := continuum.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOrchestrator(NewManager(c, LatencyGoal()))
	ss := NewStateStore(0)
	o.R.SetStateStore(ss)
	o.CP = NewCheckpointer(o.R, c.KB, "cloud-srv-0", 0)
	fd := NewFailureDetector(c, 2)
	fd.SetStateStore(ss)
	mg := NewMigrator(o)
	mg.SetDetector(fd)
	mg.SetKB(c.KB)
	st, err := tosca.Parse(drainAppYAML)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Deploy(st); err != nil {
		t.Fatal(err)
	}
	return &drainStack{c: c, o: o, ss: ss, fd: fd, mg: mg}
}

// TestDrainLiveFlipZeroLoss drives submits every 10ms across a drain of
// the aggregator's device: no request may fail, the ownership must flip
// to the new placement, and the intake pause must stay far under the
// crash-detection timescale.
func TestDrainLiveFlipZeroLoss(t *testing.T) {
	s := newDrainStack(t)
	eng := s.c.Engine
	plan, _ := s.o.PlanFor("drainapp")
	agg, _ := plan.Assignment("aggregator")

	var done, failed int
	for at := 10 * sim.Millisecond; at <= 3*sim.Second; at += 10 * sim.Millisecond {
		eng.At(at, func() {
			s.o.R.Submit("drainapp", 1, func(_ sim.Time, _ float64, err error) { //nolint:errcheck
				done++
				if err != nil {
					failed++
				}
			})
		})
	}
	var rep *DrainReport
	eng.At(500*sim.Millisecond, func() {
		if err := s.mg.Drain(agg.Device, func(dr *DrainReport, _ error) { rep = dr }); err != nil {
			t.Errorf("Drain: %v", err)
		}
	})
	eng.Run()

	if rep == nil {
		t.Fatal("drain never completed")
	}
	if rep.Aborted {
		t.Fatalf("drain aborted: %s", rep.Reason)
	}
	if failed != 0 || done != 300 {
		t.Fatalf("requests: done=%d failed=%d (want 300/0)", done, failed)
	}
	np, _ := s.o.PlanFor("drainapp")
	for _, a := range np.Assignments {
		if a.Device == agg.Device {
			t.Fatalf("stage %s still on drained device %s", a.TemplateNode, agg.Device)
		}
	}
	flips := 0
	for _, sm := range rep.Stages {
		if sm.Flipped {
			flips++
			owner, lost, restoring, ok := s.ss.CellInfo(sm.App, sm.Stage)
			if !ok || lost || restoring {
				t.Fatalf("cell %s/%s after flip: owner=%s lost=%v restoring=%v ok=%v",
					sm.App, sm.Stage, owner, lost, restoring, ok)
			}
			if owner == agg.Device {
				t.Fatalf("cell %s/%s still owned by drained device", sm.App, sm.Stage)
			}
			if sm.PrecopyBytes == 0 {
				t.Fatalf("stage %s flipped without pre-copy bytes", sm.Stage)
			}
		}
	}
	if flips == 0 {
		t.Fatal("no stage flipped")
	}
	if got := s.ss.Stats().LiveMigrations; got != uint64(flips) {
		t.Fatalf("LiveMigrations = %d, want %d", got, flips)
	}
	if kv, ok := s.c.KB.Get(ownKey("drainapp", "aggregator")); !ok || string(kv.Value) == agg.Device {
		t.Fatalf("ownership key = %q ok=%v, want new owner", kv.Value, ok)
	}
	if max := rep.PauseMax(); max > 500*sim.Millisecond {
		t.Fatalf("intake pause %s exceeds two sensing ticks", max)
	}
	// The device stays cordoned until Undrain; a second drain of the now
	// empty device must be a no-op success.
	if !s.o.M.Edge.idx.cordoned[agg.Device] && !s.o.M.Fog.idx.cordoned[agg.Device] && !s.o.M.Cloud.idx.cordoned[agg.Device] {
		t.Fatal("drained device not cordoned anywhere")
	}
}

// TestIntakeGateParksAndReplays checks the pause/resume mechanics in
// isolation: submits during a pause complete only after resume.
func TestIntakeGateParksAndReplays(t *testing.T) {
	s := newDrainStack(t)
	eng := s.c.Engine
	s.o.R.PauseIntake("drainapp")
	if !s.o.R.IntakePaused("drainapp") {
		t.Fatal("intake not paused")
	}
	var done int
	for i := 0; i < 3; i++ {
		if err := s.o.R.Submit("drainapp", 1, func(_ sim.Time, _ float64, err error) {
			if err != nil {
				t.Errorf("parked submit failed: %v", err)
			}
			done++
		}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Run()
	if done != 0 {
		t.Fatalf("%d submits completed while paused", done)
	}
	if n := s.o.R.ResumeIntake("drainapp"); n != 3 {
		t.Fatalf("ResumeIntake replayed %d, want 3", n)
	}
	eng.Run()
	if done != 3 {
		t.Fatalf("replayed submits completed = %d, want 3", done)
	}
}

// TestDuplicateReqIDStraddlingFlipDedups replays a request ID that
// already applied at the old owner after the flip: the dedup window
// travels with the migrated cell, so the new owner must absorb it.
func TestDuplicateReqIDStraddlingFlipDedups(t *testing.T) {
	s := newDrainStack(t)
	eng := s.c.Engine
	plan, _ := s.o.PlanFor("drainapp")
	agg, _ := plan.Assignment("aggregator")

	const dupID = 7777
	eng.At(10*sim.Millisecond, func() {
		s.o.R.submitRequest("drainapp", "", 1, dupID, nil) //nolint:errcheck
	})
	eng.At(200*sim.Millisecond, func() {
		s.mg.Drain(agg.Device, nil) //nolint:errcheck
	})
	eng.Run()

	before, _, _ := s.ss.State("drainapp", "aggregator")
	hits := s.ss.Stats().DedupHits
	eng.After(0, func() {
		s.o.R.submitRequest("drainapp", "", 1, dupID, nil) //nolint:errcheck
	})
	eng.Run()
	after, _, _ := s.ss.State("drainapp", "aggregator")
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("duplicate across flip changed state:\n before %+v\n after  %+v", before, after)
	}
	if got := s.ss.Stats().DedupHits; got <= hits {
		t.Fatalf("dedup hits %d not above %d — duplicate re-applied?", got, hits)
	}
}

// TestDrainAbortsWhenDeviceDiesMidMigration kills the drained device
// during pre-copy and during catch-up: both drains must abort, lift the
// cordon and draining marks, and leave recovery to the detector path.
func TestDrainAbortsWhenDeviceDiesMidMigration(t *testing.T) {
	for _, tc := range []struct {
		name    string
		crashAt sim.Time
	}{
		{"mid-precopy", 5 * sim.Millisecond},
		{"mid-catchup", 300 * sim.Millisecond},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := newDrainStack(t)
			eng := s.c.Engine
			plan, _ := s.o.PlanFor("drainapp")
			agg, _ := plan.Assignment("aggregator")
			// Feed the journal so catch-up has residuals to chase.
			for at := 10 * sim.Millisecond; at <= sim.Second; at += 10 * sim.Millisecond {
				eng.At(at, func() { s.o.R.Submit("drainapp", 1, nil) }) //nolint:errcheck
			}
			var rep *DrainReport
			eng.After(0, func() {
				if err := s.mg.Drain(agg.Device, func(dr *DrainReport, _ error) { rep = dr }); err != nil {
					t.Errorf("Drain: %v", err)
				}
			})
			eng.At(tc.crashAt, func() { s.c.Devices[agg.Device].Fail() })
			eng.Run()

			if rep == nil {
				t.Fatal("drain never finished")
			}
			if !rep.Aborted {
				t.Fatal("drain completed although the device died mid-migration")
			}
			if !strings.Contains(rep.Reason, "died") && !strings.Contains(rep.Reason, "failed") {
				t.Fatalf("abort reason %q does not name the death", rep.Reason)
			}
			for _, ag := range []*LayerAgent{s.o.M.Edge, s.o.M.Fog, s.o.M.Cloud} {
				ag.idx.mu.RLock()
				cordoned := ag.idx.cordoned[agg.Device]
				ag.idx.mu.RUnlock()
				if cordoned {
					t.Fatal("aborted drain left the device cordoned")
				}
			}
			if s.fd.Draining(agg.Device) {
				t.Fatal("aborted drain left the device marked draining")
			}
			// No flip happened, so ownership and live migrations stay zero.
			if got := s.ss.Stats().LiveMigrations; got != 0 {
				t.Fatalf("LiveMigrations = %d after aborted drain", got)
			}
			// The failure path is free to run now: detector suspicion must
			// fire for the dead device (draining mark is gone).
			s.c.Heartbeat()
			s.fd.Tick()
			s.fd.Tick()
			if sus := s.fd.Suspects(); len(sus) != 1 || sus[0] != agg.Device {
				t.Fatalf("suspects after aborted drain = %v, want [%s]", sus, agg.Device)
			}
		})
	}
}

// TestDetectorTreatsDrainingMissesAsExpected is the cordon-vs-detector
// contract: a draining device that stops heartbeating is never
// suspected, and suspicion resumes the moment the mark lifts.
func TestDetectorTreatsDrainingMissesAsExpected(t *testing.T) {
	c := testContinuum(t)
	fd := NewFailureDetector(c, 2)
	fd.SetDraining("edge-mc-0", true)
	if !fd.Draining("edge-mc-0") {
		t.Fatal("draining mark not set")
	}
	c.Devices["edge-mc-0"].Fail()
	for i := 0; i < 5; i++ {
		if sus, _ := fd.Tick(); len(sus) != 0 {
			t.Fatalf("draining device suspected on tick %d: %v", i, sus)
		}
	}
	if s, conf, _ := fd.Stats(); s != 0 || conf != 0 {
		t.Fatalf("detector stats while draining = %d/%d, want 0/0", s, conf)
	}
	fd.SetDraining("edge-mc-0", false)
	fd.Tick()
	sus, _ := fd.Tick()
	if len(sus) != 1 || sus[0] != "edge-mc-0" {
		t.Fatalf("suspicion after undrain = %v", sus)
	}
}

// TestDrainRejectsUnknownAndConcurrent covers the synchronous error
// paths: unknown device, and double-drain of the same device.
func TestDrainRejectsUnknownAndConcurrent(t *testing.T) {
	s := newDrainStack(t)
	if err := s.mg.Drain("no-such-device", nil); err == nil {
		t.Fatal("drain of unknown device accepted")
	}
	plan, _ := s.o.PlanFor("drainapp")
	agg, _ := plan.Assignment("aggregator")
	if err := s.mg.Drain(agg.Device, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.mg.Drain(agg.Device, nil); err == nil {
		t.Fatal("concurrent drain of the same device accepted")
	}
	s.c.Engine.Run()
	// Completed drain leaves the device active (cordoned); Undrain makes
	// it drainable again.
	if err := s.mg.Drain(agg.Device, nil); err == nil {
		t.Fatal("re-drain accepted before Undrain")
	}
	s.mg.Undrain(agg.Device)
	if err := s.mg.Drain(agg.Device, nil); err != nil {
		t.Fatalf("drain after Undrain: %v", err)
	}
	s.c.Engine.Run()
	if got := len(s.mg.Reports()); got != 2 {
		t.Fatalf("reports = %d, want 2", got)
	}
}

// TestDrainEmptyDeviceCompletesTrivially drains a device hosting no
// assignments: no migrations, no pauses, nothing moved — but the device
// ends up cordoned all the same.
func TestDrainEmptyDeviceCompletesTrivially(t *testing.T) {
	s := newDrainStack(t)
	plan, _ := s.o.PlanFor("drainapp")
	used := map[string]bool{}
	for _, a := range plan.Assignments {
		used[a.Device] = true
	}
	idle := ""
	for name := range s.c.Devices {
		if !used[name] {
			idle = name
			break
		}
	}
	if idle == "" {
		t.Fatal("no idle device in the continuum")
	}
	var rep *DrainReport
	if err := s.mg.Drain(idle, func(dr *DrainReport, _ error) { rep = dr }); err != nil {
		t.Fatal(err)
	}
	s.c.Engine.Run()
	if rep == nil || rep.Aborted {
		t.Fatalf("drain = %+v", rep)
	}
	if len(rep.Stages) != 0 || rep.Moved != 0 || len(rep.Pauses) != 0 {
		t.Fatalf("empty-device drain did work: %+v", rep)
	}
}
