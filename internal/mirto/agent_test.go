package mirto

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"myrtus/internal/cluster"
	"myrtus/internal/sim"
	"myrtus/internal/tosca"
	"myrtus/internal/trace"
)

func newTestAgent(t *testing.T) (*Agent, *httptest.Server) {
	t.Helper()
	c := testContinuum(t)
	o := NewOrchestrator(NewManager(c, BalancedGoal()))
	a := NewAgent(o, map[string]Role{
		"admin-token":  RoleAdmin,
		"viewer-token": RoleViewer,
	})
	srv := httptest.NewServer(a)
	t.Cleanup(srv.Close)
	return a, srv
}

func doReq(t *testing.T, method, url, token, contentType string, body []byte) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	dec := json.NewDecoder(resp.Body)
	dec.Decode(&decoded) //nolint:errcheck // some bodies are arrays
	return resp, decoded
}

func TestAgentHealthNoAuth(t *testing.T) {
	_, srv := newTestAgent(t)
	resp, body := doReq(t, "GET", srv.URL+"/v1/healthz", "", "", nil)
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("health = %d %v", resp.StatusCode, body)
	}
}

func TestAgentAuth(t *testing.T) {
	_, srv := newTestAgent(t)
	// No token.
	resp, _ := doReq(t, "GET", srv.URL+"/v1/deployments", "", "", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token = %d", resp.StatusCode)
	}
	// Unknown token.
	resp, _ = doReq(t, "GET", srv.URL+"/v1/deployments", "bogus", "", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad token = %d", resp.StatusCode)
	}
	// Viewer cannot deploy.
	resp, _ = doReq(t, "POST", srv.URL+"/v1/deployments", "viewer-token", "application/x-yaml", []byte(appYAML))
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("viewer deploy = %d", resp.StatusCode)
	}
	// Viewer can read.
	resp, _ = doReq(t, "GET", srv.URL+"/v1/deployments", "viewer-token", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("viewer list = %d", resp.StatusCode)
	}
}

func TestAgentDeployFlow(t *testing.T) {
	_, srv := newTestAgent(t)
	resp, body := doReq(t, "POST", srv.URL+"/v1/deployments", "admin-token", "application/x-yaml", []byte(appYAML))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy = %d %v", resp.StatusCode, body)
	}
	if body["app"] != "mobility" {
		t.Fatalf("app = %v", body["app"])
	}
	asg := body["assignments"].(map[string]any)
	if len(asg) != 3 {
		t.Fatalf("assignments = %v", asg)
	}
	// Duplicate deploy conflicts.
	resp, _ = doReq(t, "POST", srv.URL+"/v1/deployments", "admin-token", "application/x-yaml", []byte(appYAML))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("dup deploy = %d", resp.StatusCode)
	}
	// Get by name.
	resp, body = doReq(t, "GET", srv.URL+"/v1/deployments/mobility", "viewer-token", "", nil)
	if resp.StatusCode != http.StatusOK || body["app"] != "mobility" {
		t.Fatalf("get = %d %v", resp.StatusCode, body)
	}
	// KPIs exist (zero traffic so far).
	resp, body = doReq(t, "GET", srv.URL+"/v1/kpis/mobility", "viewer-token", "", nil)
	if resp.StatusCode != http.StatusOK || body["requests"].(float64) != 0 {
		t.Fatalf("kpis = %d %v", resp.StatusCode, body)
	}
	// Delete.
	resp, _ = doReq(t, "DELETE", srv.URL+"/v1/deployments/mobility", "admin-token", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, "GET", srv.URL+"/v1/deployments/mobility", "viewer-token", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, "DELETE", srv.URL+"/v1/deployments/mobility", "admin-token", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete = %d", resp.StatusCode)
	}
}

func TestAgentDeployCSAR(t *testing.T) {
	_, srv := newTestAgent(t)
	st, err := tosca.Parse(appYAML)
	if err != nil {
		t.Fatal(err)
	}
	csar := tosca.NewCSAR(st)
	data, err := csar.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	resp, body := doReq(t, "POST", srv.URL+"/v1/deployments", "admin-token", "application/zip", data)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("csar deploy = %d %v", resp.StatusCode, body)
	}
	// Garbage zip rejected.
	resp, _ = doReq(t, "POST", srv.URL+"/v1/deployments", "admin-token", "application/zip", []byte("junk"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage csar = %d", resp.StatusCode)
	}
}

func TestAgentRejectsInvalidTemplates(t *testing.T) {
	_, srv := newTestAgent(t)
	// Unparseable YAML.
	resp, _ := doReq(t, "POST", srv.URL+"/v1/deployments", "admin-token", "application/x-yaml", []byte("not tosca"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage yaml = %d", resp.StatusCode)
	}
	// Parseable but semantically invalid (validation processor).
	bad := `
tosca_definitions_version: tosca_2_0
topology_template:
  node_templates:
    w:
      type: bogus.Type
      properties:
        cpu: 1
        memoryMB: 64
`
	resp, body := doReq(t, "POST", srv.URL+"/v1/deployments", "admin-token", "application/x-yaml", []byte(bad))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("invalid template = %d %v", resp.StatusCode, body)
	}
	if !strings.Contains(body["error"].(string), "unknown type") {
		t.Fatalf("error = %v", body["error"])
	}
}

func TestAgentRegistryEndpoint(t *testing.T) {
	a, srv := newTestAgent(t)
	a.o.M.C.Heartbeat()
	req, _ := http.NewRequest("GET", srv.URL+"/v1/registry", nil)
	req.Header.Set("Authorization", "Bearer viewer-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var entries []map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 11 {
		t.Fatalf("registry entries = %d", len(entries))
	}
	live := 0
	for _, e := range entries {
		if e["live"].(bool) {
			live++
		}
	}
	if live != 11 {
		t.Fatalf("live = %d", live)
	}
}

func TestAgentGrantToken(t *testing.T) {
	a, srv := newTestAgent(t)
	a.GrantToken("late-token", RoleViewer)
	resp, _ := doReq(t, "GET", srv.URL+"/v1/deployments", "late-token", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("granted token = %d", resp.StatusCode)
	}
}

func TestAgentKPIsNotFound(t *testing.T) {
	_, srv := newTestAgent(t)
	resp, _ := doReq(t, "GET", srv.URL+"/v1/kpis/ghost", "viewer-token", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost kpis = %d", resp.StatusCode)
	}
}

func TestAgentRebalanceEndpoint(t *testing.T) {
	a, srv := newTestAgent(t)
	// Pile pods onto one fog server so the swarm has something to do.
	fog := a.o.M.C.Fog
	for i := 0; i < 8; i++ {
		name, err := fog.CreatePod(clusterPodSpec())
		if err != nil {
			t.Fatal(err)
		}
		if err := fog.Bind(name, "fog-fmdc-0"); err != nil {
			t.Fatal(err)
		}
	}
	resp, body := doReq(t, "POST", srv.URL+"/v1/rebalance/fog", "admin-token", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rebalance = %d %v", resp.StatusCode, body)
	}
	if body["migrations"].(float64) == 0 {
		t.Fatalf("no migrations: %v", body)
	}
	if body["maxRelLoadAfter"].(float64) >= body["maxRelLoadBefore"].(float64) {
		t.Fatalf("load not improved: %v", body)
	}
	// Viewer may not rebalance; unknown layer 404s.
	resp, _ = doReq(t, "POST", srv.URL+"/v1/rebalance/fog", "viewer-token", "", nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("viewer rebalance = %d", resp.StatusCode)
	}
	resp, _ = doReq(t, "POST", srv.URL+"/v1/rebalance/mars", "admin-token", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown layer = %d", resp.StatusCode)
	}
}

func clusterPodSpec() cluster.PodSpec {
	return cluster.PodSpec{App: "batch", Requests: cluster.Resources{CPU: 1, MemMB: 256}}
}

func TestAgentTraceEndpoints(t *testing.T) {
	a, srv := newTestAgent(t)
	resp, _ := doReq(t, "GET", srv.URL+"/v1/traces", "viewer-token", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty trace list = %d", resp.StatusCode)
	}
	// Deploy and serve one request so a trace exists.
	resp, _ = doReq(t, "POST", srv.URL+"/v1/deployments", "admin-token", "application/x-yaml", []byte(appYAML))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy = %d", resp.StatusCode)
	}
	lat, _, err := a.o.R.ServeRequest("mobility", 1)
	if err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest("GET", srv.URL+"/v1/traces", nil)
	req.Header.Set("Authorization", "Bearer viewer-token")
	lresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var listing struct {
		Traces  []trace.Info      `json:"traces"`
		Fencing map[string]uint64 `json:"fencing"`
	}
	if err := json.NewDecoder(lresp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	infos := listing.Traces
	var reqInfo *trace.Info
	for i := range infos {
		if strings.HasPrefix(string(infos[i].Name), "request/") {
			reqInfo = &infos[i]
		}
	}
	if reqInfo == nil {
		t.Fatalf("no request trace in %v", infos)
	}

	// Fetch the trace the way mirtoctl does and check the critical path
	// sums exactly to the request's end-to-end virtual-time latency.
	req, _ = http.NewRequest("GET", srv.URL+"/v1/traces/"+string(reqInfo.ID), nil)
	req.Header.Set("Authorization", "Bearer viewer-token")
	tresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	var doc struct {
		ID    string        `json:"id"`
		Spans []*trace.Span `json:"spans"`
	}
	if err := json.NewDecoder(tresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.FromSpans(doc.Spans)
	if err != nil {
		t.Fatal(err)
	}
	segs, total := tr.CriticalPath()
	if total != lat {
		t.Fatalf("trace total %v != request latency %v", total, lat)
	}
	var explained sim.Time
	for _, seg := range segs {
		explained += seg.Wait + seg.Span.Duration()
	}
	if explained != total {
		t.Fatalf("critical path explains %v of %v", explained, total)
	}

	// Unknown trace ID 404s.
	resp, _ = doReq(t, "GET", srv.URL+"/v1/traces/t999999", "viewer-token", "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace = %d", resp.StatusCode)
	}

	// With a fence ledger attached, the listing carries the fencing
	// counters mirtoctl renders.
	a.o.R.SetFence(NewFenceLedger(a.o.M.C.KB))
	_, body := doReq(t, "GET", srv.URL+"/v1/traces", "viewer-token", "", nil)
	fencing, ok := body["fencing"].(map[string]any)
	if !ok {
		t.Fatalf("fencing block missing from trace listing: %v", body)
	}
	for _, k := range []string{"fenced_writes", "plan_epoch_rejects", "journal_discards"} {
		if _, ok := fencing[k]; !ok {
			t.Fatalf("fencing block missing %q", k)
		}
	}
}

func TestAgentDrainEndpoints(t *testing.T) {
	a, srv := newTestAgent(t)
	// Give the orchestrator the stateful stack so the drain has cells
	// to live-migrate.
	ss := NewStateStore(0)
	a.o.R.SetStateStore(ss)
	a.o.CP = NewCheckpointer(a.o.R, a.o.M.C.KB, "cloud-srv-0", 0)
	resp, _ := doReq(t, "POST", srv.URL+"/v1/deployments", "admin-token", "application/x-yaml", []byte(drainAppYAML))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("deploy = %d", resp.StatusCode)
	}
	// Feed the aggregator cell so the pre-copy ships real state.
	for i := 0; i < 5; i++ {
		a.o.R.Submit("drainapp", 1, nil) //nolint:errcheck
	}
	a.o.M.C.Engine.Run()
	plan, _ := a.o.PlanFor("drainapp")
	agg, _ := plan.Assignment("aggregator")

	// Drains are admin-only.
	resp, _ = doReq(t, "POST", srv.URL+"/v1/drain/"+agg.Device, "viewer-token", "", nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("viewer drain = %d", resp.StatusCode)
	}
	resp, body := doReq(t, "POST", srv.URL+"/v1/drain/"+agg.Device, "admin-token", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain = %d %v", resp.StatusCode, body)
	}
	if body["aborted"] != false || body["device"] != agg.Device {
		t.Fatalf("drain body = %v", body)
	}
	stages, _ := body["stages"].([]any)
	if len(stages) == 0 {
		t.Fatalf("drain migrated no stages: %v", body)
	}
	flipped := false
	for _, s := range stages {
		sm := s.(map[string]any)
		if sm["flipped"] == true {
			flipped = true
			if sm["precopyBytes"].(float64) == 0 {
				t.Fatalf("flipped stage shipped no bytes: %v", sm)
			}
		}
	}
	if !flipped {
		t.Fatalf("no stage flipped: %v", stages)
	}
	np, _ := a.o.PlanFor("drainapp")
	nagg, _ := np.Assignment("aggregator")
	if nagg.Device == agg.Device {
		t.Fatal("aggregator still on the drained device")
	}

	// Unknown device is a conflict, not a crash.
	resp, _ = doReq(t, "POST", srv.URL+"/v1/drain/no-such-device", "admin-token", "", nil)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unknown drain = %d", resp.StatusCode)
	}
	// Undrain lifts the cordon.
	resp, body = doReq(t, "DELETE", srv.URL+"/v1/drain/"+agg.Device, "admin-token", "", nil)
	if resp.StatusCode != http.StatusOK || body["undrained"] != agg.Device {
		t.Fatalf("undrain = %d %v", resp.StatusCode, body)
	}
}

func TestAgentDeviceHealthEndpoint(t *testing.T) {
	a, srv := newTestAgent(t)

	// Monitor not attached: graceful attached=false, not an error.
	resp, body := doReq(t, "GET", srv.URL+"/v1/health/devices", "viewer-token", "", nil)
	if resp.StatusCode != http.StatusOK || body["attached"] != false {
		t.Fatalf("detached monitor = %d %v", resp.StatusCode, body)
	}
	// Requires a token (viewer suffices, admin not needed).
	resp, _ = doReq(t, "GET", srv.URL+"/v1/health/devices", "", "", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token = %d", resp.StatusCode)
	}

	// Attach a monitor, drift one device, and read the rows back.
	hm := NewHealthMonitor(a.o.M.C, HealthConfig{})
	a.o.R.SetHealth(hm)
	for i := 0; i < 3; i++ {
		at := sim.Time(i+1) * 100 * sim.Millisecond
		feedHealthy(hm, a.o.M.C.Devices, at)
		obsNorm(hm, a.o.M.C.Devices["fog-fmdc-0"], 3.0, at)
	}
	hm.Tick(sim.Second)
	resp, body = doReq(t, "GET", srv.URL+"/v1/health/devices", "viewer-token", "", nil)
	if resp.StatusCode != http.StatusOK || body["attached"] != true {
		t.Fatalf("attached monitor = %d %v", resp.StatusCode, body)
	}
	devs, ok := body["devices"].([]any)
	if !ok || len(devs) == 0 {
		t.Fatalf("devices = %v", body["devices"])
	}
	found := ""
	for _, d := range devs {
		row := d.(map[string]any)
		if row["device"] == "fog-fmdc-0" {
			found = row["state"].(string)
		}
	}
	if found != "suspect" {
		t.Fatalf("fog-fmdc-0 state = %q, want suspect", found)
	}
	stats, ok := body["stats"].(map[string]any)
	if !ok || stats["suspects"].(float64) != 1 {
		t.Fatalf("stats = %v", body["stats"])
	}
}
