package mirto

import (
	"strings"
	"testing"

	"myrtus/internal/cluster"
	"myrtus/internal/sim"
)

func TestFailureDetectorSuspectsAndRecovers(t *testing.T) {
	c := testContinuum(t)
	fd := NewFailureDetector(c, 2)

	// A device that silently stops heartbeating (no FailDevice call).
	c.Devices["edge-mc-0"].Fail()

	if sus, _ := fd.Tick(); len(sus) != 0 {
		t.Fatalf("suspected after 1 miss (K=2): %v", sus)
	}
	if n, _ := c.Edge.Node("edge-mc-0"); !n.Ready {
		t.Fatal("node marked unready before K misses")
	}
	sus, _ := fd.Tick()
	if len(sus) != 1 || sus[0] != "edge-mc-0" {
		t.Fatalf("suspected after K misses = %v", sus)
	}
	if n, _ := c.Edge.Node("edge-mc-0"); n.Ready {
		t.Fatal("suspected node still ready")
	}
	fd.Tick()
	fd.Tick() // 2K misses: confirmed
	if s, conf, r := fd.Stats(); s != 1 || conf != 1 || r != 0 {
		t.Fatalf("stats after confirmation = %d/%d/%d", s, conf, r)
	}
	if got := fd.Suspects(); len(got) != 1 || got[0] != "edge-mc-0" {
		t.Fatalf("suspects = %v", got)
	}

	// The device heartbeats again: cleared and node restored.
	c.Devices["edge-mc-0"].Repair(c.Engine.Now())
	_, rec := fd.Tick()
	if len(rec) != 1 || rec[0] != "edge-mc-0" {
		t.Fatalf("recovered = %v", rec)
	}
	if n, _ := c.Edge.Node("edge-mc-0"); !n.Ready {
		t.Fatal("recovered node not restored")
	}
	if s, conf, r := fd.Stats(); s != 1 || conf != 1 || r != 1 {
		t.Fatalf("final stats = %d/%d/%d", s, conf, r)
	}
	if len(fd.Suspects()) != 0 {
		t.Fatalf("suspects not cleared: %v", fd.Suspects())
	}
}

func TestRepairDeviceRoundTrip(t *testing.T) {
	// fail → repair → Replan: the app serves again and the repaired
	// device returns to the candidate index with its watermark restored.
	c := testContinuum(t)
	o := NewOrchestrator(NewManager(c, LatencyGoal()))
	plan, err := o.Deploy(parseApp(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.R.ServeRequest("mobility", 1); err != nil {
		t.Fatalf("baseline request: %v", err)
	}

	cam, _ := plan.Assignment("camera")
	if err := c.FailDevice(cam.Device); err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.R.ServeRequest("mobility", 1); err == nil {
		t.Fatal("request served through a failed device")
	}
	if err := o.replan("mobility"); err != nil {
		t.Fatalf("replan around failure: %v", err)
	}
	np, _ := o.PlanFor("mobility")
	ncam, _ := np.Assignment("camera")
	if ncam.Device == cam.Device {
		t.Fatal("replan kept the failed device")
	}
	if _, _, err := o.R.ServeRequest("mobility", 1); err != nil {
		t.Fatalf("post-replan request: %v", err)
	}

	if err := c.RepairDevice(cam.Device); err != nil {
		t.Fatal(err)
	}
	// The repaired device must be offered again, free of any stale
	// allocation (its pods were evicted by the failure).
	ag := o.M.Edge
	offers := ag.Offers(cluster.Resources{CPU: 0.5, MemMB: 64}, "", "")
	found := false
	for _, of := range offers {
		if of.Device == cam.Device {
			found = true
			spec := c.Devices[cam.Device].Spec()
			if of.FreeCPU != float64(spec.Cores) {
				t.Fatalf("repaired device free CPU = %v, want %v", of.FreeCPU, spec.Cores)
			}
		}
	}
	if !found {
		t.Fatalf("repaired device %s missing from offers", cam.Device)
	}
	ag.idx.mu.RLock()
	e := ag.idx.entries[cam.Device]
	sh := shardFind(ag.idx.bySec[""], cam.Device)
	var maxCPU float64
	if sh != nil {
		maxCPU = sh.dig.maxFreeCPU
	}
	ag.idx.mu.RUnlock()
	if e == nil || !e.ready {
		t.Fatalf("index entry for %s not ready after repair: %+v", cam.Device, e)
	}
	if sh == nil {
		t.Fatalf("no shard holds repaired device %s", cam.Device)
	}
	if maxCPU < e.free.CPU {
		t.Fatalf("shard digest watermark %v below repaired free CPU %v", maxCPU, e.free.CPU)
	}
	// And a final replan is free to use it again.
	if err := o.replan("mobility"); err != nil {
		t.Fatalf("replan after repair: %v", err)
	}
	if _, _, err := o.R.ServeRequest("mobility", 1); err != nil {
		t.Fatalf("request after repair replan: %v", err)
	}
}

func TestSubmitWithRetryRecoversAcrossRepair(t *testing.T) {
	c := testContinuum(t)
	o := NewOrchestrator(NewManager(c, LatencyGoal()))
	plan, err := o.Deploy(parseApp(t))
	if err != nil {
		t.Fatal(err)
	}
	cam, _ := plan.Assignment("camera")
	if err := c.FailDevice(cam.Device); err != nil {
		t.Fatal(err)
	}
	// Repair lands mid-retry: the first attempts fail, a later one
	// succeeds, and the request counts as recovered rather than lost.
	c.Engine.After(200*sim.Millisecond, func() {
		c.RepairDevice(cam.Device) //nolint:errcheck
	})
	var gotAttempts int
	var gotErr error
	fails := 0
	err = o.R.SubmitWithRetry("mobility", "", 1, RetryPolicy{
		Attempts: 6, Base: 50 * sim.Millisecond,
		OnAttemptFail: func(int, error) { fails++ },
	}, func(_ sim.Time, _ float64, attempts int, err error) {
		gotAttempts, gotErr = attempts, err
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Engine.Run()
	if gotErr != nil {
		t.Fatalf("request lost: %v (attempts=%d)", gotErr, gotAttempts)
	}
	if gotAttempts < 2 || fails != gotAttempts-1 {
		t.Fatalf("attempts=%d fails=%d, expected retries before recovery", gotAttempts, fails)
	}
	reg, _ := o.R.Metrics("mobility")
	if s, ok := reg.Find("requests_recovered"); !ok || s.Value != 1 {
		t.Fatalf("requests_recovered = %+v %v", s, ok)
	}
	if s, ok := reg.Find("requests_lost"); ok && s.Value != 0 {
		t.Fatalf("requests_lost = %v", s.Value)
	}
	if s, ok := reg.Find("serve_retries"); !ok || s.Value < 1 {
		t.Fatalf("serve_retries = %+v %v", s, ok)
	}

	// Exhausting attempts against a permanent failure is a loss.
	if err := c.FailDevice(cam.Device); err != nil {
		t.Fatal(err)
	}
	// Fail every other edge device too so no replan could even help.
	var lostErr error
	lost := false
	err = o.R.SubmitWithRetry("mobility", "", 1, RetryPolicy{Attempts: 2, Base: 10 * sim.Millisecond},
		func(_ sim.Time, _ float64, _ int, err error) { lost, lostErr = true, err })
	if err != nil {
		t.Fatal(err)
	}
	c.Engine.Run()
	if !lost || lostErr == nil {
		t.Fatal("permanent failure not reported")
	}
	if s, _ := reg.Find("requests_lost"); s.Value != 1 {
		t.Fatalf("requests_lost = %v, want 1", s.Value)
	}
}

func TestReplanDebounce(t *testing.T) {
	c := testContinuum(t)
	o := NewOrchestrator(NewManager(c, EnergyGoal()))
	if _, err := o.Deploy(parseApp(t)); err != nil {
		t.Fatal(err)
	}
	loop, err := o.AttachLoop("mobility", SLO{P95LatencyMs: 0.001}) // impossible target
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.R.ServeRequest("mobility", 4); err != nil {
		t.Fatal(err)
	}
	// Escalation: boost first, then one replan.
	if rec := loop.Iterate(); len(rec.Actions) != 1 || rec.Actions[0].Kind != "boost" {
		t.Fatalf("first pass = %+v", rec.Actions)
	}
	if rec := loop.Iterate(); len(rec.Actions) != 1 || rec.Actions[0].Kind != "replan" {
		t.Fatalf("second pass = %+v", rec.Actions)
	}
	// The violation persists, but further replans are debounced until the
	// cooldown expires — a flapping signal yields one replan, not a storm.
	for i := 0; i < 5; i++ {
		if rec := loop.Iterate(); len(rec.Actions) != 0 {
			t.Fatalf("pass %d inside cooldown acted: %+v", i, rec.Actions)
		}
	}
	c.Engine.RunFor(o.ReplanCooldown + sim.Millisecond)
	if rec := loop.Iterate(); len(rec.Actions) != 1 || rec.Actions[0].Kind != "replan" {
		t.Fatalf("post-cooldown pass = %+v", rec.Actions)
	}
}

func TestDegradedPlanNeverRelaxesSecurity(t *testing.T) {
	// With every medium-capable device down, replanning the detector
	// (security level medium) must fail outright — never fall back to a
	// low-security device.
	c := testContinuum(t)
	o := NewOrchestrator(NewManager(c, LatencyGoal()))
	plan, err := o.Deploy(parseApp(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range c.DeviceNames() {
		if c.Devices[name].SupportsSecurity("medium") {
			if err := c.FailDevice(name); err != nil {
				t.Fatal(err)
			}
		}
	}
	err = o.replan("mobility")
	if err == nil {
		np, _ := o.PlanFor("mobility")
		det, _ := np.Assignment("detector")
		t.Fatalf("replan placed detector on %s with every medium device down", det.Device)
	}
	if !strings.Contains(err.Error(), "detector") {
		t.Fatalf("unexpected replan error: %v", err)
	}
	// The failed replan must leave the previous plan intact.
	np, ok := o.PlanFor("mobility")
	if !ok || len(np.Assignments) != len(plan.Assignments) {
		t.Fatalf("plan lost after failed replan: %+v", np)
	}
}
