package mirto

import (
	"fmt"
	"sort"

	"myrtus/internal/cluster"
	"myrtus/internal/swarm"
)

// Swarm-flavored MIRTO agent (§IV: "variants of MIRTO agents will be
// developed using strategies based on swarm-like intelligence … different
// flavors of MIRTO agents, capable of operating under different AI-based
// algorithms"). SwarmRebalance runs the decentralized local rule over one
// layer's devices and applies the resulting migrations through the
// deployment proxy — workload balancing without any global optimizer.

// SwarmRebalanceResult reports one rebalancing pass.
type SwarmRebalanceResult struct {
	Migrations int
	Rounds     int
	// MaxRelLoadBefore/After are CPU load / capacity extremes.
	MaxRelLoadBefore float64
	MaxRelLoadAfter  float64
}

// SwarmRebalance balances running pods across the physical nodes of cl
// using the evolved local rule: each device observes only its ring
// neighbors and sheds its smallest pod when overloaded. Migrations are
// applied as evict+bind through the cluster (the Kubernetes role).
func (m *Manager) SwarmRebalance(cl *cluster.Cluster, rule swarm.Rule, maxRounds int) (SwarmRebalanceResult, error) {
	if err := rule.Validate(); err != nil {
		return SwarmRebalanceResult{}, err
	}
	// Snapshot physical, ready nodes in deterministic order.
	var nodeNames []string
	capacity := map[string]float64{}
	for _, n := range cl.Nodes() {
		if n.Virtual || !n.Ready {
			continue
		}
		nodeNames = append(nodeNames, n.Name)
		capacity[n.Name] = n.Allocatable.CPU
	}
	sort.Strings(nodeNames)
	if len(nodeNames) < 2 {
		return SwarmRebalanceResult{}, fmt.Errorf("mirto: swarm rebalance needs at least two nodes")
	}
	// pods[node] = movable pods (no selector/pin constraints).
	type podRef struct {
		name string
		cpu  float64
		spec cluster.PodSpec
	}
	pods := map[string][]podRef{}
	for _, name := range nodeNames {
		for _, p := range cl.PodsOnNode(name) {
			if len(p.Spec.NodeSelector) > 0 {
				continue // constrained pods stay put
			}
			pods[name] = append(pods[name], podRef{name: p.Name, cpu: p.Spec.Requests.CPU, spec: p.Spec})
		}
	}
	relLoad := func(n string) float64 {
		load := 0.0
		for _, p := range pods[n] {
			load += p.cpu
		}
		return load / capacity[n]
	}
	maxRel := func() float64 {
		best := 0.0
		for _, n := range nodeNames {
			if l := relLoad(n); l > best {
				best = l
			}
		}
		return best
	}
	res := SwarmRebalanceResult{MaxRelLoadBefore: maxRel()}

	neighbor := func(i, d int) string {
		return nodeNames[((i+d)%len(nodeNames)+len(nodeNames))%len(nodeNames)]
	}
	for round := 0; round < maxRounds; round++ {
		res.Rounds = round + 1
		type move struct {
			from, to string
			podIdx   int
		}
		var moves []move
		for i, name := range nodeNames {
			if relLoad(name) <= rule.OffloadThreshold || len(pods[name]) == 0 {
				continue
			}
			// Least-loaded ring neighbor (2 hops each way, like NewRing k=2).
			best, bestLoad := "", 10e9
			for _, d := range []int{-2, -1, 1, 2} {
				nb := neighbor(i, d)
				if nb == name {
					continue
				}
				if l := relLoad(nb); l < bestLoad {
					best, bestLoad = nb, l
				}
			}
			if best == "" || relLoad(name)-bestLoad < rule.Hysteresis {
				continue
			}
			smallest := 0
			for pi, p := range pods[name] {
				if p.cpu < pods[name][smallest].cpu {
					smallest = pi
				}
			}
			// The target must actually fit the pod (feasibility check the
			// abstract swarm model does not need, but the proxy does).
			free, _ := cl.FreeOn(best)
			if !pods[name][smallest].spec.Requests.Fits(free) {
				continue
			}
			moves = append(moves, move{from: name, to: best, podIdx: smallest})
		}
		if len(moves) == 0 {
			break
		}
		for _, mv := range moves {
			p := pods[mv.from][mv.podIdx]
			if err := cl.Evict(p.name); err != nil {
				continue
			}
			if err := cl.Bind(p.name, mv.to); err != nil {
				// Put it back where it was.
				cl.Bind(p.name, mv.from) //nolint:errcheck
				continue
			}
			pods[mv.from] = append(pods[mv.from][:mv.podIdx], pods[mv.from][mv.podIdx+1:]...)
			pods[mv.to] = append(pods[mv.to], p)
			res.Migrations++
		}
	}
	res.MaxRelLoadAfter = maxRel()
	return res, nil
}
