package mirto

import "sort"

// shardTarget is the nominal shard size. Shards are built at this size
// and split when incremental inserts double it, so a digest refresh or
// an entry lookup touches O(shardTarget) entries regardless of how
// large the continuum grows.
const shardTarget = 128

// candShard is one contiguous, name-ordered run of a security bucket's
// candidate entries plus the capacity digest summarizing them. Shard
// boundaries are name ranges — not hashes — so concatenating a bucket's
// shards walks entries in exactly the order the flat index used, and
// the planner's first-lowest-score tie-break picks the same device
// whether it scanned flat, descended shard by shard, or scored shards
// on parallel workers.
type candShard struct {
	entries []*candEntry
	dig     shardDigest
}

func (s *candShard) lo() string { return s.entries[0].name }
func (s *candShard) hi() string { return s.entries[len(s.entries)-1].name }

// shardChunk cuts a name-sorted entry list into shards of shardTarget
// entries and computes their digests — the bulk-build path.
func shardChunk(entries []*candEntry) []*candShard {
	if len(entries) == 0 {
		return nil
	}
	out := make([]*candShard, 0, (len(entries)+shardTarget-1)/shardTarget)
	for len(entries) > 0 {
		n := shardTarget
		if n > len(entries) {
			n = len(entries)
		}
		// Cap capacity so a later split's append cannot alias the
		// neighboring shard's backing array.
		sh := &candShard{entries: entries[:n:n]}
		sh.refresh()
		out = append(out, sh)
		entries = entries[n:]
	}
	return out
}

// shardLocate returns the index and shard whose name range could hold
// name, or (-1, nil) when name falls outside every shard's range.
func shardLocate(b []*candShard, name string) (int, *candShard) {
	i := sort.Search(len(b), func(i int) bool { return b[i].hi() >= name })
	if i == len(b) || b[i].lo() > name {
		return -1, nil
	}
	return i, b[i]
}

// shardFind returns the shard actually containing an entry named name,
// or nil — the digest-refresh probe, O(log shards + log shardTarget).
func shardFind(b []*candShard, name string) *candShard {
	_, sh := shardLocate(b, name)
	if sh == nil {
		return nil
	}
	if j := sh.search(name); j < len(sh.entries) && sh.entries[j].name == name {
		return sh
	}
	return nil
}

func (s *candShard) search(name string) int {
	return sort.Search(len(s.entries), func(j int) bool { return s.entries[j].name >= name })
}

// shardInsert adds e to the bucket in name order, splitting the target
// shard if the insert doubles it past shardTarget, and refreshes the
// affected digests.
func shardInsert(b []*candShard, e *candEntry) []*candShard {
	if len(b) == 0 {
		sh := &candShard{entries: []*candEntry{e}}
		sh.refresh()
		return []*candShard{sh}
	}
	// First shard whose range ends at or after the name; names beyond
	// every range extend the last shard.
	i := sort.Search(len(b), func(i int) bool { return b[i].hi() >= e.name })
	if i == len(b) {
		i = len(b) - 1
	}
	sh := b[i]
	j := sh.search(e.name)
	if j < len(sh.entries) && sh.entries[j].name == e.name {
		sh.entries[j] = e
		sh.refresh()
		return b
	}
	sh.entries = append(sh.entries, nil)
	copy(sh.entries[j+1:], sh.entries[j:])
	sh.entries[j] = e
	if len(sh.entries) >= 2*shardTarget {
		mid := len(sh.entries) / 2
		right := &candShard{entries: append([]*candEntry(nil), sh.entries[mid:]...)}
		sh.entries = sh.entries[:mid:mid]
		sh.refresh()
		right.refresh()
		b = append(b, nil)
		copy(b[i+2:], b[i+1:])
		b[i+1] = right
		return b
	}
	sh.refresh()
	return b
}

// shardRemove drops the entry named name, deleting the shard when it
// empties.
func shardRemove(b []*candShard, name string) []*candShard {
	i, sh := shardLocate(b, name)
	if sh == nil {
		return b
	}
	j := sh.search(name)
	if j == len(sh.entries) || sh.entries[j].name != name {
		return b
	}
	sh.entries = append(sh.entries[:j], sh.entries[j+1:]...)
	if len(sh.entries) == 0 {
		return append(b[:i], b[i+1:]...)
	}
	sh.refresh()
	return b
}
