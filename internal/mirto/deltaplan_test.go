package mirto

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"myrtus/internal/continuum"
	"myrtus/internal/tosca"
)

// renderAssignments canonicalizes the placement decisions for
// byte-identity comparison. PodName is excluded on purpose: a delta
// plan splices live pods through while a from-scratch plan binds fresh
// ones — the decisions, not the pod handles, must match.
func renderAssignments(p *Plan) string {
	var b strings.Builder
	for _, a := range p.Assignments {
		fmt.Fprintf(&b, "%s -> %s layer=%s sec=%q\n", a.TemplateNode, a.Device, a.Layer, a.SecurityLvl)
	}
	fmt.Fprintf(&b, "score=%.17g\n", p.Score)
	return b.String()
}

// TestDeltaPlanEquivalence is the delta-splice invariant: after a
// device crash, the spliced delta plan is byte-identical — same
// assignments, same score — to a from-scratch plan on the same cluster
// state (i.e. after the old plan is torn down). Table-driven across
// security levels and stateful stages, crashing each placed device in
// turn.
func TestDeltaPlanEquivalence(t *testing.T) {
	variants := []struct {
		name string
		yaml string
	}{
		{"base", appYAML},
		{"high-security", strings.ReplaceAll(appYAML, "level: medium", "level: high")},
		{"stateful", strings.ReplaceAll(appYAML, "gops: 4\n", "gops: 4\n        stateful: true\n")},
	}
	stages := []string{"camera", "detector", "aggregator"}
	for _, v := range variants {
		for _, crash := range stages {
			t.Run(v.name+"/crash-"+crash, func(t *testing.T) {
				c := testContinuum(t)
				m := NewManager(c, LatencyGoal())
				st, err := tosca.Parse(v.yaml)
				if err != nil {
					t.Fatal(err)
				}
				old, err := m.Plan(st)
				if err != nil {
					t.Fatal(err)
				}
				if err := m.Execute(old); err != nil {
					t.Fatal(err)
				}
				victim, ok := old.Assignment(crash)
				if !ok {
					t.Fatalf("no assignment for %s", crash)
				}
				if err := c.FailDevice(victim.Device); err != nil {
					t.Fatal(err)
				}

				dirty := m.DirtyStages(old)
				if !dirty[crash] {
					t.Fatalf("dirty set %v misses crashed stage %s", dirty, crash)
				}
				delta, stats, err := m.DeltaPlan(old, dirty)
				if err != nil {
					t.Fatalf("delta plan: %v", err)
				}
				// Reference: tear the old plan down and renegotiate from
				// scratch on the identical cluster state.
				m.Teardown(old)
				full, err := m.Plan(st)
				if err != nil {
					t.Fatalf("full plan: %v", err)
				}
				if got, want := renderAssignments(delta), renderAssignments(full); got != want {
					t.Fatalf("delta plan diverges from full replan:\ndelta:\n%s\nfull:\n%s", got, want)
				}
				if stats.Kept == 0 && len(dirty) < len(stages) {
					t.Fatalf("delta kept nothing despite %d/%d dirty stages", len(dirty), len(stages))
				}
				if stats.Scored >= full.Scored {
					t.Fatalf("delta scored %d candidates, full plan %d — no savings", stats.Scored, full.Scored)
				}
				for _, a := range delta.Assignments {
					if a.Device == victim.Device {
						t.Fatalf("delta plan still places %s on failed device %s", a.TemplateNode, a.Device)
					}
					if a.SecurityLvl != "" && !c.Devices[a.Device].SupportsSecurity(a.SecurityLvl) {
						t.Fatalf("delta plan relaxed security of %s: %s on %s", a.TemplateNode, a.SecurityLvl, a.Device)
					}
				}
			})
		}
	}
}

// TestDeltaReplanSplice applies a delta end to end through the
// orchestrator: the crashed stage moves, every healthy stage keeps its
// live pod, and the app serves again from the spliced plan.
func TestDeltaReplanSplice(t *testing.T) {
	c := testContinuum(t)
	o := NewOrchestrator(NewManager(c, LatencyGoal()))
	plan, err := o.Deploy(parseApp(t))
	if err != nil {
		t.Fatal(err)
	}
	oldPods := map[string]string{}
	for _, a := range plan.Assignments {
		oldPods[a.TemplateNode] = a.PodName
	}
	cam, _ := plan.Assignment("camera")
	if err := c.FailDevice(cam.Device); err != nil {
		t.Fatal(err)
	}
	if err := o.replan("mobility"); err != nil {
		t.Fatal(err)
	}
	log := o.ReplanLog()
	if len(log) != 1 || log[0].Mode != "delta" {
		t.Fatalf("replan log = %+v, want one delta event", log)
	}
	np, _ := o.PlanFor("mobility")
	for _, a := range np.Assignments {
		if a.PodName == "" {
			t.Fatalf("spliced plan left %s without a pod", a.TemplateNode)
		}
		if a.TemplateNode == "camera" {
			if a.Device == cam.Device {
				t.Fatalf("camera still on failed device %s", cam.Device)
			}
		} else if a.PodName != oldPods[a.TemplateNode] {
			t.Fatalf("healthy stage %s churned pods: %s -> %s", a.TemplateNode, oldPods[a.TemplateNode], a.PodName)
		}
	}
	if _, _, err := o.R.ServeRequest("mobility", 1); err != nil {
		t.Fatalf("request on spliced plan: %v", err)
	}
}

// TestDeltaReplanFallsBackToFull: with no dirty stages (pure KPI
// pressure) the orchestrator renegotiates globally.
func TestDeltaReplanFallsBackToFull(t *testing.T) {
	c := testContinuum(t)
	o := NewOrchestrator(NewManager(c, LatencyGoal()))
	if _, err := o.Deploy(parseApp(t)); err != nil {
		t.Fatal(err)
	}
	if err := o.replan("mobility"); err != nil {
		t.Fatal(err)
	}
	log := o.ReplanLog()
	if len(log) != 1 || log[0].Mode != "full" {
		t.Fatalf("replan log = %+v, want one full event", log)
	}
}

// TestDeltaPlanChurnRace hammers delta replans while cluster events
// (node readiness flaps driving digest refreshes) fire concurrently —
// run under -race this is the planner/index synchronization check. The
// invariant checked is validity, not byte-identity: every produced plan
// places all stages on live, security-compatible devices.
func TestDeltaPlanChurnRace(t *testing.T) {
	opts := continuum.DefaultOptions()
	opts.KBReplicas = 1
	opts.Multicores, opts.HMPSoCs, opts.RISCVs = 12, 12, 12
	c, err := continuum.Build(opts)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(c, LatencyGoal())
	st := parseApp(t)
	old, err := m.Plan(st)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Execute(old); err != nil {
		t.Fatal(err)
	}

	// Churners: flap readiness of edge devices the plan does not use, so
	// digests refresh under load without invalidating the placement.
	used := map[string]bool{}
	for _, a := range old.Assignments {
		used[a.Device] = true
	}
	var flappable []string
	for name := range c.Devices {
		if !used[name] && strings.HasPrefix(name, "edge-") {
			flappable = append(flappable, name)
		}
	}
	if len(flappable) < 4 {
		t.Fatalf("not enough spare edge devices to churn: %d", len(flappable))
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			cl, ok := c.ClusterFor(name)
			if !ok {
				return
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				cl.SetNodeReady(name, i%2 == 0) //nolint:errcheck
			}
		}(flappable[w])
	}
	for i := 0; i < 200; i++ {
		dirty := map[string]bool{"camera": true}
		np, _, err := m.DeltaPlan(old, dirty)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if len(np.Assignments) != len(old.Assignments) {
			t.Fatalf("iteration %d: plan lost stages", i)
		}
		for _, a := range np.Assignments {
			if a.SecurityLvl != "" && !c.Devices[a.Device].SupportsSecurity(a.SecurityLvl) {
				t.Fatalf("iteration %d: security relaxed for %s", i, a.TemplateNode)
			}
		}
	}
	close(stop)
	wg.Wait()
}
